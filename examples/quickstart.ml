(* Quickstart: boot a small V cluster and run one program remotely with
   "cc68 @ *" — then show the communication paths of the paper's
   Figure 2-1 by dumping the kernel/program-manager trace.

     dune exec examples/quickstart.exe
*)

let () =
  (* A cluster is a file-server machine plus workstations ws0..wsN-1 on
     one simulated 10 Mbit Ethernet. [trace:true] records every kernel
     and program-manager event. *)
  let cl = Cluster.create ~seed:42 ~workstations:4 ~trace:true () in
  let origin = Cluster.workstation cl 0 in

  (* The "command interpreter": a user process on ws0 typing
     [cc68 prog.c @ *]. The shell body gets its execution context —
     kernel, config, own pid, and environment — in one piece. *)
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         Printf.printf "ws0$ cc68 prog.c @ *\n";
         match Remote_exec.exec ctx ~prog:"cc68" ~target:Remote_exec.Any with
         | Error e -> Printf.printf "exec failed: %s\n" e
         | Ok h -> (
             let t = h.Remote_exec.h_timings in
             Printf.printf "started on %s (logical host %d)\n"
               h.Remote_exec.h_host h.Remote_exec.h_lh;
             Printf.printf "  host selection      : %s (paper: 23 ms)\n"
               (match t.Remote_exec.t_select with
               | Some s -> Time.to_string s
               | None -> "n/a");
             Printf.printf "  environment setup   : %s (paper: part of 40 ms)\n"
               (Time.to_string t.Remote_exec.t_setup);
             Printf.printf "  program image load  : %s (paper: 330 ms/100 KB)\n"
               (Time.to_string t.Remote_exec.t_load);
             match Remote_exec.wait ctx h with
             | Ok (wall, cpu) ->
                 Printf.printf "completed: wall %s, cpu %s\n"
                   (Time.to_string wall) (Time.to_string cpu)
             | Error e -> Printf.printf "wait failed: %s\n" e)));
  Cluster.run cl ~until:(Time.of_sec 60.);

  (* The owner's screen: the program printed there even though it ran on
     another workstation (display server co-resident with the frame
     buffer, Section 2.1). *)
  Printf.printf "\nws0's display:\n";
  List.iter
    (fun line -> Printf.printf "  | %s\n" line)
    (Display_server.output origin.Cluster.ws_display);

  (* Figure 2-1: the communication paths. The trace shows the program
     manager group query, creation on the chosen host, and the program's
     interactions with kernel servers and the file server. *)
  Printf.printf "\nFigure 2-1 — communication paths (kernel/pm trace, first 25):\n";
  let entries = Tracer.entries (Cluster.tracer cl) in
  List.iteri
    (fun i e ->
      if i < 25 then Format.printf "  %a@." Tracer.pp_entry e)
    entries;
  Printf.printf "(%d trace entries total)\n" (List.length entries)
