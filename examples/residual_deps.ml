(* Residual host dependencies (Section 3.3): what a migrated program
   still needs from other machines. With V's conventions — files on a
   global network file server — a migrated program depends only on
   global servers and survives a reboot of its original host. Violating
   the convention (a server private to the origin workstation) leaves a
   residual dependency, and the origin's reboot kills the program. We
   demonstrate both, using the detector the paper lists as future work.

     dune exec examples/residual_deps.exe
*)

let find_program cl (h : Remote_exec.handle) host =
  match Cluster.find_workstation cl host with
  | None -> None
  | Some w ->
      Progtable.find (Program_manager.table w.Cluster.ws_pm) h.Remote_exec.h_lh

let migrate_it ctx (h : Remote_exec.handle) =
  match
    Kernel.send (Context.kernel ctx) ~src:(Context.self ctx)
      ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
      (Message.make
         (Protocol.Pm_migrate
            {
              lh = Some h.Remote_exec.h_lh;
              dest = None;
              force_destroy = false;
              strategy = Protocol.Precopy;
            }))
  with
  | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } -> Some o
  | _ -> None

let scenario ~use_origin_file_server =
  let cl = Cluster.create ~seed:23 ~workstations:5 () in
  let origin = Cluster.workstation cl 0 in
  let label =
    if use_origin_file_server then
      "files on a server PRIVATE to ws0 (violating the convention)"
    else "files on the global network file server (the V convention)"
  in
  Printf.printf "\n--- %s ---\n" label;
  let env =
    if use_origin_file_server then begin
      (* A file server running on the origin workstation itself. *)
      let local_fs =
        File_server.create origin.Cluster.ws_kernel ~name:"ws0-local-fs"
      in
      Programs.publish_images local_fs;
      File_server.add_file local_fs ~path:"optimizer.in" ~bytes:(64 * 1024);
      Some
        {
          (Cluster.env_for cl origin) with
          Env.file_server = File_server.pid local_fs;
        }
    end
    else None
  in
  let status = ref "did not run" in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         let ctx =
           match env with Some e -> Context.with_env ctx e | None -> ctx
         in
         match Remote_exec.exec ctx ~prog:"optimizer" ~target:Remote_exec.Any with
         | Error e -> status := "exec failed: " ^ e
         | Ok h -> (
             Proc.sleep (Cluster.engine cl) (Time.of_sec 1.);
             match migrate_it ctx h with
             | None -> status := "migration failed"
             | Some o -> (
                 match find_program cl h o.Protocol.m_dest with
                 | None -> status := "record lost"
                 | Some p ->
                     let deps =
                       Residual.residual_hosts ~ignore_display:true
                         (Cluster.directory cl) p
                     in
                     Printf.printf
                       "after migrating to %s, residual dependencies: [%s]\n"
                       o.Protocol.m_dest
                       (String.concat "; " deps);
                     Printf.printf "ws0 reboots now.\n";
                     Kernel.shutdown origin.Cluster.ws_kernel;
                     ignore
                       (Engine.schedule_after (Cluster.engine cl)
                          (Time.of_sec 60.) (fun () ->
                            status :=
                              (match p.Progtable.p_status with
                              | Progtable.Done { failed = false; _ } ->
                                  "program COMPLETED despite the reboot"
                              | Progtable.Done { failed = true; _ } ->
                                  "program FAILED — the residual dependency \
                                   bit when ws0 went down"
                              | Progtable.Running | Progtable.Migrating
                              | Progtable.Suspended ->
                                  "program still running (stuck on dead \
                                   server)")))))));
  Cluster.run cl ~until:(Time.of_sec 90.);
  Printf.printf "outcome: %s\n" !status

let () =
  Printf.printf
    "Residual dependency demonstration (Section 3.3)\n\
     A program is executed remotely from ws0, migrated away, and then ws0 \
     reboots.\n";
  scenario ~use_origin_file_server:false;
  scenario ~use_origin_file_server:true;
  Printf.printf
    "\nMoral (Section 6): \"place the state of a program's execution \
     environment either in its address space or in global servers\".\n"
