(* Preemption in anger (Sections 3 and 4.3): a long-running simulation
   job is parked on an idle workstation; its owner comes back and
   reclaims the machine with migrateprog. The job moves — with a
   sub-second freeze — and runs to completion elsewhere, unaware.

     dune exec examples/owner_returns.exe
*)

let () =
  let cl = Cluster.create ~seed:11 ~workstations:5 () in
  let eng = Cluster.engine cl in
  let origin = Cluster.workstation cl 0 in

  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         Printf.printf "ws0$ tex thesis.tex @ *\n";
         match Remote_exec.exec ctx ~prog:"tex" ~target:Remote_exec.Any with
         | Error e -> Printf.printf "exec failed: %s\n" e
         | Ok h -> (
             Printf.printf "[%s] tex running on %s\n"
               (Time.to_string (Engine.now eng))
               h.Remote_exec.h_host;
             (* Ten seconds in, the owner of that workstation sits down
                and types migrateprog. *)
             Proc.sleep eng (Time.of_sec 10.);
             let host_pm = Ids.program_manager_of h.Remote_exec.h_lh in
             Printf.printf "[%s] %s$ migrateprog   (owner is back)\n"
               (Time.to_string (Engine.now eng))
               h.Remote_exec.h_host;
             (match
                Kernel.send (Context.kernel ctx) ~src:(Context.self ctx)
                  ~dst:host_pm
                  (Message.make
                     (Protocol.Pm_migrate
                        {
                          lh = None;
                          dest = None;
                          force_destroy = true;
                          strategy = Protocol.Precopy;
                        }))
              with
             | Ok { Message.body = Protocol.Pm_migrated outcomes; _ } ->
                 List.iter
                   (fun o ->
                     Printf.printf "[%s] migrated %s: %s -> %s\n"
                       (Time.to_string (Engine.now eng))
                       o.Protocol.m_prog o.Protocol.m_from o.Protocol.m_dest;
                     List.iteri
                       (fun i r ->
                         Printf.printf
                           "         pre-copy round %d: %4d KB while running \
                            (%s)\n"
                           (i + 1)
                           (r.Protocol.r_bytes / 1024)
                           (Time.to_string r.Protocol.r_span))
                       o.Protocol.m_rounds;
                     Printf.printf
                       "         frozen: %d KB residue + kernel state (%s) => \
                        program stopped for just %s\n"
                       (o.Protocol.m_final_bytes / 1024)
                       (Time.to_string o.Protocol.m_kernel_state)
                       (Time.to_string (Protocol.freeze_span o)))
                   outcomes
             | Ok { Message.body = Protocol.Pm_migrate_failed m; _ } ->
                 Printf.printf "migration failed: %s\n" m
             | _ -> Printf.printf "migration: unexpected reply\n");
             match Remote_exec.wait ctx h with
             | Ok (wall, cpu) ->
                 Printf.printf
                   "[%s] tex finished: wall %s, cpu %s — it never noticed\n"
                   (Time.to_string (Engine.now eng))
                   (Time.to_string wall) (Time.to_string cpu)
             | Error e -> Printf.printf "wait failed: %s\n" e)));
  Cluster.run cl ~until:(Time.of_sec 120.);

  Printf.printf "\nowner's screen on ws0 (output followed the program):\n";
  List.iter
    (fun line -> Printf.printf "  | %s\n" line)
    (Display_server.output origin.Cluster.ws_display)
