(* The paper's motivating scenario (Section 1): "a user may wish to
   compile a program and reformat the documentation after fixing a
   program error, while continuing to read mail". We run the whole C
   compilation pipeline — cc68's five subprograms (footnote 6) — plus a
   tex job, offloading every stage onto idle workstations with "@ *"
   while the owner's workstation stays responsive.

     dune exec examples/compile_farm.exe
*)

let stages =
  [ "preprocessor"; "parser"; "optimizer"; "assembler"; "linking loader" ]

let () =
  let cl = Cluster.create ~seed:7 ~workstations:8 () in
  let origin = Cluster.workstation cl 0 in
  let eng = Cluster.engine cl in

  (* The owner keeps editing on ws0 throughout: light foreground load
     whose responsiveness we measure. *)
  let edit_latency = Stats.Summary.create () in
  ignore
    (Proc.spawn eng ~name:"owner-editing" (fun () ->
         let k = origin.Cluster.ws_kernel in
         for _ = 1 to 200 do
           let t0 = Engine.now eng in
           Cpu.compute (Kernel.cpu k) ~priority:Cpu.Foreground (Time.of_ms 5.);
           Stats.Summary.record edit_latency
             (Time.to_ms (Time.sub (Engine.now eng) t0));
           Proc.sleep eng (Time.of_ms 200.)
         done));

  (* "make": drive the pipeline. Stages of one compilation are
     sequential, but the doc-formatting tex job runs concurrently. *)
  let results = ref [] in
  let note fmt = Printf.ksprintf (fun s -> results := s :: !results) fmt in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"make" (fun ctx ->
         let t0 = Engine.now eng in
         List.iter
           (fun stage ->
             match
               Remote_exec.exec_and_wait ctx ~prog:stage
                 ~target:Remote_exec.Any
             with
             | Ok (h, wall, _) ->
                 note "  %-16s on %-4s in %s" stage h.Remote_exec.h_host
                   (Time.to_string wall)
             | Error e -> note "  %-16s FAILED: %s" stage e)
           stages;
         note "pipeline finished in %s"
           (Time.to_string (Time.sub (Engine.now eng) t0))));
  ignore
    (Cluster.shell cl ~ws:0 ~name:"tex-shell" (fun ctx ->
         match
           Remote_exec.exec_and_wait ctx ~prog:"tex" ~target:Remote_exec.Any
         with
         | Ok (h, wall, _) ->
             note "  %-16s on %-4s in %s" "tex" h.Remote_exec.h_host
               (Time.to_string wall)
         | Error e -> note "  %-16s FAILED: %s" "tex" e));

  Cluster.run cl ~until:(Time.of_sec 120.);

  Printf.printf "compile farm results:\n";
  List.iter print_endline (List.rev !results);
  Printf.printf
    "\nowner's editing on ws0 while all this ran remotely:\n\
    \  %d keystrokes, mean burst latency %.1f ms (worst %.1f ms) — \n\
    \  \"a text-editing user need not notice the presence of background \
     jobs\" (Section 2)\n"
    (Stats.Summary.count edit_latency)
    (Stats.Summary.mean edit_latency)
    (Stats.Summary.max edit_latency)
