(* Truly distributed execution (Sections 1 and 4.3): "a program may be
   decomposed into subprograms, each of which can be run on a separate
   host" — and the paper's heaviest users were "experiments in parallel
   distributed execution where the remotely executed programs want to
   commandeer 10 or more workstations at a time".

   A coordinator on ws0 fans a simulation study out as ten optimizer
   runs, one per idle workstation, gathers the results, and prints the
   cluster-wide program listing mid-flight (the paper's "facilities for
   querying ... all workstations in the system").

     dune exec examples/parallel_sim.exe
*)

let () =
  let cl = Cluster.create ~seed:3 ~workstations:12 () in
  let eng = Cluster.engine cl in
  let n_tasks = 10 in
  let finished = ref 0 in
  let span_sum = ref Time.zero in

  (* Worker shells: each runs one parameter point of the "study" on any
     idle workstation and reports back by filling a slot. *)
  let slots = Array.init n_tasks (fun _ -> Ivar.create ()) in
  for i = 0 to n_tasks - 1 do
    ignore
      (Cluster.shell cl ~ws:0 ~name:(Printf.sprintf "task%d" i) (fun ctx ->
           match
             Remote_exec.exec_and_wait ctx ~prog:"optimizer"
               ~target:Remote_exec.Any
           with
           | Ok (h, wall, _) -> Ivar.fill slots.(i) (Some (h.Remote_exec.h_host, wall))
           | Error _ -> Ivar.fill slots.(i) None))
  done;

  (* The coordinator: survey the cluster early, then gather. *)
  ignore
    (Cluster.shell cl ~ws:0 ~name:"coordinator" (fun ctx ->
         Proc.sleep eng (Time.of_sec 5.);
         Printf.printf "cluster-wide ps at t=5s:\n";
         List.iter
           (fun (host, programs) ->
             List.iter
               (fun (prog, lh, status) ->
                 Printf.printf "  %-5s lh-%-4d %-12s %s\n" host lh prog status)
               programs)
           (List.sort compare (Experiment.cluster_ps ctx));
         Array.iteri
           (fun i slot ->
             match Ivar.read slot with
             | Some (host, wall) ->
                 incr finished;
                 span_sum := Time.add !span_sum wall;
                 Printf.printf "task %2d: %-4s %s\n" i host (Time.to_string wall)
             | None -> Printf.printf "task %2d: no idle workstation\n" i)
           slots));
  Cluster.run cl ~until:(Time.of_sec 300.);

  Printf.printf
    "\n%d/%d tasks completed; a lone optimizer needs 10 s of CPU, so a \
     serial study would take %ds — the pool finished the longest task in \
     about %s\n"
    !finished n_tasks (n_tasks * 10)
    (Time.to_string (Time.scale !span_sum (1. /. float_of_int (max 1 !finished))))
