(* Integration tests for the core library: remote execution, the
   decentralized scheduler, pre-copy migration and its baselines, failure
   injection, preemption, and residual-dependency analysis. These drive
   whole simulated clusters. *)

let sec = Time.of_sec
let ms = Time.of_ms

let default_cluster ?(seed = 7) ?(workstations = 6) () =
  Cluster.create ~seed ~workstations ()

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let find_program cl (h : Remote_exec.handle) =
  match Cluster.find_workstation cl h.Remote_exec.h_host with
  | None -> None
  | Some w ->
      Progtable.find (Program_manager.table w.Cluster.ws_pm) h.Remote_exec.h_lh

(* {1 Remote execution} *)

let test_exec_local () =
  let cl = default_cluster () in
  let r = ok "exec" (Experiment.remote_exec cl ~target:Remote_exec.Local ~prog:"cc68" ()) in
  Alcotest.(check string) "ran at home" "ws0" r.Experiment.er_host;
  Alcotest.(check bool) "no selection phase" true (r.Experiment.er_select = None);
  (* Setup should be the configured 25 ms (give or take kernel ops). *)
  let setup_ms = Time.to_ms r.Experiment.er_setup in
  if setup_ms < 24. || setup_ms > 30. then
    Alcotest.failf "setup %.1f ms, expected ~25" setup_ms

let test_exec_any_selects_remote_host () =
  let cl = default_cluster () in
  let r = ok "exec" (Experiment.remote_exec cl ~prog:"cc68" ()) in
  (match r.Experiment.er_select with
  | None -> Alcotest.fail "expected a selection phase"
  | Some s ->
      (* The paper's measured 23 ms first-response time. *)
      let sel = Time.to_ms s in
      if sel < 15. || sel > 35. then
        Alcotest.failf "selection took %.1f ms, expected ~23" sel);
  Alcotest.(check bool) "some workstation answered" true
    (String.length r.Experiment.er_host > 0)

let test_exec_load_scales_with_image () =
  let cl = default_cluster () in
  let small = ok "cc68" (Experiment.remote_exec cl ~prog:"cc68" ()) in
  let cl2 = default_cluster () in
  let large = ok "tex" (Experiment.remote_exec cl2 ~prog:"tex" ()) in
  let ratio =
    Time.to_ms large.Experiment.er_load /. Time.to_ms small.Experiment.er_load
  in
  (* tex image (260 KB) vs cc68 (44 KB): load must scale roughly 6x. *)
  if ratio < 4. || ratio > 8. then
    Alcotest.failf "load ratio %.2f, expected ~5.9" ratio;
  (* And the rate itself: ~330 ms / 100 KB. *)
  let tex_kb =
    float_of_int (File_server.image_file_bytes (Programs.find "tex").Programs.image)
    /. 1024.
  in
  let rate = Time.to_ms large.Experiment.er_load /. (tex_kb /. 100.) in
  if rate < 280. || rate > 400. then
    Alcotest.failf "load rate %.0f ms/100KB, expected ~330" rate

let test_exec_named_host () =
  let cl = default_cluster () in
  let result = ref (Error "no result") in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         result :=
           Remote_exec.exec ctx ~prog:"make"
             ~target:(Remote_exec.Named "ws3")));
  Cluster.run cl ~until:(sec 30.);
  let h = ok "named exec" !result in
  Alcotest.(check string) "landed on ws3" "ws3" h.Remote_exec.h_host

let test_exec_unknown_program () =
  let cl = default_cluster () in
  match Experiment.remote_exec cl ~prog:"no-such-prog" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown program must fail"

let test_exec_nobody_accepting () =
  let cl = default_cluster ~workstations:3 () in
  List.iter
    (fun w -> Program_manager.set_accepting w.Cluster.ws_pm false)
    (Cluster.workstations cl);
  match Experiment.remote_exec cl ~prog:"make" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no volunteers: exec @* must fail"

let test_exec_and_wait_reports_times () =
  let cl = default_cluster () in
  let result = ref (Error "no result") in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         result :=
           Remote_exec.exec_and_wait ctx ~prog:"cc68"
             ~target:Remote_exec.Any));
  Cluster.run cl ~until:(sec 60.);
  let _, wall, cpu = ok "exec_and_wait" !result in
  (* cc68 demands 6 s of CPU on an idle host. *)
  let cpu_s = Time.to_sec cpu in
  if cpu_s < 5.9 || cpu_s > 6.1 then Alcotest.failf "cpu %.2fs, expected ~6" cpu_s;
  if Time.(wall < cpu) then Alcotest.fail "wall < cpu is impossible"

let test_display_output_reaches_origin () =
  let cl = default_cluster () in
  ignore (ok "exec" (Experiment.remote_exec cl ~ws:2 ~prog:"make" ()));
  let origin = Cluster.workstation cl 2 in
  let lines = Display_server.output origin.Cluster.ws_display in
  Alcotest.(check bool) "done-line on originating display" true
    (List.exists
       (fun l ->
         String.length l >= 4 && String.equal (String.sub l 0 4) "make")
       lines)

(* {1 Scheduler} *)

let test_scheduler_collects_all_idle () =
  let cl = default_cluster ~workstations:4 () in
  let sels = ref [] in
  ignore
    (Cluster.user cl ~ws:0 ~name:"survey" (fun k self ->
         sels :=
           Scheduler.Spine.candidates k (Cluster.cfg cl) ~self ~bytes:(64 * 1024)
             ~window:(ms 200.)));
  Cluster.run cl ~until:(sec 2.);
  (* All four workstations are idle and accepting. *)
  Alcotest.(check int) "four volunteers" 4 (List.length !sels)

let test_scheduler_excludes_host () =
  let cl = default_cluster ~workstations:3 () in
  let sels = ref [] in
  ignore
    (Cluster.user cl ~ws:0 ~name:"survey" (fun k self ->
         sels :=
           Scheduler.Spine.candidates ~exclude:[ "ws1" ] k (Cluster.cfg cl) ~self
             ~bytes:1024 ~window:(ms 200.)));
  Cluster.run cl ~until:(sec 2.);
  Alcotest.(check int) "two volunteers" 2 (List.length !sels);
  Alcotest.(check bool) "ws1 silent" true
    (not (List.exists (fun s -> s.Scheduler.s_host = "ws1") !sels))

(* {1 Migration} *)

let test_migrate_precopy_tex () =
  let cl = default_cluster () in
  let o = ok "migrate" (Experiment.migrate_program cl ~prog:"tex" ()) in
  (* Multiple pre-copy rounds, a small frozen residue, and sub-second
     freeze — the paper's headline behaviour. *)
  let rounds = List.length o.Protocol.m_rounds in
  if rounds < 2 then Alcotest.failf "expected >=2 copy rounds, got %d" rounds;
  let first_round = List.hd o.Protocol.m_rounds in
  Alcotest.(check int) "first round copies the whole space"
    (first_round.Protocol.r_bytes / 1024)
    708;
  if o.Protocol.m_final_bytes >= first_round.Protocol.r_bytes then
    Alcotest.fail "residue must be far below the full size";
  let freeze = Time.to_ms (Protocol.freeze_span o) in
  if freeze > 500. then Alcotest.failf "freeze %.0f ms too long" freeze;
  if freeze < 5. then Alcotest.failf "freeze %.1f ms implausibly short" freeze

let test_migrate_program_still_completes () =
  let cl = default_cluster () in
  let done_count = ref 0 in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"assembler"
             ~target:Remote_exec.Any
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             Proc.sleep (Cluster.engine cl) (sec 2.);
             (match
                Kernel.send k ~src:self
                  ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
                  (Message.make
                     (Protocol.Pm_migrate
                        {
                          lh = Some h.Remote_exec.h_lh;
                          dest = None;
                          force_destroy = false;
                          strategy = Protocol.Precopy;
                        }))
              with
             | Ok { Message.body = Protocol.Pm_migrated [ _ ]; _ } -> ()
             | _ -> Alcotest.fail "migration failed");
             match Remote_exec.wait ctx h with
             | Ok (_, cpu) ->
                 (* The full 8 s of CPU despite moving hosts mid-run. *)
                 let s = Time.to_sec cpu in
                 if s < 7.9 || s > 8.1 then
                   Alcotest.failf "cpu %.2f, expected ~8" s;
                 incr done_count
             | Error e -> Alcotest.failf "wait: %s" e)));
  Cluster.run cl ~until:(sec 120.);
  Alcotest.(check int) "completed exactly once" 1 !done_count

let test_freeze_and_copy_baseline_much_slower () =
  let cl1 = default_cluster () in
  let pre = ok "precopy" (Experiment.migrate_program cl1 ~prog:"tex" ()) in
  let cl2 = default_cluster () in
  let frz =
    ok "freeze-and-copy"
      (Experiment.migrate_program cl2 ~strategy:Protocol.Freeze_and_copy
         ~prog:"tex" ())
  in
  let f_pre = Time.to_ms (Protocol.freeze_span pre) in
  let f_frz = Time.to_ms (Protocol.freeze_span frz) in
  (* 708 KB at 3 s/MB frozen: >2 s, vs a few hundred ms for pre-copy. *)
  if f_frz < 2000. then Alcotest.failf "baseline froze only %.0f ms" f_frz;
  if f_frz /. f_pre < 5. then
    Alcotest.failf "pre-copy advantage only %.1fx" (f_frz /. f_pre)

let test_vm_flush_short_freeze_but_double_transfer () =
  let cl = default_cluster () in
  let fs = Cluster.file_server cl in
  let o =
    ok "vm-flush"
      (Experiment.migrate_program cl
         ~strategy:(Protocol.Vm_flush { page_server = File_server.pid fs })
         ~prog:"tex" ())
  in
  let freeze = Time.to_ms (Protocol.freeze_span o) in
  if freeze > 500. then Alcotest.failf "vm-flush freeze %.0f ms" freeze;
  if o.Protocol.m_faultin_bytes <= 0 then
    Alcotest.fail "vm-flush must report double-transferred pages"

let test_migrate_kernel_state_scales_with_processes () =
  let cl1 = default_cluster () in
  let small = ok "m1" (Experiment.migrate_program cl1 ~prog:"optimizer" ()) in
  let cl2 = default_cluster () in
  let big =
    ok "m2"
      (Experiment.migrate_program cl2 ~extra_processes:8 ~prog:"optimizer" ())
  in
  let d =
    Time.to_ms big.Protocol.m_kernel_state
    -. Time.to_ms small.Protocol.m_kernel_state
  in
  (* 8 extra processes at 9 ms each. *)
  if d < 71. || d > 73. then Alcotest.failf "delta %.1f ms, expected 72" d

let test_migrate_dest_dies_mid_copy () =
  let cl = default_cluster ~workstations:3 () in
  (* Make only ws2 able to volunteer as a destination, then kill it
     during the (seconds-long) pre-copy of tex. *)
  let result = ref (Error "no result") in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:(Remote_exec.Named "ws1")
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h ->
             Program_manager.set_accepting (Cluster.workstation cl 0).Cluster.ws_pm false;
             Proc.sleep (Cluster.engine cl) (sec 2.);
             (* Schedule the destination's death mid-transfer. *)
             ignore
               (Engine.schedule_after (Cluster.engine cl) (ms 500.) (fun () ->
                    Kernel.shutdown (Cluster.workstation cl 2).Cluster.ws_kernel));
             result :=
               Kernel.send k ~src:self
                 ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
                 (Message.make
                    (Protocol.Pm_migrate
                       {
                         lh = Some h.Remote_exec.h_lh;
                         dest = None;
                         force_destroy = false;
                         strategy = Protocol.Precopy;
                       }))
               |> Result.map_error (Format.asprintf "%a" Kernel.pp_send_error);
             (* Immediately after the failure, the program must still be
                resident on ws1 and unfrozen — the recovery path of
                Section 3.1.3. *)
             let ws1 = Cluster.workstation cl 1 in
             (match Program_manager.programs ws1.Cluster.ws_pm with
             | [ p ] ->
                 Alcotest.(check bool) "unfrozen" false
                   (Logical_host.frozen p.Progtable.p_lh)
             | ps ->
                 Alcotest.failf "expected 1 program on ws1, found %d"
                   (List.length ps))));
  Cluster.run cl ~until:(sec 120.);
  match !result with
  | Ok { Message.body = Protocol.Pm_migrate_failed _; _ } -> ()
  | Ok { Message.body = Protocol.Pm_migrated _; _ } ->
      Alcotest.fail "migration to a dead host cannot succeed"
  | Ok _ -> Alcotest.fail "unexpected reply"
  | Error e -> Alcotest.failf "migrate request itself failed: %s" e

let test_migrateprog_all_guests () =
  let cl = default_cluster ~workstations:4 () in
  (* Park two guests on ws1 by disabling everyone else. *)
  List.iter
    (fun w ->
      if w.Cluster.ws_index <> 1 then
        Program_manager.set_accepting w.Cluster.ws_pm false)
    (Cluster.workstations cl);
  let outcomes = ref [] in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         let h1 =
           Result.get_ok
             (Remote_exec.exec ctx ~prog:"parser" ~target:Remote_exec.Any)
         in
         let h2 =
           Result.get_ok
             (Remote_exec.exec ctx ~prog:"optimizer" ~target:Remote_exec.Any)
         in
         Alcotest.(check string) "both on ws1 (a)" "ws1" h1.Remote_exec.h_host;
         Alcotest.(check string) "both on ws1 (b)" "ws1" h2.Remote_exec.h_host;
         (* Now re-enable ws2/ws3 as destinations and evict everything. *)
         Program_manager.set_accepting (Cluster.workstation cl 2).Cluster.ws_pm true;
         Program_manager.set_accepting (Cluster.workstation cl 3).Cluster.ws_pm true;
         Proc.sleep (Cluster.engine cl) (sec 1.);
         match
           Kernel.send k ~src:self
             ~dst:(Program_manager.pid (Cluster.workstation cl 1).Cluster.ws_pm)
             (Message.make
                (Protocol.Pm_migrate
                   {
                     lh = None;
                     dest = None;
                     force_destroy = false;
                     strategy = Protocol.Precopy;
                   }))
         with
         | Ok { Message.body = Protocol.Pm_migrated os; _ } -> outcomes := os
         | _ -> Alcotest.fail "migrateprog failed"));
  Cluster.run cl ~until:(sec 200.);
  Alcotest.(check int) "both guests migrated" 2 (List.length !outcomes);
  Alcotest.(check int) "ws1 empty" 0
    (List.length (Program_manager.programs (Cluster.workstation cl 1).Cluster.ws_pm))

let test_migrateprog_force_destroy_when_no_host () =
  let cl = default_cluster ~workstations:2 () in
  (* Only ws1 accepts; once the guest is there, nobody else can take it. *)
  Program_manager.set_accepting (Cluster.workstation cl 0).Cluster.ws_pm false;
  let replied = ref false in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:Remote_exec.Any
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             Proc.sleep (Cluster.engine cl) (sec 1.);
             match
               Kernel.send k ~src:self
                 ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
                 (Message.make
                    (Protocol.Pm_migrate
                       {
                         lh = Some h.Remote_exec.h_lh;
                         dest = None;
                         force_destroy = true;
                         strategy = Protocol.Precopy;
                       }))
             with
             | Ok { Message.body = Protocol.Pm_migrated []; _ } -> replied := true
             | _ -> Alcotest.fail "expected empty outcome list (destroyed)")));
  Cluster.run cl ~until:(sec 60.);
  Alcotest.(check bool) "migrateprog -n replied" true !replied;
  Alcotest.(check int) "guest destroyed" 0
    (List.length (Program_manager.programs (Cluster.workstation cl 1).Cluster.ws_pm))

let exec_then_migrate cl ~prog ctx =
  (* The driver lives on ws0; keep the program off it so killing the
     program's old host never kills the driver. *)
  Program_manager.set_accepting (Cluster.workstation cl 0).Cluster.ws_pm false;
  match Remote_exec.exec ctx ~prog ~target:Remote_exec.Any with
  | Error e -> Error ("exec: " ^ e)
  | Ok h -> (
      Proc.sleep (Cluster.engine cl) (sec 1.);
      match
        Kernel.send (Context.kernel ctx) ~src:(Context.self ctx)
          ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
          (Message.make
             (Protocol.Pm_migrate
                {
                  lh = Some h.Remote_exec.h_lh;
                  dest = None;
                  force_destroy = false;
                  strategy = Protocol.Precopy;
                }))
      with
      | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } -> Ok (h, o)
      | _ -> Error "migration failed")

(* {1 Program management: suspend / resume / destroy (Section 2)} *)

let test_suspend_resume_stretches_wall_time () =
  let cl = default_cluster () in
  let result = ref None in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         match
           Remote_exec.exec ctx ~prog:"cc68"
             ~target:Remote_exec.Any
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h ->
             Proc.sleep (Cluster.engine cl) (sec 1.);
             (match Remote_exec.suspend ctx h with
             | Ok () -> ()
             | Error e -> Alcotest.failf "suspend: %s" e);
             (* Frozen: CPU consumption must not advance. *)
             let p = Option.get (find_program cl h) in
             let cpu_at_suspend = p.Progtable.p_cpu_used in
             Proc.sleep (Cluster.engine cl) (sec 5.);
             Alcotest.(check int) "no cpu while suspended"
               (Time.to_us cpu_at_suspend)
               (Time.to_us p.Progtable.p_cpu_used);
             (match Remote_exec.resume ctx h with
             | Ok () -> ()
             | Error e -> Alcotest.failf "resume: %s" e);
             result := Some (Remote_exec.wait ctx h)));
  Cluster.run cl ~until:(sec 60.);
  match !result with
  | Some (Ok (wall, cpu)) ->
      Alcotest.(check bool) "full cpu" true
        (Float.abs (Time.to_sec cpu -. 6.0) < 0.05);
      (* 6s of work + 5s suspension: wall must exceed 11s. *)
      if Time.to_sec wall < 11.0 then
        Alcotest.failf "wall %.1fs should include the 5s suspension"
          (Time.to_sec wall)
  | Some (Error e) -> Alcotest.failf "wait: %s" e
  | None -> Alcotest.fail "experiment incomplete"

let test_suspend_twice_refused () =
  let cl = default_cluster () in
  let second = ref None in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         let h =
           Result.get_ok
             (Remote_exec.exec ctx ~prog:"tex"
                ~target:Remote_exec.Any)
         in
         Proc.sleep (Cluster.engine cl) (sec 1.);
         ignore (Remote_exec.suspend ctx h);
         second := Some (Remote_exec.suspend ctx h)));
  Cluster.run cl ~until:(sec 30.);
  match !second with
  | Some (Error _) -> ()
  | Some (Ok ()) -> Alcotest.fail "double suspend must be refused"
  | None -> Alcotest.fail "incomplete"

let test_migrate_suspended_refused () =
  let cl = default_cluster () in
  let refused = ref false in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         let h =
           Result.get_ok
             (Remote_exec.exec ctx ~prog:"tex"
                ~target:Remote_exec.Any)
         in
         Proc.sleep (Cluster.engine cl) (sec 1.);
         ignore (Remote_exec.suspend ctx h);
         match
           Kernel.send k ~src:self
             ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
             (Message.make
                (Protocol.Pm_migrate
                   {
                     lh = Some h.Remote_exec.h_lh;
                     dest = None;
                     force_destroy = false;
                     strategy = Protocol.Precopy;
                   }))
         with
         | Ok { Message.body = Protocol.Pm_migrate_failed _; _ } ->
             refused := true
         | _ -> ()));
  Cluster.run cl ~until:(sec 30.);
  Alcotest.(check bool) "suspended program not migratable" true !refused

let test_destroy_answers_waiters_with_failure () =
  let cl = default_cluster () in
  let wait_result = ref None in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         let h =
           Result.get_ok
             (Remote_exec.exec ctx ~prog:"tex"
                ~target:Remote_exec.Any)
         in
         (* A second shell waits for completion... *)
         ignore
           (Cluster.shell cl ~ws:1 ~name:"waiter" (fun ctx2 ->
                wait_result := Some (Remote_exec.wait ctx2 h)));
         Proc.sleep (Cluster.engine cl) (sec 2.);
         (* ... and the owner kills the program. *)
         match Remote_exec.destroy ctx h with
         | Ok () -> ()
         | Error e -> Alcotest.failf "destroy: %s" e));
  Cluster.run cl ~until:(sec 60.);
  match !wait_result with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "waiter of a destroyed program must see failure"
  | None -> Alcotest.fail "waiter never answered"

let test_suspend_works_across_migration () =
  (* Location independence: suspend the program through its logical-host
     id after it has moved — the request finds the new host's manager. *)
  let cl = default_cluster () in
  let suspended = ref None in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         match exec_then_migrate cl ~prog:"tex" ctx with
         | Error e -> Alcotest.fail e
         | Ok (h, o) ->
             ignore o;
             suspended := Some (Remote_exec.suspend ctx h)));
  Cluster.run cl ~until:(sec 60.);
  match !suspended with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "suspend after migration: %s" e
  | None -> Alcotest.fail "incomplete"

(* {1 Sub-programs (Section 3)} *)

let test_subprograms_share_logical_host () =
  let cl = default_cluster () in
  let checks = ref 0 in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:Remote_exec.Any
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             match find_program cl h with
             | None -> Alcotest.fail "record missing"
             | Some parent ->
                 let sub1 =
                   Result.get_ok
                     (Subprogram.spawn (Cluster.directory cl) (Cluster.rng cl)
                        ~parent ~prog:"cc68")
                 in
                 let sub2 =
                   Result.get_ok
                     (Subprogram.spawn (Cluster.directory cl) (Cluster.rng cl)
                        ~parent ~prog:"assembler")
                 in
                 (* Same logical host, three address spaces. *)
                 Alcotest.(check int) "same lh (sub1)" h.Remote_exec.h_lh
                   (Subprogram.pid sub1).Ids.lh;
                 Alcotest.(check int) "same lh (sub2)" h.Remote_exec.h_lh
                   (Subprogram.pid sub2).Ids.lh;
                 Alcotest.(check int) "three spaces" 3
                   (List.length (Logical_host.spaces parent.Progtable.p_lh));
                 incr checks;
                 (* Both subs run to completion; their CPU is charged to
                    the parent's account. *)
                 Alcotest.(check bool) "sub1 completes" true
                   (Subprogram.join sub1 = Proc.Normal);
                 Alcotest.(check bool) "sub2 completes" true
                   (Subprogram.join sub2 = Proc.Normal);
                 let charged = Time.to_sec parent.Progtable.p_cpu_used in
                 (* >= 6 (cc68) + 8 (assembler); parent still running. *)
                 if charged < 14.0 then
                   Alcotest.failf "only %.1fs charged" charged;
                 incr checks)));
  Cluster.run cl ~until:(sec 120.);
  Alcotest.(check int) "assertions ran" 2 !checks

let test_subprograms_migrate_with_parent () =
  let cl = default_cluster () in
  let outcome = ref None in
  let sub_exit = ref None in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:Remote_exec.Any
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             match find_program cl h with
             | None -> Alcotest.fail "record missing"
             | Some parent -> (
                 let sub =
                   Result.get_ok
                     (Subprogram.spawn (Cluster.directory cl) (Cluster.rng cl)
                        ~parent ~prog:"parser")
                 in
                 Proc.sleep (Cluster.engine cl) (sec 2.);
                 match
                   Kernel.send k ~src:self
                     ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
                     (Message.make
                        (Protocol.Pm_migrate
                           {
                             lh = Some h.Remote_exec.h_lh;
                             dest = None;
                             force_destroy = false;
                             strategy = Protocol.Precopy;
                           }))
                 with
                 | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } ->
                     outcome := Some o;
                     (* The sub-program survives the move and finishes. *)
                     sub_exit := Some (Subprogram.join sub)
                 | _ -> Alcotest.fail "migration failed"))));
  Cluster.run cl ~until:(sec 200.);
  (match !outcome with
  | None -> Alcotest.fail "no migration outcome"
  | Some o ->
      (* 2 processes + 2 spaces minimum: kernel state >= 14 + 9*4 ms. *)
      if Time.to_ms o.Protocol.m_kernel_state < 50. then
        Alcotest.failf "kernel state %.0f ms too small for two spaces"
          (Time.to_ms o.Protocol.m_kernel_state));
  Alcotest.(check bool) "sub-program completed after migration" true
    (!sub_exit = Some Proc.Normal)

let test_remote_subprogram_does_not_migrate_with_parent () =
  (* The paper's exception: "when a sub-program is executed remotely from
     its parent program" it lives in its own logical host and stays put
     when the parent moves. *)
  let checked = ref false in
  let cl = default_cluster ~seed:61 () in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:Remote_exec.Any
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok parent_h -> (
             (* The parent "executes a sub-program remotely": same library
                call, from anywhere. *)
             match
               Remote_exec.exec ctx ~prog:"cc68"
                 ~target:Remote_exec.Any
             with
             | Error e -> Alcotest.failf "child exec: %s" e
             | Ok child_h -> (
                 Alcotest.(check bool) "separate logical hosts" true
                   (parent_h.Remote_exec.h_lh <> child_h.Remote_exec.h_lh);
                 let child_host_before = child_h.Remote_exec.h_host in
                 Proc.sleep (Cluster.engine cl) (sec 1.);
                 match
                   Kernel.send k ~src:self
                     ~dst:(Ids.program_manager_of parent_h.Remote_exec.h_lh)
                     (Message.make
                        (Protocol.Pm_migrate
                           {
                             lh = Some parent_h.Remote_exec.h_lh;
                             dest = None;
                             force_destroy = false;
                             strategy = Protocol.Precopy;
                           }))
                 with
                 | Ok { Message.body = Protocol.Pm_migrated [ _ ]; _ } ->
                     (* The remotely executed child did not move. *)
                     let w =
                       Option.get (Cluster.find_workstation cl child_host_before)
                     in
                     Alcotest.(check bool) "child still at its host" true
                       (Kernel.find_lh w.Cluster.ws_kernel
                          child_h.Remote_exec.h_lh
                       <> None);
                     checked := true
                 | _ -> Alcotest.fail "parent migration failed"))));
  Cluster.run cl ~until:(sec 60.);
  Alcotest.(check bool) "assertions ran" true !checked

let test_usage_on_bridged_cluster () =
  let cl = Cluster.create ~seed:71 ~workstations:10 ~bridged:4 () in
  let stats =
    Experiment.usage cl
      {
        Experiment.u_horizon = sec 120.;
        u_job_rate_per_sec = 0.1;
        u_owner = Arrivals.Owner.default;
        u_progs = [ "cc68"; "make" ];
      }
  in
  Alcotest.(check bool) "jobs ran across the internet" true
    (stats.Experiment.us_honored > 0);
  Alcotest.(check int) "none refused" 0 stats.Experiment.us_refused

(* {1 Load balancing (Section 6 future work)} *)

let test_balancer_spreads_skewed_load () =
  (* Pile six guests onto ws1 explicitly, then let the balancer use the
     preemption facility to even things out. *)
  let cfg = { Config.default with Config.max_guests = 8 } in
  let cl = Cluster.create ~seed:41 ~workstations:5 ~cfg () in
  let completed = ref 0 in
  for i = 1 to 6 do
    ignore
      (Cluster.shell cl ~ws:0 ~name:(Printf.sprintf "job%d" i) (fun ctx ->
           match
             Remote_exec.exec_and_wait ctx ~prog:"optimizer"
               ~target:(Remote_exec.Named "ws1")
           with
           | Ok _ -> incr completed
           | Error e -> Alcotest.failf "job: %s" e))
  done;
  let b =
    Balancer.start ~interval:(sec 3.) ~imbalance:2
      (Cluster.workstation cl 0).Cluster.ws_kernel
  in
  Cluster.run cl ~until:(sec 120.);
  Alcotest.(check int) "all six completed" 6 !completed;
  if Balancer.rebalances b < 2 then
    Alcotest.failf "balancer moved only %d guests" (Balancer.rebalances b);
  Alcotest.(check bool) "it kept surveying" true (Balancer.surveys b > 5)

let test_balancer_idle_cluster_no_moves () =
  let cl = Cluster.create ~seed:42 ~workstations:4 () in
  let b =
    Balancer.start ~interval:(sec 2.)
      (Cluster.workstation cl 0).Cluster.ws_kernel
  in
  Cluster.run cl ~until:(sec 30.);
  Alcotest.(check int) "nothing to move" 0 (Balancer.rebalances b);
  Balancer.stop b

(* {1 Rebinding ablation: Demos/MP forwarding addresses (Section 5)} *)

let forwarding_cluster ?(workstations = 4) seed =
  let cfg =
    {
      Config.default with
      Config.os = { Os_params.default with Os_params.rebind = Os_params.Forwarding };
    }
  in
  Cluster.create ~seed ~workstations ~cfg ()

let test_forwarding_relays_stale_references () =
  let cl = forwarding_cluster 31 in
  let done_ok = ref false in
  let old_host = ref "" in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         match exec_then_migrate cl ~prog:"assembler" ctx with
         | Error e -> Alcotest.fail e
         | Ok (h, o) -> (
             old_host := o.Protocol.m_from;
             (* Our binding for the program's logical host is stale (it
                points at the old host); with no Where_is mechanism the
                completion wait must ride the forwarding address. *)
             match Remote_exec.wait ctx h with
             | Ok _ -> done_ok := true
             | Error e -> Alcotest.failf "wait via forwarding: %s" e)));
  Cluster.run cl ~until:(sec 120.);
  Alcotest.(check bool) "completed" true !done_ok;
  match Cluster.find_workstation cl !old_host with
  | Some w ->
      (* The residual load the paper criticizes: the old host relayed. *)
      if Kernel.stat w.Cluster.ws_kernel "forwarded" = 0 then
        Alcotest.fail "expected forwarded packets at the old host"
  | None -> Alcotest.fail "old host not found"

let test_forwarding_fails_after_old_host_reboot () =
  (* The paper's criticism of Demos/MP, demonstrated: reboot the old host
     while a stale reference exists; the reference dies. The same
     scenario under V's broadcast-query rebinding succeeds. *)
  let run_mode ~forwarding =
    let cl =
      if forwarding then forwarding_cluster 32
      else Cluster.create ~seed:32 ~workstations:4 ()
    in
    let result = ref None in
    ignore
      (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
           match exec_then_migrate cl ~prog:"tex" ctx with
           | Error e -> Alcotest.fail e
           | Ok (h, o) ->
               (match Cluster.find_workstation cl o.Protocol.m_from with
               | Some w -> Kernel.shutdown w.Cluster.ws_kernel
               | None -> Alcotest.fail "old host not found");
               result := Some (Remote_exec.wait ctx h)));
    Cluster.run cl ~until:(sec 200.);
    !result
  in
  (match run_mode ~forwarding:true with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "forwarding should break on old-host reboot"
  | None -> Alcotest.fail "forwarding scenario incomplete");
  match run_mode ~forwarding:false with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "V rebinding should survive reboot: %s" e
  | None -> Alcotest.fail "V scenario incomplete"

(* {1 Residual dependencies} *)

let test_no_residual_dependencies_with_global_servers () =
  let cl = default_cluster () in
  let checked = ref false in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         match
           Remote_exec.exec ctx ~prog:"parser"
             ~target:Remote_exec.Any
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             Proc.sleep (Cluster.engine cl) (sec 1.);
             match
               Cluster.find_workstation cl h.Remote_exec.h_host
               |> Fun.flip Option.bind (fun w ->
                      Progtable.find
                        (Program_manager.table w.Cluster.ws_pm)
                        h.Remote_exec.h_lh)
             with
             | None -> Alcotest.fail "program record missing"
             | Some p ->
                 (* Files and names come from the server machine; the only
                    cross-host binding besides it is the owner's display. *)
                 let deps =
                   Residual.residual_hosts ~ignore_display:true (Cluster.directory cl) p
                 in
                 Alcotest.(check (list string))
                   "only the server machine" [ "fileserver" ] deps;
                 Alcotest.(check bool) "origin not depended on" false
                   (Residual.depends_on ~ignore_display:true (Cluster.directory cl) p
                      ~host:"ws0");
                 checked := true)));
  Cluster.run cl ~until:(sec 30.);
  Alcotest.(check bool) "assertions ran" true !checked

let test_survives_origin_reboot_after_migration () =
  (* The no-residual-dependency claim, end to end: run remotely from ws0,
     migrate the program elsewhere, reboot ws0 — the program must still
     complete. (Its completion line is lost with ws0's display, so we
     watch the program record.) *)
  let cl = default_cluster () in
  let prog_ref = ref None in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"optimizer"
             ~target:Remote_exec.Any
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             Proc.sleep (Cluster.engine cl) (sec 1.);
             match
               Kernel.send k ~src:self
                 ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
                 (Message.make
                    (Protocol.Pm_migrate
                       {
                         lh = Some h.Remote_exec.h_lh;
                         dest = None;
                         force_destroy = false;
                         strategy = Protocol.Precopy;
                       }))
             with
             | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } -> (
                 match
                   Cluster.find_workstation cl o.Protocol.m_dest
                   |> Fun.flip Option.bind (fun w ->
                          Progtable.find
                            (Program_manager.table w.Cluster.ws_pm)
                            h.Remote_exec.h_lh)
                 with
                 | Some p ->
                     prog_ref := Some p;
                     (* Origin reboots. *)
                     Kernel.shutdown (Cluster.workstation cl 0).Cluster.ws_kernel
                 | None -> Alcotest.fail "record not adopted")
             | _ -> Alcotest.fail "migration failed")));
  Cluster.run cl ~until:(sec 120.);
  match !prog_ref with
  | Some p -> (
      match p.Progtable.p_status with
      | Progtable.Done _ -> ()
      | _ -> Alcotest.fail "program did not survive origin reboot")
  | None -> Alcotest.fail "experiment did not reach the reboot"

let test_freeze_span_matches_program_experience () =
  (* Cross-validate the protocol's reported freeze span against what the
     program itself experiences: sample its accumulated CPU every 10 ms
     and find the longest stall. The two views must agree to within the
     sampling grain plus a scheduler quantum. *)
  let cl = default_cluster ~seed:77 () in
  let eng = Cluster.engine cl in
  let outcome = ref None in
  let longest_stall = ref Time.zero in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         match exec_then_migrate cl ~prog:"tex" ctx with
         | Error e -> Alcotest.fail e
         | Ok (_, o) -> outcome := Some o));
  ignore
    (Cluster.user cl ~ws:0 ~name:"observer" (fun k _ ->
         ignore k;
         (* Find the program record once it exists. *)
         let rec find_p () =
           let p =
             List.find_map
               (fun w ->
                 match Program_manager.programs w.Cluster.ws_pm with
                 | p :: _ -> Some p
                 | [] -> None)
               (Cluster.workstations cl)
           in
           match p with
           | Some p -> p
           | None ->
               Proc.sleep eng (ms 10.);
               find_p ()
         in
         let p = find_p () in
         let last_progress = ref (Engine.now eng) in
         let last_cpu = ref Time.zero in
         for _ = 1 to 2000 do
           Proc.sleep eng (ms 10.);
           if Time.(p.Progtable.p_cpu_used > !last_cpu) then begin
             let stall = Time.sub (Engine.now eng) !last_progress in
             if Time.(stall > !longest_stall) then longest_stall := stall;
             last_cpu := p.Progtable.p_cpu_used;
             last_progress := Engine.now eng
           end
         done));
  Cluster.run cl ~until:(sec 60.);
  match !outcome with
  | None -> Alcotest.fail "no migration outcome"
  | Some o ->
      let reported = Time.to_ms (Protocol.freeze_span o) in
      let observed = Time.to_ms !longest_stall in
      (* The observed stall includes up to one sampling period and one
         scheduler quantum of slack around the true freeze. *)
      if observed < reported -. 1. || observed > reported +. 45. then
        Alcotest.failf
          "program experienced a %.1f ms stall but the protocol reported \
           %.1f ms frozen"
          observed reported

(* {1 Property sweeps: migration correctness under random conditions}

   The paper's correctness argument (Section 3.1.3) is that atomic
   transfer plus the IPC recovery machinery make migration invisible:
   whatever the timing, the program runs to completion having received
   exactly its CPU demand. We sweep random seeds, migration trigger
   times, strategies and loss rates. *)

let run_migration_scenario ~seed ~migrate_after_ms ~strategy ~loss =
  let net_config = { Ethernet.default_config with loss_probability = loss } in
  let cl = Cluster.create ~seed ~workstations:5 ~net_config () in
  let strategy =
    match strategy with
    | 0 -> Protocol.Precopy
    | 1 -> Protocol.Freeze_and_copy
    | _ -> Protocol.Vm_flush { page_server = File_server.pid (Cluster.file_server cl) }
  in
  let verdict = ref (Error "scenario incomplete") in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"assembler"
             ~target:Remote_exec.Any
         with
         | Error e -> verdict := Error ("exec: " ^ e)
         | Ok h -> (
             Proc.sleep (Cluster.engine cl) (Time.of_ms (float_of_int migrate_after_ms));
             let stable_pm =
               match Cluster.find_workstation cl h.Remote_exec.h_host with
               | Some w -> Program_manager.pid w.Cluster.ws_pm
               | None -> Ids.program_manager_of h.Remote_exec.h_lh
             in
             let migrated =
               match
                 Kernel.send k ~src:self ~dst:stable_pm
                   (Message.make
                      (Protocol.Pm_migrate
                         {
                           lh = Some h.Remote_exec.h_lh;
                           dest = None;
                           force_destroy = false;
                           strategy;
                         }))
               with
               | Ok { Message.body = Protocol.Pm_migrated [ _ ]; _ } -> true
               | _ -> false
             in
             match Remote_exec.wait ctx h with
             | Ok (_, cpu) ->
                 let s = Time.to_sec cpu in
                 if s < 7.99 || s > 8.01 then
                   verdict := Error (Printf.sprintf "cpu %.3f after %s" s
                                       (if migrated then "migration" else "no migration"))
                 else verdict := Ok ()
             | Error e -> verdict := Error ("wait: " ^ e))));
  Cluster.run cl ~until:(sec 300.);
  !verdict

let prop_migration_invisible =
  QCheck.Test.make ~name:"program unaffected by migration timing/strategy"
    ~count:25
    QCheck.(triple (int_bound 1000) (int_bound 6000) (int_bound 2))
    (fun (seed, migrate_after_ms, strategy) ->
      match
        run_migration_scenario ~seed:(seed + 1) ~migrate_after_ms ~strategy
          ~loss:0.
      with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

let prop_migration_survives_loss =
  QCheck.Test.make ~name:"migration correct under packet loss" ~count:10
    QCheck.(pair (int_bound 1000) (int_bound 40))
    (fun (seed, loss_millis) ->
      match
        run_migration_scenario ~seed:(seed + 5000) ~migrate_after_ms:2000
          ~strategy:0
          ~loss:(float_of_int loss_millis /. 1000.)
      with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "loss=%d/1000: %s" loss_millis e)

(* {1 Dirty-rate measurement (Table 4-1 plumbing)} *)

let test_dirty_rate_matches_calibration () =
  let cl = default_cluster () in
  let measured =
    ok "dirty" (Experiment.dirty_rate cl ~prog:"tex" ~window:(sec 1.) ~reps:3 ())
  in
  (* The paper's tex row says 111.6 KB/s-window; the stochastic model
     should land within ~20%. *)
  if measured < 85. || measured > 135. then
    Alcotest.failf "tex 1s dirty %.1f KB, expected ~111.6" measured

(* {1 Usage smoke test} *)

let test_usage_smoke () =
  let cl = default_cluster ~workstations:8 () in
  let stats =
    Experiment.usage cl
      {
        Experiment.u_horizon = sec 120.;
        u_job_rate_per_sec = 0.15;
        u_owner = Arrivals.Owner.default;
        u_progs = [ "cc68"; "make"; "assembler" ];
      }
  in
  Alcotest.(check bool) "jobs submitted" true (stats.Experiment.us_submitted > 0);
  Alcotest.(check bool) "most jobs honored" true
    (stats.Experiment.us_honored * 10 >= stats.Experiment.us_submitted * 6);
  if stats.Experiment.us_mean_idle < 0.5 then
    Alcotest.failf "idle fraction %.2f too low" stats.Experiment.us_mean_idle

let () =
  Alcotest.run "v_core"
    [
      ( "remote-exec",
        [
          Alcotest.test_case "local" `Quick test_exec_local;
          Alcotest.test_case "@* selects a host (23ms)" `Quick
            test_exec_any_selects_remote_host;
          Alcotest.test_case "load scales with image" `Quick
            test_exec_load_scales_with_image;
          Alcotest.test_case "@machine" `Quick test_exec_named_host;
          Alcotest.test_case "unknown program" `Quick test_exec_unknown_program;
          Alcotest.test_case "no volunteers" `Quick test_exec_nobody_accepting;
          Alcotest.test_case "wait reports cpu/wall" `Quick
            test_exec_and_wait_reports_times;
          Alcotest.test_case "display output at origin" `Quick
            test_display_output_reaches_origin;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "collects all idle" `Quick
            test_scheduler_collects_all_idle;
          Alcotest.test_case "exclusion" `Quick test_scheduler_excludes_host;
        ] );
      ( "migration",
        [
          Alcotest.test_case "precopy tex" `Quick test_migrate_precopy_tex;
          Alcotest.test_case "program completes across move" `Quick
            test_migrate_program_still_completes;
          Alcotest.test_case "freeze-and-copy baseline" `Quick
            test_freeze_and_copy_baseline_much_slower;
          Alcotest.test_case "vm-flush" `Quick
            test_vm_flush_short_freeze_but_double_transfer;
          Alcotest.test_case "kernel state scales" `Quick
            test_migrate_kernel_state_scales_with_processes;
          Alcotest.test_case "destination dies mid-copy" `Quick
            test_migrate_dest_dies_mid_copy;
          Alcotest.test_case "migrateprog all guests" `Quick
            test_migrateprog_all_guests;
          Alcotest.test_case "force destroy (-n)" `Quick
            test_migrateprog_force_destroy_when_no_host;
        ] );
      ( "management",
        [
          Alcotest.test_case "suspend/resume" `Quick
            test_suspend_resume_stretches_wall_time;
          Alcotest.test_case "double suspend refused" `Quick
            test_suspend_twice_refused;
          Alcotest.test_case "migrate suspended refused" `Quick
            test_migrate_suspended_refused;
          Alcotest.test_case "destroy fails waiters" `Quick
            test_destroy_answers_waiters_with_failure;
          Alcotest.test_case "suspend across migration" `Quick
            test_suspend_works_across_migration;
        ] );
      ( "subprograms",
        [
          Alcotest.test_case "share the logical host" `Quick
            test_subprograms_share_logical_host;
          Alcotest.test_case "migrate with the parent" `Quick
            test_subprograms_migrate_with_parent;
        ] );
      ( "remote-subprograms",
        [
          Alcotest.test_case "remote child stays put" `Quick
            test_remote_subprogram_does_not_migrate_with_parent;
          Alcotest.test_case "usage on bridged cluster" `Quick
            test_usage_on_bridged_cluster;
        ] );
      ( "load-balancing",
        [
          Alcotest.test_case "spreads skewed load" `Quick
            test_balancer_spreads_skewed_load;
          Alcotest.test_case "idle cluster untouched" `Quick
            test_balancer_idle_cluster_no_moves;
        ] );
      ( "rebinding-ablation",
        [
          Alcotest.test_case "forwarding relays stale refs" `Quick
            test_forwarding_relays_stale_references;
          Alcotest.test_case "forwarding breaks on reboot, V does not" `Quick
            test_forwarding_fails_after_old_host_reboot;
        ] );
      ( "residual",
        [
          Alcotest.test_case "global servers leave none" `Quick
            test_no_residual_dependencies_with_global_servers;
          Alcotest.test_case "survives origin reboot" `Quick
            test_survives_origin_reboot_after_migration;
        ] );
      ( "workload",
        [
          Alcotest.test_case "dirty rate matches calibration" `Quick
            test_dirty_rate_matches_calibration;
        ] );
      ( "usage",
        [ Alcotest.test_case "pool-of-processors smoke" `Quick test_usage_smoke ] );
      ( "freeze-validation",
        [
          Alcotest.test_case "reported freeze = experienced stall" `Quick
            test_freeze_span_matches_program_experience;
        ] );
      ( "property-sweeps",
        List.map QCheck_alcotest.to_alcotest
          [ prop_migration_invisible; prop_migration_survives_loss ] );
    ]
