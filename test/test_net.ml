(* Tests for the Ethernet model: timing, delivery, multicast, loss, the
   shared-medium FIFO, and bulk-transfer calibration. *)

let ms = Time.of_ms
let _ = ms
let addr = Addr.of_int

type payload = P of int

let make_net ?config ?(seed = 1) () =
  let e = Engine.create () in
  let rng = Rng.create seed in
  let net : payload Ethernet.t = Ethernet.create ?config e rng in
  (e, net)

let test_unicast_delivery () =
  let e, net = make_net () in
  let got = ref [] in
  let _a = Ethernet.attach net (addr 1) (fun _ -> Alcotest.fail "sender rx") in
  let _b =
    Ethernet.attach net (addr 2) (fun f ->
        let (P n) = f.Frame.payload in
        got := (n, Engine.now e) :: !got)
  in
  Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:64 (P 7));
  Engine.run e;
  match !got with
  | [ (7, at) ] ->
      (* 64 bytes on a 1.25 MB/s wire: 52us (rounded up) + 5us propagation. *)
      Alcotest.(check int) "arrival time" 57 (Time.to_us at)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_broadcast_excludes_sender () =
  let e, net = make_net () in
  let hits = ref 0 in
  let _a = Ethernet.attach net (addr 1) (fun _ -> Alcotest.fail "self rx") in
  let _b = Ethernet.attach net (addr 2) (fun _ -> incr hits) in
  let _c = Ethernet.attach net (addr 3) (fun _ -> incr hits) in
  Ethernet.send net (Frame.broadcast ~src:(addr 1) ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "both others" 2 !hits

let test_multicast_membership () =
  let e, net = make_net () in
  let hits = ref [] in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let b = Ethernet.attach net (addr 2) (fun _ -> hits := 2 :: !hits) in
  let _c = Ethernet.attach net (addr 3) (fun _ -> hits := 3 :: !hits) in
  Ethernet.subscribe b 77;
  Ethernet.send net (Frame.multicast ~src:(addr 1) ~group:77 ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check (list int)) "only subscriber" [ 2 ] !hits

let test_unsubscribe () =
  let e, net = make_net () in
  let hits = ref 0 in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let b = Ethernet.attach net (addr 2) (fun _ -> incr hits) in
  Ethernet.subscribe b 5;
  Ethernet.unsubscribe b 5;
  Ethernet.send net (Frame.multicast ~src:(addr 1) ~group:5 ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "no delivery" 0 !hits

let test_detach_drops () =
  let e, net = make_net () in
  let hits = ref 0 in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let b = Ethernet.attach net (addr 2) (fun _ -> incr hits) in
  Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:64 (P 0));
  Ethernet.detach b;
  Engine.run e;
  Alcotest.(check int) "crashed host receives nothing" 0 !hits;
  Alcotest.(check bool) "attached reports false" false (Ethernet.attached b)

let test_attach_duplicate_raises () =
  let _, net = make_net () in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  Alcotest.check_raises "duplicate attach"
    (Invalid_argument "Ethernet.attach: station-1 already attached") (fun () ->
      ignore (Ethernet.attach net (addr 1) (fun _ -> ())))

let test_oversize_frame_rejected () =
  let _, net = make_net () in
  Alcotest.check_raises "oversize"
    (Invalid_argument "Ethernet.send: frame of 9999 bytes exceeds maximum 1536")
    (fun () ->
      Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:9999 (P 0)))

let test_medium_serializes () =
  let e, net = make_net () in
  let times = ref [] in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let _b =
    Ethernet.attach net (addr 2) (fun _ -> times := Engine.now e :: !times)
  in
  (* Two 1250-byte frames offered at t=0: wire time 1ms each; the second
     must queue behind the first. *)
  Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:1250 (P 1));
  Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:1250 (P 2));
  Engine.run e;
  match List.rev !times with
  | [ t1; t2 ] ->
      Alcotest.(check int) "first clears at 1ms+prop" 1005 (Time.to_us t1);
      Alcotest.(check int) "second waits for medium" 2005 (Time.to_us t2)
  | _ -> Alcotest.fail "expected two deliveries"

let test_loss () =
  let config = { Ethernet.default_config with loss_probability = 1.0 } in
  let e, net = make_net ~config () in
  let hits = ref 0 in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let _b = Ethernet.attach net (addr 2) (fun _ -> incr hits) in
  for _ = 1 to 10 do
    Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:64 (P 0))
  done;
  Engine.run e;
  Alcotest.(check int) "all lost" 0 !hits;
  Alcotest.(check int) "drop counter" 10 (Ethernet.frames_dropped net)

let test_set_loss_midrun () =
  let e, net = make_net () in
  let hits = ref 0 in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let _b = Ethernet.attach net (addr 2) (fun _ -> incr hits) in
  Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:64 (P 0));
  Ethernet.set_loss net 1.0;
  Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "first delivered, second lost" 1 !hits

let test_wire_time_padding () =
  let _, net = make_net () in
  (* A 10-byte frame is padded to the 64-byte minimum: 52us. *)
  Alcotest.(check int) "padded" 52 (Time.to_us (Ethernet.wire_time net 10));
  Alcotest.(check int) "1KB frame" 820 (Time.to_us (Ethernet.wire_time net 1024))

(* {1 Recipient-cache invalidation}

   Delivery uses cached sorted rosters (whole-wire and per-group); these
   tests churn membership between cached deliveries to prove the caches
   invalidate on attach, detach, subscribe, and unsubscribe. *)

let test_roster_sees_late_attach () =
  let e, net = make_net () in
  let hits = ref 0 in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let _b = Ethernet.attach net (addr 2) (fun _ -> incr hits) in
  (* Prime the broadcast roster cache... *)
  Ethernet.send net (Frame.broadcast ~src:(addr 1) ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "first broadcast" 1 !hits;
  (* ...then attach a new station and broadcast again: the stale roster
     would miss it. *)
  let _c = Ethernet.attach net (addr 3) (fun _ -> hits := !hits + 10) in
  Ethernet.send net (Frame.broadcast ~src:(addr 1) ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "late attach receives" 12 !hits

let test_roster_detach_then_reattach () =
  let e, net = make_net () in
  let hits = ref 0 in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let b = Ethernet.attach net (addr 2) (fun _ -> incr hits) in
  Ethernet.send net (Frame.broadcast ~src:(addr 1) ~bytes:64 (P 0));
  Engine.run e;
  Ethernet.detach b;
  Ethernet.send net (Frame.broadcast ~src:(addr 1) ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "detached station silent" 1 !hits;
  (* Reboot: same address, fresh station — the cache must pick it up. *)
  let _b' = Ethernet.attach net (addr 2) (fun _ -> hits := !hits + 10) in
  Ethernet.send net (Frame.broadcast ~src:(addr 1) ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "reattached station receives" 11 !hits

let test_group_roster_churn () =
  let e, net = make_net () in
  let log = ref [] in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let b = Ethernet.attach net (addr 2) (fun _ -> log := 2 :: !log) in
  let c = Ethernet.attach net (addr 3) (fun _ -> log := 3 :: !log) in
  let cast () =
    Ethernet.send net (Frame.multicast ~src:(addr 1) ~group:77 ~bytes:64 (P 0));
    Engine.run e
  in
  Ethernet.subscribe b 77;
  cast ();
  (* Membership flips between cached deliveries. *)
  Ethernet.subscribe c 77;
  cast ();
  Ethernet.unsubscribe b 77;
  cast ();
  Ethernet.detach c;
  cast ();
  Alcotest.(check (list int))
    "each delivery sees current membership" [ 2; 2; 3; 3 ] (List.rev !log)

(* {1 Bulk transfers} *)

let test_transfer_rate_calibration () =
  (* The headline constant: 3 seconds per megabyte (Section 4.1). *)
  let rate =
    Transfer.seconds_per_megabyte ~config:Ethernet.default_config
      ~pacing:Transfer.v_pacing
  in
  if rate < 2.9 || rate > 3.1 then
    Alcotest.failf "bulk rate %.3f s/MB outside [2.9, 3.1]" rate

let test_transfer_duration_zero () =
  let d =
    Transfer.duration ~config:Ethernet.default_config ~pacing:Transfer.v_pacing
      ~bytes:0
  in
  Alcotest.(check int) "zero bytes" 0 (Time.to_us d)

let test_bulk_copy_matches_duration () =
  let e, net = make_net () in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let finished = ref Time.zero in
  ignore
    (Proc.spawn e ~name:"copier" (fun () ->
         Transfer.bulk_copy net ~bytes:(100 * 1024);
         finished := Engine.now e));
  Engine.run e;
  let expected =
    Transfer.duration ~config:Ethernet.default_config ~pacing:Transfer.v_pacing
      ~bytes:(100 * 1024)
  in
  Alcotest.(check int)
    "idle-network copy matches closed form"
    (Time.to_us expected)
    (Time.to_us !finished)

let test_bulk_copy_with_loss_takes_longer () =
  let config = { Ethernet.default_config with loss_probability = 0.2 } in
  let e, net = make_net ~config ~seed:3 () in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let finished = ref Time.zero in
  ignore
    (Proc.spawn e ~name:"copier" (fun () ->
         Transfer.bulk_copy net ~bytes:(50 * 1024);
         finished := Engine.now e));
  Engine.run e;
  let lossless =
    Transfer.duration ~config:Ethernet.default_config ~pacing:Transfer.v_pacing
      ~bytes:(50 * 1024)
  in
  if Time.(!finished <= lossless) then
    Alcotest.fail "retransmissions must stretch the copy"

(* {2 Page-sequenced copies under an injected loss window}

   Migration moves an address space as a sequence of page transfers; a
   [Faults.Loss_window] must stretch them but never reorder, drop, or
   wedge them. Each 1 KB page is a blocking [bulk_copy], so completion
   order is page order by construction — what these tests pin is that
   retransmission under heavy loss terminates, preserves that order, and
   stays a deterministic function of the seed. *)

let paged_copy_completions ?(pages = 32) ~seed plan =
  let e, net = make_net ~seed () in
  let tracer = Tracer.create e in
  let hooks =
    {
      Faults.h_crash = ignore;
      h_reboot = ignore;
      h_loss = Ethernet.set_loss net;
      h_base_loss =
        (fun () -> (Ethernet.config net).Ethernet.loss_probability);
      h_partition = (fun ~up:_ -> ());
      h_slow = (fun _ _ -> ());
    }
  in
  let _installed = Faults.install e tracer hooks plan in
  let _sink = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let completions = ref [] in
  ignore
    (Proc.spawn e ~name:"copier" (fun () ->
         for page = 1 to pages do
           Transfer.bulk_copy net ~bytes:1024;
           completions := (page, Engine.now e) :: !completions
         done));
  Engine.run e;
  List.rev !completions

let heavy_loss =
  [ Faults.Loss_window { p = 0.3; start = Time.zero; stop = Time.of_sec 600. } ]

let test_paged_copy_terminates_under_loss () =
  let cs = paged_copy_completions ~seed:11 heavy_loss in
  (* Engine.run returning at all means no page wedged; every page must
     also have completed. *)
  Alcotest.(check int) "all pages transferred" 32 (List.length cs)

let test_paged_copy_preserves_order () =
  let cs = paged_copy_completions ~seed:11 heavy_loss in
  ignore
    (List.fold_left
       (fun (prev_page, prev_at) (page, at) ->
         Alcotest.(check int) "pages complete in sequence" (prev_page + 1) page;
         if Time.(at <= prev_at) then
           Alcotest.failf "page %d completed at %s, not after page %d at %s"
             page (Time.to_string at) prev_page (Time.to_string prev_at);
         (page, at))
       (0, Time.of_us (-1)) cs)

let test_paged_copy_loss_window_stretches () =
  let finish cs = snd (List.nth cs (List.length cs - 1)) in
  let lossless = finish (paged_copy_completions ~seed:11 []) in
  let lossy = finish (paged_copy_completions ~seed:11 heavy_loss) in
  if Time.(lossy <= lossless) then
    Alcotest.fail "a 30% loss window must stretch the transfer"

let test_paged_copy_deterministic_per_seed () =
  let a = paged_copy_completions ~seed:17 heavy_loss in
  let b = paged_copy_completions ~seed:17 heavy_loss in
  Alcotest.(check bool) "same seed, same completion schedule" true (a = b);
  let c = paged_copy_completions ~seed:18 heavy_loss in
  Alcotest.(check bool) "different seed, different retransmissions" true
    (a <> c)

let test_concurrent_copies_contend () =
  (* Two simultaneous bulk copies on one wire must each take longer than
     one alone would, but far less than 2x (the wire is only ~28% of the
     per-frame cost; host pacing dominates). *)
  let e, net = make_net () in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let done1 = ref Time.zero and done2 = ref Time.zero in
  ignore
    (Proc.spawn e ~name:"c1" (fun () ->
         Transfer.bulk_copy net ~bytes:(100 * 1024);
         done1 := Engine.now e));
  ignore
    (Proc.spawn e ~name:"c2" (fun () ->
         Transfer.bulk_copy net ~bytes:(100 * 1024);
         done2 := Engine.now e));
  Engine.run e;
  let solo =
    Transfer.duration ~config:Ethernet.default_config ~pacing:Transfer.v_pacing
      ~bytes:(100 * 1024)
  in
  let slower = Time.max !done1 !done2 in
  if Time.(slower <= solo) then Alcotest.fail "no contention observed";
  if Time.(slower > Time.scale solo 2.0) then
    Alcotest.fail "contention worse than full serialization"

let test_stats_counters () =
  let e, net = make_net () in
  let _a = Ethernet.attach net (addr 1) (fun _ -> ()) in
  let _b = Ethernet.attach net (addr 2) (fun _ -> ()) in
  Ethernet.send net (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:100 (P 0));
  Engine.run e;
  Alcotest.(check int) "sent" 1 (Ethernet.frames_sent net);
  Alcotest.(check int) "delivered" 1 (Ethernet.frames_delivered net);
  Alcotest.(check int) "bytes" 100 (Ethernet.bytes_carried net)

(* {1 Bridged segments} *)

let make_bridged ?(delay = Time.of_ms 2.) () =
  let e = Engine.create () in
  let rng = Rng.create 8 in
  let a : payload Ethernet.t = Ethernet.create e (Rng.split rng) in
  let b : payload Ethernet.t = Ethernet.create e (Rng.split rng) in
  Ethernet.bridge a b ~forward_delay:delay;
  (e, a, b)

let test_bridge_unicast_crosses () =
  let e, a, b = make_bridged () in
  let _s1 = Ethernet.attach a (addr 1) (fun _ -> ()) in
  let got = ref None in
  let _s2 = Ethernet.attach b (addr 2) (fun f -> got := Some (Engine.now e, f)) in
  Ethernet.send a (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:64 (P 9));
  Engine.run e;
  match !got with
  | Some (at, f) ->
      let (P n) = f.Frame.payload in
      Alcotest.(check int) "payload" 9 n;
      (* 52us wire + 5us prop + 2ms bridge + 52us wire + 5us prop. *)
      Alcotest.(check int) "timing includes bridge delay" 2114 (Time.to_us at)
  | None -> Alcotest.fail "frame did not cross the bridge"

let test_bridge_unicast_stays_local_when_local () =
  let e, a, b = make_bridged () in
  let hits_b = ref 0 in
  let _s1 = Ethernet.attach a (addr 1) (fun _ -> ()) in
  let _s2 = Ethernet.attach a (addr 2) (fun _ -> ()) in
  let _s3 = Ethernet.attach b (addr 3) (fun _ -> incr hits_b) in
  Ethernet.send a (Frame.unicast ~src:(addr 1) ~dst:(addr 2) ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "no leak to far segment" 0 !hits_b;
  (* The far wire carried nothing. *)
  Alcotest.(check int) "far segment idle" 0 (Ethernet.frames_sent b)

let test_bridge_broadcast_floods_once () =
  let e, a, b = make_bridged () in
  let near = ref 0 and far = ref 0 in
  let _s1 = Ethernet.attach a (addr 1) (fun _ -> ()) in
  let _s2 = Ethernet.attach a (addr 2) (fun _ -> incr near) in
  let _s3 = Ethernet.attach b (addr 3) (fun _ -> incr far) in
  let _s4 = Ethernet.attach b (addr 4) (fun _ -> incr far) in
  Ethernet.send a (Frame.broadcast ~src:(addr 1) ~bytes:64 (P 0));
  Engine.run e;
  Alcotest.(check int) "near delivery" 1 !near;
  Alcotest.(check int) "far deliveries" 2 !far;
  (* Single hop: the far copy is not reflected back. *)
  Alcotest.(check int) "one frame per wire" 1 (Ethernet.frames_sent b)

let test_bridge_locate () =
  let _, a, b = make_bridged () in
  let _s1 = Ethernet.attach a (addr 1) (fun _ -> ()) in
  let _s2 = Ethernet.attach b (addr 2) (fun _ -> ()) in
  (match Ethernet.locate a (addr 1) with
  | `Local -> ()
  | _ -> Alcotest.fail "addr 1 is local to a");
  (match Ethernet.locate a (addr 2) with
  | `Peer (_, d) -> Alcotest.(check int) "delay" 2000 (Time.to_us d)
  | _ -> Alcotest.fail "addr 2 should be at the peer");
  match Ethernet.locate a (addr 9) with
  | `Unknown -> ()
  | _ -> Alcotest.fail "addr 9 is nowhere"

let test_bridge_partition_sever_heal () =
  (* Severing and healing the bridge between cached deliveries: the far
     segment's roster must drop out and come back. *)
  let e, a, b = make_bridged () in
  let far = ref 0 in
  let _s1 = Ethernet.attach a (addr 1) (fun _ -> ()) in
  let _s2 = Ethernet.attach b (addr 2) (fun _ -> incr far) in
  let cast () =
    Ethernet.send a (Frame.broadcast ~src:(addr 1) ~bytes:64 (P 0));
    Engine.run e
  in
  cast ();
  Alcotest.(check int) "joined: crosses" 1 !far;
  Ethernet.sever_bridge a b;
  cast ();
  Alcotest.(check int) "partitioned: stays local" 1 !far;
  Ethernet.heal_bridge a b;
  cast ();
  Alcotest.(check int) "healed: crosses again" 2 !far

let test_bridge_bulk_copy_occupies_both () =
  let e, a, b = make_bridged () in
  let _s1 = Ethernet.attach a (addr 1) (fun _ -> ()) in
  let _s2 = Ethernet.attach b (addr 2) (fun _ -> ()) in
  let finished = ref Time.zero in
  ignore
    (Proc.spawn e ~name:"copier" (fun () ->
         Transfer.bulk_copy ~dst:(addr 2) a ~bytes:(50 * 1024);
         finished := Engine.now e));
  Engine.run e;
  let local_only =
    Transfer.duration ~config:Ethernet.default_config ~pacing:Transfer.v_pacing
      ~bytes:(50 * 1024)
  in
  if Time.(!finished <= local_only) then
    Alcotest.fail "cross-segment copy must cost more than a local one";
  (* Both wires saw the frames. *)
  Alcotest.(check int) "far wire carried the copy" 50 (Ethernet.frames_sent b)

let () =
  Alcotest.run "v_net"
    [
      ( "delivery",
        [
          Alcotest.test_case "unicast" `Quick test_unicast_delivery;
          Alcotest.test_case "broadcast excludes sender" `Quick
            test_broadcast_excludes_sender;
          Alcotest.test_case "multicast membership" `Quick
            test_multicast_membership;
          Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
          Alcotest.test_case "detach drops" `Quick test_detach_drops;
          Alcotest.test_case "duplicate attach" `Quick
            test_attach_duplicate_raises;
          Alcotest.test_case "oversize rejected" `Quick
            test_oversize_frame_rejected;
        ] );
      ( "roster cache",
        [
          Alcotest.test_case "late attach" `Quick test_roster_sees_late_attach;
          Alcotest.test_case "detach then reattach" `Quick
            test_roster_detach_then_reattach;
          Alcotest.test_case "group churn" `Quick test_group_roster_churn;
          Alcotest.test_case "partition sever/heal" `Quick
            test_bridge_partition_sever_heal;
        ] );
      ( "medium",
        [
          Alcotest.test_case "serializes" `Quick test_medium_serializes;
          Alcotest.test_case "loss" `Quick test_loss;
          Alcotest.test_case "loss mid-run" `Quick test_set_loss_midrun;
          Alcotest.test_case "wire time" `Quick test_wire_time_padding;
          Alcotest.test_case "counters" `Quick test_stats_counters;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "unicast crosses" `Quick test_bridge_unicast_crosses;
          Alcotest.test_case "local stays local" `Quick
            test_bridge_unicast_stays_local_when_local;
          Alcotest.test_case "broadcast floods once" `Quick
            test_bridge_broadcast_floods_once;
          Alcotest.test_case "locate" `Quick test_bridge_locate;
          Alcotest.test_case "bulk copy occupies both wires" `Quick
            test_bridge_bulk_copy_occupies_both;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "3s/MB calibration" `Quick
            test_transfer_rate_calibration;
          Alcotest.test_case "zero bytes" `Quick test_transfer_duration_zero;
          Alcotest.test_case "copy matches closed form" `Quick
            test_bulk_copy_matches_duration;
          Alcotest.test_case "loss stretches copy" `Quick
            test_bulk_copy_with_loss_takes_longer;
          Alcotest.test_case "concurrent copies contend" `Quick
            test_concurrent_copies_contend;
          Alcotest.test_case "loss window: copies terminate" `Quick
            test_paged_copy_terminates_under_loss;
          Alcotest.test_case "loss window: page order preserved" `Quick
            test_paged_copy_preserves_order;
          Alcotest.test_case "loss window stretches the transfer" `Quick
            test_paged_copy_loss_window_stretches;
          Alcotest.test_case "loss window: deterministic per seed" `Quick
            test_paged_copy_deterministic_per_seed;
        ] );
    ]
