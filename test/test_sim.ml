(* Tests for the simulation substrate: time, heap, rng, engine, processes
   and the synchronization primitives. *)

let ms = Time.of_ms
let us = Time.of_us

(* {1 Time} *)

let test_time_conversions () =
  Alcotest.(check int) "of_ms" 1500 (Time.to_us (ms 1.5));
  Alcotest.(check int) "of_sec" 3_000_000 (Time.to_us (Time.of_sec 3.));
  Alcotest.(check (float 1e-9)) "to_ms" 0.013 (Time.to_ms (us 13));
  Alcotest.(check (float 1e-9)) "to_sec" 2.5 (Time.to_sec (Time.of_sec 2.5))

let test_time_arith () =
  Alcotest.(check int) "add" 300 (Time.to_us (Time.add (us 100) (us 200)));
  Alcotest.(check int) "sub" (-100) (Time.to_us (Time.sub (us 100) (us 200)));
  Alcotest.(check int) "mul" 900 (Time.to_us (Time.mul (us 300) 3));
  Alcotest.(check int) "scale" 450 (Time.to_us (Time.scale (us 300) 1.5));
  Alcotest.(check bool) "lt" true Time.(us 1 < us 2);
  Alcotest.(check bool) "ge" true Time.(us 2 >= us 2)

let test_time_pp () =
  Alcotest.(check string) "us" "13us" (Time.to_string (us 13));
  Alcotest.(check string) "s" "3.000s" (Time.to_string (Time.of_sec 3.))

(* {1 Heap} *)

let test_heap_order () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h)

let test_heap_peek () =
  let h = Heap.create ~cmp:Int.compare in
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "length" 2 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare l)

(* {1 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* Drawing from [b] must not perturb [a]'s future relative to a clone
     that ignores [b]. *)
  let a' = Rng.create 7 in
  let _ = Rng.split a' in
  let _ = Rng.bits64 b in
  Alcotest.(check int64) "split independent" (Rng.bits64 a') (Rng.bits64 a)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let f = Rng.float r 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let prop_rng_exponential_positive =
  QCheck.Test.make ~name:"exponential draws are positive" ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let r = Rng.create seed in
      Rng.exponential r ~mean:5.0 > 0.)

let test_rng_bool_bias () =
  let r = Rng.create 3 in
  let n = 10_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r 0.25 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  if frac < 0.2 || frac > 0.3 then
    Alcotest.failf "bool(0.25) frequency off: %.3f" frac

(* {1 Engine} *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule e ~at:(ms 2.) (note "b"));
  ignore (Engine.schedule e ~at:(ms 1.) (note "a"));
  ignore (Engine.schedule e ~at:(ms 2.) (note "c"));
  Engine.run e;
  Alcotest.(check (list string)) "time then fifo" [ "a"; "b"; "c" ]
    (List.rev !log);
  Alcotest.(check int) "clock at last event" 2000 (Time.to_us (Engine.now e))

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:(ms 1.) (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~at:(ms 1.) (fun () -> incr fired));
  ignore (Engine.schedule e ~at:(ms 5.) (fun () -> incr fired));
  Engine.run e ~until:(ms 3.);
  Alcotest.(check int) "only early event" 1 !fired;
  Alcotest.(check int) "clock at horizon" 3000 (Time.to_us (Engine.now e));
  Engine.run e;
  Alcotest.(check int) "late event eventually" 2 !fired

let test_engine_until_skips_cancelled () =
  let e = Engine.create () in
  let fired = ref 0 in
  let h = Engine.schedule e ~at:(ms 1.) (fun () -> incr fired) in
  ignore (Engine.schedule e ~at:(ms 5.) (fun () -> incr fired));
  Engine.cancel h;
  Engine.run e ~until:(ms 2.);
  Alcotest.(check int) "cancelled event must not admit late one" 0 !fired

let test_engine_schedule_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:(ms 2.) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule: at 1ms < now 2ms") (fun () ->
      ignore (Engine.schedule e ~at:(ms 1.) ignore))

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:(ms 1.) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_after e (ms 1.) (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "fired count" 2 (Engine.events_fired e)

(* {1 Proc} *)

let test_proc_runs () =
  let e = Engine.create () in
  let ran = ref false in
  let p = Proc.spawn e ~name:"t" (fun () -> ran := true) in
  Engine.run e;
  Alcotest.(check bool) "ran" true !ran;
  Alcotest.(check bool) "done" false (Proc.alive p);
  Alcotest.(check bool) "normal exit" true (Proc.status p = Some Proc.Normal)

let test_proc_sleep_advances_clock () =
  let e = Engine.create () in
  let woke_at = ref Time.zero in
  ignore
    (Proc.spawn e ~name:"sleeper" (fun () ->
         Proc.sleep e (ms 5.);
         woke_at := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "slept 5ms" 5000 (Time.to_us !woke_at)

let test_proc_kill_sleeping () =
  let e = Engine.create () in
  let reached = ref false in
  let cleaned = ref false in
  let p =
    Proc.spawn e ~name:"victim" (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () ->
            Proc.sleep e (Time.of_sec 10.);
            reached := true))
  in
  ignore (Engine.schedule e ~at:(ms 1.) (fun () -> Proc.kill p));
  Engine.run e;
  Alcotest.(check bool) "body not resumed" false !reached;
  Alcotest.(check bool) "protect ran" true !cleaned;
  Alcotest.(check bool) "killed status" true (Proc.status p = Some Proc.Killed)

let test_proc_kill_embryo () =
  let e = Engine.create () in
  let ran = ref false in
  let p = Proc.spawn e ~name:"embryo" (fun () -> ran := true) in
  Proc.kill p;
  Engine.run e;
  Alcotest.(check bool) "never ran" false !ran;
  Alcotest.(check bool) "killed" true (Proc.status p = Some Proc.Killed)

let test_proc_exn_captured () =
  let e = Engine.create () in
  let p = Proc.spawn e ~name:"boom" (fun () -> failwith "boom") in
  Engine.run e;
  match Proc.status p with
  | Some (Proc.Exn (Failure m)) -> Alcotest.(check string) "msg" "boom" m
  | _ -> Alcotest.fail "expected Exn status"

let test_proc_join () =
  let e = Engine.create () in
  let order = ref [] in
  let a =
    Proc.spawn e ~name:"a" (fun () ->
        Proc.sleep e (ms 3.);
        order := "a" :: !order)
  in
  ignore
    (Proc.spawn e ~name:"b" (fun () ->
         let ex = Proc.join a in
         Alcotest.(check bool) "a finished normally" true (ex = Proc.Normal);
         order := "b" :: !order));
  Engine.run e;
  Alcotest.(check (list string)) "join ordering" [ "a"; "b" ] (List.rev !order)

let test_proc_pause_defers_wake () =
  let e = Engine.create () in
  let woke_at = ref Time.zero in
  let p =
    Proc.spawn e ~name:"pausee" (fun () ->
        Proc.sleep e (ms 2.);
        woke_at := Engine.now e)
  in
  (* Pause at 1ms (mid-sleep); sleep timer fires at 2ms but must defer;
     unpause at 10ms delivers it. *)
  ignore (Engine.schedule e ~at:(ms 1.) (fun () -> Proc.pause p));
  ignore (Engine.schedule e ~at:(ms 10.) (fun () -> Proc.unpause p));
  Engine.run e;
  Alcotest.(check int) "woke only on unpause" 10_000 (Time.to_us !woke_at)

let test_proc_pause_unpause_before_wake () =
  let e = Engine.create () in
  let woke_at = ref Time.zero in
  let p =
    Proc.spawn e ~name:"p" (fun () ->
        Proc.sleep e (ms 5.);
        woke_at := Engine.now e)
  in
  (* Pause then unpause before the timer fires: no deferral happens. *)
  ignore (Engine.schedule e ~at:(ms 1.) (fun () -> Proc.pause p));
  ignore (Engine.schedule e ~at:(ms 2.) (fun () -> Proc.unpause p));
  Engine.run e;
  Alcotest.(check int) "normal wake" 5000 (Time.to_us !woke_at)

let test_proc_kill_while_paused () =
  let e = Engine.create () in
  let resumed = ref false in
  let p =
    Proc.spawn e ~name:"p" (fun () ->
        Proc.sleep e (ms 2.);
        resumed := true)
  in
  ignore (Engine.schedule e ~at:(ms 1.) (fun () -> Proc.pause p));
  ignore (Engine.schedule e ~at:(ms 3.) (fun () -> Proc.kill p));
  Engine.run e;
  Alcotest.(check bool) "never resumed" false !resumed;
  Alcotest.(check bool) "killed" true (Proc.status p = Some Proc.Killed)

let test_proc_on_exit () =
  let e = Engine.create () in
  let seen = ref None in
  let p = Proc.spawn e ~name:"p" (fun () -> ()) in
  Proc.on_exit p (fun ex -> seen := Some ex);
  Engine.run e;
  Alcotest.(check bool) "hook ran" true (!seen = Some Proc.Normal);
  (* Registering after exit fires immediately. *)
  let late = ref None in
  Proc.on_exit p (fun ex -> late := Some ex);
  Alcotest.(check bool) "late hook" true (!late = Some Proc.Normal)

(* {1 Ivar} *)

let test_ivar_fill_then_read () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill iv 42;
  let got = ref 0 in
  ignore (Proc.spawn e ~name:"r" (fun () -> got := Ivar.read iv));
  Engine.run e;
  Alcotest.(check int) "read filled" 42 !got

let test_ivar_read_blocks () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got_at = ref (Time.zero, 0) in
  ignore
    (Proc.spawn e ~name:"r" (fun () ->
         let v = Ivar.read iv in
         got_at := (Engine.now e, v)));
  ignore (Engine.schedule e ~at:(ms 7.) (fun () -> Ivar.fill iv 9));
  Engine.run e;
  Alcotest.(check int) "value" 9 (snd !got_at);
  Alcotest.(check int) "time" 7000 (Time.to_us (fst !got_at))

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.(check bool) "try_fill fails" false (Ivar.try_fill iv 2);
  Alcotest.check_raises "fill raises" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Ivar.fill iv 3)

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    ignore (Proc.spawn e ~name:"r" (fun () -> sum := !sum + Ivar.read iv))
  done;
  ignore (Engine.schedule e ~at:(ms 1.) (fun () -> Ivar.fill iv 5));
  Engine.run e;
  Alcotest.(check int) "all woke" 15 !sum

(* {1 Mailbox} *)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  ignore
    (Proc.spawn e ~name:"r" (fun () ->
         for _ = 1 to 3 do
           got := Mailbox.recv mb :: !got
         done));
  ignore
    (Engine.schedule e ~at:(ms 1.) (fun () ->
         Mailbox.send mb 1;
         Mailbox.send mb 2;
         Mailbox.send mb 3));
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_timeout_expires () =
  let e = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let r = ref (Some 0) in
  ignore
    (Proc.spawn e ~name:"r" (fun () -> r := Mailbox.recv_timeout e mb (ms 5.)));
  Engine.run e;
  Alcotest.(check (option int)) "timed out" None !r;
  Alcotest.(check int) "waited 5ms" 5000 (Time.to_us (Engine.now e))

let test_mailbox_timeout_delivers () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let r = ref None in
  ignore
    (Proc.spawn e ~name:"r" (fun () -> r := Mailbox.recv_timeout e mb (ms 5.)));
  ignore (Engine.schedule e ~at:(ms 2.) (fun () -> Mailbox.send mb 11));
  Engine.run e;
  Alcotest.(check (option int)) "delivered" (Some 11) !r

let test_mailbox_timeout_no_lost_wakeup () =
  (* After a timeout, the stale reader registration must not swallow a
     later send destined for a healthy reader. *)
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let first = ref None and second = ref None in
  ignore
    (Proc.spawn e ~name:"r1" (fun () ->
         first := Mailbox.recv_timeout e mb (ms 2.)));
  ignore
    (Proc.spawn e ~name:"r2" (fun () ->
         second := Mailbox.recv_timeout e mb (ms 20.)));
  ignore (Engine.schedule e ~at:(ms 10.) (fun () -> Mailbox.send mb 1));
  Engine.run e;
  Alcotest.(check (option int)) "r1 timed out" None !first;
  Alcotest.(check (option int)) "r2 got message" (Some 1) !second

let test_mailbox_drain () =
  let mb = Mailbox.create () in
  Mailbox.send mb 1;
  Mailbox.send mb 2;
  Alcotest.(check int) "length" 2 (Mailbox.length mb);
  Alcotest.(check (list int)) "drain" [ 1; 2 ] (Mailbox.drain mb);
  Alcotest.(check int) "empty after" 0 (Mailbox.length mb)

(* {1 Semaphore} *)

let test_semaphore_mutual_exclusion () =
  let e = Engine.create () in
  let s = Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Proc.spawn e ~name:"w" (fun () ->
           Semaphore.with_permit s (fun () ->
               incr inside;
               if !inside > !max_inside then max_inside := !inside;
               Proc.sleep e (ms 1.);
               decr inside)))
  done;
  Engine.run e;
  Alcotest.(check int) "never two inside" 1 !max_inside;
  Alcotest.(check int) "all done at 5ms" 5000 (Time.to_us (Engine.now e))

let test_semaphore_release_on_kill () =
  let e = Engine.create () in
  let s = Semaphore.create 1 in
  let p =
    Proc.spawn e ~name:"holder" (fun () ->
        Semaphore.with_permit s (fun () -> Proc.sleep e (Time.of_sec 100.)))
  in
  let acquired = ref false in
  ignore
    (Proc.spawn e ~name:"waiter" (fun () ->
         Semaphore.acquire s;
         acquired := true));
  ignore (Engine.schedule e ~at:(ms 1.) (fun () -> Proc.kill p));
  Engine.run e;
  Alcotest.(check bool) "permit recovered" true !acquired

(* {1 Stats} *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.record s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "p50" 3. (Stats.Summary.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.Summary.percentile s 100.);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.) (Stats.Summary.stddev s)

let test_percentile_edge_cases () =
  let empty = Stats.Summary.create () in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Stats.Summary.percentile empty 50.));
  let one = Stats.Summary.create () in
  Stats.Summary.record one 7.;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single sample at p=%g" p)
        7.
        (Stats.Summary.percentile one p))
    [ 0.; 50.; 100. ];
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.record s) [ 9.; 1.; 5. ];
  Alcotest.(check (float 1e-9)) "p0 is min" 1. (Stats.Summary.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100 is max" 9.
    (Stats.Summary.percentile s 100.);
  (* Out-of-range p clamps rather than raising. *)
  Alcotest.(check (float 1e-9)) "p<0 clamps to min" 1.
    (Stats.Summary.percentile s (-3.));
  Alcotest.(check (float 1e-9)) "p>100 clamps to max" 9.
    (Stats.Summary.percentile s 150.)

let test_gauge_time_average () =
  let e = Engine.create () in
  let g = Stats.Gauge.create e ~initial:0. in
  ignore (Engine.schedule e ~at:(ms 10.) (fun () -> Stats.Gauge.set g 1.));
  ignore (Engine.schedule e ~at:(ms 30.) (fun () -> Stats.Gauge.set g 0.));
  Engine.run e ~until:(ms 40.);
  (* 1.0 for 20ms out of 40ms. *)
  Alcotest.(check (float 1e-6)) "time avg" 0.5 (Stats.Gauge.time_average g)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Stats.Counter.value c)

(* {1 Tracer} *)

let test_tracer_records () =
  let e = Engine.create () in
  let tr = Tracer.create e in
  ignore
    (Engine.schedule e ~at:(ms 3.) (fun () ->
         Tracer.record tr ~category:"x" "hello"));
  Engine.run e;
  match Tracer.entries tr with
  | [ entry ] ->
      Alcotest.(check string) "msg" "hello" entry.Tracer.message;
      Alcotest.(check int) "time" 3000 (Time.to_us entry.Tracer.at)
  | _ -> Alcotest.fail "expected one entry"

let test_tracer_disabled () =
  let e = Engine.create () in
  let tr = Tracer.create e in
  Tracer.set_enabled tr false;
  Tracer.record tr ~category:"x" "dropped";
  Alcotest.(check int) "no entries" 0 (List.length (Tracer.entries tr))

(* {1 More properties} *)

let prop_engine_fires_in_time_order =
  QCheck.Test.make ~name:"events fire in nondecreasing time order" ~count:100
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t ->
          ignore
            (Engine.schedule e ~at:(us t) (fun () -> fired := t :: !fired)))
        times;
      Engine.run e;
      let l = List.rev !fired in
      List.sort Int.compare l = l && List.length l = List.length times)

let prop_rng_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle permutes" ~count:100
    QCheck.(pair (int_bound 1000) (list int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.create seed) a;
      List.sort Int.compare (Array.to_list a) = List.sort Int.compare l)

let prop_rng_uniform_span_in_bounds =
  QCheck.Test.make ~name:"uniform_span within bounds" ~count:200
    QCheck.(triple (int_bound 1000) (int_bound 10_000) (int_bound 10_000))
    (fun (seed, a, b) ->
      let lo = us (min a b) and hi = us (max a b) in
      let v = Rng.uniform_span (Rng.create seed) lo hi in
      Time.(v >= lo) && Time.(v <= hi))

let prop_summary_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.record s) xs;
      let p25 = Stats.Summary.percentile s 25. in
      let p50 = Stats.Summary.percentile s 50. in
      let p75 = Stats.Summary.percentile s 75. in
      p25 <= p50 && p50 <= p75)

let prop_time_scale_roundtrip =
  QCheck.Test.make ~name:"scale by 1.0 is identity" ~count:100 QCheck.int
    (fun n ->
      let n = n mod 1_000_000_000 in
      Time.to_us (Time.scale (us n) 1.0) = n)

let test_proc_nested_spawn () =
  let e = Engine.create () in
  let order = ref [] in
  ignore
    (Proc.spawn e ~name:"outer" (fun () ->
         order := "outer-start" :: !order;
         let inner =
           Proc.spawn e ~name:"inner" (fun () ->
               Proc.sleep e (ms 1.);
               order := "inner" :: !order)
         in
         ignore (Proc.join inner);
         order := "outer-end" :: !order));
  Engine.run e;
  Alcotest.(check (list string)) "nesting"
    [ "outer-start"; "inner"; "outer-end" ]
    (List.rev !order)

let test_ivar_peek_states () =
  let iv = Ivar.create () in
  Alcotest.(check bool) "empty" false (Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek none" None (Ivar.peek iv);
  Ivar.fill iv 3;
  Alcotest.(check bool) "filled" true (Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek some" (Some 3) (Ivar.peek iv)

let test_semaphore_counters () =
  let e = Engine.create () in
  let s = Semaphore.create 2 in
  Alcotest.(check int) "initial" 2 (Semaphore.available s);
  ignore
    (Proc.spawn e ~name:"a" (fun () ->
         Semaphore.acquire s;
         Semaphore.acquire s;
         Alcotest.(check int) "exhausted" 0 (Semaphore.available s);
         ignore
           (Proc.spawn e ~name:"b" (fun () ->
                Alcotest.(check int) "one waiting" 1 (Semaphore.waiting s)
                |> ignore));
         ignore
           (Proc.spawn e ~name:"c" (fun () ->
                Semaphore.acquire s;
                Semaphore.release s));
         Proc.sleep e (ms 5.);
         Semaphore.release s;
         Semaphore.release s));
  Engine.run e

let test_tracer_by_category () =
  let e = Engine.create () in
  let tr = Tracer.create e in
  Tracer.record tr ~category:"a" "one";
  Tracer.record tr ~category:"b" "two";
  Tracer.record tr ~category:"a" "three";
  Alcotest.(check int) "category a" 2 (List.length (Tracer.by_category tr "a"));
  Tracer.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Tracer.entries tr))

(* {1 Handle-pooling properties}

   The engine recycles event slots through a free list, telling handles
   apart by generation counter. These properties drive random
   schedule/cancel/run interleavings through the pool hard enough to
   force slot reuse and check the observable contract survives it. *)

(* A script is a list of (delay, op) where op schedules, cancels a
   previously returned live handle, or fires everything due so slots
   recycle mid-script. *)
let prop_pool_stale_cancel_noop =
  QCheck.Test.make ~name:"stale cancel after slot reuse is a no-op" ~count:200
    QCheck.(list (pair (int_bound 50) (int_bound 100)))
    (fun script ->
      let e = Engine.create () in
      let fired = ref 0 in
      let expected = ref 0 in
      (* Schedule n events, fire them all (their slots return to the free
         list), then schedule n more (reusing those slots) and cancel the
         {e stale} handles from the first batch: none of the second batch
         may be lost. *)
      List.iter
        (fun (n, d) ->
          let n = 1 + (n mod 10) in
          let stale =
            List.init n (fun i ->
                Engine.schedule_after e (us (1 + d + i)) (fun () -> incr fired))
          in
          expected := !expected + n;
          Engine.run e;
          let live =
            List.init n (fun i ->
                Engine.schedule_after e (us (1 + d + i)) (fun () -> incr fired))
          in
          expected := !expected + n;
          (* Stale cancels hit recycled slots; the generation check must
             protect the new occupants. *)
          List.iter Engine.cancel stale;
          Engine.run e;
          ignore live)
        script;
      !fired = !expected)

let prop_pool_pending_exact =
  QCheck.Test.make ~name:"pending counts live events exactly" ~count:200
    QCheck.(pair (int_bound 97) (list (int_bound 100)))
    (fun (cancel_mask, delays) ->
      let e = Engine.create () in
      let handles =
        List.mapi
          (fun i d -> (i, Engine.schedule_after e (us (d + 1)) (fun () -> ())))
          delays
      in
      let cancelled =
        List.filter (fun (i, _) -> i mod 7 = cancel_mask mod 7) handles
      in
      List.iter (fun (_, h) -> Engine.cancel h) cancelled;
      (* Double-cancel must not decrement twice. *)
      List.iter (fun (_, h) -> Engine.cancel h) cancelled;
      Engine.pending e = List.length handles - List.length cancelled)

let prop_pool_order_under_recycling =
  QCheck.Test.make ~name:"fire order is (time, seq) under slot recycling"
    ~count:200
    QCheck.(list (int_bound 30))
    (fun delays ->
      (* Interleave schedule bursts with partial drains so later bursts
         reuse earlier bursts' slots, then check the full firing log is
         sorted by time with FIFO tie-break (the log's construction
         order IS the seq order when sorted stably by time). *)
      let e = Engine.create () in
      let log = ref [] in
      let tag = ref 0 in
      List.iter
        (fun d ->
          for _ = 0 to 2 do
            incr tag;
            let t = !tag in
            ignore
              (Engine.schedule e
                 ~at:(Time.add (Engine.now e) (us d))
                 (fun () -> log := (Time.to_us (Engine.now e), t) :: !log))
          done;
          (* Partial drain: step a few events, freeing their slots for
             the next burst. *)
          ignore (Engine.step e);
          ignore (Engine.step e))
        delays;
      Engine.run e;
      let l = List.rev !log in
      (* Firing order must equal (time, schedule order): tags are
         assigned in schedule order, so sorting by time with tag as the
         tie-break must be the identity — anything else means recycling
         broke either the heap order or the FIFO seq tie-break. *)
      List.sort
        (fun (a, ta) (b, tb) ->
          if a <> b then Int.compare a b else Int.compare ta tb)
        l
      = l
      && List.length l = 3 * List.length delays)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "v_sim"
    [
      ( "time",
        [
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "heap",
        Alcotest.test_case "ordering" `Quick test_heap_order
        :: Alcotest.test_case "empty" `Quick test_heap_empty
        :: Alcotest.test_case "peek" `Quick test_heap_peek
        :: qcheck [ prop_heap_sorts ] );
      ( "rng",
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic
        :: Alcotest.test_case "split independence" `Quick
             test_rng_split_independent
        :: Alcotest.test_case "bounds" `Quick test_rng_bounds
        :: Alcotest.test_case "bool bias" `Quick test_rng_bool_bias
        :: qcheck [ prop_rng_exponential_positive ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "until skips cancelled" `Quick
            test_engine_until_skips_cancelled;
          Alcotest.test_case "rejects past" `Quick test_engine_schedule_past;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_schedule;
        ]
        @ qcheck
            [
              prop_pool_stale_cancel_noop;
              prop_pool_pending_exact;
              prop_pool_order_under_recycling;
            ] );
      ( "proc",
        [
          Alcotest.test_case "runs" `Quick test_proc_runs;
          Alcotest.test_case "sleep" `Quick test_proc_sleep_advances_clock;
          Alcotest.test_case "kill sleeping" `Quick test_proc_kill_sleeping;
          Alcotest.test_case "kill embryo" `Quick test_proc_kill_embryo;
          Alcotest.test_case "exception captured" `Quick test_proc_exn_captured;
          Alcotest.test_case "join" `Quick test_proc_join;
          Alcotest.test_case "pause defers wake" `Quick
            test_proc_pause_defers_wake;
          Alcotest.test_case "unpause before wake" `Quick
            test_proc_pause_unpause_before_wake;
          Alcotest.test_case "kill while paused" `Quick
            test_proc_kill_while_paused;
          Alcotest.test_case "on_exit" `Quick test_proc_on_exit;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks" `Quick test_ivar_read_blocks;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
          Alcotest.test_case "multiple readers" `Quick
            test_ivar_multiple_readers;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "timeout expires" `Quick
            test_mailbox_timeout_expires;
          Alcotest.test_case "timeout delivers" `Quick
            test_mailbox_timeout_delivers;
          Alcotest.test_case "no lost wakeup" `Quick
            test_mailbox_timeout_no_lost_wakeup;
          Alcotest.test_case "drain" `Quick test_mailbox_drain;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_semaphore_mutual_exclusion;
          Alcotest.test_case "release on kill" `Quick
            test_semaphore_release_on_kill;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "percentile edge cases" `Quick
            test_percentile_edge_cases;
          Alcotest.test_case "gauge time average" `Quick
            test_gauge_time_average;
          Alcotest.test_case "counter" `Quick test_counter;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "records" `Quick test_tracer_records;
          Alcotest.test_case "disabled" `Quick test_tracer_disabled;
          Alcotest.test_case "by category / clear" `Quick
            test_tracer_by_category;
        ] );
      ( "more-properties",
        Alcotest.test_case "nested spawn/join" `Quick test_proc_nested_spawn
        :: Alcotest.test_case "ivar peek states" `Quick test_ivar_peek_states
        :: Alcotest.test_case "semaphore counters" `Quick
             test_semaphore_counters
        :: qcheck
             [
               prop_engine_fires_in_time_order;
               prop_rng_shuffle_is_permutation;
               prop_rng_uniform_span_in_bounds;
               prop_summary_percentile_monotone;
               prop_time_scale_roundtrip;
             ] );
    ]
