(* Tests for the sustained-traffic service layer: admission control
   (slot cap, bounded waiting room, rejection), per-seed determinism of
   the metrics JSON, request-count conservation, and the balancer
   surviving a crash of the host it is busy rebalancing. *)

let sec = Time.of_sec
let ms = Time.of_ms

let conserved (m : Serve.Session.metrics) =
  (* Every submit resolves to exactly one of these — except requests
     still parked in the admission queue when the horizon ends. *)
  m.Serve.Session.m_rejected + m.Serve.Session.m_shed
  + m.Serve.Session.m_refused + m.Serve.Session.m_completed
  + m.Serve.Session.m_failed
  <= m.Serve.Session.m_submitted

(* {1 Admission control} *)

(* Twelve simultaneous arrivals against 2 slots + a 3-deep waiting room:
   two dispatch, three queue, seven bounce off the full room. *)
let test_admission_rejects_beyond_queue () =
  let cl = Cluster.create ~seed:11 ~workstations:4 () in
  let params =
    {
      Serve.Session.default_params with
      Serve.Session.arrivals =
        Serve.Session.Trace (List.init 12 (fun _ -> ms 1.));
      duration = sec 5.;
      progs = [ "cc68" ];
      max_in_flight = 2;
      queue_limit = 3;
      balancer_interval = None;
      snapshot_every = None;
    }
  in
  let s = Serve.Session.create ~params cl in
  Serve.Session.drain s;
  let m = Serve.Session.metrics s in
  Alcotest.(check int) "all arrivals submitted" 12 m.Serve.Session.m_submitted;
  Alcotest.(check int) "overflow rejected" 7 m.Serve.Session.m_rejected;
  Alcotest.(check int)
    "admitted requests all completed" 5 m.Serve.Session.m_completed;
  Alcotest.(check bool)
    "queue waits recorded" true
    (Stats.Summary.count m.Serve.Session.m_queue_wait_ms = 5);
  Alcotest.(check bool)
    "queued requests actually waited" true
    (Stats.Summary.max m.Serve.Session.m_queue_wait_ms > 0.);
  Alcotest.(check bool) "conservation" true (conserved m)

(* {1 Determinism} *)

(* The acceptance bar for [vsim serve -j]: the full metrics document —
   percentiles, gauges, histogram, snapshots — must be byte-identical
   across runs of the same seed. *)
let test_same_seed_same_metrics_json () =
  let run () =
    let cl = Cluster.create ~seed:7 ~workstations:8 () in
    let params =
      {
        Serve.Session.default_params with
        Serve.Session.arrivals = Serve.Session.Poisson 2.5;
        duration = sec 20.;
        balancer_interval = Some (sec 3.);
        snapshot_every = Some (sec 5.);
      }
    in
    let s = Serve.Session.create ~params cl in
    Serve.Session.drain s;
    Json_min.to_compact_string (Serve.Session.metrics_to_json s)
  in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical metrics JSON" a b;
  Alcotest.(check bool) "non-trivial run" true
    (String.length a > 200 && String.length b > 200)

let test_metrics_accounting () =
  let cl = Cluster.create ~seed:3 ~workstations:8 () in
  let params =
    {
      Serve.Session.default_params with
      Serve.Session.arrivals = Serve.Session.Poisson 2.;
      duration = sec 20.;
      (* Low enough that every dispatched request finds a volunteer. *)
      max_in_flight = 6;
    }
  in
  let s = Serve.Session.create ~params cl in
  Serve.Session.drain s;
  let m = Serve.Session.metrics s in
  Alcotest.(check bool) "some traffic" true (m.Serve.Session.m_submitted > 10);
  Alcotest.(check int)
    "admission cap prevents volunteer refusals" 0 m.Serve.Session.m_refused;
  Alcotest.(check int) "no faults, no failures" 0 m.Serve.Session.m_failed;
  Alcotest.(check bool)
    "most requests completed" true
    (m.Serve.Session.m_completed > 30);
  Alcotest.(check bool) "conservation" true (conserved m);
  Alcotest.(check bool)
    "throughput positive" true
    (m.Serve.Session.m_throughput_per_sec > 0.);
  Alcotest.(check bool)
    "balancer surveyed" true
    (m.Serve.Session.m_balancer_surveys > 0)

(* {1 Balancer vs. crash} *)

(* Regression for the skip-and-continue fix: load up ws2 so the balancer
   picks it as busiest, then crash it (no reboot) mid-run. The daemon
   must keep surveying on its cycle — a wedge would freeze the survey
   counter near the crash instant — and the session must still drain. *)
let test_balancer_survives_busiest_host_crash () =
  let faults =
    match Faults.parse "crash:ws2@10" with
    | Ok plan -> plan
    | Error e -> Alcotest.failf "faults: %s" e
  in
  let cl = Cluster.create ~seed:5 ~workstations:6 ~faults () in
  (* Pile long-running guests onto the victim before arrivals start. *)
  ignore
    (Cluster.shell cl ~ws:0 ~name:"loader" (fun ctx ->
         for _ = 1 to 3 do
           match
             Remote_exec.exec ctx ~prog:"tex" ~target:(Remote_exec.Named "ws2")
           with
           | Ok _ -> ()
           | Error e -> Alcotest.failf "preload: %s" e
         done));
  let params =
    {
      Serve.Session.default_params with
      Serve.Session.arrivals = Serve.Session.Poisson 1.5;
      duration = sec 30.;
      balancer_interval = Some (sec 2.);
      snapshot_every = None;
      drain_grace = sec 30.;
    }
  in
  let s = Serve.Session.create ~params cl in
  Serve.Session.drain s;
  let m = Serve.Session.metrics s in
  (* 60 s of virtual time at a 2 s cycle: a daemon that died with its
     target would stop around survey #5. *)
  Alcotest.(check bool)
    "surveys continued past the crash" true
    (m.Serve.Session.m_balancer_surveys >= 20);
  Alcotest.(check bool)
    "service kept completing requests" true
    (m.Serve.Session.m_completed > 0);
  Alcotest.(check bool) "conservation" true (conserved m)

(* {1 Accounting identity under a mid-queue crash} *)

(* Crash-safe accounting: with requests parked in the admission queue
   when their submitting host dies (its shells are killed mid-queue),
   every submission must still land in exactly one terminal bucket —
   [submitted = rejected + shed + refused + completed + failed] holds
   exactly on EVERY seed, with nothing outstanding and nothing leaked
   once the drain grace is generous enough to settle all stragglers. *)
let test_accounting_identity_under_crash () =
  let total_shed = ref 0 and total_failed = ref 0 in
  List.iter
    (fun seed ->
      let faults =
        match Faults.parse "crash:ws2@8" with
        | Ok plan -> plan
        | Error e -> Alcotest.failf "faults: %s" e
      in
      let cl = Cluster.create ~seed ~workstations:5 ~faults () in
      ignore (Cluster.enable_health cl);
      let params =
        {
          Serve.Session.default_params with
          Serve.Session.arrivals = Serve.Session.Poisson 2.;
          duration = sec 15.;
          (* Tight caps keep a queue standing when ws2 dies at t=8. *)
          max_in_flight = 2;
          queue_limit = 6;
          balancer_interval = Some (sec 2.);
          snapshot_every = None;
          reexec_attempts = 2;
          reexec_budget = Some 8;
          slo_target_ms = 500.;
          slo_shed_multiple = Some 2.;
          drain_grace = sec 300.;
        }
      in
      let s = Serve.Session.create ~params cl in
      Serve.Session.drain s;
      let m = Serve.Session.metrics s in
      total_shed := !total_shed + m.Serve.Session.m_shed;
      total_failed := !total_failed + m.Serve.Session.m_failed;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: all stragglers settled" seed)
        0 m.Serve.Session.m_outstanding;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: nothing leaked" seed)
        0 m.Serve.Session.m_stuck;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: submitted = terminal buckets" seed)
        m.Serve.Session.m_submitted
        (m.Serve.Session.m_rejected + m.Serve.Session.m_shed
        + m.Serve.Session.m_refused + m.Serve.Session.m_completed
        + m.Serve.Session.m_failed))
    (List.init 10 (fun i -> i + 1));
  (* The fault plan and brownout must actually bite somewhere in the
     seed sweep, or the identity was never under pressure. *)
  Alcotest.(check bool) "brownout shed across the sweep" true (!total_shed > 0);
  Alcotest.(check bool)
    "the crash failed requests across the sweep" true (!total_failed > 0)

let () =
  Alcotest.run "serve"
    [
      ( "admission",
        [
          Alcotest.test_case "cap + bounded queue + rejection" `Quick
            test_admission_rejects_beyond_queue;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, byte-identical metrics JSON" `Quick
            test_same_seed_same_metrics_json;
          Alcotest.test_case "accounting on a healthy cluster" `Quick
            test_metrics_accounting;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "survives busiest-host crash mid-cycle" `Slow
            test_balancer_survives_busiest_host_crash;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "identity on every seed under mid-queue crash"
            `Slow test_accounting_identity_under_crash;
        ] );
    ]
