(* Golden-trace generator: run a pinned scenario named on the command
   line and print its migration-phase events as JSONL. `dune runtest`
   diffs the output of each case against its committed fixture
   (golden_trace_{precopy,freeze,cor,flashcrowd}.expected) — any change
   to event content, order or timing under this seed must be
   intentional (re-bless with `dune promote`). The strategy cases run
   one cc68 migration; the flashcrowd case replays the scenario
   library's flash-crowd family at a pinned seed, pinning the whole
   burst's migration and fault stream. *)

let strategy_case strategy =
  let cl = Cluster.create ~seed:1985 ~workstations:4 ~trace:true () in
  match
    Experiment.migrate_program cl ~strategy ~run_for:(Time.of_sec 3.)
      ~prog:"cc68" ()
  with
  | Error e ->
      prerr_endline ("golden_trace: migration failed: " ^ e);
      exit 1
  | Ok _ ->
      print_string
        (Tracer.to_jsonl ~categories:[ "migrate"; "lh" ] (Cluster.tracer cl))

let flashcrowd_case () =
  let entry =
    match Scenario.Library.find "flash-crowd" with
    | Some e -> e
    | None ->
        prerr_endline "golden_trace: flash-crowd missing from the library";
        exit 1
  in
  let sc = Scenario.Library.plain entry ~seed:77 in
  let o, cl = Scenario.run_cluster sc in
  if o.Scenario.o_violations <> [] then begin
    prerr_endline "golden_trace: flash-crowd seed 77 tripped a monitor";
    exit 1
  end;
  print_string
    (Tracer.to_jsonl
       ~categories:[ "migrate"; "lh"; "fault" ]
       (Cluster.tracer cl))

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "precopy" with
  | "precopy" -> strategy_case Protocol.Precopy
  | "freeze" -> strategy_case Protocol.Freeze_and_copy
  | "cor" -> strategy_case Protocol.Copy_on_reference
  | "flashcrowd" -> flashcrowd_case ()
  | s ->
      prerr_endline ("golden_trace: unknown case " ^ s);
      exit 2
