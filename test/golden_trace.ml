(* Golden-trace generator: run the pinned migration scenario and print
   its migration-phase events as JSONL. `dune runtest` diffs the output
   against golden_trace.expected — any change to event content, order or
   timing under this seed must be intentional (re-bless with
   `dune promote`). *)

let () =
  let cl = Cluster.create ~seed:1985 ~workstations:4 ~trace:true () in
  match
    Experiment.migrate_program cl ~strategy:Protocol.Precopy
      ~run_for:(Time.of_sec 3.) ~prog:"cc68" ()
  with
  | Error e ->
      prerr_endline ("golden_trace: migration failed: " ^ e);
      exit 1
  | Ok _ ->
      print_string
        (Tracer.to_jsonl ~categories:[ "migrate"; "lh" ] (Cluster.tracer cl))
