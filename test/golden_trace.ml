(* Golden-trace generator: run the pinned migration scenario under the
   copy discipline named on the command line and print its
   migration-phase events as JSONL. `dune runtest` diffs the output of
   each strategy against its committed fixture
   (golden_trace_{precopy,freeze,cor}.expected) — any change to event
   content, order or timing under this seed must be intentional
   (re-bless with `dune promote`). *)

let () =
  let strategy =
    match if Array.length Sys.argv > 1 then Sys.argv.(1) else "precopy" with
    | "precopy" -> Protocol.Precopy
    | "freeze" -> Protocol.Freeze_and_copy
    | "cor" -> Protocol.Copy_on_reference
    | s ->
        prerr_endline ("golden_trace: unknown strategy " ^ s);
        exit 2
  in
  let cl = Cluster.create ~seed:1985 ~workstations:4 ~trace:true () in
  match
    Experiment.migrate_program cl ~strategy ~run_for:(Time.of_sec 3.)
      ~prog:"cc68" ()
  with
  | Error e ->
      prerr_endline ("golden_trace: migration failed: " ^ e);
      exit 1
  | Ok _ ->
      print_string
        (Tracer.to_jsonl ~categories:[ "migrate"; "lh" ] (Cluster.tracer cl))
