(* Golden-trace generator: run a pinned scenario named on the command
   line and print its migration-phase events as JSONL. `dune runtest`
   diffs the output of each case against its committed fixture
   (golden_trace_{precopy,freeze,cor,flashcrowd,dedup}.expected) — any
   change to event content, order or timing under this seed must be
   intentional (re-bless with `dune promote`). The strategy cases run
   one cc68 migration; the flashcrowd case replays the scenario
   library's flash-crowd family at a pinned seed, pinning the whole
   burst's migration and fault stream; the dedup case re-migrates under
   per-host content caches, pinning the manifest exchange and chunk
   hit/miss stream. *)

let strategy_case strategy =
  let cl = Cluster.create ~seed:1985 ~workstations:4 ~trace:true () in
  match
    Experiment.migrate_program cl ~strategy ~run_for:(Time.of_sec 3.)
      ~prog:"cc68" ()
  with
  | Error e ->
      prerr_endline ("golden_trace: migration failed: " ^ e);
      exit 1
  | Ok _ ->
      print_string
        (Tracer.to_jsonl ~categories:[ "migrate"; "lh" ] (Cluster.tracer cl))

let flashcrowd_case () =
  let entry =
    match Scenario.Library.find "flash-crowd" with
    | Some e -> e
    | None ->
        prerr_endline "golden_trace: flash-crowd missing from the library";
        exit 1
  in
  let sc = Scenario.Library.plain entry ~seed:77 in
  let o, cl = Scenario.run_cluster sc in
  if o.Scenario.o_violations <> [] then begin
    prerr_endline "golden_trace: flash-crowd seed 77 tripped a monitor";
    exit 1
  end;
  print_string
    (Tracer.to_jsonl
       ~categories:[ "migrate"; "lh"; "fault" ]
       (Cluster.tracer cl))

(* Content-addressed re-migration at a pinned seed with 4 MiB per-host
   caches: cc68 runs on ws0, migrates to ws1 and back. The fixture pins
   the manifest exchanges — the outbound trip's image-chunk hits (the
   file server's announcement warmed ws1) and the return trip's delta
   (the origin's cache still holds everything it shipped). The dedup
   and residual monitors must stay silent. *)
let dedup_case () =
  let cfg =
    {
      Config.default with
      Config.os =
        {
          Config.default.Config.os with
          Os_params.content_cache_bytes = 4 * 1024 * 1024;
        };
    }
  in
  let cl = Cluster.create ~seed:1985 ~workstations:4 ~trace:true ~cfg () in
  let mon = Monitors.attach (Cluster.tracer cl) in
  let eng = Cluster.engine cl in
  let failed = ref None in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         let k = Context.kernel ctx and self = Context.self ctx in
         match Remote_exec.exec ctx ~prog:"cc68" ~target:Remote_exec.Local with
         | Error e -> failed := Some ("exec: " ^ e)
         | Ok h -> (
             let migrate ~from_host ~dest =
               let pm =
                 match Cluster.find_workstation cl from_host with
                 | Some w -> Program_manager.pid w.Cluster.ws_pm
                 | None -> Ids.program_manager_of h.Remote_exec.h_lh
               in
               match
                 Kernel.send k ~src:self ~dst:pm
                   (Message.make
                      (Protocol.Pm_migrate
                         {
                           lh = Some h.Remote_exec.h_lh;
                           dest = Some dest;
                           force_destroy = false;
                           strategy = Protocol.Precopy;
                         }))
               with
               | Ok { Message.body = Protocol.Pm_migrated [ _ ]; _ } -> Ok ()
               | _ -> Error "migration failed"
             in
             Proc.sleep eng (Time.of_sec 2.);
             match migrate ~from_host:h.Remote_exec.h_host ~dest:"ws1" with
             | Error e -> failed := Some ("outbound: " ^ e)
             | Ok () -> (
                 Proc.sleep eng (Time.of_sec 1.);
                 match migrate ~from_host:"ws1" ~dest:h.Remote_exec.h_host with
                 | Error e -> failed := Some ("return: " ^ e)
                 | Ok () -> ()))));
  Cluster.run cl ~until:(Time.of_sec 60.);
  (match !failed with
  | Some e ->
      prerr_endline ("golden_trace: dedup scenario failed: " ^ e);
      exit 1
  | None -> ());
  if Monitors.violations mon <> [] then begin
    prerr_endline "golden_trace: dedup seed 1985 tripped a monitor";
    exit 1
  end;
  print_string
    (Tracer.to_jsonl
       ~categories:[ "migrate"; "lh"; "xfer" ]
       (Cluster.tracer cl))

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "precopy" with
  | "precopy" -> strategy_case Protocol.Precopy
  | "freeze" -> strategy_case Protocol.Freeze_and_copy
  | "cor" -> strategy_case Protocol.Copy_on_reference
  | "flashcrowd" -> flashcrowd_case ()
  | "dedup" -> dedup_case ()
  | s ->
      prerr_endline ("golden_trace: unknown case " ^ s);
      exit 2
