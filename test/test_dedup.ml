(* Differential battery for content-addressed state transfer.

   The same pinned migration scenario runs under every (copy strategy x
   placement policy) pair, once with per-host content caches off (the
   default, byte-for-byte the pre-dedup simulator) and twice with a
   4 MiB cache per host. What dedup may change is *when* things happen
   and *how many bytes cross the wire* — never what the program
   computes or where the scheduler puts it. So per combination: the
   program's terminal output, completion count, CPU demand, the chosen
   migration endpoints, and the logical-host lifecycle stream (modulo
   sequence numbers and timestamps) must match the cache-off run;
   cached runs must be byte-identical per seed; the dedup monitor —
   which replays every manifest/hit/miss triple and checks that chunk
   counts, byte counts and digest sums partition exactly — must stay
   silent; and the stat counters must reconcile across hosts: the
   bytes the destination deduplicated are exactly the bytes the source
   never shipped.

   The QCheck half covers the primitives the battery leans on: digests
   are pure functions (equal across domains), and the LRU content
   cache tracks a reference model — never over budget, hits only for
   content whose recorded size matches, evictions strictly in
   least-recently-used order. *)

let sec = Time.of_sec
let cache_bytes = 4 * 1024 * 1024

let strategies =
  [
    ("precopy", Protocol.Precopy);
    ("freeze", Protocol.Freeze_and_copy);
    ("cor", Protocol.Copy_on_reference);
  ]

let placements =
  [
    ("flat", Config.Flat_multicast);
    ("pods", Config.Pod_sharded { pod_size = 2 });
    ("predictive", Config.Load_predictive { pod_size = 2; alpha = 0.3 });
  ]

let combos =
  List.concat_map
    (fun (sn, s) ->
      List.map (fun (pn, p) -> (sn ^ "/" ^ pn, s, p)) placements)
    strategies

let cfg ~placement ~cache =
  let base = { Config.default with Config.placement } in
  if not cache then base
  else
    {
      base with
      Config.os =
        { base.Config.os with Os_params.content_cache_bytes = cache_bytes };
    }

(* "cc68: done (6.123s)" -> "cc68: done" — dedup legitimately shifts
   completion instants (loads and copies finish sooner). *)
let strip_time line =
  match String.index_opt line '(' with
  | Some i -> String.trim (String.sub line 0 i)
  | None -> line

(* Drop the {"seq":..,"at_us":..} prefix of a JSONL event line — the
   rest (category, type, hosts, sizes) is the timing-independent part. *)
let modulo_timing jsonl =
  let strip line =
    let pat = "\"cat\"" in
    let n = String.length line and m = String.length pat in
    let rec go i =
      if i + m > n then line
      else if String.sub line i m = pat then String.sub line i (n - i)
      else go (i + 1)
    in
    go 0
  in
  List.map strip (String.split_on_char '\n' jsonl)

type run = {
  r_outcome : Protocol.migration_outcome;
  r_completions : int;
  r_cpu : Time.span;
  r_lines : string list;  (** Origin workstation's display. *)
  r_trace : string;  (** Full JSONL event stream. *)
  r_lh : string;  (** Logical-host lifecycle events only. *)
  r_xfer : string;  (** Manifest/hit/miss events only. *)
  r_img : string;  (** Image-cache events only. *)
  r_violations : Monitors.violation list;
  r_shipped : int;  (** Source side: manifest bytes actually sent. *)
  r_saved : int;  (** Source side: manifest bytes the need-reply skipped. *)
  r_deduped : int;  (** Scan side: manifest bytes found in the cache. *)
  r_manifest_bytes : int;
  r_hit : int;
  r_miss : int;
}

let sum_stat cl name =
  List.fold_left
    (fun acc w -> acc + Kernel.stat w.Cluster.ws_kernel name)
    0 (Cluster.workstations cl)

(* The pinned scenario: exec cc68 "[@ *]" from ws0 (the placement
   policy picks the host, the file server's chunk announcement warms
   every cache), migrate it mid-run with the given discipline (the
   policy picks the destination too), then wait for it. *)
let run_one ~cache ~strategy ~placement =
  let cl =
    Cluster.create ~seed:1985 ~workstations:4 ~trace:true
      ~cfg:(cfg ~placement ~cache) ()
  in
  let mon = Monitors.attach (Cluster.tracer cl) in
  let eng = Cluster.engine cl in
  let outcome = ref None in
  let completions = ref 0 in
  let cpu = ref Time.zero in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         let k = Context.kernel ctx and self = Context.self ctx in
         match Remote_exec.exec ctx ~prog:"cc68" ~target:Remote_exec.Any with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             Proc.sleep eng (sec 2.);
             let stable_pm =
               match Cluster.find_workstation cl h.Remote_exec.h_host with
               | Some w -> Program_manager.pid w.Cluster.ws_pm
               | None -> Ids.program_manager_of h.Remote_exec.h_lh
             in
             (match
                Kernel.send k ~src:self ~dst:stable_pm
                  (Message.make
                     (Protocol.Pm_migrate
                        {
                          lh = Some h.Remote_exec.h_lh;
                          dest = None;
                          force_destroy = false;
                          strategy;
                        }))
              with
             | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } ->
                 outcome := Some o
             | _ -> Alcotest.fail "migration failed");
             match Remote_exec.wait ctx h with
             | Ok (_, c) ->
                 cpu := c;
                 incr completions
             | Error e -> Alcotest.failf "wait: %s" e)));
  Cluster.run cl ~until:(sec 120.);
  let outcome =
    match !outcome with
    | Some o -> o
    | None -> Alcotest.fail "scenario never migrated"
  in
  let tr = Cluster.tracer cl in
  {
    r_outcome = outcome;
    r_completions = !completions;
    r_cpu = !cpu;
    r_lines =
      Display_server.output (Cluster.workstation cl 0).Cluster.ws_display;
    r_trace = Tracer.to_jsonl tr;
    r_lh = Tracer.to_jsonl ~categories:[ "lh" ] tr;
    r_xfer = Tracer.to_jsonl ~categories:[ "xfer" ] tr;
    r_img = Tracer.to_jsonl ~categories:[ "img" ] tr;
    r_violations = Monitors.violations mon;
    r_shipped = sum_stat cl "xfer_bytes_shipped";
    r_saved = sum_stat cl "xfer_bytes_saved";
    r_deduped = sum_stat cl "xfer_bytes_deduped";
    r_manifest_bytes = sum_stat cl "xfer_manifest_bytes";
    r_hit = sum_stat cl "xfer_chunks_hit";
    r_miss = sum_stat cl "xfer_chunks_miss";
  }

(* One cache-off run (the baseline) and two cached runs (for the
   determinism check) per combination; computed once, shared across the
   cases. *)
let runs =
  lazy
    (List.map
       (fun (key, strategy, placement) ->
         ( key,
           ( run_one ~cache:false ~strategy ~placement,
             run_one ~cache:true ~strategy ~placement,
             run_one ~cache:true ~strategy ~placement ) ))
       combos)

let find key = List.assoc key (Lazy.force runs)
let is_cor key = String.length key >= 3 && String.sub key 0 3 = "cor"

(* {1 Differential: caching must not change what the run computes} *)

let test_output_parity key () =
  let off, on, _ = find key in
  Alcotest.(check (list string))
    "display output matches cache-off (modulo completion time)"
    (List.map strip_time off.r_lines)
    (List.map strip_time on.r_lines);
  Alcotest.(check int) "completed exactly once" off.r_completions
    on.r_completions;
  Alcotest.(check int) "same CPU demand (us)" (Time.to_us off.r_cpu)
    (Time.to_us on.r_cpu);
  Alcotest.(check string) "same migration source" off.r_outcome.Protocol.m_from
    on.r_outcome.Protocol.m_from;
  Alcotest.(check string) "same migration destination"
    off.r_outcome.Protocol.m_dest on.r_outcome.Protocol.m_dest;
  Alcotest.(check (list string))
    "same logical-host lifecycle (modulo timing)"
    (modulo_timing off.r_lh) (modulo_timing on.r_lh)

let test_deterministic key () =
  let _, on1, on2 = find key in
  Alcotest.(check bool) "same seed, byte-identical cached trace" true
    (String.equal on1.r_trace on2.r_trace)

(* {1 Accounting: exact bytes on the wire} *)

let test_cache_off_is_inert key () =
  let off, _, _ = find key in
  List.iter
    (fun (what, v) -> Alcotest.(check int) (what ^ " stays zero") 0 v)
    [
      ("xfer_bytes_shipped", off.r_shipped);
      ("xfer_bytes_saved", off.r_saved);
      ("xfer_bytes_deduped", off.r_deduped);
      ("xfer_manifest_bytes", off.r_manifest_bytes);
      ("xfer_chunks_hit", off.r_hit);
      ("xfer_chunks_miss", off.r_miss);
    ];
  Alcotest.(check string) "no manifest events" "" (String.trim off.r_xfer);
  Alcotest.(check string) "no image-cache events" "" (String.trim off.r_img)

let test_accounting key () =
  let off, on, _ = find key in
  if String.trim on.r_xfer = "" then
    Alcotest.fail "cached run emitted no manifest events";
  if String.trim on.r_img = "" then
    Alcotest.fail "cached run emitted no image-cache events";
  if on.r_hit <= 0 then Alcotest.fail "cached run never deduplicated a chunk";
  if is_cor key then begin
    (* Copy-on-reference adds local fault-path scans with no
       source-side manifest exchange: the destination can dedup more
       than the source ever offered to save. *)
    if on.r_deduped < on.r_saved then
      Alcotest.failf "dest deduped %d bytes < source saved %d" on.r_deduped
        on.r_saved
  end
  else begin
    (* Every scan answers a manifest exchange, so the two sides of the
       wire must agree exactly: saved(source) = deduped(dest), and the
       bytes actually shipped are the manifest total minus that. *)
    Alcotest.(check int) "dest deduped == source saved" on.r_saved on.r_deduped;
    if on.r_saved <= 0 then
      Alcotest.fail "manifest exchange saved nothing — dedup never engaged";
    if on.r_manifest_bytes <= 0 then
      Alcotest.fail "manifest exchange cost no wire bytes";
    let plain =
      Protocol.precopied_bytes off.r_outcome + off.r_outcome.Protocol.m_final_bytes
    in
    if on.r_shipped >= plain then
      Alcotest.failf "cached migration shipped %d bytes, not fewer than the \
                      plain run's %d"
        on.r_shipped plain
  end

(* {1 Monitors: the dedup invariant holds, nothing else regresses} *)

let test_monitors key () =
  let off, on, _ = find key in
  let check_run what r =
    let dedup =
      List.filter (fun v -> v.Monitors.vi_monitor = "dedup") r.r_violations
    in
    if dedup <> [] then
      Alcotest.failf "%s: dedup monitor tripped: %s" what
        (String.concat "; "
           (List.map (fun v -> v.Monitors.vi_detail) dedup));
    if is_cor key then
      List.iter
        (fun v ->
          if v.Monitors.vi_monitor <> "residual" then
            Alcotest.failf "%s: unexpected %s violation: %s" what
              v.Monitors.vi_monitor v.Monitors.vi_detail)
        r.r_violations
    else
      Alcotest.(check int) (what ^ ": no violations") 0
        (List.length r.r_violations)
  in
  check_run "cache off" off;
  check_run "cache on" on

(* {1 QCheck: digest and cache primitives} *)

(* Digests are pure functions of their arguments: computing the same
   digest on the main domain and on two spawned domains must agree —
   the property the [-j] merge and cross-host manifest comparison rest
   on. *)
let prop_digest_deterministic =
  QCheck.Test.make ~name:"digests agree across domains" ~count:50
    QCheck.(
      quad (string_of_size (Gen.int_bound 24)) (int_bound 512) (int_bound 64)
        (int_bound 8))
    (fun (image, space, index, version) ->
      let compute () =
        ( Pagehash.image_chunk ~image ~index,
          Pagehash.private_page ~space ~index ~version,
          Pagehash.zero_page ~page_bytes:1024,
          Pagehash.string image )
      in
      let here = compute () in
      let d1 = Domain.spawn compute and d2 = Domain.spawn compute in
      let r1 = Domain.join d1 and r2 = Domain.join d2 in
      here = r1 && here = r2)

(* Reference LRU model: (digest, bytes) pairs in most- to
   least-recently-used order, mirroring [Content_cache]'s documented
   semantics — insert refreshes recency but keeps the original size,
   oversized entries are not stored, eviction drops from the LRU end
   until the sum fits, a probe miss inserts. *)
module Model = struct
  let sum m = List.fold_left (fun a (_, b) -> a + b) 0 m

  let evict budget m =
    let rec go m =
      if sum m <= budget then m
      else
        match List.rev m with
        | [] -> m
        | _ :: rest_rev -> go (List.rev rest_rev)
    in
    go m

  let insert budget m ~digest ~bytes =
    match List.assoc_opt digest m with
    | Some b -> (digest, b) :: List.remove_assoc digest m
    | None ->
        if bytes > 0 && bytes <= budget then
          evict budget ((digest, bytes) :: m)
        else m

  let probe budget m ~digest ~bytes =
    match List.assoc_opt digest m with
    | Some b -> (true, b, (digest, b) :: List.remove_assoc digest m)
    | None -> (false, 0, insert budget m ~digest ~bytes)
end

(* Entry sizes are a function of the digest, as in the simulator (a
   digest names fixed content, content has one size). *)
let bytes_of_digest d = 512 + (256 * (d mod 3))

let cache_ops_gen =
  QCheck.(
    pair (int_range 1 8) (small_list (pair (int_bound 31) bool)))

let prop_cache_matches_model =
  QCheck.Test.make
    ~name:"LRU cache: budget bound, hit sizes, eviction order" ~count:300
    cache_ops_gen
    (fun (kb, ops) ->
      let budget = kb * 1024 in
      let c = Content_cache.create ~budget in
      let model = ref [] in
      List.for_all
        (fun (d, do_probe) ->
          let bytes = bytes_of_digest d in
          let step_ok =
            if do_probe then begin
              let hit = Content_cache.probe c ~digest:d ~bytes in
              let mhit, mbytes, m' = Model.probe budget !model ~digest:d ~bytes in
              model := m';
              (* A hit may only be served by an entry recorded with the
                 source's exact byte count. *)
              hit = mhit && ((not hit) || mbytes = bytes)
            end
            else begin
              Content_cache.insert c ~digest:d ~bytes;
              model := Model.insert budget !model ~digest:d ~bytes;
              true
            end
          in
          step_ok
          && Content_cache.bytes c <= max 0 (Content_cache.budget c)
          && Content_cache.bytes c = Model.sum !model
          && Content_cache.digests c = List.map fst !model)
        ops)

let prop_disabled_cache_never_stores =
  QCheck.Test.make ~name:"budget 0 disables the cache" ~count:100
    QCheck.(small_list (int_bound 31))
    (fun ds ->
      let c = Content_cache.create ~budget:0 in
      List.for_all
        (fun d ->
          let hit = Content_cache.probe c ~digest:d ~bytes:(bytes_of_digest d) in
          (not hit) && Content_cache.bytes c = 0 && Content_cache.entries c = 0)
        ds)

let () =
  let case name = Alcotest.test_case name `Slow in
  let per_combo f = List.map (fun (key, _, _) -> case key (f key)) combos in
  let qcheck tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "dedup"
    [
      ("output parity", per_combo test_output_parity);
      ("determinism", per_combo test_deterministic);
      ("cache off is inert", per_combo test_cache_off_is_inert);
      ("accounting", per_combo test_accounting);
      ("monitors", per_combo test_monitors);
      ( "properties",
        qcheck
          [
            prop_digest_deterministic;
            prop_cache_matches_model;
            prop_disabled_cache_never_stores;
          ] );
    ]
