(* Cross-strategy conformance and differential suite.

   One parameterized battery runs the same pinned migration scenario
   under each copy discipline and asserts the invariants every strategy
   must share: the program's terminal output matches local execution
   (modulo completion time), it completes exactly once with its full CPU
   demand, the logical host ends up on the destination and nowhere else,
   and the whole traced run is deterministic per seed.

   What must *differ* is asserted too: freeze-and-copy's freeze window
   strictly dominates pre-copy's, and only copy-on-reference leaves the
   source serving page faults after commit — the residual dependency the
   [residual] monitor must attribute, and must stay silent about for the
   other two disciplines. *)

let sec = Time.of_sec

let strategies =
  [
    ("precopy", Protocol.Precopy);
    ("freeze-and-copy", Protocol.Freeze_and_copy);
    ("copy-on-reference", Protocol.Copy_on_reference);
  ]

(* "cc68: done (6.123s)" -> "cc68: done" — completion instants
   legitimately differ across copy disciplines. *)
let strip_time line =
  match String.index_opt line '(' with
  | Some i -> String.trim (String.sub line 0 i)
  | None -> line

type run = {
  r_outcome : Protocol.migration_outcome;
  r_completions : int;
  r_cpu : Time.span;
  r_src_holds_lh : bool;  (** Source still has the logical host after commit. *)
  r_dest_holds_lh : bool;
  r_lines : string list;  (** Origin workstation's display. *)
  r_trace : string;  (** Full JSONL event stream. *)
  r_violations : Monitors.violation list;
  r_fault_serves : int;  (** Post-commit pages served by any source kernel. *)
}

(* The pinned scenario: exec cc68 from ws0, migrate it mid-run with the
   given discipline, then wait for it — the wait crosses the rebind, so
   a stale binding cache would fail it. *)
let run_one ?(seed = 1985) strategy =
  let cl = Cluster.create ~seed ~workstations:4 ~trace:true () in
  let mon = Monitors.attach (Cluster.tracer cl) in
  let eng = Cluster.engine cl in
  let outcome = ref None in
  let holds = ref None in
  let completions = ref 0 in
  let cpu = ref Time.zero in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         let k = Context.kernel ctx and self = Context.self ctx in
         match Remote_exec.exec ctx ~prog:"cc68" ~target:Remote_exec.Any with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             Proc.sleep eng (sec 2.);
             let stable_pm =
               match Cluster.find_workstation cl h.Remote_exec.h_host with
               | Some w -> Program_manager.pid w.Cluster.ws_pm
               | None -> Ids.program_manager_of h.Remote_exec.h_lh
             in
             (match
                Kernel.send k ~src:self ~dst:stable_pm
                  (Message.make
                     (Protocol.Pm_migrate
                        {
                          lh = Some h.Remote_exec.h_lh;
                          dest = None;
                          force_destroy = false;
                          strategy;
                        }))
              with
             | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } ->
                 outcome := Some o;
                 let holds_lh host =
                   match Cluster.find_workstation cl host with
                   | Some w ->
                       Kernel.find_lh w.Cluster.ws_kernel h.Remote_exec.h_lh
                       <> None
                   | None -> false
                 in
                 holds :=
                   Some (holds_lh o.Protocol.m_from, holds_lh o.Protocol.m_dest)
             | _ -> Alcotest.fail "migration failed");
             match Remote_exec.wait ctx h with
             | Ok (_, c) ->
                 cpu := c;
                 incr completions
             | Error e -> Alcotest.failf "wait: %s" e)));
  Cluster.run cl ~until:(sec 120.);
  let outcome =
    match !outcome with
    | Some o -> o
    | None -> Alcotest.fail "scenario never migrated"
  in
  let src_holds, dest_holds =
    match !holds with Some p -> p | None -> (false, false)
  in
  {
    r_outcome = outcome;
    r_completions = !completions;
    r_cpu = !cpu;
    r_src_holds_lh = src_holds;
    r_dest_holds_lh = dest_holds;
    r_lines =
      Display_server.output (Cluster.workstation cl 0).Cluster.ws_display;
    r_trace = Tracer.to_jsonl (Cluster.tracer cl);
    r_violations = Monitors.violations mon;
    r_fault_serves =
      List.fold_left
        (fun acc w -> acc + Kernel.stat w.Cluster.ws_kernel "page_fault_serves")
        0 (Cluster.workstations cl);
  }

(* Each strategy is run twice (for the determinism check); everything is
   computed once and shared across the test cases. *)
let runs =
  lazy (List.map (fun (name, s) -> (name, (run_one s, run_one s))) strategies)

let find name = List.assoc name (Lazy.force runs)

(* The same program run locally, never migrated: the output oracle. *)
let baseline_lines =
  lazy
    (let cl = Cluster.create ~seed:1985 ~workstations:4 () in
     ignore
       (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
            match
              Remote_exec.exec_and_wait ctx ~prog:"cc68"
                ~target:Remote_exec.Local
            with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "local exec: %s" e));
     Cluster.run cl ~until:(sec 120.);
     Display_server.output (Cluster.workstation cl 0).Cluster.ws_display)

(* {1 Conformance: what every strategy must share} *)

let test_conformance name () =
  let r, _ = find name in
  Alcotest.(check int) "completed exactly once" 1 r.r_completions;
  (* cc68 demands 6 s of CPU wherever (and however often) it runs. *)
  let cpu_s = Time.to_sec r.r_cpu in
  if cpu_s < 5.9 || cpu_s > 6.1 then
    Alcotest.failf "cpu %.2f s, expected ~6" cpu_s;
  Alcotest.(check bool) "source no longer holds the logical host" false
    r.r_src_holds_lh;
  Alcotest.(check bool) "destination holds the logical host" true
    r.r_dest_holds_lh;
  Alcotest.(check (list string))
    "display output matches local execution (modulo completion time)"
    (List.map strip_time (Lazy.force baseline_lines))
    (List.map strip_time r.r_lines)

let test_deterministic name () =
  let r1, r2 = find name in
  Alcotest.(check bool) "same seed, byte-identical trace" true
    (String.equal r1.r_trace r2.r_trace);
  Alcotest.(check int) "same violations" (List.length r1.r_violations)
    (List.length r2.r_violations)

(* {1 Differential: what must differ between strategies} *)

let test_freeze_ordering () =
  let freeze name =
    let r, _ = find name in
    Time.to_ms (Protocol.freeze_span r.r_outcome)
  in
  let pre = freeze "precopy"
  and frz = freeze "freeze-and-copy"
  and cor = freeze "copy-on-reference" in
  if not (frz > pre) then
    Alcotest.failf "freeze-and-copy froze %.1f ms <= pre-copy's %.1f ms" frz pre;
  if not (frz > cor) then
    Alcotest.failf "freeze-and-copy froze %.1f ms <= copy-on-reference's %.1f ms"
      frz cor

let test_residual_only_for_cor () =
  List.iter
    (fun name ->
      let r, _ = find name in
      Alcotest.(check int)
        (name ^ ": no post-commit page service") 0 r.r_fault_serves;
      Alcotest.(check int) (name ^ ": no violations") 0
        (List.length r.r_violations))
    [ "precopy"; "freeze-and-copy" ];
  let cor, _ = find "copy-on-reference" in
  if cor.r_fault_serves <= 0 then
    Alcotest.fail "copy-on-reference must fault pages from the source";
  let residuals =
    List.filter
      (fun v -> v.Monitors.vi_monitor = "residual")
      cor.r_violations
  in
  if residuals = [] then
    Alcotest.fail "residual monitor must flag copy-on-reference";
  Alcotest.(check int) "every violation is the residual dependency"
    (List.length cor.r_violations)
    (List.length residuals)

let test_cor_moves_nothing_upfront () =
  let cor, _ = find "copy-on-reference" in
  let o = cor.r_outcome in
  Alcotest.(check int) "no pre-copy rounds" 0 (List.length o.Protocol.m_rounds);
  Alcotest.(check int) "no frozen residue" 0 o.Protocol.m_final_bytes;
  if o.Protocol.m_faultin_bytes <= 0 then
    Alcotest.fail "whole space must be left to fault in"

let () =
  let case name = Alcotest.test_case name `Slow in
  Alcotest.run "strategies"
    [
      ( "conformance",
        List.map
          (fun (name, _) -> case name (test_conformance name))
          strategies );
      ( "determinism",
        List.map
          (fun (name, _) -> case name (test_deterministic name))
          strategies );
      ( "differential",
        [
          case "freeze window ordering" test_freeze_ordering;
          case "residual dependency only for copy-on-reference"
            test_residual_only_for_cor;
          case "copy-on-reference defers the whole copy"
            test_cor_moves_nothing_upfront;
        ] );
    ]
