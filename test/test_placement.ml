(* Cross-policy conformance suite for [Placement].

   One parameterized battery runs the same pinned scenario under each
   placement policy — flat multicast, pod-sharded, load-predictive —
   and asserts the invariants every policy must share: every submitted
   program is placed and completes exactly once, a host the failure
   detector marks [Dead] is never selected, in-flight credit drains
   back to zero once the work is done, and the whole traced run is
   byte-identical per seed.

   The flat policy additionally carries a compatibility obligation: it
   is the pre-[Placement] scheduler verbatim, so dispatching through
   the policy must produce the same selection and the same trace as the
   bare [Scheduler.Spine] calls the deprecated shims wrapped. (The
   committed golden-trace fixtures, generated before the refactor, pin
   the same equivalence end-to-end in runtest.) *)

let sec = Time.of_sec

let policies =
  [
    ("flat", Config.Flat_multicast);
    ("pods", Config.Pod_sharded { pod_size = 3 });
    ("predictive", Config.Load_predictive { pod_size = 3; alpha = 0.3 });
  ]

type run = {
  r_hosts : string list;  (** Selected host per job, submission order. *)
  r_completions : int;
  r_failures : string list;
  r_dead_at_submit : string list;  (** Detector view when jobs launched. *)
  r_selections : int;
  r_pod_count : int;
  r_inflight_after : int;  (** Sum of per-pod in-flight after drain. *)
  r_trace : string;
}

(* The pinned scenario: 9 workstations, ws7 crashes at 1 s, the
   detector is watching, and 8 staggered jobs are submitted from ws0
   starting at 5 s — well after ws7 goes [Dead] — through the
   context-carried policy. *)
let run_one ?(seed = 1985) placement =
  let cfg = { Config.default with Config.placement } in
  let cl =
    Cluster.create ~seed ~workstations:9 ~trace:true ~cfg
      ~faults:[ Faults.Crash_host { host = "ws7"; at = sec 1. } ]
      ()
  in
  let health = Cluster.enable_health cl in
  let eng = Cluster.engine cl in
  let hosts = ref [] in
  let completions = ref 0 in
  let failures = ref [] in
  let dead_at_submit = ref [] in
  (* One shell per job, like interactive users: the wait must be
     outstanding while the program runs (a finished program's logical
     host answers nobody), and [exec_and_wait] releases the placement
     credit on completion — the caller contract [Serve] follows. *)
  List.iter
    (fun i ->
      ignore
        (Cluster.shell cl ~ws:0
           ~name:(Printf.sprintf "shell%d" i)
           (fun ctx ->
             Proc.sleep eng (sec (5. +. (0.5 *. float_of_int i)));
             if i = 0 then dead_at_submit := Health.dead_hosts health;
             match
               Remote_exec.exec_and_wait ctx ~prog:"cc68"
                 ~target:Remote_exec.Any
             with
             | Error e ->
                 failures := Printf.sprintf "job %d: %s" i e :: !failures
             | Ok (h, _, _) ->
                 hosts := (i, h.Remote_exec.h_host) :: !hosts;
                 incr completions)))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  Cluster.run cl ~until:(sec 120.);
  let p = Cluster.placement cl in
  let inflight_after =
    List.fold_left
      (fun acc (_, pod) ->
        match Json_min.member "inflight" pod with
        | Some (Json_min.Num n) -> acc + int_of_float n
        | _ -> acc)
      0 (Placement.pod_stats p)
  in
  {
    r_hosts =
      List.map snd
        (List.sort (fun (a, _) (b, _) -> compare a b) !hosts);
    r_completions = !completions;
    r_failures = List.rev !failures;
    r_dead_at_submit = !dead_at_submit;
    r_selections = Placement.selections p;
    r_pod_count = Placement.pod_count p;
    r_inflight_after = inflight_after;
    r_trace = Tracer.to_jsonl (Cluster.tracer cl);
  }

(* Each policy is run twice (for the determinism check); everything is
   computed once and shared across the test cases. *)
let runs =
  lazy
    (List.map (fun (name, p) -> (name, (run_one p, run_one p))) policies)

let find name = List.assoc name (Lazy.force runs)

(* {1 Conformance: what every policy must share} *)

let test_exactly_once name () =
  let r, _ = find name in
  if r.r_failures <> [] then
    Alcotest.failf "placement failures: %s" (String.concat "; " r.r_failures);
  Alcotest.(check int) "every job selected a host" 8 (List.length r.r_hosts);
  Alcotest.(check int) "every job completed exactly once" 8 r.r_completions;
  if r.r_selections < 8 then
    Alcotest.failf "policy committed %d selections for 8 jobs" r.r_selections;
  Alcotest.(check int) "in-flight credit drained" 0 r.r_inflight_after

let test_no_dead_host name () =
  let r, _ = find name in
  (* The scenario only makes sense if the detector saw the crash. *)
  Alcotest.(check (list string))
    "ws7 was Dead before the first submission" [ "ws7" ] r.r_dead_at_submit;
  List.iteri
    (fun i h ->
      if String.equal h "ws7" then
        Alcotest.failf "job %d was placed on the dead host" i)
    r.r_hosts

let test_deterministic name () =
  let r1, r2 = find name in
  Alcotest.(check bool) "same seed, byte-identical trace" true
    (String.equal r1.r_trace r2.r_trace);
  Alcotest.(check (list string)) "same placements" r1.r_hosts r2.r_hosts

let test_topology () =
  let flat, _ = find "flat" in
  Alcotest.(check int) "flat has no pods" 0 flat.r_pod_count;
  List.iter
    (fun name ->
      let r, _ = find name in
      (* 9 workstations in pods of 3. *)
      Alcotest.(check int) (name ^ " pod count") 3 r.r_pod_count)
    [ "pods"; "predictive" ]

(* {1 Compatibility: flat policy == bare spine}

   Two identically seeded clusters; one selects through the raw
   [Scheduler.Spine] (the documented flat-equivalent calls the
   deprecated [select_any]/[select_host] shims wrapped), the other
   through the flat [Placement] dispatch. Selection results and the full
   traced event streams must both be byte-identical. *)

module Shim = struct
  let select_any k cfg ~self ~bytes =
    Scheduler.Spine.select_in_group k cfg ~group:Ids.program_manager_group
      ~self ~bytes

  let select_host k cfg ~self ~host =
    Scheduler.Spine.select_host k cfg ~self ~host
end

let selection_sig (s : Scheduler.selection) =
  Printf.sprintf "%s free=%d guests=%d in=%s" s.Scheduler.s_host
    s.Scheduler.s_free_memory s.Scheduler.s_guests
    (Time.to_string s.Scheduler.s_responded_in)

let shim_scenario ~via =
  let cl = Cluster.create ~seed:4242 ~workstations:4 ~trace:true () in
  let eng = Cluster.engine cl in
  let picks = ref [] in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         let k = Context.kernel ctx
         and cfg = Context.cfg ctx
         and self = Context.self ctx in
         Proc.sleep eng (sec 1.);
         let any =
           match via with
           | `Shim -> Shim.select_any k cfg ~self ~bytes:(96 * 1024)
           | `Policy ->
               Placement.select_any (Context.placement ctx) k cfg ~self
                 ~bytes:(96 * 1024)
         in
         let named =
           match via with
           | `Shim -> Shim.select_host k cfg ~self ~host:"ws2"
           | `Policy ->
               Placement.select_host (Context.placement ctx) k cfg ~self
                 ~host:"ws2"
         in
         picks :=
           List.map
             (function
               | Ok s -> selection_sig s
               | Error e -> "error: " ^ e)
             [ any; named ]));
  Cluster.run cl ~until:(sec 10.);
  (!picks, Tracer.to_jsonl (Cluster.tracer cl))

let test_flat_matches_shim () =
  let shim_picks, shim_trace = shim_scenario ~via:`Shim in
  let policy_picks, policy_trace = shim_scenario ~via:`Policy in
  Alcotest.(check (list string))
    "same selections through shim and policy" shim_picks policy_picks;
  Alcotest.(check bool) "byte-identical traces" true
    (String.equal shim_trace policy_trace);
  (match shim_picks with
  | pick :: _ when String.length pick > 0 && pick.[0] = 'w' -> ()
  | _ -> Alcotest.failf "expected a workstation pick, got %s"
           (String.concat ", " shim_picks))

let () =
  let case name = Alcotest.test_case name `Slow in
  Alcotest.run "placement"
    [
      ( "exactly-once",
        List.map
          (fun (name, _) -> case name (test_exactly_once name))
          policies );
      ( "no dead hosts",
        List.map
          (fun (name, _) -> case name (test_no_dead_host name))
          policies );
      ( "determinism",
        List.map
          (fun (name, _) -> case name (test_deterministic name))
          policies );
      ( "topology",
        [ case "pod map follows the config" test_topology ] );
      ( "compatibility",
        [ case "flat policy == bare spine" test_flat_matches_shim ] );
    ]
