(* Tests for the cluster builder and the experiment scenarios: wiring
   invariants, determinism, admission control under selection bursts, and
   the cluster-wide query facilities. *)

let sec = Time.of_sec

(* {1 Construction} *)

let test_cluster_shape () =
  let cl = Cluster.create ~seed:1 ~workstations:5 () in
  Alcotest.(check int) "size" 5 (Cluster.size cl);
  Alcotest.(check int) "workstations list" 5 (List.length (Cluster.workstations cl));
  List.iteri
    (fun i w ->
      Alcotest.(check int) "index" i w.Cluster.ws_index;
      Alcotest.(check string) "name"
        (Printf.sprintf "ws%d" i)
        (Kernel.host_name w.Cluster.ws_kernel))
    (Cluster.workstations cl)

let test_find_workstation () =
  let cl = Cluster.create ~seed:1 ~workstations:3 () in
  (match Cluster.find_workstation cl "ws2" with
  | Some w -> Alcotest.(check int) "found" 2 w.Cluster.ws_index
  | None -> Alcotest.fail "ws2 missing");
  Alcotest.(check bool) "absent" true (Cluster.find_workstation cl "ws9" = None)

let test_env_for_bindings () =
  let cl = Cluster.create ~seed:1 ~workstations:2 () in
  let w = Cluster.workstation cl 1 in
  let env = Cluster.env_for cl w in
  Alcotest.(check string) "origin" "ws1" env.Env.origin_host;
  Alcotest.(check bool) "file server bound" true
    (Ids.pid_equal env.Env.file_server (File_server.pid (Cluster.file_server cl)));
  Alcotest.(check bool) "name cache warm" true
    (Env.cached_lookup env "fileserver" <> None);
  Alcotest.(check bool) "unknown name misses" true
    (Env.cached_lookup env "nonesuch" = None)

let test_images_published () =
  let cl = Cluster.create ~seed:1 ~workstations:2 () in
  List.iter
    (fun spec ->
      match
        File_server.file_size (Cluster.file_server cl)
          ~path:(spec.Programs.prog_name ^ ".in")
      with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.failf "%s.in missing" spec.Programs.prog_name)
    Programs.all

let test_memory_budget () =
  let cl = Cluster.create ~seed:1 ~workstations:2 ~memory_bytes:(512 * 1024) () in
  let w = Cluster.workstation cl 0 in
  Alcotest.(check int) "configured RAM" (512 * 1024)
    (Kernel.memory_bytes w.Cluster.ws_kernel)

(* {1 Determinism} *)

let test_identical_seeds_identical_runs () =
  let run () =
    let cl = Cluster.create ~seed:13 ~workstations:4 () in
    match Experiment.migrate_program cl ~prog:"parser" () with
    | Ok o ->
        ( o.Protocol.m_dest,
          List.map (fun r -> r.Protocol.r_bytes) o.Protocol.m_rounds,
          Time.to_us (Protocol.freeze_span o) )
    | Error e -> Alcotest.failf "migrate: %s" e
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical outcomes" true (a = b)

let test_different_seeds_diverge () =
  let freeze seed =
    let cl = Cluster.create ~seed ~workstations:4 () in
    match Experiment.migrate_program cl ~prog:"parser" () with
    | Ok o -> Time.to_us (Protocol.freeze_span o)
    | Error e -> Alcotest.failf "migrate: %s" e
  in
  (* Different stochastic dirtying: freeze times should differ at the
     microsecond grain (identical values would suggest a seeding bug). *)
  if freeze 1 = freeze 2 && freeze 2 = freeze 3 then
    Alcotest.fail "three seeds gave identical freeze times"

(* {1 Admission control under selection bursts} *)

let test_burst_respects_max_guests () =
  let cl = Cluster.create ~seed:21 ~workstations:4 () in
  let cfg = Cluster.cfg cl in
  (* 9 simultaneous submissions against 3 volunteers (ws0 disabled):
     nobody may exceed max_guests (3). *)
  Program_manager.set_accepting (Cluster.workstation cl 0).Cluster.ws_pm false;
  let placed = ref [] in
  for i = 1 to 9 do
    ignore
      (Cluster.shell cl ~ws:0 ~name:(Printf.sprintf "job%d" i) (fun ctx ->
           match
             Remote_exec.exec ctx ~prog:"cc68"
               ~target:Remote_exec.Any
           with
           | Ok h -> placed := h.Remote_exec.h_host :: !placed
           | Error _ -> ()))
  done;
  Cluster.run cl ~until:(sec 10.);
  let count host = List.length (List.filter (String.equal host) !placed) in
  List.iter
    (fun h ->
      if count h > cfg.Config.max_guests then
        Alcotest.failf "%s took %d guests (max %d)" h (count h)
          cfg.Config.max_guests)
    [ "ws1"; "ws2"; "ws3" ];
  (* Capacity is bounded by both max_guests and the processor-idleness
     criterion; the burst must spread across several hosts without any
     single host exceeding its cap. *)
  if List.length !placed < 6 then
    Alcotest.failf "only %d placed" (List.length !placed);
  Alcotest.(check int) "spread across all volunteers" 3
    (List.length (List.sort_uniq String.compare !placed))

let test_exec_retry_stops_eventually () =
  (* Guests forbidden everywhere: selection finds no volunteer and exec
     must terminate in error, not loop. *)
  let cl =
    Cluster.create ~seed:22 ~workstations:2
      ~cfg:{ Config.default with Config.max_guests = 0 }
      ()
  in
  let result = ref None in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         result :=
           Some (Remote_exec.exec ctx ~prog:"make" ~target:Remote_exec.Any)));
  Cluster.run cl ~until:(sec 30.);
  match !result with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "nobody should have taken the program"
  | None -> Alcotest.fail "driver did not finish"

(* {1 Cluster-wide survey} *)

let test_cluster_ps_sees_programs () =
  let cl = Cluster.create ~seed:23 ~workstations:4 () in
  let listing = ref [] in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"driver" (fun ctx ->
         let h =
           Result.get_ok
             (Remote_exec.exec ctx ~prog:"tex" ~target:Remote_exec.Any)
         in
         listing := Experiment.cluster_ps ctx;
         ignore h));
  Cluster.run cl ~until:(sec 60.);
  let hosts_with_programs =
    List.filter (fun (_, programs) -> programs <> []) !listing
  in
  Alcotest.(check int) "every PM answered" 4 (List.length !listing);
  (match hosts_with_programs with
  | [ (_, [ (prog, _, status) ]) ] ->
      Alcotest.(check string) "program" "tex" prog;
      Alcotest.(check string) "status" "running" status
  | _ -> Alcotest.fail "expected exactly one busy host");
  ()

(* {1 Bridged (two-segment) clusters} *)

let test_cross_segment_exec () =
  (* ws2/ws3 sit behind a 2 ms bridge; force execution there. Everything
     — selection multicast, creation, the image load from the segment-0
     file server — crosses the bridge. *)
  let cl = Cluster.create ~seed:51 ~workstations:4 ~bridged:2 () in
  List.iter
    (fun w ->
      if w.Cluster.ws_segment = 0 then
        Program_manager.set_accepting w.Cluster.ws_pm false)
    (Cluster.workstations cl);
  let r =
    match Experiment.remote_exec cl ~prog:"cc68" () with
    | Ok r -> r
    | Error e -> Alcotest.failf "cross-segment exec: %s" e
  in
  Alcotest.(check bool) "ran behind the bridge" true
    (List.mem r.Experiment.er_host [ "ws2"; "ws3" ]);
  (* The 44 KB image load pays the bridge: noticeably above the
     same-segment 143 ms. *)
  if Time.to_ms r.Experiment.er_load <= 145. then
    Alcotest.failf "load %.0f ms does not reflect the bridge"
      (Time.to_ms r.Experiment.er_load)

let test_cross_segment_migration () =
  (* A program on segment 0 is migrated; only a bridged host will take
     it. The whole five-step protocol runs across the bridge. *)
  let cl = Cluster.create ~seed:52 ~workstations:4 ~bridged:2 () in
  let far_accepts b =
    List.iter
      (fun w ->
        Program_manager.set_accepting w.Cluster.ws_pm
          (if w.Cluster.ws_segment = 1 then b else not b))
      (Cluster.workstations cl)
  in
  far_accepts false;
  (* Program lands on segment 0 (ws1, say)... *)
  let result = ref (Error "incomplete") in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"optimizer"
             ~target:Remote_exec.Any
         with
         | Error e -> result := Error ("exec: " ^ e)
         | Ok h -> (
             Alcotest.(check bool) "started on segment 0" true
               ((Option.get (Cluster.find_workstation cl h.Remote_exec.h_host))
                  .Cluster.ws_segment = 0);
             (* ... then only far hosts volunteer for the migration. *)
             far_accepts true;
             Proc.sleep (Cluster.engine cl) (sec 1.);
             match
               Kernel.send k ~src:self
                 ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
                 (Message.make
                    (Protocol.Pm_migrate
                       {
                         lh = Some h.Remote_exec.h_lh;
                         dest = None;
                         force_destroy = false;
                         strategy = Protocol.Precopy;
                       }))
             with
             | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } -> (
                 match Remote_exec.wait ctx h with
                 | Ok (_, cpu) -> result := Ok (o, cpu)
                 | Error e -> result := Error ("wait: " ^ e))
             | _ -> result := Error "migration failed")));
  Cluster.run cl ~until:(sec 120.);
  match !result with
  | Error e -> Alcotest.fail e
  | Ok (o, cpu) ->
      Alcotest.(check bool) "landed behind the bridge" true
        ((Option.get (Cluster.find_workstation cl o.Protocol.m_dest))
           .Cluster.ws_segment = 1);
      Alcotest.(check bool) "full cpu" true
        (Float.abs (Time.to_sec cpu -. 10.) < 0.05)

(* {1 Experiment helpers} *)

let test_copy_rate_helper () =
  let cl = Cluster.create ~seed:2 ~workstations:2 () in
  let span = Experiment.copy_rate cl ~bytes:(512 * 1024) in
  let s = Time.to_sec span in
  if s < 1.45 || s > 1.55 then Alcotest.failf "512KB copy %.3fs, expected ~1.5" s

let test_kernel_op_latency_helper () =
  let cl = Cluster.create ~seed:2 ~workstations:2 () in
  let us = Experiment.kernel_op_latency cl ~samples:10 in
  (* Two ops (send + reply) at ~513us each plus a group lookup. *)
  if us < 900. || us > 1400. then Alcotest.failf "op latency %.0f us" us

let test_usage_determinism () =
  let run () =
    let cl = Cluster.create ~seed:31 ~workstations:6 () in
    Experiment.usage cl
      {
        Experiment.u_horizon = sec 60.;
        u_job_rate_per_sec = 0.2;
        u_owner = Arrivals.Owner.default;
        u_progs = [ "cc68" ];
      }
  in
  let a = run () and b = run () in
  Alcotest.(check int) "submitted" a.Experiment.us_submitted b.Experiment.us_submitted;
  Alcotest.(check int) "honored" a.Experiment.us_honored b.Experiment.us_honored;
  Alcotest.(check int) "preempted" a.Experiment.us_preemptions b.Experiment.us_preemptions

let test_trace_flag () =
  let cl = Cluster.create ~seed:2 ~workstations:2 ~trace:true () in
  ignore (Experiment.remote_exec cl ~prog:"make" ());
  Alcotest.(check bool) "trace captured" true
    (List.length (Tracer.entries (Cluster.tracer cl)) > 0);
  let cl2 = Cluster.create ~seed:2 ~workstations:2 () in
  ignore (Experiment.remote_exec cl2 ~prog:"make" ());
  Alcotest.(check int) "trace off by default" 0
    (List.length (Tracer.entries (Cluster.tracer cl2)))

let () =
  Alcotest.run "v_cluster"
    [
      ( "construction",
        [
          Alcotest.test_case "shape" `Quick test_cluster_shape;
          Alcotest.test_case "find workstation" `Quick test_find_workstation;
          Alcotest.test_case "environment bindings" `Quick test_env_for_bindings;
          Alcotest.test_case "images published" `Quick test_images_published;
          Alcotest.test_case "memory budget" `Quick test_memory_budget;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same run" `Quick
            test_identical_seeds_identical_runs;
          Alcotest.test_case "different seeds diverge" `Quick
            test_different_seeds_diverge;
        ] );
      ( "admission",
        [
          Alcotest.test_case "burst respects max_guests" `Quick
            test_burst_respects_max_guests;
          Alcotest.test_case "retry terminates" `Quick
            test_exec_retry_stops_eventually;
        ] );
      ( "survey",
        [ Alcotest.test_case "cluster ps" `Quick test_cluster_ps_sees_programs ] );
      ( "bridged",
        [
          Alcotest.test_case "cross-segment exec" `Quick test_cross_segment_exec;
          Alcotest.test_case "cross-segment migration" `Quick
            test_cross_segment_migration;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "copy rate" `Quick test_copy_rate_helper;
          Alcotest.test_case "kernel op latency" `Quick
            test_kernel_op_latency_helper;
          Alcotest.test_case "usage determinism" `Quick test_usage_determinism;
          Alcotest.test_case "trace flag" `Quick test_trace_flag;
        ] );
    ]
