(* Tests for the workload layer: the hot/cold dirty model and its
   closed form, the Table 4-1 calibration, the program catalogue, and
   the arrival processes. Property-based tests pin the model invariants
   the migration experiments rely on. *)

let sec = Time.of_sec

(* {1 Dirty model closed form} *)

let test_expected_zero_at_zero () =
  let p =
    { Dirty_model.hot_kb = 50.; hot_write_kb_per_sec = 100.; cold_kb_per_sec = 5. }
  in
  Alcotest.(check (float 1e-9)) "U(0)=0" 0. (Dirty_model.expected_unique_kb p 0.)

let test_expected_saturates_to_hot_plus_cold () =
  let p =
    { Dirty_model.hot_kb = 50.; hot_write_kb_per_sec = 500.; cold_kb_per_sec = 2. }
  in
  let u10 = Dirty_model.expected_unique_kb p 10. in
  (* Hot part saturated at 50; cold contributes 20. *)
  Alcotest.(check (float 0.1)) "saturation" 70. u10

let prop_expected_monotone =
  QCheck.Test.make ~name:"U(t) is monotone in t" ~count:200
    QCheck.(triple (float_bound_exclusive 200.) (float_bound_exclusive 500.) pos_float)
    (fun (hot, rate, t) ->
      let hot = hot +. 1. and rate = rate +. 1. in
      let t = Float.min t 100. in
      let p =
        { Dirty_model.hot_kb = hot; hot_write_kb_per_sec = rate; cold_kb_per_sec = 3. }
      in
      Dirty_model.expected_unique_kb p t
      <= Dirty_model.expected_unique_kb p (t +. 0.5) +. 1e-9)

let prop_expected_bounded_by_traffic =
  QCheck.Test.make ~name:"U(t) <= total write traffic" ~count:200
    QCheck.(pair (float_bound_exclusive 100.) (float_bound_exclusive 10.))
    (fun (rate, t) ->
      let rate = rate +. 0.1 and t = t +. 0.01 in
      let p =
        { Dirty_model.hot_kb = 30.; hot_write_kb_per_sec = rate; cold_kb_per_sec = 1. }
      in
      Dirty_model.expected_unique_kb p t <= ((rate +. 1.) *. t) +. 1e-6)

(* {1 Stochastic model vs closed form} *)

let simulate_unique_kb params seconds =
  let eng = Engine.create () in
  let rng = Rng.create 99 in
  let space =
    Address_space.create ~code_bytes:0 ~data_bytes:0
      ~active_bytes:(1024 * 1024) ()
  in
  let m = Dirty_model.create params space in
  (* Feed CPU in 10 ms slices, as the scheduler does. *)
  let slices = int_of_float (seconds /. 0.010) in
  ignore
    (Proc.spawn eng ~name:"driver" (fun () ->
         for _ = 1 to slices do
           Dirty_model.on_cpu m rng (Time.of_ms 10.)
         done));
  Engine.run eng;
  float_of_int (Address_space.dirty_bytes space) /. 1024.

let test_stochastic_tracks_closed_form () =
  List.iter
    (fun (name, _) ->
      let spec = Programs.find name in
      let expected = Dirty_model.expected_unique_kb spec.Programs.dirty 1.0 in
      let got = simulate_unique_kb spec.Programs.dirty 1.0 in
      let tol = Float.max 2.0 (0.25 *. expected) in
      if Float.abs (got -. expected) > tol then
        Alcotest.failf "%s: simulated %.1f KB vs closed form %.1f KB" name got
          expected)
    Programs.table_4_1

let test_dirty_model_requires_active_segment () =
  let space = Address_space.create ~code_bytes:1024 ~data_bytes:0 ~active_bytes:0 () in
  let p =
    { Dirty_model.hot_kb = 1.; hot_write_kb_per_sec = 1.; cold_kb_per_sec = 0. }
  in
  Alcotest.check_raises "empty active segment"
    (Invalid_argument "Dirty_model.create: empty active segment") (fun () ->
      ignore (Dirty_model.create p space))

let test_dirty_model_never_touches_code () =
  let spec = Programs.find "parser" in
  let space = Programs.make_space spec in
  let m = Dirty_model.create spec.Programs.dirty space in
  let rng = Rng.create 4 in
  let eng = Engine.create () in
  ignore
    (Proc.spawn eng ~name:"driver" (fun () ->
         for _ = 1 to 200 do
           Dirty_model.on_cpu m rng (Time.of_ms 10.)
         done));
  Engine.run eng;
  (* Code and initialized-data pages stay clean: pre-copy's round-1-only
     traffic for them is the paper's point about unmodified segments. *)
  let code_pages = Address_space.segment_pages space Address_space.Code in
  let data_pages =
    Address_space.segment_pages space Address_space.Initialized_data
  in
  for p = 0 to code_pages + data_pages - 1 do
    if Address_space.is_dirty space p then
      Alcotest.failf "page %d (code/data) dirtied" p
  done

(* Random model configurations for the two properties below: the
   stochastic dirtying must be a deterministic function of the seed, and
   must never dirty more than the space holds (nor stray outside the
   active segment), whatever the parameters. *)
let drive_random_config (seed, hot_kb, rate_kb, cold_kb, active_kb, centi_s) =
  let params =
    {
      Dirty_model.hot_kb = float_of_int (1 + hot_kb);
      hot_write_kb_per_sec = float_of_int (1 + rate_kb);
      cold_kb_per_sec = float_of_int cold_kb;
    }
  in
  let space =
    Address_space.create ~code_bytes:(2 * 1024) ~data_bytes:1024
      ~active_bytes:((1 + active_kb) * 1024) ()
  in
  let m = Dirty_model.create params space in
  let rng = Rng.create seed in
  let eng = Engine.create () in
  ignore
    (Proc.spawn eng ~name:"driver" (fun () ->
         for _ = 1 to 1 + centi_s do
           Dirty_model.on_cpu m rng (Time.of_ms 10.)
         done));
  Engine.run eng;
  space

let config_gen =
  QCheck.(
    make
      ~print:(fun (s, h, r, c, a, t) ->
        Printf.sprintf "seed=%d hot=%d rate=%d cold=%d active_kb=%d slices=%d" s
          h r c a t)
      Gen.(
        tup6 (int_bound 10_000) (int_bound 200) (int_bound 500) (int_bound 50)
          (int_bound 300) (int_bound 300)))

let prop_model_deterministic_per_seed =
  QCheck.Test.make ~name:"stochastic model is deterministic per seed"
    ~count:100 config_gen (fun cfg ->
      let a = drive_random_config cfg and b = drive_random_config cfg in
      Address_space.snapshot_dirty a = Address_space.snapshot_dirty b)

let prop_model_dirty_bounded =
  QCheck.Test.make ~name:"dirty pages bounded by the address space"
    ~count:100 config_gen (fun cfg ->
      let space = drive_random_config cfg in
      let inert =
        Address_space.segment_pages space Address_space.Code
        + Address_space.segment_pages space Address_space.Initialized_data
      in
      Address_space.dirty_bytes space <= Address_space.bytes space
      && Address_space.dirty_count space <= Address_space.pages space - inert)

(* {1 Calibration} *)

let test_fit_table_rows_tightly () =
  List.iter
    (fun (name, triple) ->
      let p = Calibrate.fit triple in
      let rms = Calibrate.residual p triple in
      (* The linking-loader row is non-monotone in the paper (measurement
         noise); every other row fits to fractions of a KB. *)
      let budget = if String.equal name "linking loader" then 1.5 else 0.25 in
      if rms > budget then Alcotest.failf "%s: rms %.2f KB > %.2f" name rms budget)
    Programs.table_4_1

let test_fit_predict_roundtrip () =
  let t = { Calibrate.u02 = 10.; u1 = 20.; u3 = 40. } in
  let p = Calibrate.fit t in
  let m = Calibrate.predict p in
  if Float.abs (m.Calibrate.u1 -. 20.) > 2. then
    Alcotest.failf "predict u1 %.1f far from 20" m.Calibrate.u1

let prop_fit_nonnegative_params =
  QCheck.Test.make ~name:"fitted parameters are non-negative" ~count:100
    QCheck.(
      triple (float_bound_exclusive 50.) (float_bound_exclusive 50.)
        (float_bound_exclusive 50.))
    (fun (a, b, c) ->
      (* Build a plausible monotone triple. *)
      let u02 = a +. 0.5 in
      let u1 = u02 +. b in
      let u3 = u1 +. c in
      let p = Calibrate.fit { Calibrate.u02; u1; u3 } in
      p.Dirty_model.hot_kb >= 0.
      && p.Dirty_model.hot_write_kb_per_sec >= 0.
      && p.Dirty_model.cold_kb_per_sec >= 0.)

(* {1 Program catalogue} *)

let test_catalogue_complete () =
  Alcotest.(check int) "eight programs" 8 (List.length Programs.all);
  Alcotest.(check (list string))
    "paper order"
    [
      "make"; "cc68"; "preprocessor"; "parser"; "optimizer"; "assembler";
      "linking loader"; "tex";
    ]
    Programs.names

let test_catalogue_find () =
  let tex = Programs.find "tex" in
  Alcotest.(check string) "name" "tex" tex.Programs.prog_name;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Programs.find "emacs"))

let test_catalogue_images_positive () =
  List.iter
    (fun s ->
      if
        s.Programs.image.File_server.code_bytes <= 0
        || s.Programs.image.File_server.active_bytes <= 0
        || s.Programs.cpu_seconds <= 0.
      then Alcotest.failf "%s: degenerate spec" s.Programs.prog_name;
      (* Every program must be able to run a 3s Table 4-1 window. *)
      if s.Programs.cpu_seconds < 3.5 then
        Alcotest.failf "%s: too short for a 3 s window" s.Programs.prog_name)
    Programs.all

let test_make_space_geometry () =
  let spec = Programs.find "preprocessor" in
  let sp = Programs.make_space spec in
  Alcotest.(check int) "bytes"
    (spec.Programs.image.File_server.code_bytes
    + spec.Programs.image.File_server.data_bytes
    + spec.Programs.image.File_server.active_bytes)
    (Address_space.bytes sp)

(* {1 Arrivals} *)

let test_poisson_rate () =
  let eng = Engine.create () in
  let rng = Rng.create 12 in
  let n = ref 0 in
  Arrivals.poisson_stream eng rng ~rate_per_sec:2.0 ~until:(sec 500.) (fun _ ->
      incr n);
  Engine.run eng ~until:(sec 500.);
  (* 1000 expected; a 10-sigma band is ~±316. *)
  if !n < 800 || !n > 1200 then Alcotest.failf "got %d arrivals, expected ~1000" !n

let test_poisson_indices_sequential () =
  let eng = Engine.create () in
  let rng = Rng.create 12 in
  let seen = ref [] in
  Arrivals.poisson_stream eng rng ~rate_per_sec:5.0 ~until:(sec 2.) (fun k ->
      seen := k :: !seen);
  Engine.run eng ~until:(sec 2.);
  let l = List.rev !seen in
  Alcotest.(check (list int)) "0..n-1" (List.init (List.length l) Fun.id) l

let test_owner_alternates () =
  let eng = Engine.create () in
  let rng = Rng.create 3 in
  let transitions = ref [] in
  let o =
    Arrivals.Owner.start eng rng
      {
        Arrivals.Owner.active_mean = sec 10.;
        idle_mean = sec 10.;
        active_cpu_fraction = 0.1;
      }
      ~on_transition:(fun a -> transitions := a :: !transitions)
  in
  Engine.run eng ~until:(sec 200.);
  Arrivals.Owner.stop o;
  let l = List.rev !transitions in
  if List.length l < 3 then Alcotest.fail "too few transitions";
  (* Strict alternation starting from idle: true, false, true, ... *)
  List.iteri
    (fun i a ->
      if a <> (i mod 2 = 0) then Alcotest.failf "transition %d out of order" i)
    l

let test_owner_stop () =
  let eng = Engine.create () in
  let rng = Rng.create 3 in
  let count = ref 0 in
  let o =
    Arrivals.Owner.start eng rng Arrivals.Owner.default ~on_transition:(fun _ ->
        incr count)
  in
  Engine.run eng ~until:(sec 100.);
  Arrivals.Owner.stop o;
  let frozen = !count in
  Engine.run eng ~until:(sec 2000.);
  Alcotest.(check int) "no transitions after stop" frozen !count

let prop_exponential_span_positive =
  QCheck.Test.make ~name:"exponential_span >= 1us" ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      Time.(Arrivals.exponential_span rng ~mean:(Time.of_ms 5.) >= Time.of_us 1))

(* {1 Rate modulation}

   The Lewis–Shedler thinning behind {!Arrivals.modulated_stream} must
   keep per-stream event times strictly monotone, keep expected counts
   proportional to the base rate, and stay a pure function of the seed
   whatever [-j] carves the work into — the properties the scenario
   library's diurnal and flash-crowd families lean on. *)

let feq ?(tol = 1e-9) name expected got =
  if Float.abs (expected -. got) > tol then
    Alcotest.failf "%s: expected %g, got %g" name expected got

let test_rate_multiplier_shapes () =
  feq "constant" 1. (Arrivals.rate_multiplier Arrivals.Constant (sec 123.));
  let sine = Arrivals.Sinusoid { period = sec 8.; depth = 0.5 } in
  feq "sine at 0" 1. (Arrivals.rate_multiplier sine Time.zero);
  feq ~tol:1e-6 "sine crest" 1.5 (Arrivals.rate_multiplier sine (sec 2.));
  feq ~tol:1e-6 "sine trough" 0.5 (Arrivals.rate_multiplier sine (sec 6.));
  feq "sine peak" 1.5 (Arrivals.peak_multiplier sine);
  let deep = Arrivals.Sinusoid { period = sec 8.; depth = 1.4 } in
  feq ~tol:1e-6 "deep sine clamps at 0" 0.
    (Arrivals.rate_multiplier deep (sec 6.));
  let spike =
    Arrivals.Spike
      { at = sec 10.; ramp = sec 2.; hold = sec 3.; decay = sec 5.; mult = 10. }
  in
  feq "spike before ramp" 1. (Arrivals.rate_multiplier spike (sec 7.));
  feq ~tol:1e-6 "spike mid-ramp" 5.5 (Arrivals.rate_multiplier spike (sec 9.));
  feq "spike plateau" 10. (Arrivals.rate_multiplier spike (sec 11.));
  feq ~tol:1e-6 "spike mid-decay" 5.5
    (Arrivals.rate_multiplier spike (sec 15.5));
  feq "spike after decay" 1. (Arrivals.rate_multiplier spike (sec 30.));
  feq "spike peak" 10. (Arrivals.peak_multiplier spike)

let modulation_gen =
  QCheck.(
    make
      ~print:(fun (seed, m) ->
        Printf.sprintf "seed=%d %s" seed (Arrivals.modulation_to_string m))
      Gen.(
        pair (int_bound 100_000)
          (oneof
             [
               return Arrivals.Constant;
               map2
                 (fun p d ->
                   Arrivals.Sinusoid
                     {
                       period = sec (float_of_int p);
                       depth = float_of_int d /. 10.;
                     })
                 (2 -- 20) (0 -- 10);
               map2
                 (fun at mult ->
                   Arrivals.Spike
                     {
                       at = sec (float_of_int at);
                       ramp = sec 2.;
                       hold = sec 2.;
                       decay = sec 3.;
                       mult = float_of_int mult;
                     })
                 (5 -- 20) (2 -- 12);
             ])))

let prop_modulated_times_strictly_monotone =
  QCheck.Test.make ~name:"modulated times strictly increase" ~count:100
    modulation_gen (fun (seed, m) ->
      let until = sec 30. in
      let times =
        Arrivals.modulated_times (Rng.create seed) ~rate_per_sec:3.0
          ~modulation:m ~until
      in
      let rec strictly_up = function
        | a :: (b :: _ as rest) -> Time.(a < b) && strictly_up rest
        | _ -> true
      in
      strictly_up times
      && List.for_all (fun t -> Time.(t > Time.zero) && Time.(t <= until)) times)

let prop_stream_matches_offline_sampler =
  QCheck.Test.make ~name:"engine stream = offline sampler" ~count:50
    modulation_gen (fun (seed, m) ->
      let until = sec 25. in
      let offline =
        Arrivals.modulated_times (Rng.create seed) ~rate_per_sec:2.0
          ~modulation:m ~until
      in
      let eng = Engine.create () in
      let got = ref [] in
      Arrivals.modulated_stream eng (Rng.create seed) ~rate_per_sec:2.0
        ~modulation:m ~until (fun _ -> got := Engine.now eng :: !got);
      Engine.run eng;
      List.equal Time.equal offline (List.rev !got))

let test_modulated_count_scales_with_rate () =
  let count rate seed =
    List.length
      (Arrivals.modulated_times (Rng.create seed) ~rate_per_sec:rate
         ~modulation:Arrivals.Constant ~until:(sec 400.))
  in
  (* 400 vs 1200 expected arrivals; the ratio concentrates tightly. *)
  let lo = count 1.0 5 and hi = count 3.0 7 in
  let ratio = float_of_int hi /. float_of_int lo in
  if ratio < 2. || ratio > 4. then
    Alcotest.failf "rate tripled but count ratio %.2f (lo=%d hi=%d)" ratio lo hi

let test_sinusoid_preserves_mean_rate () =
  (* sin integrates to zero over whole periods, so a depth<=1 sinusoid
     keeps the expected count of the flat stream: both expect 800. *)
  let until = sec 400. in
  let n m seed =
    List.length
      (Arrivals.modulated_times (Rng.create seed) ~rate_per_sec:2.0
         ~modulation:m ~until)
  in
  let flat = n Arrivals.Constant 11 in
  let sine = n (Arrivals.Sinusoid { period = sec 10.; depth = 0.9 }) 13 in
  if abs (flat - sine) > 250 then
    Alcotest.failf "constant %d vs sinusoid %d arrivals" flat sine

let test_modulated_deterministic_across_jobs () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let spike =
    Arrivals.Spike
      { at = sec 10.; ramp = sec 2.; hold = sec 2.; decay = sec 3.; mult = 8. }
  in
  let run seed () =
    List.map Time.to_us
      (Arrivals.modulated_times (Rng.create seed) ~rate_per_sec:2.0
         ~modulation:spike ~until:(sec 20.))
  in
  let j1 = Parrun.run ~jobs:1 (List.map run seeds) in
  let j2 = Parrun.run ~jobs:2 (List.map run seeds) in
  Alcotest.(check (list (list int))) "jobs 1 = jobs 2" j1 j2

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "v_workload"
    [
      ( "dirty-model",
        Alcotest.test_case "U(0)=0" `Quick test_expected_zero_at_zero
        :: Alcotest.test_case "saturation" `Quick
             test_expected_saturates_to_hot_plus_cold
        :: Alcotest.test_case "stochastic tracks closed form" `Quick
             test_stochastic_tracks_closed_form
        :: Alcotest.test_case "requires active segment" `Quick
             test_dirty_model_requires_active_segment
        :: Alcotest.test_case "never touches code" `Quick
             test_dirty_model_never_touches_code
        :: qcheck
             [
               prop_expected_monotone; prop_expected_bounded_by_traffic;
               prop_model_deterministic_per_seed; prop_model_dirty_bounded;
             ] );
      ( "calibration",
        Alcotest.test_case "fits Table 4-1 tightly" `Quick
          test_fit_table_rows_tightly
        :: Alcotest.test_case "fit/predict roundtrip" `Quick
             test_fit_predict_roundtrip
        :: qcheck [ prop_fit_nonnegative_params ] );
      ( "programs",
        [
          Alcotest.test_case "catalogue complete" `Quick test_catalogue_complete;
          Alcotest.test_case "find" `Quick test_catalogue_find;
          Alcotest.test_case "specs well-formed" `Quick
            test_catalogue_images_positive;
          Alcotest.test_case "space geometry" `Quick test_make_space_geometry;
        ] );
      ( "arrivals",
        Alcotest.test_case "poisson rate" `Quick test_poisson_rate
        :: Alcotest.test_case "indices sequential" `Quick
             test_poisson_indices_sequential
        :: Alcotest.test_case "owner alternates" `Quick test_owner_alternates
        :: Alcotest.test_case "owner stop" `Quick test_owner_stop
        :: qcheck [ prop_exponential_span_positive ] );
      ( "modulation",
        Alcotest.test_case "rate multiplier shapes" `Quick
          test_rate_multiplier_shapes
        :: Alcotest.test_case "count scales with rate" `Quick
             test_modulated_count_scales_with_rate
        :: Alcotest.test_case "sinusoid preserves mean rate" `Quick
             test_sinusoid_preserves_mean_rate
        :: Alcotest.test_case "deterministic across jobs" `Quick
             test_modulated_deterministic_across_jobs
        :: qcheck
             [
               prop_modulated_times_strictly_monotone;
               prop_stream_matches_offline_sampler;
             ] );
    ]
