(* Tests for the fault-injection subsystem and the crash/loss recovery
   hardening it exercises: plan parsing, reservation TTL, destination
   crashes at every pre-copy round, retry-with-reselection, re-execution,
   partition/reboot behaviour, and determinism under chaos. *)

let sec = Time.of_sec
let ms = Time.of_ms

(* {1 Plan parsing} *)

let test_parse_plan () =
  match Faults.parse "crash:ws2@4.5; reboot:ws2@9;loss:0.02@2-10" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok plan -> (
      Alcotest.(check int) "three events" 3 (List.length plan);
      match plan with
      | [
       Faults.Crash_host { host = ch; at = cat };
       Faults.Reboot_host { host = rh; at = _ };
       Faults.Loss_window { p; start; stop };
      ] ->
          Alcotest.(check string) "crash host" "ws2" ch;
          Alcotest.(check bool) "crash at" true (cat = Time.of_sec 4.5);
          Alcotest.(check string) "reboot host" "ws2" rh;
          Alcotest.(check (float 1e-9)) "loss p" 0.02 p;
          Alcotest.(check bool) "loss window" true
            (start = sec 2. && stop = sec 10.)
      | _ -> Alcotest.fail "wrong event shapes")

let test_parse_partition_slow () =
  match Faults.parse "partition@3-6;slow:ws1x4@0-20" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok
      [
        Faults.Partition_bridge { start; stop };
        Faults.Slow_host { host; factor; start = _; stop = _ };
      ] ->
      Alcotest.(check bool) "partition window" true
        (start = sec 3. && stop = sec 6.);
      Alcotest.(check string) "slow host" "ws1" host;
      Alcotest.(check (float 1e-9)) "slow factor" 4.0 factor
  | Ok _ -> Alcotest.fail "wrong event shapes"

let test_parse_rejects_garbage () =
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      "";
      "crash:ws1";
      "crash:@3";
      "loss:1.5@0-3";
      "loss:0.1@5-2";
      "slow:ws1x0.5@0-3";
      "explode:ws1@3";
    ]

let test_parse_flaky_crashrack () =
  match Faults.parse "flaky:ws3@2-10;crashrack:ws1+ws2+ws3@4.5" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok
      [
        Faults.Flaky_host { host; start; stop };
        Faults.Crash_rack { hosts; at };
      ] ->
      Alcotest.(check string) "flaky host" "ws3" host;
      Alcotest.(check bool) "flaky window" true
        (start = sec 2. && stop = sec 10.);
      Alcotest.(check (list string)) "rack hosts" [ "ws1"; "ws2"; "ws3" ] hosts;
      Alcotest.(check bool) "rack instant" true (at = sec 4.5)
  | Ok _ -> Alcotest.fail "wrong event shapes"

(* Rejections must say how to fix the clause, not just that it is bad. *)
let test_rejections_are_actionable () =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (bad, expected) ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%S -> %S (got %S)" bad expected e)
            true
            (contains ~sub:expected e))
    [
      ("loss:0.1@9-2", "runs backwards");
      ("partition@6-3", "runs backwards");
      ("flaky:ws1@5-5", "is empty");
      ("crash:ws1@-3", "is negative");
      ("slow:ws1x0.5@0-3", "must be at least 1");
      ("slow:ws1x-2@0-3", "must be at least 1");
      ("crashrack:ws1@4", "name at least two hosts");
    ]

(* {1 Print/parse round trip}

   [pp_plan] claims to emit exactly the clause syntax [parse] accepts,
   for any valid plan. Hold it to that with a generator spanning all
   seven event kinds, microsecond-precision times, and shortest-decimal
   floats. *)

let gen_plan =
  let open QCheck.Gen in
  let host = oneofl [ "ws1"; "ws2"; "ws7"; "fs0"; "bridge-a" ] in
  let t = map Time.of_us (int_bound 120_000_000) in
  (* stop - start >= 1 us, so the printed window never collapses. *)
  let window =
    map2
      (fun a d -> (Time.of_us a, Time.of_us (a + 1 + d)))
      (int_bound 60_000_000) (int_bound 59_999_999)
  in
  let event =
    oneof
      [
        map2 (fun host at -> Faults.Crash_host { host; at }) host t;
        map2 (fun host at -> Faults.Reboot_host { host; at }) host t;
        map2
          (fun p (start, stop) -> Faults.Loss_window { p; start; stop })
          (float_bound_inclusive 1.) window;
        map (fun (start, stop) -> Faults.Partition_bridge { start; stop }) window;
        map3
          (fun host f (start, stop) ->
            Faults.Slow_host { host; factor = 1. +. f; start; stop })
          host (float_bound_inclusive 15.) window;
        map2
          (fun host (start, stop) -> Faults.Flaky_host { host; start; stop })
          host window;
        map2
          (fun hosts at -> Faults.Crash_rack { hosts; at })
          (list_size (int_range 2 4) host)
          t;
      ]
  in
  list_size (int_range 1 6) event

let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse (pp_plan plan) = Ok plan"
    (QCheck.make
       ~print:(fun plan -> Format.asprintf "%a" Faults.pp_plan plan)
       gen_plan)
    (fun plan ->
      match Faults.parse (Format.asprintf "%a" Faults.pp_plan plan) with
      | Ok plan' -> plan' = plan
      | Error e -> QCheck.Test.fail_reportf "did not re-parse: %s" e)

let test_plan_validated_against_cluster () =
  (match
     Cluster.create ~seed:1 ~workstations:2
       ~faults:[ Faults.Crash_host { host = "ws9"; at = sec 1. } ]
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown host accepted");
  match
    Cluster.create ~seed:1 ~workstations:2
      ~faults:[ Faults.Partition_bridge { start = sec 1.; stop = sec 2. } ]
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "partition accepted on unbridged cluster"

(* {1 Reservation TTL} *)

let test_reservation_expires_when_untouched () =
  let cl = Cluster.create ~seed:7 ~workstations:2 () in
  let k = (Cluster.workstation cl 1).Cluster.ws_kernel in
  let free0 = Kernel.memory_free k in
  let temp = Ids.Lh_allocator.fresh (Kernel.allocator k) in
  Alcotest.(check bool) "reserved" true
    (Kernel.reserve_lh k ~temp_lh:temp ~bytes:(256 * 1024));
  Alcotest.(check int) "memory held" (free0 - (256 * 1024))
    (Kernel.memory_free k);
  (* Nothing ever addresses the reserved id: the 15 s lease must run out
     and release the memory. *)
  Cluster.run cl ~until:(sec 20.);
  Alcotest.(check int) "reservation gone" 0 (Kernel.reservation_count k);
  Alcotest.(check int) "memory released" free0 (Kernel.memory_free k);
  Alcotest.(check int) "expiry counted" 1 (Kernel.stat k "reservations_expired")

let test_reservation_ttl_disabled () =
  let cfg =
    {
      Config.default with
      Config.os =
        { Os_params.default with Os_params.reservation_ttl = Time.zero };
    }
  in
  let cl = Cluster.create ~seed:7 ~workstations:2 ~cfg () in
  let k = (Cluster.workstation cl 1).Cluster.ws_kernel in
  let temp = Ids.Lh_allocator.fresh (Kernel.allocator k) in
  ignore (Kernel.reserve_lh k ~temp_lh:temp ~bytes:1024);
  Cluster.run cl ~until:(sec 60.);
  Alcotest.(check int) "reservation survives" 1 (Kernel.reservation_count k);
  Alcotest.(check int) "no expiry" 0 (Kernel.stat k "reservations_expired")

let test_healthy_migration_never_expires () =
  (* A normal pre-copy migration: the copy-round pings refresh the lease,
     install consumes the reservation, and the expiry counter must stay
     zero everywhere. *)
  let cl = Cluster.create ~seed:11 ~workstations:4 () in
  (match Experiment.migrate_program cl ~prog:"tex" () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Cluster.run cl ~until:(sec 120.);
  List.iter
    (fun w ->
      let k = w.Cluster.ws_kernel in
      Alcotest.(check int)
        (Kernel.host_name k ^ " expired")
        0
        (Kernel.stat k "reservations_expired");
      Alcotest.(check int)
        (Kernel.host_name k ^ " leaked")
        0 (Kernel.reservation_count k))
    (Cluster.workstations cl)

let test_source_crash_releases_reservation () =
  (* The source crashes mid-pre-copy: the destination's reservation is
     never installed and never cancelled — only the TTL can release it.
     tex's initial copy takes ~2.2 s, so a crash 1 s into the copy leaves
     the reservation parked. *)
  let cl =
    Cluster.create ~seed:12 ~workstations:4
      ~faults:[ Faults.Crash_host { host = "ws1"; at = sec 4.2 } ]
      ()
  in
  List.iteri
    (fun i w ->
      Program_manager.set_accepting w.Cluster.ws_pm (i = 1 || i = 2))
    (Cluster.workstations cl);
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:(Remote_exec.Named "ws1")
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h ->
             Program_manager.set_accepting
               (Cluster.workstation cl 1).Cluster.ws_pm false;
             Proc.sleep (Cluster.engine cl) (sec 3.);
             (* Fire and forget: the source will die mid-migration, so
                no reply ever comes. *)
             ignore
               (Kernel.send k ~src:self
                  ~dst:(Program_manager.pid (Cluster.workstation cl 1).Cluster.ws_pm)
                  (Message.make
                     (Protocol.Pm_migrate
                        {
                          lh = Some h.Remote_exec.h_lh;
                          dest = None;
                          force_destroy = false;
                          strategy = Protocol.Precopy;
                        })))));
  Cluster.run cl ~until:(sec 60.);
  let dest = (Cluster.workstation cl 2).Cluster.ws_kernel in
  Alcotest.(check int) "reservation released" 0 (Kernel.reservation_count dest);
  Alcotest.(check bool) "expiry fired" true
    (Kernel.stat dest "reservations_expired" > 0);
  Alcotest.(check int) "full memory back" (Kernel.memory_bytes dest)
    (Kernel.memory_free dest
    + List.fold_left
        (fun acc lh -> acc + Logical_host.total_bytes lh)
        0
        (Kernel.logical_hosts dest))

(* {1 Destination crash at each pre-copy round} *)

(* Run a tex migration ws1 -> ws2 and crash ws2 once its kernel server
   has answered [k] copy-round pings. Returns (migration result, wait
   result, source free-memory before/after, dest kernel). *)
let crash_dest_at_round ~round =
  let cl = Cluster.create ~seed:(40 + round) ~workstations:4 () in
  let eng = Cluster.engine cl in
  List.iteri
    (fun i w -> Program_manager.set_accepting w.Cluster.ws_pm (i = 1))
    (Cluster.workstations cl);
  let dest = (Cluster.workstation cl 2).Cluster.ws_kernel in
  let migration = ref (Error "did not run") in
  let wait_result = ref (Error "did not run") in
  let free_before = ref 0 and free_after = ref 0 in
  (* Watchdog: kill the destination the instant ping [round] is answered
     (its reply is already on the wire, so the source sees the round
     acknowledged and starts the next step). *)
  ignore
    (Proc.spawn eng ~name:"assassin" (fun () ->
         while Kernel.stat dest "ks_pings" < round do
           Proc.sleep eng (ms 5.)
         done;
         Kernel.shutdown dest));
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:(Remote_exec.Named "ws1")
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h ->
             Program_manager.set_accepting
               (Cluster.workstation cl 1).Cluster.ws_pm false;
             Program_manager.set_accepting
               (Cluster.workstation cl 2).Cluster.ws_pm true;
             Proc.sleep eng (sec 3.);
             let src = (Cluster.workstation cl 1).Cluster.ws_kernel in
             free_before := Kernel.memory_free src;
             migration :=
               (match
                  Kernel.send k ~src:self
                    ~dst:
                      (Program_manager.pid
                         (Cluster.workstation cl 1).Cluster.ws_pm)
                    (Message.make
                       (Protocol.Pm_migrate
                          {
                            lh = Some h.Remote_exec.h_lh;
                            dest = None;
                            force_destroy = false;
                            strategy = Protocol.Precopy;
                          }))
                with
               | Ok { Message.body = Protocol.Pm_migrate_failed m; _ } ->
                   Error m
               | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } ->
                   Ok o.Protocol.m_dest
               | Ok _ -> Error "malformed reply"
               | Error e -> Error (Format.asprintf "%a" Kernel.pp_send_error e));
             free_after := Kernel.memory_free src;
             wait_result := Remote_exec.wait ctx h));
  Cluster.run cl ~until:(sec 120.);
  (!migration, !wait_result, (!free_before, !free_after), dest)

let test_dest_crash_at_round round () =
  let migration, wait_result, (free_before, free_after), dest =
    crash_dest_at_round ~round
  in
  (match migration with
  | Error _ -> ()
  | Ok d -> Alcotest.failf "round %d: migration claimed success to %s" round d);
  (* The source re-installed and unfroze the program: it finishes. *)
  (match wait_result with
  | Ok (_, cpu) ->
      Alcotest.(check bool) "full cpu" true
        (Float.abs (Time.to_sec cpu -. 30.) < 0.1)
  | Error e -> Alcotest.failf "round %d: program lost after rollback: %s" round e);
  Alcotest.(check int)
    (Printf.sprintf "round %d: source memory restored" round)
    free_before free_after;
  Alcotest.(check int)
    (Printf.sprintf "round %d: no reservation on crashed dest" round)
    0 (Kernel.reservation_count dest)

(* {1 Retry with reselection} *)

let test_retry_reselects_excluding_failed () =
  (* ws2 is the only destination and dies after the first copy round;
     ws3 opens up at the same moment. With retries enabled, the second
     attempt must land on ws3 — never back on the corpse. *)
  let cfg = { Config.default with Config.migration_retries = 2 } in
  let cl = Cluster.create ~seed:61 ~workstations:4 ~cfg () in
  let eng = Cluster.engine cl in
  List.iteri
    (fun i w -> Program_manager.set_accepting w.Cluster.ws_pm (i = 1))
    (Cluster.workstations cl);
  let dest = (Cluster.workstation cl 2).Cluster.ws_kernel in
  ignore
    (Proc.spawn eng ~name:"assassin" (fun () ->
         while Kernel.stat dest "ks_pings" < 1 do
           Proc.sleep eng (ms 5.)
         done;
         Kernel.shutdown dest;
         Program_manager.set_accepting
           (Cluster.workstation cl 3).Cluster.ws_pm true));
  let outcome = ref (Error "did not run") in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:(Remote_exec.Named "ws1")
         with
         | Error e -> Alcotest.failf "exec: %s" e
         | Ok h -> (
             Program_manager.set_accepting
               (Cluster.workstation cl 1).Cluster.ws_pm false;
             Program_manager.set_accepting
               (Cluster.workstation cl 2).Cluster.ws_pm true;
             Proc.sleep eng (sec 3.);
             match
               Kernel.send k ~src:self
                 ~dst:
                   (Program_manager.pid (Cluster.workstation cl 1).Cluster.ws_pm)
                 (Message.make
                    (Protocol.Pm_migrate
                       {
                         lh = Some h.Remote_exec.h_lh;
                         dest = None;
                         force_destroy = false;
                         strategy = Protocol.Precopy;
                       }))
             with
             | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } ->
                 outcome := Ok o.Protocol.m_dest
             | Ok { Message.body = Protocol.Pm_migrate_failed m; _ } ->
                 outcome := Error m
             | _ -> outcome := Error "malformed reply")));
  Cluster.run cl ~until:(sec 200.);
  match !outcome with
  | Ok d -> Alcotest.(check string) "retried onto the live host" "ws3" d
  | Error e -> Alcotest.failf "retry did not recover: %s" e

(* {1 Re-execution on host failure} *)

let test_reexec_on_host_crash () =
  let cl =
    Cluster.create ~seed:71 ~workstations:4
      ~faults:[ Faults.Crash_host { host = "ws1"; at = sec 2. } ]
      ()
  in
  (* Only ws1 volunteers initially; it dies 2 s into make's 8 s run. *)
  List.iteri
    (fun i w -> Program_manager.set_accepting w.Cluster.ws_pm (i = 1))
    (Cluster.workstations cl);
  ignore
    (Engine.schedule (Cluster.engine cl) ~at:(sec 2.) (fun () ->
         List.iteri
           (fun i w -> Program_manager.set_accepting w.Cluster.ws_pm (i = 2))
           (Cluster.workstations cl)));
  let result = ref (Error "did not run") in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         result :=
           Remote_exec.exec_and_wait ~on_host_failure:(`Reexec 3) ctx
             ~prog:"make" ~target:Remote_exec.Any));
  Cluster.run cl ~until:(sec 120.);
  match !result with
  | Ok (h, _, cpu) ->
      Alcotest.(check string) "re-ran on the live host" "ws2"
        h.Remote_exec.h_host;
      Alcotest.(check bool) "full cpu on rerun" true
        (Float.abs (Time.to_sec cpu -. 8.) < 0.1)
  | Error e -> Alcotest.failf "re-execution failed: %s" e

(* {1 Partition and reboot} *)

let test_partition_window_heals () =
  (* An exec across the bridge straddles a partition window: frames are
     lost while severed, the retransmission machinery (with capped
     backoff) rides it out, and the program still completes after the
     bridge heals. The 7 s outage needs a give-up horizon above the
     default 5 s — a kernel that has given up is correct behaviour but
     not what this test is about. *)
  let cfg =
    {
      Config.default with
      Config.os =
        { Os_params.default with Os_params.give_up_after = sec 12. };
    }
  in
  let cl =
    Cluster.create ~seed:81 ~workstations:4 ~bridged:2 ~cfg
      ~faults:[ Faults.Partition_bridge { start = sec 1.; stop = sec 8. } ]
      ()
  in
  List.iter
    (fun w ->
      if w.Cluster.ws_segment = 0 then
        Program_manager.set_accepting w.Cluster.ws_pm false)
    (Cluster.workstations cl);
  let result = ref (Error "did not run") in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         result :=
           Remote_exec.exec_and_wait ctx ~prog:"cc68"
             ~target:Remote_exec.Any));
  Cluster.run cl ~until:(sec 120.);
  match !result with
  | Ok (h, wall, _) ->
      Alcotest.(check bool) "ran behind the bridge" true
        (List.mem h.Remote_exec.h_host [ "ws2"; "ws3" ]);
      (* The partition must actually have cost something: a clean run
         takes ~6.5 s; straddling a 7 s outage cannot. *)
      Alcotest.(check bool) "partition delayed the run" true
        (Time.to_sec wall > 6.9)
  | Error e -> Alcotest.failf "exec across partition: %s" e

let test_crash_reboot_cycle () =
  (* ws1 crashes and reboots; afterwards it must serve programs again
     (fresh program manager, same well-known pids). *)
  let cl =
    Cluster.create ~seed:91 ~workstations:3
      ~faults:
        [
          Faults.Crash_host { host = "ws1"; at = sec 1. };
          Faults.Reboot_host { host = "ws1"; at = sec 3. };
        ]
      ()
  in
  List.iteri
    (fun i w -> Program_manager.set_accepting w.Cluster.ws_pm (i = 1))
    (Cluster.workstations cl);
  let result = ref (Error "did not run") in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         Proc.sleep (Cluster.engine cl) (sec 5.);
         result :=
           Remote_exec.exec_and_wait ctx ~prog:"cc68"
             ~target:Remote_exec.Any));
  Cluster.run cl ~until:(sec 120.);
  (match !result with
  | Ok (h, _, _) ->
      Alcotest.(check string) "rebooted host serves again" "ws1"
        h.Remote_exec.h_host
  | Error e -> Alcotest.failf "exec after reboot: %s" e);
  let k1 = (Cluster.workstation cl 1).Cluster.ws_kernel in
  Alcotest.(check int) "reboot counted" 1 (Kernel.stat k1 "reboots")

let test_slow_host_stretches_run () =
  let run faults =
    let cl = Cluster.create ~seed:95 ~workstations:2 ?faults () in
    let wall = ref Time.zero in
    ignore
      (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
           match
             Remote_exec.exec_and_wait ctx
               ~prog:"cc68" ~target:(Remote_exec.Named "ws1")
           with
           | Ok (_, w, _) -> wall := w
           | Error e -> Alcotest.failf "exec: %s" e));
    Cluster.run cl ~until:(sec 200.);
    Time.to_sec !wall
  in
  let nominal = run None in
  let slowed =
    run (Some [ Faults.Slow_host { host = "ws1"; factor = 4.0; start = sec 0.; stop = sec 100. } ])
  in
  Alcotest.(check bool)
    (Printf.sprintf "4x slowdown stretches the run (%.1f -> %.1f s)" nominal
       slowed)
    true
    (slowed > 3. *. nominal)

(* {1 Chaos: loss + partition + crash, all at once} *)

(* The acceptance scenario: 2% frame loss, a bridge partition window,
   and a destination crash mid-migration. Every exec_and_wait caller
   must get an answer, every migration must complete or roll back, and
   no kernel may leak reservations, forwards, or guest logical hosts. *)
let chaos_run ~seed =
  let cfg = { Config.default with Config.migration_retries = 2 } in
  let cl =
    Cluster.create ~seed ~workstations:6 ~bridged:2 ~cfg
      ~faults:
        [
          Faults.Loss_window { p = 0.02; start = sec 0.; stop = sec 40. };
          Faults.Partition_bridge { start = sec 12.; stop = sec 16. };
          Faults.Crash_host { host = "ws2"; at = sec 4.5 };
          Faults.Reboot_host { host = "ws2"; at = sec 25. };
        ]
      ()
  in
  let eng = Cluster.engine cl in
  let results = ref [] in
  (* Three independent jobs, started from different workstations. *)
  List.iteri
    (fun i (ws, prog, delay) ->
      ignore
        (Cluster.shell cl ~ws ~name:(Printf.sprintf "shell%d" i) (fun ctx ->
             Proc.sleep eng delay;
             let r =
               Remote_exec.exec_and_wait ~on_host_failure:(`Reexec 3) ctx ~prog ~target:Remote_exec.Any
             in
             results := (i, Result.is_ok r) :: !results)))
    [ (0, "cc68", ms 10.); (3, "make", ms 200.); (4, "assembler", ms 400.) ];
  (* One migration whose chosen destination may be the crashing ws2. *)
  let migration = ref "no result" in
  ignore
    (Cluster.user cl ~ws:0 ~name:"migrator" (fun k self ->
         let ctx = Cluster.context cl ~ws:0 ~self in
         match
           Remote_exec.exec ctx ~prog:"tex"
             ~target:(Remote_exec.Named "ws1")
         with
         | Error e -> migration := "exec: " ^ e
         | Ok h -> (
             Proc.sleep eng (sec 3.);
             match
               Kernel.send k ~src:self
                 ~dst:
                   (Program_manager.pid (Cluster.workstation cl 1).Cluster.ws_pm)
                 (Message.make
                    (Protocol.Pm_migrate
                       {
                         lh = Some h.Remote_exec.h_lh;
                         dest = None;
                         force_destroy = false;
                         strategy = Protocol.Precopy;
                       }))
             with
             | Ok { Message.body = Protocol.Pm_migrated [ _ ]; _ } -> (
                 migration := "migrated";
                 match Remote_exec.wait ctx h with
                 | Ok _ -> migration := "migrated+completed"
                 | Error e -> migration := "migrated but lost: " ^ e)
             | Ok { Message.body = Protocol.Pm_migrate_failed _; _ } -> (
                 migration := "rolled back";
                 match Remote_exec.wait ctx h with
                 | Ok _ -> migration := "rolled back+completed"
                 | Error e -> migration := "rolled back but lost: " ^ e)
             | Ok _ -> migration := "malformed reply"
             | Error e ->
                 migration := Format.asprintf "%a" Kernel.pp_send_error e)));
  Cluster.run cl ~until:(sec 300.);
  (cl, !results, !migration)

let test_chaos_everyone_answered () =
  let cl, results, migration = chaos_run ~seed:1234 in
  Alcotest.(check int) "all three jobs reported" 3 (List.length results);
  List.iter
    (fun (i, ok) ->
      Alcotest.(check bool) (Printf.sprintf "job %d succeeded" i) true ok)
    results;
  Alcotest.(check bool)
    ("migration resolved cleanly: " ^ migration)
    true
    (migration = "migrated+completed" || migration = "rolled back+completed");
  (* No leaked kernel state anywhere once the dust settles. *)
  List.iter
    (fun w ->
      let k = w.Cluster.ws_kernel in
      let name = Kernel.host_name k in
      Alcotest.(check int) (name ^ ": reservations") 0
        (Kernel.reservation_count k);
      Alcotest.(check int) (name ^ ": forwards") 0 (Kernel.forward_count k);
      Alcotest.(check int) (name ^ ": orphan guests") 0 (Kernel.guest_count k))
    (Cluster.workstations cl)

let test_chaos_deterministic () =
  let fingerprint seed =
    let cl, results, migration = chaos_run ~seed in
    let stats =
      List.map
        (fun w ->
          let k = w.Cluster.ws_kernel in
          ( Kernel.stat k "sends",
            Kernel.stat k "retransmissions",
            Kernel.stat k "where_is",
            Kernel.stat k "packets_rx",
            Kernel.stat k "reservations_expired" ))
        (Cluster.workstations cl)
    in
    let injected =
      match Cluster.faults cl with Some f -> Faults.injected f | None -> -1
    in
    ( Engine.events_fired (Cluster.engine cl),
      stats,
      injected,
      List.sort compare results,
      migration )
  in
  let a = fingerprint 555 and b = fingerprint 555 in
  Alcotest.(check bool) "identical chaos runs" true (a = b);
  let c = fingerprint 556 in
  Alcotest.(check bool) "different seed diverges" true (a <> c)

let () =
  Alcotest.run "v_faults"
    [
      ( "plan",
        [
          Alcotest.test_case "parse" `Quick test_parse_plan;
          Alcotest.test_case "parse partition/slow" `Quick
            test_parse_partition_slow;
          Alcotest.test_case "parse flaky/crashrack" `Quick
            test_parse_flaky_crashrack;
          Alcotest.test_case "parse rejects garbage" `Quick
            test_parse_rejects_garbage;
          Alcotest.test_case "rejections are actionable" `Quick
            test_rejections_are_actionable;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
          Alcotest.test_case "validated against cluster" `Quick
            test_plan_validated_against_cluster;
        ] );
      ( "reservation-ttl",
        [
          Alcotest.test_case "expires untouched" `Quick
            test_reservation_expires_when_untouched;
          Alcotest.test_case "disabled by zero ttl" `Quick
            test_reservation_ttl_disabled;
          Alcotest.test_case "healthy migration never expires" `Quick
            test_healthy_migration_never_expires;
          Alcotest.test_case "source crash releases" `Quick
            test_source_crash_releases_reservation;
        ] );
      ( "dest-crash",
        [
          Alcotest.test_case "at round 1" `Quick (test_dest_crash_at_round 1);
          Alcotest.test_case "at round 2" `Quick (test_dest_crash_at_round 2);
          Alcotest.test_case "at round 3" `Quick (test_dest_crash_at_round 3);
          Alcotest.test_case "retry reselects" `Quick
            test_retry_reselects_excluding_failed;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "reexec on crash" `Quick test_reexec_on_host_crash;
          Alcotest.test_case "partition heals" `Quick
            test_partition_window_heals;
          Alcotest.test_case "crash/reboot cycle" `Quick
            test_crash_reboot_cycle;
          Alcotest.test_case "slow host" `Quick test_slow_host_stretches_run;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "everyone answered" `Quick
            test_chaos_everyone_answered;
          Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
        ] );
    ]
