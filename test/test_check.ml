(* Property tests for the simulation substrate (Heap, Engine.cancel) and
   the deterministic-simulation-testing layer itself (Scenario +
   Monitors). Randomness comes from the same Rng the scenario generator
   uses, so every case is replayable from its seed. *)

let drain_ints h =
  let rec loop acc =
    match Heap.pop h with Some x -> loop (x :: acc) | None -> List.rev acc
  in
  loop []

(* Heap: popping everything yields the insertion multiset in sorted
   order, whatever the (duplicate-heavy) input. *)
let test_heap_pop_order () =
  for seed = 1 to 25 do
    let rng = Rng.create seed in
    let n = 1 + Rng.int rng 300 in
    let xs = List.init n (fun _ -> Rng.int rng 50) in
    let h = Heap.create ~cmp:Int.compare in
    List.iter (Heap.push h) xs;
    Alcotest.(check int) "length" n (Heap.length h);
    (match Heap.peek h with
    | Some top ->
        Alcotest.(check int)
          (Printf.sprintf "seed %d: peek is min" seed)
          (List.fold_left Stdlib.min Stdlib.max_int xs)
          top
    | None -> Alcotest.fail "non-empty heap peeked None");
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: pop order" seed)
      (List.sort Int.compare xs) (drain_ints h)
  done

(* Heap: vacated slots are scrubbed. Pop leaves the element's old slot,
   and grow leaves the Array.make fill element, in the backing array;
   both must be overwritten or the heap pins dead values. Observed
   through weak pointers: after popping everything, no pushed box may
   survive a full GC. *)
let heap_scrub_fill h weak n =
  let rng = Rng.create 7 in
  for i = 0 to n - 1 do
    let r = ref (Rng.int rng 10_000) in
    Weak.set weak i (Some r);
    Heap.push h r
  done

let rec heap_scrub_drain h =
  match Heap.pop h with Some _ -> heap_scrub_drain h | None -> ()

let test_heap_scrub () =
  let h = Heap.create ~cmp:(fun a b -> Int.compare !a !b) in
  let n = 100 (* several grows: capacity 16 -> 32 -> 64 -> 128 *) in
  let weak = Weak.create n in
  heap_scrub_fill h weak n;
  heap_scrub_drain h;
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr live
  done;
  Alcotest.(check int) "popped elements retained by backing array" 0 !live;
  (* Keep [h] reachable past the GC so the check exercised a live heap. *)
  Alcotest.(check bool) "heap empty" true (Heap.is_empty h)

(* Engine.cancel: cancelled events never fire, double-cancel is a no-op,
   and [pending] counts exactly the survivors. *)
let test_engine_cancel () =
  for seed = 1 to 20 do
    let rng = Rng.create (1000 + seed) in
    let eng = Engine.create () in
    let n = 1 + Rng.int rng 80 in
    let fired = Array.make n false in
    let handles =
      Array.init n (fun i ->
          Engine.schedule eng
            ~at:(Time.of_us (Rng.int rng 1_000_000))
            (fun () -> fired.(i) <- true))
    in
    let cancelled = Array.init n (fun _ -> Rng.bool rng 0.4) in
    Array.iteri (fun i c -> if c then Engine.cancel handles.(i)) cancelled;
    Array.iteri
      (fun i c -> if c && i mod 2 = 0 then Engine.cancel handles.(i))
      cancelled;
    let survivors =
      Array.fold_left (fun acc c -> if c then acc else acc + 1) 0 cancelled
    in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: pending after cancels" seed)
      survivors (Engine.pending eng);
    Engine.run eng;
    Array.iteri
      (fun i c ->
        if fired.(i) = c then
          Alcotest.failf "seed %d: event %d %s" seed i
            (if c then "fired though cancelled" else "never fired"))
      cancelled;
    Alcotest.(check int) "drained" 0 (Engine.pending eng)
  done

(* Stats: the percentile cache is invalidated by record. *)
let test_percentile_cache () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.record s) [ 5.; 1.; 9. ];
  Alcotest.(check (float 0.)) "p50" 5. (Stats.Summary.percentile s 50.);
  Alcotest.(check (float 0.)) "p100" 9. (Stats.Summary.percentile s 100.);
  Stats.Summary.record s 0.5;
  Alcotest.(check (float 0.)) "p0 after record" 0.5
    (Stats.Summary.percentile s 0.);
  Alcotest.(check (float 0.)) "p100 after record" 9.
    (Stats.Summary.percentile s 100.)

(* Scenario runs are a pure function of the seed. *)
let test_scenario_deterministic () =
  let o1 = Scenario.run (Scenario.of_seed 42) in
  let o2 = Scenario.run (Scenario.of_seed 42) in
  Alcotest.(check int) "events" o1.Scenario.o_events o2.Scenario.o_events;
  Alcotest.(check int) "completed" o1.Scenario.o_completed
    o2.Scenario.o_completed;
  Alcotest.(check int) "failed" o1.Scenario.o_failed o2.Scenario.o_failed

(* The paper-faithful configuration holds every invariant on a spread of
   seeds (a slice of what `vsim fuzz` sweeps). *)
let test_invariants_hold () =
  for seed = 1 to 8 do
    let o = Scenario.run (Scenario.of_seed seed) in
    match o.Scenario.o_violations with
    | [] -> ()
    | v :: _ ->
        Alcotest.failf "seed %d: [%s] %s (replay: %s)" seed
          v.Monitors.vi_monitor v.Monitors.vi_detail
          (Scenario.replay_hint o.Scenario.o_scenario)
  done

(* Mutation test: the Demos/MP forwarding-address ablation leaves the
   old host answering for a migrated logical host — exactly the residual
   dependency the paper's broadcast rebinding avoids. The residual
   monitor must object on some nearby seed, with the window naming the
   old host. *)
let test_forwarding_ablation_caught () =
  let rec probe seed =
    if seed > 40 then
      Alcotest.fail "no residual violation in 40 seeds under Forwarding"
    else
      let o =
        Scenario.run ~rebind:Os_params.Forwarding (Scenario.of_seed seed)
      in
      match
        List.find_opt
          (fun v -> v.Monitors.vi_monitor = "residual")
          o.Scenario.o_violations
      with
      | Some v ->
          Alcotest.(check bool)
            "violation window captured" true (v.Monitors.vi_window <> [])
      | None -> probe (seed + 1)
  in
  probe 1

(* Mutation test for the copy-on-reference discipline: forcing every
   job onto it plants a page-source residual dependency by design, so
   the residual monitor must object on EVERY seed — a single silent seed
   means the monitor (or the fault path it watches) has rotted. The same
   seeds forced onto pre-copy must stay clean, pinning that the monitor
   fires because of the strategy and not scenario noise. *)
let test_cor_mutation_caught_on_every_seed () =
  for seed = 1 to 10 do
    let force s = Scenario.force_strategy s (Scenario.of_seed seed) in
    let cor = Scenario.run (force Protocol.Copy_on_reference) in
    (match
       List.find_opt
         (fun v -> v.Monitors.vi_monitor = "residual")
         cor.Scenario.o_violations
     with
    | Some v ->
        Alcotest.(check bool)
          "violation window captured" true (v.Monitors.vi_window <> [])
    | None ->
        Alcotest.failf
          "seed %d: no residual violation under copy-on-reference (replay: %s \
           --strategy cor)"
          seed
          (Scenario.replay_hint cor.Scenario.o_scenario));
    let pre = Scenario.run (force Protocol.Precopy) in
    match pre.Scenario.o_violations with
    | [] -> ()
    | v :: _ ->
        Alcotest.failf "seed %d: pre-copy control tripped [%s] %s" seed
          v.Monitors.vi_monitor v.Monitors.vi_detail
  done

(* {1 Replay hints}

   A [REPLAY:] line is only worth printing if it round-trips: the
   canonical printer and the real cmdliner parser live in {!Replay}
   precisely so they cannot drift, and these tests pin that contract —
   including on a hint harvested from an actual monitor violation. *)

let replay_eq a b =
  a.Replay.r_scenario = b.Replay.r_scenario
  && a.Replay.r_seed = b.Replay.r_seed
  && a.Replay.r_serve = b.Replay.r_serve
  && a.Replay.r_forwarding = b.Replay.r_forwarding
  && a.Replay.r_strategy = b.Replay.r_strategy

let replay_gen =
  QCheck.(
    make ~print:Replay.format
      Gen.(
        let opt g = oneof [ return None; map Option.some g ] in
        map
          (fun (scenario, seed, serve, forwarding, strategy) ->
            Replay.make ?scenario ?seed ~serve ~forwarding ?strategy ())
          (tup5
             (opt (oneofl Scenario.Library.names))
             (opt (int_bound 10_000))
             bool bool
             (opt (oneofl Replay.strategy_tokens)))))

let prop_replay_roundtrip =
  QCheck.Test.make ~name:"parse (format r) = Ok r" ~count:200 replay_gen
    (fun r ->
      match Replay.parse (Replay.format r) with
      | Ok r' -> replay_eq r r'
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

(* Force a real violation (the forwarding ablation trips the residual
   monitor), print its replay hint, and make sure the hint parses back
   to the failing run's exact flags — and that re-running those flags
   reproduces a violation. *)
let test_replay_line_roundtrips_from_violation () =
  let rec probe seed =
    if seed > 40 then Alcotest.fail "no violation in 40 seeds under Forwarding"
    else
      let o = Scenario.run ~rebind:Os_params.Forwarding (Scenario.of_seed seed) in
      if o.Scenario.o_violations = [] then probe (seed + 1)
      else (seed, Scenario.replay_hint ~forwarding:true o.Scenario.o_scenario)
  in
  let seed, line = probe 1 in
  match Replay.parse line with
  | Error e -> Alcotest.failf "replay line %S did not parse: %s" line e
  | Ok r ->
      Alcotest.(check (option int)) "seed" (Some seed) r.Replay.r_seed;
      Alcotest.(check bool) "forwarding" true r.Replay.r_forwarding;
      Alcotest.(check bool) "serve" false r.Replay.r_serve;
      let o' =
        Scenario.run ~rebind:Os_params.Forwarding
          (Scenario.of_seed (Option.get r.Replay.r_seed))
      in
      Alcotest.(check bool) "parsed flags reproduce the violation" true
        (o'.Scenario.o_violations <> [])

(* Every library family: the plain shape at a pinned seed holds the
   invariants, and its replay hint carries --scenario and --seed and
   parses back through the CLI. *)
let test_library_plain_clean_and_hinted () =
  List.iter
    (fun e ->
      let name = Scenario.Library.name e in
      let sc = Scenario.Library.plain e ~seed:5 in
      let o = Scenario.run sc in
      (match o.Scenario.o_violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: [%s] %s (replay: %s)" name v.Monitors.vi_monitor
            v.Monitors.vi_detail (Scenario.replay_hint sc));
      let hint = Scenario.replay_hint sc in
      match Replay.parse hint with
      | Error err -> Alcotest.failf "%s: hint %S: %s" name hint err
      | Ok r ->
          Alcotest.(check (option string))
            "scenario" (Some name) r.Replay.r_scenario;
          Alcotest.(check (option int)) "seed" (Some 5) r.Replay.r_seed)
    Scenario.Library.all

let () =
  Alcotest.run "check"
    [
      ( "heap",
        [
          Alcotest.test_case "pop order is sorted insertion" `Quick
            test_heap_pop_order;
          Alcotest.test_case "pop/grow scrub vacated slots" `Quick
            test_heap_scrub;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cancel never fires, pending exact" `Quick
            test_engine_cancel;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile cache invalidates on record" `Quick
            test_percentile_cache;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "same seed, same run" `Quick
            test_scenario_deterministic;
          Alcotest.test_case "invariants hold on paper config" `Slow
            test_invariants_hold;
          Alcotest.test_case "forwarding ablation caught by residual monitor"
            `Slow test_forwarding_ablation_caught;
          Alcotest.test_case "copy-on-reference mutation caught on every seed"
            `Slow test_cor_mutation_caught_on_every_seed;
        ] );
      ( "replay",
        QCheck_alcotest.to_alcotest prop_replay_roundtrip
        :: [
             Alcotest.test_case "violation hint round-trips through the CLI"
               `Slow test_replay_line_roundtrips_from_violation;
             Alcotest.test_case "library shapes clean and hinted at seed 5"
               `Slow test_library_plain_clean_and_hinted;
           ] );
    ]
