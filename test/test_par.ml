(* The domain pool (Parrun) and the cross-domain determinism contract:
   merged results are byte-identical whatever the worker count, because
   every replica is an independent seeded simulation and results merge
   in job-index order. *)

let many_jobs = max 2 (Parrun.default_jobs ())

(* {1 Pool basics} *)

let test_edges () =
  Alcotest.(check (list int)) "zero jobs" [] (Parrun.run ~jobs:4 []);
  Alcotest.(check (list int)) "one job" [ 7 ] (Parrun.run ~jobs:4 [ (fun () -> 7) ]);
  Alcotest.(check (list int))
    "more workers than jobs" [ 1; 2 ]
    (Parrun.run ~jobs:64 [ (fun () -> 1); (fun () -> 2) ]);
  Alcotest.(check (list int))
    "jobs=1 runs in order" [ 0; 1; 2; 3; 4 ]
    (Parrun.map ~jobs:1 (fun x -> x) [ 0; 1; 2; 3; 4 ])

let test_merge_order () =
  (* Results land at their job's index no matter which domain ran it. *)
  let n = 50 in
  let expect = List.init n (fun i -> i * i) in
  Alcotest.(check (list int))
    "index-ordered merge"
    expect
    (Parrun.map ~jobs:many_jobs (fun i -> i * i) (List.init n Fun.id))

exception Boom of int

let test_exception_propagation () =
  (* All jobs run; the lowest-index failure is the one re-raised, so the
     escaping exception does not depend on -j. *)
  let ran = Array.make 6 false in
  let thunks =
    List.init 6 (fun i () ->
        ran.(i) <- true;
        if i = 2 || i = 4 then raise (Boom i);
        i)
  in
  let observe jobs =
    match Parrun.run ~jobs thunks with
    | _ -> Alcotest.fail "expected an exception"
    | exception Boom i -> i
  in
  Array.fill ran 0 6 false;
  let serial = observe 1 in
  Alcotest.(check bool) "all jobs ran (j1)" true (Array.for_all Fun.id ran);
  Array.fill ran 0 6 false;
  let parallel = observe many_jobs in
  Alcotest.(check bool) "all jobs ran (jN)" true (Array.for_all Fun.id ran);
  Alcotest.(check int) "lowest-index failure, serial" 2 serial;
  Alcotest.(check int) "same failure in parallel" serial parallel

(* {1 Replica determinism across domains}

   Whole-cluster simulations are the real cargo: each job boots its own
   seeded cluster, so per-cluster id counters (processes, transactions,
   address spaces) must restart identically on whichever domain runs the
   replica. Compare fully-rendered summaries, not just headline floats,
   to catch any drift. *)

let exec_summary ~seed () =
  let cl = Cluster.create ~seed ~workstations:5 () in
  match Experiment.remote_exec cl ~prog:"cc68" () with
  | Error e -> "error: " ^ e
  | Ok r ->
      Printf.sprintf "seed=%d host=%s load=%s total=%s events=%d" seed
        r.Experiment.er_host
        (Time.to_string r.Experiment.er_load)
        (Time.to_string r.Experiment.er_total)
        (Engine.events_fired (Cluster.engine cl))

let migrate_summary ~seed () =
  let cl = Cluster.create ~seed ~workstations:4 () in
  match Experiment.migrate_program cl ~prog:"parser" () with
  | Error e -> "error: " ^ e
  | Ok o ->
      Printf.sprintf "seed=%d %s->%s rounds=%d freeze=%s events=%d" seed
        o.Protocol.m_from o.Protocol.m_dest
        (List.length o.Protocol.m_rounds)
        (Time.to_string (Protocol.freeze_span o))
        (Engine.events_fired (Cluster.engine cl))

let test_replica_determinism () =
  let jobs_list =
    Experiment.seeded_jobs ~reps:5 ~base_seed:11 (fun ~seed ->
        exec_summary ~seed ())
    @ Experiment.seeded_jobs ~reps:4 ~base_seed:30 (fun ~seed ->
        migrate_summary ~seed ())
  in
  let serial = Parrun.run ~jobs:1 jobs_list in
  let parallel = Parrun.run ~jobs:many_jobs jobs_list in
  Alcotest.(check (list string)) "j1 = jN, rendered summaries" serial parallel;
  List.iter
    (fun line ->
      Alcotest.(check bool)
        ("replica succeeded: " ^ line)
        false
        (String.length line >= 6 && String.sub line 0 6 = "error:"))
    serial

let test_dirty_rate_jobs () =
  let measure jobs =
    Experiment.dirty_rate_jobs ~base_seed:100 ~prog:"optimizer"
      ~window:(Time.of_sec 1.) ~reps:6 ()
    |> Parrun.run ~jobs
    |> List.map (function Ok kb -> kb | Error e -> Alcotest.fail e)
  in
  let serial = measure 1 in
  Alcotest.(check (list (float 0.0))) "dirty-rate replicas, j1 = jN" serial
    (measure many_jobs);
  Alcotest.(check bool)
    "measured something" true
    (List.for_all (fun kb -> kb > 0.) serial)

(* {1 Work stealing}

   The cost-aware seeding (LPT: sort by descending estimate, deal
   round-robin) and tail-stealing must never leak into results: output
   stays byte-identical for any worker count, with or without a cost
   function, and every job runs exactly once even when the estimates are
   wildly wrong. *)

let test_cost_seeding_identical_merge () =
  let n = 40 in
  (* Heavily skewed simulated costs: a few elephants, many mice — the
     shape LPT seeding exists for. Deliberately lie about some of them
     (the cost function is an {e estimate}) to check scheduling hints
     cannot affect the merge. *)
  let cost i = if i mod 7 = 0 then 1000. +. float_of_int i else 1. in
  let thunks = List.init n (fun i () -> (i * 31) mod 17) in
  let plain = Parrun.run ~jobs:1 thunks in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "cost-seeded j%d = plain j1" jobs)
        plain
        (Parrun.run ~jobs ~cost thunks))
    [ 1; 2; 8 ];
  (* Equal costs exercise the stable-sort path: seed order must reduce
     to submitted order, not scramble ties. *)
  Alcotest.(check (list int))
    "all-equal costs, j8 = j1" plain
    (Parrun.run ~jobs:8 ~cost:(fun _ -> 1.) thunks)

let test_stealing_no_starvation () =
  (* One elephant seeded first onto worker 0; the mice behind it must be
     stolen and completed by the other workers — every job runs exactly
     once, whatever the interleaving. *)
  let n = 64 in
  let ran = Array.make n 0 in
  let mu = Mutex.create () in
  let bump i =
    Mutex.lock mu;
    ran.(i) <- ran.(i) + 1;
    Mutex.unlock mu
  in
  let thunks =
    List.init n (fun i () ->
        bump i;
        (* The elephant spins long enough for the other workers to drain
           their own deques and start stealing. *)
        if i = 0 then begin
          let t0 = Unix.gettimeofday () in
          while Unix.gettimeofday () -. t0 < 0.05 do
            ignore (Sys.opaque_identity i)
          done
        end;
        i)
  in
  let cost i = if i = 0 then 1e9 else 1. in
  let out = Parrun.run ~jobs:4 ~cost thunks in
  Alcotest.(check (list int)) "index-ordered merge" (List.init n Fun.id) out;
  Alcotest.(check bool)
    "every job ran exactly once" true
    (Array.for_all (fun c -> c = 1) ran)

let test_cost_seeded_replicas_identical () =
  (* The real cargo: whole-cluster replicas with a skewed cost estimate
     still render byte-identical summaries for any worker count. *)
  let jobs_list =
    Experiment.seeded_jobs ~reps:6 ~base_seed:50 (fun ~seed ->
        exec_summary ~seed ())
  in
  let cost i = if i mod 2 = 0 then 100. else 1. in
  let serial = Parrun.run ~jobs:1 jobs_list in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "replica summaries, cost-seeded j%d = j1" jobs)
        serial
        (Parrun.run ~jobs ~cost jobs_list))
    [ 2; 8 ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "edge cases" `Quick test_edges;
          Alcotest.test_case "merge order" `Quick test_merge_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
        ] );
      ( "work-stealing",
        [
          Alcotest.test_case "skewed costs, identical merge" `Quick
            test_cost_seeding_identical_merge;
          Alcotest.test_case "no starvation behind an elephant" `Quick
            test_stealing_no_starvation;
          Alcotest.test_case "cost-seeded replicas, j1 = j2 = j8" `Quick
            test_cost_seeded_replicas_identical;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cluster replicas, j1 = jN" `Quick
            test_replica_determinism;
          Alcotest.test_case "dirty-rate job list" `Quick test_dirty_rate_jobs;
        ] );
    ]
