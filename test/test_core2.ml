(* Unit tests for the core library's smaller modules: environments,
   contexts, configuration, protocol records, residual analysis, program
   tables and accounting — complementing the cluster-level integration
   tests in test_core.ml. *)

let sec = Time.of_sec

(* {1 Env} *)

let fs_pid = Ids.pid 100 16
let ds_pid = Ids.pid 101 16

let test_env_make_and_lookup () =
  let env =
    Env.make
      ~name_cache:[ ("printer", Ids.pid 102 16) ]
      ~args:[ "-o"; "out.o" ] ~file_server:fs_pid ~display:ds_pid
      ~origin_host:"ws0" ()
  in
  Alcotest.(check bool) "cache hit" true
    (Env.cached_lookup env "printer" = Some (Ids.pid 102 16));
  Alcotest.(check bool) "cache miss" true (Env.cached_lookup env "nope" = None);
  Alcotest.(check string) "origin" "ws0" env.Env.origin_host;
  Alcotest.(check bool) "no name server by default" true
    (env.Env.name_server = None)

let test_env_bytes_grows_with_content () =
  let small = Env.make ~file_server:fs_pid ~display:ds_pid ~origin_host:"a" () in
  let big =
    Env.make
      ~name_cache:[ ("a", fs_pid); ("b", fs_pid); ("c", fs_pid) ]
      ~args:[ "a-rather-long-argument-string" ] ~file_server:fs_pid
      ~display:ds_pid ~origin_host:"a" ()
  in
  if Env.bytes big <= Env.bytes small then
    Alcotest.fail "environment size must reflect contents"

(* {1 Context} *)

let mini_kernels () =
  let eng = Engine.create () in
  let rng = Rng.create 9 in
  let net = Ethernet.create eng (Rng.split rng) in
  let tracer = Tracer.create eng in
  Tracer.set_enabled tracer false;
  let alloc = Ids.Lh_allocator.create () in
  let mk i name =
    Kernel.create ~engine:eng ~rng:(Rng.split rng) ~tracer
      ~params:Os_params.default ~net ~station:(Addr.of_int i) ~host_name:name
      ~allocator:alloc
      ~memory_bytes:(1024 * 1024)
  in
  (eng, mk 0 "alpha", mk 1 "beta")

let test_directory_locate () =
  let _, ka, kb = mini_kernels () in
  let dir = Directory.of_kernels () in
  Directory.register dir ka;
  Directory.register dir kb;
  Alcotest.(check int) "two kernels" 2 (List.length (Directory.kernels dir));
  let lh = Kernel.create_logical_host kb ~priority:Cpu.Foreground in
  (match Directory.locate dir (Logical_host.id lh) with
  | Some k -> Alcotest.(check string) "on beta" "beta" (Kernel.host_name k)
  | None -> Alcotest.fail "not located");
  Alcotest.(check bool) "current finds it" true
    (Kernel.host_name (Directory.current dir (Logical_host.id lh)) = "beta");
  Alcotest.(check bool) "find_host" true
    (Option.is_some (Directory.find_host dir "alpha"));
  Alcotest.(check bool) "find_host misses" true
    (Directory.find_host dir "gamma" = None)

let test_directory_current_raises_for_unknown () =
  let dir = Directory.of_kernels () in
  match Directory.current dir 424242 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

(* {1 Config} *)

let test_config_env_spans_sum_to_40ms () =
  Alcotest.(check int) "40 ms"
    (Time.to_us (Time.of_ms 40.))
    (Time.to_us (Config.sum_env_spans Config.default))

let test_config_precopy_policy_sane () =
  let c = Config.default in
  Alcotest.(check bool) "improvement in (0,1)" true
    (c.Config.precopy_improvement > 0. && c.Config.precopy_improvement < 1.);
  Alcotest.(check bool) "round cap positive" true (c.Config.precopy_max_rounds > 0);
  Alcotest.(check int) "paper gives up immediately" 0 c.Config.migration_retries

(* {1 Protocol records} *)

let sample_outcome =
  {
    Protocol.m_prog = "tex";
    m_from = "ws1";
    m_dest = "ws2";
    m_strategy = "precopy";
    m_rounds =
      [
        { Protocol.r_bytes = 708 * 1024; r_span = sec 2.1 };
        { Protocol.r_bytes = 127 * 1024; r_span = Time.of_ms 370. };
      ];
    m_final_bytes = 92 * 1024;
    m_freeze_start = sec 10.;
    m_resumed_at = Time.add (sec 10.) (Time.of_ms 310.);
    m_kernel_state = Time.of_ms 32.;
    m_total = sec 2.8;
    m_faultin_bytes = 0;
  }

let test_outcome_accessors () =
  Alcotest.(check int) "freeze span" 310_000
    (Time.to_us (Protocol.freeze_span sample_outcome));
  Alcotest.(check int) "precopied" ((708 + 127) * 1024)
    (Protocol.precopied_bytes sample_outcome)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_outcome_pp () =
  let s = Format.asprintf "%a" Protocol.pp_outcome sample_outcome in
  List.iter
    (fun needle ->
      if not (contains s needle) then Alcotest.failf "missing %S in %S" needle s)
    [ "tex"; "ws1"; "ws2"; "precopy" ]

let test_strategy_names () =
  Alcotest.(check string) "precopy" "precopy" (Protocol.strategy_name Protocol.Precopy);
  Alcotest.(check string) "freeze" "freeze-and-copy"
    (Protocol.strategy_name Protocol.Freeze_and_copy);
  Alcotest.(check string) "vmflush" "vm-flush"
    (Protocol.strategy_name (Protocol.Vm_flush { page_server = fs_pid }))

(* {1 Migration formula} *)

let test_kernel_state_span_formula () =
  let lh = Logical_host.create ~id:1 ~priority:Cpu.Foreground ~home:"x" in
  ignore (Logical_host.new_process lh);
  ignore (Logical_host.new_process lh);
  Logical_host.add_space lh
    (Address_space.create ~code_bytes:1024 ~data_bytes:0 ~active_bytes:1024 ());
  (* 2 processes + 1 space: 14 + 9*3 = 41 ms. *)
  Alcotest.(check int) "formula" 41_000
    (Time.to_us (Migration.kernel_state_span Config.default lh))

(* {1 Progtable} *)

let with_table f =
  let eng, ka, _ = mini_kernels () in
  let tbl = Progtable.create ka in
  f eng ka tbl

let make_program ka tbl =
  let lh = Kernel.create_logical_host ka ~priority:Cpu.Background in
  let spec = Programs.find "make" in
  let space = Programs.make_space spec in
  Logical_host.add_space lh space;
  let model = Dirty_model.create spec.Programs.dirty space in
  let root = Kernel.create_process ka lh in
  Progtable.add tbl ~lh ~spec
    ~env:(Env.make ~file_server:fs_pid ~display:ds_pid ~origin_host:"x" ())
    ~root ~space ~model ~origin:"x"

let test_progtable_add_find_remove () =
  with_table (fun _ ka tbl ->
      let p = make_program ka tbl in
      let id = Logical_host.id p.Progtable.p_lh in
      Alcotest.(check int) "count" 1 (Progtable.count tbl);
      (* Physical equality: records hold closures. *)
      Alcotest.(check bool) "find" true
        (match Progtable.find tbl id with Some q -> q == p | None -> false);
      Progtable.remove tbl p;
      Alcotest.(check bool) "removed" true
        (Option.is_none (Progtable.find tbl id)))

let test_progtable_adopt_moves_home () =
  let eng = Engine.create () in
  ignore eng;
  let _, ka, kb = mini_kernels () in
  let ta = Progtable.create ka and tb = Progtable.create kb in
  let p = make_program ka ta in
  Progtable.remove ta p;
  Progtable.adopt tb p;
  Alcotest.(check bool) "home switched" true (p.Progtable.p_home == tb);
  Alcotest.(check int) "listed at new home" 1 (Progtable.count tb)

let test_progtable_charge_accumulates () =
  with_table (fun _ ka tbl ->
      let p = make_program ka tbl in
      Progtable.charge_cpu p (Time.of_ms 10.);
      Progtable.charge_cpu p (Time.of_ms 5.);
      Alcotest.(check int) "sum" 15_000 (Time.to_us p.Progtable.p_cpu_used))

(* {1 Residual details} *)

let test_residual_lists_name_cache_bindings () =
  let _, ka, kb = mini_kernels () in
  let dir = Directory.of_kernels () in
  Directory.register dir ka;
  Directory.register dir kb;
  let tbl = Progtable.create ka in
  let service_lh = Kernel.create_logical_host kb ~priority:Cpu.Foreground in
  let service_pid = Ids.pid (Logical_host.id service_lh) 16 in
  let lh = Kernel.create_logical_host ka ~priority:Cpu.Background in
  let spec = Programs.find "make" in
  let space = Programs.make_space spec in
  Logical_host.add_space lh space;
  let p =
    Progtable.add tbl ~lh ~spec
      ~env:
        (Env.make
           ~name_cache:[ ("svc", service_pid) ]
           ~file_server:service_pid ~display:service_pid ~origin_host:"alpha" ())
      ~root:(Kernel.create_process ka lh)
      ~space
      ~model:(Dirty_model.create spec.Programs.dirty space)
      ~origin:"alpha"
  in
  let deps = Residual.dependencies dir p in
  (* file-server, display and one cache entry all resolve to beta. *)
  Alcotest.(check int) "three bindings" 3 (List.length deps);
  List.iter
    (fun d -> Alcotest.(check string) "on beta" "beta" d.Residual.d_host)
    deps;
  Alcotest.(check (list string)) "residual hosts (display counted)" [ "beta" ]
    (Residual.residual_hosts dir p);
  Alcotest.(check bool) "depends_on beta" true
    (Residual.depends_on dir p ~host:"beta");
  Alcotest.(check bool) "not on alpha" false
    (Residual.depends_on dir p ~host:"alpha")

let () =
  Alcotest.run "v_core_units"
    [
      ( "env",
        [
          Alcotest.test_case "make/lookup" `Quick test_env_make_and_lookup;
          Alcotest.test_case "bytes grow" `Quick test_env_bytes_grows_with_content;
        ] );
      ( "directory",
        [
          Alcotest.test_case "locate/current/find" `Quick test_directory_locate;
          Alcotest.test_case "unknown raises" `Quick
            test_directory_current_raises_for_unknown;
        ] );
      ( "config",
        [
          Alcotest.test_case "40ms env spans" `Quick
            test_config_env_spans_sum_to_40ms;
          Alcotest.test_case "precopy policy sane" `Quick
            test_config_precopy_policy_sane;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "outcome accessors" `Quick test_outcome_accessors;
          Alcotest.test_case "outcome pp" `Quick test_outcome_pp;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
      ( "migration-formula",
        [ Alcotest.test_case "kernel state span" `Quick test_kernel_state_span_formula ] );
      ( "progtable",
        [
          Alcotest.test_case "add/find/remove" `Quick test_progtable_add_find_remove;
          Alcotest.test_case "adopt" `Quick test_progtable_adopt_moves_home;
          Alcotest.test_case "charge" `Quick test_progtable_charge_accumulates;
        ] );
      ( "residual",
        [
          Alcotest.test_case "name-cache bindings listed" `Quick
            test_residual_lists_name_cache_bindings;
        ] );
    ]
