#!/bin/sh
# Profile the simulator hot paths on a box with no profiler.
#
# The usual tools are unavailable here: no perf, no valgrind/callgrind,
# no gdb, and OCaml 5 dropped gprof support ("Profiling with gprof is
# only supported up to OCaml 4.08.0"), so ocamlopt -p is out too. What
# works everywhere:
#
#   1. `bench layers`  — wall-clock ns/event per stack layer (raw engine
#      dispatch, effect/suspension machinery, CPU slice loop, kernel IPC
#      ping loop). Attribute a regression to a layer before reading code.
#   2. `bench alloc`   — minor words allocated per event on each fast
#      path. A fast path that starts allocating shows up here long
#      before wall-clock noise would convict it.
#   3. `bench engine-core` — raw dispatch throughput, burst and
#      steady-state shapes.
#   4. OCAMLRUNPARAM=v=0x400 — GC stats on exit (minor/major collections,
#      words promoted). Compare before/after a change.
#
# Wall-clock on this class of machine is noisy (±20-30% run to run on
# sub-second cells); run each measurement 3+ times and compare minima.

set -e
cd "$(dirname "$0")/.."

dune build bench/main.exe 2>/dev/null

echo "=== per-layer cost (run 3x, compare minima) ==="
for i in 1 2 3; do
  ./_build/default/bench/main.exe layers | grep ns/event
  echo "---"
done

echo
echo "=== allocation per event ==="
./_build/default/bench/main.exe alloc | grep words/event

echo
echo "=== raw dispatch throughput ==="
./_build/default/bench/main.exe engine-core | grep events/s

echo
echo "=== content-addressed transfer (dedup on vs off, byte counts) ==="
# Virtual-time/byte-count cell, so the numbers are exact, not noisy:
# watch the wire-byte reduction and the cached return-migration cost.
./_build/default/bench/main.exe dedup -j 1 | grep -E "bytes on wire|return"

echo
echo "=== GC totals for the pinned --quick profile ==="
OCAMLRUNPARAM=v=0x400 ./_build/default/bench/main.exe --quick -j 1 \
  >/dev/null 2>/tmp/vsim_gc_stats.$$ || true
grep -E "minor_collections|major_collections|minor_words|promoted" \
  /tmp/vsim_gc_stats.$$ || cat /tmp/vsim_gc_stats.$$
rm -f /tmp/vsim_gc_stats.$$
