examples/quickstart.ml: Cluster Display_server Format List Printf Remote_exec Time Tracer
