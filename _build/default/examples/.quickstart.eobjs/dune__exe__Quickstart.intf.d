examples/quickstart.mli:
