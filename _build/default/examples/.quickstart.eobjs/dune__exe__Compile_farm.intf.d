examples/compile_farm.mli:
