examples/parallel_sim.mli:
