examples/residual_deps.ml: Cluster Engine Env File_server Ids Kernel Message Printf Proc Program_manager Programs Progtable Protocol Remote_exec Residual String Time
