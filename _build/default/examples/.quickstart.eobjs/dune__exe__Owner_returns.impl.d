examples/owner_returns.ml: Cluster Display_server Engine Ids Kernel List Message Printf Proc Protocol Remote_exec Time
