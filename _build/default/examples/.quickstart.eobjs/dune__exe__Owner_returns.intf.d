examples/owner_returns.mli:
