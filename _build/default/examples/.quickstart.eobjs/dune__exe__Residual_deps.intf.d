examples/residual_deps.mli:
