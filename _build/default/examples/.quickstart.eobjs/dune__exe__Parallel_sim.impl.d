examples/parallel_sim.ml: Array Cluster Experiment Ivar List Printf Proc Remote_exec Time
