examples/compile_farm.ml: Cluster Cpu Engine Kernel List Printf Proc Remote_exec Stats Time
