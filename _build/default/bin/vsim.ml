(* vsim: command-line driver for the simulated V cluster.

   Subcommands mirror the user-visible facilities of the paper:

     vsim exec PROG [--at HOST | --local]   "prog args @ machine"
     vsim migrate PROG [--strategy S]       migrateprog
     vsim usage [--minutes M]               the pool-of-processors scenario
     vsim programs                          the program catalogue
*)

let sec = Time.of_sec

(* {1 Common options} *)

let seed =
  let doc = "Random seed (runs are deterministic per seed)." in
  Cmdliner.Arg.(value & opt int 1985 & info [ "seed" ] ~docv:"N" ~doc)

let workstations =
  let doc = "Number of workstations in the cluster." in
  Cmdliner.Arg.(value & opt int 6 & info [ "workstations"; "w" ] ~docv:"N" ~doc)

let trace =
  let doc = "Dump the kernel/program-manager trace afterwards." in
  Cmdliner.Arg.(value & flag & info [ "trace" ] ~doc)

let prog_arg =
  let doc =
    "Program to run; one of the paper's Table 4-1 programs (see $(b,vsim \
     programs))."
  in
  Cmdliner.Arg.(
    required & pos 0 (some string) None & info [] ~docv:"PROG" ~doc)

let make_cluster ~seed ~workstations ~trace =
  Cluster.create ~seed ~workstations ~trace ()

let dump_trace cl =
  Format.printf "@.trace:@.";
  Tracer.dump Format.std_formatter (Cluster.tracer cl)

(* {1 exec} *)

let exec_cmd seed workstations trace prog at local =
  let cl = make_cluster ~seed ~workstations ~trace in
  let cfg = Cluster.cfg cl in
  let origin = Cluster.workstation cl 0 in
  let env = Cluster.env_for cl origin in
  let target =
    if local then Remote_exec.Local
    else
      match at with
      | Some host -> Remote_exec.Named host
      | None -> Remote_exec.Any
  in
  let failed = ref false in
  ignore
    (Cluster.user cl ~ws:0 ~name:"shell" (fun k self ->
         match Remote_exec.exec k cfg ~self ~env ~prog ~target with
         | Error e ->
             Printf.printf "exec failed: %s\n" e;
             failed := true
         | Ok h -> (
             let t = h.Remote_exec.h_timings in
             Printf.printf "%s running on %s\n" prog h.Remote_exec.h_host;
             (match t.Remote_exec.t_select with
             | Some s -> Printf.printf "  selection : %s\n" (Time.to_string s)
             | None -> ());
             Printf.printf "  env setup : %s\n"
               (Time.to_string t.Remote_exec.t_setup);
             Printf.printf "  image load: %s\n"
               (Time.to_string t.Remote_exec.t_load);
             match Remote_exec.wait k ~self h with
             | Ok (wall, cpu) ->
                 Printf.printf "completed: wall %s, cpu %s\n"
                   (Time.to_string wall) (Time.to_string cpu)
             | Error e ->
                 Printf.printf "wait failed: %s\n" e;
                 failed := true)));
  Cluster.run cl ~until:(sec 300.);
  Printf.printf "\n%s's display:\n" (Kernel.host_name origin.Cluster.ws_kernel);
  List.iter
    (fun l -> Printf.printf "  | %s\n" l)
    (Display_server.output origin.Cluster.ws_display);
  if trace then dump_trace cl;
  if !failed then 1 else 0

(* {1 migrate} *)

let strategy_conv =
  let parse = function
    | "precopy" -> Ok `Precopy
    | "freeze" -> Ok `Freeze
    | "vmflush" -> Ok `Vmflush
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with `Precopy -> "precopy" | `Freeze -> "freeze" | `Vmflush -> "vmflush")
  in
  Cmdliner.Arg.conv (parse, print)

let migrate_cmd seed workstations trace prog strategy run_for =
  let cl = make_cluster ~seed ~workstations ~trace in
  let strategy =
    match strategy with
    | `Precopy -> Protocol.Precopy
    | `Freeze -> Protocol.Freeze_and_copy
    | `Vmflush ->
        Protocol.Vm_flush { page_server = File_server.pid (Cluster.file_server cl) }
  in
  let code = ref 0 in
  (match
     Experiment.migrate_program cl ~strategy ~run_for:(Time.of_sec run_for)
       ~prog ()
   with
  | Error e ->
      Printf.printf "migration failed: %s\n" e;
      code := 1
  | Ok o ->
      Format.printf "%a@." Protocol.pp_outcome o;
      List.iteri
        (fun i r ->
          Printf.printf "  round %d: %6d KB in %s\n" (i + 1)
            (r.Protocol.r_bytes / 1024)
            (Time.to_string r.Protocol.r_span))
        o.Protocol.m_rounds;
      Printf.printf "  frozen residue: %d KB; program stopped for %s\n"
        (o.Protocol.m_final_bytes / 1024)
        (Time.to_string (Protocol.freeze_span o)));
  if trace then dump_trace cl;
  !code

(* {1 usage} *)

let usage_cmd seed workstations minutes rate =
  let cl = make_cluster ~seed ~workstations ~trace:false in
  let stats =
    Experiment.usage cl
      {
        Experiment.default_usage_params with
        Experiment.u_horizon = sec (60. *. minutes);
        u_job_rate_per_sec = rate;
      }
  in
  Format.printf "%a@." Experiment.pp_usage stats;
  0

(* {1 programs} *)

let programs_cmd () =
  Printf.printf "%-16s %9s %8s %9s  %s\n" "name" "image KB" "cpu s"
    "active KB" "dirty model (fitted to Table 4-1)";
  List.iter
    (fun s ->
      Printf.printf "%-16s %9d %8.0f %9d  %s\n" s.Programs.prog_name
        (File_server.image_file_bytes s.Programs.image / 1024)
        s.Programs.cpu_seconds
        (s.Programs.image.File_server.active_bytes / 1024)
        (Format.asprintf "%a" Dirty_model.pp_params s.Programs.dirty))
    Programs.all;
  0

(* {1 Command wiring} *)

open Cmdliner

let exec_t =
  let at =
    Arg.(
      value
      & opt (some string) None
      & info [ "at" ] ~docv:"HOST" ~doc:"Run on the named workstation.")
  in
  let local =
    Arg.(value & flag & info [ "local" ] ~doc:"Run on the invoking workstation.")
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Run a program, by default on any idle workstation (@ *).")
    Term.(const exec_cmd $ seed $ workstations $ trace $ prog_arg $ at $ local)

let migrate_t =
  let strategy =
    Arg.(
      value
      & opt strategy_conv `Precopy
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Migration strategy: precopy, freeze, or vmflush.")
  in
  let run_for =
    Arg.(
      value & opt float 3.0
      & info [ "run-for" ] ~docv:"SEC"
          ~doc:"Seconds the program runs before migrateprog.")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Run a program remotely, then preempt it with migrateprog.")
    Term.(
      const migrate_cmd $ seed $ workstations $ trace $ prog_arg $ strategy
      $ run_for)

let usage_t =
  let minutes =
    Arg.(
      value & opt float 10.
      & info [ "minutes" ] ~docv:"M" ~doc:"Simulated minutes.")
  in
  let rate =
    Arg.(
      value & opt float 0.1
      & info [ "rate" ] ~docv:"R" ~doc:"Job submissions per second.")
  in
  Cmd.v
    (Cmd.info "usage"
       ~doc:"Pool-of-processors scenario: owners, guests, preemptions.")
    Term.(const usage_cmd $ seed $ workstations $ minutes $ rate)

let programs_t =
  Cmd.v
    (Cmd.info "programs" ~doc:"List the paper's programs and their models.")
    Term.(const programs_cmd $ const ())

let () =
  let info =
    Cmd.info "vsim" ~version:"1.0"
      ~doc:
        "Simulated V-System cluster: preemptable remote execution and \
         migration (SOSP 1985 reproduction)."
  in
  exit (Cmd.eval' (Cmd.group info [ exec_t; migrate_t; usage_t; programs_t ]))
