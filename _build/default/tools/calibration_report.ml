let () =
  List.iter (fun (name, t) ->
    let p = Calibrate.fit t in
    let m = Calibrate.predict p in
    Printf.printf "%-16s target %6.1f %6.1f %6.1f  model %6.1f %6.1f %6.1f  rms %5.2f  (%s)\n"
      name t.Calibrate.u02 t.Calibrate.u1 t.Calibrate.u3
      m.Calibrate.u02 m.Calibrate.u1 m.Calibrate.u3
      (Calibrate.residual p t)
      (Format.asprintf "%a" Dirty_model.pp_params p))
    Programs.table_4_1
