lib/services/display_server.ml: Cpu Delivery Format Ids Kernel List Message String Vproc
