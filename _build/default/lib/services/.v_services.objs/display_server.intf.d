lib/services/display_server.mli: Ids Kernel Message
