lib/services/file_server.mli: Ids Kernel Message
