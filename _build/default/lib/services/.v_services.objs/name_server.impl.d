lib/services/name_server.ml: Cpu Delivery Format Hashtbl Ids Kernel Message Vproc
