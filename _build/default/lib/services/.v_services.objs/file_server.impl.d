lib/services/file_server.ml: Cpu Delivery Format Hashtbl Ids Kernel Message Option Proc Stdlib Time Tracer Vproc
