lib/services/name_server.mli: Ids Kernel Message
