(** Display server.

    Programs never touch the frame buffer: "programs perform all terminal
    output via a display server that remains co-resident with the frame
    buffer it manages" (Section 2.1). That indirection is what lets a
    program run — and keep printing — anywhere in the cluster, and it is
    why the display server itself can never migrate. *)

type t

val create : Kernel.t -> t
(** Start the display server on a workstation; there is one per display. *)

val pid : t -> Ids.pid

val output : t -> string list
(** Everything written so far, oldest first — the simulated screen. *)

val line_count : t -> int

(** {1 Protocol} *)

type Message.body +=
  | Ds_write of string
  | Ds_clear
  | Ds_ok

module Client : sig
  val write :
    Kernel.t -> self:Ids.pid -> server:Ids.pid -> string ->
    (unit, string) result
end
