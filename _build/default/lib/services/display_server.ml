type Message.body += Ds_write of string | Ds_clear | Ds_ok

type t = {
  kernel : Kernel.t;
  mutable server_pid : Ids.pid;
  mutable rev_lines : string list;
}

let pid t = t.server_pid
let output t = List.rev t.rev_lines
let line_count t = List.length t.rev_lines

let serve t (d : Delivery.t) =
  let k = t.kernel in
  match d.Delivery.msg.Message.body with
  | Ds_write line ->
      t.rev_lines <- line :: t.rev_lines;
      Kernel.reply k d (Message.make Ds_ok)
  | Ds_clear ->
      t.rev_lines <- [];
      Kernel.reply k d (Message.make Ds_ok)
  | _ -> Kernel.reply k d (Message.make Ds_ok)

let create kernel =
  let lh = Kernel.create_logical_host kernel ~priority:Cpu.Foreground in
  let t = { kernel; server_pid = Ids.pid 0 0; rev_lines = [] } in
  let vp =
    Kernel.spawn_process kernel lh
      ~name:(Kernel.host_name kernel ^ ":display")
      (fun vp ->
        let rec loop () =
          serve t (Kernel.receive kernel vp);
          loop ()
        in
        loop ())
  in
  t.server_pid <- Vproc.pid vp;
  t

module Client = struct
  let write k ~self ~server line =
    match
      Kernel.send k ~src:self ~dst:server
        (Message.make ~bytes:(Message.short_bytes + String.length line)
           (Ds_write line))
    with
    | Ok _ -> Ok ()
    | Error e -> Error (Format.asprintf "%a" Kernel.pp_send_error e)
end
