type Message.body +=
  | Ns_register of { name : string; who : Ids.pid }
  | Ns_lookup of { name : string }
  | Ns_binding of { name : string; who : Ids.pid }
  | Ns_unknown of string
  | Ns_ok

type t = {
  kernel : Kernel.t;
  mutable server_pid : Ids.pid;
  table : (string, Ids.pid) Hashtbl.t;
}

let pid t = t.server_pid
let register_direct t ~name who = Hashtbl.replace t.table name who
let lookup_direct t ~name = Hashtbl.find_opt t.table name

let serve t (d : Delivery.t) =
  let k = t.kernel in
  match d.Delivery.msg.Message.body with
  | Ns_register { name; who } ->
      Hashtbl.replace t.table name who;
      Kernel.reply k d (Message.make Ns_ok)
  | Ns_lookup { name } -> (
      match Hashtbl.find_opt t.table name with
      | Some who -> Kernel.reply k d (Message.make (Ns_binding { name; who }))
      | None -> Kernel.reply k d (Message.make (Ns_unknown name)))
  | _ -> Kernel.reply k d (Message.make (Ns_unknown "bad request"))

let create kernel ~name =
  let lh = Kernel.create_logical_host kernel ~priority:Cpu.Foreground in
  let t = { kernel; server_pid = Ids.pid 0 0; table = Hashtbl.create 32 } in
  let vp =
    Kernel.spawn_process kernel lh ~name (fun vp ->
        let rec loop () =
          serve t (Kernel.receive kernel vp);
          loop ()
        in
        loop ())
  in
  t.server_pid <- Vproc.pid vp;
  t

module Client = struct
  let call k ~self ~server body =
    match Kernel.send k ~src:self ~dst:server (Message.make body) with
    | Ok m -> Ok m.Message.body
    | Error e -> Error (Format.asprintf "%a" Kernel.pp_send_error e)

  let register k ~self ~server ~name =
    match call k ~self ~server (Ns_register { name; who = self }) with
    | Ok Ns_ok -> Ok ()
    | Ok _ -> Error "register: unexpected reply"
    | Error e -> Error e

  let lookup k ~self ~server ~name =
    match call k ~self ~server (Ns_lookup { name }) with
    | Ok (Ns_binding { who; _ }) -> Ok who
    | Ok (Ns_unknown n) -> Error ("unknown name: " ^ n)
    | Ok _ -> Error "lookup: unexpected reply"
    | Error e -> Error e
end
