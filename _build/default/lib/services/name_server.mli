(** Global name service.

    V resolves symbolic names through global servers plus a per-program
    name cache carried in the program's own address space — which is
    exactly why name bindings survive migration (Section 6: "place the
    state of a program's execution environment either in its address
    space or in global servers"). This server is the global half; the
    per-program cache is part of the program environment in [V_core]. *)

type t

val create : Kernel.t -> name:string -> t
(** Start a name server process on the given workstation. *)

val pid : t -> Ids.pid

val register_direct : t -> name:string -> Ids.pid -> unit
(** Server-side registration, for wiring up a cluster before it runs. *)

val lookup_direct : t -> name:string -> Ids.pid option

(** {1 Protocol} *)

type Message.body +=
  | Ns_register of { name : string; who : Ids.pid }
  | Ns_lookup of { name : string }
  | Ns_binding of { name : string; who : Ids.pid }
  | Ns_unknown of string
  | Ns_ok

module Client : sig
  val register :
    Kernel.t -> self:Ids.pid -> server:Ids.pid -> name:string ->
    (unit, string) result

  val lookup :
    Kernel.t -> self:Ids.pid -> server:Ids.pid -> name:string ->
    (Ids.pid, string) result
end
