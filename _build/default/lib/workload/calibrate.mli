(** Fitting dirty-model parameters to measured windows.

    Table 4-1 reports, per program, the kilobytes of unique pages dirtied
    in windows of 0.2, 1 and 3 seconds. Three observations, three
    parameters: the fit is closed-form under the assumption that the hot
    set saturates within one second (true of every row in the table), and
    the coordinate refinement pass tightens it when it is not. *)

type triple = { u02 : float; u1 : float; u3 : float }
(** Measured unique-dirty KB at 0.2 s, 1 s and 3 s. *)

val fit : triple -> Dirty_model.params
(** Parameters whose {!Dirty_model.expected_unique_kb} best reproduces
    the triple. *)

val residual : Dirty_model.params -> triple -> float
(** Root-mean-square error of the model against the triple, in KB —
    reported alongside Table 4-1 so the calibration quality is visible. *)

val predict : Dirty_model.params -> triple
(** The model's own values at the three windows. *)
