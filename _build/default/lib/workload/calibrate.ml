type triple = { u02 : float; u1 : float; u3 : float }

let predict (p : Dirty_model.params) =
  {
    u02 = Dirty_model.expected_unique_kb p 0.2;
    u1 = Dirty_model.expected_unique_kb p 1.0;
    u3 = Dirty_model.expected_unique_kb p 3.0;
  }

let residual p t =
  let m = predict p in
  let sq x = x *. x in
  sqrt ((sq (m.u02 -. t.u02) +. sq (m.u1 -. t.u1) +. sq (m.u3 -. t.u3)) /. 3.)

(* Closed-form seed: the cold rate is the 1s->3s slope, the hot size is
   what the 1s window holds beyond cold traffic (assuming the hot set has
   saturated by then), and the hot rate is solved from the 0.2s window. *)
let seed (t : triple) : Dirty_model.params =
  let cold = Float.max 0. ((t.u3 -. t.u1) /. 2.) in
  let hot = Float.max 0.1 (t.u1 -. cold) in
  let covered = Float.max 0.01 (t.u02 -. (0.2 *. cold)) in
  let frac = Float.min 0.95 (covered /. hot) in
  let rate = -.(hot /. 0.2) *. log (1. -. frac) in
  { hot_kb = hot; hot_write_kb_per_sec = rate; cold_kb_per_sec = cold }

(* Coordinate-descent refinement around the seed. *)
let fit t =
  let best = ref (seed t) in
  let best_err = ref (residual !best t) in
  let try_candidate p =
    let e = residual p t in
    if e < !best_err then begin
      best := p;
      best_err := e
    end
  in
  let steps = [ 0.8; 0.9; 0.95; 1.05; 1.1; 1.25 ] in
  for _ = 1 to 40 do
    let b = !best in
    List.iter
      (fun s -> try_candidate { b with Dirty_model.hot_kb = b.Dirty_model.hot_kb *. s })
      steps;
    let b = !best in
    List.iter
      (fun s ->
        try_candidate
          { b with Dirty_model.hot_write_kb_per_sec = b.Dirty_model.hot_write_kb_per_sec *. s })
      steps;
    let b = !best in
    List.iter
      (fun s ->
        try_candidate
          { b with Dirty_model.cold_kb_per_sec = b.Dirty_model.cold_kb_per_sec *. s })
      steps
  done;
  !best
