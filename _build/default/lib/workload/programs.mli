(** The paper's measured programs.

    Table 4-1 measures dirty-page generation for eight programs: [make],
    the [cc68] C compiler driver and its five subprograms (preprocessor,
    parser, optimizer, assembler, linking loader — footnote 6), and the
    [tex] formatter. We reconstruct each as a synthetic program: an image
    (code / initialized data / active data sizes plausible for the 68010
    SUN), a CPU demand, an I/O profile against the file server, and a
    dirty model {e fitted to that program's row of Table 4-1}. *)

type io_profile = {
  reads_per_cpu_sec : float;  (** File-read requests per CPU second. *)
  read_bytes : int;
  writes_per_cpu_sec : float;
  write_bytes : int;
}

type spec = {
  prog_name : string;
  image : File_server.image;
  cpu_seconds : float;  (** Total CPU demand of one run. *)
  dirty : Dirty_model.params;
  io : io_profile;
}

val table_4_1 : (string * Calibrate.triple) list
(** The paper's measured dirty-generation rates, KB per 0.2/1/3 s window,
    in the paper's row order. *)

val all : spec list
(** One spec per Table 4-1 row, in order. *)

val find : string -> spec
(** @raise Not_found for names not in the table. *)

val names : string list

val publish_images : File_server.t -> unit
(** Register every program's binary with a file server. *)

val make_space : spec -> Address_space.t
(** A fresh address space sized for the program. *)
