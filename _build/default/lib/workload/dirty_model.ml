type params = {
  hot_kb : float;
  hot_write_kb_per_sec : float;
  cold_kb_per_sec : float;
}

let pp_params ppf p =
  Format.fprintf ppf "hot=%.1fKB@%.1fKB/s cold=%.1fKB/s" p.hot_kb
    p.hot_write_kb_per_sec p.cold_kb_per_sec

let expected_unique_kb p seconds =
  let hot =
    if p.hot_kb <= 0. then 0.
    else p.hot_kb *. (1. -. exp (-.p.hot_write_kb_per_sec *. seconds /. p.hot_kb))
  in
  hot +. (p.cold_kb_per_sec *. seconds)

type t = {
  p : params;
  space : Address_space.t;
  hot_pages : int;
  cold_pages : int;
  mutable cold_next : int; (* next cold page offset, cycling *)
  mutable hot_carry_kb : float;
  mutable cold_carry_kb : float;
}

let params t = t.p

let create p space =
  let active = Address_space.segment_pages space Address_space.Active_data in
  if active < 1 then
    invalid_arg "Dirty_model.create: empty active segment";
  let page_kb = float_of_int (Address_space.page_bytes space) /. 1024. in
  let hot_pages =
    Stdlib.min active
      (Stdlib.max 1 (int_of_float (Float.round (p.hot_kb /. page_kb))))
  in
  {
    p;
    space;
    hot_pages;
    cold_pages = Stdlib.max 1 (active - hot_pages);
    cold_next = 0;
    hot_carry_kb = 0.;
    cold_carry_kb = 0.;
  }

let on_cpu t rng span =
  let seconds = Time.to_sec span in
  let page_kb = float_of_int (Address_space.page_bytes t.space) /. 1024. in
  (* Hot rewrites: each write lands uniformly in the hot window. *)
  t.hot_carry_kb <- t.hot_carry_kb +. (t.p.hot_write_kb_per_sec *. seconds);
  while t.hot_carry_kb >= page_kb do
    t.hot_carry_kb <- t.hot_carry_kb -. page_kb;
    Address_space.touch_random_in t.space rng Address_space.Active_data ~first:0
      ~count:t.hot_pages
  done;
  (* Cold first-touches: sequential through the rest of the segment. *)
  t.cold_carry_kb <- t.cold_carry_kb +. (t.p.cold_kb_per_sec *. seconds);
  while t.cold_carry_kb >= page_kb do
    t.cold_carry_kb <- t.cold_carry_kb -. page_kb;
    let offset = t.hot_pages + (t.cold_next mod t.cold_pages) in
    let active = Address_space.segment_pages t.space Address_space.Active_data in
    if offset < active then
      Address_space.touch_random_in t.space rng Address_space.Active_data
        ~first:offset ~count:1;
    t.cold_next <- t.cold_next + 1
  done
