lib/workload/programs.mli: Address_space Calibrate Dirty_model File_server
