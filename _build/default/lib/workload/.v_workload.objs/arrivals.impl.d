lib/workload/arrivals.ml: Engine Rng Time
