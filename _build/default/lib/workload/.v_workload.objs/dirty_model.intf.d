lib/workload/dirty_model.mli: Address_space Format Rng Time
