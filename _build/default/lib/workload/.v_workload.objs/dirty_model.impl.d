lib/workload/dirty_model.ml: Address_space Float Format Stdlib Time
