lib/workload/calibrate.mli: Dirty_model
