lib/workload/programs.ml: Address_space Calibrate Dirty_model File_server List String
