lib/workload/calibrate.ml: Dirty_model Float List
