lib/workload/arrivals.mli: Engine Rng Time
