type io_profile = {
  reads_per_cpu_sec : float;
  read_bytes : int;
  writes_per_cpu_sec : float;
  write_bytes : int;
}

type spec = {
  prog_name : string;
  image : File_server.image;
  cpu_seconds : float;
  dirty : Dirty_model.params;
  io : io_profile;
}

(* Table 4-1 of the paper: unique KB dirtied in 0.2 / 1 / 3 second
   windows. *)
let table_4_1 =
  [
    ("make", { Calibrate.u02 = 0.8; u1 = 1.8; u3 = 4.2 });
    ("cc68", { Calibrate.u02 = 0.6; u1 = 2.2; u3 = 6.2 });
    ("preprocessor", { Calibrate.u02 = 25.0; u1 = 40.2; u3 = 59.6 });
    ("parser", { Calibrate.u02 = 50.0; u1 = 76.8; u3 = 109.4 });
    ("optimizer", { Calibrate.u02 = 19.8; u1 = 32.2; u3 = 41.0 });
    ("assembler", { Calibrate.u02 = 21.6; u1 = 33.4; u3 = 48.4 });
    ("linking loader", { Calibrate.u02 = 25.0; u1 = 39.2; u3 = 37.8 });
    ("tex", { Calibrate.u02 = 68.6; u1 = 111.6; u3 = 142.8 });
  ]

let kb n = n * 1024

(* Image geometry, CPU demand and I/O intensity: plausible values for
   10 MHz 68010 binaries; only the dirty-model columns are calibrated to
   the paper. *)
let shapes =
  [
    (* name, code KB, data KB, active KB, cpu s, reads/s, writes/s *)
    ("make", 48, 12, 64, 8.0, 8.0, 0.5);
    ("cc68", 36, 8, 48, 6.0, 4.0, 1.0);
    ("preprocessor", 52, 16, 192, 6.0, 6.0, 2.0);
    ("parser", 120, 32, 320, 12.0, 2.0, 2.0);
    ("optimizer", 96, 24, 192, 10.0, 1.0, 1.0);
    ("assembler", 72, 20, 160, 8.0, 2.0, 3.0);
    ("linking loader", 88, 28, 256, 6.0, 6.0, 3.0);
    ("tex", 196, 64, 448, 30.0, 3.0, 1.5);
  ]

let all =
  List.map2
    (fun (name, code, data, active, cpu_s, rps, wps) (tname, triple) ->
      assert (String.equal name tname);
      {
        prog_name = name;
        image =
          {
            File_server.code_bytes = kb code;
            data_bytes = kb data;
            active_bytes = kb active;
          };
        cpu_seconds = cpu_s;
        dirty = Calibrate.fit triple;
        io =
          {
            reads_per_cpu_sec = rps;
            read_bytes = 4096;
            writes_per_cpu_sec = wps;
            write_bytes = 2048;
          };
      })
    shapes table_4_1

let names = List.map (fun s -> s.prog_name) all

let find name =
  match List.find_opt (fun s -> String.equal s.prog_name name) all with
  | Some s -> s
  | None -> raise Not_found

let publish_images fs =
  List.iter (fun s -> File_server.add_image fs ~name:s.prog_name s.image) all

let make_space spec =
  Address_space.create ~code_bytes:spec.image.File_server.code_bytes
    ~data_bytes:spec.image.File_server.data_bytes
    ~active_bytes:spec.image.File_server.active_bytes ()
