(** Job arrival and owner-activity processes.

    The usage experiment (Section 4.3) needs two stochastic drivers: a
    Poisson stream of batch jobs submitted to the cluster, and per-
    workstation owner sessions — alternating active (editing) and idle
    periods — that determine which workstations are candidates for guest
    work and when an owner "returns", triggering preemption. *)

val exponential_span : Rng.t -> mean:Time.span -> Time.span
(** An exponentially distributed duration, at least 1 us. *)

val poisson_stream :
  Engine.t -> Rng.t -> rate_per_sec:float -> until:Time.t ->
  (int -> unit) -> unit
(** [poisson_stream e rng ~rate_per_sec ~until f] schedules [f k] at the
    [k]-th arrival (k from 0) of a Poisson process, stopping at the
    horizon. Events are scheduled lazily, one ahead. *)

(** Owner keyboard sessions: an on/off renewal process. *)
module Owner : sig
  type params = {
    active_mean : Time.span;  (** Mean editing-burst length. *)
    idle_mean : Time.span;  (** Mean absence length. *)
    active_cpu_fraction : float;
        (** CPU demanded while active (editing is light: ~0.1). *)
  }

  val default : params
  (** Means chosen so workstations are over 80% idle, matching the
      paper's observation for peak hours. *)

  type t

  val start : Engine.t -> Rng.t -> params -> on_transition:(bool -> unit) -> t
  (** Begin the renewal process (initially idle); [on_transition active]
      fires at each state change. *)

  val active : t -> bool
  val stop : t -> unit
end
