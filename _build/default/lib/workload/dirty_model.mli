(** Mechanistic page-dirtying model.

    Pre-copy's effectiveness is decided entirely by how programs dirty
    pages while a copy is in flight, so the workload model matters. We
    use a two-population model:

    - a {e hot} working set rewritten continuously (loop variables,
      stacks, accumulators) — re-dirtying the same pages, so the unique
      dirty count saturates; and
    - a {e cold} stream of pages written once each (output buffers, heap
      growth) — contributing linearly.

    Unique pages dirtied from a clean state over a window [t] is then

    [U(t) = hot * (1 - exp(-rate * t / hot)) + cold_rate * t]

    which fits the three-window measurements of the paper's Table 4-1
    closely for all eight programs (see {!Calibrate}). Dirtying is driven
    by CPU time actually scheduled, so contention and freezing slow it
    exactly as they slow the program. *)

type params = {
  hot_kb : float;  (** Hot working-set size. *)
  hot_write_kb_per_sec : float;  (** Rewrite traffic into the hot set. *)
  cold_kb_per_sec : float;  (** First-touch traffic. *)
}

val pp_params : Format.formatter -> params -> unit

val expected_unique_kb : params -> float -> float
(** [expected_unique_kb p seconds]: the closed-form [U(t)] above — the
    test oracle for the stochastic model and the generator of Table 4-1
    predictions. *)

type t

val create : params -> Address_space.t -> t
(** Attach the model to an address space: hot pages occupy the front of
    the active segment, the cold stream cycles through the rest. The
    active segment must be at least one page. *)

val on_cpu : t -> Rng.t -> Time.span -> unit
(** Apply the dirtying implied by the given amount of {e scheduled} CPU
    time — designed to be called from {!Cpu.compute_sliced}'s [on_slice]
    hook. *)

val params : t -> params
