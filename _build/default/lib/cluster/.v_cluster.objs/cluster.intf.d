lib/cluster/cluster.mli: Config Context Display_server Engine Env Ethernet File_server Ids Kernel Name_server Packet Program_manager Rng Time Tracer Vproc
