lib/cluster/experiment.mli: Arrivals Cluster Config Format Ids Kernel Protocol Remote_exec Time
