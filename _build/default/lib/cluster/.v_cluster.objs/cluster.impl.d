lib/cluster/cluster.ml: Addr Array Config Context Cpu Display_server Engine Env Ethernet File_server Ids Kernel List Name_server Packet Printf Program_manager Programs Rng String Time Tracer Vproc
