(** Timestamped event traces.

    Subsystems emit structured trace entries (IPC packets, migration phase
    transitions, scheduler decisions); tests assert on them and examples
    print them — the quickstart's rendering of the paper's Figure 2-1
    communication paths is a filtered trace. *)

type entry = {
  at : Time.t;  (** Virtual instant of the event. *)
  category : string;  (** Subsystem tag, e.g. ["ipc"], ["migrate"]. *)
  message : string;  (** Human-readable description. *)
}

type t

val create : Engine.t -> t
(** A tracer stamping entries with the engine's clock. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Recording defaults to on; large batch experiments turn it off. *)

val record : t -> category:string -> string -> unit
(** Append an entry (no-op when disabled). *)

val recordf :
  t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!record}. *)

val entries : t -> entry list
(** All entries, oldest first. *)

val by_category : t -> string -> entry list
(** Entries whose category matches, oldest first. *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
(** One-line rendering: ["\[   3.200ms\] ipc: ..."]. *)

val dump : Format.formatter -> t -> unit
(** Print all entries, one per line. *)
