type t = {
  mutable permits : int;
  mutable waiters : (unit -> unit) list; (* newest first *)
}

let create n =
  assert (n >= 0);
  { permits = n; waiters = [] }

let available t = t.permits
let waiting t = List.length t.waiters

let rec acquire t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else begin
    Proc.suspend (fun wake ->
        t.waiters <- wake :: t.waiters;
        fun () -> t.waiters <- List.filter (fun w -> w != wake) t.waiters);
    acquire t
  end

let release t =
  t.permits <- t.permits + 1;
  match List.rev t.waiters with
  | [] -> ()
  | oldest :: _ ->
      t.waiters <- List.filter (fun w -> w != oldest) t.waiters;
      oldest ()

let with_permit t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f
