type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  (* Rejection-free modulo is fine here: bound is tiny relative to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let uniform_span t lo hi =
  let lo_us = Time.to_us lo and hi_us = Time.to_us hi in
  if hi_us <= lo_us then lo else Time.of_us (lo_us + int t (hi_us - lo_us + 1))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
