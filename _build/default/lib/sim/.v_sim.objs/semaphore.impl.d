lib/sim/semaphore.ml: Fun List Proc
