lib/sim/ivar.mli:
