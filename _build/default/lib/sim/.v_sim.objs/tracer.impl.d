lib/sim/tracer.ml: Engine Format List String Time
