lib/sim/heap.mli:
