lib/sim/proc.mli: Engine Time
