lib/sim/engine.ml: Heap Int List Printf Time
