lib/sim/tracer.mli: Engine Format Time
