lib/sim/ivar.ml: List Option Proc
