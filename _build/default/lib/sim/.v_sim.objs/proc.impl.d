lib/sim/proc.ml: Effect Engine List Time
