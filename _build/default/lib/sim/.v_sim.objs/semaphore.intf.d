lib/sim/semaphore.mli:
