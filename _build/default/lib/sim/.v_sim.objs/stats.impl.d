lib/sim/stats.ml: Array Engine Float List Stdlib Time
