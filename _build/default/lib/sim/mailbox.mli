(** Unbounded FIFO message queues between simulated processes.

    Per-process message queues in the V kernel (Section 3.1.3: requests to
    a frozen logical host are "queued for the recipient process") are built
    on these. Senders never block; receivers block until a message is
    available. *)

type 'a t
(** A queue of ['a] messages. *)

val create : unit -> 'a t
(** A fresh empty mailbox. *)

val send : 'a t -> 'a -> unit
(** Enqueue a message, waking the longest-blocked receiver if any. *)

val recv : 'a t -> 'a
(** Dequeue the oldest message, blocking the calling process while the
    mailbox is empty. *)

val recv_timeout : Engine.t -> 'a t -> Time.span -> 'a option
(** Like {!recv} but gives up after a virtual duration, returning [None].
    This is the primitive beneath IPC retransmission timers. *)

val try_recv : 'a t -> 'a option
(** Dequeue without blocking. *)

val length : 'a t -> int
(** Messages currently queued. *)

val drain : 'a t -> 'a list
(** Remove and return all queued messages, oldest first. Used when a
    migrated logical host's old copy is deleted and its queued messages
    are discarded (Section 3.1.3). *)
