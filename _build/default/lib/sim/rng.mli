(** Deterministic pseudo-random numbers.

    A splitmix64 generator. Every experiment takes one seed and derives
    independent streams with {!split}, so reordering draws in one subsystem
    never perturbs another and every run is exactly reproducible. *)

type t
(** A generator; mutable internal state. *)

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution — used for
    Poisson arrival inter-arrival times and service-time jitter. *)

val uniform_span : t -> Time.span -> Time.span -> Time.span
(** [uniform_span t lo hi] is uniform in [\[lo, hi\]]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
