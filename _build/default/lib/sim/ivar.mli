(** Write-once synchronization variables.

    The standard rendezvous for "request started, answer comes later":
    the migration protocol and IPC layer use ivars to hand results back to
    blocked simulated processes. *)

type 'a t
(** A cell that is empty until filled exactly once. *)

val create : unit -> 'a t
(** A fresh empty ivar. *)

val fill : 'a t -> 'a -> unit
(** Fill the ivar and wake all readers, in blocking order.
    @raise Invalid_argument if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when full. *)

val is_filled : 'a t -> bool

val peek : 'a t -> 'a option
(** The value, without blocking. *)

val read : 'a t -> 'a
(** Return the value, blocking the calling process until filled. *)
