type entry = { at : Time.t; category : string; message : string }

type t = {
  engine : Engine.t;
  mutable on : bool;
  mutable rev_entries : entry list;
}

let create engine = { engine; on = true; rev_entries = [] }

let enabled t = t.on
let set_enabled t on = t.on <- on

let record t ~category message =
  if t.on then
    t.rev_entries <-
      { at = Engine.now t.engine; category; message } :: t.rev_entries

let recordf t ~category fmt =
  Format.kasprintf (fun message -> record t ~category message) fmt

let entries t = List.rev t.rev_entries

let by_category t category =
  List.filter (fun e -> String.equal e.category category) (entries t)

let clear t = t.rev_entries <- []

let pp_entry ppf e =
  Format.fprintf ppf "[%10s] %s: %s" (Time.to_string e.at) e.category e.message

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
