(** Counting semaphores over simulated processes.

    Used wherever the simulation serializes access to a shared resource —
    most importantly the single shared Ethernet segment, whose half-duplex
    medium admits one frame at a time. *)

type t

val create : int -> t
(** [create n] is a semaphore with [n] initial permits. [n >= 0]. *)

val acquire : t -> unit
(** Take a permit, blocking the calling process while none are free.
    Blocked processes acquire in FIFO order. *)

val release : t -> unit
(** Return a permit, waking the longest-blocked acquirer if any. *)

val with_permit : t -> (unit -> 'a) -> 'a
(** [with_permit t f] brackets [f] with {!acquire}/{!release}; the permit
    is released even if [f] raises or the process is killed. *)

val available : t -> int
(** Permits currently free. *)

val waiting : t -> int
(** Processes currently blocked in {!acquire}. *)
