type t = int

let of_int n =
  assert (n >= 0);
  n

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "station-%d" t
let to_string t = Format.asprintf "%a" pp t
