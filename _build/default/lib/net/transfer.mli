(** Bulk data transfers.

    The V kernel moves address spaces with inter-host [CopyTo]/[CopyFrom]
    operations that blast sequences of packets (the paper: "V routinely
    transfers 32 kilobytes or more as a unit over the network", and bulk
    copy runs at about 3 seconds per megabyte). This module models such a
    transfer: the calling simulated process is blocked for the duration,
    the shared medium is occupied frame by frame (so concurrent traffic
    contends realistically), lost frames are retransmitted, and a per-frame
    CPU cost paces the sender — that CPU cost, not the 10 Mbit wire, is
    what limits V to ~0.33 MB/s, and it is the calibration knob for the
    paper's measured copy rate. *)

type pacing = {
  data_frame_bytes : int;  (** Payload bytes carried per data frame. *)
  per_frame_cpu : Time.span;
      (** Protocol/processing cost per frame at the hosts; paces frames
          and bounds effective throughput. *)
}

val v_pacing : pacing
(** Calibrated so that [rate ~pacing:v_pacing ...] with the default
    Ethernet config reproduces the paper's 3 s/MByte (Section 4.1). *)

val duration : config:Ethernet.config -> pacing:pacing -> bytes:int -> Time.span
(** Closed-form transfer time on an idle network with no loss — used by
    planners and as a test oracle for {!bulk_copy}. *)

val seconds_per_megabyte : config:Ethernet.config -> pacing:pacing -> float
(** Effective bulk rate implied by [duration], for reporting. *)

val bulk_copy :
  ?pacing:pacing -> ?dst:Addr.t -> 'p Ethernet.t -> bytes:int -> unit
(** Perform a transfer of [bytes] from within a simulated process,
    blocking it until the last frame (and retransmissions of any lost
    frames) has cleared the wire. When [dst] lives on a bridged segment,
    each frame also occupies the far wire after the bridge delay. A
    zero-byte copy returns immediately. *)
