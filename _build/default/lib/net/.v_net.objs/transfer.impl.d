lib/net/transfer.ml: Engine Ethernet Proc Stdlib Time
