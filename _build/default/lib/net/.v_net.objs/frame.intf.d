lib/net/frame.mli: Addr Format
