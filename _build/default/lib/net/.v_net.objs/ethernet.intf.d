lib/net/ethernet.mli: Addr Engine Frame Rng Time
