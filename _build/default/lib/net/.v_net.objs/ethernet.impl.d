lib/net/ethernet.ml: Addr Engine Frame Hashtbl List Printf Rng Stdlib Time
