lib/net/addr.ml: Format Hashtbl Int
