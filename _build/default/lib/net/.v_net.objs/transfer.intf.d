lib/net/transfer.mli: Addr Ethernet Time
