lib/net/frame.ml: Addr Format
