type pacing = { data_frame_bytes : int; per_frame_cpu : Time.span }

(* 1 KB data frames; ~2.1 ms host processing per frame. With the 10 Mbit
   wire (0.82 ms/KB on the wire, 5 us propagation) this yields
   2.93 ms/KB = 3.00 s/MB, the rate measured in Section 4.1 for
   inter-host address-space copies. *)
let v_pacing = { data_frame_bytes = 1024; per_frame_cpu = Time.of_us 2105 }

let frames_needed ~pacing ~bytes =
  (bytes + pacing.data_frame_bytes - 1) / pacing.data_frame_bytes

let per_frame_span ~config ~pacing =
  let wire_bytes = Stdlib.max pacing.data_frame_bytes config.Ethernet.min_frame_bytes in
  let wire_us =
    ((wire_bytes * 1_000_000) + config.Ethernet.bandwidth_bytes_per_sec - 1)
    / config.Ethernet.bandwidth_bytes_per_sec
  in
  Time.add
    (Time.add (Time.of_us wire_us) config.Ethernet.propagation)
    pacing.per_frame_cpu

let duration ~config ~pacing ~bytes =
  if bytes <= 0 then Time.zero
  else Time.mul (per_frame_span ~config ~pacing) (frames_needed ~pacing ~bytes)

let seconds_per_megabyte ~config ~pacing =
  Time.to_sec (duration ~config ~pacing ~bytes:(1024 * 1024))

let bulk_copy ?(pacing = v_pacing) ?dst net ~bytes =
  let eng = Ethernet.engine net in
  let route =
    match dst with Some a -> Ethernet.locate net a | None -> `Local
  in
  let total = frames_needed ~pacing ~bytes in
  (* Pacing is governed by the local wire and the hosts' per-frame CPU;
     a store-and-forward bridge pipelines, so the far wire adds latency
     (tracked via the last frame's arrival) rather than halving the
     rate. *)
  let last_arrival = ref Time.zero in
  let rec frame_loop remaining =
    if remaining > 0 then begin
      let clear, lost = Ethernet.occupy net ~bytes:pacing.data_frame_bytes in
      let arrival = Time.add clear (Ethernet.config net).propagation in
      let arrival, lost =
        match route with
        | `Local | `Unknown -> (arrival, lost)
        | `Peer (peer, delay) ->
            let clear2, lost2 =
              Ethernet.occupy ~not_before:(Time.add arrival delay) peer
                ~bytes:pacing.data_frame_bytes
            in
            (Time.add clear2 (Ethernet.config peer).propagation, lost || lost2)
      in
      last_arrival := Time.max !last_arrival arrival;
      let pace_at = Time.add (Time.add clear (Ethernet.config net).propagation) pacing.per_frame_cpu in
      Proc.sleep eng (Time.sub pace_at (Engine.now eng));
      (* A lost frame is retransmitted; the remaining count doesn't drop. *)
      frame_loop (if lost then remaining else remaining - 1)
    end
  in
  frame_loop total;
  (* Block until the tail of the copy has actually landed at the far
     side (plus its processing). *)
  let done_at = Time.add !last_arrival pacing.per_frame_cpu in
  if Time.(done_at > Engine.now eng) then
    Proc.sleep eng (Time.sub done_at (Engine.now eng))
