type dst = Unicast of Addr.t | Broadcast | Multicast of int

type 'p t = { src : Addr.t; dst : dst; bytes : int; payload : 'p }

let unicast ~src ~dst ~bytes payload = { src; dst = Unicast dst; bytes; payload }
let broadcast ~src ~bytes payload = { src; dst = Broadcast; bytes; payload }

let multicast ~src ~group ~bytes payload =
  { src; dst = Multicast group; bytes; payload }

let pp_dst ppf = function
  | Unicast a -> Addr.pp ppf a
  | Broadcast -> Format.pp_print_string ppf "broadcast"
  | Multicast g -> Format.fprintf ppf "multicast-%d" g
