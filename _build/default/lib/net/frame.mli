(** Network frames.

    A frame carries an opaque payload of the protocol layer's choosing
    (the V kernel defines its packet type on top); the network only needs
    the source, destination and size to model timing and delivery. *)

type dst =
  | Unicast of Addr.t
  | Broadcast  (** Delivered to every attached station except the sender. *)
  | Multicast of int
      (** Delivered to stations subscribed to the group id — carries the
          V process-group queries of Section 2.1. *)

type 'p t = {
  src : Addr.t;
  dst : dst;
  bytes : int;  (** On-the-wire size, header included. *)
  payload : 'p;
}

val unicast : src:Addr.t -> dst:Addr.t -> bytes:int -> 'p -> 'p t
val broadcast : src:Addr.t -> bytes:int -> 'p -> 'p t
val multicast : src:Addr.t -> group:int -> bytes:int -> 'p -> 'p t

val pp_dst : Format.formatter -> dst -> unit
