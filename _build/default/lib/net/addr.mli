(** Ethernet station addresses.

    The paper's hosts are identified on the wire by 48-bit Ethernet
    addresses (Section 4.1 notes the 32-bit process-id to 48-bit host
    address mapping). We model an address as a small integer assigned by
    the cluster builder; the width never matters to the protocols. *)

type t
(** A station address. *)

val of_int : int -> t
(** [of_int n] with [n >= 0]. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Rendered like ["station-3"]. *)

val to_string : t -> string
