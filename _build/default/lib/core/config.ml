type t = {
  os : Os_params.t;
  env_setup : Time.span;
  env_destroy : Time.span;
  candidacy_delay : Time.span;
  candidacy_jitter : Time.span;
  select_timeout : Time.span;
  max_guests : int;
  min_free_memory : int;
  busy_threshold : float;
  precopy_min_residue : int;
  precopy_improvement : float;
  precopy_max_rounds : int;
  migration_retries : int;
  kernel_state_base : Time.span;
  kernel_state_per_object : Time.span;
}

let default =
  {
    os = Os_params.default;
    env_setup = Time.of_ms 25.;
    env_destroy = Time.of_ms 15.;
    candidacy_delay = Time.of_ms 21.5;
    candidacy_jitter = Time.of_ms 4.;
    select_timeout = Time.of_sec 2.;
    max_guests = 3;
    min_free_memory = 128 * 1024;
    busy_threshold = 0.5;
    precopy_min_residue = 8 * 1024;
    precopy_improvement = 0.7;
    precopy_max_rounds = 8;
    migration_retries = 0;
    kernel_state_base = Time.of_ms 14.;
    kernel_state_per_object = Time.of_ms 9.;
  }

let sum_env_spans t = Time.add t.env_setup t.env_destroy
