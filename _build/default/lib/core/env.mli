(** Program execution environments.

    The requester initializes a new program with "program arguments,
    default I/O, and various environment variables, including a name
    cache for commonly used global names" (Section 2.1). Every binding is
    a global process identifier, which is exactly what makes the
    environment network-transparent: the same environment works wherever
    the program runs, and it migrates with the address space because it
    {e is} address-space state. *)

type t = {
  file_server : Ids.pid;  (** Default file service (also standard I/O). *)
  display : Ids.pid;
      (** Display server of the originating workstation — co-resident
          with its frame buffer, so it never migrates; the program's
          output finds the owner's screen from anywhere. *)
  name_server : Ids.pid option;
  name_cache : (string * Ids.pid) list;
      (** Pre-resolved global names, carried in the program's address
          space (Section 6). *)
  args : string list;
  origin_host : string;  (** Where the program was invoked from. *)
}

val make :
  ?name_server:Ids.pid ->
  ?name_cache:(string * Ids.pid) list ->
  ?args:string list ->
  file_server:Ids.pid ->
  display:Ids.pid ->
  origin_host:string ->
  unit ->
  t

val cached_lookup : t -> string -> Ids.pid option
(** Consult the in-address-space name cache. *)

val bytes : t -> int
(** Simulated size of the environment block passed at initialization. *)
