lib/core/config.mli: Os_params Time
