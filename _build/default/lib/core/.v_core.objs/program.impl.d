lib/core/program.ml: Context Cpu Dirty_model Display_server Engine Env File_server Hashtbl Ids Kernel Logical_host Option Os_params Printf Programs Progtable Time Vproc
