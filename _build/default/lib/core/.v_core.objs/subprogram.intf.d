lib/core/subprogram.mli: Context Ids Proc Progtable Rng
