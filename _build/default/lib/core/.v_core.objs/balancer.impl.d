lib/core/balancer.ml: Config Cpu Ids Int Kernel List Message Proc Protocol String Time Tracer Vproc
