lib/core/program.mli: Context Dirty_model Env Ids Logical_host Programs Progtable Rng Time Vproc
