lib/core/residual.mli: Context Ids Progtable
