lib/core/context.mli: Ids Kernel
