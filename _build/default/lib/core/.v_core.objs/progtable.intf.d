lib/core/progtable.mli: Address_space Delivery Dirty_model Env Ids Kernel Logical_host Message Programs Time Vproc
