lib/core/protocol.mli: Cpu Env Format Ids Message Progtable Time
