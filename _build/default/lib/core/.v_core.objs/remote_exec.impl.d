lib/core/remote_exec.ml: Cpu Engine File_server Format Ids Kernel Logical_host Message Proc Programs Progtable Protocol Result Scheduler String Time
