lib/core/program_manager.mli: Config Context Ids Kernel Progtable Rng
