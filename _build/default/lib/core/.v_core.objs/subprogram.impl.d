lib/core/subprogram.ml: Address_space Context Dirty_model Env File_server Ids Kernel Logical_host Proc Program Programs Progtable Rng Vproc
