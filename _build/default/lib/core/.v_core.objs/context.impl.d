lib/core/context.ml: Kernel List Printf String
