lib/core/env.mli: Ids
