lib/core/remote_exec.mli: Config Env Ids Kernel Time
