lib/core/protocol.ml: Cpu Env Format Ids List Message Progtable Time
