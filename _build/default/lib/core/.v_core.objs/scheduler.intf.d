lib/core/scheduler.mli: Config Ids Kernel Time
