lib/core/progtable.ml: Address_space Delivery Dirty_model Engine Env Hashtbl Ids Int Kernel List Logical_host Message Programs Time Vproc
