lib/core/scheduler.ml: Config Engine Ids Kernel List Message Printf Protocol Time
