lib/core/residual.ml: Context Env Ids Kernel List Logical_host Progtable String
