lib/core/env.ml: Ids List Option String
