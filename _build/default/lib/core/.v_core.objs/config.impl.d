lib/core/config.ml: Os_params Time
