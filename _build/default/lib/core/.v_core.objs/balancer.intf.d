lib/core/balancer.mli: Config Kernel Time
