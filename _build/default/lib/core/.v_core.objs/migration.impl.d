lib/core/migration.ml: Config Dirty_model Engine Format Ids Kernel List Logical_host Message Os_params Proc Programs Progtable Protocol Result Scheduler Time Tracer
