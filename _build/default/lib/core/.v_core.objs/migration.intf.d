lib/core/migration.mli: Config Format Ids Kernel Logical_host Progtable Protocol Rng Scheduler Time
