type t = {
  file_server : Ids.pid;
  display : Ids.pid;
  name_server : Ids.pid option;
  name_cache : (string * Ids.pid) list;
  args : string list;
  origin_host : string;
}

let make ?name_server ?(name_cache = []) ?(args = []) ~file_server ~display
    ~origin_host () =
  { file_server; display; name_server; name_cache; args; origin_host }

let cached_lookup t name =
  Option.map snd
    (List.find_opt (fun (n, _) -> String.equal n name) t.name_cache)

let bytes t =
  let string_bytes = List.fold_left (fun a s -> a + String.length s) 0 t.args in
  64 + (16 * List.length t.name_cache) + string_bytes
