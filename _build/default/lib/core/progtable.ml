type status =
  | Running
  | Migrating
  | Suspended
  | Done of { at : Time.t; cpu_used : Time.span; failed : bool }

type program = {
  p_lh : Logical_host.t;
  p_spec : Programs.spec;
  p_env : Env.t;
  p_root : Vproc.t;
  p_space : Address_space.t;
  p_model : Dirty_model.t;
  p_started : Time.t;
  p_origin : string;
  mutable p_home : t;
  mutable p_status : status;
  mutable p_waiters : Delivery.t list;
  mutable p_cpu_used : Time.span;
}

and t = { tbl_kernel : Kernel.t; tbl : (Ids.lh_id, program) Hashtbl.t }

type Message.body +=
  | Pm_exited of { wall : Time.span; cpu : Time.span; ok : bool }

let create tbl_kernel = { tbl_kernel; tbl = Hashtbl.create 16 }

let kernel t = t.tbl_kernel

let add t ~lh ~spec ~env ~root ~space ~model ~origin =
  let p =
    {
      p_lh = lh;
      p_spec = spec;
      p_env = env;
      p_root = root;
      p_space = space;
      p_model = model;
      p_started = Engine.now (Kernel.engine t.tbl_kernel);
      p_origin = origin;
      p_home = t;
      p_status = Running;
      p_waiters = [];
      p_cpu_used = Time.zero;
    }
  in
  Hashtbl.replace t.tbl (Logical_host.id lh) p;
  p

let find t lh_id = Hashtbl.find_opt t.tbl lh_id

let programs t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.tbl []
  |> List.sort (fun a b ->
         Int.compare (Logical_host.id a.p_lh) (Logical_host.id b.p_lh))

let count t = Hashtbl.length t.tbl

let remove t p = Hashtbl.remove t.tbl (Logical_host.id p.p_lh)

let adopt t p =
  p.p_home <- t;
  Hashtbl.replace t.tbl (Logical_host.id p.p_lh) p

let add_waiter p d = p.p_waiters <- d :: p.p_waiters

let finish p ~cpu_used ~failed =
  let k = kernel p.p_home in
  let now = Engine.now (Kernel.engine k) in
  p.p_status <- Done { at = now; cpu_used; failed };
  let waiters = List.rev p.p_waiters in
  p.p_waiters <- [];
  let wall = Time.sub now p.p_started in
  List.iter
    (fun d ->
      Kernel.reply k d
        (Message.make (Pm_exited { wall; cpu = cpu_used; ok = not failed })))
    waiters

let charge_cpu p span = p.p_cpu_used <- Time.add p.p_cpu_used span
