type t = {
  daemon : Proc.t;
  mutable survey_count : int;
  mutable rebalance_count : int;
}

let surveys t = t.survey_count
let rebalances t = t.rebalance_count
let stop t = Proc.kill t.daemon

(* One survey: every program manager's migratable-guest list, with the
   manager's own (stable) pid from the reply. *)
let survey k ~self =
  let c =
    Kernel.send_group k ~src:self ~group:Ids.program_manager_group
      (Message.make Protocol.Pm_list_programs)
  in
  List.filter_map
    (fun (pm, (m : Message.t)) ->
      match m.Message.body with
      | Protocol.Pm_programs { host; guests; _ } -> Some (pm, host, guests)
      | _ -> None)
    (Kernel.collect_within k c ~window:(Time.of_ms 200.))
  |> List.sort (fun (_, a, _) (_, b, _) -> String.compare a b)

let rebalance_once t k ~self ~imbalance =
  match survey k ~self with
  | [] | [ _ ] -> ()
  | loads -> (
      let by_load =
        List.sort
          (fun (_, _, a) (_, _, b) -> Int.compare (List.length a) (List.length b))
          loads
      in
      let _, _, least = List.hd by_load in
      let busy_pm, busy_host, busiest = List.hd (List.rev by_load) in
      match busiest with
      | victim :: _ when List.length busiest - List.length least >= imbalance
        -> (
          Tracer.recordf (Kernel.tracer k) ~category:"balance"
            "moving one guest off %s (%d vs %d guests)" busy_host
            (List.length busiest) (List.length least);
          match
            Kernel.send k ~src:self ~dst:busy_pm
              (Message.make
                 (Protocol.Pm_migrate
                    {
                      lh = Some victim;
                      dest = None;
                      force_destroy = false;
                      strategy = Protocol.Precopy;
                    }))
          with
          | Ok { Message.body = Protocol.Pm_migrated (_ :: _); _ } ->
              t.rebalance_count <- t.rebalance_count + 1
          | Ok _ | Error _ -> ())
      | _ -> ())

let start ?(interval = Time.of_sec 5.) ?(imbalance = 2) k cfg =
  ignore (cfg : Config.t);
  let eng = Kernel.engine k in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let self = Vproc.pid (Kernel.create_process k lh) in
  let t_cell = ref None in
  let daemon =
    Proc.spawn eng ~name:"balancer" (fun () ->
        let rec loop () =
          Proc.sleep eng interval;
          (match !t_cell with
          | Some t ->
              t.survey_count <- t.survey_count + 1;
              rebalance_once t k ~self ~imbalance
          | None -> ());
          loop ()
        in
        loop ())
  in
  let t = { daemon; survey_count = 0; rebalance_count = 0 } in
  t_cell := Some t;
  t
