(** Program records: the program manager's per-program state.

    "There is a program manager on each workstation that provides program
    management for programs executing on that workstation" (Section 2.1).
    Its per-program state — who is waiting for completion, what was
    loaded, when it started — is precisely the state that must be handed
    to the destination program manager when the program migrates
    (Sections 3.1.3/4.1 count it in the kernel-state copy). A record is
    an ordinary OCaml value, so adoption by the new manager is a pointer
    move, mirroring the state copy whose {e time} the migration protocol
    charges explicitly. *)

type status =
  | Running
  | Migrating
  | Suspended
  | Done of { at : Time.t; cpu_used : Time.span; failed : bool }
      (** [failed] when the program died on an exception (e.g. its file
          server became unreachable) or was destroyed, rather than
          running to completion. *)

type program = {
  p_lh : Logical_host.t;
  p_spec : Programs.spec;
  p_env : Env.t;
  p_root : Vproc.t;  (** The program's initial process. *)
  p_space : Address_space.t;
  p_model : Dirty_model.t;
  p_started : Time.t;
  p_origin : string;  (** Host that created it (owner's workstation). *)
  mutable p_home : t;  (** Table of the program manager currently responsible. *)
  mutable p_status : status;
  mutable p_waiters : Delivery.t list;  (** Blocked [Pm_wait] requests. *)
  mutable p_cpu_used : Time.span;
}

and t
(** One program manager's table. *)

val create : Kernel.t -> t
val kernel : t -> Kernel.t

val add :
  t ->
  lh:Logical_host.t ->
  spec:Programs.spec ->
  env:Env.t ->
  root:Vproc.t ->
  space:Address_space.t ->
  model:Dirty_model.t ->
  origin:string ->
  program

val find : t -> Ids.lh_id -> program option
val programs : t -> program list
val count : t -> int

val remove : t -> program -> unit
(** Drop the record without touching the logical host (migration's
    source-side step; destruction goes through {!finish}). *)

val adopt : t -> program -> unit
(** Take responsibility for a record extracted from another manager. *)

val add_waiter : program -> Delivery.t -> unit

type Message.body +=
  | Pm_exited of { wall : Time.span; cpu : Time.span; ok : bool }
        (** Reply to a completion waiter. *)

val finish : program -> cpu_used:Time.span -> failed:bool -> unit
(** Mark the program done and answer every waiter with {!Pm_exited}
    (from whichever kernel currently owns the record — correct even if
    the program completed after migrating). Must be called from a
    simulated process. *)

val charge_cpu : program -> Time.span -> unit
(** Accumulate scheduled CPU (for reporting). *)
