(** Preemptive load balancing.

    The paper stops short of this: "we have not used the preemption
    facility to balance the load across multiple workstations ...
    increasing use of distributed execution ... may provide motivation to
    address this issue" (Section 6). This module is that future-work
    item, built entirely from the facilities the paper does provide: the
    program-manager group query for loads and [migrateprog] for the move.

    The balancer is a daemon on one workstation. Each cycle it surveys
    every program manager, and if the busiest workstation runs at least
    [imbalance] more guests than the idlest volunteer, it asks the busy
    host's manager to migrate one guest (destination chosen by the normal
    decentralized selection). One move per cycle keeps it stable. *)

type t

val start :
  ?interval:Time.span ->
  ?imbalance:int ->
  Kernel.t ->
  Config.t ->
  t
(** Start the daemon on the given workstation. [interval] defaults to
    5 s, [imbalance] to 2 guests. *)

val stop : t -> unit

val surveys : t -> int
(** Cycles completed. *)

val rebalances : t -> int
(** Migrations triggered. *)
