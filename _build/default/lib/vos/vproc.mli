(** V process control blocks.

    A V process pairs an identifier with the green thread executing its
    code and the queue of requests awaiting its [Receive]. The thread is
    attached after creation because the paper's program-creation protocol
    makes a new process exist {e before} it runs (it is created "awaiting
    reply from its creator", Section 2.1). *)

type t

val create : Ids.pid -> t

val pid : t -> Ids.pid

val attach_thread : t -> Proc.t -> unit
(** Associate the executing green thread. At most once. *)

val thread : t -> Proc.t option

val inbox : t -> Delivery.t Mailbox.t
(** Requests delivered by the kernel, consumed by [Receive]. *)

val alive : t -> bool
(** True until the thread (if any) terminates. A thread-less process is
    considered alive (it exists, awaiting start). *)

val kill : t -> unit
(** Terminate the thread, if attached. *)

val pause : t -> unit
(** Freeze-support: stop the thread advancing (see {!Proc.pause}). *)

val unpause : t -> unit

val pp : Format.formatter -> t -> unit
