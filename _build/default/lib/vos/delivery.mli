(** Requests as delivered to a receiving process.

    A delivery is what [Receive] hands a server: who sent it, which id it
    was addressed to (relevant for kernel-server and program-manager
    requests, which are addressed through a logical host's local group
    id), the transaction the eventual [Reply] must close, and where the
    request physically came from — the origin decides how the sender is
    prodded when the recipient's logical host migrates (Section 3.1.3:
    local senders restart their send; remote senders just retransmit). *)

type origin =
  | Local  (** Sender runs under the same kernel. *)
  | Remote of Addr.t  (** Station the request frame arrived from. *)

type t = {
  src : Ids.pid;
  dst : Ids.pid;  (** As addressed — may be a local-group id. *)
  txn : Packet.txn;
  msg : Message.t;
  origin : origin;
}

val pp : Format.formatter -> t -> unit
