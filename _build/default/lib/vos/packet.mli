(** Kernel-to-kernel wire packets.

    Everything the V kernels exchange on behalf of processes: request and
    reply packets for the Send/Receive/Reply cycle, the "reply-pending"
    packets that keep a blocked sender from timing out while its
    correspondent is busy — or frozen mid-migration (Section 3.1.3) — and
    the broadcast query/answer pair that rebinds a logical host to its new
    physical host after migration (Section 3.1.4). *)

type txn = int
(** Transaction ids pair retransmissions and replies with the original
    send, and let receivers suppress duplicates. *)

type t =
  | Request of { txn : txn; src : Ids.pid; dst : Ids.pid; msg : Message.t }
      (** Carries one Send. Retransmitted by the source kernel until a
          [Reply] or abandonment. *)
  | Reply of { txn : txn; src : Ids.pid; dst : Ids.pid; msg : Message.t }
      (** The matching reply, re-sent from the replier's cache when a
          duplicate [Request] indicates the first copy was lost. *)
  | Reply_pending of { txn : txn; dst : Ids.pid }
      (** "Still working on it" — resets the sender's abandonment clock
          without completing the send. *)
  | Group_request of {
      txn : txn;
      src : Ids.pid;
      group : Ids.pid;
      msg : Message.t;
    }
      (** One Send addressed to a process group, multicast on the wire;
          each member kernel delivers it to local members, whose replies
          return as ordinary [Reply] packets. Unreliable (not
          retransmitted), like V group sends. *)
  | Where_is of { lh : Ids.lh_id }
      (** Broadcast: which station runs this logical host? Sent after
          repeated unanswered retransmissions invalidate a cache entry. *)
  | Here_is of { lh : Ids.lh_id; station : Addr.t }
      (** Unicast answer to [Where_is]; also broadcast unsolicited as the
          optional new-binding announcement when a migration commits. *)

val bytes : t -> int
(** Simulated wire size: protocol header plus the carried message. *)

val pp : Format.formatter -> t -> unit
