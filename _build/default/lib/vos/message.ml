type body = ..

type body += Ping | Pong | Text of string

type t = { body : body; bytes : int }

let short_bytes = 32
let max_bytes = short_bytes + 1024

let make ?(bytes = short_bytes) body =
  if bytes < short_bytes || bytes > max_bytes then
    invalid_arg
      (Printf.sprintf "Message.make: %d bytes outside [%d, %d]" bytes short_bytes
         max_bytes);
  { body; bytes }
