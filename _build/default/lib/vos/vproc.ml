type t = {
  pid : Ids.pid;
  mutable thread : Proc.t option;
  inbox : Delivery.t Mailbox.t;
}

let create pid = { pid; thread = None; inbox = Mailbox.create () }

let pid t = t.pid

let attach_thread t proc =
  match t.thread with
  | Some _ -> invalid_arg "Vproc.attach_thread: thread already attached"
  | None -> t.thread <- Some proc

let thread t = t.thread

let inbox t = t.inbox

let alive t = match t.thread with None -> true | Some p -> Proc.alive p

let kill t = Option.iter Proc.kill t.thread
let pause t = Option.iter Proc.pause t.thread
let unpause t = Option.iter Proc.unpause t.thread

let pp ppf t =
  Format.fprintf ppf "%a%s" Ids.pp_pid t.pid
    (match t.thread with None -> "(unstarted)" | Some _ -> "")
