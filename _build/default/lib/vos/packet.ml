type txn = int

type t =
  | Request of { txn : txn; src : Ids.pid; dst : Ids.pid; msg : Message.t }
  | Reply of { txn : txn; src : Ids.pid; dst : Ids.pid; msg : Message.t }
  | Reply_pending of { txn : txn; dst : Ids.pid }
  | Group_request of { txn : txn; src : Ids.pid; group : Ids.pid; msg : Message.t }
  | Where_is of { lh : Ids.lh_id }
  | Here_is of { lh : Ids.lh_id; station : Addr.t }

let header_bytes = 32

let bytes = function
  | Request { msg; _ } | Reply { msg; _ } | Group_request { msg; _ } ->
      header_bytes + msg.Message.bytes
  | Reply_pending _ | Where_is _ | Here_is _ -> header_bytes

let pp ppf = function
  | Request { txn; src; dst; _ } ->
      Format.fprintf ppf "request#%d %a->%a" txn Ids.pp_pid src Ids.pp_pid dst
  | Reply { txn; src; dst; _ } ->
      Format.fprintf ppf "reply#%d %a->%a" txn Ids.pp_pid src Ids.pp_pid dst
  | Reply_pending { txn; dst } ->
      Format.fprintf ppf "reply-pending#%d for %a" txn Ids.pp_pid dst
  | Group_request { txn; src; group; _ } ->
      Format.fprintf ppf "group-request#%d %a->%a" txn Ids.pp_pid src Ids.pp_pid
        group
  | Where_is { lh } -> Format.fprintf ppf "where-is %a" Ids.pp_lh lh
  | Here_is { lh; station } ->
      Format.fprintf ppf "here-is %a@%a" Ids.pp_lh lh Addr.pp station
