(** Inter-process messages.

    V messages are short fixed-size records (32 bytes on the wire);
    anything larger moves by [CopyTo]/[CopyFrom] against the blocked
    sender's address space. The body is an {e extensible} variant so each
    server layer (file server, program manager, migration manager, user
    programs) declares its own request/reply vocabulary without this
    module knowing about any of them. *)

type body = ..
(** Extend with your protocol's constructors. *)

type body += Ping | Pong | Text of string
(** A tiny generic vocabulary for tests and examples. *)

type t = {
  body : body;
  bytes : int;  (** Simulated size used for wire timing. *)
}

val short_bytes : int
(** The fixed V short-message size: 32. *)

val make : ?bytes:int -> body -> t
(** [make body] is a short message; pass [~bytes] for appended segments
    (at most 1024, the V segment limit — bigger payloads must use the
    copy operations). *)

val max_bytes : int
(** Largest message the kernel accepts: short header + 1 KB segment. *)
