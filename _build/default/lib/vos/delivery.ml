type origin = Local | Remote of Addr.t

type t = {
  src : Ids.pid;
  dst : Ids.pid;
  txn : Packet.txn;
  msg : Message.t;
  origin : origin;
}

let pp ppf d =
  let pp_origin ppf = function
    | Local -> Format.pp_print_string ppf "local"
    | Remote a -> Addr.pp ppf a
  in
  Format.fprintf ppf "#%d %a->%a (%a)" d.txn Ids.pp_pid d.src Ids.pp_pid d.dst
    pp_origin d.origin
