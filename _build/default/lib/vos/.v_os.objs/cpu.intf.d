lib/vos/cpu.mli: Engine Time
