lib/vos/delivery.ml: Addr Format Ids Message Packet
