lib/vos/kernel.ml: Addr Cpu Delivery Engine Ethernet Format Frame Hashtbl Ids Int Ivar List Logical_host Mailbox Message Option Os_params Packet Proc Rng Time Tracer Transfer Vproc
