lib/vos/os_params.mli: Format Time
