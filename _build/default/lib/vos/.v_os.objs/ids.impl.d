lib/vos/ids.ml: Format Hashtbl Int
