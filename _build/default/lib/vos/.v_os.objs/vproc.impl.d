lib/vos/vproc.ml: Delivery Format Ids Mailbox Option Proc
