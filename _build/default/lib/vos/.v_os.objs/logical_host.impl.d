lib/vos/logical_host.ml: Address_space Cpu Delivery Format Hashtbl Ids List Message Packet Proc Time Vproc
