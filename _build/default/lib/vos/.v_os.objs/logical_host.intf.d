lib/vos/logical_host.mli: Address_space Cpu Delivery Format Hashtbl Ids Message Packet Time Vproc
