lib/vos/packet.mli: Addr Format Ids Message
