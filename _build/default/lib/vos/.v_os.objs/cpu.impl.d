lib/vos/cpu.ml: Engine Fun List Option Proc Queue Stats Time
