lib/vos/message.ml: Printf
