lib/vos/message.mli:
