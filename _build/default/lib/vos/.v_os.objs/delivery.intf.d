lib/vos/delivery.mli: Addr Format Ids Message Packet
