lib/vos/kernel.mli: Addr Cpu Delivery Engine Ethernet Format Ids Logical_host Message Os_params Packet Rng Time Tracer Vproc
