lib/vos/packet.ml: Addr Format Ids Message
