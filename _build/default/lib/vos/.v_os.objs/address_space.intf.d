lib/vos/address_space.mli: Rng
