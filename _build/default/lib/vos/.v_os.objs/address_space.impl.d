lib/vos/address_space.ml: Bytes Printf Rng
