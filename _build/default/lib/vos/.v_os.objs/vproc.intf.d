lib/vos/vproc.mli: Delivery Format Ids Mailbox Proc
