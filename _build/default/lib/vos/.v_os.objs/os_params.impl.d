lib/vos/os_params.ml: Format Time
