lib/vos/ids.mli: Format
