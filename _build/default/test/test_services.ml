(* Tests for the server layer: file server (timing, errors, state), name
   server, display server — each exercised through real IPC from client
   processes on other workstations. *)

let sec = Time.of_sec
let ms = Time.of_ms

type fixture = {
  eng : Engine.t;
  kernels : Kernel.t array;
  fs : File_server.t;
}

let setup ?(hosts = 2) () =
  let eng = Engine.create () in
  let rng = Rng.create 5 in
  let net = Ethernet.create eng (Rng.split rng) in
  let tracer = Tracer.create eng in
  Tracer.set_enabled tracer false;
  let alloc = Ids.Lh_allocator.create () in
  let kernels =
    Array.init hosts (fun i ->
        Kernel.create ~engine:eng ~rng:(Rng.split rng) ~tracer
          ~params:Os_params.default ~net ~station:(Addr.of_int i)
          ~host_name:(Printf.sprintf "h%d" i)
          ~allocator:alloc
          ~memory_bytes:(8 * 1024 * 1024))
  in
  let fs = File_server.create kernels.(0) ~name:"fs" in
  { eng; kernels; fs }

(* Run [body] as a client process on host 1 and drive the simulation. *)
let as_client fx body =
  let k = fx.kernels.(1) in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  ignore (Kernel.spawn_process k lh ~name:"client" (fun vp -> body k (Vproc.pid vp)));
  Engine.run fx.eng ~until:(sec 60.)

(* {1 File server} *)

let test_fs_stat () =
  let fx = setup () in
  File_server.add_file fx.fs ~path:"data.txt" ~bytes:12_345;
  let size = ref 0 in
  as_client fx (fun k self ->
      match
        File_server.Client.stat k ~self ~server:(File_server.pid fx.fs)
          ~path:"data.txt"
      with
      | Ok n -> size := n
      | Error e -> Alcotest.failf "stat: %s" e);
  Alcotest.(check int) "size" 12_345 !size

let test_fs_stat_missing () =
  let fx = setup () in
  let err = ref None in
  as_client fx (fun k self ->
      match
        File_server.Client.stat k ~self ~server:(File_server.pid fx.fs)
          ~path:"nope"
      with
      | Ok _ -> ()
      | Error e -> err := Some e);
  Alcotest.(check (option string)) "error" (Some "no such file") !err

let test_fs_read_clamps_to_eof () =
  let fx = setup () in
  File_server.add_file fx.fs ~path:"short" ~bytes:1000;
  let n = ref (-1) in
  as_client fx (fun k self ->
      match
        File_server.Client.read k ~self ~server:(File_server.pid fx.fs)
          ~path:"short" ~offset:800 ~length:4096
      with
      | Ok got -> n := got
      | Error e -> Alcotest.failf "read: %s" e);
  Alcotest.(check int) "clamped" 200 !n

let test_fs_write_extends () =
  let fx = setup () in
  as_client fx (fun k self ->
      match
        File_server.Client.write k ~self ~server:(File_server.pid fx.fs)
          ~path:"log" ~offset:0 ~length:5000
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" e);
  Alcotest.(check (option int)) "created and sized" (Some 5000)
    (File_server.file_size fx.fs ~path:"log")

let test_fs_load_image_timing () =
  (* A 100 KB image must load in ~330 ms: 300 ms network + 30 ms disk. *)
  let fx = setup () in
  File_server.add_image fx.fs ~name:"blob"
    { File_server.code_bytes = 80 * 1024; data_bytes = 20 * 1024; active_bytes = 0 };
  let span = ref Time.zero in
  as_client fx (fun k self ->
      let t0 = Engine.now fx.eng in
      match
        File_server.Client.load_image k ~self ~server:(File_server.pid fx.fs)
          ~name:"blob"
      with
      | Ok img ->
          Alcotest.(check int) "code" (80 * 1024) img.File_server.code_bytes;
          span := Time.sub (Engine.now fx.eng) t0
      | Error e -> Alcotest.failf "load: %s" e);
  let t = Time.to_ms !span in
  if t < 300. || t > 380. then Alcotest.failf "load took %.0f ms, expected ~330" t

let test_fs_load_missing_image () =
  let fx = setup () in
  let err = ref None in
  as_client fx (fun k self ->
      match
        File_server.Client.load_image k ~self ~server:(File_server.pid fx.fs)
          ~name:"ghost"
      with
      | Ok _ -> ()
      | Error e -> err := Some e);
  Alcotest.(check (option string)) "error" (Some "no such image") !err

let test_fs_request_count () =
  let fx = setup () in
  File_server.add_file fx.fs ~path:"f" ~bytes:100;
  as_client fx (fun k self ->
      let server = File_server.pid fx.fs in
      ignore (File_server.Client.stat k ~self ~server ~path:"f");
      ignore (File_server.Client.read k ~self ~server ~path:"f" ~offset:0 ~length:10);
      ignore (File_server.Client.write k ~self ~server ~path:"f" ~offset:0 ~length:10));
  Alcotest.(check int) "three requests" 3 (File_server.request_count fx.fs)

let test_fs_small_read_fast_large_read_slow () =
  let fx = setup () in
  File_server.add_file fx.fs ~path:"big" ~bytes:(256 * 1024);
  let small = ref Time.zero and large = ref Time.zero in
  as_client fx (fun k self ->
      let server = File_server.pid fx.fs in
      let t0 = Engine.now fx.eng in
      ignore (File_server.Client.read k ~self ~server ~path:"big" ~offset:0 ~length:512);
      small := Time.sub (Engine.now fx.eng) t0;
      let t1 = Engine.now fx.eng in
      ignore
        (File_server.Client.read k ~self ~server ~path:"big" ~offset:0
           ~length:(64 * 1024));
      large := Time.sub (Engine.now fx.eng) t1);
  if Time.(!large < Time.scale !small 10.) then
    Alcotest.failf "64KB read (%s) should dwarf 512B read (%s)"
      (Time.to_string !large) (Time.to_string !small)

(* {1 Name server} *)

let test_ns_register_lookup () =
  let fx = setup () in
  let ns = Name_server.create fx.kernels.(0) ~name:"ns" in
  let found = ref None in
  as_client fx (fun k self ->
      (match
         Name_server.Client.register k ~self ~server:(Name_server.pid ns)
           ~name:"myservice"
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "register: %s" e);
      match
        Name_server.Client.lookup k ~self ~server:(Name_server.pid ns)
          ~name:"myservice"
      with
      | Ok pid -> found := Some pid
      | Error e -> Alcotest.failf "lookup: %s" e);
  match !found with
  | Some pid -> Alcotest.(check bool) "bound to registrar" true (pid.Ids.index >= 16)
  | None -> Alcotest.fail "no binding"

let test_ns_unknown_name () =
  let fx = setup () in
  let ns = Name_server.create fx.kernels.(0) ~name:"ns" in
  let err = ref None in
  as_client fx (fun k self ->
      match
        Name_server.Client.lookup k ~self ~server:(Name_server.pid ns) ~name:"?"
      with
      | Ok _ -> ()
      | Error e -> err := Some e);
  Alcotest.(check bool) "unknown" true (!err <> None)

let test_ns_direct_registration () =
  let fx = setup () in
  let ns = Name_server.create fx.kernels.(0) ~name:"ns" in
  let pid = Ids.pid 99 17 in
  Name_server.register_direct ns ~name:"x" pid;
  Alcotest.(check bool) "direct" true
    (Name_server.lookup_direct ns ~name:"x" = Some pid)

(* {1 Display server} *)

let test_display_accumulates () =
  let fx = setup () in
  let ds = Display_server.create fx.kernels.(0) in
  as_client fx (fun k self ->
      ignore (Display_server.Client.write k ~self ~server:(Display_server.pid ds) "one");
      ignore (Display_server.Client.write k ~self ~server:(Display_server.pid ds) "two"));
  Alcotest.(check (list string)) "lines" [ "one"; "two" ] (Display_server.output ds);
  Alcotest.(check int) "count" 2 (Display_server.line_count ds)

let test_display_write_time_reasonable () =
  let fx = setup () in
  let ds = Display_server.create fx.kernels.(0) in
  let span = ref Time.zero in
  as_client fx (fun k self ->
      let t0 = Engine.now fx.eng in
      ignore (Display_server.Client.write k ~self ~server:(Display_server.pid ds) "hi");
      span := Time.sub (Engine.now fx.eng) t0);
  if Time.(!span > ms 10.) then
    Alcotest.failf "remote display write took %s" (Time.to_string !span)

let () =
  Alcotest.run "v_services"
    [
      ( "file-server",
        [
          Alcotest.test_case "stat" `Quick test_fs_stat;
          Alcotest.test_case "stat missing" `Quick test_fs_stat_missing;
          Alcotest.test_case "read clamps to EOF" `Quick
            test_fs_read_clamps_to_eof;
          Alcotest.test_case "write extends" `Quick test_fs_write_extends;
          Alcotest.test_case "image load timing (330ms/100KB)" `Quick
            test_fs_load_image_timing;
          Alcotest.test_case "missing image" `Quick test_fs_load_missing_image;
          Alcotest.test_case "request counting" `Quick test_fs_request_count;
          Alcotest.test_case "read size scales cost" `Quick
            test_fs_small_read_fast_large_read_slow;
        ] );
      ( "name-server",
        [
          Alcotest.test_case "register+lookup" `Quick test_ns_register_lookup;
          Alcotest.test_case "unknown name" `Quick test_ns_unknown_name;
          Alcotest.test_case "direct registration" `Quick
            test_ns_direct_registration;
        ] );
      ( "display-server",
        [
          Alcotest.test_case "accumulates lines" `Quick test_display_accumulates;
          Alcotest.test_case "write latency" `Quick
            test_display_write_time_reasonable;
        ] );
    ]
