test/test_vos2.mli:
