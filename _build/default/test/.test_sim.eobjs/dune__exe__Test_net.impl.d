test/test_net.ml: Addr Alcotest Engine Ethernet Frame List Proc Rng Time Transfer
