test/test_vos.mli:
