test/test_workload.ml: Address_space Alcotest Arrivals Calibrate Dirty_model Engine File_server Float Fun List Proc Programs QCheck QCheck_alcotest Rng String Time
