test/test_services.ml: Addr Alcotest Array Cpu Display_server Engine Ethernet File_server Ids Kernel Name_server Os_params Printf Rng Time Tracer Vproc
