test/test_vos2.ml: Addr Address_space Alcotest Array Cpu Delivery Engine Ethernet Ids Kernel List Logical_host Message Option Os_params Packet Printf Proc Rng Time Tracer Vproc
