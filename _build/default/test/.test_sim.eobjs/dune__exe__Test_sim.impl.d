test/test_sim.ml: Alcotest Array Engine Fun Heap Int Ivar List Mailbox Proc QCheck QCheck_alcotest Rng Semaphore Stats Time Tracer
