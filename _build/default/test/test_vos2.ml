(* Second batch of V-kernel tests: logical-host bookkeeping, the
   paper's process-creation order, cost accounting, and the gnarlier
   migration interleavings (multi-hop chains, simultaneous swaps). *)

let ms = Time.of_ms
let sec = Time.of_sec

type fixture = {
  eng : Engine.t;
  net : Packet.t Ethernet.t;
  kernels : Kernel.t array;
}

let setup ?(hosts = 3) ?(params = Os_params.default) () =
  let eng = Engine.create () in
  let rng = Rng.create 42 in
  let net = Ethernet.create eng (Rng.split rng) in
  let tracer = Tracer.create eng in
  Tracer.set_enabled tracer false;
  let alloc = Ids.Lh_allocator.create () in
  let kernels =
    Array.init hosts (fun i ->
        Kernel.create ~engine:eng ~rng:(Rng.split rng) ~tracer ~params ~net
          ~station:(Addr.of_int i)
          ~host_name:(Printf.sprintf "ws%d" i)
          ~allocator:alloc
          ~memory_bytes:(2 * 1024 * 1024))
  in
  { eng; net; kernels }

(* {1 Logical host bookkeeping} *)

let test_lh_process_indices () =
  let lh = Logical_host.create ~id:7 ~priority:Cpu.Foreground ~home:"x" in
  let a = Logical_host.new_process lh in
  let b = Logical_host.new_process lh in
  Alcotest.(check int) "first index" Ids.first_user_index (Vproc.pid a).Ids.index;
  Alcotest.(check int) "second index" (Ids.first_user_index + 1) (Vproc.pid b).Ids.index;
  Alcotest.(check int) "count" 2 (Logical_host.process_count lh);
  Alcotest.(check bool) "find" true
    (Logical_host.find_process lh Ids.first_user_index == Some a |> fun _ ->
     Logical_host.find_process lh Ids.first_user_index <> None);
  Alcotest.(check bool) "missing" true (Logical_host.find_process lh 99 = None)

let test_lh_memory_accounting () =
  let lh = Logical_host.create ~id:8 ~priority:Cpu.Background ~home:"x" in
  let sp1 = Address_space.create ~code_bytes:10_240 ~data_bytes:0 ~active_bytes:10_240 () in
  let sp2 = Address_space.create ~code_bytes:0 ~data_bytes:0 ~active_bytes:5_120 () in
  Logical_host.add_space lh sp1;
  Logical_host.add_space lh sp2;
  Alcotest.(check int) "total" (25 * 1024) (Logical_host.total_bytes lh);
  Address_space.touch sp1 0;
  Address_space.touch sp2 1;
  Alcotest.(check int) "dirty" 2048 (Logical_host.dirty_bytes lh);
  Alcotest.(check int) "clear returns" 2048 (Logical_host.clear_dirty lh);
  Alcotest.(check int) "clean" 0 (Logical_host.dirty_bytes lh)

let test_lh_gate_blocks_while_frozen () =
  let eng = Engine.create () in
  let lh = Logical_host.create ~id:9 ~priority:Cpu.Foreground ~home:"x" in
  Logical_host.set_frozen lh true;
  let passed_at = ref Time.zero in
  ignore
    (Proc.spawn eng ~name:"gated" (fun () ->
         Logical_host.gate lh ();
         passed_at := Engine.now eng));
  ignore
    (Engine.schedule eng ~at:(ms 50.) (fun () ->
         Logical_host.set_frozen lh false;
         Logical_host.thaw lh));
  Engine.run eng;
  Alcotest.(check int) "released at thaw" 50_000 (Time.to_us !passed_at)

let test_lh_deferred_op_order () =
  let lh = Logical_host.create ~id:10 ~priority:Cpu.Foreground ~home:"x" in
  let d i =
    {
      Delivery.src = Ids.pid 1 16;
      dst = Ids.pid 10 1;
      txn = i;
      msg = Message.make Message.Ping;
      origin = Delivery.Local;
    }
  in
  Logical_host.defer_op lh (d 1);
  Logical_host.defer_op lh (d 2);
  let taken = Logical_host.take_deferred lh in
  Alcotest.(check (list int)) "fifo" [ 1; 2 ]
    (List.map (fun (x : Delivery.t) -> x.Delivery.txn) taken);
  Alcotest.(check int) "emptied" 0 (List.length (Logical_host.take_deferred lh))

(* {1 The paper's creation order: exist first, run later} *)

let test_create_then_start_process () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let vp = Kernel.create_process k lh in
  (* The process exists and is addressable before it runs: a send to it
     queues. *)
  let client_done = ref false in
  let clh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k clh ~name:"client" (fun cvp ->
         match
           Kernel.send k ~src:(Vproc.pid cvp) ~dst:(Vproc.pid vp)
             (Message.make Message.Ping)
         with
         | Ok m when m.Message.body = Message.Pong -> client_done := true
         | _ -> ()));
  (* Start the body 100 ms later; it answers the queued request. *)
  ignore
    (Engine.schedule fx.eng ~at:(ms 100.) (fun () ->
         Kernel.start_process k vp ~name:"late-server" (fun vp ->
             let d = Kernel.receive k vp in
             Kernel.reply k d (Message.make Message.Pong))));
  Engine.run fx.eng ~until:(sec 5.);
  Alcotest.(check bool) "queued request answered after start" true !client_done

(* {1 Cost accounting} *)

let test_group_lookup_surcharge () =
  (* Sending to the kernel server via its local-group id must cost the
     group_lookup surcharge relative to a direct-pid send of the same
     shape. *)
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let ks_group = Ids.kernel_server_of (Logical_host.id (Kernel.host_lh k)) in
  let spans = ref [] in
  ignore
    (Kernel.spawn_process k lh ~name:"prober" (fun vp ->
         let self = Vproc.pid vp in
         let time_one dst =
           let t0 = Engine.now fx.eng in
           ignore (Kernel.send k ~src:self ~dst (Message.make Kernel.Ks_ping));
           Time.to_us (Time.sub (Engine.now fx.eng) t0)
         in
         (* Warm first, then measure. *)
         ignore (time_one ks_group);
         spans := [ time_one ks_group ]));
  Engine.run fx.eng ~until:(sec 5.);
  match !spans with
  | [ group_send ] ->
      let p = Os_params.default in
      let base =
        (2 * Time.to_us p.Os_params.local_op)
        + (2 * Time.to_us p.Os_params.frozen_check)
      in
      let expected = base + Time.to_us p.Os_params.group_lookup in
      Alcotest.(check int) "send+reply+lookup" expected group_send
  | _ -> Alcotest.fail "no measurement"

let test_zero_overhead_params () =
  (* With the migration-support overheads ablated, a local round trip is
     exactly two base ops. *)
  let params =
    {
      Os_params.default with
      Os_params.frozen_check = Time.zero;
      group_lookup = Time.zero;
    }
  in
  let fx = setup ~hosts:1 ~params () in
  let k = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let span = ref 0 in
  ignore
    (Kernel.spawn_process k lh ~name:"prober" (fun vp ->
         let self = Vproc.pid vp in
         let ks = Ids.kernel_server_of (Logical_host.id (Kernel.host_lh k)) in
         let t0 = Engine.now fx.eng in
         ignore (Kernel.send k ~src:self ~dst:ks (Message.make Kernel.Ks_ping));
         span := Time.to_us (Time.sub (Engine.now fx.eng) t0)));
  Engine.run fx.eng ~until:(sec 5.);
  Alcotest.(check int) "two base ops"
    (2 * Time.to_us Os_params.default.Os_params.local_op)
    !span

(* {1 Hard migration interleavings} *)

let echo_server fx k =
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let served = ref 0 in
  let vp =
    Kernel.spawn_process k lh ~name:"echo" (fun vp ->
        let rec loop () =
          let cur =
            (* Receive via whichever kernel hosts us now. *)
            Array.to_list fx.kernels
            |> List.find (fun k -> Kernel.find_lh k (Vproc.pid vp).Ids.lh <> None)
          in
          let d = Kernel.receive cur vp in
          incr served;
          Kernel.reply cur d (Message.make Message.Pong);
          loop ()
        in
        loop ())
  in
  (lh, Vproc.pid vp, served)

let migrate_lh ~from_k ~to_k lh =
  Kernel.freeze_lh from_k lh;
  let st = Kernel.extract_lh from_k lh in
  let lh' = Kernel.install_lh to_k st in
  Kernel.unfreeze_lh to_k lh';
  Kernel.announce_lh to_k (Logical_host.id lh')

let test_multi_hop_migration_chain () =
  let fx = setup ~hosts:4 () in
  let server_lh, pid, served = echo_server fx fx.kernels.(1) in
  (* Hop the server ws1 -> ws2 -> ws3 -> ws1 while a client pings every
     200 ms. Every ping must be answered exactly once. *)
  let hops = [ (1, 2); (2, 3); (3, 1) ] in
  List.iteri
    (fun i (a, b) ->
      ignore
        (Engine.schedule fx.eng
           ~at:(ms (float_of_int ((i + 1) * 700)))
           (fun () ->
             ignore
               (Proc.spawn fx.eng ~name:"migrator" (fun () ->
                    migrate_lh ~from_k:fx.kernels.(a) ~to_k:fx.kernels.(b)
                      server_lh)))))
    hops;
  let ok = ref 0 in
  let clh = Kernel.create_logical_host fx.kernels.(0) ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process fx.kernels.(0) clh ~name:"client" (fun vp ->
         for _ = 1 to 15 do
           (match
              Kernel.send fx.kernels.(0) ~src:(Vproc.pid vp) ~dst:pid
                (Message.make Message.Ping)
            with
           | Ok _ -> incr ok
           | Error _ -> ());
           Proc.sleep fx.eng (ms 200.)
         done));
  Engine.run fx.eng ~until:(sec 60.);
  Alcotest.(check int) "every ping answered" 15 !ok;
  Alcotest.(check int) "exactly once each" 15 !served;
  Alcotest.(check bool) "ended on ws1" true
    (Kernel.find_lh fx.kernels.(1) (Logical_host.id server_lh) <> None)

let test_simultaneous_swap () =
  (* Two logical hosts cross-migrate between the same pair of kernels at
     the same instant. *)
  let fx = setup ~hosts:2 () in
  let lh_a, pid_a, served_a = echo_server fx fx.kernels.(0) in
  let lh_b, pid_b, served_b = echo_server fx fx.kernels.(1) in
  ignore
    (Engine.schedule fx.eng ~at:(ms 100.) (fun () ->
         ignore
           (Proc.spawn fx.eng ~name:"m1" (fun () ->
                migrate_lh ~from_k:fx.kernels.(0) ~to_k:fx.kernels.(1) lh_a));
         ignore
           (Proc.spawn fx.eng ~name:"m2" (fun () ->
                migrate_lh ~from_k:fx.kernels.(1) ~to_k:fx.kernels.(0) lh_b))));
  let ok = ref 0 in
  let clh = Kernel.create_logical_host fx.kernels.(0) ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process fx.kernels.(0) clh ~name:"client" (fun vp ->
         Proc.sleep fx.eng (ms 500.);
         (match
            Kernel.send fx.kernels.(0) ~src:(Vproc.pid vp) ~dst:pid_a
              (Message.make Message.Ping)
          with
         | Ok _ -> incr ok
         | Error _ -> ());
         match
           Kernel.send fx.kernels.(0) ~src:(Vproc.pid vp) ~dst:pid_b
             (Message.make Message.Ping)
         with
         | Ok _ -> incr ok
         | Error _ -> ()));
  Engine.run fx.eng ~until:(sec 30.);
  Alcotest.(check int) "both reachable after swap" 2 !ok;
  Alcotest.(check int) "a served once" 1 !served_a;
  Alcotest.(check int) "b served once" 1 !served_b;
  Alcotest.(check bool) "a on ws1" true
    (Kernel.find_lh fx.kernels.(1) (Logical_host.id lh_a) <> None);
  Alcotest.(check bool) "b on ws0" true
    (Kernel.find_lh fx.kernels.(0) (Logical_host.id lh_b) <> None)

let test_binding_stats_after_migration () =
  let fx = setup ~hosts:3 () in
  let server_lh, pid, _ = echo_server fx fx.kernels.(1) in
  let k0 = fx.kernels.(0) in
  let clh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k0 clh ~name:"client" (fun vp ->
         ignore (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping));
         (* Binding cached; migration announces the new binding. *)
         Proc.sleep fx.eng (ms 100.);
         migrate_lh ~from_k:fx.kernels.(1) ~to_k:fx.kernels.(2) server_lh;
         Proc.sleep fx.eng (ms 50.);
         (* The Here_is announcement should have rebound us without a
            Where_is query. *)
         let before = Kernel.stat k0 "where_is" in
         ignore (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping));
         Alcotest.(check int) "no extra query after announce" before
           (Kernel.stat k0 "where_is")));
  Engine.run fx.eng ~until:(sec 30.)

(* {1 Memory and reservations} *)

let test_memory_accounting_with_reservation () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let free0 = Kernel.memory_free k in
  Alcotest.(check bool) "reserve ok" true
    (Kernel.reserve_lh k ~temp_lh:999 ~bytes:(256 * 1024));
  Alcotest.(check int) "reservation counted" (free0 - (256 * 1024))
    (Kernel.memory_free k);
  Kernel.cancel_reservation k ~temp_lh:999;
  Alcotest.(check int) "restored" free0 (Kernel.memory_free k)

let test_reservation_refused_when_broke () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  Alcotest.(check bool) "too big" false
    (Kernel.reserve_lh k ~temp_lh:998 ~bytes:(64 * 1024 * 1024))

let test_lh_occupies_memory () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let free0 = Kernel.memory_free k in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Background in
  let sp = Address_space.create ~code_bytes:(100 * 1024) ~data_bytes:0 ~active_bytes:0 () in
  Logical_host.add_space lh sp;
  Alcotest.(check int) "space charged" (free0 - (100 * 1024)) (Kernel.memory_free k);
  Kernel.destroy_logical_host k lh;
  Alcotest.(check int) "freed on destroy" free0 (Kernel.memory_free k)

(* {1 Groups: membership edge cases} *)

let test_leave_group_stops_delivery () =
  let fx = setup ~hosts:2 () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) in
  let group = Ids.pid 0x7FFF0005 1 in
  let hits = ref 0 in
  let lh = Kernel.create_logical_host k1 ~priority:Cpu.Foreground in
  let member =
    Kernel.spawn_process k1 lh ~name:"member" (fun vp ->
        let rec loop () =
          let d = Kernel.receive k1 vp in
          incr hits;
          Kernel.reply ~from:(Vproc.pid vp) k1 d (Message.make Message.Pong);
          loop ()
        in
        loop ())
  in
  Kernel.join_group k1 ~group member;
  let clh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k0 clh ~name:"querier" (fun vp ->
         let c =
           Kernel.send_group k0 ~src:(Vproc.pid vp) ~group (Message.make Message.Ping)
         in
         ignore (Kernel.collect_first k0 c ~timeout:(ms 200.));
         Kernel.leave_group k1 ~group member;
         let c2 =
           Kernel.send_group k0 ~src:(Vproc.pid vp) ~group (Message.make Message.Ping)
         in
         ignore (Kernel.collect_first k0 c2 ~timeout:(ms 200.))));
  Engine.run fx.eng ~until:(sec 5.);
  Alcotest.(check int) "only the pre-leave query delivered" 1 !hits

let test_late_group_reply_harmless () =
  (* A member that answers after the collector closed: the reply must be
     dropped without disturbing anything. *)
  let fx = setup ~hosts:2 () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) in
  let group = Ids.pid 0x7FFF0006 1 in
  let lh = Kernel.create_logical_host k1 ~priority:Cpu.Foreground in
  let member =
    Kernel.spawn_process k1 lh ~name:"slow-member" (fun vp ->
        let d = Kernel.receive k1 vp in
        Proc.sleep fx.eng (sec 1.);
        Kernel.reply ~from:(Vproc.pid vp) k1 d (Message.make Message.Pong))
  in
  Kernel.join_group k1 ~group member;
  let got = ref (Some ()) in
  let clh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k0 clh ~name:"querier" (fun vp ->
         let c =
           Kernel.send_group k0 ~src:(Vproc.pid vp) ~group (Message.make Message.Ping)
         in
         got := Option.map (fun _ -> ()) (Kernel.collect_first k0 c ~timeout:(ms 100.))));
  Engine.run fx.eng ~until:(sec 5.);
  Alcotest.(check bool) "timed out before slow reply" true (!got = None)

(* {1 Destroy / freeze interactions} *)

let test_destroy_frozen_logical_host () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Background in
  let ran_after = ref false in
  ignore
    (Kernel.spawn_process k lh ~name:"victim" (fun _ ->
         Proc.sleep fx.eng (ms 10.);
         Proc.sleep fx.eng (sec 100.);
         ran_after := true));
  ignore
    (Proc.spawn fx.eng ~name:"driver" (fun () ->
         Proc.sleep fx.eng (ms 50.);
         Kernel.freeze_lh k lh;
         Kernel.destroy_logical_host k lh));
  Engine.run fx.eng ~until:(sec 200.);
  Alcotest.(check bool) "victim never resumed" false !ran_after;
  Alcotest.(check bool) "gone" true (Kernel.find_lh k (Logical_host.id lh) = None)

let test_stat_unknown_is_zero () =
  let fx = setup ~hosts:1 () in
  Alcotest.(check int) "unknown stat" 0 (Kernel.stat fx.kernels.(0) "nonsense")

(* {1 Engine odds and ends} *)

let test_engine_max_steps () =
  let e = Engine.create () in
  let n = ref 0 in
  let rec chain () =
    incr n;
    ignore (Engine.schedule_after e (ms 1.) chain)
  in
  ignore (Engine.schedule_after e (ms 1.) chain);
  Engine.run e ~max_steps:10;
  Alcotest.(check int) "bounded" 10 !n

let test_self_kill_at_next_suspension () =
  let e = Engine.create () in
  let after = ref false in
  let p = ref None in
  let proc =
    Proc.spawn e ~name:"suicidal" (fun () ->
        (match !p with Some me -> Proc.kill me | None -> ());
        (* Still running: death lands at the next suspension point. *)
        Proc.sleep e (ms 1.);
        after := true)
  in
  p := Some proc;
  Engine.run e;
  Alcotest.(check bool) "did not resume" false !after;
  Alcotest.(check bool) "killed" true (Proc.status proc = Some Proc.Killed)

let () =
  Alcotest.run "v_os2"
    [
      ( "logical-host",
        [
          Alcotest.test_case "process indices" `Quick test_lh_process_indices;
          Alcotest.test_case "memory accounting" `Quick test_lh_memory_accounting;
          Alcotest.test_case "gate blocks while frozen" `Quick
            test_lh_gate_blocks_while_frozen;
          Alcotest.test_case "deferred op order" `Quick test_lh_deferred_op_order;
        ] );
      ( "process-creation",
        [
          Alcotest.test_case "exists before running" `Quick
            test_create_then_start_process;
        ] );
      ( "cost-accounting",
        [
          Alcotest.test_case "group lookup surcharge" `Quick
            test_group_lookup_surcharge;
          Alcotest.test_case "ablated overheads" `Quick test_zero_overhead_params;
        ] );
      ( "hard-interleavings",
        [
          Alcotest.test_case "multi-hop chain" `Quick
            test_multi_hop_migration_chain;
          Alcotest.test_case "simultaneous swap" `Quick test_simultaneous_swap;
          Alcotest.test_case "announce avoids re-query" `Quick
            test_binding_stats_after_migration;
        ] );
      ( "memory",
        [
          Alcotest.test_case "reservation accounting" `Quick
            test_memory_accounting_with_reservation;
          Alcotest.test_case "reservation refused when broke" `Quick
            test_reservation_refused_when_broke;
          Alcotest.test_case "logical host occupies memory" `Quick
            test_lh_occupies_memory;
        ] );
      ( "groups-extra",
        [
          Alcotest.test_case "leave group" `Quick test_leave_group_stops_delivery;
          Alcotest.test_case "late reply harmless" `Quick
            test_late_group_reply_harmless;
        ] );
      ( "destroy-freeze",
        [
          Alcotest.test_case "destroy frozen host" `Quick
            test_destroy_frozen_logical_host;
          Alcotest.test_case "unknown stat is zero" `Quick
            test_stat_unknown_is_zero;
        ] );
      ( "engine-extra",
        [
          Alcotest.test_case "max steps" `Quick test_engine_max_steps;
          Alcotest.test_case "self-kill lands at suspension" `Quick
            test_self_kill_at_next_suspension;
        ] );
    ]
