(* Tests for the V kernel substrate: IPC (local, remote, loss recovery,
   duplicate suppression), process groups, the binding cache, CPU
   scheduling, address-space dirty tracking, and kernel-level
   freeze/extract/install — the mechanics migration is built from. *)

let ms = Time.of_ms

type fixture = {
  eng : Engine.t;
  net : Packet.t Ethernet.t;
  kernels : Kernel.t array;
}

let setup ?(hosts = 2) ?(loss = 0.) ?(params = Os_params.default) () =
  let eng = Engine.create () in
  let rng = Rng.create 42 in
  let config = { Ethernet.default_config with loss_probability = loss } in
  let net = Ethernet.create ~config eng (Rng.split rng) in
  let tracer = Tracer.create eng in
  Tracer.set_enabled tracer false;
  let alloc = Ids.Lh_allocator.create () in
  let kernels =
    Array.init hosts (fun i ->
        Kernel.create ~engine:eng ~rng:(Rng.split rng) ~tracer ~params ~net
          ~station:(Addr.of_int i)
          ~host_name:(Printf.sprintf "ws%d" i)
          ~allocator:alloc
          ~memory_bytes:(2 * 1024 * 1024))
  in
  { eng; net; kernels }

(* A one-process server that answers [Ping] with [Pong] and counts the
   requests it actually received (for exactly-once checks). *)
let echo_server ?(delay = Time.zero) fx k =
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let served = ref 0 in
  let vp =
    Kernel.spawn_process k lh ~name:"echo" (fun vp ->
        let rec loop () =
          let d = Kernel.receive k vp in
          incr served;
          if Time.(delay > Time.zero) then Proc.sleep fx.eng delay;
          Kernel.reply k d (Message.make Message.Pong);
          loop ()
        in
        loop ())
  in
  (lh, Vproc.pid vp, served)

let client fx k ~dst msg =
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let result = ref None in
  let finished_at = ref Time.zero in
  ignore
    (Kernel.spawn_process k lh ~name:"client" (fun vp ->
         result := Some (Kernel.send k ~src:(Vproc.pid vp) ~dst msg);
         finished_at := Engine.now fx.eng));
  (result, finished_at)

let check_pong what = function
  | Some (Ok m) when m.Message.body = Message.Pong -> ()
  | Some (Ok _) -> Alcotest.failf "%s: wrong reply body" what
  | Some (Error e) ->
      Alcotest.failf "%s: send failed: %s" what
        (Format.asprintf "%a" Kernel.pp_send_error e)
  | None -> Alcotest.failf "%s: send never completed" what

(* {1 IPC basics} *)

let test_local_round_trip () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let _, pid, served = echo_server fx k in
  let result, finished = client fx k ~dst:pid (Message.make Message.Ping) in
  Engine.run fx.eng ~until:(Time.of_sec 1.);
  check_pong "local" !result;
  Alcotest.(check int) "served once" 1 !served;
  (* Local round trip is a few kernel ops: well under 5 ms. *)
  if Time.(!finished > ms 5.) then
    Alcotest.failf "local round trip too slow: %s" (Time.to_string !finished)

let test_remote_round_trip () =
  let fx = setup () in
  let _, pid, served = echo_server fx fx.kernels.(1) in
  let result, finished =
    client fx fx.kernels.(0) ~dst:pid (Message.make Message.Ping)
  in
  Engine.run fx.eng ~until:(Time.of_sec 1.);
  check_pong "remote" !result;
  Alcotest.(check int) "served once" 1 !served;
  (* Cold path includes a Where_is broadcast; still well under 20 ms. *)
  if Time.(!finished > ms 20.) then
    Alcotest.failf "remote round trip too slow: %s" (Time.to_string !finished)

let test_remote_second_send_uses_cache () =
  let fx = setup () in
  let _, pid, _ = echo_server fx fx.kernels.(1) in
  let k0 = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let first = ref Time.zero and second = ref Time.zero in
  ignore
    (Kernel.spawn_process k0 lh ~name:"client" (fun vp ->
         let t0 = Engine.now fx.eng in
         ignore (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping));
         first := Time.sub (Engine.now fx.eng) t0;
         let t1 = Engine.now fx.eng in
         ignore (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping));
         second := Time.sub (Engine.now fx.eng) t1));
  Engine.run fx.eng ~until:(Time.of_sec 1.);
  Alcotest.(check int) "one where_is total" 1 (Kernel.stat k0 "where_is");
  if Time.(!second >= !first) then
    Alcotest.failf "cached send (%s) not faster than cold send (%s)"
      (Time.to_string !second) (Time.to_string !first)

let test_send_to_nonexistent_times_out () =
  let fx = setup () in
  let ghost = Ids.pid 999 17 in
  let result, finished =
    client fx fx.kernels.(0) ~dst:ghost (Message.make Message.Ping)
  in
  Engine.run fx.eng ~until:(Time.of_sec 20.);
  (match !result with
  | Some (Error Kernel.No_response) -> ()
  | _ -> Alcotest.fail "expected No_response");
  (* Abandonment at the configured give-up horizon (5 s default). *)
  let waited = Time.to_sec !finished in
  if waited < 4.9 || waited > 6.0 then
    Alcotest.failf "gave up after %.2fs, expected ~5s" waited

let test_send_to_dead_process_on_live_host_fails_fast () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let missing = Ids.pid (Logical_host.id lh) 99 in
  let result, finished = client fx k ~dst:missing (Message.make Message.Ping) in
  Engine.run fx.eng ~until:(Time.of_sec 10.);
  (match !result with
  | Some (Error Kernel.No_response) -> ()
  | _ -> Alcotest.fail "expected No_response");
  if Time.(!finished > ms 10.) then
    Alcotest.fail "resident-host missing process should fail fast"

let test_loss_recovery_exactly_once () =
  (* 30% frame loss: sends must still complete, and duplicate suppression
     must keep each request's delivery to the server at exactly one. *)
  let fx = setup ~loss:0.3 () in
  let _, pid, served = echo_server fx fx.kernels.(1) in
  let k0 = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let ok = ref 0 in
  ignore
    (Kernel.spawn_process k0 lh ~name:"client" (fun vp ->
         for _ = 1 to 20 do
           match Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping) with
           | Ok _ -> incr ok
           | Error _ -> ()
         done));
  Engine.run fx.eng ~until:(Time.of_sec 120.);
  Alcotest.(check int) "all sends complete" 20 !ok;
  Alcotest.(check int) "exactly-once delivery" 20 !served;
  if Kernel.stat k0 "retransmissions" = 0 then
    Alcotest.fail "expected retransmissions under loss"

let test_slow_server_reply_pending_prevents_abort () =
  (* Server takes 12s to answer — far beyond the 5s give-up. The sender
     kernel's retransmissions elicit reply-pendings that keep resetting
     the abandonment clock (Section 3.1.3). *)
  let fx = setup () in
  let _, pid, _ = echo_server ~delay:(Time.of_sec 12.) fx fx.kernels.(1) in
  let result, finished =
    client fx fx.kernels.(0) ~dst:pid (Message.make Message.Ping)
  in
  Engine.run fx.eng ~until:(Time.of_sec 60.);
  check_pong "slow server" !result;
  let waited = Time.to_sec !finished in
  if waited < 12.0 then Alcotest.failf "finished too early: %.2fs" waited;
  if Kernel.stat fx.kernels.(1) "reply_pending" = 0 then
    Alcotest.fail "expected reply-pending packets"

let test_lost_reply_resent_from_cache () =
  (* Force the reply to be lost once: the duplicate request must re-elicit
     the retained reply rather than re-executing the server. *)
  let fx = setup () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) in
  let _, pid, served = echo_server fx k1 in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let result = ref None in
  ignore
    (Kernel.spawn_process k0 lh ~name:"client" (fun vp ->
         (* Warm the binding cache first. *)
         ignore (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping));
         (* Now lose everything briefly right as the request goes out;
            restore the wire before the retransmission. *)
         Ethernet.set_loss fx.net 1.0;
         ignore
           (Engine.schedule_after fx.eng (ms 150.) (fun () ->
                Ethernet.set_loss fx.net 0.));
         result := Some (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping))));
  Engine.run fx.eng ~until:(Time.of_sec 30.);
  check_pong "after loss" !result;
  Alcotest.(check int) "server not re-executed beyond two requests" 2 !served

(* {1 Group communication} *)

let test_group_send_collect_all () =
  let fx = setup ~hosts:3 () in
  let group = Ids.program_manager_group in
  (* A member on every host answers with its own id. *)
  Array.iter
    (fun k ->
      let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
      let vp =
        Kernel.spawn_process k lh ~name:"member" (fun vp ->
            let rec loop () =
              let d = Kernel.receive k vp in
              Kernel.reply ~from:(Vproc.pid vp) k d (Message.make Message.Pong);
              loop ()
            in
            loop ())
      in
      Kernel.join_group k ~group vp)
    fx.kernels;
  let k0 = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let replies = ref [] in
  ignore
    (Kernel.spawn_process k0 lh ~name:"querier" (fun vp ->
         let c =
           Kernel.send_group k0 ~src:(Vproc.pid vp) ~group
             (Message.make Message.Ping)
         in
         replies := Kernel.collect_within k0 c ~window:(ms 100.)));
  Engine.run fx.eng ~until:(Time.of_sec 1.);
  Alcotest.(check int) "three responders" 3 (List.length !replies);
  let senders = List.map fst !replies in
  let uniq = List.sort_uniq Ids.pid_compare senders in
  Alcotest.(check int) "distinct members" 3 (List.length uniq)

let test_group_collect_first_picks_earliest () =
  let fx = setup ~hosts:3 () in
  let group = Ids.program_manager_group in
  (* Hosts answer after different think times; the first responder must
     win — this is the paper's host-selection policy. *)
  let delays = [| ms 30.; ms 5.; ms 60. |] in
  Array.iteri
    (fun i k ->
      let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
      let vp =
        Kernel.spawn_process k lh ~name:"member" (fun vp ->
            let rec loop () =
              let d = Kernel.receive k vp in
              Proc.sleep fx.eng delays.(i);
              Kernel.reply ~from:(Vproc.pid vp) k d
                (Message.make (Message.Text (Kernel.host_name k)));
              loop ()
            in
            loop ())
      in
      Kernel.join_group k ~group vp)
    fx.kernels;
  let k0 = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let winner = ref None in
  ignore
    (Kernel.spawn_process k0 lh ~name:"querier" (fun vp ->
         let c =
           Kernel.send_group k0 ~src:(Vproc.pid vp) ~group
             (Message.make Message.Ping)
         in
         match Kernel.collect_first k0 c ~timeout:(Time.of_sec 1.) with
         | Some (_, m) -> winner := Some m.Message.body
         | None -> ()));
  Engine.run fx.eng ~until:(Time.of_sec 2.);
  match !winner with
  | Some (Message.Text name) -> Alcotest.(check string) "fastest host" "ws1" name
  | _ -> Alcotest.fail "no winner"

let test_group_collect_first_timeout () =
  let fx = setup () in
  let k0 = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let got = ref (Some ()) in
  ignore
    (Kernel.spawn_process k0 lh ~name:"querier" (fun vp ->
         let c =
           Kernel.send_group k0 ~src:(Vproc.pid vp)
             ~group:(Ids.pid 0x7FFF0001 1)
             (Message.make Message.Ping)
         in
         got :=
           Option.map
             (fun _ -> ())
             (Kernel.collect_first k0 c ~timeout:(ms 50.))));
  Engine.run fx.eng ~until:(Time.of_sec 1.);
  Alcotest.(check bool) "no members, no reply" true (!got = None)

(* {1 Kernel server} *)

let test_kernel_server_ping_via_local_group () =
  let fx = setup () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) in
  (* Address ws1's kernel server through the local-group id of ws1's own
     host logical host — from ws0, across the wire. *)
  let target = Ids.kernel_server_of (Logical_host.id (Kernel.host_lh k1)) in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let answer = ref None in
  ignore
    (Kernel.spawn_process k0 lh ~name:"pinger" (fun vp ->
         answer := Some (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:target (Message.make Kernel.Ks_ping))));
  Engine.run fx.eng ~until:(Time.of_sec 1.);
  match !answer with
  | Some (Ok m) when m.Message.body = Kernel.Ks_pong -> ()
  | _ -> Alcotest.fail "expected Ks_pong"

let test_kernel_server_load_query () =
  let fx = setup () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) in
  let target = Ids.kernel_server_of (Logical_host.id (Kernel.host_lh k1)) in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let answer = ref None in
  ignore
    (Kernel.spawn_process k0 lh ~name:"q" (fun vp ->
         answer := Some (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:target (Message.make Kernel.Ks_query_load))));
  Engine.run fx.eng ~until:(Time.of_sec 1.);
  match !answer with
  | Some (Ok { Message.body = Kernel.Ks_load { memory_free; guests; _ }; _ }) ->
      Alcotest.(check int) "no guests" 0 guests;
      Alcotest.(check int) "full memory" (2 * 1024 * 1024) memory_free
  | _ -> Alcotest.fail "expected Ks_load"

let test_remote_destroy_via_kernel_server () =
  let fx = setup () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) in
  let victim_lh, _, _ = echo_server fx k1 in
  let target = Ids.kernel_server_of (Logical_host.id (Kernel.host_lh k1)) in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  let answer = ref None in
  ignore
    (Kernel.spawn_process k0 lh ~name:"destroyer" (fun vp ->
         answer :=
           Some
             (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:target
                (Message.make (Kernel.Ks_destroy_lh (Logical_host.id victim_lh))))));
  Engine.run fx.eng ~until:(Time.of_sec 1.);
  (match !answer with
  | Some (Ok m) when m.Message.body = Kernel.Ks_ok -> ()
  | _ -> Alcotest.fail "expected Ks_ok");
  Alcotest.(check bool) "gone" true
    (Kernel.find_lh k1 (Logical_host.id victim_lh) = None)

(* {1 Freezing} *)

let test_freeze_defers_and_unfreeze_delivers () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let server_lh, pid, served = echo_server fx k in
  (* Freeze at 10ms, unfreeze at 200ms; a request sent at 50ms must be
     answered only after the thaw. *)
  ignore
    (Proc.spawn fx.eng ~name:"freezer" (fun () ->
         Proc.sleep fx.eng (ms 10.);
         Kernel.freeze_lh k server_lh;
         Proc.sleep fx.eng (ms 190.);
         Kernel.unfreeze_lh k server_lh));
  let result = ref None in
  let finished = ref Time.zero in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k lh ~name:"client" (fun vp ->
         Proc.sleep fx.eng (ms 50.);
         result := Some (Kernel.send k ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping));
         finished := Engine.now fx.eng));
  Engine.run fx.eng ~until:(Time.of_sec 2.);
  check_pong "deferred" !result;
  Alcotest.(check int) "served once" 1 !served;
  if Time.(!finished < ms 200.) then
    Alcotest.failf "answered while frozen (at %s)" (Time.to_string !finished)

let test_freeze_remote_sender_gets_reply_pending () =
  let fx = setup () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) in
  let server_lh, pid, _ = echo_server fx k1 in
  ignore
    (Proc.spawn fx.eng ~name:"freezer" (fun () ->
         Proc.sleep fx.eng (ms 10.);
         Kernel.freeze_lh k1 server_lh;
         Proc.sleep fx.eng (Time.of_sec 8.);
         (* longer than give-up: only reply-pendings keep the sender alive *)
         Kernel.unfreeze_lh k1 server_lh));
  let result = ref None in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k0 lh ~name:"client" (fun vp ->
         Proc.sleep fx.eng (ms 50.);
         result := Some (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping))));
  Engine.run fx.eng ~until:(Time.of_sec 30.);
  check_pong "survived long freeze" !result;
  if Kernel.stat k1 "reply_pending" = 0 then
    Alcotest.fail "expected reply-pending during freeze"

let test_freeze_stops_cpu_consumption () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Background in
  let cpu_done = ref Time.zero in
  ignore
    (Kernel.spawn_process k lh ~name:"cruncher" (fun _vp ->
         Cpu.compute ~owner:(Logical_host.id lh) ~gate:(Logical_host.gate lh)
           (Kernel.cpu k) ~priority:Cpu.Background (ms 100.);
         cpu_done := Engine.now fx.eng));
  ignore
    (Proc.spawn fx.eng ~name:"freezer" (fun () ->
         Proc.sleep fx.eng (ms 20.);
         Kernel.freeze_lh k lh;
         Proc.sleep fx.eng (ms 500.);
         Kernel.unfreeze_lh k lh));
  Engine.run fx.eng ~until:(Time.of_sec 2.);
  (* 100ms of work interrupted by a 500ms freeze at 20ms: finishes near
     620ms, certainly not before the thaw. *)
  if Time.(!cpu_done < ms 520.) then
    Alcotest.failf "computed through the freeze (done at %s)"
      (Time.to_string !cpu_done)

(* {1 Kernel-level migration: extract / install} *)

let migrate_lh fx ~from_k ~to_k lh =
  Kernel.freeze_lh from_k lh;
  let st = Kernel.extract_lh from_k lh in
  let lh' = Kernel.install_lh to_k st in
  Kernel.unfreeze_lh to_k lh';
  Kernel.announce_lh to_k (Logical_host.id lh');
  ignore fx

let test_migrate_idle_server_then_reach_it () =
  let fx = setup ~hosts:3 () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) and k2 = fx.kernels.(2) in
  let server_lh, pid, served = echo_server fx k1 in
  ignore
    (Proc.spawn fx.eng ~name:"migrator" (fun () ->
         Proc.sleep fx.eng (ms 100.);
         migrate_lh fx ~from_k:k1 ~to_k:k2 server_lh));
  let result = ref None in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k0 lh ~name:"client" (fun vp ->
         (* Talk to it before the move (caches the old binding), then
            after: the stale cache entry must be invalidated and rebound. *)
         ignore (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping));
         Proc.sleep fx.eng (ms 300.);
         result := Some (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping))));
  Engine.run fx.eng ~until:(Time.of_sec 10.);
  check_pong "after migration" !result;
  Alcotest.(check int) "both served" 2 !served;
  Alcotest.(check bool) "resident at ws2" true
    (Kernel.find_lh k2 (Logical_host.id server_lh) <> None);
  Alcotest.(check bool) "gone from ws1" true
    (Kernel.find_lh k1 (Logical_host.id server_lh) = None)

let test_migrate_while_request_in_service () =
  (* The hard case: the server received a request, is mid-service, and the
     logical host moves before it replies. The reply must still reach the
     blocked client, from the new host. *)
  let fx = setup ~hosts:3 () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) and k2 = fx.kernels.(2) in
  let server_lh, pid, served = echo_server ~delay:(ms 400.) fx k1 in
  ignore
    (Proc.spawn fx.eng ~name:"migrator" (fun () ->
         (* Freeze lands inside the server's 400ms service window. *)
         Proc.sleep fx.eng (ms 100.);
         migrate_lh fx ~from_k:k1 ~to_k:k2 server_lh));
  let result = ref None in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k0 lh ~name:"client" (fun vp ->
         result := Some (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping))));
  Engine.run fx.eng ~until:(Time.of_sec 30.);
  check_pong "reply from new host" !result;
  Alcotest.(check int) "serviced exactly once" 1 !served

let test_migrate_with_queued_request () =
  (* A request queued (delivered but not yet received) at migration time
     is discarded with the old copy; the sender's retransmission must
     deliver it at the new host (Section 3.1.3). *)
  let fx = setup ~hosts:3 () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) and k2 = fx.kernels.(2) in
  (* Server sleeps 300ms before its first receive, so an early request
     waits in the queue. *)
  let server_lh = Kernel.create_logical_host k1 ~priority:Cpu.Foreground in
  let served = ref 0 in
  let server_vp =
    Kernel.spawn_process k1 server_lh ~name:"lazy-echo" (fun vp ->
        Proc.sleep fx.eng (ms 300.);
        let rec loop () =
          (* After migration this kernel handle is stale for receives, so
             the loop must use the kernel the host now lives on. *)
          let k = if Kernel.find_lh k1 (Vproc.pid vp).Ids.lh <> None then k1 else k2 in
          let d = Kernel.receive k vp in
          incr served;
          Kernel.reply k d (Message.make Message.Pong);
          loop ()
        in
        loop ())
  in
  let pid = Vproc.pid server_vp in
  ignore
    (Proc.spawn fx.eng ~name:"migrator" (fun () ->
         Proc.sleep fx.eng (ms 100.);
         migrate_lh fx ~from_k:k1 ~to_k:k2 server_lh));
  let result = ref None in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k0 lh ~name:"client" (fun vp ->
         Proc.sleep fx.eng (ms 20.);
         result := Some (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping))));
  Engine.run fx.eng ~until:(Time.of_sec 30.);
  check_pong "queued request redelivered" !result;
  Alcotest.(check int) "exactly once" 1 !served

let test_migrating_client_keeps_outstanding_send () =
  (* The migrating logical host is the CLIENT: its outstanding send (the
     kernel state of Section 3.1.3) moves with it, keeps retransmitting
     from the new host, and the reply is collected there. *)
  let fx = setup ~hosts:3 () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) and k2 = fx.kernels.(2) in
  let _, pid, served = echo_server ~delay:(ms 500.) fx k0 in
  let client_lh = Kernel.create_logical_host k1 ~priority:Cpu.Background in
  let result = ref None in
  ignore
    (Kernel.spawn_process k1 client_lh ~name:"client" (fun vp ->
         result := Some (Kernel.send k1 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping))));
  ignore
    (Proc.spawn fx.eng ~name:"migrator" (fun () ->
         Proc.sleep fx.eng (ms 100.);
         migrate_lh fx ~from_k:k1 ~to_k:k2 client_lh));
  Engine.run fx.eng ~until:(Time.of_sec 30.);
  check_pong "reply reached migrated client" !result;
  Alcotest.(check int) "server ran once" 1 !served

let test_destroy_fails_local_senders () =
  let fx = setup ~hosts:1 () in
  let k = fx.kernels.(0) in
  let server_lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  (* A server that never receives. *)
  let vp =
    Kernel.spawn_process k server_lh ~name:"black-hole" (fun _ ->
        Proc.sleep fx.eng (Time.of_sec 3600.))
  in
  let result = ref None in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k lh ~name:"client" (fun cvp ->
         result :=
           Some (Kernel.send k ~src:(Vproc.pid cvp) ~dst:(Vproc.pid vp) (Message.make Message.Ping))));
  ignore
    (Engine.schedule fx.eng ~at:(ms 100.) (fun () ->
         Kernel.destroy_logical_host k server_lh));
  Engine.run fx.eng ~until:(Time.of_sec 10.);
  match !result with
  | Some (Error Kernel.No_response) -> ()
  | _ -> Alcotest.fail "local sender must fail when target host destroyed"

let test_shutdown_makes_sends_fail () =
  let fx = setup () in
  let k0 = fx.kernels.(0) and k1 = fx.kernels.(1) in
  let _, pid, _ = echo_server fx k1 in
  ignore (Engine.schedule fx.eng ~at:(ms 10.) (fun () -> Kernel.shutdown k1));
  let result = ref None in
  let lh = Kernel.create_logical_host k0 ~priority:Cpu.Foreground in
  ignore
    (Kernel.spawn_process k0 lh ~name:"client" (fun vp ->
         Proc.sleep fx.eng (ms 50.);
         result := Some (Kernel.send k0 ~src:(Vproc.pid vp) ~dst:pid (Message.make Message.Ping))));
  Engine.run fx.eng ~until:(Time.of_sec 30.);
  match !result with
  | Some (Error Kernel.No_response) -> ()
  | _ -> Alcotest.fail "send to crashed host must fail"

(* {1 CPU scheduling} *)

let test_cpu_foreground_priority () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~quantum:(ms 10.) in
  let fg_done = ref Time.zero and bg_done = ref Time.zero in
  ignore
    (Proc.spawn e ~name:"bg" (fun () ->
         Cpu.compute cpu ~priority:Cpu.Background (ms 100.);
         bg_done := Engine.now e));
  ignore
    (Proc.spawn e ~name:"fg" (fun () ->
         Cpu.compute cpu ~priority:Cpu.Foreground (ms 100.);
         fg_done := Engine.now e));
  Engine.run e;
  if Time.(!fg_done >= !bg_done) then
    Alcotest.fail "foreground must finish before background";
  (* Both done: 200ms of demand on one CPU. *)
  Alcotest.(check int) "total makespan" 200_000 (Time.to_us (Time.max !fg_done !bg_done))

let test_cpu_round_robin_fair () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~quantum:(ms 10.) in
  let d1 = ref Time.zero and d2 = ref Time.zero in
  ignore
    (Proc.spawn e ~name:"a" (fun () ->
         Cpu.compute cpu ~priority:Cpu.Background (ms 50.);
         d1 := Engine.now e));
  ignore
    (Proc.spawn e ~name:"b" (fun () ->
         Cpu.compute cpu ~priority:Cpu.Background (ms 50.);
         d2 := Engine.now e));
  Engine.run e;
  (* Interleaved: both finish within one quantum of 100ms. *)
  let worst = Time.max !d1 !d2 and best = Time.min !d1 !d2 in
  Alcotest.(check int) "makespan" 100_000 (Time.to_us worst);
  if Time.to_us best < 90_000 then
    Alcotest.fail "round robin should keep finish times close"

let test_cpu_busy_fraction () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~quantum:(ms 10.) in
  ignore
    (Proc.spawn e ~name:"a" (fun () ->
         Cpu.compute cpu ~priority:Cpu.Foreground (ms 30.)));
  Engine.run e ~until:(ms 60.);
  let f = Cpu.busy_fraction cpu in
  if f < 0.45 || f > 0.55 then Alcotest.failf "busy fraction %.3f, expected ~0.5" f

(* {1 Address spaces} *)

let test_space_geometry () =
  let sp =
    Address_space.create ~code_bytes:100_000 ~data_bytes:25_000
      ~active_bytes:50_000 ()
  in
  Alcotest.(check int) "code pages" 98 (Address_space.segment_pages sp Address_space.Code);
  Alcotest.(check int) "data pages" 25 (Address_space.segment_pages sp Address_space.Initialized_data);
  Alcotest.(check int) "active pages" 49 (Address_space.segment_pages sp Address_space.Active_data);
  Alcotest.(check int) "total" 172 (Address_space.pages sp);
  Alcotest.(check int) "bytes" (172 * 1024) (Address_space.bytes sp)

let test_space_dirty_tracking () =
  let sp =
    Address_space.create ~code_bytes:0 ~data_bytes:0 ~active_bytes:10_240 ()
  in
  Address_space.touch sp 3;
  Address_space.touch sp 3;
  Address_space.touch sp 7;
  Alcotest.(check int) "dirty count" 2 (Address_space.dirty_count sp);
  Alcotest.(check (list int)) "snapshot" [ 3; 7 ] (Address_space.snapshot_dirty sp);
  Alcotest.(check bool) "is_dirty" true (Address_space.is_dirty sp 3);
  Alcotest.(check int) "clear returns" 2 (Address_space.clear_dirty sp);
  Alcotest.(check int) "clean after" 0 (Address_space.dirty_count sp)

let test_space_fill_all () =
  let sp =
    Address_space.create ~code_bytes:2048 ~data_bytes:0 ~active_bytes:2048 ()
  in
  Address_space.fill_all_dirty sp;
  Alcotest.(check int) "all dirty" 4 (Address_space.dirty_count sp)

let prop_space_dirty_consistent =
  QCheck.Test.make ~name:"dirty_count equals snapshot length" ~count:100
    QCheck.(list (int_bound 63))
    (fun touches ->
      let sp =
        Address_space.create ~code_bytes:0 ~data_bytes:0 ~active_bytes:(64 * 1024) ()
      in
      List.iter (Address_space.touch sp) touches;
      Address_space.dirty_count sp
      = List.length (Address_space.snapshot_dirty sp)
      && Address_space.dirty_count sp
         = List.length (List.sort_uniq Int.compare touches))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "v_os"
    [
      ( "ipc",
        [
          Alcotest.test_case "local round trip" `Quick test_local_round_trip;
          Alcotest.test_case "remote round trip" `Quick test_remote_round_trip;
          Alcotest.test_case "binding cache reuse" `Quick
            test_remote_second_send_uses_cache;
          Alcotest.test_case "nonexistent target times out" `Quick
            test_send_to_nonexistent_times_out;
          Alcotest.test_case "dead pid fails fast" `Quick
            test_send_to_dead_process_on_live_host_fails_fast;
          Alcotest.test_case "loss: exactly-once" `Quick
            test_loss_recovery_exactly_once;
          Alcotest.test_case "reply-pending prevents abort" `Quick
            test_slow_server_reply_pending_prevents_abort;
          Alcotest.test_case "lost reply resent from cache" `Quick
            test_lost_reply_resent_from_cache;
        ] );
      ( "groups",
        [
          Alcotest.test_case "collect all" `Quick test_group_send_collect_all;
          Alcotest.test_case "first responder wins" `Quick
            test_group_collect_first_picks_earliest;
          Alcotest.test_case "collect_first timeout" `Quick
            test_group_collect_first_timeout;
        ] );
      ( "kernel-server",
        [
          Alcotest.test_case "ping via local group" `Quick
            test_kernel_server_ping_via_local_group;
          Alcotest.test_case "load query" `Quick test_kernel_server_load_query;
          Alcotest.test_case "remote destroy" `Quick
            test_remote_destroy_via_kernel_server;
        ] );
      ( "freeze",
        [
          Alcotest.test_case "defer and deliver" `Quick
            test_freeze_defers_and_unfreeze_delivers;
          Alcotest.test_case "reply-pending during freeze" `Quick
            test_freeze_remote_sender_gets_reply_pending;
          Alcotest.test_case "stops cpu" `Quick test_freeze_stops_cpu_consumption;
        ] );
      ( "migration-mechanics",
        [
          Alcotest.test_case "idle server" `Quick
            test_migrate_idle_server_then_reach_it;
          Alcotest.test_case "request in service" `Quick
            test_migrate_while_request_in_service;
          Alcotest.test_case "queued request" `Quick
            test_migrate_with_queued_request;
          Alcotest.test_case "client migrates" `Quick
            test_migrating_client_keeps_outstanding_send;
          Alcotest.test_case "destroy fails local senders" `Quick
            test_destroy_fails_local_senders;
          Alcotest.test_case "crash fails senders" `Quick
            test_shutdown_makes_sends_fail;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "foreground priority" `Quick
            test_cpu_foreground_priority;
          Alcotest.test_case "round robin" `Quick test_cpu_round_robin_fair;
          Alcotest.test_case "busy fraction" `Quick test_cpu_busy_fraction;
        ] );
      ( "address-space",
        Alcotest.test_case "geometry" `Quick test_space_geometry
        :: Alcotest.test_case "dirty tracking" `Quick test_space_dirty_tracking
        :: Alcotest.test_case "fill all" `Quick test_space_fill_all
        :: qcheck [ prop_space_dirty_consistent ] );
    ]
