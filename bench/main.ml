(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4), plus Bechamel micro-benchmarks of the
   simulator's hot paths.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- <name>       -- one experiment
                                                 (table-4-1, exec-cost, copy-rate,
                                                  kernel-state, freeze-time,
                                                  vm-flush, overheads, space-cost,
                                                  usage, strategies, bechamel, ...)
     dune exec bench/main.exe -- -j N         -- replica parallelism (domains)
     dune exec bench/main.exe -- --quick      -- reduced reps, no bechamel
     dune exec bench/main.exe -- --json FILE  -- machine-readable results
     dune exec bench/main.exe -- --check-json FILE  -- validate a results file

   Per-cell cluster runs are independent seeded replicas, fanned out on
   OCaml 5 domains via [Parrun]; results merge in job-index order, so
   the human-readable tables are byte-identical for any [-j].

   Absolute numbers are calibrated (Config / Os_params / Transfer
   document each constant's provenance); what these benches establish is
   that the *shapes* the paper reports emerge from the mechanisms. *)

module Sim_time = Time
(* [open Bechamel] below shadows [Time]; the simulator's module stays
   reachable as [Sim_time]. *)

let sec = Time.of_sec
let banner title = Printf.printf "\n=== %s ===\n%!" title
let row fmt = Printf.printf (fmt ^^ "\n%!")

(* {1 Harness state: parallelism, event accounting, JSON report} *)

let quick = ref false
let jobs = ref (Parrun.default_jobs ())

(* Every cluster any experiment builds — including inside parallel jobs
   on worker domains — is registered here so the driver can report
   events fired (and thus events/sec) per experiment. Reads happen only
   after [Parrun.run] returns, i.e. after the worker domains joined. *)
let registry_mu = Mutex.create ()
let registry : Cluster.t list ref = ref []

(* Raw engines (no cluster wrapper) used by the core microbenches count
   toward the same per-experiment event totals. *)
let engine_registry : Engine.t list ref = ref []

let register cl =
  Mutex.lock registry_mu;
  registry := cl :: !registry;
  Mutex.unlock registry_mu

let register_engine e =
  Mutex.lock registry_mu;
  engine_registry := e :: !engine_registry;
  Mutex.unlock registry_mu

let drain_events () =
  Mutex.lock registry_mu;
  let cls = !registry in
  let engines = !engine_registry in
  registry := [];
  engine_registry := [];
  Mutex.unlock registry_mu;
  List.fold_left
    (fun acc cl -> acc + Engine.events_fired (Cluster.engine cl))
    (List.fold_left (fun acc e -> acc + Engine.events_fired e) 0 engines)
    cls

let mk_cluster ?seed ?workstations ?bridged ?cfg ?net_config ?disk_us_per_kb
    ?faults ?trace () =
  let cl =
    Cluster.create ?seed ?workstations ?bridged ?cfg ?net_config
      ?disk_us_per_kb ?faults ?trace ()
  in
  register cl;
  cl

let fresh_cluster ?(seed = 1985) ?(workstations = 6) () =
  mk_cluster ~seed ~workstations ()

let par thunks = Parrun.run ~jobs:!jobs thunks

(* Headline numbers for the JSON report; recorded from the main domain
   while formatting, never from inside jobs. *)
let metrics : (string * float) list ref = ref []
let metric name v = metrics := (name, v) :: !metrics

(* Structured sub-reports: experiments that have a [to_json] on their
   result type serialize it whole instead of hand-picking fields. *)
let details : (string * Json_min.t) list ref = ref []
let detail name j = details := (name, j) :: !details

let ok what = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "%s failed: %s\n%!" what e;
      exit 1

(* {1 Table 4-1: dirty page generation rates} *)

let table_4_1 () =
  banner "Table 4-1: dirty page generation (KB of unique pages per window)";
  row "%-16s | %23s | %23s | %23s" "" "0.2 s window" "1 s window" "3 s window";
  row "%-16s | %7s %7s %7s | %7s %7s %7s | %7s %7s %7s" "program" "paper"
    "model" "meas" "paper" "model" "meas" "paper" "model" "meas";
  row "%s" (String.make 94 '-');
  let windows =
    if !quick then [ (0.2, 2); (1.0, 1); (3.0, 1) ]
    else [ (0.2, 5); (1.0, 4); (3.0, 3) ]
  in
  (* One job per (program, window, rep): each rep is an independent
     replica on its own fresh 2-workstation cluster. *)
  let cells =
    List.concat
      (List.mapi
         (fun i (name, _) ->
           List.concat
             (List.mapi
                (fun wi (w, reps) ->
                  List.init reps (fun r -> (i, name, wi, w, r)))
                windows))
         Programs.table_4_1)
  in
  let measured =
    par
      (List.map
         (fun (i, name, wi, w, r) () ->
           let seed = 100 + i + (1000 * ((wi * 8) + r + 1)) in
           let cl = mk_cluster ~seed ~workstations:2 () in
           match Experiment.dirty_rate cl ~prog:name ~window:(sec w) ~reps:1 () with
           | Ok kb -> ((i, wi), Some kb)
           | Error e ->
               Printf.eprintf "dirty_rate %s/%.1fs: %s\n%!" name w e;
               ((i, wi), None))
         cells)
  in
  let mean i wi =
    match
      List.filter_map (fun (k, v) -> if k = (i, wi) then v else None) measured
    with
    | [] -> nan
    | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  List.iteri
    (fun i (name, (triple : Calibrate.triple)) ->
      let spec = Programs.find name in
      let model t = Dirty_model.expected_unique_kb spec.Programs.dirty t in
      row "%-16s | %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f"
        name triple.Calibrate.u02 (model 0.2) (mean i 0) triple.Calibrate.u1
        (model 1.0) (mean i 1) triple.Calibrate.u3 (model 3.0) (mean i 2))
    Programs.table_4_1;
  row "%s" (String.make 94 '-');
  row
    "paper = Table 4-1; model = fitted hot/cold closed form; meas = simulated \
     program, dirty bits sampled";
  let errs =
    List.mapi
      (fun i (_, (t : Calibrate.triple)) ->
        Float.abs (mean i 1 -. t.Calibrate.u1))
      Programs.table_4_1
  in
  metric "mean_abs_err_1s_kb"
    (List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs))

(* {1 E-exec: remote execution cost split (Section 4.1)} *)

let exec_cost () =
  banner "E-exec: remote execution cost split (Section 4.1)";
  (* Host selection: first response to the multicast query. One shared
     cluster, sampled sequentially in virtual time — inherently serial. *)
  let samples = 15 in
  let sel = Stats.Summary.create () in
  let cl = fresh_cluster ~workstations:8 () in
  ignore
    (Cluster.user cl ~ws:0 ~name:"selector" (fun k self ->
         for _ = 1 to samples do
           (match
              Scheduler.Spine.select_in_group ~group:Ids.program_manager_group k (Cluster.cfg cl) ~self ~bytes:(64 * 1024)
            with
           | Ok s ->
               Stats.Summary.record sel (Time.to_ms s.Scheduler.s_responded_in)
           | Error _ -> ());
           Proc.sleep (Cluster.engine cl) (sec 1.)
         done));
  Cluster.run cl ~until:(sec 60.);
  row "host selection (first response): paper 23 ms";
  row "  measured over %d queries: mean %.1f ms  min %.1f  max %.1f"
    (Stats.Summary.count sel) (Stats.Summary.mean sel) (Stats.Summary.min sel)
    (Stats.Summary.max sel);
  metric "selection_mean_ms" (Stats.Summary.mean sel);
  (* Environment setup + destroy. *)
  let cl = fresh_cluster () in
  let r = ok "exec" (Experiment.remote_exec cl ~prog:"cc68" ()) in
  let cfg = Cluster.cfg cl in
  row "environment setup + destroy: paper 40 ms";
  row "  measured setup %.1f ms + configured destroy %.1f ms = %.1f ms"
    (Time.to_ms r.Experiment.er_setup)
    (Time.to_ms cfg.Config.env_destroy)
    (Time.to_ms r.Experiment.er_setup +. Time.to_ms cfg.Config.env_destroy);
  metric "env_setup_ms" (Time.to_ms r.Experiment.er_setup);
  detail "remote_exec_cc68" (Experiment.exec_result_to_json r);
  (* Program loading vs image size: one replica per program. *)
  row "program loading: paper 330 ms per 100 KB (sweep over real images)";
  row "  %-16s %10s %10s %12s" "program" "image KB" "load ms" "ms/100KB";
  let loads =
    par
      (List.map
         (fun name () ->
           let spec = Programs.find name in
           let kb =
             float_of_int (File_server.image_file_bytes spec.Programs.image)
             /. 1024.
           in
           let cl = fresh_cluster () in
           let r = ok "exec" (Experiment.remote_exec cl ~prog:name ()) in
           (name, kb, Time.to_ms r.Experiment.er_load))
         [ "cc68"; "make"; "assembler"; "optimizer"; "linking loader"; "tex" ])
  in
  List.iter
    (fun (name, kb, load) ->
      row "  %-16s %10.0f %10.0f %12.0f" name kb load (load /. (kb /. 100.)))
    loads;
  let per100 =
    List.map (fun (_, kb, load) -> load /. (kb /. 100.)) loads
  in
  metric "load_ms_per_100kb"
    (List.fold_left ( +. ) 0. per100 /. float_of_int (List.length per100))

(* {1 E-copy: address-space copy rate (Section 4.1)} *)

let copy_rate () =
  banner "E-copy: inter-host bulk copy (paper: 3 s per megabyte)";
  row "  %10s %12s %10s" "KB" "seconds" "s/MB";
  let results =
    par
      (List.map
         (fun kb () ->
           let cl = fresh_cluster () in
           (kb, Experiment.copy_rate cl ~bytes:(kb * 1024)))
         [ 256; 512; 1024; 2048 ])
  in
  List.iter
    (fun (kb, span) ->
      let s = Time.to_sec span in
      let s_per_mb = s /. (float_of_int kb /. 1024.) in
      row "  %10d %12.3f %10.3f" kb s s_per_mb;
      if kb = 1024 then metric "s_per_mb" s_per_mb)
    results

(* {1 E-kstate: kernel state copy (Section 4.1)} *)

let kernel_state () =
  banner
    "E-kstate: kernel/program-manager state copy (paper: 14 ms + 9 ms per \
     process and address space)";
  row "  %8s %8s %14s %14s" "procs" "spaces" "paper ms" "measured ms";
  let results =
    par
      (List.map
         (fun extra () ->
           let cl = fresh_cluster ~seed:(500 + extra) () in
           ( extra,
             Experiment.migrate_program cl ~extra_processes:extra
               ~prog:"optimizer" () ))
         [ 0; 1; 3; 7; 15 ])
  in
  List.iter
    (fun (extra, outcome) ->
      let o = ok "migrate" outcome in
      let procs = 1 + extra and spaces = 1 in
      let paper = 14. +. (9. *. float_of_int (procs + spaces)) in
      let meas = Time.to_ms o.Protocol.m_kernel_state in
      row "  %8d %8d %14.0f %14.0f" procs spaces paper meas;
      if extra = 0 then metric "kstate_ms_1proc" meas)
    results

(* {1 E-freeze: pre-copy behaviour per program (Section 4.1)} *)

let freeze_time () =
  banner
    "E-freeze: pre-copy migration per program (paper: ~2 useful rounds, \
     0.5-70 KB frozen residue, 5-210 ms suspension + kernel-state time)";
  row "  %-16s %7s %12s %10s %11s %11s %9s" "program" "rounds" "precopied KB"
    "final KB" "freeze ms" "kstate ms" "total s";
  let per_prog =
    par
      (List.mapi
         (fun i (name, _) () ->
           let cl = fresh_cluster ~seed:(700 + i) () in
           (name, Experiment.migrate_program cl ~prog:name ()))
         Programs.table_4_1)
  in
  let freezes = ref [] in
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Error e -> row "  %-16s migration failed: %s" name e
      | Ok o ->
          freezes := Time.to_ms (Protocol.freeze_span o) :: !freezes;
          row "  %-16s %7d %12d %10d %11.1f %11.0f %9.2f" name
            (List.length o.Protocol.m_rounds)
            (Protocol.precopied_bytes o / 1024)
            (o.Protocol.m_final_bytes / 1024)
            (Time.to_ms (Protocol.freeze_span o))
            (Time.to_ms o.Protocol.m_kernel_state)
            (Time.to_sec o.Protocol.m_total))
    per_prog;
  (match !freezes with
  | [] -> ()
  | xs ->
      metric "mean_freeze_ms"
        (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)));
  (* Strategy comparison: the case for pre-copying. *)
  banner "E-freeze (cont.): strategy comparison on tex (708 KB logical host)";
  row "  %-16s %11s %9s %14s %12s" "strategy" "freeze ms" "total s" "moved KB"
    "faultin KB";
  let strategies =
    par
      (List.mapi
         (fun i name () ->
           let cl = fresh_cluster ~seed:(800 + i) () in
           let strategy =
             match name with
             | "precopy" -> Protocol.Precopy
             | "freeze-and-copy" -> Protocol.Freeze_and_copy
             | _ ->
                 Protocol.Vm_flush
                   { page_server = File_server.pid (Cluster.file_server cl) }
           in
           (name, Experiment.migrate_program cl ~strategy ~prog:"tex" ()))
         [ "precopy"; "freeze-and-copy"; "vm-flush" ])
  in
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Error e -> row "  %-16s failed: %s" name e
      | Ok o ->
          row "  %-16s %11.1f %9.2f %14d %12d" name
            (Time.to_ms (Protocol.freeze_span o))
            (Time.to_sec o.Protocol.m_total)
            ((Protocol.precopied_bytes o + o.Protocol.m_final_bytes) / 1024)
            (o.Protocol.m_faultin_bytes / 1024))
    strategies

(* {1 Figure 3-1: migration via virtual memory flush (Section 3.2)} *)

let vm_flush () =
  banner
    "Figure 3-1: VM-flush migration (flush dirty pages to the file server, \
     demand-fault at the new host)";
  let cl = fresh_cluster () in
  let o =
    ok "vm-flush"
      (Experiment.migrate_program cl
         ~strategy:
           (Protocol.Vm_flush
              { page_server = File_server.pid (Cluster.file_server cl) })
         ~prog:"tex" ())
  in
  List.iteri
    (fun i r ->
      row "  flush round %d: %6d KB in %s" (i + 1)
        (r.Protocol.r_bytes / 1024)
        (Time.to_string r.Protocol.r_span))
    o.Protocol.m_rounds;
  row "  frozen flush : %6d KB" (o.Protocol.m_final_bytes / 1024);
  row "  freeze time  : %s (vs ~2.1 s to copy 708 KB frozen)"
    (Time.to_string (Protocol.freeze_span o));
  row "  fault-in (double-transferred) pages: %d KB — the Section 3.2 cost"
    (o.Protocol.m_faultin_bytes / 1024);
  metric "faultin_kb" (float_of_int (o.Protocol.m_faultin_bytes / 1024))

(* {1 E-ovh: kernel operation overheads (Section 4.1)} *)

let overheads () =
  banner
    "E-ovh: kernel op overheads (paper: +100 us group-id indirection, +13 us \
     frozen test)";
  let latency ~params () =
    let cfg = { Config.default with Config.os = params } in
    let cl = mk_cluster ~seed:42 ~workstations:2 ~cfg () in
    Experiment.kernel_op_latency cl ~samples:50
  in
  let base = Os_params.default in
  match
    par
      [
        latency ~params:base;
        latency ~params:{ base with Os_params.frozen_check = Time.zero };
        latency ~params:{ base with Os_params.group_lookup = Time.zero };
      ]
  with
  | [ full; no_frozen; no_group ] ->
      row "  local kernel-server round trip, full kernel: %8.1f us" full;
      row
        "  without frozen-state test                   : %8.1f us  (delta %.1f \
         over send+reply = %.1f us/op, paper 13)"
        no_frozen (full -. no_frozen)
        ((full -. no_frozen) /. 2.);
      row
        "  without local-group indirection             : %8.1f us  (delta %.1f \
         us/op, paper 100)"
        no_group (full -. no_group);
      row
        "  binding-cache machinery                   : 0 us extra (pre-exists \
         for pid-to-Ethernet mapping, as in the paper)";
      metric "kernel_op_us" full
  | _ -> assert false

(* {1 E-space: space cost (Section 4.2)} *)

let space_cost () =
  banner
    "E-space: code added for migration support (paper: +8 KB kernel, +4 KB \
     program manager)";
  let file_stats path =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = in_channel_length ic in
      let lines = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr lines
         done
       with End_of_file -> ());
      close_in ic;
      Some (n, !lines)
    end
    else None
  in
  let group name paths =
    let bytes, lines =
      List.fold_left
        (fun (b, l) p ->
          match file_stats p with
          | Some (b', l') -> (b + b', l + l')
          | None -> (b, l))
        (0, 0) paths
    in
    row "  %-44s %7d bytes %6d lines" name bytes lines
  in
  if Sys.file_exists "lib/core/migration.ml" then begin
    group "migration support (migrateprog + manager)"
      [
        "lib/core/migration.ml"; "lib/core/migration.mli";
        "lib/core/protocol.ml"; "lib/core/protocol.mli";
      ];
    group "kernel freeze/extract/install (in kernel.ml)"
      [ "lib/vos/logical_host.ml"; "lib/vos/logical_host.mli" ];
    group "whole kernel substrate (for scale)"
      [ "lib/vos/kernel.ml"; "lib/vos/ipc.ml" ];
    row
      "  shape check: migration support is a modest fraction of the kernel, \
       as in the paper's 8 KB + 4 KB"
  end
  else
    row
      "  (source tree not visible from this working directory; run from the \
       repository root)"

(* {1 E-usage: pool of processors (Section 4.3)} *)

let usage () =
  let minutes = if !quick then 3. else 10. in
  banner
    (Printf.sprintf
       "E-usage: pool-of-processors, 25 workstations, %g simulated minutes \
        (Section 4.3)"
       minutes);
  let cl = fresh_cluster ~seed:2024 ~workstations:25 () in
  let stats =
    Experiment.usage cl
      {
        Experiment.default_usage_params with
        Experiment.u_horizon = sec (60. *. minutes);
      }
  in
  Format.printf "%a@." Experiment.pp_usage stats;
  row "paper: >1/3 workstations idle at the busiest times; >80%% idle at peak \
       hours; almost all remote execution requests honored";
  let honored_frac =
    if stats.Experiment.us_submitted = 0 then 1.
    else
      float_of_int stats.Experiment.us_honored
      /. float_of_int stats.Experiment.us_submitted
  in
  row "shape check: honored %.0f%%, idle %.0f%% -- %s" (100. *. honored_frac)
    (100. *. stats.Experiment.us_mean_idle)
    (if honored_frac > 0.8 && stats.Experiment.us_mean_idle > 0.33 then
       "consistent with the paper"
     else "INCONSISTENT with the paper");
  metric "honored_frac" honored_frac;
  metric "mean_idle" stats.Experiment.us_mean_idle;
  detail "usage" (Experiment.usage_to_json stats)

(* {1 Ablations: design choices called out in DESIGN.md} *)

let precopy_ablation () =
  banner
    "A-precopy: round-termination policy (stop when a round shrinks the \
     residue by < factor, or below min KB)";
  row "  %-8s %12s %8s %7s %10s %11s %12s" "program" "improvement" "min KB"
    "rounds" "final KB" "freeze ms" "moved KB";
  let settings = [ (0.3, 8); (0.5, 8); (0.7, 8); (0.85, 8); (0.95, 8); (0.7, 64) ] in
  let cells =
    List.concat_map
      (fun prog -> List.map (fun s -> (prog, s)) settings)
      [ "parser"; "tex" ]
  in
  let results =
    par
      (List.map
         (fun (prog, (improvement, min_kb)) () ->
           let cfg =
             {
               Config.default with
               Config.precopy_improvement = improvement;
               precopy_min_residue = min_kb * 1024;
             }
           in
           let cl = mk_cluster ~seed:4242 ~workstations:6 ~cfg () in
           ((prog, improvement, min_kb), Experiment.migrate_program cl ~prog ()))
         cells)
  in
  List.iter
    (fun ((prog, improvement, min_kb), outcome) ->
      match outcome with
      | Error e -> row "  %-8s failed: %s" prog e
      | Ok o ->
          row "  %-8s %12.2f %8d %7d %10d %11.1f %12d" prog improvement min_kb
            (List.length o.Protocol.m_rounds)
            (o.Protocol.m_final_bytes / 1024)
            (Time.to_ms (Protocol.freeze_span o))
            ((Protocol.precopied_bytes o + o.Protocol.m_final_bytes) / 1024))
    results;
  row
    "shape: lenient termination (high factor) trades extra copy rounds and \
     wire traffic for a residue approaching the dirty-rate fixpoint; the \
     paper's 'usually 2 iterations' sits at the knee"

let loss_ablation () =
  banner
    "A-loss: migration under packet loss (retransmission and reply-pending \
     machinery under fire)";
  row "  %-8s %8s %7s %10s %11s %9s" "program" "loss" "rounds" "final KB"
    "freeze ms" "total s";
  let results =
    par
      (List.map
         (fun loss () ->
           let net_config =
             { Ethernet.default_config with loss_probability = loss }
           in
           let cl = mk_cluster ~seed:99 ~workstations:6 ~net_config () in
           (loss, Experiment.migrate_program cl ~prog:"parser" ()))
         [ 0.0; 0.01; 0.05 ])
  in
  List.iter
    (fun (loss, outcome) ->
      match outcome with
      | Error e -> row "  %-8s %8.2f failed: %s" "parser" loss e
      | Ok o ->
          row "  %-8s %8.2f %7d %10d %11.1f %9.2f" "parser" loss
            (List.length o.Protocol.m_rounds)
            (o.Protocol.m_final_bytes / 1024)
            (Time.to_ms (Protocol.freeze_span o))
            (Time.to_sec o.Protocol.m_total))
    results;
  row
    "shape: loss stretches copies (lost frames retransmit) and freeze \
     slightly; correctness is unaffected — the Section 3.1.3 machinery \
     absorbs it"

let scale () =
  banner
    "A-scale: decentralized selection vs cluster size ('performs well at \
     minimal cost for reasonably small systems', Section 2.1)";
  row "  %6s %14s %16s %18s" "hosts" "first resp ms" "replies received"
    "volunteer rate";
  let results =
    par
      (List.map
         (fun n () ->
           let cl = fresh_cluster ~seed:5 ~workstations:n () in
           let first = ref nan and all = ref 0 in
           ignore
             (Cluster.user cl ~ws:0 ~name:"prober" (fun k self ->
                  (match
                     Scheduler.Spine.select_in_group ~group:Ids.program_manager_group k (Cluster.cfg cl) ~self
                       ~bytes:(64 * 1024)
                   with
                  | Ok s -> first := Time.to_ms s.Scheduler.s_responded_in
                  | Error _ -> ());
                  Proc.sleep (Cluster.engine cl) (sec 1.);
                  all :=
                    List.length
                      (Scheduler.Spine.candidates k (Cluster.cfg cl) ~self
                         ~bytes:(64 * 1024) ~window:(Time.of_ms 100.))));
           Cluster.run cl ~until:(sec 5.);
           (n, !first, !all))
         [ 4; 8; 16; 32 ])
  in
  List.iter
    (fun (n, first, all) ->
      row "  %6d %14.1f %16d %18s" n first all (Printf.sprintf "%d/%d" all n))
    results;
  row
    "shape: first-response latency is flat (one multicast, fastest \
     volunteer); the linear cost is the pile of extra replies the client \
     discards"

let rebind_ablation () =
  banner
    "A-rebind: V broadcast-query rebinding vs Demos/MP forwarding addresses \
     (Section 5)";
  let forwarding_cfg =
    {
      Config.default with
      Config.os =
        { Os_params.default with Os_params.rebind = Os_params.Forwarding };
    }
  in
  let scenario ~label ~cfg ~reboot_old () =
    let cl = mk_cluster ~seed:77 ~workstations:5 ~cfg () in
    Program_manager.set_accepting (Cluster.workstation cl 0).Cluster.ws_pm false;
    let outcome = ref "did not run" in
    let forwarded = ref 0 in
    ignore
      (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
           let k = Context.kernel ctx and self = Context.self ctx in
           match Remote_exec.exec ctx ~prog:"assembler" ~target:Remote_exec.Any with
           | Error e -> outcome := "exec failed: " ^ e
           | Ok h -> (
               Proc.sleep (Cluster.engine cl) (sec 1.);
               match
                 Kernel.send k ~src:self
                   ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
                   (Message.make
                      (Protocol.Pm_migrate
                         {
                           lh = Some h.Remote_exec.h_lh;
                           dest = None;
                           force_destroy = false;
                           strategy = Protocol.Precopy;
                         }))
               with
               | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } -> (
                   let old_ws = Cluster.find_workstation cl o.Protocol.m_from in
                   if reboot_old then
                     Option.iter
                       (fun w -> Kernel.shutdown w.Cluster.ws_kernel)
                       old_ws;
                   match Remote_exec.wait ctx h with
                   | Ok _ ->
                       Option.iter
                         (fun w ->
                           forwarded := Kernel.stat w.Cluster.ws_kernel "forwarded")
                         old_ws;
                       outcome := "completed"
                   | Error e -> outcome := "stale reference FAILED: " ^ e)
               | _ -> outcome := "migration failed")));
    Cluster.run cl ~until:(sec 200.);
    Printf.sprintf "  %-44s %-28s old host relayed %d packets" label !outcome
      !forwarded
  in
  List.iter (row "%s")
    (par
       [
         scenario ~label:"forwarding, old host stays up" ~cfg:forwarding_cfg
           ~reboot_old:false;
         scenario ~label:"forwarding, old host reboots" ~cfg:forwarding_cfg
           ~reboot_old:true;
         scenario ~label:"V broadcast query, old host reboots"
           ~cfg:Config.default ~reboot_old:true;
       ]);
  row
    "shape: forwarding works only while the old host lives (and loads it); \
     V's logical-host rebinding needs nothing from the old host — the \
     paper's argument against Demos/MP"

let recovery () =
  banner
    "A-recovery: destination crash mid-migration (Section 3.1.3: the copy \
     'fails due to lack of acknowledgement')";
  (* The program lands on ws1; ws2 is the only willing destination until
     the fault plan crashes it mid-copy, at which point ws3 (in the retry
     scenario) opens up. *)
  let scenario ~label ~retries ~open_alternate () =
    let cfg = { Config.default with Config.migration_retries = retries } in
    let cl =
      mk_cluster ~seed:9090 ~workstations:5 ~cfg
        ~faults:[ Faults.Crash_host { host = "ws2"; at = sec 4.5 } ]
        ()
    in
    let eng = Cluster.engine cl in
    let accepting i b =
      Program_manager.set_accepting (Cluster.workstation cl i).Cluster.ws_pm b
    in
    List.iter (fun i -> accepting i (i = 1)) [ 0; 1; 2; 3; 4 ];
    Engine.post eng ~at:(sec 3.5) (fun () ->
        accepting 1 false;
        accepting 2 true);
    if open_alternate then
      Engine.post eng ~at:(sec 4.5) (fun () -> accepting 3 true);
    let outcome = ref "did not run" in
    ignore
      (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
           let k = Context.kernel ctx and self = Context.self ctx in
           match Remote_exec.exec ctx ~prog:"tex" ~target:Remote_exec.Any with
           | Error e -> outcome := "exec failed: " ^ e
           | Ok h -> (
               Proc.sleep eng (Time.sub (sec 4.) (Engine.now eng));
               let t0 = Engine.now eng in
               let stable_pm =
                 match Cluster.find_workstation cl h.Remote_exec.h_host with
                 | Some w -> Program_manager.pid w.Cluster.ws_pm
                 | None -> Ids.program_manager_of h.Remote_exec.h_lh
               in
               let migrate =
                 Kernel.send k ~src:self ~dst:stable_pm
                   (Message.make
                      (Protocol.Pm_migrate
                         {
                           lh = Some h.Remote_exec.h_lh;
                           dest = None;
                           force_destroy = false;
                           strategy = Protocol.Precopy;
                         }))
               in
               let elapsed = Time.to_sec (Time.sub (Engine.now eng) t0) in
               let verdict =
                 match migrate with
                 | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } ->
                     Printf.sprintf "migrated to %s in %.1f s"
                       o.Protocol.m_dest elapsed
                 | Ok { Message.body = Protocol.Pm_migrate_failed m; _ } ->
                     Printf.sprintf "rolled back after %.1f s (%s)" elapsed m
                 | _ -> "malformed migrate reply"
               in
               match Remote_exec.wait ctx h with
               | Ok (wall, _) ->
                   outcome :=
                     Printf.sprintf "%s; program completed (wall %.1f s)"
                       verdict (Time.to_sec wall)
               | Error e -> outcome := verdict ^ "; WAIT FAILED: " ^ e)));
    Cluster.run cl ~until:(sec 200.);
    Printf.sprintf "  %-28s retries=%d  %s" label retries !outcome
  in
  List.iter (row "%s")
    (par
       [
         scenario ~label:"abandon (paper's policy)" ~retries:0
           ~open_alternate:false;
         scenario ~label:"retry with reselection" ~retries:2
           ~open_alternate:true;
       ]);
  row
    "shape: the acked copy detects the dead destination; with no retries the \
     frozen host is re-installed and unfrozen at the source, with retries \
     selection re-runs excluding the crashed host — either way the program \
     survives"

let internet () =
  banner
    "A-internet: bridged segments (the Section 6 internet direction, first \
     step: two Ethernets joined by a 2 ms store-and-forward bridge)";
  (* Migration driver: start on segment 0, then open only the requested
     segment as a destination, so the "far" case genuinely crosses. *)
  let migrate_toward ~far =
    let cl = mk_cluster ~seed:6001 ~workstations:5 ~bridged:2 () in
    let open_segment s b =
      List.iter
        (fun w ->
          if w.Cluster.ws_segment = s then
            Program_manager.set_accepting w.Cluster.ws_pm b)
        (Cluster.workstations cl)
    in
    open_segment 1 false;
    let result = ref (Error "incomplete") in
    ignore
      (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
           let k = Context.kernel ctx and self = Context.self ctx in
           match Remote_exec.exec ctx ~prog:"optimizer" ~target:Remote_exec.Any with
           | Error e -> result := Error ("exec: " ^ e)
           | Ok h -> (
               if far then begin
                 open_segment 1 true;
                 open_segment 0 false
               end;
               Proc.sleep (Cluster.engine cl) (sec 3.);
               match
                 Kernel.send k ~src:self
                   ~dst:(Ids.program_manager_of h.Remote_exec.h_lh)
                   (Message.make
                      (Protocol.Pm_migrate
                         {
                           lh = Some h.Remote_exec.h_lh;
                           dest = None;
                           force_destroy = false;
                           strategy = Protocol.Precopy;
                         }))
               with
               | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } ->
                   result := Ok o
               | _ -> result := Error "migration failed")));
    Cluster.run cl ~until:(sec 120.);
    !result
  in
  let measure ~far () =
    let cl = mk_cluster ~seed:6000 ~workstations:4 ~bridged:2 () in
    (* Force placement on the near or far segment. *)
    List.iter
      (fun w ->
        Program_manager.set_accepting w.Cluster.ws_pm
          (w.Cluster.ws_segment = if far then 1 else 0))
      (Cluster.workstations cl);
    let r = ok "exec" (Experiment.remote_exec cl ~prog:"cc68" ()) in
    (r, migrate_toward ~far)
  in
  let near, far =
    match par [ measure ~far:false; measure ~far:true ] with
    | [ near; far ] -> (near, far)
    | _ -> assert false
  in
  let pp_mig = function
    | Ok o ->
        Printf.sprintf "freeze %5.1f ms, total %.2f s"
          (Time.to_ms (Protocol.freeze_span o))
          (Time.to_sec o.Protocol.m_total)
    | Error e -> "failed: " ^ e
  in
  let near_exec, near_mig = near and far_exec, far_mig = far in
  row "  %-22s select %5.1f ms  load %5.0f ms  migration: %s" "same segment"
    (match near_exec.Experiment.er_select with
    | Some s -> Time.to_ms s
    | None -> nan)
    (Time.to_ms near_exec.Experiment.er_load)
    (pp_mig near_mig);
  row "  %-22s select %5.1f ms  load %5.0f ms  migration: %s" "across the bridge"
    (match far_exec.Experiment.er_select with
    | Some s -> Time.to_ms s
    | None -> nan)
    (Time.to_ms far_exec.Experiment.er_load)
    (pp_mig far_mig);
  row
    "shape: everything still works across the bridge — selection pays one \
     extra round trip, bulk transfers pay per-frame store-and-forward, so \
     copies run at roughly the bridged-path rate; the paper's anticipated \
     'new issues of scale' show up as latency, not correctness"

let balance_ablation () =
  banner
    "A-balance: preemptive load balancing (the Section 6 future-work item, \
     built on migrateprog)";
  let run ~with_balancer () =
    let cfg = { Config.default with Config.max_guests = 8 } in
    let cl = mk_cluster ~seed:4141 ~workstations:5 ~cfg () in
    let eng = Cluster.engine cl in
    let done_at = ref Time.zero and completed = ref 0 in
    for i = 1 to 6 do
      ignore
        (Cluster.shell cl ~ws:0 ~name:(Printf.sprintf "job%d" i) (fun ctx ->
             match
               Remote_exec.exec_and_wait ctx ~prog:"optimizer"
                 ~target:(Remote_exec.Named "ws1")
             with
             | Ok _ ->
                 incr completed;
                 done_at := Time.max !done_at (Engine.now eng)
             | Error _ -> ()))
    done;
    let b =
      if with_balancer then
        Some
          (Balancer.start ~interval:(sec 3.) ~imbalance:2
             (Cluster.workstation cl 0).Cluster.ws_kernel)
      else None
    in
    Cluster.run cl ~until:(sec 300.);
    ( !completed,
      Time.to_sec !done_at,
      match b with Some b -> Balancer.rebalances b | None -> 0 )
  in
  let (c0, makespan0, _), (c1, makespan1, moves) =
    match par [ run ~with_balancer:false; run ~with_balancer:true ] with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  row "  six 10s-CPU jobs piled on one workstation (prog @ ws1):";
  row "  %-18s completed %d/6, makespan %6.1f s" "no balancer" c0 makespan0;
  row "  %-18s completed %d/6, makespan %6.1f s (%d preemptive moves)"
    "with balancer" c1 makespan1 moves;
  row
    "shape: preemption turns an overloaded workstation into pool-wide \
     parallelism; makespan drops toward the per-job runtime"

(* {1 Bechamel micro-benchmarks (real wall-clock of simulator hot paths)} *)

let bechamel () =
  banner "Bechamel micro-benchmarks (wall-clock cost of simulator hot paths)";
  let open Bechamel in
  let open Toolkit in
  let heap_bench =
    Test.make ~name:"heap: 1k push+pop"
      (Staged.stage (fun () ->
           let h = Heap.create ~cmp:Int.compare in
           for i = 0 to 999 do
             Heap.push h ((i * 7919) mod 1000)
           done;
           while not (Heap.is_empty h) do
             ignore (Heap.pop h)
           done))
  in
  let engine_bench =
    Test.make ~name:"engine: 1k events"
      (Staged.stage (fun () ->
           let e = Engine.create () in
           for i = 1 to 1000 do
             Engine.post e ~at:(Sim_time.of_us i) (fun () -> ())
           done;
           Engine.run e))
  in
  let rng_bench =
    let r = Rng.create 1 in
    Test.make ~name:"rng: 1k draws"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             ignore (Rng.bits64 r)
           done))
  in
  (* The Ethernet delivery hot path: with the cached recipient rosters,
     neither broadcast nor multicast delivery rebuilds or sorts the
     station list per frame. *)
  let net_delivery ~name ~frame =
    Test.make ~name
      (Staged.stage (fun () ->
           let e = Engine.create () in
           let net : unit Ethernet.t = Ethernet.create e (Rng.create 7) in
           let stations =
             Array.init 32 (fun i ->
                 Ethernet.attach net (Addr.of_int (i + 1)) (fun _ -> ()))
           in
           Array.iteri
             (fun i s -> if i land 1 = 0 then Ethernet.subscribe s 9)
             stations;
           for _ = 1 to 100 do
             Ethernet.send net (frame ())
           done;
           Engine.run e))
  in
  let broadcast_bench =
    net_delivery ~name:"ethernet: 100 broadcasts to 32 stations"
      ~frame:(fun () -> Frame.broadcast ~src:(Addr.of_int 1) ~bytes:64 ())
  in
  let multicast_bench =
    net_delivery ~name:"ethernet: 100 multicasts, 16/32 subscribed"
      ~frame:(fun () ->
        Frame.multicast ~src:(Addr.of_int 1) ~group:9 ~bytes:64 ())
  in
  let ipc_bench =
    Test.make ~name:"sim: local IPC round trip (full cluster boot)"
      (Staged.stage (fun () ->
           let cl = Cluster.create ~seed:3 ~workstations:1 () in
           ignore
             (Cluster.user cl ~ws:0 ~name:"pinger" (fun k self ->
                  let ks =
                    Ids.kernel_server_of (Logical_host.id (Kernel.host_lh k))
                  in
                  ignore
                    (Kernel.send k ~src:self ~dst:ks (Message.make Kernel.Ks_ping))));
           Cluster.run cl ~until:(Sim_time.of_sec 1.)))
  in
  let migration_bench =
    Test.make ~name:"sim: full tex migration"
      (Staged.stage (fun () ->
           let cl = Cluster.create ~seed:4 ~workstations:4 () in
           ignore (Experiment.migrate_program cl ~prog:"tex" ())))
  in
  let tests =
    Test.make_grouped ~name:"vsystem" ~fmt:"%s %s"
      [
        heap_bench; engine_bench; rng_bench; broadcast_bench; multicast_bench;
        ipc_bench; migration_bench;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ t ] ->
          row "  %-48s %12.1f ns/run" name t;
          metric ("ns_per_run:" ^ name) t
      | _ -> row "  %-48s (no estimate)" name)
    results

(* {1 E-serve: sustained traffic through the service layer} *)

let serve () =
  let duration = if !quick then 30. else 120. in
  banner
    (Printf.sprintf
       "E-serve: sustained traffic, 32 workstations, %g simulated seconds \
        (open-loop arrivals + admission control + continuous rebalancing)"
       duration);
  let cl = fresh_cluster ~seed:1985 ~workstations:32 () in
  let params =
    { Serve.Session.default_params with Serve.Session.duration = sec duration }
  in
  let s = Serve.Session.create ~params cl in
  Serve.Session.drain s;
  let m = Serve.Session.metrics s in
  row "  submitted %d  completed %d  rejected %d  refused %d  failed %d"
    m.Serve.Session.m_submitted m.Serve.Session.m_completed
    m.Serve.Session.m_rejected m.Serve.Session.m_refused
    m.Serve.Session.m_failed;
  row "  throughput %.2f req/s  p95 submit-to-running %.1f ms  migrations %d \
       (p95 freeze %.1f ms)"
    m.Serve.Session.m_throughput_per_sec
    (Stats.Summary.percentile m.Serve.Session.m_submit_to_running_ms 95.)
    m.Serve.Session.m_migrations
    (if Stats.Summary.count m.Serve.Session.m_freeze_ms = 0 then 0.
     else Stats.Summary.percentile m.Serve.Session.m_freeze_ms 95.);
  metric "serve_throughput_per_sec" m.Serve.Session.m_throughput_per_sec;
  metric "serve_p95_submit_to_running_ms"
    (Stats.Summary.percentile m.Serve.Session.m_submit_to_running_ms 95.);
  metric "serve_migrations" (float_of_int m.Serve.Session.m_migrations);
  detail "serve" (Serve.Session.metrics_to_json s)

(* {1 E-serve-pods: scale-out serve through pod-sharded placement} *)

(* The scale-out claim behind the Placement redesign: a four-figure
   workstation pool absorbing a three-figure arrival rate. Flat
   first-responder multicast would put every manager on every query's
   bid path (~1024 replies per selection); pod sharding caps the
   fan-out at one 32-host pod, the predictive tier steers queries away
   from pods about to saturate using the gossiped load summaries, and
   the autoscaler retargets the admission cap from smoothed rate and
   service time. Committed to BENCH_serve.json: the events/s number
   feeds the regression gate and the queue-wait percentiles document
   that the rate was absorbed, not queued without bound. *)
let serve_pods () =
  let duration = if !quick then 10. else 30. in
  let ws = 1024 and rate = 110. and pod_size = 32 in
  banner
    (Printf.sprintf
       "E-serve-pods: scale-out serve, %d workstations in %d-host pods, %g \
        req/s for %g simulated seconds (predictive placement + autoscaler)"
       ws pod_size rate duration);
  (* The paper's peripherals cap a cluster at a couple dozen jobs/s no
     matter how many workstations join: the V bulk protocol's 2.1 ms
     per-frame CPU means ~0.47 MB/s per transfer and the file server's
     300 us/KB media is similar. A service tier three decades on gets a
     1 Gbit fabric, microsecond per-frame protocol cost, and solid-state
     storage — so the bench measures the placement and autoscaling
     machinery rather than 1985's peripherals. *)
  let cfg =
    {
      Config.default with
      Config.placement = Config.Load_predictive { pod_size; alpha = 0.3 };
      os =
        {
          Os_params.default with
          (* ~20 us kernel IPC instead of the 68010's ~500 us: the file
             server answers ~45 requests per job, so 1985's per-message
             cost alone caps the whole cluster near 35 jobs/s. *)
          Os_params.local_op = Time.of_us 20;
          bulk_pacing =
            { Transfer.data_frame_bytes = 1024; per_frame_cpu = Time.of_us 10 };
        };
      (* The paper's 23 ms host-selection latency is candidacy
         processing on a 10 MHz pm — at 100 queries/s it would also be
         the bottleneck (a manager answers bids serially). *)
      candidacy_delay = Time.of_ms 2.;
      candidacy_jitter = Time.of_ms 1.;
    }
  in
  let net_config =
    {
      Ethernet.default_config with
      Ethernet.bandwidth_bytes_per_sec = 125_000_000;
    }
  in
  let cl =
    mk_cluster ~seed:1985 ~workstations:ws ~cfg ~net_config ~disk_us_per_kb:3
      ()
  in
  let params =
    {
      Serve.Session.default_params with
      Serve.Session.arrivals = Serve.Session.Poisson rate;
      duration = sec duration;
      max_in_flight = 512;
      queue_limit = 2048;
      autoscale =
        Some
          {
            Serve.Session.default_autoscale with
            Serve.Session.au_min = 64;
            au_max = 2048;
          };
    }
  in
  let s = Serve.Session.create ~params cl in
  Serve.Session.drain s;
  let m = Serve.Session.metrics s in
  let pct su p =
    if Stats.Summary.count su = 0 then 0. else Stats.Summary.percentile su p
  in
  row "  submitted %d  completed %d  rejected %d  shed %d  failed %d  stuck %d"
    m.Serve.Session.m_submitted m.Serve.Session.m_completed
    m.Serve.Session.m_rejected m.Serve.Session.m_shed
    m.Serve.Session.m_failed m.Serve.Session.m_stuck;
  row "  throughput %.1f req/s  queue-wait p50/p95 %.0f/%.0f ms  \
       submit->running p95 %.0f ms"
    m.Serve.Session.m_throughput_per_sec
    (pct m.Serve.Session.m_queue_wait_ms 50.)
    (pct m.Serve.Session.m_queue_wait_ms 95.)
    (pct m.Serve.Session.m_submit_to_running_ms 95.);
  row "  placement %s: %d selection(s), %d timeout(s), %d credit shed(s)"
    m.Serve.Session.m_placement_policy m.Serve.Session.m_placement_selections
    m.Serve.Session.m_placement_timeouts m.Serve.Session.m_credit_sheds;
  row "  autoscaler cap %d (min %d, max %d) over %d scale event(s)"
    m.Serve.Session.m_cap_final m.Serve.Session.m_cap_min
    m.Serve.Session.m_cap_max m.Serve.Session.m_scale_events;
  metric "serve_pods_throughput_per_sec" m.Serve.Session.m_throughput_per_sec;
  metric "serve_pods_p95_queue_wait_ms"
    (pct m.Serve.Session.m_queue_wait_ms 95.);
  metric "serve_pods_selections"
    (float_of_int m.Serve.Session.m_placement_selections);
  metric "serve_pods_cap_final" (float_of_int m.Serve.Session.m_cap_final);
  detail "serve-pods" (Serve.Session.metrics_to_json s)

(* {1 E-chaos: correlated failure + overload, absorbed gracefully} *)

(* Robustness headline: a rack crash, a partition that heals, and
   flaky-host churn land on a session already pushed into brownout-level
   load — with the failure detector steering placement, per-strategy
   freeze/transfer budgets bounding every migration, a cluster-wide
   re-exec budget capping the post-crash storm, and the invariant
   monitors (including the freeze-budget monitor) watching the whole
   trace. The bar: zero requests leak, zero invariants break, and the
   detector's transition/false-suspicion counts are reported. Every
   printed number is virtual-time or event-count based, so stdout is
   byte-identical for any [-j]. *)
let chaos () =
  let duration = if !quick then 30. else 60. in
  banner
    (Printf.sprintf
       "E-chaos: rack crash + partition-then-heal + flaky churn under \
        brownout-level load, 10 workstations (4 bridged), %g simulated \
        seconds" duration);
  let plan =
    ok "fault plan"
      (Result.map_error
         (fun m -> m)
         (Faults.parse
            "crashrack:ws2+ws3+ws4@8;reboot:ws2@16;reboot:ws3@17.5;\
             reboot:ws4@19;partition@25-33;flaky:ws7@38-48"))
  in
  let cfg = Config.with_default_budgets Config.default in
  let cl =
    mk_cluster ~seed:7070 ~workstations:10 ~bridged:4 ~cfg ~faults:plan
      ~trace:true ()
  in
  ignore (Cluster.enable_health cl);
  let mon = Monitors.attach (Cluster.tracer cl) in
  let params =
    {
      Serve.Session.default_params with
      Serve.Session.arrivals = Serve.Session.Poisson 2.;
      duration = sec duration;
      max_in_flight = 8;
      queue_limit = 12;
      balancer_interval = Some (sec 2.);
      snapshot_every = Some (sec 5.);
      reexec_attempts = 2;
      reexec_budget = Some 32;
      slo_shed_multiple = Some 3.;
      drain_grace = sec 60.;
    }
  in
  let s = Serve.Session.create ~params cl in
  Serve.Session.drain s;
  let m = Serve.Session.metrics s in
  let h =
    match Cluster.health cl with Some h -> h | None -> assert false
  in
  row
    "  submitted %d  completed %d  rejected %d  shed %d  refused %d  failed \
     %d  stuck %d  (still in flight at drain: %d)"
    m.Serve.Session.m_submitted m.Serve.Session.m_completed
    m.Serve.Session.m_rejected m.Serve.Session.m_shed
    m.Serve.Session.m_refused m.Serve.Session.m_failed
    m.Serve.Session.m_stuck m.Serve.Session.m_outstanding;
  row "  brownout: %d span%s, %.0f virtual ms; re-execs %d (budget 32)"
    m.Serve.Session.m_brownout_spans
    (if m.Serve.Session.m_brownout_spans = 1 then "" else "s")
    m.Serve.Session.m_brownout_ms m.Serve.Session.m_reexecs;
  row
    "  detector: %d probes, %d transitions, %d false suspicion%s; dead at \
     end [%s], suspect [%s]"
    (Health.probes h) (Health.transitions h)
    (Health.false_suspicions h)
    (if Health.false_suspicions h = 1 then "" else "s")
    (String.concat " " (Health.dead_hosts h))
    (String.concat " " (Health.suspect_hosts h));
  (match Cluster.faults cl with
  | None -> ()
  | Some f ->
      row "  fault kinds fired: %s"
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" k n)
              (Faults.fired_counts f))));
  row "  invariant monitors over %d events: %s" (Monitors.events_seen mon)
    (if Monitors.ok mon then "all clean (freeze budget included)"
     else
       Printf.sprintf "%d VIOLATION(S)"
         (List.length (Monitors.violations mon) + Monitors.dropped mon));
  if not (Monitors.ok mon) then
    List.iter
      (fun v -> Format.printf "%a@." Monitors.pp_violation v)
      (Monitors.violations mon);
  row
    "shape: the rack crash orphans a burst of requests that the re-exec \
     budget re-places without a storm; brownout sheds at the door instead \
     of queueing past the SLO; the detector steers the balancer and every \
     migration commits inside its declared freeze budget";
  metric "chaos_completed" (float_of_int m.Serve.Session.m_completed);
  metric "chaos_shed" (float_of_int m.Serve.Session.m_shed);
  metric "chaos_stuck" (float_of_int m.Serve.Session.m_stuck);
  metric "chaos_reexecs" (float_of_int m.Serve.Session.m_reexecs);
  metric "chaos_brownout_spans"
    (float_of_int m.Serve.Session.m_brownout_spans);
  metric "detector_transitions" (float_of_int (Health.transitions h));
  metric "detector_false_suspicions"
    (float_of_int (Health.false_suspicions h));
  metric "monitor_violations"
    (float_of_int (List.length (Monitors.violations mon) + Monitors.dropped mon));
  detail "chaos" (Serve.Session.metrics_to_json s)

(* {1 E-strategies: copy-discipline comparison (Section 3's argument)} *)

(* The paper's case for pre-copying, run head to head: freeze-and-copy
   maximizes the freeze window, copy-on-reference minimizes it but
   leaves the source serving page faults after commit (the residual
   dependency Section 5 holds against Accent/Demos). Residual messages
   are counted from the per-kernel "page_fault_serves" stat, and every
   reported number is virtual-time or event-count based, so the table
   and metrics are byte-identical for any [-j]. *)
let strategies () =
  banner
    "E-strategies: pre-copy vs freeze-and-copy vs copy-on-reference (cc68, \
     run to completion after the move)";
  row "  %-18s %4s %11s %9s %14s %12s %14s" "strategy" "rep" "freeze ms"
    "total s" "moved KB" "faultin KB" "residual msgs";
  let reps = if !quick then 2 else 4 in
  let disciplines =
    [ Protocol.Precopy; Protocol.Freeze_and_copy; Protocol.Copy_on_reference ]
  in
  let cells =
    List.concat_map
      (fun s -> List.init reps (fun rep -> (s, rep)))
      disciplines
  in
  let results =
    par
      (List.map
         (fun (strategy, rep) () ->
           let cl = mk_cluster ~seed:(8300 + rep) ~workstations:6 () in
           let outcome =
             Experiment.migrate_program cl ~strategy ~run_for:(sec 3.)
               ~prog:"cc68" ()
           in
           let residual_msgs =
             List.fold_left
               (fun acc w ->
                 acc + Kernel.stat w.Cluster.ws_kernel "page_fault_serves")
               0 (Cluster.workstations cl)
           in
           (strategy, rep, outcome, residual_msgs))
         cells)
  in
  let agg = Hashtbl.create 8 in
  List.iter
    (fun (strategy, rep, outcome, residual_msgs) ->
      let name = Protocol.strategy_name strategy in
      match outcome with
      | Error e -> row "  %-18s %4d failed: %s" name rep e
      | Ok o ->
          let freeze = Time.to_ms (Protocol.freeze_span o) in
          let total = Time.to_sec o.Protocol.m_total in
          row "  %-18s %4d %11.1f %9.2f %14d %12d %14d" name rep freeze total
            ((Protocol.precopied_bytes o + o.Protocol.m_final_bytes) / 1024)
            (o.Protocol.m_faultin_bytes / 1024)
            residual_msgs;
          let f, t, r, n =
            Option.value (Hashtbl.find_opt agg name) ~default:(0., 0., 0, 0)
          in
          Hashtbl.replace agg name
            (f +. freeze, t +. total, r + residual_msgs, n + 1))
    results;
  List.iter
    (fun strategy ->
      let name = Protocol.strategy_name strategy in
      match Hashtbl.find_opt agg name with
      | None | Some (_, _, _, 0) -> ()
      | Some (f, t, r, n) ->
          let fn = float_of_int n in
          metric (Printf.sprintf "freeze_ms:%s" name) (f /. fn);
          metric (Printf.sprintf "total_s:%s" name) (t /. fn);
          metric
            (Printf.sprintf "residual_msgs:%s" name)
            (float_of_int r /. fn))
    disciplines;
  row
    "shape: freeze-and-copy suspends the program for the whole copy; \
     copy-on-reference unfreezes almost immediately but keeps the source \
     answering page faults after commit — the paper's residual dependency; \
     pre-copy gets the short freeze with zero residual messages"

(* {1 E-stress: the scenario library under open-loop load} *)

(* One open-loop cell per {!Scenario.Library} family: each runs the
   family's serve shape at pinned seeds with the full monitor bundle
   attached and fails the bench on any invariant violation or leaked
   request. Every printed number is an event count or virtual-time
   quantity, so stdout is byte-identical for any [-j]; the committed
   BENCH_stress.json floors feed the same events/s regression gate as
   the main profile (regenerate with
     dune exec bench/main.exe -- stress --quick -j 1 --json BENCH_stress.json
   run a few times and keep conservative per-cell minima, DESIGN.md
   §4h/§4i). *)
let stress entry () =
  let name = Scenario.Library.name entry in
  banner
    (Printf.sprintf "E-stress:%s — %s" name (Scenario.Library.stresses entry));
  let reps = if !quick then 3 else 6 in
  let seeds = List.init reps (fun rep -> 41 + (17 * rep)) in
  let results =
    par
      (List.map
         (fun seed () ->
           let sv = Scenario.Library.serve entry ~seed in
           let o, cl = Scenario.run_serve_cluster sv in
           (seed, sv, o, cl))
         seeds)
  in
  let bad = ref 0 in
  List.iter
    (fun (seed, sv, o, cl) ->
      register cl;
      let viol =
        List.length o.Scenario.so_violations + o.Scenario.so_violations_dropped
      in
      let counts kvs =
        String.concat " "
          (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) kvs)
      in
      row
        "  seed %-3d submitted %4d  completed %4d  shed %3d  stuck %d  \
         violations %d  (%d events)"
        seed o.Scenario.so_submitted o.Scenario.so_completed
        o.Scenario.so_shed o.Scenario.so_stuck viol o.Scenario.so_events;
      row "           faults [%s]  migrations [%s]"
        (counts o.Scenario.so_fault_fired)
        (counts o.Scenario.so_strategies);
      if viol > 0 || o.Scenario.so_stuck > 0 then begin
        incr bad;
        List.iter
          (fun v -> Format.printf "%a@." Monitors.pp_violation v)
          o.Scenario.so_violations;
        row "  REPLAY: %s" (Scenario.replay_serve_hint sv)
      end)
    results;
  let tot f =
    List.fold_left (fun acc (_, _, o, _) -> acc + f o) 0 results
  in
  metric
    (Printf.sprintf "stress_submitted:%s" name)
    (float_of_int (tot (fun o -> o.Scenario.so_submitted)));
  metric
    (Printf.sprintf "stress_completed:%s" name)
    (float_of_int (tot (fun o -> o.Scenario.so_completed)));
  metric
    (Printf.sprintf "stress_shed:%s" name)
    (float_of_int (tot (fun o -> o.Scenario.so_shed)));
  if !bad > 0 then begin
    Printf.eprintf
      "stress:%s: %d run(s) violated invariants or leaked requests\n%!" name
      !bad;
    exit 1
  end

(* {1 E-alloc: minor-heap words per event (allocation regressions)} *)

(* Wall-clock benches miss regressions the GC absorbs; this experiment
   counts minor-heap words allocated per engine event on the core hot
   paths, so an accidental box/closure on the schedule/fire/emit path
   shows up as a number even when throughput noise hides it. The raw
   engines here are deliberately not registered with the cluster
   registry: the experiment reports 0 events and is thereby excluded
   from the events/s regression gate (allocation counts are
   deterministic; its metrics are the signal). *)
let alloc () =
  banner "E-alloc: minor-heap words allocated per event (GC pressure)";
  let nop () = () in
  let words_per ~events f =
    (* One throwaway pass warms internal pools/rings so steady-state
       cost, not first-growth cost, is measured. *)
    f ();
    let w0 = Gc.minor_words () in
    f ();
    (Gc.minor_words () -. w0) /. float_of_int events
  in
  let n = 100_000 in
  let report name w =
    row "  %-40s %8.2f minor words/event" name w;
    metric ("minor_words_per_event:" ^ name) w
  in
  (* Handle-free scheduling: the engine's zero-allocation fast path.
     Instants are relative to the clock so the warm-up pass and the
     measured pass schedule identically. *)
  let e = Engine.create () in
  register_engine e;
  report "engine post+fire"
    (words_per ~events:n (fun () ->
         for i = 1 to n do
           Engine.post_after e (Sim_time.of_us i) nop
         done;
         Engine.run e));
  (* Cancellable scheduling: pays only for the 3-field handle. *)
  let e = Engine.create () in
  register_engine e;
  report "engine schedule+fire (handle)"
    (words_per ~events:n (fun () ->
         for i = 1 to n do
           ignore (Engine.schedule_after e (Sim_time.of_us i) nop)
         done;
         Engine.run e));
  (* Tracing on, no subscriber: ring writes only, no record boxing. *)
  let e = Engine.create () in
  register_engine e;
  let trc = Tracer.create ~capacity:1024 e in
  let ev = Tracer.Text { category = "bench"; message = "x" } in
  report "tracer emit (on, no subscriber)"
    (words_per ~events:n (fun () ->
         for _ = 1 to n do
           Tracer.emit trc ev
         done));
  (* Untraced broadcast delivery: frame fan-out through the engine. *)
  let e = Engine.create () in
  register_engine e;
  let net : unit Ethernet.t = Ethernet.create e (Rng.create 7) in
  for i = 1 to 32 do
    ignore (Ethernet.attach net (Addr.of_int i) (fun _ -> ()))
  done;
  let frames = 2_000 in
  report "ethernet broadcast (per delivery)"
    (words_per
       ~events:(frames * 31)
       (fun () ->
         for _ = 1 to frames do
           Ethernet.send net (Frame.broadcast ~src:(Addr.of_int 1) ~bytes:64 ())
         done;
         Engine.run e))

(* {1 E-layers: per-layer ns/event breakdown (diagnostic)} *)

(* Times each layer of the stack in isolation so a throughput regression
   can be attributed: raw engine dispatch, the effect/suspension
   machinery ([Proc.sleep] loops), the CPU scheduler's slice loop, and a
   kernel IPC ping loop on a long-lived cluster (no per-iteration
   boot). Run explicitly as [bench layers]; not part of the default
   profile. *)
let layers () =
  banner "E-layers: per-layer cost breakdown (ns per engine event)";
  let time_events label f =
    let t0 = Unix.gettimeofday () in
    let events = f () in
    let wall = Unix.gettimeofday () -. t0 in
    row "  %-44s %8.1f ns/event (%d events)" label
      (wall *. 1e9 /. float_of_int events)
      events;
    metric ("ns_per_event:" ^ label) (wall *. 1e9 /. float_of_int events)
  in
  let nop () = () in
  time_events "engine post+fire" (fun () ->
      let e = Engine.create () in
      let n = 500_000 in
      for i = 1 to n do
        Engine.post_after e (Sim_time.of_us i) nop
      done;
      Engine.run e;
      Engine.events_fired e);
  time_events "proc sleep loop (effects + suspension)" (fun () ->
      let e = Engine.create () in
      ignore
        (Proc.spawn e ~name:"sleeper" (fun () ->
             for _ = 1 to 200_000 do
               Proc.sleep e (Sim_time.of_us 1)
             done));
      Engine.run e;
      Engine.events_fired e);
  time_events "cpu slice loop (1ms quantum)" (fun () ->
      let e = Engine.create () in
      let cpu = Cpu.create e ~quantum:(Sim_time.of_ms 1.) in
      ignore
        (Proc.spawn e ~name:"worker" (fun () ->
             Cpu.compute cpu ~priority:Cpu.Foreground (Sim_time.of_sec 100.)));
      Engine.run e;
      Engine.events_fired e);
  time_events "kernel IPC ping loop (resident cluster)" (fun () ->
      let cl = Cluster.create ~seed:11 ~workstations:2 () in
      let k0 = (Cluster.workstation cl 0).Cluster.ws_kernel in
      ignore
        (Cluster.user cl ~ws:0 ~name:"pinger" (fun k self ->
             let ks =
               Ids.kernel_server_of (Logical_host.id (Kernel.host_lh k))
             in
             for _ = 1 to 20_000 do
               ignore (Kernel.send k ~src:self ~dst:ks (Message.make Kernel.Ks_ping))
             done));
      Cluster.run cl ~until:(Sim_time.of_sec 1000.);
      ignore k0;
      Engine.events_fired (Cluster.engine cl))

(* {1 E-engine-core: raw dispatch throughput}

   The tentpole number: how fast the pooled, flat-representation engine
   dispatches events with nothing stacked on top. Two shapes bracket
   real workloads: a burst that grows the heap to N then drains it
   (worst-case sift depth), and a steady-state population of
   self-reposting timers (the shape of a running cluster: bounded heap,
   sustained churn). *)

let engine_core () =
  banner "E-engine-core: raw dispatch throughput (pooled heap, handle-free)";
  let nop () = () in
  let time label events f =
    let t0 = Unix.gettimeofday () in
    f ();
    let wall = Unix.gettimeofday () -. t0 in
    let eps = float_of_int events /. wall in
    row "  %-46s %7.2fM events/s (%6.1f ns/event)" label (eps /. 1e6)
      (wall *. 1e9 /. float_of_int events);
    metric ("events_per_sec:" ^ label) eps
  in
  let burst = if !quick then 500_000 else 2_000_000 in
  let e = Engine.create () in
  register_engine e;
  time "burst: post N, drain (heap grows to N)" burst (fun () ->
      for i = 1 to burst do
        Engine.post_after e (Sim_time.of_us i) nop
      done;
      Engine.run e);
  let timers = 64 in
  let rounds = (if !quick then 3_000_000 else 6_000_000) / timers in
  let e = Engine.create () in
  register_engine e;
  time
    (Printf.sprintf "steady: %d self-reposting timers" timers)
    (timers * rounds)
    (fun () ->
      for t = 1 to timers do
        let remaining = ref rounds in
        let rec tick () =
          decr remaining;
          if !remaining > 0 then Engine.post_after e (Sim_time.of_us t) tick
        in
        Engine.post_after e (Sim_time.of_us t) tick
      done;
      Engine.run e)

(* {1 E-dedup: content-addressed state transfer (DESIGN.md §4k)}

   Two cells, each run with per-host content caches on (4 MiB) and off:

   - pod fan-out: eight workstations launch the same program back to
     back. With caching, the first load's multicast chunk announcement
     warms every host, so relaunches pull zero chunks from the file
     server — the pod pays the paper's 330 ms/100 KB load once.
   - re-migration: a program migrates ws0 -> ws1 and back. The manifest
     exchange self-inserts on the source and the image announcement
     pre-warms the destination, so the return trip ships only pages
     dirtied since — a delta, not the address space.

   All printed numbers are virtual-time or byte-count based, so stdout
   merges byte-identically for any -j. The pod cell's wire-byte
   reduction is a hard floor (>= 5x): the bench fails, not just the
   gate, if dedup stops paying. *)

let dedup_cache_bytes = 4 * 1024 * 1024

let dedup_cfg ~cache =
  if not cache then Config.default
  else
    {
      Config.default with
      Config.os =
        {
          Config.default.Config.os with
          Os_params.content_cache_bytes = dedup_cache_bytes;
        };
    }

let dedup_sum_stat cl name =
  List.fold_left
    (fun acc w -> acc + Kernel.stat w.Cluster.ws_kernel name)
    0 (Cluster.workstations cl)

let dedup_pod ~cache () =
  let launches = 8 in
  let cl =
    mk_cluster ~seed:1985 ~workstations:launches ~cfg:(dedup_cfg ~cache) ()
  in
  let loads =
    List.init launches (fun ws ->
        match
          Experiment.remote_exec cl ~ws ~target:Remote_exec.Local ~prog:"cc68"
            ()
        with
        | Ok r -> Time.to_ms r.Experiment.er_load
        | Error e ->
            Printf.eprintf "dedup pod launch on ws%d failed: %s\n%!" ws e;
            exit 1)
  in
  let image_bytes =
    File_server.image_file_bytes (Programs.find "cc68").Programs.image
  in
  let wire_bytes =
    if cache then dedup_sum_stat cl "img_chunks_miss" * File_server.chunk_bytes
    else launches * image_bytes
  in
  (loads, wire_bytes, dedup_sum_stat cl "img_chunks_hit")

let dedup_remigrate ~cache () =
  let cl = mk_cluster ~seed:2042 ~workstations:4 ~cfg:(dedup_cfg ~cache) () in
  let eng = Cluster.engine cl in
  let result = ref (Error "re-migration cell did not complete") in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         let k = Context.kernel ctx and self = Context.self ctx in
         match Remote_exec.exec ctx ~prog:"tex" ~target:Remote_exec.Local with
         | Error e -> result := Error ("exec: " ^ e)
         | Ok h -> (
             let migrate ~from_host ~dest =
               let pm =
                 match Cluster.find_workstation cl from_host with
                 | Some w -> Program_manager.pid w.Cluster.ws_pm
                 | None -> Ids.program_manager_of h.Remote_exec.h_lh
               in
               match
                 Kernel.send k ~src:self ~dst:pm
                   (Message.make
                      (Protocol.Pm_migrate
                         {
                           lh = Some h.Remote_exec.h_lh;
                           dest = Some dest;
                           force_destroy = false;
                           strategy = Protocol.Precopy;
                         }))
               with
               | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } -> Ok o
               | Ok { Message.body = Protocol.Pm_migrate_failed m; _ } ->
                   Error m
               | Ok _ -> Error "malformed migrate reply"
               | Error e ->
                   Error (Format.asprintf "%a" Kernel.pp_send_error e)
             in
             Proc.sleep eng (sec 3.);
             let shipped0 = dedup_sum_stat cl "xfer_bytes_shipped" in
             match migrate ~from_host:h.Remote_exec.h_host ~dest:"ws1" with
             | Error e -> result := Error ("first migration: " ^ e)
             | Ok o1 -> (
                 Proc.sleep eng (sec 1.);
                 let shipped1 = dedup_sum_stat cl "xfer_bytes_shipped" in
                 match
                   migrate ~from_host:o1.Protocol.m_dest
                     ~dest:h.Remote_exec.h_host
                 with
                 | Error e -> result := Error ("return migration: " ^ e)
                 | Ok o2 ->
                     let shipped2 = dedup_sum_stat cl "xfer_bytes_shipped" in
                     (* With caching off the stats stay zero and the wire
                        cost of a migration is everything it copied. *)
                     let wire o lo hi =
                       if cache then hi - lo
                       else Protocol.precopied_bytes o + o.Protocol.m_final_bytes
                     in
                     result :=
                       Ok
                         ( wire o1 shipped0 shipped1,
                           wire o2 shipped1 shipped2,
                           Time.to_ms o2.Protocol.m_total )))));
  Cluster.run cl ~until:(sec 60.);
  match !result with
  | Ok r -> r
  | Error e ->
      Printf.eprintf "dedup re-migration (cache=%b) failed: %s\n%!" cache e;
      exit 1

let dedup () =
  banner
    "E-dedup: content-addressed transfer — pod image fan-out and \
     re-migration deltas (DESIGN.md §4k)";
  match
    par
      [
        (fun () -> `Pod (dedup_pod ~cache:true ()));
        (fun () -> `Pod (dedup_pod ~cache:false ()));
        (fun () -> `Remig (dedup_remigrate ~cache:true ()));
        (fun () -> `Remig (dedup_remigrate ~cache:false ()));
      ]
  with
  | [
   `Pod (loads_on, wire_on, hits);
   `Pod (loads_off, wire_off, _);
   `Remig (r1_on, r2_on, total_on);
   `Remig (r1_off, r2_off, total_off);
  ] ->
      let mean = function
        | [] -> 0.
        | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
      in
      row "  pod fan-out: 8 launches of cc68, caches %s" "on vs off";
      row "    cold load %.0f ms, relaunch mean %.1f ms (cached: %d chunk \
           hits); plain relaunch mean %.0f ms"
        (List.hd loads_on)
        (mean (List.tl loads_on))
        hits
        (mean (List.tl loads_off));
      let reduction = float_of_int wire_off /. float_of_int (max 1 wire_on) in
      row "    bytes on wire: %d KB cached vs %d KB plain (%.1fx reduction)"
        (wire_on / 1024) (wire_off / 1024) reduction;
      row "  re-migration: tex ws0 -> ws1 -> ws0, caches on vs off";
      row "    outbound %d KB vs %d KB; return %d KB vs %d KB" (r1_on / 1024)
        (r1_off / 1024) (r2_on / 1024) (r2_off / 1024);
      row "    return-trip total %.0f ms cached vs %.0f ms plain" total_on
        total_off;
      metric "pod_cold_load_ms" (List.hd loads_on);
      metric "pod_relaunch_load_ms" (mean (List.tl loads_on));
      metric "pod_wire_kb_cached" (float_of_int (wire_on / 1024));
      metric "pod_wire_kb_plain" (float_of_int (wire_off / 1024));
      metric "pod_wire_reduction_x" reduction;
      metric "remig_return_wire_kb_cached" (float_of_int (r2_on / 1024));
      metric "remig_return_wire_kb_plain" (float_of_int (r2_off / 1024));
      metric "remig_return_total_ms_cached" total_on;
      metric "remig_return_total_ms_plain" total_off;
      if reduction < 5. then begin
        Printf.eprintf
          "E-dedup FAIL: pod wire-byte reduction %.1fx is below the 5x \
           floor\n\
           %!"
          reduction;
        exit 1
      end;
      if r2_on >= r2_off then begin
        Printf.eprintf
          "E-dedup FAIL: cached return migration shipped %d bytes, not \
           fewer than the plain %d\n\
           %!"
          r2_on r2_off;
        exit 1
      end
  | _ -> assert false

(* {1 Driver} *)

let experiments =
  [
    ("engine-core", engine_core);
    ("table-4-1", table_4_1);
    ("exec-cost", exec_cost);
    ("copy-rate", copy_rate);
    ("kernel-state", kernel_state);
    ("freeze-time", freeze_time);
    ("vm-flush", vm_flush);
    ("overheads", overheads);
    ("space-cost", space_cost);
    ("usage", usage);
    ("serve", serve);
    ("serve-pods", serve_pods);
    ("chaos", chaos);
    ("strategies", strategies);
    ("dedup", dedup);
    ("precopy-ablation", precopy_ablation);
    ("loss-ablation", loss_ablation);
    ("scale", scale);
    ("rebind-ablation", rebind_ablation);
    ("balance-ablation", balance_ablation);
    ("recovery", recovery);
    ("internet", internet);
    ("alloc", alloc);
    ("bechamel", bechamel);
  ]

(* Diagnostics runnable by name but excluded from the default (and
   [--quick]) profiles — and thereby from the committed baseline. *)
let named_only_experiments = [ ("layers", layers) ]

(* The scenario-library stress family: its own profile with its own
   committed floors (BENCH_stress.json). The bare name "stress" expands
   to every family; "stress:NAME" runs one. *)
let stress_experiments =
  List.map
    (fun e -> ("stress:" ^ Scenario.Library.name e, stress e))
    Scenario.Library.all

type report = {
  r_name : string;
  r_wall : float;
  r_events : int;
  r_metrics : (string * float) list;
  r_details : (string * Json_min.t) list;
}

let reports : report list ref = ref []

let run_one (name, f) =
  ignore (drain_events ());
  metrics := [];
  details := [];
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  reports :=
    {
      r_name = name;
      r_wall = wall;
      r_events = drain_events ();
      r_metrics = List.rev !metrics;
      r_details = List.rev !details;
    }
    :: !reports

let json_report () =
  let open Json_min in
  Obj
    [
      ("schema", Str "vsystem-bench/1");
      ("quick", Bool !quick);
      ("jobs", Num (float_of_int !jobs));
      ( "experiments",
        Arr
          (List.rev_map
             (fun r ->
               Obj
                 [
                   ("name", Str r.r_name);
                   ("wall_s", Num r.r_wall);
                   ("events", Num (float_of_int r.r_events));
                   ( "events_per_sec",
                     Num
                       (if r.r_wall > 0. then
                          float_of_int r.r_events /. r.r_wall
                        else 0.) );
                   ( "metrics",
                     Obj (List.map (fun (k, v) -> (k, Num v)) r.r_metrics) );
                   ("details", Obj r.r_details);
                 ])
             !reports) );
    ]

(* Validate a previously written results file: the runtest smoke uses
   this to check that [--quick --json] produced well-formed output.
   Returns the per-experiment (name, events, events_per_sec) triples so
   the same parse doubles as the regression-gate baseline. *)
let check_json path =
  let contents =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let fail msg =
    Printf.eprintf "%s: %s\n%!" path msg;
    exit 1
  in
  match Json_min.parse contents with
  | Error m -> fail ("JSON parse error: " ^ m)
  | Ok v -> (
      (match Json_min.member "schema" v with
      | Some (Json_min.Str "vsystem-bench/1") -> ()
      | _ -> fail "missing or unexpected schema");
      match Json_min.member "experiments" v with
      | Some (Json_min.Arr (_ :: _ as exps)) ->
          let triples =
            List.map
              (fun e ->
                let num k =
                  match Json_min.member k e with
                  | Some (Json_min.Num x) -> x
                  | _ ->
                      fail (Printf.sprintf "experiment missing numeric %S" k)
                in
                let name =
                  match Json_min.member "name" e with
                  | Some (Json_min.Str s) -> s
                  | _ -> fail "experiment missing name"
                in
                let _ = num "wall_s" in
                let events = num "events" in
                let eps = num "events_per_sec" in
                (match Json_min.member "metrics" e with
                | Some (Json_min.Obj _) -> ()
                | _ -> fail "experiment missing metrics object");
                (name, events, eps))
              exps
          in
          Printf.printf "%s: OK (%d experiments)\n%!" path (List.length exps);
          triples
      | _ -> fail "missing experiments array")

(* {2 Regression gate}

   When experiments ran in the same invocation, [--check-json BASELINE]
   compares each experiment's fresh events/s against the committed
   baseline and fails on a drop beyond [--tolerance] percent (default
   25). Experiments too small to time reliably — under
   [min_gate_events] on either side — are reported but never gated, so
   wall-clock noise on sub-100ms cells cannot flake the build. *)
let tolerance = ref 25.0
let min_gate_events = 100_000.

let gate_against ~baseline_path reports =
  let baseline = check_json baseline_path in
  let failures = ref 0 and gated = ref 0 in
  List.iter
    (fun r ->
      let fresh_events = float_of_int r.r_events in
      let fresh_eps =
        if r.r_wall > 0. then fresh_events /. r.r_wall else 0.
      in
      match
        List.find_opt (fun (n, _, _) -> String.equal n r.r_name) baseline
      with
      | None ->
          Printf.printf "gate: %-18s no baseline entry, skipped\n%!" r.r_name
      | Some (_, base_events, base_eps) ->
          if
            base_events < min_gate_events
            || fresh_events < min_gate_events
            || base_eps <= 0.
          then
            Printf.printf "gate: %-18s below %.0fk events, not gated\n%!"
              r.r_name (min_gate_events /. 1000.)
          else begin
            incr gated;
            let delta = 100. *. ((fresh_eps /. base_eps) -. 1.) in
            let floor = base_eps *. (1. -. (!tolerance /. 100.)) in
            if fresh_eps < floor then begin
              incr failures;
              Printf.printf
                "gate: %-18s FAIL  %.2fM ev/s vs baseline %.2fM (%+.0f%%, \
                 tolerance -%.0f%%)\n\
                 %!"
                r.r_name (fresh_eps /. 1e6) (base_eps /. 1e6) delta !tolerance
            end
            else
              Printf.printf
                "gate: %-18s ok    %.2fM ev/s vs baseline %.2fM (%+.0f%%)\n%!"
                r.r_name (fresh_eps /. 1e6) (base_eps /. 1e6) delta
          end)
    reports;
  if !failures > 0 then begin
    Printf.eprintf
      "check-json: %d of %d gated experiment(s) regressed more than %.0f%% \
       below %s\n\
       %!"
      !failures !gated !tolerance baseline_path;
    exit 1
  end
  else
    Printf.printf "check-json: %d gated experiment(s) within %.0f%% of %s\n%!"
      !gated !tolerance baseline_path

let () =
  let json_out = ref None in
  let check_path = ref None in
  let usage_and_exit code =
    Printf.eprintf
      "usage: main.exe [-j N] [--quick] [--json FILE] [--check-json FILE] \
       [--tolerance PCT] [EXPERIMENT...]\nknown experiments: %s\n"
      (String.concat ", " (List.map fst experiments));
    exit code
  in
  let rec parse_args names = function
    | [] -> List.rev names
    | "--quick" :: rest ->
        quick := true;
        parse_args names rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse_args names rest
    | [ "--json" ] -> usage_and_exit 2
    | "--check-json" :: file :: rest ->
        check_path := Some file;
        parse_args names rest
    | [ "--check-json" ] -> usage_and_exit 2
    | "--tolerance" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p >= 0. ->
            tolerance := p;
            parse_args names rest
        | _ -> usage_and_exit 2)
    | [ "--tolerance" ] -> usage_and_exit 2
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse_args names rest
        | _ -> usage_and_exit 2)
    | [ "-j" ] -> usage_and_exit 2
    | "--list" :: _ ->
        List.iter (fun (n, _) -> print_endline n) experiments;
        exit 0
    | ("--help" | "-h") :: _ -> usage_and_exit 0
    | name :: rest -> parse_args (name :: names) rest
  in
  let names = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  (* [--check-json] alone (no run requested) validates the file's schema
     and exits — the mode the committed-results runtest guards use. With
     a run in the same invocation it becomes the regression gate below. *)
  (match (!check_path, names, !json_out) with
  | Some file, [], None ->
      ignore (check_json file);
      exit 0
  | _ -> ());
  let chosen =
    match names with
    | [] ->
        Printf.printf
          "Reproducing the evaluation of \"Preemptable Remote Execution \
           Facilities for the V-System\" (SOSP 1985)\n";
        (* [--quick] is the pinned baseline profile: every experiment at
           reduced reps, minus the wall-clock bechamel suite. *)
        if !quick then List.filter (fun (n, _) -> n <> "bechamel") experiments
        else experiments
    | names ->
        List.concat_map
          (fun name ->
            if String.equal name "stress" then stress_experiments
            else
              match
                List.assoc_opt name
                  (experiments @ named_only_experiments @ stress_experiments)
              with
              | Some f -> [ (name, f) ]
              | None ->
                  Printf.eprintf "unknown experiment %S; known: %s, stress\n"
                    name
                    (String.concat ", " (List.map fst experiments));
                  exit 2)
          names
  in
  List.iter run_one chosen;
  (match !json_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Json_min.to_string (json_report ()));
      close_out oc;
      Printf.eprintf "wrote %s\n%!" file);
  match !check_path with
  | None -> ()
  | Some baseline_path -> gate_against ~baseline_path (List.rev !reports)
