(* vsim: command-line driver for the simulated V cluster.

   Subcommands mirror the user-visible facilities of the paper:

     vsim exec PROG [--at HOST | --local]   "prog args @ machine"
     vsim migrate PROG [--strategy S]       migrateprog
     vsim sweep PROG [--seeds ..] [-j N]    replica sweep on OCaml 5 domains
     vsim usage [--minutes M]               the pool-of-processors scenario
     vsim serve [--rate R] [--duration S]   sustained traffic through the
                                            Serve session layer (SLO metrics)
     vsim programs                          the program catalogue
     vsim fuzz [--seeds N] [-j N]           seeded scenario fuzzing under
                                            the invariant monitors
*)

let sec = Time.of_sec

(* {1 Common options} *)

let seed =
  let doc = "Random seed (runs are deterministic per seed)." in
  Cmdliner.Arg.(value & opt int 1985 & info [ "seed" ] ~docv:"N" ~doc)

let workstations =
  let doc = "Number of workstations in the cluster." in
  Cmdliner.Arg.(value & opt int 6 & info [ "workstations"; "w" ] ~docv:"N" ~doc)

let trace =
  let doc = "Dump the kernel/program-manager trace afterwards." in
  Cmdliner.Arg.(value & flag & info [ "trace" ] ~doc)

let bridged =
  let doc =
    "Put the last $(docv) workstations on a second Ethernet segment behind a \
     store-and-forward bridge."
  in
  Cmdliner.Arg.(value & opt int 0 & info [ "bridged" ] ~docv:"N" ~doc)

let faults_conv =
  Cmdliner.Arg.conv
    ((fun s -> Result.map_error (fun m -> `Msg m) (Faults.parse s)), Faults.pp_plan)

let faults_arg =
  let doc =
    "Fault plan injected into the run: ';'-separated clauses, times in \
     virtual seconds — $(b,crash:HOST@T), $(b,reboot:HOST@T), \
     $(b,loss:P@T1-T2), $(b,partition@T1-T2) (needs $(b,--bridged)), \
     $(b,slow:HOSTxF@T1-T2), $(b,flaky:HOST@T1-T2) (seeded crash/reboot \
     churn), $(b,crashrack:H1+H2+...@T) (correlated multi-host crash). \
     Example: 'loss:0.02@0-30;crashrack:ws2+ws3@4.5;reboot:ws2@9'."
  in
  Cmdliner.Arg.(
    value & opt (some faults_conv) None & info [ "faults" ] ~docv:"PLAN" ~doc)

let prog_arg =
  let doc =
    "Program to run; one of the paper's Table 4-1 programs (see $(b,vsim \
     programs))."
  in
  Cmdliner.Arg.(
    required & pos 0 (some string) None & info [] ~docv:"PROG" ~doc)

let make_cluster ?faults ~seed ~workstations ~bridged ~trace () =
  (* Plan-vs-topology errors (unknown host, partition without a bridge)
     only surface when the plan is compiled onto the cluster — report
     them like any other usage error, not as an uncaught exception. *)
  try Cluster.create ~seed ~workstations ~bridged ~trace ?faults ()
  with Invalid_argument msg ->
    Printf.eprintf "vsim: fault plan: %s\n" msg;
    exit 124

let dump_trace cl =
  Format.printf "@.trace:@.";
  Tracer.dump Format.std_formatter (Cluster.tracer cl)

let report_faults cl =
  match Cluster.faults cl with
  | None -> ()
  | Some f -> Printf.printf "fault actions fired: %d\n" (Faults.injected f)

(* {1 exec} *)

let exec_cmd seed workstations bridged trace faults prog at local reexec =
  let cl = make_cluster ?faults ~seed ~workstations ~bridged ~trace () in
  let origin = Cluster.workstation cl 0 in
  let target =
    if local then Remote_exec.Local
    else
      match at with
      | Some host -> Remote_exec.Named host
      | None -> Remote_exec.Any
  in
  let on_host_failure = if reexec then `Reexec 3 else `Fail in
  let failed = ref false in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"shell" (fun ctx ->
         match Remote_exec.exec_and_wait ~on_host_failure ctx ~prog ~target with
         | Error e ->
             Printf.printf "run failed: %s\n" e;
             failed := true
         | Ok (h, wall, cpu) ->
             let t = h.Remote_exec.h_timings in
             Printf.printf "%s ran on %s\n" prog h.Remote_exec.h_host;
             (match t.Remote_exec.t_select with
             | Some s -> Printf.printf "  selection : %s\n" (Time.to_string s)
             | None -> ());
             Printf.printf "  env setup : %s\n"
               (Time.to_string t.Remote_exec.t_setup);
             Printf.printf "  image load: %s\n"
               (Time.to_string t.Remote_exec.t_load);
             Printf.printf "completed: wall %s, cpu %s\n" (Time.to_string wall)
               (Time.to_string cpu)));
  Cluster.run cl ~until:(sec 300.);
  Printf.printf "\n%s's display:\n" (Kernel.host_name origin.Cluster.ws_kernel);
  List.iter
    (fun l -> Printf.printf "  | %s\n" l)
    (Display_server.output origin.Cluster.ws_display);
  report_faults cl;
  if trace then dump_trace cl;
  if !failed then 1 else 0

(* {1 migrate} *)

let strategy_token = function
  | `Precopy -> "precopy"
  | `Freeze -> "freeze"
  | `Cor -> "cor"
  | `Vmflush -> "vmflush"

let strategy_conv =
  let parse = function
    | "precopy" -> Ok `Precopy
    | "freeze" -> Ok `Freeze
    | "cor" -> Ok `Cor
    | "vmflush" -> Ok `Vmflush
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (strategy_token s) in
  Cmdliner.Arg.conv (parse, print)

let migrate_cmd seed workstations bridged trace faults prog strategy run_for =
  let cl = make_cluster ?faults ~seed ~workstations ~bridged ~trace () in
  let strategy =
    match strategy with
    | `Precopy -> Protocol.Precopy
    | `Freeze -> Protocol.Freeze_and_copy
    | `Cor -> Protocol.Copy_on_reference
    | `Vmflush ->
        Protocol.Vm_flush { page_server = File_server.pid (Cluster.file_server cl) }
  in
  let code = ref 0 in
  (match
     Experiment.migrate_program cl ~strategy ~run_for:(Time.of_sec run_for)
       ~prog ()
   with
  | Error e ->
      Printf.printf "migration failed: %s\n" e;
      code := 1
  | Ok o ->
      Format.printf "%a@." Protocol.pp_outcome o;
      List.iteri
        (fun i r ->
          Printf.printf "  round %d: %6d KB in %s\n" (i + 1)
            (r.Protocol.r_bytes / 1024)
            (Time.to_string r.Protocol.r_span))
        o.Protocol.m_rounds;
      Printf.printf "  frozen residue: %d KB; program stopped for %s\n"
        (o.Protocol.m_final_bytes / 1024)
        (Time.to_string (Protocol.freeze_span o)));
  report_faults cl;
  if trace then dump_trace cl;
  !code

(* {1 sweep} *)

(* Fan one scenario over seeds x workstation counts x fault plans, one
   independent cluster replica per cell, run on a domain pool. Results
   print in cell order (seed outer, workstations middle, plan inner), so
   stdout is byte-identical for any -j; only the wall-clock note on
   stderr varies. *)

let sweep_cmd prog seeds_s ws_s fault_specs migrate strategy run_for jobs =
  let parse_int_list what s =
    List.map
      (fun tok ->
        match int_of_string_opt (String.trim tok) with
        | Some n when n > 0 -> n
        | _ ->
            Printf.eprintf "vsim sweep: bad %s %S\n" what tok;
            exit 124)
      (String.split_on_char ',' s)
  in
  let seeds = parse_int_list "seed" seeds_s in
  let wss = parse_int_list "workstation count" ws_s in
  let plans =
    match fault_specs with
    | [] -> [ ("-", None) ]
    | specs ->
        List.map
          (fun spec ->
            match Faults.parse spec with
            | Ok p -> (spec, Some p)
            | Error m ->
                Printf.eprintf "vsim sweep: fault plan %S: %s\n" spec m;
                exit 124)
          specs
  in
  let cells =
    List.concat_map
      (fun seed ->
        List.concat_map
          (fun w -> List.map (fun plan -> (seed, w, plan)) plans)
          wss)
      seeds
  in
  let cell (seed, w, (plan_label, faults)) () =
    let header =
      Printf.sprintf "seed=%-5d w=%-3d faults=%-12s" seed w plan_label
    in
    match
      try Ok (Cluster.create ~seed ~workstations:w ?faults ())
      with Invalid_argument m -> Error m
    with
    | Error m -> Printf.sprintf "%s | invalid: %s" header m
    | Ok cl ->
        let finish body =
          let fired =
            match Cluster.faults cl with
            | None -> 0
            | Some f -> Faults.injected f
          in
          Printf.sprintf "%s | %s | %d events, %d fault actions" header body
            (Engine.events_fired (Cluster.engine cl))
            fired
        in
        if migrate then begin
          let strategy =
            match strategy with
            | `Precopy -> Protocol.Precopy
            | `Freeze -> Protocol.Freeze_and_copy
            | `Cor -> Protocol.Copy_on_reference
            | `Vmflush ->
                Protocol.Vm_flush
                  { page_server = File_server.pid (Cluster.file_server cl) }
          in
          match
            Experiment.migrate_program cl ~strategy
              ~run_for:(Time.of_sec run_for) ~prog ()
          with
          | Error e -> finish ("migration failed: " ^ e)
          | Ok o ->
              finish
                (Printf.sprintf
                   "migrated %s -> %s: %d rounds, freeze %s, total %s"
                   o.Protocol.m_from o.Protocol.m_dest
                   (List.length o.Protocol.m_rounds)
                   (Time.to_string (Protocol.freeze_span o))
                   (Time.to_string o.Protocol.m_total))
        end
        else
          match Experiment.remote_exec cl ~prog () with
          | Error e -> finish ("exec failed: " ^ e)
          | Ok r ->
              finish
                (Printf.sprintf
                   "ran on %-4s: select %s, setup %s, load %s, total %s"
                   r.Experiment.er_host
                   (match r.Experiment.er_select with
                   | Some s -> Time.to_string s
                   | None -> "-")
                   (Time.to_string r.Experiment.er_setup)
                   (Time.to_string r.Experiment.er_load)
                   (Time.to_string r.Experiment.er_total))
  in
  let t0 = Unix.gettimeofday () in
  let lines = Parrun.run ~jobs (List.map cell cells) in
  List.iter print_endline lines;
  Printf.eprintf "sweep: %d cells on %d domain%s in %.2f s\n%!"
    (List.length cells) jobs
    (if jobs = 1 then "" else "s")
    (Unix.gettimeofday () -. t0);
  0

(* {1 usage} *)

let usage_cmd seed workstations faults minutes rate =
  let cl = make_cluster ?faults ~seed ~workstations ~bridged:0 ~trace:false () in
  let stats =
    Experiment.usage cl
      {
        Experiment.default_usage_params with
        Experiment.u_horizon = sec (60. *. minutes);
        u_job_rate_per_sec = rate;
      }
  in
  Format.printf "%a@." Experiment.pp_usage stats;
  report_faults cl;
  0

(* {1 programs} *)

let programs_cmd () =
  Printf.printf "%-16s %9s %8s %9s  %s\n" "name" "image KB" "cpu s"
    "active KB" "dirty model (fitted to Table 4-1)";
  List.iter
    (fun s ->
      Printf.printf "%-16s %9d %8.0f %9d  %s\n" s.Programs.prog_name
        (File_server.image_file_bytes s.Programs.image / 1024)
        s.Programs.cpu_seconds
        (s.Programs.image.File_server.active_bytes / 1024)
        (Format.asprintf "%a" Dirty_model.pp_params s.Programs.dirty))
    Programs.all;
  0

(* {1 fuzz} *)

(* Deterministic simulation testing: each seed expands to a full random
   scenario (cluster, jobs, migrations, faults) and runs under the
   Monitors bundle. A failure prints the violated invariant plus the
   exact command line that replays it. *)

(* Coverage bookkeeping for aggregate fuzz runs: which fault kinds any
   scenario declared, how often each actually fired, how many events
   each monitor inspected, which migration strategies started, which
   trace-event constructors were observed, and — for library scenarios —
   how often each entry ran and which of its declared features
   materialized. A green run must also prove the behavior matrix was
   genuinely exercised. *)

type coverage_acc = {
  cov_declared : (string, unit) Hashtbl.t;
  cov_fired : (string, int ref) Hashtbl.t;
  cov_monitors : (string, int ref) Hashtbl.t;
  cov_scenarios : (string, int ref) Hashtbl.t;
  cov_strategies : (string, int ref) Hashtbl.t;
  cov_events : (string, int ref) Hashtbl.t;
  (* The sixth dimension: placement policy -> serve runs dispatched
     through it. *)
  cov_placements : (string, int ref) Hashtbl.t;
  (* feature name -> (runs declaring it, runs where it materialized) *)
  cov_features : (string, int ref * int ref) Hashtbl.t;
}

let coverage_acc () =
  {
    cov_declared = Hashtbl.create 8;
    cov_fired = Hashtbl.create 8;
    cov_monitors = Hashtbl.create 8;
    cov_scenarios = Hashtbl.create 8;
    cov_strategies = Hashtbl.create 8;
    cov_events = Hashtbl.create 64;
    cov_placements = Hashtbl.create 8;
    cov_features = Hashtbl.create 8;
  }

let coverage_note ?label ?(features = []) ?(placements = []) acc ~declared
    ~fired ~monitors ~strategies ~events =
  let bump tbl (k, n) =
    match Hashtbl.find_opt tbl k with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace tbl k (ref n)
  in
  List.iter (fun k -> Hashtbl.replace acc.cov_declared k ()) declared;
  List.iter (bump acc.cov_fired) fired;
  List.iter (bump acc.cov_monitors) monitors;
  List.iter (bump acc.cov_strategies) strategies;
  List.iter (bump acc.cov_events) events;
  List.iter (fun (p, _) -> bump acc.cov_placements (p, 1)) placements;
  (match label with Some l -> bump acc.cov_scenarios (l, 1) | None -> ());
  List.iter
    (fun (f, materialized) ->
      let decl, mat =
        match Hashtbl.find_opt acc.cov_features f with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace acc.cov_features f cell;
            cell
      in
      incr decl;
      if materialized then incr mat)
    features

(* What a library-sampled run promises in aggregate: every sampled entry
   ran, every feature it declares materialized somewhere, every strategy
   it promises started at least once. *)
type coverage_expect = {
  x_scenarios : string list;
  x_strategies : string list;
  x_features : string list;
  x_placements : string list;
      (* Serve mode promises all three placement policies were
         dispatched through (the round-robin sampler guarantees it over
         any >= 4-seed range); empty in plain mode. *)
}

let expect_of_entries entries ~serve =
  let union l = List.sort_uniq String.compare (List.concat l) in
  {
    x_scenarios = List.map Scenario.Library.name entries;
    x_strategies =
      union (List.map (fun e -> Scenario.Library.strategies e ~serve) entries);
    x_features =
      union (List.map (fun e -> Scenario.Library.features e ~serve) entries);
    x_placements = (if serve then Replay.placement_tokens else []);
  }

let sorted_keys tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

(* Prints the coverage report; returns [true] if a gate is armed and
   missed. [require] gates fault kinds and monitors;
   [require_scenario] additionally gates the library [expect]
   contract (and implies [require]). *)
let coverage_report ~require ~require_scenario ?expect acc =
  let require = require || require_scenario in
  let count tbl k =
    match Hashtbl.find_opt tbl k with Some r -> !r | None -> 0
  in
  let fmt_counts tbl keys =
    if keys = [] then "(none)"
    else
      String.concat ", "
        (List.map (fun k -> Printf.sprintf "%s=%d" k (count tbl k)) keys)
  in
  (match expect with
  | Some x ->
      Printf.printf "scenario coverage: %s\n"
        (fmt_counts acc.cov_scenarios x.x_scenarios)
  | None -> ());
  let declared =
    List.filter (Hashtbl.mem acc.cov_declared) Faults.all_kinds
  in
  Printf.printf "fault coverage: %s\n"
    (if declared = [] then "(no fault kinds declared)"
     else fmt_counts acc.cov_fired declared);
  Printf.printf "monitor coverage: %s\n"
    (fmt_counts acc.cov_monitors Monitors.monitor_names);
  Printf.printf "strategy coverage: %s\n"
    (fmt_counts acc.cov_strategies (sorted_keys acc.cov_strategies));
  if Hashtbl.length acc.cov_placements > 0 then
    Printf.printf "placement coverage: %s\n"
      (fmt_counts acc.cov_placements (sorted_keys acc.cov_placements));
  (* The dedup dimension: content-addressed transfer event kinds, pulled
     from the per-run event-kind census. Informational in plain runs;
     [--require-scenario-coverage] gates on manifests actually flowing. *)
  let dedup_kinds =
    [ "xfer/manifest"; "xfer/hit"; "xfer/miss"; "img/hit"; "img/miss" ]
  in
  Printf.printf "dedup coverage: %s\n" (fmt_counts acc.cov_events dedup_kinds);
  (match expect with
  | Some _ ->
      let features = sorted_keys acc.cov_features in
      Printf.printf "feature coverage: %s\n"
        (if features = [] then "(none declared)"
         else
           String.concat ", "
             (List.map
                (fun f ->
                  let decl, mat = Hashtbl.find acc.cov_features f in
                  Printf.sprintf "%s=%d/%d" f !mat !decl)
                features))
  | None -> ());
  let event_kinds = sorted_keys acc.cov_events in
  Printf.printf "trace coverage: %d event kinds: %s\n"
    (List.length event_kinds)
    (fmt_counts acc.cov_events event_kinds);
  if not require then false
  else begin
    let missing = List.filter (fun k -> count acc.cov_fired k = 0) declared in
    let idle =
      (* The dedup monitor only sees events when caching is on, which
         the plain fuzz gate does not promise — it is held to the
         stricter library contract ([--require-scenario-coverage]),
         where the seed alternation guarantees caching-on runs. *)
      List.filter
        (fun m ->
          count acc.cov_monitors m = 0 && (require_scenario || m <> "dedup"))
        Monitors.monitor_names
    in
    List.iter
      (Printf.printf
         "COVERAGE FAIL: fault kind %S was declared but never fired\n")
      missing;
    List.iter
      (Printf.printf "COVERAGE FAIL: monitor %S never inspected an event\n")
      idle;
    let scenario_gaps =
      if not require_scenario then []
      else
        match expect with
        | None -> []
        | Some x ->
            let never_ran =
              List.filter
                (fun s -> count acc.cov_scenarios s = 0)
                x.x_scenarios
            in
            let no_strategy =
              List.filter
                (fun s -> count acc.cov_strategies s = 0)
                x.x_strategies
            in
            let dry_features =
              List.filter
                (fun f ->
                  match Hashtbl.find_opt acc.cov_features f with
                  | Some (_, mat) -> !mat = 0
                  | None -> true)
                x.x_features
            in
            let no_placement =
              List.filter
                (fun p -> count acc.cov_placements p = 0)
                x.x_placements
            in
            List.iter
              (Printf.printf "COVERAGE FAIL: scenario %S never ran\n")
              never_ran;
            List.iter
              (Printf.printf
                 "COVERAGE FAIL: strategy %S never started a migration\n")
              no_strategy;
            List.iter
              (Printf.printf
                 "COVERAGE FAIL: feature %S never materialized\n")
              dry_features;
            List.iter
              (Printf.printf
                 "COVERAGE FAIL: placement %S never dispatched a selection\n")
              no_placement;
            let no_dedup =
              if count acc.cov_events "xfer/manifest" = 0 then begin
                Printf.printf
                  "COVERAGE FAIL: content-addressed transfer never \
                   exercised (no xfer/manifest events)\n";
                [ "dedup" ]
              end
              else []
            in
            never_ran @ no_strategy @ dry_features @ no_placement @ no_dedup
    in
    missing <> [] || idle <> [] || scenario_gaps <> []
  end

(* Scenario selection: [None] is the free-form generator; a library
   entry list samples round-robin by seed, so every entry gets its share
   of any contiguous seed range. *)
let entry_for entries seed =
  let n = List.length entries in
  List.nth entries (((seed mod n) + n) mod n)

let resolve_scenario = function
  | None -> None
  | Some "all" -> Some Scenario.Library.all
  | Some name -> (
      match Scenario.Library.find name with
      | Some e -> Some [ e ]
      | None ->
          Printf.eprintf "vsim fuzz: unknown scenario %S (known: %s, all)\n"
            name
            (String.concat ", " Scenario.Library.names);
          exit 124)

let fuzz_serve_cmd count base_seed single jobs rebind ~forwarding
    ~strategy_tok ~strategy ~placement_tok ~content_cache_tok
    ~content_cache_for ~entries ~require_coverage ~require_scenario =
  let gen seed =
    match entries with
    | None -> Scenario.serve_of_seed seed
    | Some es -> Scenario.Library.serve (entry_for es seed) ~seed
  in
  (* Placement sampling: an explicit [--placement] forces that policy on
     every run; otherwise seeds cycle through the scenario's own draw
     and the three named policies, so any contiguous >= 4-seed range
     dispatches through every policy. The per-seed choice is a pure
     function of the seed, so a REPLAY line (which records the token
     when one was forced) reproduces the fan-out exactly. *)
  let placement_cycle =
    Array.of_list (None :: List.map Option.some Replay.placement_tokens)
  in
  let placement_tok_for seed =
    match placement_tok with
    | Some _ -> placement_tok
    | None ->
        let n = Array.length placement_cycle in
        placement_cycle.(((seed mod n) + n) mod n)
  in
  (* The named tokens parse to a pod size of 32 (right for scale-out
     benches); fuzz clusters run 4-12 workstations, so rescale to ~3
     pods — still a pure function of (token, scenario). *)
  let placement_for seed sv =
    Option.map
      (fun p ->
        let pod_size = max 2 (sv.Scenario.sv_workstations / 3) in
        match p with
        | Config.Flat_multicast -> p
        | Config.Pod_sharded _ -> Config.Pod_sharded { pod_size }
        | Config.Load_predictive { alpha; _ } ->
            Config.Load_predictive { pod_size; alpha })
      (Option.bind (placement_tok_for seed) Config.placement_of_string)
  in
  let features_of o =
    match (entries, o.Scenario.so_scenario.Scenario.sv_label) with
    | Some es, Some l -> (
        match List.find_opt (fun e -> Scenario.Library.name e = l) es with
        | Some e -> Scenario.Library.check_serve e o
        | None -> [])
    | _ -> []
  in
  let replay o =
    Scenario.replay_serve_hint ~forwarding ?strategy:strategy_tok
      ?placement:(placement_tok_for o.Scenario.so_scenario.Scenario.sv_seed)
      ?content_cache:content_cache_tok o.Scenario.so_scenario
  in
  match single with
  | Some seed ->
      let sv = gen seed in
      print_endline (Scenario.describe_serve sv);
      (match placement_tok_for seed with
      | Some tok when tok <> Scenario.placement_token sv.Scenario.sv_placement
        ->
          Printf.printf "placement override: %s\n" tok
      | _ -> ());
      if content_cache_for seed > 0 then
        Printf.printf "content cache: %d KiB/host\n"
          (content_cache_for seed / 1024);
      let o =
        Scenario.run_serve ~rebind
          ~content_cache:(content_cache_for seed)
          ?strategy
          ?placement:(placement_for seed sv)
          sv
      in
      (match features_of o with
      | [] -> ()
      | fs ->
          Printf.printf "features: %s\n"
            (String.concat ", "
               (List.map
                  (fun (f, m) ->
                    Printf.sprintf "%s=%s" f (if m then "yes" else "no"))
                  fs)));
      Printf.printf
        "%d events checked; %d request(s) submitted, %d completed, %d shed, \
         %d stuck\n"
        o.Scenario.so_events o.Scenario.so_submitted o.Scenario.so_completed
        o.Scenario.so_shed o.Scenario.so_stuck;
      if o.Scenario.so_violations = [] && o.Scenario.so_stuck = 0 then begin
        print_endline "all invariants held";
        0
      end
      else begin
        List.iter
          (fun v -> Format.printf "%a@." Monitors.pp_violation v)
          o.Scenario.so_violations;
        if o.Scenario.so_violations_dropped > 0 then
          Printf.printf "(%d further violations not retained)\n"
            o.Scenario.so_violations_dropped;
        if o.Scenario.so_stuck <> 0 then
          Printf.printf "%d request(s) stuck in no terminal state\n"
            o.Scenario.so_stuck;
        1
      end
  | None ->
      let t0 = Unix.gettimeofday () in
      let cell seed () =
        let sv = gen seed in
        Scenario.run_serve ~rebind
          ~content_cache:(content_cache_for seed)
          ?strategy
          ?placement:(placement_for seed sv)
          sv
      in
      let results =
        Parrun.run ~jobs (List.init count (fun i -> cell (base_seed + i)))
      in
      let failed = ref 0 and events = ref 0 and shed = ref 0 in
      let acc = coverage_acc () in
      List.iter
        (fun o ->
          events := !events + o.Scenario.so_events;
          shed := !shed + o.Scenario.so_shed;
          coverage_note acc
            ?label:o.Scenario.so_scenario.Scenario.sv_label
            ~features:(features_of o)
            ~placements:o.Scenario.so_placements
            ~declared:o.Scenario.so_fault_declared
            ~fired:o.Scenario.so_fault_fired ~monitors:o.Scenario.so_monitors
            ~strategies:o.Scenario.so_strategies
            ~events:o.Scenario.so_event_kinds;
          if o.Scenario.so_violations <> [] || o.Scenario.so_stuck <> 0 then begin
            incr failed;
            Printf.printf "FAIL %s\n"
              (Scenario.describe_serve o.Scenario.so_scenario);
            List.iter
              (fun v ->
                Printf.printf "  [%s] at %s (event #%d): %s\n"
                  v.Monitors.vi_monitor
                  (Time.to_string v.Monitors.vi_at)
                  v.Monitors.vi_seq v.Monitors.vi_detail)
              o.Scenario.so_violations;
            if o.Scenario.so_stuck <> 0 then
              Printf.printf "  %d request(s) stuck in no terminal state\n"
                o.Scenario.so_stuck;
            Printf.printf "  REPLAY: %s\n" (replay o)
          end)
        results;
      Printf.eprintf
        "fuzz --serve: %d seeds (base %d) on %d domain%s in %.2f s\n%!" count
        base_seed jobs
        (if jobs = 1 then "" else "s")
        (Unix.gettimeofday () -. t0);
      let cov_failed =
        coverage_report ~require:require_coverage
          ~require_scenario:require_scenario
          ?expect:
            (Option.map (fun es -> expect_of_entries es ~serve:true) entries)
          acc
      in
      if !failed = 0 && not cov_failed then begin
        Printf.printf
          "fuzz --serve: %d seeds passed, %d events checked, %d shed, 0 stuck\n"
          count !events !shed;
        0
      end
      else begin
        if !failed > 0 then
          Printf.printf "fuzz --serve: %d of %d seeds FAILED\n" !failed count;
        1
      end

let fuzz_cmd count base_seed jobs replay_flags require_coverage
    require_scenario =
  let {
    Replay.r_scenario = scenario_arg;
    r_seed = single;
    r_serve = serve_mode;
    r_forwarding = forwarding;
    r_strategy = strategy_arg;
    r_placement = placement_arg;
    r_content_cache = content_cache_arg;
  } =
    replay_flags
  in
  if (not serve_mode) && placement_arg <> None then
    Printf.eprintf "vsim fuzz: --placement only applies with --serve; ignored\n";
  let entries = resolve_scenario scenario_arg in
  (* Content-cache sampling: an explicit [--content-cache] pins the
     per-host budget on every run; otherwise odd seeds get a 4 MiB cache
     and even seeds run with caching off, so any contiguous >= 2-seed
     range exercises both the content-addressed and the plain transfer
     paths. The choice is a pure function of the seed, so a REPLAY line
     reproduces it without recording the value (the flag is recorded
     only when the user forced one). *)
  let content_cache_for seed =
    match content_cache_arg with
    | Some b -> b
    | None -> if seed land 1 = 1 then 4 * 1024 * 1024 else 0
  in
  let rebind =
    if forwarding then Os_params.Forwarding else Os_params.Broadcast_query
  in
  (* vm-flush needs a per-cluster page-server pid a generated scenario
     can't know; the placeholder is substituted at launch time. *)
  let strategy =
    Option.map
      (function
        | "precopy" -> Protocol.Precopy
        | "freeze" -> Protocol.Freeze_and_copy
        | "cor" -> Protocol.Copy_on_reference
        | _ -> Scenario.vm_flush_placeholder)
      strategy_arg
  in
  if serve_mode then
    fuzz_serve_cmd count base_seed single jobs rebind ~forwarding
      ~strategy_tok:strategy_arg ~strategy ~placement_tok:placement_arg
      ~content_cache_tok:content_cache_arg ~content_cache_for ~entries
      ~require_coverage ~require_scenario
  else
  let gen seed =
    match entries with
    | None -> Scenario.of_seed seed
    | Some es -> Scenario.Library.plain (entry_for es seed) ~seed
  in
  let prep sc =
    match strategy with None -> sc | Some s -> Scenario.force_strategy s sc
  in
  let features_of o =
    match (entries, o.Scenario.o_scenario.Scenario.sc_label) with
    | Some es, Some l -> (
        match List.find_opt (fun e -> Scenario.Library.name e = l) es with
        | Some e -> Scenario.Library.check_plain e o
        | None -> [])
    | _ -> []
  in
  let replay o =
    Scenario.replay_hint ~forwarding ?strategy:strategy_arg
      ?content_cache:content_cache_arg o.Scenario.o_scenario
  in
  match single with
  | Some seed ->
      (* Verbose single-seed replay, with full violation windows. *)
      let sc = prep (gen seed) in
      print_endline (Scenario.describe sc);
      if content_cache_for seed > 0 then
        Printf.printf "content cache: %d KiB/host\n"
          (content_cache_for seed / 1024);
      let o =
        Scenario.run ~rebind ~content_cache:(content_cache_for seed) sc
      in
      Printf.printf "%d events checked; %d job(s) completed, %d failed\n"
        o.Scenario.o_events o.Scenario.o_completed o.Scenario.o_failed;
      (match features_of o with
      | [] -> ()
      | fs ->
          Printf.printf "features: %s\n"
            (String.concat ", "
               (List.map
                  (fun (f, m) ->
                    Printf.sprintf "%s=%s" f (if m then "yes" else "no"))
                  fs)));
      if o.Scenario.o_violations = [] then begin
        print_endline "all invariants held";
        0
      end
      else begin
        List.iter
          (fun v -> Format.printf "%a@." Monitors.pp_violation v)
          o.Scenario.o_violations;
        if o.Scenario.o_violations_dropped > 0 then
          Printf.printf "(%d further violations not retained)\n"
            o.Scenario.o_violations_dropped;
        1
      end
  | None ->
      let t0 = Unix.gettimeofday () in
      let cell seed () =
        Scenario.run ~rebind
          ~content_cache:(content_cache_for seed)
          (prep (gen seed))
      in
      let results =
        Parrun.run ~jobs (List.init count (fun i -> cell (base_seed + i)))
      in
      let failed = ref 0 and events = ref 0 in
      let acc = coverage_acc () in
      List.iter
        (fun o ->
          events := !events + o.Scenario.o_events;
          coverage_note acc
            ?label:o.Scenario.o_scenario.Scenario.sc_label
            ~features:(features_of o)
            ~declared:o.Scenario.o_fault_declared
            ~fired:o.Scenario.o_fault_fired ~monitors:o.Scenario.o_monitors
            ~strategies:o.Scenario.o_strategies
            ~events:o.Scenario.o_event_kinds;
          if o.Scenario.o_violations <> [] then begin
            incr failed;
            Printf.printf "FAIL %s\n" (Scenario.describe o.Scenario.o_scenario);
            List.iter
              (fun v ->
                Printf.printf "  [%s] at %s (event #%d): %s\n"
                  v.Monitors.vi_monitor
                  (Time.to_string v.Monitors.vi_at)
                  v.Monitors.vi_seq v.Monitors.vi_detail)
              o.Scenario.o_violations;
            Printf.printf "  REPLAY: %s\n" (replay o)
          end)
        results;
      Printf.eprintf "fuzz: %d seeds (base %d) on %d domain%s in %.2f s\n%!"
        count base_seed jobs
        (if jobs = 1 then "" else "s")
        (Unix.gettimeofday () -. t0);
      let cov_failed =
        coverage_report ~require:require_coverage
          ~require_scenario:require_scenario
          ?expect:
            (Option.map (fun es -> expect_of_entries es ~serve:false) entries)
          acc
      in
      if !failed = 0 && not cov_failed then begin
        Printf.printf "fuzz: %d seeds passed, %d events checked\n" count !events;
        0
      end
      else begin
        if !failed > 0 then
          Printf.printf "fuzz: %d of %d seeds FAILED\n" !failed count;
        1
      end

(* {1 serve} *)

(* Sustained traffic against a long-running cluster: open-loop Poisson
   arrivals through the Serve session layer, with admission control, the
   balancer migrating continuously, and SLO accounting. Replicas (seed,
   seed+1, ...) are independent clusters fanned over domains; output is
   merged in replica order, so stdout is byte-identical for any -j. *)

let serve_cmd seed workstations bridged faults duration rate replicas jobs
    json_out quick slo_shed health placement_tok pod_size autoscale
    content_cache =
  let duration = if quick then Float.min duration 30. else duration in
  let placement =
    Option.map
      (fun tok ->
        let p =
          match Config.placement_of_string tok with
          | Some p -> p
          | None ->
              Printf.eprintf "vsim serve: unknown placement %S\n" tok;
              exit 124
        in
        match (p, pod_size) with
        | Config.Pod_sharded _, Some n -> Config.Pod_sharded { pod_size = n }
        | Config.Load_predictive { alpha; _ }, Some n ->
            Config.Load_predictive { pod_size = n; alpha }
        | _ -> p)
      placement_tok
  in
  let cfg =
    let base =
      if content_cache = 0 then Config.default
      else
        {
          Config.default with
          Config.os =
            {
              Config.default.Config.os with
              Os_params.content_cache_bytes = content_cache;
            };
        }
    in
    match placement with
    | Some p -> Some { base with Config.placement = p }
    | None -> if content_cache = 0 then None else Some base
  in
  let replica i () =
    match
      try
        Ok
          (Cluster.create ~seed:(seed + i) ~workstations ~bridged ?cfg ?faults
             ())
      with Invalid_argument m -> Error m
    with
    | Error m ->
        Printf.eprintf "vsim serve: fault plan: %s\n" m;
        exit 124
    | Ok cl ->
        if health then ignore (Cluster.enable_health cl);
        let params =
          {
            Serve.Session.default_params with
            Serve.Session.arrivals = Serve.Session.Poisson rate;
            duration = sec duration;
            slo_shed_multiple = slo_shed;
            autoscale =
              (if autoscale then Some Serve.Session.default_autoscale
               else None);
          }
        in
        let s = Serve.Session.create ~params cl in
        Serve.Session.drain s;
        let m = Serve.Session.metrics s in
        let pct su p =
          if Stats.Summary.count su = 0 then 0.
          else Stats.Summary.percentile su p
        in
        let summary =
          Printf.sprintf
            "seed=%-5d ws=%-3d | submitted %d, completed %d (%.2f/s), \
             rejected %d, shed %d, refused %d, failed %d, stuck %d\n\
            \  submit->running p50/p95/p99: %.0f/%.0f/%.0f ms; \
             submit->complete p95: %.0f ms; queue-wait p95: %.0f ms\n\
            \  migrations %d (%.3f/s), freeze p95 %.0f ms; balancer surveys \
             %d, skips %d; brownout %d span%s (%.0f ms)"
            (seed + i) workstations m.Serve.Session.m_submitted
            m.Serve.Session.m_completed m.Serve.Session.m_throughput_per_sec
            m.Serve.Session.m_rejected m.Serve.Session.m_shed
            m.Serve.Session.m_refused m.Serve.Session.m_failed
            m.Serve.Session.m_stuck
            (pct m.Serve.Session.m_submit_to_running_ms 50.)
            (pct m.Serve.Session.m_submit_to_running_ms 95.)
            (pct m.Serve.Session.m_submit_to_running_ms 99.)
            (pct m.Serve.Session.m_submit_to_complete_ms 95.)
            (pct m.Serve.Session.m_queue_wait_ms 95.)
            m.Serve.Session.m_migrations
            (float_of_int m.Serve.Session.m_migrations /. duration)
            (pct m.Serve.Session.m_freeze_ms 95.)
            m.Serve.Session.m_balancer_surveys m.Serve.Session.m_balancer_skips
            m.Serve.Session.m_brownout_spans
            (if m.Serve.Session.m_brownout_spans = 1 then "" else "s")
            m.Serve.Session.m_brownout_ms
        in
        let summary =
          if placement = None && not autoscale then summary
          else
            summary
            ^ Printf.sprintf
                "\n\
                \  placement %s: %d selection(s), %d timeout(s), %d credit \
                 shed(s); cap %d (min %d, max %d), %d scale event(s)"
                m.Serve.Session.m_placement_policy
                m.Serve.Session.m_placement_selections
                m.Serve.Session.m_placement_timeouts
                m.Serve.Session.m_credit_sheds m.Serve.Session.m_cap_final
                m.Serve.Session.m_cap_min m.Serve.Session.m_cap_max
                m.Serve.Session.m_scale_events
        in
        (summary, Serve.Session.metrics_to_json s)
  in
  let t0 = Unix.gettimeofday () in
  let results = Parrun.run ~jobs (List.init replicas replica) in
  Printf.eprintf "serve: %d replica%s on %d domain%s in %.2f s\n%!" replicas
    (if replicas = 1 then "" else "s")
    jobs
    (if jobs = 1 then "" else "s")
    (Unix.gettimeofday () -. t0);
  let doc =
    Json_min.Obj
      [
        ("schema", Json_min.Str "vsim-serve/1");
        ("seed", Json_min.Num (float_of_int seed));
        ("replicas", Json_min.Arr (List.map snd results));
      ]
  in
  (match json_out with
  | Some "-" -> print_string (Json_min.to_string doc)
  | Some file ->
      let oc = open_out file in
      output_string oc (Json_min.to_string doc);
      close_out oc;
      List.iter (fun (s, _) -> print_endline s) results
  | None -> List.iter (fun (s, _) -> print_endline s) results);
  0

(* {1 Command wiring} *)

open Cmdliner

let exec_t =
  let at =
    Arg.(
      value
      & opt (some string) None
      & info [ "at" ] ~docv:"HOST" ~doc:"Run on the named workstation.")
  in
  let local =
    Arg.(value & flag & info [ "local" ] ~doc:"Run on the invoking workstation.")
  in
  let reexec =
    Arg.(
      value & flag
      & info [ "reexec" ]
          ~doc:
            "Re-execute the program elsewhere (up to 3 times) if its host \
             dies under it — at-least-once semantics.")
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Run a program, by default on any idle workstation (@ *).")
    Term.(
      const exec_cmd $ seed $ workstations $ bridged $ trace $ faults_arg
      $ prog_arg $ at $ local $ reexec)

let migrate_t =
  let strategy =
    Arg.(
      value
      & opt strategy_conv `Precopy
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Migration strategy: precopy, freeze, or vmflush.")
  in
  let run_for =
    Arg.(
      value & opt float 3.0
      & info [ "run-for" ] ~docv:"SEC"
          ~doc:"Seconds the program runs before migrateprog.")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Run a program remotely, then preempt it with migrateprog.")
    Term.(
      const migrate_cmd $ seed $ workstations $ bridged $ trace $ faults_arg
      $ prog_arg $ strategy $ run_for)

let sweep_t =
  let seeds =
    Arg.(
      value & opt string "1985"
      & info [ "seeds" ] ~docv:"N,N,..."
          ~doc:"Comma-separated list of random seeds, one replica each.")
  in
  let ws_list =
    Arg.(
      value & opt string "6"
      & info [ "workstations"; "w" ] ~docv:"N,N,..."
          ~doc:"Comma-separated list of cluster sizes.")
  in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Fault plan (same syntax as elsewhere); repeatable — each \
             occurrence adds a sweep dimension value.")
  in
  let migrate =
    Arg.(
      value & flag
      & info [ "migrate" ]
          ~doc:"Measure migrateprog per cell instead of remote execution.")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv `Precopy
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Migration strategy for $(b,--migrate) cells.")
  in
  let run_for =
    Arg.(
      value & opt float 3.0
      & info [ "run-for" ] ~docv:"SEC"
          ~doc:"Seconds the program runs before migrateprog.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parrun.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains to run replicas on (default: the recommended domain \
             count). Output is byte-identical for any value.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Fan a scenario over seeds x cluster sizes x fault plans, one \
          independent replica per cell, in parallel on OCaml 5 domains.")
    Term.(
      const sweep_cmd $ prog_arg $ seeds $ ws_list $ faults $ migrate
      $ strategy $ run_for $ jobs)

let usage_t =
  let minutes =
    Arg.(
      value & opt float 10.
      & info [ "minutes" ] ~docv:"M" ~doc:"Simulated minutes.")
  in
  let rate =
    Arg.(
      value & opt float 0.1
      & info [ "rate" ] ~docv:"R" ~doc:"Job submissions per second.")
  in
  Cmd.v
    (Cmd.info "usage"
       ~doc:"Pool-of-processors scenario: owners, guests, preemptions.")
    Term.(const usage_cmd $ seed $ workstations $ faults_arg $ minutes $ rate)

let serve_t =
  let workstations =
    Arg.(
      value & opt int 64
      & info [ "workstations"; "w" ] ~docv:"N"
          ~doc:"Cluster size (the service tier defaults to 64).")
  in
  let duration =
    Arg.(
      value & opt float 120.
      & info [ "duration" ] ~docv:"SEC"
          ~doc:"Arrival horizon in simulated seconds.")
  in
  let rate =
    Arg.(
      value & opt float 2.
      & info [ "rate" ] ~docv:"R" ~doc:"Poisson arrival rate, requests/second.")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"K"
          ~doc:
            "Independent seed replicas (seed, seed+1, ...), merged in \
             replica order.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parrun.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains to fan replicas over. Output is byte-identical for any \
             value.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the metrics report (schema vsim-serve/1) to $(docv); \
             $(b,-) prints it to stdout instead of the text summary.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Cap the horizon at 30 simulated seconds.")
  in
  let slo_shed =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-shed" ] ~docv:"MULT"
          ~doc:
            "Brownout load-shedding: turn new submissions away at the door \
             while the estimated queue wait exceeds $(docv) times the 1 s \
             queue-wait SLO target, instead of queueing without bound. \
             Unset (the default) disables shedding.")
  in
  let health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Start the suspicion-based failure detector: the file server \
             probes every workstation over kernel IPC with adaptive \
             timeouts; the balancer, scheduler, and migrations then avoid \
             Dead hosts and deprioritize Suspect ones. The JSON report \
             gains a health section.")
  in
  let placement =
    Arg.(
      value
      & opt (some string) None
      & info [ "placement" ] ~docv:"P"
          ~doc:
            "Placement policy host selection dispatches through: $(b,flat) \
             (the paper's single first-responder multicast, the default), \
             $(b,pods) (pod-sharded scheduler groups with gossiped load \
             summaries routing across pods), or $(b,predictive) (pods plus \
             exponential-smoothing arrival prediction steering away from \
             pods about to saturate).")
  in
  let pod_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "pod-size" ] ~docv:"N"
          ~doc:
            "Workstations per pod for $(b,--placement) $(b,pods) and \
             $(b,predictive) (default 32).")
  in
  let autoscale =
    Arg.(
      value & flag
      & info [ "autoscale" ]
          ~doc:
            "Arm the worker-pool autoscaler: a queuing-theory controller \
             retargets the admission cap each period from smoothed arrival \
             rate and service time (Little's law over the headroom), with a \
             hysteresis band against flapping. The summary and JSON report \
             gain cap/scale-event fields.")
  in
  let content_cache =
    Arg.(
      value & opt int 0
      & info [ "content-cache" ] ~docv:"BYTES"
          ~doc:
            "Per-host content-cache budget in bytes: enables \
             content-addressed state transfer (migration manifests ship \
             only uncached pages) and deduplicated image loading \
             (multicast chunk announcements; a pod relaunching a program \
             pays the 330 ms/100 KB load once). $(b,0) (the default) \
             disables caching.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the cluster as a long-lived service: open-loop arrivals, \
          admission control, continuous rebalancing, SLO accounting.")
    Term.(
      const serve_cmd $ seed $ workstations $ bridged $ faults_arg $ duration
      $ rate $ replicas $ jobs $ json_out $ quick $ slo_shed $ health
      $ placement $ pod_size $ autoscale $ content_cache)

let programs_t =
  Cmd.v
    (Cmd.info "programs" ~doc:"List the paper's programs and their models.")
    Term.(const programs_cmd $ const ())

let fuzz_t =
  let count =
    Arg.(
      value & opt int 64
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to fuzz.")
  in
  let base =
    Arg.(
      value & opt int 1
      & info [ "base-seed" ] ~docv:"N"
          ~doc:"First seed; seeds $(docv)..$(docv)+count-1 are run.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parrun.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains to fan seeds over (each seed is one replica).")
  in
  let require_coverage =
    Arg.(
      value & flag
      & info [ "require-fault-coverage" ]
          ~doc:
            "After an aggregate run, fail unless every fault kind declared by \
             some scenario actually fired and every invariant monitor \
             inspected at least one event — a green run must prove the fault \
             matrix was exercised, not merely scheduled.")
  in
  let require_scenario =
    Arg.(
      value & flag
      & info [ "require-scenario-coverage" ]
          ~doc:
            "With $(b,--scenario): additionally fail unless every sampled \
             library entry ran, every feature it declares (spike, heal, \
             storm, brownout, residual) materialized at least once, and \
             every migration strategy it promises actually started. Implies \
             $(b,--require-fault-coverage).")
  in
  (* The shared replay flags (--scenario/--seed/--serve/--forwarding/
     --strategy) come from Replay.term: the same parser that REPLAY
     hint lines round-trip through. *)
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run randomly generated scenarios (seed = test case) under the \
          online invariant monitors; failures print a replayable seed.")
    Term.(
      const fuzz_cmd $ count $ base $ jobs $ Replay.term $ require_coverage
      $ require_scenario)

let () =
  let info =
    Cmd.info "vsim" ~version:"1.0"
      ~doc:
        "Simulated V-System cluster: preemptable remote execution and \
         migration (SOSP 1985 reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ exec_t; migrate_t; sweep_t; usage_t; serve_t; programs_t; fuzz_t ]))
