type target = Target_any | Target_host of int | Target_local

type job = {
  j_at : Time.t;
  j_ws : int;
  j_prog : string;
  j_target : target;
  j_migrate_after : Time.span option;
  j_strategy : Protocol.strategy;
}

type t = {
  sc_seed : int;
  sc_workstations : int;
  sc_bridged : int;
  sc_jobs : job list;
  sc_faults : Faults.plan;
  sc_horizon : Time.t;
}

(* tex (30 cpu-seconds) is excluded: it rarely finishes inside a fuzz
   horizon and only stretches wall time. *)
let programs =
  [|
    "cc68";
    "make";
    "preprocessor";
    "assembler";
    "linking loader";
    "optimizer";
    "parser";
  |]

let gen_fault_event rng ~ws ~bridged =
  let host () = Printf.sprintf "ws%d" (Rng.int rng ws) in
  let window lo_s span_s =
    let start = Time.of_us (lo_s * 1_000_000 + Rng.int rng 4_000_000) in
    let stop =
      Time.add start (Time.of_us (1_000_000 + Rng.int rng (span_s * 1_000_000)))
    in
    (start, stop)
  in
  match Rng.int rng 6 with
  | 0 ->
      let h = host () in
      let at = Time.of_us (2_000_000 + Rng.int rng 8_000_000) in
      let crash = Faults.Crash_host { host = h; at } in
      if Rng.bool rng 0.6 then
        [
          crash;
          Faults.Reboot_host
            {
              host = h;
              at = Time.add at (Time.of_us (2_000_000 + Rng.int rng 4_000_000));
            };
        ]
      else [ crash ]
  | 1 ->
      let start, stop = window 1 5 in
      [ Faults.Loss_window { p = 0.005 +. Rng.float rng 0.04; start; stop } ]
  | 2 ->
      let start, stop = window 1 8 in
      [
        Faults.Slow_host
          {
            host = host ();
            factor = 2. +. float_of_int (Rng.int rng 6);
            start;
            stop;
          };
      ]
  | 3 ->
      let start, stop = window 1 6 in
      [ Faults.Flaky_host { host = host (); start; stop } ]
  | 4 ->
      (* Correlated rack crash of 2–3 distinct hosts, each rebooted
         later so the cluster ends the scenario whole. *)
      let n = if ws > 3 && Rng.bool rng 0.5 then 3 else 2 in
      let rec pick acc =
        if List.length acc >= n then List.rev acc
        else
          let h = Rng.int rng ws in
          pick (if List.mem h acc then acc else h :: acc)
      in
      let hosts = List.map (Printf.sprintf "ws%d") (pick []) in
      let at = Time.of_us (2_000_000 + Rng.int rng 8_000_000) in
      Faults.Crash_rack { hosts; at }
      :: List.map
           (fun h ->
             Faults.Reboot_host
               {
                 host = h;
                 at =
                   Time.add at
                     (Time.of_us (2_000_000 + Rng.int rng 4_000_000));
               })
           hosts
  | _ ->
      if bridged > 0 then begin
        let start, stop = window 2 4 in
        [ Faults.Partition_bridge { start; stop } ]
      end
      else begin
        let start, stop = window 1 5 in
        [ Faults.Loss_window { p = 0.005 +. Rng.float rng 0.04; start; stop } ]
      end

let arbitrary ?(seed = 0) rng =
  let ws = 3 + Rng.int rng 6 in
  let bridged = if Rng.bool rng 0.3 then 1 + Rng.int rng (ws / 2) else 0 in
  let njobs = 1 + Rng.int rng 4 in
  let jobs =
    List.init njobs (fun _ ->
        let j_at = Time.of_us (Rng.int rng 5_000_000) in
        let j_ws = Rng.int rng ws in
        let j_prog = programs.(Rng.int rng (Array.length programs)) in
        let j_target =
          match Rng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 | 5 -> Target_any
          | 6 | 7 -> Target_host (Rng.int rng ws)
          | _ -> Target_local
        in
        let j_migrate_after =
          if Rng.bool rng 0.5 then
            Some (Time.of_us (1_000_000 + Rng.int rng 4_000_000))
          else None
        in
        let j_strategy =
          if Rng.bool rng 0.25 then Protocol.Freeze_and_copy
          else Protocol.Precopy
        in
        { j_at; j_ws; j_prog; j_target; j_migrate_after; j_strategy })
  in
  let sc_faults =
    List.concat (List.init (Rng.int rng 3) (fun _ -> gen_fault_event rng ~ws ~bridged))
  in
  {
    sc_seed = seed;
    sc_workstations = ws;
    sc_bridged = bridged;
    sc_jobs = jobs;
    sc_faults;
    sc_horizon = Time.of_sec (18. +. (4. *. float_of_int njobs));
  }

let of_seed seed = arbitrary ~seed (Rng.create seed)

(* Mutation mode for `vsim fuzz --strategy`: take a generated scenario
   and force every job onto one copy discipline. Applied after the
   normal draws, so seeds keep producing byte-identical scenarios when
   no strategy is forced. Migrations are made unconditional (jobs
   without one draw a fixed mid-run instant) and fault plans dropped, so
   every seed actually exercises the strategy under test rather than
   hiding behind a crashed destination. *)
let force_strategy strategy sc =
  {
    sc with
    sc_jobs =
      List.map
        (fun j ->
          {
            j with
            j_strategy = strategy;
            j_migrate_after =
              (match j.j_migrate_after with
              | Some _ as d -> d
              | None -> Some (Time.of_us 1_500_000));
          })
        sc.sc_jobs;
    sc_faults = [];
  }

let describe sc =
  let job_word (j : job) =
    Printf.sprintf "%s@%s%s" j.j_prog
      (match j.j_target with
      | Target_any -> "*"
      | Target_host h -> Printf.sprintf "ws%d" h
      | Target_local -> "local")
      (match j.j_migrate_after with
      | Some d -> Printf.sprintf "+mig@%s" (Time.to_string d)
      | None -> "")
  in
  Printf.sprintf "seed %d: %d ws (%d bridged), jobs [%s], faults [%s], horizon %s"
    sc.sc_seed sc.sc_workstations sc.sc_bridged
    (String.concat "; " (List.map job_word sc.sc_jobs))
    (Format.asprintf "%a" Faults.pp_plan sc.sc_faults)
    (Time.to_string sc.sc_horizon)

let replay_hint sc = Printf.sprintf "vsim fuzz --seed %d" sc.sc_seed

type outcome = {
  o_scenario : t;
  o_violations : Monitors.violation list;
  o_violations_dropped : int;
  o_events : int;
  o_completed : int;
  o_failed : int;
  o_fault_declared : string list;
  o_fault_fired : (string * int) list;
  o_monitors : (string * int) list;
}

let launch cl (j : job) ~completed ~failed =
  let eng = Cluster.engine cl in
  ignore
    (Cluster.shell cl ~ws:j.j_ws ~name:"fuzz-shell" (fun ctx ->
         let target =
           match j.j_target with
           | Target_any -> Remote_exec.Any
           | Target_local -> Remote_exec.Local
           | Target_host h -> Remote_exec.Named (Printf.sprintf "ws%d" h)
         in
         match Remote_exec.exec ctx ~prog:j.j_prog ~target with
         | Error _ -> incr failed
         | Ok h -> (
             (match j.j_migrate_after with
             | Some d ->
                 Proc.sleep eng d;
                 (* Address the manager by its stable pid: it stays put
                    when the program moves (see Experiment). *)
                 let pm =
                   match Cluster.find_workstation cl h.Remote_exec.h_host with
                   | Some w -> Program_manager.pid w.Cluster.ws_pm
                   | None -> Ids.program_manager_of h.Remote_exec.h_lh
                 in
                 ignore
                   (Kernel.send (Context.kernel ctx) ~src:(Context.self ctx)
                      ~dst:pm
                      (Message.make
                         (Protocol.Pm_migrate
                            {
                              lh = Some h.Remote_exec.h_lh;
                              dest = None;
                              force_destroy = false;
                              strategy = j.j_strategy;
                            })))
             | None -> ());
             match Remote_exec.wait ctx h with
             | Ok _ -> incr completed
             | Error _ -> incr failed)))

let fired_of cl =
  match Cluster.faults cl with Some f -> Faults.fired_counts f | None -> []

let run ?(rebind = Os_params.Broadcast_query) sc =
  let cfg =
    let base = Config.with_default_budgets Config.default in
    if base.Config.os.Os_params.rebind = rebind then base
    else { base with Config.os = { base.Config.os with Os_params.rebind } }
  in
  let cl =
    Cluster.create ~seed:sc.sc_seed ~workstations:sc.sc_workstations
      ~bridged:sc.sc_bridged ~cfg ~trace:true
      ?faults:(match sc.sc_faults with [] -> None | plan -> Some plan)
      ()
  in
  ignore (Cluster.enable_health cl);
  let mon = Monitors.attach (Cluster.tracer cl) in
  let eng = Cluster.engine cl in
  let completed = ref 0 and failed = ref 0 in
  List.iter
    (fun j ->
      Engine.post eng ~at:j.j_at (fun () -> launch cl j ~completed ~failed))
    sc.sc_jobs;
  Cluster.run cl ~until:sc.sc_horizon;
  {
    o_scenario = sc;
    o_violations = Monitors.violations mon;
    o_violations_dropped = Monitors.dropped mon;
    o_events = Tracer.seq (Cluster.tracer cl);
    o_completed = !completed;
    o_failed = !failed;
    o_fault_declared = Faults.declared_kinds sc.sc_faults;
    o_fault_fired = fired_of cl;
    o_monitors = Monitors.coverage mon;
  }

(* {1 Serve mode: sustained-load scenarios} *)

type serve = {
  sv_seed : int;
  sv_workstations : int;
  sv_bridged : int;
  sv_rate : float;
  sv_duration : Time.span;
  sv_max_in_flight : int;
  sv_queue_limit : int;
  sv_balancer_interval : Time.span;
  sv_slo_shed : float option;
  sv_faults : Faults.plan;
}

let arbitrary_serve ?(seed = 0) rng =
  let ws = 4 + Rng.int rng 9 in
  let bridged = if Rng.bool rng 0.25 then 1 + Rng.int rng (ws / 2) else 0 in
  let rate = 0.5 +. Rng.float rng 2.5 in
  let duration = Time.of_us (15_000_000 + Rng.int rng 15_000_000) in
  let faults =
    List.concat
      (List.init (Rng.int rng 3) (fun _ -> gen_fault_event rng ~ws ~bridged))
  in
  {
    sv_seed = seed;
    sv_workstations = ws;
    sv_bridged = bridged;
    sv_rate = rate;
    sv_duration = duration;
    sv_max_in_flight = 2 + Rng.int rng 7;
    sv_queue_limit = 2 + Rng.int rng 7;
    sv_balancer_interval = Time.of_us (2_000_000 + Rng.int rng 3_000_000);
    (* Half the scenarios run with brownout shedding armed, so the
       overload-graceful path is fuzzed as hard as the happy path. *)
    sv_slo_shed =
      (if Rng.bool rng 0.5 then Some (1.5 +. Rng.float rng 3.) else None);
    sv_faults = faults;
  }

let serve_of_seed seed = arbitrary_serve ~seed (Rng.create seed)

let describe_serve sv =
  Printf.sprintf
    "serve seed %d: %d ws (%d bridged), %.2f req/s for %s, cap %d + queue %d, \
     shed %s, faults [%s]"
    sv.sv_seed sv.sv_workstations sv.sv_bridged sv.sv_rate
    (Time.to_string sv.sv_duration)
    sv.sv_max_in_flight sv.sv_queue_limit
    (match sv.sv_slo_shed with
    | Some m -> Printf.sprintf "%.2fxSLO" m
    | None -> "off")
    (Format.asprintf "%a" Faults.pp_plan sv.sv_faults)

let replay_serve_hint sv = Printf.sprintf "vsim fuzz --serve --seed %d" sv.sv_seed

type serve_outcome = {
  so_scenario : serve;
  so_violations : Monitors.violation list;
  so_violations_dropped : int;
  so_events : int;
  so_submitted : int;
  so_completed : int;
  so_shed : int;
  so_stuck : int;
  so_fault_declared : string list;
  so_fault_fired : (string * int) list;
  so_monitors : (string * int) list;
}

let run_serve ?(rebind = Os_params.Broadcast_query) ?strategy sv =
  let cfg =
    let base = Config.with_default_budgets Config.default in
    if base.Config.os.Os_params.rebind = rebind then base
    else { base with Config.os = { base.Config.os with Os_params.rebind } }
  in
  let cl =
    Cluster.create ~seed:sv.sv_seed ~workstations:sv.sv_workstations
      ~bridged:sv.sv_bridged ~cfg ~trace:true
      ?faults:(match sv.sv_faults with [] -> None | plan -> Some plan)
      ()
  in
  ignore (Cluster.enable_health cl);
  let mon = Monitors.attach (Cluster.tracer cl) in
  let params =
    {
      Serve.Session.default_params with
      Serve.Session.arrivals = Serve.Session.Poisson sv.sv_rate;
      duration = sv.sv_duration;
      (* tex is excluded for the same horizon reasons as in [programs]. *)
      progs =
        [ "cc68"; "make"; "preprocessor"; "assembler"; "parser"; "optimizer" ];
      max_in_flight = sv.sv_max_in_flight;
      queue_limit = sv.sv_queue_limit;
      balancer_interval = Some sv.sv_balancer_interval;
      strategy;
      snapshot_every = None;
      reexec_budget = Some 64;
      slo_shed_multiple = sv.sv_slo_shed;
      drain_grace = Time.of_sec 30.;
    }
  in
  let session = Serve.Session.create ~params cl in
  Serve.Session.drain session;
  let m = Serve.Session.metrics session in
  {
    so_scenario = sv;
    so_violations = Monitors.violations mon;
    so_violations_dropped = Monitors.dropped mon;
    so_events = Tracer.seq (Cluster.tracer cl);
    so_submitted = m.Serve.Session.m_submitted;
    so_completed = m.Serve.Session.m_completed;
    so_shed = m.Serve.Session.m_shed;
    so_stuck = m.Serve.Session.m_stuck;
    so_fault_declared = Faults.declared_kinds sv.sv_faults;
    so_fault_fired = fired_of cl;
    so_monitors = Monitors.coverage mon;
  }
