type target = Target_any | Target_host of int | Target_local

type job = {
  j_at : Time.t;
  j_ws : int;
  j_prog : string;
  j_target : target;
  j_migrate_after : Time.span option;
  j_strategy : Protocol.strategy;
}

type t = {
  sc_seed : int;
  sc_label : string option;
  sc_workstations : int;
  sc_bridged : int;
  sc_jobs : job list;
  sc_faults : Faults.plan;
  sc_horizon : Time.t;
  sc_expect_residual : bool;
}

(* tex (30 cpu-seconds) is excluded: it rarely finishes inside a fuzz
   horizon and only stretches wall time. *)
let programs =
  [|
    "cc68";
    "make";
    "preprocessor";
    "assembler";
    "linking loader";
    "optimizer";
    "parser";
  |]

let gen_fault_event rng ~ws ~bridged =
  let host () = Printf.sprintf "ws%d" (Rng.int rng ws) in
  let window lo_s span_s =
    let start = Time.of_us (lo_s * 1_000_000 + Rng.int rng 4_000_000) in
    let stop =
      Time.add start (Time.of_us (1_000_000 + Rng.int rng (span_s * 1_000_000)))
    in
    (start, stop)
  in
  match Rng.int rng 6 with
  | 0 ->
      let h = host () in
      let at = Time.of_us (2_000_000 + Rng.int rng 8_000_000) in
      let crash = Faults.Crash_host { host = h; at } in
      if Rng.bool rng 0.6 then
        [
          crash;
          Faults.Reboot_host
            {
              host = h;
              at = Time.add at (Time.of_us (2_000_000 + Rng.int rng 4_000_000));
            };
        ]
      else [ crash ]
  | 1 ->
      let start, stop = window 1 5 in
      [ Faults.Loss_window { p = 0.005 +. Rng.float rng 0.04; start; stop } ]
  | 2 ->
      let start, stop = window 1 8 in
      [
        Faults.Slow_host
          {
            host = host ();
            factor = 2. +. float_of_int (Rng.int rng 6);
            start;
            stop;
          };
      ]
  | 3 ->
      let start, stop = window 1 6 in
      [ Faults.Flaky_host { host = host (); start; stop } ]
  | 4 ->
      (* Correlated rack crash of 2–3 distinct hosts, each rebooted
         later so the cluster ends the scenario whole. *)
      let n = if ws > 3 && Rng.bool rng 0.5 then 3 else 2 in
      let rec pick acc =
        if List.length acc >= n then List.rev acc
        else
          let h = Rng.int rng ws in
          pick (if List.mem h acc then acc else h :: acc)
      in
      let hosts = List.map (Printf.sprintf "ws%d") (pick []) in
      let at = Time.of_us (2_000_000 + Rng.int rng 8_000_000) in
      Faults.Crash_rack { hosts; at }
      :: List.map
           (fun h ->
             Faults.Reboot_host
               {
                 host = h;
                 at =
                   Time.add at
                     (Time.of_us (2_000_000 + Rng.int rng 4_000_000));
               })
           hosts
  | _ ->
      if bridged > 0 then begin
        let start, stop = window 2 4 in
        [ Faults.Partition_bridge { start; stop } ]
      end
      else begin
        let start, stop = window 1 5 in
        [ Faults.Loss_window { p = 0.005 +. Rng.float rng 0.04; start; stop } ]
      end

let arbitrary ?(seed = 0) rng =
  let ws = 3 + Rng.int rng 6 in
  let bridged = if Rng.bool rng 0.3 then 1 + Rng.int rng (ws / 2) else 0 in
  let njobs = 1 + Rng.int rng 4 in
  let jobs =
    List.init njobs (fun _ ->
        let j_at = Time.of_us (Rng.int rng 5_000_000) in
        let j_ws = Rng.int rng ws in
        let j_prog = programs.(Rng.int rng (Array.length programs)) in
        let j_target =
          match Rng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 | 5 -> Target_any
          | 6 | 7 -> Target_host (Rng.int rng ws)
          | _ -> Target_local
        in
        let j_migrate_after =
          if Rng.bool rng 0.5 then
            Some (Time.of_us (1_000_000 + Rng.int rng 4_000_000))
          else None
        in
        let j_strategy =
          if Rng.bool rng 0.25 then Protocol.Freeze_and_copy
          else Protocol.Precopy
        in
        { j_at; j_ws; j_prog; j_target; j_migrate_after; j_strategy })
  in
  let sc_faults =
    List.concat (List.init (Rng.int rng 3) (fun _ -> gen_fault_event rng ~ws ~bridged))
  in
  {
    sc_seed = seed;
    sc_label = None;
    sc_workstations = ws;
    sc_bridged = bridged;
    sc_jobs = jobs;
    sc_faults;
    sc_horizon = Time.of_sec (18. +. (4. *. float_of_int njobs));
    sc_expect_residual = false;
  }

let of_seed seed = arbitrary ~seed (Rng.create seed)

(* Mutation mode for `vsim fuzz --strategy`: take a generated scenario
   and force every job onto one copy discipline. Applied after the
   normal draws, so seeds keep producing byte-identical scenarios when
   no strategy is forced. Migrations are made unconditional (jobs
   without one draw a fixed mid-run instant) and fault plans dropped, so
   every seed actually exercises the strategy under test rather than
   hiding behind a crashed destination. [sc_expect_residual] is NOT set:
   forcing copy-on-reference must keep tripping the residual monitor —
   that is the built-in mutation test. *)
let force_strategy strategy sc =
  {
    sc with
    sc_jobs =
      List.map
        (fun j ->
          {
            j with
            j_strategy = strategy;
            j_migrate_after =
              (match j.j_migrate_after with
              | Some _ as d -> d
              | None -> Some (Time.of_us 1_500_000));
          })
        sc.sc_jobs;
    sc_faults = [];
  }

let describe sc =
  let job_word (j : job) =
    Printf.sprintf "%s@%s%s" j.j_prog
      (match j.j_target with
      | Target_any -> "*"
      | Target_host h -> Printf.sprintf "ws%d" h
      | Target_local -> "local")
      (match j.j_migrate_after with
      | Some d -> Printf.sprintf "+mig@%s" (Time.to_string d)
      | None -> "")
  in
  Printf.sprintf
    "%sseed %d: %d ws (%d bridged), jobs [%s], faults [%s], horizon %s"
    (match sc.sc_label with Some l -> l ^ " " | None -> "")
    sc.sc_seed sc.sc_workstations sc.sc_bridged
    (String.concat "; " (List.map job_word sc.sc_jobs))
    (Format.asprintf "%a" Faults.pp_plan sc.sc_faults)
    (Time.to_string sc.sc_horizon)

let replay_hint ?(forwarding = false) ?strategy ?content_cache sc =
  Replay.format
    (Replay.make ?scenario:sc.sc_label ~seed:sc.sc_seed ~forwarding ?strategy
       ?content_cache ())

(* {1 Coverage collection}

   A per-run trace subscriber that records which extensible trace-event
   constructors were observed (keyed by constructor name, so no view
   rendering on the hot path — one [Tracer.view] per distinct
   constructor at the end) and which migration strategies actually
   started, by name from [Mig_start]. *)

module Coverage = struct
  type nonrec t = {
    kinds : (string, Tracer.event * int ref) Hashtbl.t;
    strategies : (string, int ref) Hashtbl.t;
  }

  let attach trc =
    let c = { kinds = Hashtbl.create 64; strategies = Hashtbl.create 4 } in
    Tracer.on_event trc (fun r ->
        let ev = r.Tracer.ev in
        let key = Obj.Extension_constructor.(name (of_val ev)) in
        (match Hashtbl.find_opt c.kinds key with
        | Some (_, n) -> incr n
        | None -> Hashtbl.add c.kinds key (ev, ref 1));
        match ev with
        | Migration.Mig_start { strategy; _ } -> (
            match Hashtbl.find_opt c.strategies strategy with
            | Some n -> incr n
            | None -> Hashtbl.add c.strategies strategy (ref 1))
        | _ -> ());
    c

  let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

  (* Rendered as "category/type" via the registered views; distinct
     constructors mapping to one view key merge their counts, and
     unregistered constructors fall back to the OCaml constructor
     name. *)
  let event_kinds c =
    let merged = Hashtbl.create 64 in
    Hashtbl.iter
      (fun ctor (ev, n) ->
        let v = Tracer.view ev in
        let key =
          if v.Tracer.v_cat = "" && v.Tracer.v_type = "" then ctor
          else v.Tracer.v_cat ^ "/" ^ v.Tracer.v_type
        in
        match Hashtbl.find_opt merged key with
        | Some m -> m := !m + !n
        | None -> Hashtbl.add merged key (ref !n))
      c.kinds;
    sorted (Hashtbl.fold (fun k n acc -> (k, !n) :: acc) merged [])

  let strategies c =
    sorted (Hashtbl.fold (fun k n acc -> (k, !n) :: acc) c.strategies [])
end

type outcome = {
  o_scenario : t;
  o_violations : Monitors.violation list;
  o_violations_dropped : int;
  o_residual_seen : int;
  o_events : int;
  o_completed : int;
  o_failed : int;
  o_fault_declared : string list;
  o_fault_fired : (string * int) list;
  o_monitors : (string * int) list;
  o_strategies : (string * int) list;
  o_event_kinds : (string * int) list;
}

(* Library scenarios can name vm-flush before a cluster exists; the
   page-server pid is only known at run time. Generators use this
   placeholder and [resolve_strategy] patches it per cluster. *)
let vm_flush_placeholder = Protocol.Vm_flush { page_server = Ids.pid (-1) 0 }

let resolve_strategy cl = function
  | Protocol.Vm_flush { page_server } when page_server.Ids.lh < 0 ->
      Protocol.Vm_flush
        { page_server = File_server.pid (Cluster.file_server cl) }
  | s -> s

let launch cl (j : job) ~completed ~failed =
  let eng = Cluster.engine cl in
  ignore
    (Cluster.shell cl ~ws:j.j_ws ~name:"fuzz-shell" (fun ctx ->
         let target =
           match j.j_target with
           | Target_any -> Remote_exec.Any
           | Target_local -> Remote_exec.Local
           | Target_host h -> Remote_exec.Named (Printf.sprintf "ws%d" h)
         in
         match Remote_exec.exec ctx ~prog:j.j_prog ~target with
         | Error _ -> incr failed
         | Ok h -> (
             (match j.j_migrate_after with
             | Some d ->
                 Proc.sleep eng d;
                 (* Address the manager by its stable pid: it stays put
                    when the program moves (see Experiment). *)
                 let pm =
                   match Cluster.find_workstation cl h.Remote_exec.h_host with
                   | Some w -> Program_manager.pid w.Cluster.ws_pm
                   | None -> Ids.program_manager_of h.Remote_exec.h_lh
                 in
                 ignore
                   (Kernel.send (Context.kernel ctx) ~src:(Context.self ctx)
                      ~dst:pm
                      (Message.make
                         (Protocol.Pm_migrate
                            {
                              lh = Some h.Remote_exec.h_lh;
                              dest = None;
                              force_destroy = false;
                              strategy = resolve_strategy cl j.j_strategy;
                            })))
             | None -> ());
             match Remote_exec.wait ctx h with
             | Ok _ -> incr completed
             | Error _ -> incr failed)))

let fired_of cl =
  match Cluster.faults cl with Some f -> Faults.fired_counts f | None -> []

(* Scenarios that deliberately run copy-on-reference (migrate-storm)
   expect the residual monitor to object — that is the point of the
   monitor. Their residual violations are split out into
   [o_residual_seen] so they gate as a coverage feature instead of a
   failure; everything else stays a violation. *)
let split_residual ~expect violations =
  if not expect then (0, violations)
  else
    let res, rest =
      List.partition
        (fun v -> v.Monitors.vi_monitor = "residual")
        violations
    in
    (List.length res, rest)

let run_cluster ?(rebind = Os_params.Broadcast_query) ?(content_cache = 0) sc
    =
  let cfg =
    let base = Config.with_default_budgets Config.default in
    let base =
      if base.Config.os.Os_params.rebind = rebind then base
      else { base with Config.os = { base.Config.os with Os_params.rebind } }
    in
    if base.Config.os.Os_params.content_cache_bytes = content_cache then base
    else
      {
        base with
        Config.os =
          { base.Config.os with Os_params.content_cache_bytes = content_cache };
      }
  in
  let cl =
    Cluster.create ~seed:sc.sc_seed ~workstations:sc.sc_workstations
      ~bridged:sc.sc_bridged ~cfg ~trace:true
      ?faults:(match sc.sc_faults with [] -> None | plan -> Some plan)
      ()
  in
  ignore (Cluster.enable_health cl);
  let mon = Monitors.attach (Cluster.tracer cl) in
  let cov = Coverage.attach (Cluster.tracer cl) in
  let eng = Cluster.engine cl in
  let completed = ref 0 and failed = ref 0 in
  List.iter
    (fun j ->
      Engine.post eng ~at:j.j_at (fun () -> launch cl j ~completed ~failed))
    sc.sc_jobs;
  Cluster.run cl ~until:sc.sc_horizon;
  let residual_seen, violations =
    split_residual ~expect:sc.sc_expect_residual (Monitors.violations mon)
  in
  ( {
      o_scenario = sc;
      o_violations = violations;
      o_violations_dropped = Monitors.dropped mon;
      o_residual_seen = residual_seen;
      o_events = Tracer.seq (Cluster.tracer cl);
      o_completed = !completed;
      o_failed = !failed;
      o_fault_declared = Faults.declared_kinds sc.sc_faults;
      o_fault_fired = fired_of cl;
      o_monitors = Monitors.coverage mon;
      o_strategies = Coverage.strategies cov;
      o_event_kinds = Coverage.event_kinds cov;
    },
    cl )

let run ?rebind ?content_cache sc = fst (run_cluster ?rebind ?content_cache sc)

(* {1 Serve mode: sustained-load scenarios} *)

let serve_programs =
  [ "cc68"; "make"; "preprocessor"; "assembler"; "parser"; "optimizer" ]

type serve = {
  sv_seed : int;
  sv_label : string option;
  sv_workstations : int;
  sv_bridged : int;
  sv_rate : float;
  sv_modulation : Arrivals.modulation;
  sv_duration : Time.span;
  sv_progs : string list;
  sv_max_in_flight : int;
  sv_queue_limit : int;
  sv_balancer_interval : Time.span;
  sv_strategy : Protocol.strategy option;
  sv_slo_shed : float option;
  sv_placement : Config.placement;
  sv_faults : Faults.plan;
}

let placement_token = function
  | Config.Flat_multicast -> "flat"
  | Config.Pod_sharded { pod_size } -> Printf.sprintf "pods/%d" pod_size
  | Config.Load_predictive { pod_size; _ } ->
      Printf.sprintf "predictive/%d" pod_size

let arbitrary_serve ?(seed = 0) rng =
  let ws = 4 + Rng.int rng 9 in
  let bridged = if Rng.bool rng 0.25 then 1 + Rng.int rng (ws / 2) else 0 in
  let rate = 0.5 +. Rng.float rng 2.5 in
  let duration = Time.of_us (15_000_000 + Rng.int rng 15_000_000) in
  let faults =
    List.concat
      (List.init (Rng.int rng 3) (fun _ -> gen_fault_event rng ~ws ~bridged))
  in
  (* Half flat, a quarter each pod-sharded and predictive, with pod
     sizes small enough that a 4-12 ws pool splits into several pods. *)
  let placement =
    match Rng.int rng 4 with
    | 0 -> Config.Pod_sharded { pod_size = 2 + Rng.int rng 3 }
    | 1 ->
        Config.Load_predictive
          { pod_size = 2 + Rng.int rng 3; alpha = 0.2 +. Rng.float rng 0.4 }
    | _ -> Config.Flat_multicast
  in
  {
    sv_seed = seed;
    sv_label = None;
    sv_workstations = ws;
    sv_bridged = bridged;
    sv_rate = rate;
    sv_modulation = Arrivals.Constant;
    sv_duration = duration;
    (* tex is excluded for the same horizon reasons as in [programs]. *)
    sv_progs = serve_programs;
    sv_max_in_flight = 2 + Rng.int rng 7;
    sv_queue_limit = 2 + Rng.int rng 7;
    sv_balancer_interval = Time.of_us (2_000_000 + Rng.int rng 3_000_000);
    sv_strategy = None;
    (* Half the scenarios run with brownout shedding armed, so the
       overload-graceful path is fuzzed as hard as the happy path. *)
    sv_slo_shed =
      (if Rng.bool rng 0.5 then Some (1.5 +. Rng.float rng 3.) else None);
    sv_placement = placement;
    sv_faults = faults;
  }

let serve_of_seed seed = arbitrary_serve ~seed (Rng.create seed)

let describe_serve sv =
  Printf.sprintf
    "%sserve seed %d: %d ws (%d bridged), %.2f req/s (%s) for %s, cap %d + \
     queue %d, shed %s, placement %s, faults [%s]"
    (match sv.sv_label with Some l -> l ^ " " | None -> "")
    sv.sv_seed sv.sv_workstations sv.sv_bridged sv.sv_rate
    (Arrivals.modulation_to_string sv.sv_modulation)
    (Time.to_string sv.sv_duration)
    sv.sv_max_in_flight sv.sv_queue_limit
    (match sv.sv_slo_shed with
    | Some m -> Printf.sprintf "%.2fxSLO" m
    | None -> "off")
    (placement_token sv.sv_placement)
    (Format.asprintf "%a" Faults.pp_plan sv.sv_faults)

let replay_serve_hint ?(forwarding = false) ?strategy ?placement
    ?content_cache sv =
  Replay.format
    (Replay.make ?scenario:sv.sv_label ~seed:sv.sv_seed ~serve:true
       ~forwarding ?strategy ?placement ?content_cache ())

type serve_outcome = {
  so_scenario : serve;
  so_violations : Monitors.violation list;
  so_violations_dropped : int;
  so_events : int;
  so_submitted : int;
  so_completed : int;
  so_shed : int;
  so_stuck : int;
  so_fault_declared : string list;
  so_fault_fired : (string * int) list;
  so_monitors : (string * int) list;
  so_strategies : (string * int) list;
  so_event_kinds : (string * int) list;
  so_placements : (string * int) list;
      (** Placement policy the run dispatched through, with its
          selection count — the coverage dimension the serve fuzzer
          gates on. *)
}

let run_serve_cluster ?(rebind = Os_params.Broadcast_query)
    ?(content_cache = 0) ?strategy ?placement sv =
  let placement =
    match placement with Some p -> p | None -> sv.sv_placement
  in
  let cfg =
    let base = Config.with_default_budgets Config.default in
    let base =
      if base.Config.os.Os_params.rebind = rebind then base
      else { base with Config.os = { base.Config.os with Os_params.rebind } }
    in
    let base =
      if base.Config.os.Os_params.content_cache_bytes = content_cache then
        base
      else
        {
          base with
          Config.os =
            {
              base.Config.os with
              Os_params.content_cache_bytes = content_cache;
            };
        }
    in
    if base.Config.placement = placement then base
    else { base with Config.placement }
  in
  let cl =
    Cluster.create ~seed:sv.sv_seed ~workstations:sv.sv_workstations
      ~bridged:sv.sv_bridged ~cfg ~trace:true
      ?faults:(match sv.sv_faults with [] -> None | plan -> Some plan)
      ()
  in
  ignore (Cluster.enable_health cl);
  let mon = Monitors.attach (Cluster.tracer cl) in
  let cov = Coverage.attach (Cluster.tracer cl) in
  let strategy =
    Option.map (resolve_strategy cl)
      (match strategy with Some _ -> strategy | None -> sv.sv_strategy)
  in
  let params =
    {
      Serve.Session.default_params with
      Serve.Session.arrivals =
        (match sv.sv_modulation with
        | Arrivals.Constant -> Serve.Session.Poisson sv.sv_rate
        | m -> Serve.Session.Modulated { rate = sv.sv_rate; modulation = m });
      duration = sv.sv_duration;
      progs = sv.sv_progs;
      max_in_flight = sv.sv_max_in_flight;
      queue_limit = sv.sv_queue_limit;
      balancer_interval = Some sv.sv_balancer_interval;
      strategy;
      snapshot_every = None;
      reexec_budget = Some 64;
      slo_shed_multiple = sv.sv_slo_shed;
      drain_grace = Time.of_sec 30.;
      (* Pod-based runs arm the autoscaler so the fuzzer exercises the
         grow/shrink machinery alongside the sharded selection path. *)
      autoscale =
        (match placement with
        | Config.Flat_multicast -> None
        | Config.Pod_sharded _ | Config.Load_predictive _ ->
            Some
              {
                Serve.Session.default_autoscale with
                Serve.Session.au_min = max 2 (sv.sv_max_in_flight / 2);
                au_max = sv.sv_max_in_flight * 4;
              });
    }
  in
  let session = Serve.Session.create ~params cl in
  Serve.Session.drain session;
  let m = Serve.Session.metrics session in
  ( {
      so_scenario = sv;
      so_violations = Monitors.violations mon;
      so_violations_dropped = Monitors.dropped mon;
      so_events = Tracer.seq (Cluster.tracer cl);
      so_submitted = m.Serve.Session.m_submitted;
      so_completed = m.Serve.Session.m_completed;
      so_shed = m.Serve.Session.m_shed;
      so_stuck = m.Serve.Session.m_stuck;
      so_fault_declared = Faults.declared_kinds sv.sv_faults;
      so_fault_fired = fired_of cl;
      so_monitors = Monitors.coverage mon;
      so_strategies = Coverage.strategies cov;
      so_event_kinds = Coverage.event_kinds cov;
      so_placements =
        (let p = Cluster.placement cl in
         [ (Placement.name p, Placement.selections p) ]);
    },
    cl )

let run_serve ?rebind ?content_cache ?strategy ?placement sv =
  fst (run_serve_cluster ?rebind ?content_cache ?strategy ?placement sv)

(* {1 The scenario library}

   Named, seeded, production-shaped scenario families. Each entry is a
   pair of generators — a plain (job-batch) shape and a serve
   (sustained-load) shape — drawn from a salted RNG so [--scenario
   NAME --seed K] replays exactly, plus the coverage contract the
   harness gates on: which features must materialize in the runs and
   which strategies the family promises to start. *)

module Library = struct
  type entry = {
    e_name : string;
    e_salt : int;
    e_knobs : string;
    e_stresses : string;
    e_monitors : string list;
    e_features_plain : string list;
    e_features_serve : string list;
    e_strategies_plain : string list;
    e_strategies_serve : string list;
    e_gen_plain : Rng.t -> t;
    e_gen_serve : Rng.t -> serve;
    e_check_plain : outcome -> (string * bool) list;
    e_check_serve : serve_outcome -> (string * bool) list;
  }

  let name e = e.e_name
  let knobs e = e.e_knobs
  let stresses e = e.e_stresses
  let monitors e = e.e_monitors

  let features e ~serve:sv =
    if sv then e.e_features_serve else e.e_features_plain

  let strategies e ~serve:sv =
    if sv then e.e_strategies_serve else e.e_strategies_plain

  let rng_for e seed = Rng.create ((e.e_salt * 1_000_003) + seed)

  let plain e ~seed =
    { (e.e_gen_plain (rng_for e seed)) with sc_seed = seed;
                                            sc_label = Some e.e_name }

  let serve e ~seed =
    { (e.e_gen_serve (rng_for e seed)) with sv_seed = seed;
                                            sv_label = Some e.e_name }

  let check_plain e o = e.e_check_plain o
  let check_serve e o = e.e_check_serve o

  (* Generator helpers. *)

  let sec = Time.of_sec
  let usec = Time.of_us
  let pick rng arr = arr.(Rng.int rng (Array.length arr))

  let mk_job ?(target = Target_any) ?migrate_after
      ?(strategy = Protocol.Precopy) ~at ~ws ~prog () =
    {
      j_at = at;
      j_ws = ws;
      j_prog = prog;
      j_target = target;
      j_migrate_after = migrate_after;
      j_strategy = strategy;
    }

  let mk_plain ?(expect_residual = false) ?(bridged = 0) ~ws ~jobs ~faults
      ~horizon () =
    {
      sc_seed = 0;
      sc_label = None;
      sc_workstations = ws;
      sc_bridged = bridged;
      sc_jobs = jobs;
      sc_faults = faults;
      sc_horizon = horizon;
      sc_expect_residual = expect_residual;
    }

  let mk_serve ?(bridged = 0) ?(modulation = Arrivals.Constant)
      ?(progs = serve_programs) ?strategy ?slo_shed
      ?(placement = Config.Flat_multicast) ~ws ~rate ~duration ~max_in_flight
      ~queue_limit ~balancer ~faults () =
    {
      sv_seed = 0;
      sv_label = None;
      sv_workstations = ws;
      sv_bridged = bridged;
      sv_rate = rate;
      sv_modulation = modulation;
      sv_duration = duration;
      sv_progs = progs;
      sv_max_in_flight = max_in_flight;
      sv_queue_limit = queue_limit;
      sv_balancer_interval = balancer;
      sv_strategy = strategy;
      sv_slo_shed = slo_shed;
      sv_placement = placement;
      sv_faults = faults;
    }

  (* The satellite [pods] knob: split [ws] workstations into [npods]
     scheduling domains (pods of at least two hosts each), half the
     time with the predictive tier selector on top. *)
  let pods_placement rng ~ws ~npods =
    let pod_size = max 2 (ws / max 1 npods) in
    if Rng.bool rng 0.5 then Config.Pod_sharded { pod_size }
    else Config.Load_predictive { pod_size; alpha = 0.2 +. Rng.float rng 0.3 }

  let count l k = match List.assoc_opt k l with Some n -> n | None -> 0
  let mig_starts_plain o = count o.o_event_kinds "migrate/start"
  let mig_starts_serve o = count o.so_event_kinds "migrate/start"

  (* A correlated rack: [n] hosts ws1..wsn (ws0 stays up so submitting
     shells and the file-server observer survive), crashed together and
     rebooted on a stagger so the cluster ends the scenario whole —
     plus one straggler host ws(n+1) dying alone a little later, so the
     family exercises the lone-crash kind alongside the rack kind. *)
  let rack_faults ~n ~crash_at =
    let hosts = List.init n (fun i -> Printf.sprintf "ws%d" (i + 1)) in
    let straggler = Printf.sprintf "ws%d" (n + 1) in
    (Faults.Crash_rack { hosts; at = crash_at }
    :: List.mapi
         (fun i h ->
           Faults.Reboot_host
             {
               host = h;
               at = Time.add crash_at (sec (2. +. (1.5 *. float_of_int i)));
             })
         hosts)
    @ [
        Faults.Crash_host { host = straggler; at = Time.add crash_at (sec 1.) };
        Faults.Reboot_host
          { host = straggler; at = Time.add crash_at (sec 5.) };
      ]

  (* compile-farm: the paper's own workload shape — make/cc68/TeX
     pipelines with fitted dirty models, spread over the pool, with the
     three commit-clean disciplines rotating across the migrations. *)

  let compile_pipeline =
    [| "make"; "preprocessor"; "cc68"; "assembler"; "linking loader" |]

  let compile_farm_plain rng =
    let ws = 6 + Rng.int rng 3 in
    let rotation =
      [| Protocol.Precopy; Protocol.Freeze_and_copy; vm_flush_placeholder |]
    in
    let npipe = 2 + Rng.int rng 2 in
    let jobs =
      List.concat
        (List.init npipe (fun p ->
             let start = usec (Rng.int rng 4_000_000) in
             let src = Rng.int rng ws in
             List.mapi
               (fun k prog ->
                 let at =
                   Time.add start
                     (usec (k * (800_000 + Rng.int rng 600_000)))
                 in
                 let strategy = rotation.((p + k) mod 3) in
                 let migrate =
                   (p + k) mod 2 = 0
                   ||
                   match strategy with
                   | Protocol.Vm_flush _ -> true
                   | _ -> false
                 in
                 let migrate_after =
                   if migrate then
                     Some (usec (1_000_000 + Rng.int rng 2_000_000))
                   else None
                 in
                 mk_job ~at ~ws:src ~prog ~strategy ?migrate_after ())
               (Array.to_list compile_pipeline)))
    in
    let jobs =
      if Rng.bool rng 0.4 then
        (* One TeX run: a big image with a heavy fitted dirty model, so
           pre-copy has real pages to chase. It will not finish inside
           the horizon; its migration is the point. *)
        mk_job ~at:(usec 500_000) ~ws:0 ~prog:"tex" ~migrate_after:(sec 2.)
          ()
        :: jobs
      else jobs
    in
    let faults =
      if Rng.bool rng 0.5 then
        let start = sec (3. +. Rng.float rng 3.) in
        [
          Faults.Slow_host
            {
              host = Printf.sprintf "ws%d" (Rng.int rng ws);
              factor = 2. +. Rng.float rng 2.;
              start;
              stop = Time.add start (sec 4.);
            };
        ]
      else []
    in
    mk_plain ~ws ~jobs ~faults ~horizon:(sec 30.) ()

  let compile_farm_serve rng =
    mk_serve
      ~ws:(6 + Rng.int rng 4)
      ~rate:(1. +. Rng.float rng 1.)
      ~duration:(sec (20. +. Rng.float rng 8.))
      ~max_in_flight:(4 + Rng.int rng 4)
      ~queue_limit:(4 + Rng.int rng 4)
      ~balancer:(usec (2_000_000 + Rng.int rng 2_000_000))
      ~faults:[] ()

  (* diurnal: arrival rate follows a compressed working day. *)

  let diurnal_modulation rng =
    Arrivals.Sinusoid
      {
        period = sec (10. +. Rng.float rng 8.);
        depth = 0.7 +. Rng.float rng 0.25;
      }

  let diurnal_plain rng =
    let ws = 5 + Rng.int rng 3 in
    let modulation = diurnal_modulation rng in
    let rate = 0.5 +. Rng.float rng 0.4 in
    let times =
      Arrivals.modulated_times rng ~rate_per_sec:rate ~modulation
        ~until:(sec 18.)
    in
    let times = List.filteri (fun i _ -> i < 12) times in
    let jobs =
      List.mapi
        (fun i at ->
          let strategy =
            if i mod 2 = 0 then Protocol.Precopy
            else Protocol.Freeze_and_copy
          in
          let migrate_after =
            if i mod 3 = 0 then
              Some (usec (1_000_000 + Rng.int rng 2_000_000))
            else None
          in
          mk_job ~at ~ws:(i mod ws) ~prog:(pick rng programs) ~strategy
            ?migrate_after ())
        times
    in
    let faults =
      if Rng.bool rng 0.4 then
        let start = sec (4. +. Rng.float rng 4.) in
        [
          Faults.Slow_host
            {
              host = Printf.sprintf "ws%d" (Rng.int rng ws);
              factor = 2. +. Rng.float rng 3.;
              start;
              stop = Time.add start (sec 3.);
            };
        ]
      else []
    in
    mk_plain ~ws ~jobs ~faults ~horizon:(sec 28.) ()

  let diurnal_serve rng =
    let ws = 6 + Rng.int rng 4 in
    mk_serve
      ~modulation:(diurnal_modulation rng)
      ~placement:(pods_placement rng ~ws ~npods:(2 + Rng.int rng 2))
      ~ws
      ~rate:(0.8 +. Rng.float rng 0.8)
      ~duration:(sec (25. +. Rng.float rng 10.))
      ~max_in_flight:(3 + Rng.int rng 3)
      ~queue_limit:(3 + Rng.int rng 3)
      ~balancer:(usec (2_000_000 + Rng.int rng 2_000_000))
      ?slo_shed:(if Rng.bool rng 0.5 then Some (1.5 +. Rng.float rng 2.) else None)
      ~faults:[] ()

  (* flash-crowd: a ×10 arrival spike with ramp and decay. *)

  let flash_crowd_plain rng =
    let ws = 5 + Rng.int rng 3 in
    let spike_at = 6. +. Rng.float rng 3. in
    let trickle =
      List.init 3 (fun i ->
          mk_job
            ~at:(sec ((float_of_int i *. 1.8) +. 0.3))
            ~ws:(Rng.int rng ws) ~prog:(pick rng programs) ())
    in
    let nburst = 6 + Rng.int rng 4 in
    let burst =
      List.init nburst (fun i ->
          let strategy =
            if i mod 2 = 0 then Protocol.Precopy
            else Protocol.Freeze_and_copy
          in
          let migrate_after =
            if i mod 3 = 0 then Some (usec (800_000 + Rng.int rng 1_500_000))
            else None
          in
          mk_job
            ~at:(sec (spike_at +. Rng.float rng 2.))
            ~ws:(i mod ws) ~prog:(pick rng programs) ~strategy ?migrate_after
            ())
    in
    mk_plain ~ws ~jobs:(trickle @ burst) ~faults:[] ~horizon:(sec 26.) ()

  let flash_crowd_serve rng =
    let at = 10. +. Rng.float rng 3. in
    let ws = 6 + Rng.int rng 4 in
    mk_serve
      ~modulation:
        (Arrivals.Spike
           {
             at = sec at;
             ramp = sec 2.;
             hold = sec (2. +. Rng.float rng 1.);
             decay = sec 3.;
             mult = 10.;
           })
      ~placement:(pods_placement rng ~ws ~npods:(2 + Rng.int rng 3))
      ~ws
      ~rate:(0.8 +. Rng.float rng 0.6)
      ~duration:(sec (26. +. Rng.float rng 6.))
      ~max_in_flight:(4 + Rng.int rng 4)
      ~queue_limit:(4 + Rng.int rng 4)
      ~balancer:(usec (2_000_000 + Rng.int rng 1_500_000))
      ?slo_shed:(if Rng.bool rng 0.5 then Some (1.5 +. Rng.float rng 1.) else None)
      ~faults:[] ()

  (* A burst: some 3 s window holds at least 5 jobs and at least half of
     them. Data-driven — a generator change that flattens the spike
     fails the feature gate. *)
  let plain_spike_materialized o =
    let ats =
      List.map (fun j -> Time.to_sec j.j_at) o.o_scenario.sc_jobs
    in
    let n = List.length ats in
    List.exists
      (fun t0 ->
        let c =
          List.length
            (List.filter (fun u -> Float.abs (u -. t0) <= 1.5) ats)
        in
        c >= 5 && 2 * c >= n)
      ats

  (* Submissions well above the flat-rate expectation betray the spike:
     base rate*duration, gate at 1.5x. *)
  let serve_spike_materialized o =
    let sv = o.so_scenario in
    float_of_int o.so_submitted
    >= 1.5 *. sv.sv_rate *. Time.to_sec sv.sv_duration

  (* rack-failure: correlated crashrack + staggered reboots. *)

  let rack_failure_plain rng =
    let ws = 6 + Rng.int rng 3 in
    let n = 2 + Rng.int rng 2 in
    let faults = rack_faults ~n ~crash_at:(sec (5. +. Rng.float rng 2.)) in
    let njobs = 5 + Rng.int rng 3 in
    let jobs =
      List.init njobs (fun i ->
          let target =
            (* Half the jobs are pinned onto rack hosts, so the crash
               lands on live guests and their reexec/migration paths. *)
            if i mod 2 = 0 then Target_host (1 + (i / 2 mod n))
            else Target_any
          in
          let migrate_after =
            if i mod 3 = 1 then
              Some (usec (1_500_000 + Rng.int rng 2_500_000))
            else None
          in
          mk_job
            ~at:(usec (Rng.int rng 4_000_000))
            ~ws:(if i mod 2 = 0 then 0 else ws - 1)
            ~prog:(pick rng programs) ~target ?migrate_after ())
    in
    mk_plain ~ws ~jobs ~faults ~horizon:(sec 24.) ()

  let rack_failure_serve rng =
    let ws = 8 + Rng.int rng 3 in
    mk_serve ~ws
      ~rate:(1.2 +. Rng.float rng 1.)
      ~duration:(sec (22. +. Rng.float rng 6.))
      ~max_in_flight:(5 + Rng.int rng 4)
      ~queue_limit:(5 + Rng.int rng 4)
      ~balancer:(usec (2_000_000 + Rng.int rng 1_000_000))
      ~faults:(rack_faults ~n:3 ~crash_at:(sec (8. +. Rng.float rng 2.)))
      ()

  let rack_heal_materialized fired =
    count fired "crashrack" >= 1 && count fired "reboot" >= 1

  (* partition-heal: a bridged cluster splits mid-run and heals. *)

  let partition_window rng =
    let start = sec (4. +. Rng.float rng 2.) in
    let stop = Time.add start (sec (4. +. Rng.float rng 3.)) in
    [ Faults.Partition_bridge { start; stop } ]

  let partition_heal_plain rng =
    let ws = 6 + Rng.int rng 3 in
    let bridged = 2 + Rng.int rng 2 in
    let faults = partition_window rng in
    let njobs = 5 + Rng.int rng 3 in
    let main = ws - bridged in
    let jobs =
      List.init njobs (fun i ->
          (* Alternate submission sides, targeting across the bridge, so
             the partition cuts live exec/migration conversations. *)
          let src, target =
            if i mod 2 = 0 then (i / 2 mod main, Target_host (main + (i mod bridged)))
            else (main + (i mod bridged), Target_host (i / 2 mod main))
          in
          let migrate_after =
            if i mod 3 = 0 then
              Some (usec (3_000_000 + Rng.int rng 3_000_000))
            else None
          in
          mk_job
            ~at:(usec (500_000 + Rng.int rng 3_000_000))
            ~ws:src ~prog:(pick rng programs) ~target ?migrate_after ())
    in
    mk_plain ~ws ~bridged ~jobs ~faults ~horizon:(sec 26.) ()

  let partition_heal_serve rng =
    let ws = 7 + Rng.int rng 4 in
    mk_serve ~ws
      ~bridged:(2 + Rng.int rng 2)
      ~rate:(1. +. Rng.float rng 1.)
      ~duration:(sec (22. +. Rng.float rng 8.))
      ~max_in_flight:(4 + Rng.int rng 4)
      ~queue_limit:(4 + Rng.int rng 4)
      ~balancer:(usec (2_000_000 + Rng.int rng 1_500_000))
      ~faults:(partition_window rng) ()

  (* Both edges of the window fired: the split happened AND healed. *)
  let partition_heal_materialized fired = count fired "partition" >= 2

  (* brownout: slow-network windows under sustained serve load, tight
     admission caps, shedding armed. *)

  let brownout_faults rng ~ws =
    let slow_start = sec (4. +. Rng.float rng 2.) in
    let loss_start = sec (6. +. Rng.float rng 2.) in
    let flaky_start = sec (5. +. Rng.float rng 2.) in
    [
      (* Flaky churn on one host alongside the slow/lossy windows: the
         brownout is a degraded network, not a clean partition. *)
      Faults.Flaky_host
        {
          host = Printf.sprintf "ws%d" (1 + Rng.int rng (ws - 1));
          start = flaky_start;
          stop = Time.add flaky_start (sec (4. +. Rng.float rng 2.));
        };
      Faults.Slow_host
        {
          host = Printf.sprintf "ws%d" (1 + Rng.int rng (ws - 1));
          factor = 3. +. Rng.float rng 3.;
          start = slow_start;
          stop = Time.add slow_start (sec (8. +. Rng.float rng 4.));
        };
      Faults.Loss_window
        {
          p = 0.02 +. Rng.float rng 0.06;
          start = loss_start;
          stop = Time.add loss_start (sec (4. +. Rng.float rng 2.));
        };
    ]

  let brownout_plain rng =
    let ws = 4 + Rng.int rng 3 in
    let njobs = 4 + Rng.int rng 3 in
    let jobs =
      List.init njobs (fun i ->
          let migrate_after =
            if i mod 2 = 0 then
              Some (usec (1_000_000 + Rng.int rng 3_000_000))
            else None
          in
          mk_job
            ~at:(usec (Rng.int rng 5_000_000))
            ~ws:(i mod ws) ~prog:(pick rng programs) ?migrate_after
            ~strategy:
              (if i mod 2 = 0 then Protocol.Precopy
               else Protocol.Freeze_and_copy)
            ())
    in
    mk_plain ~ws ~jobs ~faults:(brownout_faults rng ~ws)
      ~horizon:(sec 24.) ()

  let brownout_serve rng =
    let ws = 4 + Rng.int rng 3 in
    mk_serve ~ws
      ~rate:(2.5 +. Rng.float rng 1.5)
      ~duration:(sec (20. +. Rng.float rng 8.))
      ~max_in_flight:(2 + Rng.int rng 2)
      ~queue_limit:(2 + Rng.int rng 2)
      ~balancer:(usec (2_000_000 + Rng.int rng 1_000_000))
      ~slo_shed:(1.2 +. Rng.float rng 0.8)
      ~faults:(brownout_faults rng ~ws) ()

  let brownout_materialized o = o.so_shed >= 1

  (* migrate-storm: adversarial churn — every job migrates, all four
     disciplines rotate (so copy-on-reference's planted residual
     dependency is exercised and gated as a feature, not a failure), and
     in serve mode the balancer runs on a hair trigger. *)

  let migrate_storm_plain rng =
    let ws = 4 + Rng.int rng 3 in
    let njobs = 5 + Rng.int rng 3 in
    let rotation =
      [|
        Protocol.Precopy;
        Protocol.Freeze_and_copy;
        vm_flush_placeholder;
        Protocol.Copy_on_reference;
      |]
    in
    let jobs =
      List.init njobs (fun i ->
          mk_job
            ~at:(usec ((200_000 * i) + Rng.int rng 300_000))
            ~ws:(i mod ws) ~prog:(pick rng programs)
            ~strategy:rotation.(i mod 4)
            ~migrate_after:(usec (500_000 + Rng.int rng 1_500_000))
            ())
    in
    mk_plain ~expect_residual:true ~ws ~jobs ~faults:[] ~horizon:(sec 22.)
      ()

  let migrate_storm_serve rng =
    mk_serve
      ~ws:(5 + Rng.int rng 3)
      ~rate:(1.2 +. Rng.float rng 0.8)
      ~duration:(sec (18. +. Rng.float rng 6.))
      ~max_in_flight:(5 + Rng.int rng 4)
      ~queue_limit:(5 + Rng.int rng 4)
      ~balancer:(usec (400_000 + Rng.int rng 400_000))
      ~strategy:
        (if Rng.bool rng 0.5 then Protocol.Freeze_and_copy
         else Protocol.Precopy)
      ~faults:[] ()

  let all =
    [
      {
        e_name = "compile-farm";
        e_salt = 1;
        e_knobs = "2-3 pipelines x 5 stages, optional TeX, 6-8 ws";
        e_stresses =
          "the paper's workload: staged compile pipelines, fitted dirty \
           models, all three commit-clean disciplines";
        e_monitors = [ "clock"; "conservation"; "convergence"; "freeze"; "budget" ];
        e_features_plain = [];
        e_features_serve = [];
        e_strategies_plain = [ "precopy"; "freeze-and-copy"; "vm-flush" ];
        e_strategies_serve = [];
        e_gen_plain = compile_farm_plain;
        e_gen_serve = compile_farm_serve;
        e_check_plain = (fun _ -> []);
        e_check_serve = (fun _ -> []);
      };
      {
        e_name = "diurnal";
        e_salt = 2;
        e_knobs = "sinusoid period 10-18s, depth 0.7-0.95, base 0.5-1.6/s";
        e_stresses =
          "arrival-rate modulation over a compressed working day: idle \
           troughs then saturated crests";
        e_monitors = [ "clock"; "conservation"; "convergence"; "freeze" ];
        e_features_plain = [];
        e_features_serve = [];
        e_strategies_plain = [ "precopy"; "freeze-and-copy" ];
        e_strategies_serve = [];
        e_gen_plain = diurnal_plain;
        e_gen_serve = diurnal_serve;
        e_check_plain = (fun _ -> []);
        e_check_serve = (fun _ -> []);
      };
      {
        e_name = "flash-crowd";
        e_salt = 3;
        e_knobs = "x10 spike, 2s ramp / 2-3s hold / 3s decay";
        e_stresses =
          "admission control and balancer under a sudden arrival spike \
           with ramp and decay";
        e_monitors = [ "clock"; "conservation"; "convergence"; "freeze" ];
        e_features_plain = [ "spike" ];
        e_features_serve = [ "spike" ];
        e_strategies_plain = [ "precopy"; "freeze-and-copy" ];
        e_strategies_serve = [];
        e_gen_plain = flash_crowd_plain;
        e_gen_serve = flash_crowd_serve;
        e_check_plain =
          (fun o -> [ ("spike", plain_spike_materialized o) ]);
        e_check_serve =
          (fun o -> [ ("spike", serve_spike_materialized o) ]);
      };
      {
        e_name = "rack-failure";
        e_salt = 4;
        e_knobs = "crashrack of 2-3 hosts, reboots staggered 1.5s apart";
        e_stresses =
          "correlated failure: suspicion, re-execution and migration \
           reselection while a rack is dark, recovery as it reboots";
        e_monitors = [ "clock"; "conservation"; "freeze" ];
        e_features_plain = [ "heal" ];
        e_features_serve = [ "heal" ];
        e_strategies_plain = [ "precopy" ];
        e_strategies_serve = [];
        e_gen_plain = rack_failure_plain;
        e_gen_serve = rack_failure_serve;
        e_check_plain =
          (fun o -> [ ("heal", rack_heal_materialized o.o_fault_fired) ]);
        e_check_serve =
          (fun o -> [ ("heal", rack_heal_materialized o.so_fault_fired) ]);
      };
      {
        e_name = "partition-heal";
        e_salt = 5;
        e_knobs = "2-3 ws behind the bridge, 4-7s partition mid-run";
        e_stresses =
          "cross-segment exec and migration conversations cut by a \
           partition, then the heal: rebinding, retransmission backoff";
        e_monitors = [ "clock"; "conservation"; "freeze" ];
        e_features_plain = [ "heal" ];
        e_features_serve = [ "heal" ];
        e_strategies_plain = [ "precopy" ];
        e_strategies_serve = [];
        e_gen_plain = partition_heal_plain;
        e_gen_serve = partition_heal_serve;
        e_check_plain =
          (fun o ->
            [ ("heal", partition_heal_materialized o.o_fault_fired) ]);
        e_check_serve =
          (fun o ->
            [ ("heal", partition_heal_materialized o.so_fault_fired) ]);
      };
      {
        e_name = "brownout";
        e_salt = 6;
        e_knobs =
          "slow-host x3-6 + loss window under 2.5-4/s load, caps 2-3, \
           shed at 1.2-2x SLO";
        e_stresses =
          "sustained overload on a degraded network: queue growth, \
           brownout shedding, un-latching on recovery";
        e_monitors = [ "clock"; "conservation"; "freeze" ];
        e_features_plain = [];
        e_features_serve = [ "brownout" ];
        e_strategies_plain = [ "precopy"; "freeze-and-copy" ];
        e_strategies_serve = [];
        e_gen_plain = brownout_plain;
        e_gen_serve = brownout_serve;
        e_check_plain = (fun _ -> []);
        e_check_serve =
          (fun o -> [ ("brownout", brownout_materialized o) ]);
      };
      {
        e_name = "migrate-storm";
        e_salt = 7;
        e_knobs =
          "every job migrates at 0.5-2s, all 4 disciplines; serve \
           balancer every 0.4-0.8s";
        e_stresses =
          "adversarial churn: overlapping migrations, copy-on-reference \
           residual dependencies, balancer thrash";
        e_monitors =
          [ "clock"; "conservation"; "convergence"; "freeze"; "residual"; "budget" ];
        e_features_plain = [ "storm"; "residual" ];
        e_features_serve = [ "storm" ];
        e_strategies_plain =
          [ "precopy"; "freeze-and-copy"; "vm-flush"; "copy-on-reference" ];
        e_strategies_serve = [ "precopy"; "freeze-and-copy" ];
        e_gen_plain = migrate_storm_plain;
        e_gen_serve = migrate_storm_serve;
        e_check_plain =
          (fun o ->
            [
              ("storm", mig_starts_plain o >= 3);
              ("residual", o.o_residual_seen >= 1);
            ]);
        e_check_serve = (fun o -> [ ("storm", mig_starts_serve o >= 3) ]);
      };
    ]

  let find name = List.find_opt (fun e -> e.e_name = name) all
  let names = List.map (fun e -> e.e_name) all
end
