(** Seeded random scenarios for deterministic simulation testing.

    A scenario is a complete experiment description — cluster size and
    topology, a random mix of programs with random arrival times and
    targets, optional mid-run migrations, and a {!Faults.plan} — drawn
    from a single {!Rng.t}, FoundationDB style: the seed {e is} the test
    case, and any failure replays exactly with [vsim fuzz --seed N].

    {!run} executes the scenario in a fresh cluster with the
    {!Monitors} bundle attached and reports every invariant violation
    together with its captured event window. *)

type target = Target_any | Target_host of int | Target_local

type job = {
  j_at : Time.t;  (** Submission instant. *)
  j_ws : int;  (** Submitting workstation index. *)
  j_prog : string;  (** A {!Programs} table name. *)
  j_target : target;
  j_migrate_after : Time.span option;
      (** If set, ask the program's manager to migrate it (to any
          volunteer) this long after it started. *)
  j_strategy : Protocol.strategy;
}

type t = {
  sc_seed : int;  (** Also seeds the cluster RNG. *)
  sc_workstations : int;
  sc_bridged : int;
  sc_jobs : job list;
  sc_faults : Faults.plan;
  sc_horizon : Time.t;
}

val arbitrary : ?seed:int -> Rng.t -> t
(** Draw a scenario: 3–8 workstations (possibly split over a bridge),
    1–4 jobs over a mix of program sizes, arrivals in the first five
    virtual seconds, roughly half the jobs migrated mid-run, and 0–2
    fault events (crash/reboot pairs, loss windows, host slowdowns,
    flaky-host churn, correlated rack crashes with staggered reboots,
    and — on bridged clusters — partitions). [seed] is recorded in
    [sc_seed] for replay (default 0). *)

val of_seed : int -> t
(** [arbitrary ~seed (Rng.create seed)]. *)

val force_strategy : Protocol.strategy -> t -> t
(** Mutation mode ([vsim fuzz --strategy]): force every job onto one
    copy discipline, make each job's migration unconditional, and drop
    the fault plan — so every seed genuinely exercises the strategy.
    Generation itself is untouched: without this call, seeds keep
    producing byte-identical scenarios. *)

val describe : t -> string
(** One-line summary for failure reports. *)

type outcome = {
  o_scenario : t;
  o_violations : Monitors.violation list;
  o_violations_dropped : int;
  o_events : int;  (** Typed events emitted over the run. *)
  o_completed : int;  (** Jobs that ran to completion in the horizon. *)
  o_failed : int;  (** Jobs refused, killed by faults, or timed out. *)
  o_fault_declared : string list;
      (** Fault kinds the scenario's plan declares ({!Faults.declared_kinds}). *)
  o_fault_fired : (string * int) list;
      (** Fault kinds that actually fired, with counts. *)
  o_monitors : (string * int) list;
      (** Per-monitor inspection counts ({!Monitors.coverage}). *)
}

val run : ?rebind:Os_params.rebind_mode -> t -> outcome
(** Execute in a fresh cluster (tracing on, monitors attached, the
    failure detector enabled, and default migration budgets installed)
    until the horizon. [rebind] defaults to the paper's
    [Broadcast_query]; [Forwarding] selects the Demos/MP ablation, whose
    forwarding addresses are exactly the residual dependency the
    [residual] monitor rejects — the built-in mutation test. *)

val replay_hint : t -> string
(** The command line that reproduces this scenario. *)

(** {1 Serve mode}

    Sustained-load scenarios: instead of a handful of discrete jobs, a
    {!Serve.Session} drives an open-loop Poisson stream with tight
    admission caps (so queueing and rejection paths are exercised), a
    fast balancer cycle, and the same random fault plans — all under the
    same monitor bundle. *)

type serve = {
  sv_seed : int;
  sv_workstations : int;
  sv_bridged : int;
  sv_rate : float;  (** Arrivals per second. *)
  sv_duration : Time.span;  (** Arrival horizon. *)
  sv_max_in_flight : int;
  sv_queue_limit : int;
  sv_balancer_interval : Time.span;
  sv_slo_shed : float option;
      (** Brownout multiple ([params.slo_shed_multiple]); [None] = no
          shedding. *)
  sv_faults : Faults.plan;
}

val arbitrary_serve : ?seed:int -> Rng.t -> serve
(** Draw a serve scenario: 4–12 workstations (possibly bridged),
    0.5–3 req/s for 15–30 virtual seconds, in-flight cap and queue
    limit both 2–8, balancer every 2–5 s, brownout shedding armed on
    half the draws, and 0–2 fault events. *)

val serve_of_seed : int -> serve
(** [arbitrary_serve ~seed (Rng.create seed)]. *)

val describe_serve : serve -> string

val replay_serve_hint : serve -> string
(** The [vsim fuzz --serve --seed N] command line that reproduces it. *)

type serve_outcome = {
  so_scenario : serve;
  so_violations : Monitors.violation list;
  so_violations_dropped : int;
  so_events : int;
  so_submitted : int;
  so_completed : int;
  so_shed : int;  (** Submissions shed by brownout. *)
  so_stuck : int;  (** Requests in no terminal state — must be 0. *)
  so_fault_declared : string list;
  so_fault_fired : (string * int) list;
  so_monitors : (string * int) list;
}

val run_serve :
  ?rebind:Os_params.rebind_mode ->
  ?strategy:Protocol.strategy ->
  serve ->
  serve_outcome
(** Execute in a fresh cluster (tracing on, monitors attached, the
    failure detector enabled, and default migration budgets installed):
    create the session, drain it, and report the violations with the
    session's request counts, fault-kind coverage, and monitor coverage.
    [strategy] forces the copy discipline the balancer uses for its
    migrations ([vsim fuzz --serve --strategy]). *)
