(** Seeded random scenarios for deterministic simulation testing.

    A scenario is a complete experiment description — cluster size and
    topology, a random mix of programs with random arrival times and
    targets, optional mid-run migrations, and a {!Faults.plan} — drawn
    from a single {!Rng.t}, FoundationDB style: the seed {e is} the test
    case, and any failure replays exactly with [vsim fuzz --seed N].

    {!run} executes the scenario in a fresh cluster with the
    {!Monitors} bundle attached and reports every invariant violation
    together with its captured event window.

    Beyond the free-form generator, {!Library} holds named
    production-shaped scenario families (compile-farm, diurnal,
    flash-crowd, rack-failure, partition-heal, brownout, migrate-storm)
    selected with [vsim fuzz --scenario NAME]. *)

type target = Target_any | Target_host of int | Target_local

type job = {
  j_at : Time.t;  (** Submission instant. *)
  j_ws : int;  (** Submitting workstation index. *)
  j_prog : string;  (** A {!Programs} table name. *)
  j_target : target;
  j_migrate_after : Time.span option;
      (** If set, ask the program's manager to migrate it (to any
          volunteer) this long after it started. *)
  j_strategy : Protocol.strategy;
}

type t = {
  sc_seed : int;  (** Also seeds the cluster RNG. *)
  sc_label : string option;
      (** The {!Library} entry that generated this scenario, if any;
          carried into replay hints as [--scenario NAME]. *)
  sc_workstations : int;
  sc_bridged : int;
  sc_jobs : job list;
  sc_faults : Faults.plan;
  sc_horizon : Time.t;
  sc_expect_residual : bool;
      (** The scenario runs copy-on-reference on purpose: residual
          violations are expected, counted into [o_residual_seen], and
          removed from [o_violations]. Never set by {!force_strategy} —
          the mutation test relies on cor failing loudly. *)
}

val arbitrary : ?seed:int -> Rng.t -> t
(** Draw a scenario: 3–8 workstations (possibly split over a bridge),
    1–4 jobs over a mix of program sizes, arrivals in the first five
    virtual seconds, roughly half the jobs migrated mid-run, and 0–2
    fault events (crash/reboot pairs, loss windows, host slowdowns,
    flaky-host churn, correlated rack crashes with staggered reboots,
    and — on bridged clusters — partitions). [seed] is recorded in
    [sc_seed] for replay (default 0). *)

val of_seed : int -> t
(** [arbitrary ~seed (Rng.create seed)]. *)

val force_strategy : Protocol.strategy -> t -> t
(** Mutation mode ([vsim fuzz --strategy]): force every job onto one
    copy discipline, make each job's migration unconditional, and drop
    the fault plan — so every seed genuinely exercises the strategy.
    Generation itself is untouched: without this call, seeds keep
    producing byte-identical scenarios. *)

val describe : t -> string
(** One-line summary for failure reports. *)

val vm_flush_placeholder : Protocol.strategy
(** A [Vm_flush] naming no concrete page server (negative host id);
    generators can request the discipline before a cluster exists and
    {!run} substitutes the cluster's file server at launch time. *)

type outcome = {
  o_scenario : t;
  o_violations : Monitors.violation list;
  o_violations_dropped : int;
  o_residual_seen : int;
      (** Residual violations filtered out because the scenario declared
          [sc_expect_residual]; 0 otherwise. *)
  o_events : int;  (** Typed events emitted over the run. *)
  o_completed : int;  (** Jobs that ran to completion in the horizon. *)
  o_failed : int;  (** Jobs refused, killed by faults, or timed out. *)
  o_fault_declared : string list;
      (** Fault kinds the scenario's plan declares ({!Faults.declared_kinds}). *)
  o_fault_fired : (string * int) list;
      (** Fault kinds that actually fired, with counts. *)
  o_monitors : (string * int) list;
      (** Per-monitor inspection counts ({!Monitors.coverage}). *)
  o_strategies : (string * int) list;
      (** Migration strategies that actually started ([Mig_start]
          events), by {!Protocol.strategy_name}, with counts. *)
  o_event_kinds : (string * int) list;
      (** Distinct trace-event constructors observed, rendered as
          "category/type" through the registered views, with counts. *)
}

val run : ?rebind:Os_params.rebind_mode -> ?content_cache:int -> t -> outcome
(** Execute in a fresh cluster (tracing on, monitors attached, the
    failure detector enabled, and default migration budgets installed)
    until the horizon. [rebind] defaults to the paper's
    [Broadcast_query]; [Forwarding] selects the Demos/MP ablation, whose
    forwarding addresses are exactly the residual dependency the
    [residual] monitor rejects — the built-in mutation test.
    [content_cache] sets [Os_params.content_cache_bytes] cluster-wide
    (0, the default, leaves content-addressed transfer off). *)

val run_cluster :
  ?rebind:Os_params.rebind_mode -> ?content_cache:int -> t ->
  outcome * Cluster.t
(** Like {!run} but also returns the (stopped) cluster, so callers can
    export its trace — the golden-trace harness and [bench stress]. *)

val replay_hint :
  ?forwarding:bool -> ?strategy:string -> ?content_cache:int -> t -> string
(** The command line that reproduces this scenario, including
    [--scenario] when the scenario came from the {!Library} and the
    run-mode flags the caller applied on top ({!Replay.format}). *)

(** {1 Serve mode}

    Sustained-load scenarios: instead of a handful of discrete jobs, a
    {!Serve.Session} drives an open-loop (possibly rate-modulated)
    Poisson stream with tight admission caps (so queueing and rejection
    paths are exercised), a fast balancer cycle, and the same random
    fault plans — all under the same monitor bundle. *)

type serve = {
  sv_seed : int;
  sv_label : string option;  (** As [sc_label]. *)
  sv_workstations : int;
  sv_bridged : int;
  sv_rate : float;  (** Base arrivals per second. *)
  sv_modulation : Arrivals.modulation;
      (** Rate shape over the horizon (diurnal sinusoid, flash-crowd
          spike); [Constant] is the classic homogeneous stream. *)
  sv_duration : Time.span;  (** Arrival horizon. *)
  sv_progs : string list;  (** Round-robin program mix. *)
  sv_max_in_flight : int;
  sv_queue_limit : int;
  sv_balancer_interval : Time.span;
  sv_strategy : Protocol.strategy option;
      (** Copy discipline for balancer migrations; [None] = config
          default. Overridden by {!run_serve}'s [?strategy]. *)
  sv_slo_shed : float option;
      (** Brownout multiple ([params.slo_shed_multiple]); [None] = no
          shedding. *)
  sv_placement : Config.placement;
      (** Placement policy the run resolves ([cfg.placement]).
          Overridden by {!run_serve}'s [?placement]. *)
  sv_faults : Faults.plan;
}

val placement_token : Config.placement -> string
(** Compact render for describe lines: ["flat"], ["pods/4"],
    ["predictive/4"]. *)

val arbitrary_serve : ?seed:int -> Rng.t -> serve
(** Draw a serve scenario: 4–12 workstations (possibly bridged),
    0.5–3 req/s for 15–30 virtual seconds, in-flight cap and queue
    limit both 2–8, balancer every 2–5 s, brownout shedding armed on
    half the draws, a placement policy (half flat, half pod-based with
    pods of 2–4 hosts), and 0–2 fault events. *)

val serve_of_seed : int -> serve
(** [arbitrary_serve ~seed (Rng.create seed)]. *)

val describe_serve : serve -> string

val replay_serve_hint :
  ?forwarding:bool -> ?strategy:string -> ?placement:string ->
  ?content_cache:int -> serve -> string
(** The [vsim fuzz --serve ...] command line that reproduces it,
    including [--scenario] for {!Library} scenarios and [--placement]
    when the harness forced a policy override. *)

type serve_outcome = {
  so_scenario : serve;
  so_violations : Monitors.violation list;
  so_violations_dropped : int;
  so_events : int;
  so_submitted : int;
  so_completed : int;
  so_shed : int;  (** Submissions shed by brownout. *)
  so_stuck : int;  (** Requests in no terminal state — must be 0. *)
  so_fault_declared : string list;
  so_fault_fired : (string * int) list;
  so_monitors : (string * int) list;
  so_strategies : (string * int) list;  (** As [o_strategies]. *)
  so_event_kinds : (string * int) list;  (** As [o_event_kinds]. *)
  so_placements : (string * int) list;
      (** Placement policy dispatched through, with its selection
          count — the sixth coverage dimension. *)
}

val run_serve :
  ?rebind:Os_params.rebind_mode ->
  ?content_cache:int ->
  ?strategy:Protocol.strategy ->
  ?placement:Config.placement ->
  serve ->
  serve_outcome
(** Execute in a fresh cluster (tracing on, monitors attached, the
    failure detector enabled, and default migration budgets installed):
    create the session, drain it, and report the violations with the
    session's request counts, fault-kind coverage, and monitor coverage.
    [strategy] forces the copy discipline the balancer uses for its
    migrations ([vsim fuzz --serve --strategy]), overriding the
    scenario's own [sv_strategy]; [placement] likewise forces the
    placement policy over [sv_placement] ([vsim fuzz --serve
    --placement]). Pod-based runs arm the session autoscaler. *)

val run_serve_cluster :
  ?rebind:Os_params.rebind_mode ->
  ?content_cache:int ->
  ?strategy:Protocol.strategy ->
  ?placement:Config.placement ->
  serve ->
  serve_outcome * Cluster.t
(** {!run_serve} returning the cluster as well, as {!run_cluster}. *)

(** {1 The scenario library}

    Production-shaped scenario families, each a pair of seeded
    generators (a plain job-batch shape and a serve sustained-load
    shape) plus the coverage contract the fuzz harness gates on with
    [--require-scenario-coverage]: which features must materialize
    across the sampled runs and which migration strategies the family
    promises to start. DESIGN.md §4i holds the catalog table. *)

module Library : sig
  type entry

  val all : entry list
  (** compile-farm, diurnal, flash-crowd, rack-failure, partition-heal,
      brownout, migrate-storm. *)

  val find : string -> entry option
  val names : string list

  val name : entry -> string

  val knobs : entry -> string
  (** Catalog column: the tunables. *)

  val stresses : entry -> string
  (** Catalog column: what it stresses. *)

  val monitors : entry -> string list
  (** Monitors this family is expected to exercise (documentation). *)

  val features : entry -> serve:bool -> string list
  (** Feature names that must materialize at least once across the
      sampled runs of this entry in the given mode. *)

  val strategies : entry -> serve:bool -> string list
  (** Strategy names ({!Protocol.strategy_name}) the entry promises to
      start at least once across its sampled runs. *)

  val plain : entry -> seed:int -> t
  (** Generate the plain shape from a salted per-entry RNG; [sc_seed]
      and [sc_label] are set for replay. *)

  val serve : entry -> seed:int -> serve
  (** Likewise for the sustained-load shape. *)

  val check_plain : entry -> outcome -> (string * bool) list
  (** Which declared features materialized in this outcome. *)

  val check_serve : entry -> serve_outcome -> (string * bool) list
end
