(** One-command reproduction hints for fuzz failures.

    When a fuzzed scenario trips a monitor, the harness prints a
    [REPLAY: vsim fuzz ...] line. That line is only useful if it
    round-trips: the exact flags the failing run used must parse back
    into the same configuration. This module owns both directions — the
    canonical {!format} used to print hints and the {!term}/{!parse}
    pair [vsim fuzz] itself uses to read the flags — so the printer and
    the CLI cannot drift apart. *)

type t = {
  r_scenario : string option;  (** [--scenario NAME] library entry. *)
  r_seed : int option;  (** [--seed K] single-seed replay. *)
  r_serve : bool;  (** [--serve] sustained-traffic mode. *)
  r_forwarding : bool;  (** [--forwarding] Demos/MP ablation. *)
  r_strategy : string option;
      (** [--strategy S]: precopy | freeze | cor | vmflush. *)
  r_placement : string option;
      (** [--placement P]: flat | pods | predictive (serve mode). *)
  r_content_cache : int option;
      (** [--content-cache BYTES]: pin the per-host content-cache budget
          ([None] lets the fuzzer alternate by seed; [Some 0] pins
          caching off). *)
}

val strategy_tokens : string list
(** CLI spellings accepted by [--strategy], in canonical order. *)

val placement_tokens : string list
(** CLI spellings accepted by [--placement], in canonical order. *)

val make :
  ?scenario:string ->
  ?seed:int ->
  ?serve:bool ->
  ?forwarding:bool ->
  ?strategy:string ->
  ?placement:string ->
  ?content_cache:int ->
  unit ->
  t
(** Build a hint; [serve] and [forwarding] default to [false]. *)

val format : t -> string
(** The canonical replay line, starting with ["vsim fuzz"]. *)

val term : t Cmdliner.Term.t
(** The cmdliner term for the shared fuzz flags; [vsim fuzz] composes
    this with its volume flags ([--seeds], [-j], ...). *)

val parse : string -> (t, string) result
(** Parse a replay line (with or without the leading ["vsim fuzz"])
    through the real cmdliner evaluator, so
    [parse (format t) = Ok t] for every valid [t]. *)
