(** Online invariant monitors over the typed trace stream.

    One {!attach} call subscribes a bundle of protocol monitors to a
    tracer. Each monitor is an incremental automaton fed every record as
    it is emitted — including records later evicted from the ring — and
    files a {!violation} the instant a property breaks, capturing the
    surrounding event window eagerly (the ring may have evicted it by
    the time the run ends).

    The catalog (see DESIGN.md §4d for the paper claims each encodes):

    - {b clock}: event timestamps are monotone and sequence numbers
      dense — the simulation never observes time running backwards.
    - {b conservation}: every delivered frame names a prior send on the
      same segment, no frame is delivered twice to one station, and no
      delivery targets a station that has detached (crashed).
    - {b convergence}: within one migration attempt, per-round pre-copy
      byte counts never increase (Section 3.1.2's termination argument).
    - {b freeze}: no CPU slice is served to a logical host between its
      [Lh_frozen] and [Lh_unfrozen] events (Section 3.1.1's "frozen"
      really means no guest progress).
    - {b residual}: after [Mig_committed], the old host's copy of the
      logical host is never heard from again — no request delivery, no
      forwarding, no page-fault service, no lifecycle event names
      (old host, lh) (Section 5's no-residual-dependencies claim; the
      Demos/MP forwarding ablation and the copy-on-reference strategy
      deliberately violate it).
    - {b budget}: a migration attempt that declares a freeze budget
      ([Mig_budget]) must commit with [Mig_committed.freeze] within it —
      the budgeted-abort machinery really does bound the freeze window,
      it does not merely report overruns. *)

type violation = {
  vi_monitor : string;  (** Catalog name, e.g. ["residual"]. *)
  vi_at : Time.t;  (** Virtual instant of the offending event. *)
  vi_seq : int;  (** Sequence number of the offending event. *)
  vi_detail : string;  (** What broke, with the key values inline. *)
  vi_window : Tracer.record list;
      (** The offending event and up to 32 predecessors, oldest first,
          captured at detection time. *)
}

type t

val attach : Tracer.t -> t
(** Subscribe the monitor bundle. Records already retained in the ring
    are replayed first (so attaching right after cluster creation sees
    the boot-time attach events); attach before any frames have been
    evicted. *)

val violations : t -> violation list
(** In detection order. At most 16 are retained; see {!dropped}. *)

val dropped : t -> int
(** Violations beyond the retention cap, counted but not stored. *)

val events_seen : t -> int

val ok : t -> bool

val monitor_names : string list
(** The catalog, in a fixed order. *)

val coverage : t -> (string * int) list
(** How many events each monitor actually inspected (not merely saw go
    by), in {!monitor_names} order. A fuzz run uses this to prove every
    monitor was exercised, not just attached. *)

val pp_violation : Format.formatter -> violation -> unit
(** Multi-line: header plus the captured event window. *)

val pp_report : Format.formatter -> t -> unit
(** All retained violations, or a one-line all-clear. *)
