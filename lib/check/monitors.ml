(* Online invariant monitors: incremental automata over the typed trace
   stream. Each check is O(1)-ish per event (hash-table lookups), so the
   bundle can stay attached during full fuzz runs. *)

type violation = {
  vi_monitor : string;
  vi_at : Time.t;
  vi_seq : int;
  vi_detail : string;
  vi_window : Tracer.record list;
}

let window_capacity = 33 (* offending event + 32 predecessors *)
let max_violations = 16

type t = {
  window : Tracer.record option array;
  mutable w_next : int; (* next slot to overwrite *)
  mutable seen : int;
  mutable last_at : Time.t;
  mutable last_seq : int;
  (* conservation *)
  sent : (int * int, unit) Hashtbl.t; (* (seg, frame) *)
  delivered : (int * int * int, unit) Hashtbl.t; (* (seg, frame, addr) *)
  attached : (int * int, unit) Hashtbl.t; (* (seg, addr) *)
  (* freeze-window exclusion *)
  frozen : (int, string) Hashtbl.t; (* lh -> host that froze it *)
  (* pre-copy convergence *)
  rounds : (int, int) Hashtbl.t; (* lh -> previous round's bytes *)
  (* no residual dependencies *)
  banned : (int * string, unit) Hashtbl.t; (* (lh, old host) *)
  (* freeze-budget conformance *)
  budgets : (int, Time.span) Hashtbl.t; (* lh -> declared freeze budget *)
  (* content-transfer manifest accounting *)
  manifests : (string, int * string * int * int * int * bool) Hashtbl.t;
      (* host -> (lh, label, chunks, bytes, digest_sum, hit_seen) left to
         account for; chunks/bytes/digest_sum decrement as the hit/miss
         pair arrives and must hit exactly zero. *)
  (* events each monitor actually inspected, for coverage reports *)
  coverage : (string, int ref) Hashtbl.t;
  mutable vios : violation list; (* newest first *)
  mutable vio_count : int;
}

let monitor_names =
  [
    "clock"; "conservation"; "convergence"; "freeze"; "residual"; "budget";
    "dedup";
  ]

let violations t = List.rev t.vios
let dropped t = Stdlib.max 0 (t.vio_count - max_violations)
let events_seen t = t.seen
let ok t = t.vio_count = 0

let touch t name =
  match Hashtbl.find_opt t.coverage name with
  | Some r -> incr r
  | None -> Hashtbl.replace t.coverage name (ref 1)

let coverage t =
  List.map
    (fun name ->
      ( name,
        match Hashtbl.find_opt t.coverage name with
        | Some r -> !r
        | None -> 0 ))
    monitor_names

let capture_window t =
  (* Oldest first; the ring may not be full yet. *)
  let out = ref [] in
  for i = 0 to window_capacity - 1 do
    match t.window.((t.w_next + i) mod window_capacity) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  List.rev !out

let fail t monitor (r : Tracer.record) fmt =
  Format.kasprintf
    (fun detail ->
      t.vio_count <- t.vio_count + 1;
      if t.vio_count <= max_violations then
        t.vios <-
          {
            vi_monitor = monitor;
            vi_at = r.Tracer.at;
            vi_seq = r.Tracer.seq;
            vi_detail = detail;
            vi_window = capture_window t;
          }
          :: t.vios)
    fmt

let check_clock t (r : Tracer.record) =
  touch t "clock";
  if Time.(r.Tracer.at < t.last_at) then
    fail t "clock" r "time ran backwards: %s after %s"
      (Time.to_string r.Tracer.at)
      (Time.to_string t.last_at);
  if t.last_seq >= 0 && r.Tracer.seq <> t.last_seq + 1 then
    fail t "clock" r "sequence gap: %d after %d" r.Tracer.seq t.last_seq;
  t.last_at <- r.Tracer.at;
  t.last_seq <- r.Tracer.seq

let check_net t (r : Tracer.record) =
  match r.Tracer.ev with
  | Ethernet.Frame_sent { seg; frame; _ } ->
      touch t "conservation";
      Hashtbl.replace t.sent (seg, frame) ()
  | Ethernet.Frame_delivered { seg; frame; dst } ->
      touch t "conservation";
      let a = Addr.to_int dst in
      if not (Hashtbl.mem t.sent (seg, frame)) then
        fail t "conservation" r "frame %d delivered on seg %d but never sent"
          frame seg;
      if Hashtbl.mem t.delivered (seg, frame, a) then
        fail t "conservation" r
          "frame %d delivered twice to %s on seg %d" frame (Addr.to_string dst)
          seg
      else Hashtbl.replace t.delivered (seg, frame, a) ();
      if not (Hashtbl.mem t.attached (seg, a)) then
        fail t "conservation" r "frame %d delivered to detached station %s"
          frame (Addr.to_string dst)
  | Ethernet.Station_attached { seg; addr } ->
      touch t "conservation";
      Hashtbl.replace t.attached (seg, Addr.to_int addr) ()
  | Ethernet.Station_detached { seg; addr } ->
      touch t "conservation";
      Hashtbl.remove t.attached (seg, Addr.to_int addr)
  | _ -> ()

let check_freeze t (r : Tracer.record) =
  match r.Tracer.ev with
  | Logical_host.Lh_frozen { host; lh } ->
      touch t "freeze";
      Hashtbl.replace t.frozen lh host
  | Logical_host.Lh_unfrozen { lh; _ } ->
      touch t "freeze";
      Hashtbl.remove t.frozen lh
  | Cpu.Slice { owner; _ } -> (
      touch t "freeze";
      match Hashtbl.find_opt t.frozen owner with
      | Some host ->
          fail t "freeze" r "lh %d got a CPU slice while frozen on %s" owner
            host
      | None -> ())
  | _ -> ()

let check_convergence t (r : Tracer.record) =
  match r.Tracer.ev with
  | Migration.Mig_start { lh; _ } ->
      touch t "convergence";
      Hashtbl.remove t.rounds lh
  | Migration.Mig_round { lh; round; bytes; _ } ->
      touch t "convergence";
      (match Hashtbl.find_opt t.rounds lh with
      | Some prev when bytes > prev ->
          fail t "convergence" r
            "lh %d pre-copy round %d grew: %d bytes after %d" lh round bytes
            prev
      | _ -> ());
      Hashtbl.replace t.rounds lh bytes
  | _ -> ()

let residual t (r : Tracer.record) lh host what =
  touch t "residual";
  if Hashtbl.mem t.banned (lh, host) then
    fail t "residual" r
      "%s references lh %d on %s after it migrated away: %s" what lh host
      (Tracer.message_of r.Tracer.ev)

let check_residual t (r : Tracer.record) =
  match r.Tracer.ev with
  | Migration.Mig_committed { lh; from_host; dest; _ } ->
      Hashtbl.replace t.banned (lh, from_host) ();
      Hashtbl.remove t.banned (lh, dest)
  | Kernel.Ipc_recv { host; dst; _ } -> residual t r dst.Ids.lh host "delivery"
  | Kernel.Ipc_forward { host; lh; _ } -> residual t r lh host "forwarding"
  | Kernel.Page_fault_service { host; lh; _ } ->
      (* Copy-on-reference by design: the old host still serves the
         departed program's pages — exactly the dependency this monitor
         exists to reject. *)
      residual t r lh host "page-fault service"
  | Logical_host.Lh_installed { host; lh; _ } ->
      (* A migration back installs a fresh copy — not a residue — and the
         install lands before [Mig_committed], so lift the ban here. *)
      Hashtbl.remove t.banned (lh, host)
  | Logical_host.Lh_frozen { host; lh } | Logical_host.Lh_unfrozen { host; lh }
  | Logical_host.Lh_destroyed { host; lh } ->
      residual t r lh host "lifecycle event"
  | Logical_host.Lh_extracted { host; lh; _ } ->
      residual t r lh host "lifecycle event"
  | _ -> ()

(* Freeze-budget conformance: [Mig_budget] declares the ceiling for one
   attempt; the [Mig_committed] that ends that attempt must report a
   freeze window within it. The declaration dies with its attempt
   ([Mig_start] of a retry re-declares, [Mig_aborted] withdraws), so a
   budgeted attempt that aborts and retries unbudgeted is not held to
   the stale ceiling. *)
let check_budget t (r : Tracer.record) =
  match r.Tracer.ev with
  | Migration.Mig_start { lh; _ } -> Hashtbl.remove t.budgets lh
  | Migration.Mig_budget { lh; freeze; _ } ->
      touch t "budget";
      Hashtbl.replace t.budgets lh freeze
  | Migration.Mig_aborted { lh; _ } -> Hashtbl.remove t.budgets lh
  | Migration.Mig_committed { lh; freeze; _ } -> (
      match Hashtbl.find_opt t.budgets lh with
      | Some declared ->
          touch t "budget";
          if Time.(freeze > declared) then
            fail t "budget" r
              "lh %d froze for %s, over its declared budget of %s" lh
              (Time.to_string freeze) (Time.to_string declared);
          Hashtbl.remove t.budgets lh
      | None -> ())
  | _ -> ()

(* Content-transfer conservation: every [Xfer_manifest] is followed by
   exactly one [Xfer_chunk_hit] and one [Xfer_chunk_miss] for the same
   host/lh/label, and the pair partitions the manifest — chunk counts,
   byte counts and digest sums must each split exactly. A cached chunk
   whose stored bytes differed from the source page, a dropped entry, or
   a double count all break one of the three sums. *)
let check_dedup t (r : Tracer.record) =
  let part t (r : Tracer.record) host lh label chunks bytes digest_sum ~last
      what =
    match Hashtbl.find_opt t.manifests host with
    | None ->
        fail t "dedup" r "%s on %s (lh %d, %s) without a pending manifest"
          what host lh label
    | Some (mlh, mlabel, mc, mb, ms, hit_seen) ->
        if mlh <> lh || mlabel <> label then
          fail t "dedup" r
            "%s on %s names lh %d/%s but the pending manifest is lh %d/%s"
            what host lh label mlh mlabel;
        if last <> hit_seen then
          fail t "dedup" r "%s on %s out of order in the manifest triple" what
            host;
        let mc = mc - chunks and mb = mb - bytes and ms = ms - digest_sum in
        if last then begin
          Hashtbl.remove t.manifests host;
          if mc <> 0 || mb <> 0 || ms <> 0 then
            fail t "dedup" r
              "manifest on %s (lh %d, %s) not conserved: %d chunks, %d \
               bytes, digest sum %d left unaccounted"
              host lh label mc mb ms
        end
        else Hashtbl.replace t.manifests host (mlh, mlabel, mc, mb, ms, true)
  in
  match r.Tracer.ev with
  | Kernel.Xfer_manifest { host; lh; label; chunks; bytes; digest_sum; _ } ->
      touch t "dedup";
      if Hashtbl.mem t.manifests host then
        fail t "dedup" r
          "manifest on %s (lh %d, %s) before the previous one's hit/miss \
           pair completed"
          host lh label;
      Hashtbl.replace t.manifests host
        (lh, label, chunks, bytes, digest_sum, false)
  | Kernel.Xfer_chunk_hit { host; lh; label; chunks; bytes; digest_sum } ->
      touch t "dedup";
      part t r host lh label chunks bytes digest_sum ~last:false "chunk-hit"
  | Kernel.Xfer_chunk_miss { host; lh; label; chunks; bytes; digest_sum } ->
      touch t "dedup";
      part t r host lh label chunks bytes digest_sum ~last:true "chunk-miss"
  | _ -> ()

let handle t (r : Tracer.record) =
  t.window.(t.w_next) <- Some r;
  t.w_next <- (t.w_next + 1) mod window_capacity;
  t.seen <- t.seen + 1;
  check_clock t r;
  check_net t r;
  check_freeze t r;
  check_convergence t r;
  check_residual t r;
  check_budget t r;
  check_dedup t r

let attach trc =
  let t =
    {
      window = Array.make window_capacity None;
      w_next = 0;
      seen = 0;
      last_at = Time.zero;
      last_seq = -1;
      sent = Hashtbl.create 1024;
      delivered = Hashtbl.create 1024;
      attached = Hashtbl.create 32;
      frozen = Hashtbl.create 8;
      rounds = Hashtbl.create 8;
      banned = Hashtbl.create 8;
      budgets = Hashtbl.create 8;
      manifests = Hashtbl.create 8;
      coverage = Hashtbl.create 8;
      vios = [];
      vio_count = 0;
    }
  in
  (* Catch up on what the ring retains (boot-time attaches and the
     like), then go live. *)
  List.iter (handle t) (Tracer.records trc);
  Tracer.on_event trc (handle t);
  t

let pp_violation ppf v =
  Format.fprintf ppf "@[<v>[%s] violation at %s (event #%d): %s@ window:@ %a@]"
    v.vi_monitor (Time.to_string v.vi_at) v.vi_seq v.vi_detail
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf r ->
         Format.fprintf ppf "  %a" Tracer.pp_record r))
    v.vi_window

let pp_report ppf t =
  if ok t then
    Format.fprintf ppf "all invariants held over %d events" t.seen
  else begin
    Format.fprintf ppf "@[<v>%d violation%s over %d events:@ %a@]" t.vio_count
      (if t.vio_count = 1 then "" else "s")
      t.seen
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_violation)
      (violations t);
    if dropped t > 0 then
      Format.fprintf ppf "@ (%d further violations not retained)" (dropped t)
  end
