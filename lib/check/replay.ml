type t = {
  r_scenario : string option;
  r_seed : int option;
  r_serve : bool;
  r_forwarding : bool;
  r_strategy : string option;
  r_placement : string option;
  r_content_cache : int option;
}

let strategy_tokens = [ "precopy"; "freeze"; "cor"; "vmflush" ]
let placement_tokens = [ "flat"; "pods"; "predictive" ]

let make ?scenario ?seed ?(serve = false) ?(forwarding = false) ?strategy
    ?placement ?content_cache () =
  {
    r_scenario = scenario;
    r_seed = seed;
    r_serve = serve;
    r_forwarding = forwarding;
    r_strategy = strategy;
    r_placement = placement;
    r_content_cache = content_cache;
  }

let format r =
  String.concat ""
    ([ "vsim fuzz" ]
    @ (match r.r_scenario with
      | Some n -> [ " --scenario "; n ]
      | None -> [])
    @ (match r.r_seed with
      | Some k -> [ " --seed "; string_of_int k ]
      | None -> [])
    @ (if r.r_serve then [ " --serve" ] else [])
    @ (if r.r_forwarding then [ " --forwarding" ] else [])
    @ (match r.r_strategy with
      | Some s -> [ " --strategy "; s ]
      | None -> [])
    @ (match r.r_placement with
      | Some p -> [ " --placement "; p ]
      | None -> [])
    @
    match r.r_content_cache with
    | Some b -> [ " --content-cache "; string_of_int b ]
    | None -> [])

open Cmdliner

let strategy_conv =
  let parse s =
    if List.mem s strategy_tokens then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown strategy %S (expected one of: %s)" s
             (String.concat ", " strategy_tokens)))
  in
  Arg.conv (parse, Format.pp_print_string)

let placement_conv =
  let parse s =
    if List.mem s placement_tokens then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown placement %S (expected one of: %s)" s
             (String.concat ", " placement_tokens)))
  in
  Arg.conv (parse, Format.pp_print_string)

let term =
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Fuzz a named scenario from the library (or $(b,all) to sample \
             across every entry). Omit to use the free-form generator.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"K"
          ~doc:"Replay a single seed instead of fanning out.")
  in
  let serve =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:"Fuzz sustained-traffic serve sessions instead of job batches.")
  in
  let forwarding =
    Arg.(
      value & flag
      & info [ "forwarding" ]
          ~doc:
            "Ablation: leave message-forwarding residuals on the source host \
             (the Demos/MP design the residual monitor rejects).")
  in
  let strategy =
    Arg.(
      value
      & opt (some strategy_conv) None
      & info [ "strategy" ] ~docv:"S"
          ~doc:
            "Force one migration discipline on every generated migration: \
             $(b,precopy), $(b,freeze), $(b,cor) or $(b,vmflush).")
  in
  let placement =
    Arg.(
      value
      & opt (some placement_conv) None
      & info [ "placement" ] ~docv:"P"
          ~doc:
            "Force one placement policy on every serve run: $(b,flat), \
             $(b,pods) or $(b,predictive).")
  in
  let content_cache =
    Arg.(
      value
      & opt (some int) None
      & info [ "content-cache" ] ~docv:"BYTES"
          ~doc:
            "Per-host content cache budget in bytes (enables \
             content-addressed state transfer and image dedup). Omit to \
             let the fuzzer alternate cache-on/cache-off by seed; $(b,0) \
             pins caching off.")
  in
  Term.(
    const
      (fun r_scenario r_seed r_serve r_forwarding r_strategy r_placement
           r_content_cache ->
        {
          r_scenario;
          r_seed;
          r_serve;
          r_forwarding;
          r_strategy;
          r_placement;
          r_content_cache;
        })
    $ scenario $ seed $ serve $ forwarding $ strategy $ placement
    $ content_cache)

let parse line =
  let words =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let words =
    match words with
    | "vsim" :: "fuzz" :: rest | "fuzz" :: rest -> rest
    | rest -> rest
  in
  let argv = Array.of_list ("fuzz" :: words) in
  let diag = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer diag in
  let cmd = Cmd.v (Cmd.info "fuzz") Term.(const Fun.id $ term) in
  match Cmd.eval_value ~help:fmt ~err:fmt ~argv cmd with
  | Ok (`Ok t) -> Ok t
  | Ok (`Version | `Help) -> Error "replay line requested help/version"
  | Error _ ->
      Format.pp_print_flush fmt ();
      Error (String.trim (Buffer.contents diag))
