(** Job arrival and owner-activity processes.

    The usage experiment (Section 4.3) needs two stochastic drivers: a
    Poisson stream of batch jobs submitted to the cluster, and per-
    workstation owner sessions — alternating active (editing) and idle
    periods — that determine which workstations are candidates for guest
    work and when an owner "returns", triggering preemption. *)

val exponential_span : Rng.t -> mean:Time.span -> Time.span
(** An exponentially distributed duration, at least 1 us. *)

val poisson_stream :
  Engine.t -> Rng.t -> rate_per_sec:float -> until:Time.t ->
  (int -> unit) -> unit
(** [poisson_stream e rng ~rate_per_sec ~until f] schedules [f k] at the
    [k]-th arrival (k from 0) of a Poisson process, stopping at the
    horizon. Events are scheduled lazily, one ahead. *)

(** {1 Rate modulation}

    Production arrival curves are rarely flat: load follows the working
    day (diurnal sinusoid) or jumps when a class deadline hits (flash
    crowd). A [modulation] reshapes a base Poisson rate over virtual
    time; streams are sampled by Lewis–Shedler thinning at the peak
    rate, so event times stay strictly monotone per stream and the whole
    process is a deterministic function of the generator. *)

type modulation =
  | Constant  (** Plain homogeneous Poisson. *)
  | Sinusoid of { period : Time.span; depth : float }
      (** rate(t) = base * (1 + depth*sin(2πt/period)), clamped at 0.
          [depth] in [0,1] keeps the rate non-negative. *)
  | Spike of {
      at : Time.t;  (** Start of the full-multiplier plateau. *)
      ramp : Time.span;  (** Linear climb 1→mult ending at [at]. *)
      hold : Time.span;  (** Plateau length at [mult]. *)
      decay : Time.span;  (** Linear fall mult→1 after the plateau. *)
      mult : float;  (** Peak rate multiplier (e.g. 10.0). *)
    }

val rate_multiplier : modulation -> Time.t -> float
(** Instantaneous rate multiplier at virtual time [t] (≥ 0). *)

val peak_multiplier : modulation -> float
(** Supremum of {!rate_multiplier} over all times (≥ 1); the thinning
    envelope. *)

val modulation_to_string : modulation -> string
(** Compact form for scenario descriptions and serve JSON. *)

val modulated_stream :
  Engine.t -> Rng.t -> rate_per_sec:float -> modulation:modulation ->
  until:Time.t -> (int -> unit) -> unit
(** Like {!poisson_stream} with a time-varying rate
    [rate_per_sec * rate_multiplier modulation t]. [f k] fires at the
    [k]-th accepted arrival; candidates are scheduled lazily, one
    ahead, at the peak rate. *)

val modulated_times :
  Rng.t -> rate_per_sec:float -> modulation:modulation -> until:Time.t ->
  Time.t list
(** Offline sampler: the strictly increasing arrival times the same
    thinning process produces, with no engine required. Used by plain
    scenario generators and property tests. *)

(** Owner keyboard sessions: an on/off renewal process. *)
module Owner : sig
  type params = {
    active_mean : Time.span;  (** Mean editing-burst length. *)
    idle_mean : Time.span;  (** Mean absence length. *)
    active_cpu_fraction : float;
        (** CPU demanded while active (editing is light: ~0.1). *)
  }

  val default : params
  (** Means chosen so workstations are over 80% idle, matching the
      paper's observation for peak hours. *)

  type t

  val start : Engine.t -> Rng.t -> params -> on_transition:(bool -> unit) -> t
  (** Begin the renewal process (initially idle); [on_transition active]
      fires at each state change. *)

  val active : t -> bool
  val stop : t -> unit
end
