let exponential_span rng ~mean =
  let s = Rng.exponential rng ~mean:(Time.to_sec mean) in
  Time.max (Time.of_us 1) (Time.of_sec s)

let poisson_stream eng rng ~rate_per_sec ~until f =
  assert (rate_per_sec > 0.);
  let mean = Time.of_sec (1. /. rate_per_sec) in
  let rec next k =
    let gap = exponential_span rng ~mean in
    let at = Time.add (Engine.now eng) gap in
    if Time.(at <= until) then
      Engine.post eng ~at (fun () ->
          f k;
          next (k + 1))
  in
  next 0

module Owner = struct
  type params = {
    active_mean : Time.span;
    idle_mean : Time.span;
    active_cpu_fraction : float;
  }

  let default =
    {
      active_mean = Time.of_sec 30.;
      idle_mean = Time.of_sec 180.;
      active_cpu_fraction = 0.1;
    }

  type t = {
    eng : Engine.t;
    rng : Rng.t;
    p : params;
    on_transition : bool -> unit;
    mutable is_active : bool;
    mutable stopped : bool;
  }

  let active t = t.is_active
  let stop t = t.stopped <- true

  let rec arm t =
    if not t.stopped then begin
      let mean = if t.is_active then t.p.active_mean else t.p.idle_mean in
      ignore
        (Engine.schedule_after t.eng
           (exponential_span t.rng ~mean)
           (fun () ->
             if not t.stopped then begin
               t.is_active <- not t.is_active;
               t.on_transition t.is_active;
               arm t
             end))
    end

  let start eng rng p ~on_transition =
    let t = { eng; rng; p; on_transition; is_active = false; stopped = false } in
    arm t;
    t
end
