let exponential_span rng ~mean =
  let s = Rng.exponential rng ~mean:(Time.to_sec mean) in
  Time.max (Time.of_us 1) (Time.of_sec s)

let poisson_stream eng rng ~rate_per_sec ~until f =
  assert (rate_per_sec > 0.);
  let mean = Time.of_sec (1. /. rate_per_sec) in
  let rec next k =
    let gap = exponential_span rng ~mean in
    let at = Time.add (Engine.now eng) gap in
    if Time.(at <= until) then
      Engine.post eng ~at (fun () ->
          f k;
          next (k + 1))
  in
  next 0

(* {1 Rate modulation}

   Non-homogeneous Poisson processes via Lewis–Shedler thinning:
   candidates are drawn at the peak rate and accepted with probability
   rate(t)/peak. Candidate instants advance by at least 1 us whether
   accepted or not, so accepted arrival times are strictly monotone, and
   the whole stream is a pure function of the generator — the property
   the deterministic -j fan-out relies on. *)

type modulation =
  | Constant
  | Sinusoid of { period : Time.span; depth : float }
  | Spike of {
      at : Time.t;
      ramp : Time.span;
      hold : Time.span;
      decay : Time.span;
      mult : float;
    }

let two_pi = 8. *. atan 1.

let rate_multiplier m t =
  match m with
  | Constant -> 1.
  | Sinusoid { period; depth } ->
      let p = Time.to_sec period in
      if p <= 0. then 1.
      else Float.max 0. (1. +. (depth *. sin (two_pi *. Time.to_sec t /. p)))
  | Spike { at; ramp; hold; decay; mult } ->
      let t = Time.to_sec t
      and at = Time.to_sec at
      and ramp = Time.to_sec ramp
      and hold = Time.to_sec hold
      and decay = Time.to_sec decay in
      if t < at -. ramp || t > at +. hold +. decay then 1.
      else if t < at then
        1. +. ((mult -. 1.) *. ((t -. (at -. ramp)) /. Float.max ramp 1e-9))
      else if t <= at +. hold then mult
      else
        mult -. ((mult -. 1.) *. ((t -. (at +. hold)) /. Float.max decay 1e-9))

let peak_multiplier = function
  | Constant -> 1.
  | Sinusoid { depth; _ } -> 1. +. Float.max 0. depth
  | Spike { mult; _ } -> Float.max 1. mult

let modulation_to_string = function
  | Constant -> "constant"
  | Sinusoid { period; depth } ->
      Printf.sprintf "sin:%s:%.2f" (Time.to_string period) depth
  | Spike { at; ramp; hold; decay; mult } ->
      Printf.sprintf "spike:x%g@%s(+%s~%s-%s)" mult (Time.to_string at)
        (Time.to_string ramp) (Time.to_string hold) (Time.to_string decay)

(* One thinning step: the next candidate gap at peak rate, plus the
   accept draw. Factored out so the engine-driven stream and the offline
   sampler consume the generator identically. *)
let thinning_step rng ~rate_per_sec ~modulation ~peak_mean ~peak ~from =
  let at = Time.add from (exponential_span rng ~mean:peak_mean) in
  let keep =
    Rng.float rng 1. < rate_per_sec *. rate_multiplier modulation at /. peak
  in
  (at, keep)

let modulated_stream eng rng ~rate_per_sec ~modulation ~until f =
  assert (rate_per_sec > 0.);
  let peak = rate_per_sec *. peak_multiplier modulation in
  let peak_mean = Time.of_sec (1. /. peak) in
  let rec next k =
    let at, keep =
      thinning_step rng ~rate_per_sec ~modulation ~peak_mean ~peak
        ~from:(Engine.now eng)
    in
    if Time.(at <= until) then
      Engine.post eng ~at (fun () ->
          if keep then begin
            f k;
            next (k + 1)
          end
          else next k)
  in
  next 0

let modulated_times rng ~rate_per_sec ~modulation ~until =
  assert (rate_per_sec > 0.);
  let peak = rate_per_sec *. peak_multiplier modulation in
  let peak_mean = Time.of_sec (1. /. peak) in
  let rec go acc t =
    let at, keep =
      thinning_step rng ~rate_per_sec ~modulation ~peak_mean ~peak ~from:t
    in
    if Time.(at <= until) then go (if keep then at :: acc else acc) at
    else List.rev acc
  in
  go [] Time.zero

module Owner = struct
  type params = {
    active_mean : Time.span;
    idle_mean : Time.span;
    active_cpu_fraction : float;
  }

  let default =
    {
      active_mean = Time.of_sec 30.;
      idle_mean = Time.of_sec 180.;
      active_cpu_fraction = 0.1;
    }

  type t = {
    eng : Engine.t;
    rng : Rng.t;
    p : params;
    on_transition : bool -> unit;
    mutable is_active : bool;
    mutable stopped : bool;
  }

  let active t = t.is_active
  let stop t = t.stopped <- true

  let rec arm t =
    if not t.stopped then begin
      let mean = if t.is_active then t.p.active_mean else t.p.idle_mean in
      ignore
        (Engine.schedule_after t.eng
           (exponential_span t.rng ~mean)
           (fun () ->
             if not t.stopped then begin
               t.is_active <- not t.is_active;
               t.on_transition t.is_active;
               arm t
             end))
    end

  let start eng rng p ~on_transition =
    let t = { eng; rng; p; on_transition; is_active = false; stopped = false } in
    arm t;
    t
end
