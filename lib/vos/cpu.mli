(** Per-workstation processor scheduling.

    Each workstation has one CPU shared by every program on it. The paper
    relies on "priority scheduling for locally invoked programs" so that a
    text-editing owner "need not notice the presence of background jobs"
    (Section 2): locally invoked work runs at foreground priority, guest
    (remotely executed) work at background priority, and the foreground
    queue strictly preempts the background queue at quantum granularity.

    Compute demand is expressed by blocking calls: a process asking for
    [d] of CPU is blocked until it has actually been scheduled for [d] of
    virtual time, however long contention stretches that. *)

type priority = Foreground | Background

(** One typed trace event per completed slice, emitted before the CPU is
    released (at the same point as {!compute_sliced}'s [on_slice] hook),
    so a freeze draining the CPU observes every slice event before the
    host is reported frozen. [owner] is the logical-host tag; untagged
    (owner 0) system work is not traced. *)
type Tracer.event += Slice of { owner : int; foreground : bool; span : Time.span }

type t

val create : ?tracer:Tracer.t -> Engine.t -> quantum:Time.span -> t

val compute :
  ?owner:int ->
  ?gate:(unit -> unit) ->
  ?must_release:(unit -> bool) ->
  t ->
  priority:priority ->
  Time.span ->
  unit
(** Consume CPU from within a simulated process, blocking until served.
    Work is sliced into quanta; equal-priority requests round-robin,
    foreground requests strictly preempt background ones at quantum
    boundaries (the paper's owner-shield behaviour, observable in the
    usage experiment), and a lone request keeps the CPU across its
    quanta. Zero or negative demand returns immediately.

    [owner] tags the request (logical-host id) so {!wait_clear} can drain
    it; [gate] is called before acquiring the CPU and may block; and
    [must_release], polled at each slice boundary, forces the request off
    the CPU — the freeze mechanism passes a gate that blocks while the
    logical host is frozen and a [must_release] that fires when a freeze
    begins. *)

val compute_sliced :
  ?owner:int ->
  ?gate:(unit -> unit) ->
  ?must_release:(unit -> bool) ->
  t ->
  priority:priority ->
  Time.span ->
  on_slice:(Time.span -> unit) ->
  unit
(** Like {!compute} but invokes [on_slice served] at the end of each
    scheduled slice, before the CPU is released — the hook through which
    workloads dirty pages in proportion to CPU actually received, ordered
    so that a freeze draining the CPU observes the dirtying. *)

val set_slowdown : t -> float -> unit
(** [set_slowdown t f] makes every subsequent quantum of work take [f]
    times as long in wall time (work accomplished per slice, and hence
    page dirtying, is unchanged) — the straggler injection hook of the
    fault plans. [f = 1.0] restores nominal speed; [f < 1.0] raises
    [Invalid_argument]. Takes effect from the next scheduled slice. *)

val slowdown : t -> float
(** The current slowdown factor (1.0 when nominal). *)

val wait_clear : t -> owner:int -> unit
(** Block until no request tagged [owner] holds the CPU. Freezing a
    logical host drains its member currently on the CPU this way before
    snapshotting state (Section 3.1.3). *)

val busy_fraction : t -> float
(** Fraction of virtual time the CPU has been running anything since
    creation — drives the idle-workstation statistics of Section 4.3. *)

val foreground_fraction : t -> float
(** Fraction of virtual time spent on foreground work. *)

val queue_length : t -> int
(** Requests currently waiting or running. *)
