(** Logical hosts — the unit of migration.

    "V address spaces and their associated processes are grouped into
    logical hosts. ... There may be multiple logical hosts associated with
    a single workstation, however, a logical host is local to a single
    workstation" (Section 2.1). Migration moves a whole logical host;
    rebinding its id to a new station rebinds every process id inside it.

    Besides the processes and address spaces, a logical host carries the
    per-request bookkeeping that must move with it for the IPC guarantees
    of Section 3.1.3 to survive a migration: the inbound-transaction table
    (duplicate suppression and cached replies) and the list of deferred
    kernel-server/program-manager operations. *)

type inbound_state =
  | Queued  (** Delivered to the recipient's queue, not yet received. *)
  | In_service  (** Received; reply outstanding. *)
  | Replied of Message.t * Time.t
      (** Reply sent and retained until the expiry instant for duplicate
          requests; each duplicate refreshes the expiry. *)

(** Lifecycle trace events, emitted by the owning kernel. [host] names
    the workstation whose {e copy} of the logical host the event
    concerns; the no-residual-dependency monitor requires that after a
    migration commits, no event mentions the old host's copy. A kernel
    emits [Lh_frozen] only after the host's CPU has drained the frozen
    host's running slice, and [Lh_unfrozen] before any thawed process
    resumes. *)
type Tracer.event +=
  | Lh_frozen of { host : string; lh : Ids.lh_id }
  | Lh_unfrozen of { host : string; lh : Ids.lh_id }
  | Lh_extracted of { host : string; lh : Ids.lh_id; bytes : int }
  | Lh_installed of { host : string; lh : Ids.lh_id; bytes : int }
  | Lh_destroyed of { host : string; lh : Ids.lh_id }

type t

val create :
  id:Ids.lh_id -> priority:Cpu.priority -> home:string -> t
(** A fresh, empty, unfrozen logical host. [home] is the workstation that
    created it (reporting only); [priority] is the CPU class its processes
    run at — [Background] for guest (remotely executed) programs. *)

val id : t -> Ids.lh_id
val priority : t -> Cpu.priority
val home : t -> string

val set_priority : t -> Cpu.priority -> unit

(** {1 Processes and address spaces} *)

val new_process : t -> Vproc.t
(** Allocate the next free index and register a process under it. *)

val find_process : t -> int -> Vproc.t option
val processes : t -> Vproc.t list
(** In index order. *)

val process_count : t -> int

val add_space : t -> Address_space.t -> unit
val spaces : t -> Address_space.t list
val total_bytes : t -> int
(** Memory footprint: sum of address-space sizes. *)

val dirty_bytes : t -> int
(** Dirty bytes across all address spaces, the pre-copy residue. *)

val clear_dirty : t -> int
(** Clear dirty bits everywhere; returns bytes that were dirty. *)

(** {1 Freezing} *)

val frozen : t -> bool

val set_frozen : t -> bool -> unit
(** Raw flag flip; {!Kernel.freeze_lh} performs the full protocol (CPU
    drain, pausing processes). *)

val gate : t -> unit -> unit
(** A closure that blocks its caller while the logical host is frozen —
    installed at every point where member processes consume CPU or enter
    the kernel. *)

val thaw : t -> unit
(** Wake everything blocked in {!gate}. Called by unfreeze after the
    frozen flag is cleared. *)

(** {1 Migratable request state} *)

val inbound : t -> (Packet.txn, inbound_state) Hashtbl.t
(** Keyed by transaction id alone: txn values are drawn from one
    per-domain counter shared by every kernel in a replica, so no two
    senders ever share a txn and the (sender, txn) pair of Section 3.1.3
    collapses to the int — an int key hashes without allocating the pair
    on every duplicate-suppression probe. *)

val defer_op : t -> Delivery.t -> unit
(** Park a kernel-server/program-manager request targeting this (frozen)
    logical host, to be forwarded after migration (Section 3.1.3). *)

val take_deferred : t -> Delivery.t list
(** Remove and return deferred operations, oldest first. *)

val pp : Format.formatter -> t -> unit
