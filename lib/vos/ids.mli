(** V identifiers.

    A V process identifier is a (logical-host-id, local-index) pair
    (Section 2.1). Process-group identifiers share the format; the
    host-specific kernel server and program manager are addressed through
    {e local} groups built from a logical host's id and a well-known index,
    which is what makes them reachable in a location-independent way. *)

type lh_id = int
(** Logical-host identifier — globally unique across the cluster. *)

type pid = { lh : lh_id; index : int }
(** A process (or process-group) identifier. *)

val pid : lh_id -> int -> pid

val pid_equal : pid -> pid -> bool
val pid_compare : pid -> pid -> int
val pid_hash : pid -> int

val pp_lh : Format.formatter -> lh_id -> unit
val pp_pid : Format.formatter -> pid -> unit
val pid_to_string : pid -> string

(** {1 Well-known local indices}

    Every host's kernel server and program manager occupy reserved indices
    within each logical host's id space, so "the kernel server managing
    {e this} program" is [{ lh = my_lh; index = kernel_server_index }] —
    no matter where the logical host currently runs. *)

val kernel_server_index : int
val program_manager_index : int

val kernel_server_of : lh_id -> pid
(** The local-group id addressing the kernel server co-resident with the
    given logical host. *)

val program_manager_of : lh_id -> pid
(** Likewise for the program manager. *)

val is_local_group : pid -> bool
(** [true] for identifiers using a reserved index — they address whichever
    host currently runs the logical host, not a migratable process. *)

(** {1 Well-known global groups} *)

val program_manager_group : pid
(** The group all program managers join (Section 2.1); host selection
    multicasts to it. *)

val pod_group : int -> pid
(** The scheduling group for pod [n] under a pod-sharded placement
    policy ({!Config.placement}). Every program manager in the pod joins
    it in addition to {!program_manager_group}; pod-scoped host selection
    multicasts to it instead of the global group. Ids live in the same
    reserved range as the global groups. *)

val content_group : pid
(** The group every kernel server with a non-zero content-cache budget
    joins. The file server multicasts image-chunk digest announcements
    to it after serving a load, so one host's cold image load warms the
    whole cluster's caches (DESIGN.md §4k). *)

val first_user_index : int
(** Lowest index allocated to ordinary processes. *)

(** {1 Allocation} *)

module Lh_allocator : sig
  (** Cluster-wide allocator of fresh logical-host ids. In V these were
      drawn from a managed id space; one allocator per simulation keeps
      them unique, including the temporary ids given to new copies during
      migration (Section 3.1.1). *)

  type t

  val create : unit -> t
  val fresh : t -> lh_id
end
