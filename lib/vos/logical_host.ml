type inbound_state = Queued | In_service | Replied of Message.t * Time.t

(* Lifecycle trace events, emitted by the owning kernel ([host] names the
   workstation whose copy of the logical host the event concerns — after
   a migration commits, none of these may mention the old host's copy). *)
type Tracer.event +=
  | Lh_frozen of { host : string; lh : Ids.lh_id }
  | Lh_unfrozen of { host : string; lh : Ids.lh_id }
  | Lh_extracted of { host : string; lh : Ids.lh_id; bytes : int }
  | Lh_installed of { host : string; lh : Ids.lh_id; bytes : int }
  | Lh_destroyed of { host : string; lh : Ids.lh_id }

let () =
  let v type_ host lh extra =
    Some
      {
        Tracer.v_cat = "lh";
        v_type = type_;
        v_fields = ("host", Tracer.Str host) :: ("lh", Tracer.Int lh) :: extra;
      }
  in
  Tracer.register_view (function
    | Lh_frozen { host; lh } -> v "frozen" host lh []
    | Lh_unfrozen { host; lh } -> v "unfrozen" host lh []
    | Lh_extracted { host; lh; bytes } ->
        v "extracted" host lh [ ("bytes", Tracer.Int bytes) ]
    | Lh_installed { host; lh; bytes } ->
        v "installed" host lh [ ("bytes", Tracer.Int bytes) ]
    | Lh_destroyed { host; lh } -> v "destroyed" host lh []
    | _ -> None)

type t = {
  lh_id : Ids.lh_id;
  mutable prio : Cpu.priority;
  home_host : string;
  procs : (int, Vproc.t) Hashtbl.t;
  mutable proc_order : int list; (* indices, newest first *)
  mutable space_list : Address_space.t list;
  mutable next_index : int;
  mutable is_frozen : bool;
  mutable thaw_waiters : (unit -> unit) list;
  inbound_tbl : (Packet.txn, inbound_state) Hashtbl.t;
  mutable deferred : Delivery.t list; (* newest first *)
}

let create ~id ~priority ~home =
  {
    lh_id = id;
    prio = priority;
    home_host = home;
    procs = Hashtbl.create 8;
    proc_order = [];
    space_list = [];
    next_index = Ids.first_user_index;
    is_frozen = false;
    thaw_waiters = [];
    inbound_tbl = Hashtbl.create 16;
    deferred = [];
  }

let id t = t.lh_id
let priority t = t.prio
let home t = t.home_host
let set_priority t p = t.prio <- p

let new_process t =
  let index = t.next_index in
  t.next_index <- index + 1;
  let vp = Vproc.create (Ids.pid t.lh_id index) in
  Hashtbl.replace t.procs index vp;
  t.proc_order <- index :: t.proc_order;
  vp

let find_process t index = Hashtbl.find_opt t.procs index

let processes t =
  List.rev_map (fun i -> Hashtbl.find t.procs i) t.proc_order

let process_count t = Hashtbl.length t.procs

let add_space t sp = t.space_list <- sp :: t.space_list
let spaces t = List.rev t.space_list

let total_bytes t =
  List.fold_left (fun acc sp -> acc + Address_space.bytes sp) 0 t.space_list

let dirty_bytes t =
  List.fold_left (fun acc sp -> acc + Address_space.dirty_bytes sp) 0 t.space_list

let clear_dirty t =
  List.fold_left
    (fun acc sp ->
      acc + (Address_space.clear_dirty sp * Address_space.page_bytes sp))
    0 t.space_list

let frozen t = t.is_frozen
let set_frozen t b = t.is_frozen <- b

let gate t () =
  while t.is_frozen do
    Proc.suspend (fun wake ->
        t.thaw_waiters <- wake :: t.thaw_waiters;
        fun () ->
          t.thaw_waiters <- List.filter (fun w -> w != wake) t.thaw_waiters)
  done

let thaw t =
  let waiters = List.rev t.thaw_waiters in
  t.thaw_waiters <- [];
  List.iter (fun wake -> wake ()) waiters

let inbound t = t.inbound_tbl

let defer_op t d = t.deferred <- d :: t.deferred

let take_deferred t =
  let ops = List.rev t.deferred in
  t.deferred <- [];
  ops

let pp ppf t =
  Format.fprintf ppf "%a(%d procs, %d KB%s)" Ids.pp_lh t.lh_id
    (process_count t)
    (total_bytes t / 1024)
    (if t.is_frozen then ", frozen" else "")
