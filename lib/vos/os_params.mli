(** Kernel timing parameters.

    Every cost the simulated kernel charges lives here, so experiments can
    sweep or ablate them. Defaults are calibrated to the paper's SUN
    (10 MHz 68010) measurements; the provenance of each constant is noted
    on its field. Higher-level calibration (program manager, migration,
    workloads) lives in [V_core.Config]. *)

(** How references to a migrated logical host get rebound. *)
type rebind_mode =
  | Broadcast_query
      (** The paper's design: invalidate the binding-cache entry after
          unanswered retransmissions and broadcast [Where_is]; no state
          remains on the old host (Section 3.1.4). *)
  | Forwarding
      (** The Demos/MP design the paper argues against: the old host
          keeps a forwarding address and relays packets; senders never
          query. Works — until the old host reboots while a stale
          reference is outstanding (Section 5). Implemented for the
          related-work ablation bench. *)

type t = {
  local_op : Time.span;
      (** Base cost of a kernel operation / local message exchange.
          ~0.5 ms on the 68010-era V kernel. *)
  frozen_check : Time.span;
      (** Added to kernel operations to test whether the target process'
          logical host is frozen — 13 us (Section 4.1). Set to zero to
          ablate, i.e. to measure a kernel without migration support. *)
  group_lookup : Time.span;
      (** Added when a kernel server or program manager is addressed via
          its local group id — 100 us (Section 4.1). Ablatable likewise. *)
  retransmit_interval : Time.span;
      (** Source kernel retransmits an unanswered request after this
          initial interval. *)
  retransmit_backoff : float;
      (** Each consecutive unanswered retransmission multiplies the
          interval by this factor (exponential backoff), so a loss burst
          or dead correspondent does not flood the shared wire. [1.0]
          restores the fixed-interval machine. Any answer — a reply or a
          reply-pending — resets the interval to
          [retransmit_interval]. *)
  retransmit_cap : Time.span;
      (** Upper bound on the backed-off retransmission interval, keeping
          recovery latency bounded once the correspondent returns. *)
  retries_before_query : int;
      (** Unanswered retransmissions tolerated before the binding-cache
          entry is invalidated and a [Where_is] broadcast goes out
          (Section 3.1.4: "a small number of retransmissions"). *)
  give_up_after : Time.span;
      (** A send with no reply and no reply-pending for this long fails.
          Reply-pending packets reset this clock. *)
  reply_cache_ttl : Time.span;
      (** How long a replier retains a reply for duplicate requests; each
          duplicate request refreshes it (Section 3.1.3). *)
  reservation_ttl : Time.span;
      (** How long a migration destination holds a {!Kernel.reserve_lh}
          reservation with no traffic addressed to it before releasing
          the memory — the recovery path for a source that crashes
          mid-pre-copy and never installs. Every request addressed
          through the reserved id (each copy round's acknowledgement
          ping) refreshes the clock, so a healthy in-progress migration
          never expires. [Time.zero] or negative disables expiry. *)
  cpu_quantum : Time.span;
      (** Scheduler time slice for compute-bound processes. *)
  rebind : rebind_mode;  (** Defaults to {!Broadcast_query}. *)
  bulk_pacing : Transfer.pacing;
      (** Frame size and per-frame host CPU charged by
          {!Kernel.bulk_transfer}. Defaults to {!Transfer.v_pacing} —
          the paper's 3 s/MByte calibration, where per-frame protocol
          cost (not the 10 Mbit wire) bounds bulk throughput. Scale-out
          experiments override it to model modern NICs, exactly as they
          override the file server's media speed. *)
  content_cache_bytes : int;
      (** Byte budget of the per-host content cache used by
          content-addressed transfer (manifest-first bulk copy, image
          chunk dedup — DESIGN.md §4k). [0] (the default) disables
          content addressing entirely: no digests are computed, no
          manifests are exchanged, and every transfer ships full bytes
          exactly as the paper's calibration measures. *)
}

val default : t

val pp : Format.formatter -> t -> unit
