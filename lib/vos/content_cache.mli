(** Bounded per-host content cache: an LRU over page/chunk digests.

    A host that has recently received (or shipped) a page remembers its
    digest; a later transfer whose manifest names that digest skips the
    bytes. Entries carry the byte count they stand for and the byte
    budget bounds their sum — the simulator's stand-in for pinning real
    cache memory. All operations are O(1) except {!digests}/{!clear}.

    A budget of 0 (the {!Os_params} default) disables the cache: every
    probe misses and nothing is ever stored, so default-configured runs
    ship exactly the bytes they always did. *)

type t

val create : budget:int -> t
(** [budget] is the maximum total bytes of cached content; [<= 0]
    disables the cache. *)

val budget : t -> int

val enabled : t -> bool
(** [budget t > 0]. *)

val probe : t -> digest:int -> bytes:int -> bool
(** [probe t ~digest ~bytes] is the one-shot dedup step: [true] (hit —
    the host already holds content with this digest; recency is
    refreshed), or [false] (miss — the content will now be shipped, so
    it is inserted, evicting LRU entries past the budget). Bumps the
    {!hits}/{!misses} counters. *)

val mem : t -> int -> bool
(** Membership without touching recency or counters. *)

val insert : t -> digest:int -> bytes:int -> unit
(** Record that the host now holds this content (refreshes recency if
    already present; evicts past the budget). An entry larger than the
    whole budget is not stored. *)

val bytes : t -> int
(** Current sum of entry sizes; invariant [bytes t <= max 0 (budget t)]. *)

val entries : t -> int
val hits : t -> int
val misses : t -> int

val clear : t -> unit
(** Forget everything (counters survive) — a crashed host loses its
    cache with the rest of RAM. *)

val digests : t -> int list
(** Entries in most- to least-recently-used order, for tests. *)
