type lh_id = int

type pid = { lh : lh_id; index : int }

let pid lh index = { lh; index }

let pid_equal a b = a.lh = b.lh && a.index = b.index

let pid_compare a b =
  let c = Int.compare a.lh b.lh in
  if c <> 0 then c else Int.compare a.index b.index

let pid_hash = Hashtbl.hash

let pp_lh ppf lh = Format.fprintf ppf "lh-%d" lh
let pp_pid ppf p = Format.fprintf ppf "<%d.%d>" p.lh p.index
let pid_to_string p = Format.asprintf "%a" pp_pid p

let kernel_server_index = 1
let program_manager_index = 2
let first_user_index = 16

let kernel_server_of lh = { lh; index = kernel_server_index }
let program_manager_of lh = { lh; index = program_manager_index }

let is_local_group p = p.index < first_user_index

(* Group ids live in a reserved logical-host-id range that the allocator
   never hands out. *)
let group_lh_base = 0x7FFF0000

let program_manager_group = { lh = group_lh_base; index = 1 }

(* Pod scheduling groups occupy the reserved range above the global
   program-manager group, one logical-host id per pod. *)
let pod_group pod = { lh = group_lh_base + 1 + pod; index = 1 }

(* Every kernel server with content caching enabled joins this group;
   the file server multicasts image-chunk announcements to it so a pod
   launching the same program warms every member's cache at once. Index
   2 keeps its multicast id clear of the pod groups (index 1). *)
let content_group = { lh = group_lh_base; index = 2 }

module Lh_allocator = struct
  type t = { mutable next : int }

  let create () = { next = 1 }

  let fresh t =
    let id = t.next in
    t.next <- t.next + 1;
    assert (id < group_lh_base);
    id
end
