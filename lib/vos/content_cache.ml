(* Bounded per-host content cache: an LRU over page/chunk digests.

   The cache stores no bytes (the simulator has none) — an entry is a
   digest plus the byte count it stands for, and the byte budget bounds
   the sum of entry sizes. O(1) probe/insert/evict via a hash table
   into an intrusive circular doubly-linked list (sentinel at the head;
   sentinel.next is MRU, sentinel.prev is LRU). *)

type node = {
  n_digest : int;
  n_bytes : int;
  mutable prev : node;
  mutable next : node;
}

type t = {
  budget : int;
  tbl : (int, node) Hashtbl.t;
  sentinel : node;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~budget =
  let rec s = { n_digest = min_int; n_bytes = 0; prev = s; next = s } in
  { budget; tbl = Hashtbl.create 64; sentinel = s; bytes = 0; hits = 0; misses = 0 }

let budget t = t.budget
let enabled t = t.budget > 0
let bytes t = t.bytes
let entries t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let drop t n =
  unlink n;
  Hashtbl.remove t.tbl n.n_digest;
  t.bytes <- t.bytes - n.n_bytes

let evict_to_budget t =
  while t.bytes > t.budget do
    drop t t.sentinel.prev
  done

let mem t digest = Hashtbl.mem t.tbl digest

let insert t ~digest ~bytes =
  if bytes > 0 && bytes <= t.budget then
    match Hashtbl.find_opt t.tbl digest with
    | Some n ->
        unlink n;
        push_front t n
    | None ->
        let n =
          { n_digest = digest; n_bytes = bytes; prev = t.sentinel; next = t.sentinel }
        in
        Hashtbl.replace t.tbl digest n;
        push_front t n;
        t.bytes <- t.bytes + bytes;
        evict_to_budget t

let probe t ~digest ~bytes =
  match Hashtbl.find_opt t.tbl digest with
  | Some n ->
      t.hits <- t.hits + 1;
      unlink n;
      push_front t n;
      true
  | None ->
      t.misses <- t.misses + 1;
      insert t ~digest ~bytes;
      false

let clear t =
  Hashtbl.reset t.tbl;
  t.sentinel.next <- t.sentinel;
  t.sentinel.prev <- t.sentinel;
  t.bytes <- 0

let digests t =
  let rec go n acc =
    if n == t.sentinel then List.rev acc else go n.next (n.n_digest :: acc)
  in
  go t.sentinel.next []
