type segment = Code | Initialized_data | Active_data

type t = {
  id : int;
  image : string; (* backing image name; "" when anonymous *)
  page_bytes : int;
  code_pages : int;
  data_pages : int;
  active_pages : int;
  dirty : Bytes.t; (* one byte per page: 0 clean, 1 dirty *)
  mutable dirty_count : int;
  versions : int array; (* per-page write count — keys content digests *)
  (* Copy-on-reference residency. [None] means every page is local (the
     common case: no bitmap allocated). After [evict_all], a page is
     absent until first touched; the touch queues it on [pending] so the
     owning process can pull it from the source host at its next
     scheduling boundary. *)
  mutable resident : Bytes.t option; (* 0 absent, 1 resident *)
  mutable baseline : int array option;
      (* versions as of [evict_all] — the content the source retains; a
         fault pulls the page at its baseline version, not at whatever
         version local touches have since pushed it to *)
  mutable absent_count : int;
  mutable pending : int list; (* faulted pages, most recent first *)
  mutable pending_count : int;
}

(* Domain-local, so replica simulations running on parallel domains
   neither race on the counter nor observe each other's allocations;
   [reset_ids] (called per cluster) makes every replica see the same id
   sequence whatever domain it lands on. *)
let next_id = Domain.DLS.new_key (fun () -> ref 0)

let reset_ids () = Domain.DLS.get next_id := 0

let pages_of ~page_bytes b = (b + page_bytes - 1) / page_bytes

let create ?(page_bytes = 1024) ?(image = "") ~code_bytes ~data_bytes
    ~active_bytes () =
  assert (page_bytes > 0);
  let next_id = Domain.DLS.get next_id in
  incr next_id;
  let code_pages = pages_of ~page_bytes code_bytes in
  let data_pages = pages_of ~page_bytes data_bytes in
  let active_pages = pages_of ~page_bytes active_bytes in
  let total = code_pages + data_pages + active_pages in
  {
    id = !next_id;
    image;
    page_bytes;
    code_pages;
    data_pages;
    active_pages;
    dirty = Bytes.make total '\000';
    dirty_count = 0;
    versions = Array.make total 0;
    resident = None;
    baseline = None;
    absent_count = 0;
    pending = [];
    pending_count = 0;
  }

let id t = t.id
let page_bytes t = t.page_bytes
let pages t = t.code_pages + t.data_pages + t.active_pages
let bytes t = pages t * t.page_bytes

let segment_pages t = function
  | Code -> t.code_pages
  | Initialized_data -> t.data_pages
  | Active_data -> t.active_pages

let segment_first t = function
  | Code -> 0
  | Initialized_data -> t.code_pages
  | Active_data -> t.code_pages + t.data_pages

let touch t p =
  if p < 0 || p >= pages t then
    invalid_arg (Printf.sprintf "Address_space.touch: page %d of %d" p (pages t));
  (match t.resident with
  | Some r when Bytes.get r p = '\000' ->
      Bytes.set r p '\001';
      t.absent_count <- t.absent_count - 1;
      t.pending <- p :: t.pending;
      t.pending_count <- t.pending_count + 1;
      if t.absent_count = 0 then t.resident <- None
  | _ -> ());
  t.versions.(p) <- t.versions.(p) + 1;
  if Bytes.get t.dirty p = '\000' then begin
    Bytes.set t.dirty p '\001';
    t.dirty_count <- t.dirty_count + 1
  end

let touch_random_in t rng seg ~first ~count =
  let seg_pages = segment_pages t seg in
  if count > 0 && first >= 0 && first + count <= seg_pages then
    touch t (segment_first t seg + first + Rng.int rng count)

let is_dirty t p = p >= 0 && p < pages t && Bytes.get t.dirty p = '\001'

let image t = t.image

(* Content digest of a page's current bytes. Never-written code and
   initialized-data pages of an image-backed space share digests with
   the file server's image chunks (same key, same chunking); untouched
   active pages are the zero page; anything ever written is keyed by
   this space's id and the page's write version, so no two distinct
   contents ever share a digest. *)
let digest_at t p v =
  if v > 0 then Pagehash.private_page ~space:t.id ~index:p ~version:v
  else if p < t.code_pages + t.data_pages then
    if t.image <> "" then Pagehash.image_chunk ~image:t.image ~index:p
    else Pagehash.private_page ~space:t.id ~index:p ~version:0
  else Pagehash.zero_page ~page_bytes:t.page_bytes

let check_page t p who =
  if p < 0 || p >= pages t then
    invalid_arg (Printf.sprintf "Address_space.%s: page %d of %d" who p (pages t))

let page_digest t p =
  check_page t p "page_digest";
  digest_at t p t.versions.(p)

let source_page_digest t p =
  check_page t p "source_page_digest";
  digest_at t p (match t.baseline with Some b -> b.(p) | None -> t.versions.(p))

let dirty_count t = t.dirty_count
let dirty_bytes t = t.dirty_count * t.page_bytes

let fold_dirty t ~init ~f =
  let n = pages t in
  let acc = ref init in
  for p = 0 to n - 1 do
    if Bytes.get t.dirty p = '\001' then acc := f !acc p
  done;
  !acc

let iter_dirty t f =
  let n = pages t in
  for p = 0 to n - 1 do
    if Bytes.get t.dirty p = '\001' then f p
  done

let snapshot_dirty t = List.rev (fold_dirty t ~init:[] ~f:(fun acc p -> p :: acc))

let clear_dirty t =
  let n = t.dirty_count in
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  t.dirty_count <- 0;
  n

let fill_all_dirty t =
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\001';
  t.dirty_count <- pages t

let evict_all t =
  let n = pages t in
  t.resident <- (if n = 0 then None else Some (Bytes.make n '\000'));
  t.baseline <- (if n = 0 then None else Some (Array.copy t.versions));
  t.absent_count <- n;
  t.pending <- [];
  t.pending_count <- 0

let make_all_resident t =
  t.resident <- None;
  t.baseline <- None;
  t.absent_count <- 0;
  t.pending <- [];
  t.pending_count <- 0

let absent_count t = t.absent_count
let pending_fault_count t = t.pending_count

let take_pending_faults t =
  let ps = List.rev t.pending in
  t.pending <- [];
  t.pending_count <- 0;
  ps
