type rebind_mode = Broadcast_query | Forwarding

type t = {
  local_op : Time.span;
  frozen_check : Time.span;
  group_lookup : Time.span;
  retransmit_interval : Time.span;
  retransmit_backoff : float;
  retransmit_cap : Time.span;
  retries_before_query : int;
  give_up_after : Time.span;
  reply_cache_ttl : Time.span;
  reservation_ttl : Time.span;
  cpu_quantum : Time.span;
  rebind : rebind_mode;
  bulk_pacing : Transfer.pacing;
  content_cache_bytes : int;
}

let default =
  {
    local_op = Time.of_us 500;
    frozen_check = Time.of_us 13;
    group_lookup = Time.of_us 100;
    retransmit_interval = Time.of_ms 100.;
    retransmit_backoff = 2.0;
    retransmit_cap = Time.of_ms 800.;
    retries_before_query = 3;
    give_up_after = Time.of_sec 5.;
    reply_cache_ttl = Time.of_sec 2.;
    reservation_ttl = Time.of_sec 15.;
    cpu_quantum = Time.of_ms 10.;
    rebind = Broadcast_query;
    bulk_pacing = Transfer.v_pacing;
    content_cache_bytes = 0;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>local_op=%a frozen_check=%a group_lookup=%a@ retransmit=%a \
     backoff=x%.1f cap=%a retries=%d give_up=%a reply_ttl=%a resv_ttl=%a \
     quantum=%a@]"
    Time.pp t.local_op Time.pp t.frozen_check Time.pp t.group_lookup Time.pp
    t.retransmit_interval t.retransmit_backoff Time.pp t.retransmit_cap
    t.retries_before_query Time.pp t.give_up_after Time.pp t.reply_cache_ttl
    Time.pp t.reservation_ttl Time.pp t.cpu_quantum
