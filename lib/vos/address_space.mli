(** Address spaces with per-page dirty bits.

    Migration copies address spaces, and the pre-copy algorithm's whole
    game is the set of pages dirtied while a copy is in flight, "detected
    using dirty bits" (Section 3.1.2). We model an address space as its
    page-granular dirty state plus segment sizes; page {e contents} never
    matter to any measured behaviour, so none are stored.

    Segments matter because pre-copy's first pass moves code and
    initialized data — "portions that are never modified" — while the
    program runs (Section 3.1.2's worked example). *)

type segment = Code | Initialized_data | Active_data

type t

val create :
  ?page_bytes:int ->
  ?image:string ->
  code_bytes:int ->
  data_bytes:int ->
  active_bytes:int ->
  unit ->
  t
(** Sizes are rounded up to whole pages. [page_bytes] defaults to 1024,
    the V SUN page size we simulate throughout. [image] names the
    program image backing the code/data segments (defaults to [""],
    anonymous) — it keys the content digests of never-written pages so
    they dedup against the file server's image chunks. *)

val id : t -> int
(** Unique per-run identifier. *)

val page_bytes : t -> int
val pages : t -> int
(** Total pages across all segments. *)

val bytes : t -> int
(** Total size in bytes. *)

val segment_pages : t -> segment -> int

val touch : t -> int -> unit
(** [touch t p] marks page [p] dirty (a store hit it).
    @raise Invalid_argument if [p] is out of range. *)

val touch_random_in :
  t -> Rng.t -> segment -> first:int -> count:int -> unit
(** Dirty a page chosen uniformly from a window of a segment — the
    primitive workload dirty-models are built on. [first]/[count] are
    page offsets within the segment. *)

val is_dirty : t -> int -> bool

val image : t -> string
(** The backing image name given to {!create} ([""] if none). *)

val page_digest : t -> int -> Pagehash.t
(** Content digest of a page's current bytes: image-chunk digest for a
    never-written code/data page of an image-backed space, the zero
    page for an untouched active page, and a (space, page, version)
    digest after any write. Deterministic — a pure function of the
    space's id, image, and write history.
    @raise Invalid_argument if the page is out of range. *)

val source_page_digest : t -> int -> Pagehash.t
(** Like {!page_digest}, but at the page's write version as of the last
    {!evict_all} — the content a copy-on-reference source still
    retains. A first-touch fault bumps the local version {e before} the
    page is pulled, so the content crossing the wire is the baseline
    one; identical to {!page_digest} when residency is not tracked.
    @raise Invalid_argument if the page is out of range. *)

val dirty_count : t -> int
(** Number of pages currently dirty. *)

val dirty_bytes : t -> int

val fold_dirty : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over the indices of dirty pages in ascending order, straight
    off the bitmap — what migration's copy loops use, so a pre-copy
    round allocates no intermediate page list. *)

val iter_dirty : t -> (int -> unit) -> unit
(** Iterate the dirty page indices in ascending order. *)

val snapshot_dirty : t -> int list
(** Indices of dirty pages, ascending ([fold_dirty] materialized; prefer
    the fold/iter forms on hot paths). *)

val reset_ids : unit -> unit
(** Reset this domain's address-space id counter. Ids are allocated from
    a domain-local counter; {!Cluster.create} resets it so every replica
    sees the same id sequence regardless of the domain it runs on. *)

val clear_dirty : t -> int
(** Clear all dirty bits, returning how many were set — one pre-copy
    round is "copy [clear_dirty] worth of pages, while new dirtying
    accumulates". *)

val fill_all_dirty : t -> unit
(** Mark every page dirty — the state of a freshly loaded program before
    its first full copy. *)

(** {1 Copy-on-reference residency}

    A copy-on-reference migration installs the space with every page
    absent; the first touch of an absent page marks it resident and
    queues a fault, and the owning process drains the queue by pulling
    the pages from the source host. When no pages were ever evicted the
    machinery costs nothing (no bitmap is allocated). *)

val evict_all : t -> unit
(** Mark every page absent and forget queued faults — the destination's
    view of a freshly copy-on-reference-installed space. *)

val make_all_resident : t -> unit
(** Drop residency tracking entirely (all pages local, no faults
    pending) — applied when a space is extracted for migration, since
    whatever copy discipline moves it next accounts for every page. *)

val absent_count : t -> int
(** Pages still on the source host (0 when residency is not tracked). *)

val pending_fault_count : t -> int
(** First-touch faults queued since the last {!take_pending_faults}. *)

val take_pending_faults : t -> int list
(** Return the queued faulted page indices in touch order and clear the
    queue. The caller owes the source host one page transfer each. *)
