type priority = Foreground | Background

(* One event per completed slice, emitted at the same point as the
   [on_slice] hook — before the CPU is released — so a freeze draining
   the CPU observes every slice event strictly before it reports the
   host frozen (the freeze-window monitor depends on this ordering).
   Owner 0 (untagged system work) is not traced. *)
type Tracer.event += Slice of { owner : int; foreground : bool; span : Time.span }

let () =
  Tracer.register_view (function
    | Slice { owner; foreground; span } ->
        Some
          {
            Tracer.v_cat = "cpu";
            v_type = "slice";
            v_fields =
              [
                ("owner", Tracer.Int owner);
                ("foreground", Bool foreground);
                ("span", Span span);
              ];
          }
    | _ -> None)

type entry = { wake : unit -> unit; mutable abandoned : bool }

type t = {
  eng : Engine.t;
  quantum : Time.span;
  trc : Tracer.t option;
  fg : entry Queue.t;
  bg : entry Queue.t;
  mutable holder : int option; (* owner tag of the running request *)
  mutable drain_waiters : (int * (unit -> unit)) list;
  mutable slow : float; (* wall time per unit of work; 1.0 = nominal *)
  busy : Stats.Gauge.t;
  fg_busy : Stats.Gauge.t;
}

let create ?tracer eng ~quantum =
  {
    eng;
    quantum;
    trc = tracer;
    fg = Queue.create ();
    bg = Queue.create ();
    holder = None;
    drain_waiters = [];
    slow = 1.0;
    busy = Stats.Gauge.create eng ~initial:0.;
    fg_busy = Stats.Gauge.create eng ~initial:0.;
  }

let set_slowdown t f =
  if f < 1.0 then invalid_arg "Cpu.set_slowdown: factor must be >= 1";
  t.slow <- f

let slowdown t = t.slow

let queue_length t =
  Queue.length t.fg + Queue.length t.bg + if Option.is_some t.holder then 1 else 0

(* Wake the next waiter: all foreground work goes before any background
   work; within a class, FIFO (round-robin, since a preempted request
   re-enqueues at the tail). *)
let grant_next t =
  let rec pop q =
    match Queue.take_opt q with
    | None -> None
    | Some e when e.abandoned -> pop q
    | Some e -> Some e
  in
  match pop t.fg with
  | Some e -> e.wake ()
  | None -> ( match pop t.bg with Some e -> e.wake () | None -> ())

let queue_of t = function Foreground -> t.fg | Background -> t.bg

let must_wait t priority =
  Option.is_some t.holder
  || (priority = Background && not (Queue.is_empty t.fg))

let wait_once t priority =
  let entry = ref None in
  Proc.suspend (fun wake ->
      let e = { wake; abandoned = false } in
      entry := Some e;
      Queue.push e (queue_of t priority);
      fun () -> e.abandoned <- true);
  (* Mark consumed so a stale grant can't target this entry again. *)
  match !entry with Some e -> e.abandoned <- true | None -> ()

let release t =
  t.holder <- None;
  Stats.Gauge.set t.busy 0.;
  Stats.Gauge.set t.fg_busy 0.;
  let drains = t.drain_waiters in
  t.drain_waiters <- [];
  List.iter (fun (_, wake) -> wake ()) drains;
  grant_next t

let drain_requested t owner =
  List.exists (fun (o, _) -> o = owner) t.drain_waiters

let has_live_waiter q = Queue.fold (fun acc e -> acc || not e.abandoned) false q

let compute_sliced ?(owner = 0) ?(gate = fun () -> ())
    ?(must_release = fun () -> false) t ~priority span ~on_slice =
  (* Alternate gate and CPU wait until both pass at once: the gate blocks
     while the caller's logical host is frozen, and a freeze can begin
     while we are queued for the CPU. *)
  let rec acquire () =
    gate ();
    if must_wait t priority then begin
      wait_once t priority;
      acquire ()
    end
  in
  let remaining = ref span in
  let holding = ref false in
  let stop_holding () =
    if !holding then begin
      holding := false;
      release t
    end
  in
  Fun.protect ~finally:stop_holding (fun () ->
      while Time.(!remaining > Time.zero) do
        if not !holding then begin
          acquire ();
          t.holder <- Some owner;
          holding := true;
          Stats.Gauge.set t.busy 1.;
          if priority = Foreground then Stats.Gauge.set t.fg_busy 1.
        end;
        let slice = Time.min t.quantum !remaining in
        (* A straggling host stretches the wall time of each slice; the
           work accomplished (and pages dirtied) per slice is unchanged. *)
        Proc.sleep t.eng
          (if t.slow = 1.0 then slice else Time.scale slice t.slow);
        remaining := Time.sub !remaining slice;
        (* Account the slice's effects (page dirtying) before any
           release, so a freeze draining the CPU cannot snapshot between
           the two. *)
        (match t.trc with
        | Some trc when Tracer.enabled trc && owner <> 0 ->
            Tracer.emit trc
              (Slice { owner; foreground = priority = Foreground; span = slice })
        | _ -> ());
        on_slice slice;
        (* Yield only to a waiter of equal or higher priority (strict
           foreground-over-background, round-robin within a class), to a
           freeze, or when done. A lone request keeps the CPU across its
           quanta. *)
        let waiter_deserves_cpu =
          has_live_waiter t.fg
          || (priority = Background && has_live_waiter t.bg)
        in
        if
          Time.(!remaining <= Time.zero)
          || waiter_deserves_cpu || must_release ()
          || drain_requested t owner
        then stop_holding ()
      done)

let compute ?owner ?gate ?must_release t ~priority span =
  compute_sliced ?owner ?gate ?must_release t ~priority span
    ~on_slice:(fun _ -> ())

let wait_clear t ~owner =
  while t.holder = Some owner do
    Proc.suspend (fun wake ->
        t.drain_waiters <- (owner, wake) :: t.drain_waiters;
        fun () ->
          t.drain_waiters <-
            List.filter (fun (_, w) -> w != wake) t.drain_waiters)
  done

let busy_fraction t = Stats.Gauge.time_average t.busy
let foreground_fraction t = Stats.Gauge.time_average t.fg_busy
