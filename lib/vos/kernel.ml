type send_error = No_response

let pp_send_error ppf No_response = Format.pp_print_string ppf "no-response"

(* Outstanding (kernel-driven) send state. Retransmission is kernel-level
   so it continues while the sending process' logical host is frozen
   (Section 3.1.3), and moves with the logical host when it migrates. *)
type osend = {
  os_txn : Packet.txn;
  os_src : Ids.pid;
  os_dst : Ids.pid;
  os_msg : Message.t;
  os_ivar : (Message.t, send_error) result Ivar.t;
  mutable os_done : bool;
  mutable os_local_delivered : bool;
  mutable os_attempts_since_heard : int;
  mutable os_last_heard : Time.t;
  mutable os_timer : Engine.handle option;
}

type lh_state = {
  st_lh : Logical_host.t;
  st_osends : osend list;
  st_page_source : Ids.pid option;
      (* Copy-on-reference: the source host's kernel server, still holding
         every page. The installing kernel evicts the spaces and faults
         pages back from this pid on first touch. *)
}

type collector = {
  c_txn : Packet.txn;
  c_mailbox : (Ids.pid * Message.t) Mailbox.t;
}

(* A migration destination's promise of memory for an incoming logical
   host. [r_expires] is pushed forward by every request addressed through
   the reserved id; if the source crashes mid-pre-copy the clock runs out
   and the memory is released (nothing in the paper's protocol tells the
   destination the source died — the TTL is the destination's own
   recovery). *)
type reservation = { r_bytes : int; mutable r_expires : Time.t }

type t = {
  eng : Engine.t;
  krng : Rng.t;
  trc : Tracer.t;
  prm : Os_params.t;
  net : Packet.t Ethernet.t;
  mutable stn : Packet.t Ethernet.station option;
  self : Addr.t;
  name : string;
  alloc : Ids.Lh_allocator.t;
  mem_bytes : int;
  kcpu : Cpu.t;
  lh_table : (Ids.lh_id, Logical_host.t) Hashtbl.t;
  the_host_lh : Logical_host.t;
  sys_procs : (int, Vproc.t) Hashtbl.t;
  bindings : (Ids.lh_id, Addr.t) Hashtbl.t;
  outstanding : (Packet.txn, osend) Hashtbl.t;
  group_outstanding : (Packet.txn, (Ids.pid * Message.t) Mailbox.t) Hashtbl.t;
  groups : (Ids.pid, Vproc.t list) Hashtbl.t;
  reservations : (Ids.lh_id, reservation) Hashtbl.t;
  forwards : (Ids.lh_id, Addr.t) Hashtbl.t;
      (* Demos/MP-ablation mode only: where a departed logical host went *)
  page_sources : (Ids.lh_id, unit) Hashtbl.t;
      (* Copy-on-reference source side: departed logical hosts whose
         memory image stayed behind; this kernel answers their page
         faults — the residual dependency the paper warns about. *)
  fault_sources : (Ids.lh_id, Ids.pid) Hashtbl.t;
      (* Copy-on-reference destination side: resident logical host ->
         the old host's kernel server that still holds its unreferenced
         pages. *)
  stats : (string, int ref) Hashtbl.t;
  cache : Content_cache.t;
      (* Per-host content cache for content-addressed transfer
         (DESIGN.md §4k). Budget 0 (the default) disables the whole
         machinery: no digests, no manifests, paper-exact byte counts. *)
}

type Message.body +=
  | Ks_ping
  | Ks_pong
  | Ks_query_load
  | Ks_load of { cpu_busy : float; memory_free : int; guests : int }
  | Ks_install of { state : lh_state; deadline : Time.t option }
  | Ks_installed of { resumed_at : Time.t }
  | Ks_destroy_lh of Ids.lh_id
  | Ks_fault_pages of { lh : Ids.lh_id; pages : int; bytes : int }
  | Ks_xfer_manifest of {
      lh : Ids.lh_id;  (* the logical host whose pages are moving *)
      label : string;  (* which transfer: "full" / "round" / "residue" *)
      digests : (int * int) array;  (* (content digest, chunk bytes) *)
    }
      (* Manifest-first bulk copy: before shipping chunks, the source
         names them; the destination's kernel server probes its content
         cache and replies [Ks_xfer_need] so only missing bytes cross
         the wire. *)
  | Ks_xfer_need of { missing : int; bytes : int }
  | Ks_content_announce of {
      image : string;
      first : int;
      count : int;
      chunk_bytes : int;
    }
      (* Multicast to {!Ids.content_group} (no reply): the named image's
         chunks [first, first+count) just crossed the shared wire, so
         every listening cache may count them as held. *)
  | Ks_ok
  | Ks_refused of string

(* Typed trace events. [host] is always the workstation emitting the
   event, so monitors can attribute IPC activity to a specific copy of a
   logical host (the no-residual-dependency check keys on exactly that). *)
type Tracer.event +=
  | Ipc_send of { host : string; txn : Packet.txn; src : Ids.pid; dst : Ids.pid }
  | Ipc_recv of { host : string; txn : Packet.txn; src : Ids.pid; dst : Ids.pid }
  | Ipc_reply of { host : string; txn : Packet.txn; src : Ids.pid; dst : Ids.pid }
  | Ipc_forward of {
      host : string;
      txn : Packet.txn;
      lh : Ids.lh_id;
      to_station : Addr.t;
    }
  | Binding_set of { host : string; lh : Ids.lh_id; station : Addr.t }
  | Binding_invalidated of { host : string; lh : Ids.lh_id }
  | Host_crashed of { host : string }
  | Host_rebooted of { host : string }
  | Page_fault_service of {
      host : string;  (* the OLD host, serving pages it kept *)
      lh : Ids.lh_id;  (* the departed logical host being served *)
      pages : int;
      bytes : int;
    }
  (* Content-addressed transfer. A manifest scan always emits the
     triple [Xfer_manifest; Xfer_chunk_hit; Xfer_chunk_miss] back to
     back (possibly with zero counts) at the probing host; the dedup
     monitor pairs them up and checks digest conservation. [digest_sum]
     fields are sums of 48-bit digests, safely below [max_int]. *)
  | Xfer_manifest of {
      host : string;  (* the host probing its cache *)
      lh : Ids.lh_id;
      label : string;
      chunks : int;
      bytes : int;  (* content bytes the manifest covers *)
      wire_bytes : int;  (* what the manifest itself cost on the wire *)
      digest_sum : int;
    }
  | Xfer_chunk_hit of {
      host : string;
      lh : Ids.lh_id;
      label : string;
      chunks : int;
      bytes : int;  (* bytes that need not cross the wire *)
      digest_sum : int;
    }
  | Xfer_chunk_miss of {
      host : string;
      lh : Ids.lh_id;
      label : string;
      chunks : int;
      bytes : int;  (* bytes the source must still ship *)
      digest_sum : int;
    }
  | Img_cache_hit of { host : string; image : string; chunks : int; bytes : int }
  | Img_cache_miss of { host : string; image : string; chunks : int; bytes : int }

let () =
  let pid p = Tracer.Str (Ids.pid_to_string p) in
  let ipc type_ host txn src dst =
    Some
      {
        Tracer.v_cat = "ipc";
        v_type = type_;
        v_fields =
          [
            ("host", Tracer.Str host);
            ("txn", Int txn);
            ("src", pid src);
            ("dst", pid dst);
          ];
      }
  in
  Tracer.register_view (function
    | Ipc_send { host; txn; src; dst } -> ipc "send" host txn src dst
    | Ipc_recv { host; txn; src; dst } -> ipc "recv" host txn src dst
    | Ipc_reply { host; txn; src; dst } -> ipc "reply" host txn src dst
    | Ipc_forward { host; txn; lh; to_station } ->
        Some
          {
            Tracer.v_cat = "ipc";
            v_type = "forward";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("txn", Int txn);
                ("lh", Int lh);
                ("to", Str (Addr.to_string to_station));
              ];
          }
    | Binding_set { host; lh; station } ->
        Some
          {
            Tracer.v_cat = "bind";
            v_type = "set";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("lh", Int lh);
                ("station", Str (Addr.to_string station));
              ];
          }
    | Binding_invalidated { host; lh } ->
        Some
          {
            Tracer.v_cat = "bind";
            v_type = "invalidated";
            v_fields = [ ("host", Tracer.Str host); ("lh", Int lh) ];
          }
    | Host_crashed { host } ->
        Some
          {
            Tracer.v_cat = "host";
            v_type = "crashed";
            v_fields = [ ("host", Tracer.Str host) ];
          }
    | Host_rebooted { host } ->
        Some
          {
            Tracer.v_cat = "host";
            v_type = "rebooted";
            v_fields = [ ("host", Tracer.Str host) ];
          }
    | Page_fault_service { host; lh; pages; bytes } ->
        Some
          {
            Tracer.v_cat = "migrate";
            v_type = "page-fault";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("lh", Int lh);
                ("pages", Int pages);
                ("bytes", Int bytes);
              ];
          }
    | Xfer_manifest { host; lh; label; chunks; bytes; wire_bytes; digest_sum } ->
        Some
          {
            Tracer.v_cat = "xfer";
            v_type = "manifest";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("lh", Int lh);
                ("label", Str label);
                ("chunks", Int chunks);
                ("bytes", Int bytes);
                ("wire", Int wire_bytes);
                ("sum", Int digest_sum);
              ];
          }
    | Xfer_chunk_hit { host; lh; label; chunks; bytes; digest_sum } ->
        Some
          {
            Tracer.v_cat = "xfer";
            v_type = "hit";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("lh", Int lh);
                ("label", Str label);
                ("chunks", Int chunks);
                ("bytes", Int bytes);
                ("sum", Int digest_sum);
              ];
          }
    | Xfer_chunk_miss { host; lh; label; chunks; bytes; digest_sum } ->
        Some
          {
            Tracer.v_cat = "xfer";
            v_type = "miss";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("lh", Int lh);
                ("label", Str label);
                ("chunks", Int chunks);
                ("bytes", Int bytes);
                ("sum", Int digest_sum);
              ];
          }
    | Img_cache_hit { host; image; chunks; bytes } ->
        Some
          {
            Tracer.v_cat = "img";
            v_type = "hit";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("image", Str image);
                ("chunks", Int chunks);
                ("bytes", Int bytes);
              ];
          }
    | Img_cache_miss { host; image; chunks; bytes } ->
        Some
          {
            Tracer.v_cat = "img";
            v_type = "miss";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("image", Str image);
                ("chunks", Int chunks);
                ("bytes", Int bytes);
              ];
          }
    | _ -> None)

(* Domain-local transaction counter — see [Proc.reset_ids]: replica
   simulations on parallel domains must not share it, and resetting it
   per cluster keeps txn values (Hashtbl keys) identical across domain
   placements. *)
let txn_counter = Domain.DLS.new_key (fun () -> ref 0)

let reset_txn_ids () = Domain.DLS.get txn_counter := 0

let fresh_txn () =
  let txn_counter = Domain.DLS.get txn_counter in
  incr txn_counter;
  !txn_counter

(* {2 Small helpers} *)

let engine t = t.eng
let params t = t.prm
let tracer t = t.trc
let host_name t = t.name
let station t = t.self
let cpu t = t.kcpu
let rng t = t.krng
let allocator t = t.alloc
let host_lh t = t.the_host_lh
let memory_bytes t = t.mem_bytes

(* Stat counters fire on every IPC; [Hashtbl.find] avoids the [Some]
   box that [find_opt] allocates per hit. *)
let bump t name =
  match Hashtbl.find t.stats name with
  | r -> incr r
  | exception Not_found -> Hashtbl.replace t.stats name (ref 1)

let bump_by t name n =
  if n <> 0 then
    match Hashtbl.find t.stats name with
    | r -> r := !r + n
    | exception Not_found -> Hashtbl.replace t.stats name (ref n)

let content_cache t = t.cache
let content_caching t = Content_cache.enabled t.cache

let stat t name =
  match Hashtbl.find_opt t.stats name with Some r -> !r | None -> 0

let trace t fmt = Tracer.recordf t.trc ~category:"kernel" ("%s: " ^^ fmt) t.name

(* Typed-event helper: the thunk defers allocation to the enabled case,
   keeping the IPC fast path allocation-free under disabled tracing. *)
let ev t mk = if Tracer.enabled t.trc then Tracer.emit t.trc (mk ())

let memory_free t =
  let resident =
    Hashtbl.fold (fun _ lh acc -> acc + Logical_host.total_bytes lh) t.lh_table 0
  in
  let reserved =
    Hashtbl.fold (fun _ r acc -> acc + r.r_bytes) t.reservations 0
  in
  t.mem_bytes - resident - reserved

let reservation_count t = Hashtbl.length t.reservations
let forward_count t = Hashtbl.length t.forwards

let logical_hosts t =
  Hashtbl.fold (fun _ lh acc -> lh :: acc) t.lh_table []
  |> List.sort (fun a b -> Int.compare (Logical_host.id a) (Logical_host.id b))

let find_lh t id = Hashtbl.find_opt t.lh_table id

let guest_count t =
  List.length
    (List.filter
       (fun lh -> Logical_host.priority lh = Cpu.Background)
       (logical_hosts t))

let lookup_binding t lh = Hashtbl.find_opt t.bindings lh

(* Trace only actual changes: cache refreshes from traffic re-set the
   same station on nearly every packet. *)
let set_binding t lh addr =
  (match Hashtbl.find_opt t.bindings lh with
  | Some prev when Addr.equal prev addr -> ()
  | _ -> ev t (fun () -> Binding_set { host = t.name; lh; station = addr }));
  Hashtbl.replace t.bindings lh addr

let invalidate_binding t lh =
  if Hashtbl.mem t.bindings lh then begin
    Hashtbl.remove t.bindings lh;
    ev t (fun () -> Binding_invalidated { host = t.name; lh })
  end
let set_forward t lh addr = Hashtbl.replace t.forwards lh addr

(* Cache refresh from traffic: every packet tells us where its sender's
   logical host lives (Section 3.1.4: "the cache is also updated based on
   incoming requests"). Resident hosts are authoritative, never cached. *)
let update_binding_from t (pid : Ids.pid) src_station =
  if pid.Ids.lh < 0x7FFF0000 && not (Hashtbl.mem t.lh_table pid.Ids.lh) then
    set_binding t pid.Ids.lh src_station

let transmit t ~dst pkt =
  match t.stn with
  | None -> () (* shut down: the wire is gone *)
  | Some _ ->
      Ethernet.send t.net
        (Frame.unicast ~src:t.self ~dst ~bytes:(Packet.bytes pkt) pkt)

let transmit_broadcast t pkt =
  match t.stn with
  | None -> ()
  | Some _ ->
      Ethernet.send t.net
        (Frame.broadcast ~src:t.self ~bytes:(Packet.bytes pkt) pkt)

let multicast_group_id (g : Ids.pid) = (g.Ids.lh * 31) + g.Ids.index

let transmit_multicast t ~group pkt =
  match t.stn with
  | None -> ()
  | Some _ ->
      Ethernet.send t.net
        (Frame.multicast ~src:t.self
           ~group:(multicast_group_id group)
           ~bytes:(Packet.bytes pkt) pkt)

(* {2 Local delivery} *)

let is_group_pid (p : Ids.pid) = p.Ids.lh >= 0x7FFF0000

let lh_hosting_or_reserved t id =
  Hashtbl.mem t.lh_table id || Hashtbl.mem t.reservations id

(* The logical host whose transaction table tracks a request addressed to
   [dst]. Requests to reserved-but-uninstalled hosts (migration's state
   install) are tracked by the host logical host; so are leftovers of
   local-group-addressed requests whose logical host has departed or died
   (e.g. a completion wait whose reply must be re-sendable after the
   program's host was destroyed). *)
let inbound_home t (dst : Ids.pid) =
  match Hashtbl.find_opt t.lh_table dst.Ids.lh with
  | Some lh -> Some lh
  | None ->
      if
        Hashtbl.mem t.reservations dst.Ids.lh
        || dst.Ids.index < Ids.first_user_index
      then Some t.the_host_lh
      else None

let resolve_vproc t (dst : Ids.pid) =
  if dst.Ids.index < Ids.first_user_index then
    if lh_hosting_or_reserved t dst.Ids.lh then
      Hashtbl.find_opt t.sys_procs dst.Ids.index
    else None
  else
    match Hashtbl.find_opt t.lh_table dst.Ids.lh with
    | None -> None
    | Some lh -> Logical_host.find_process lh dst.Ids.index

type delivery_outcome =
  | Delivered
  | Pending (* queued or in service: duplicate *)
  | Already_replied of Message.t
  | No_target

(* Any request addressed through a reserved logical-host id proves its
   source is still alive and pushes the reservation's expiry forward —
   each pre-copy round's acknowledgement ping does exactly this, so a
   healthy migration never times out. *)
let touch_reservation t lh_id =
  match Hashtbl.find_opt t.reservations lh_id with
  | Some r when Time.(t.prm.Os_params.reservation_ttl > Time.zero) ->
      r.r_expires <-
        Time.add (Engine.now t.eng) t.prm.Os_params.reservation_ttl
  | Some _ | None -> ()

let deliver_request t ~src ~dst ~txn ~msg ~origin =
  touch_reservation t dst.Ids.lh;
  match inbound_home t dst with
  | None -> No_target
  | Some home -> (
      let inbound = Logical_host.inbound home in
      match Hashtbl.find_opt inbound txn with
      | Some Logical_host.Queued | Some Logical_host.In_service -> Pending
      | Some (Logical_host.Replied (m, _)) ->
          (* Refresh retention: duplicates arriving reset the replier's
             timeout for keeping the reply (Section 3.1.3). *)
          Hashtbl.replace inbound txn
            (Logical_host.Replied
               (m, Time.add (Engine.now t.eng) t.prm.Os_params.reply_cache_ttl));
          Already_replied m
      | None -> (
          match resolve_vproc t dst with
          | None -> No_target
          | Some vp ->
              Hashtbl.replace inbound txn Logical_host.Queued;
              Mailbox.send (Vproc.inbox vp)
                { Delivery.src; dst; txn; msg; origin };
              ev t (fun () -> Ipc_recv { host = t.name; txn; src; dst });
              Delivered))

(* {2 The send machine} *)

let complete t os result =
  if not os.os_done then begin
    os.os_done <- true;
    Option.iter Engine.cancel os.os_timer;
    os.os_timer <- None;
    Hashtbl.remove t.outstanding os.os_txn;
    Ivar.fill os.os_ivar result
  end

let rec osend_attempt t os =
  if not os.os_done then begin
    let dst = os.os_dst in
    let locally_resolvable =
      (dst.Ids.index < Ids.first_user_index && lh_hosting_or_reserved t dst.Ids.lh)
      || Hashtbl.mem t.lh_table dst.Ids.lh
    in
    if locally_resolvable then begin
      if not os.os_local_delivered then
        match
          deliver_request t ~src:os.os_src ~dst ~txn:os.os_txn ~msg:os.os_msg
            ~origin:Delivery.Local
        with
        | Delivered | Pending -> os.os_local_delivered <- true
        | Already_replied m -> complete t os (Ok m)
        | No_target ->
            (* Resident logical host but no such process: fail fast. *)
            complete t os (Error No_response)
      (* Local deliveries are reliable; completion comes via [reply]. *)
    end
    else begin
      os.os_local_delivered <- false;
      let now = Engine.now t.eng in
      if Time.(Time.sub now os.os_last_heard > t.prm.Os_params.give_up_after)
      then complete t os (Error No_response)
      else begin
        (match lookup_binding t dst.Ids.lh with
        | Some station ->
            if os.os_attempts_since_heard > 0 then bump t "retransmissions";
            transmit t ~dst:station
              (Packet.Request
                 { txn = os.os_txn; src = os.os_src; dst; msg = os.os_msg })
        | None ->
            (* A sender with no binding at all queries in either mode
               (initial contact needs a locator even in Demos/MP); the
               ablation's difference is below — stale bindings are never
               invalidated, so a silent correspondent never triggers a
               re-query and only the forwarding address can save it. *)
            bump t "where_is";
            transmit_broadcast t (Packet.Where_is { lh = dst.Ids.lh }));
        os.os_attempts_since_heard <- os.os_attempts_since_heard + 1;
        if
          os.os_attempts_since_heard > t.prm.Os_params.retries_before_query
          && t.prm.Os_params.rebind = Os_params.Broadcast_query
        then invalidate_binding t dst.Ids.lh;
        (* Exponential backoff: each consecutive unanswered attempt
           widens the interval (capped); any reply or reply-pending
           resets [os_attempts_since_heard] and thus the interval. *)
        let interval =
          let p = t.prm in
          let base = p.Os_params.retransmit_interval in
          if p.Os_params.retransmit_backoff <= 1.0 then base
          else
            let n = max 0 (os.os_attempts_since_heard - 1) in
            Time.min p.Os_params.retransmit_cap
              (Time.scale base (p.Os_params.retransmit_backoff ** float_of_int n))
        in
        os.os_timer <-
          Some (Engine.schedule_after t.eng interval (fun () -> osend_attempt t os))
      end
    end
  end

let make_osend t ~src ~dst msg =
  {
    os_txn = fresh_txn ();
    os_src = src;
    os_dst = dst;
    os_msg = msg;
    os_ivar = Ivar.create ();
    os_done = false;
    os_local_delivered = false;
    os_attempts_since_heard = 0;
    os_last_heard = Engine.now t.eng;
    os_timer = None;
  }

(* Kernel-operation cost: base op, the frozen-state test (13 us), and the
   local-group indirection (100 us) when the target is a kernel server or
   program manager addressed through its logical host (Section 4.1). *)
let charge t ~local_group =
  let p = t.prm in
  let span = Time.add p.Os_params.local_op p.Os_params.frozen_check in
  let span =
    if local_group then Time.add span p.Os_params.group_lookup else span
  in
  Proc.sleep t.eng span

let send ?deadline t ~src ~dst msg =
  charge t ~local_group:(Ids.is_local_group dst);
  bump t "sends";
  let os = make_osend t ~src ~dst msg in
  ev t (fun () -> Ipc_send { host = t.name; txn = os.os_txn; src; dst });
  Hashtbl.replace t.outstanding os.os_txn os;
  osend_attempt t os;
  (* A caller-imposed deadline races the normal completion paths;
     [complete] is idempotent, so whichever fires first wins. *)
  (match deadline with
  | Some at ->
      if Time.(at <= Engine.now t.eng) then complete t os (Error No_response)
      else
        Engine.post t.eng ~at (fun () -> complete t os (Error No_response))
  | None -> ());
  let r = Ivar.read os.os_ivar in
  (match r with Error _ -> bump t "sends_failed" | Ok _ -> ());
  r

(* {2 Group sends} *)

let send_group t ~src ~group msg =
  charge t ~local_group:false;
  bump t "group_sends";
  let txn = fresh_txn () in
  let mailbox = Mailbox.create () in
  Hashtbl.replace t.group_outstanding txn mailbox;
  (* Local members are delivered directly (the network never loops a
     multicast back to its sender). *)
  (match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some members ->
      List.iter
        (fun vp ->
          Mailbox.send (Vproc.inbox vp)
            { Delivery.src; dst = group; txn; msg; origin = Delivery.Local })
        members);
  transmit_multicast t ~group (Packet.Group_request { txn; src; group; msg });
  { c_txn = txn; c_mailbox = mailbox }

let close_collector t c = Hashtbl.remove t.group_outstanding c.c_txn

let collect_first t c ~timeout =
  let r = Mailbox.recv_timeout t.eng c.c_mailbox timeout in
  close_collector t c;
  r

let collect_first_where t c ~accept ~timeout ~grace =
  let now () = Engine.now t.eng in
  (* Wait for a reply the predicate accepts, keeping the first rejected
     one as a fallback. After a rejected reply arrives the remaining wait
     shrinks to [grace]: a deprioritized bidder should not make the caller
     eat the full timeout hoping for a better one. *)
  let rec loop fallback deadline =
    let left = Time.sub deadline (now ()) in
    if Time.(left <= Time.zero) then fallback
    else
      match Mailbox.recv_timeout t.eng c.c_mailbox left with
      | None -> fallback
      | Some r ->
          if accept r then Some r
          else
            let fallback =
              match fallback with None -> Some r | Some _ -> fallback
            in
            loop fallback (Time.min deadline (Time.add (now ()) grace))
  in
  let r = loop None (Time.add (now ()) timeout) in
  close_collector t c;
  r

let collect_within t c ~window =
  let deadline = Time.add (Engine.now t.eng) window in
  let rec loop acc =
    let left = Time.sub deadline (Engine.now t.eng) in
    if Time.(left <= Time.zero) then List.rev acc
    else
      match Mailbox.recv_timeout t.eng c.c_mailbox left with
      | None -> List.rev acc
      | Some r -> loop (r :: acc)
  in
  let rs = loop [] in
  close_collector t c;
  rs

(* {2 Receive / reply} *)

let receive t vp =
  let d = Mailbox.recv (Vproc.inbox vp) in
  (if not (is_group_pid d.Delivery.dst) then
     match inbound_home t d.Delivery.dst with
     | Some home ->
         Hashtbl.replace (Logical_host.inbound home) d.Delivery.txn
           Logical_host.In_service
     | None -> ());
  d

let reply ?from t (d : Delivery.t) msg =
  charge t ~local_group:false;
  let reply_src = Option.value from ~default:d.Delivery.dst in
  ev t (fun () ->
      Ipc_reply
        {
          host = t.name;
          txn = d.Delivery.txn;
          src = reply_src;
          dst = d.Delivery.src;
        });
  let route_remote () =
    let station =
      match lookup_binding t d.Delivery.src.Ids.lh with
      | Some s -> Some s
      | None -> (
          match d.Delivery.origin with
          | Delivery.Remote s -> Some s
          | Delivery.Local -> None)
    in
    match station with
    | Some s ->
        transmit t ~dst:s
          (Packet.Reply
             { txn = d.Delivery.txn; src = reply_src; dst = d.Delivery.src; msg })
    | None -> () (* unroutable; a duplicate request will re-elicit it *)
  in
  if is_group_pid d.Delivery.dst then
    (* Group replies are best-effort and not retained. *)
    match Hashtbl.find_opt t.group_outstanding d.Delivery.txn with
    | Some mailbox when Hashtbl.mem t.lh_table d.Delivery.src.Ids.lh ->
        Mailbox.send mailbox (reply_src, msg)
    | Some _ | None -> route_remote ()
  else begin
    (match inbound_home t d.Delivery.dst with
    | Some home ->
        Hashtbl.replace (Logical_host.inbound home) d.Delivery.txn
          (Logical_host.Replied
             (msg, Time.add (Engine.now t.eng) t.prm.Os_params.reply_cache_ttl))
    | None -> ());
    match Hashtbl.find_opt t.outstanding d.Delivery.txn with
    | Some os when Ids.pid_equal os.os_src d.Delivery.src ->
        (* Sender is local: complete the send directly. If its logical
           host is frozen the filled ivar sits unread until unfreeze. *)
        complete t os (Ok msg)
    | Some _ | None -> route_remote ()
  end

(* {2 Bulk transfers} *)

let bulk_transfer ?to_station t ~bytes =
  if bytes > 0 then
    Transfer.bulk_copy ~pacing:t.prm.Os_params.bulk_pacing
      ?dst:to_station t.net ~bytes

(* {2 Packet reception} *)

let target_frozen t (dst : Ids.pid) =
  match Hashtbl.find_opt t.lh_table dst.Ids.lh with
  | Some lh -> Logical_host.frozen lh
  | None -> false

let handle_request t ~(frame_src : Addr.t) ~txn ~src ~dst ~msg =
  match deliver_request t ~src ~dst ~txn ~msg ~origin:(Delivery.Remote frame_src) with
  | Delivered ->
      if target_frozen t dst then begin
        bump t "reply_pending";
        transmit t ~dst:frame_src (Packet.Reply_pending { txn; dst })
      end
  | Pending ->
      bump t "duplicates";
      bump t "reply_pending";
      transmit t ~dst:frame_src (Packet.Reply_pending { txn; dst })
  | Already_replied m ->
      bump t "duplicates";
      transmit t ~dst:frame_src (Packet.Reply { txn; src = dst; dst = src; msg = m })
  | No_target -> (
      (* Not ours (any more). In the paper's design the sender rebinds
         via Where_is; in the Demos/MP ablation we relay off a forwarding
         address, preserving the original source station so the reply
         goes back directly — and imposing the residual load on this
         host that Section 5 criticizes. *)
      match Hashtbl.find_opt t.forwards dst.Ids.lh with
      | Some station when t.stn <> None ->
          bump t "forwarded";
          ev t (fun () ->
              Ipc_forward
                { host = t.name; txn; lh = dst.Ids.lh; to_station = station });
          let pkt = Packet.Request { txn; src; dst; msg } in
          Ethernet.send t.net
            (Frame.unicast ~src:frame_src ~dst:station
               ~bytes:(Packet.bytes pkt) pkt)
      | Some _ | None -> ())

let handle_reply t ~txn ~dst ~msg =
  match Hashtbl.find_opt t.group_outstanding txn with
  | Some mailbox -> Mailbox.send mailbox (dst, msg) |> ignore
  | None -> (
      match Hashtbl.find_opt t.outstanding txn with
      | Some os ->
          let sender_frozen =
            match Hashtbl.find_opt t.lh_table os.os_src.Ids.lh with
            | Some lh -> Logical_host.frozen lh
            | None -> false
          in
          if sender_frozen then begin
            (* Discard; the kernel keeps retransmitting on the frozen
               process' behalf so the replier retains the reply
               (Section 3.1.3). *)
            trace t "DISCARD reply #%d for %a" txn Ids.pp_pid os.os_src;
            bump t "replies_discarded_frozen"
          end
          else complete t os (Ok msg)
      | None -> ())

let handle_group_request t ~frame_src ~txn ~src ~group ~msg =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some members ->
      List.iter
        (fun vp ->
          Mailbox.send (Vproc.inbox vp)
            {
              Delivery.src;
              dst = group;
              txn;
              msg;
              origin = Delivery.Remote frame_src;
            })
        members

let handle_frame t (frame : Packet.t Frame.t) =
  bump t "packets_rx";
  let frame_src = frame.Frame.src in
  match frame.Frame.payload with
  | Packet.Request { txn; src; dst; msg } ->
      update_binding_from t src frame_src;
      handle_request t ~frame_src ~txn ~src ~dst ~msg
  | Packet.Reply { txn; src; dst; msg } ->
      update_binding_from t src frame_src;
      handle_reply t ~txn ~dst:src ~msg |> ignore;
      ignore dst
  | Packet.Reply_pending { txn; dst = _ } -> (
      match Hashtbl.find_opt t.outstanding txn with
      | Some os ->
          os.os_last_heard <- Engine.now t.eng;
          os.os_attempts_since_heard <- 0
      | None -> ())
  | Packet.Group_request { txn; src; group; msg } ->
      update_binding_from t src frame_src;
      handle_group_request t ~frame_src ~txn ~src ~group ~msg
  | Packet.Where_is { lh } ->
      if lh_hosting_or_reserved t lh then
        transmit t ~dst:frame_src (Packet.Here_is { lh; station = t.self })
  | Packet.Here_is { lh; station } ->
      if not (Hashtbl.mem t.lh_table lh) then begin
        set_binding t lh station;
        (* Kick every send blocked querying for this logical host. *)
        Hashtbl.iter
          (fun _ os ->
            if os.os_dst.Ids.lh = lh && not os.os_done && not os.os_local_delivered
            then begin
              Option.iter Engine.cancel os.os_timer;
              os.os_timer <- None;
              osend_attempt t os
            end)
          t.outstanding
      end

(* {2 Logical hosts, processes} *)

let create_logical_host t ~priority =
  let id = Ids.Lh_allocator.fresh t.alloc in
  let lh = Logical_host.create ~id ~priority ~home:t.name in
  Hashtbl.replace t.lh_table id lh;
  lh

let spawn_in t lh ~name vp body =
  let thread =
    Proc.spawn t.eng ~name (fun () ->
        Logical_host.gate lh ();
        body vp)
  in
  Vproc.attach_thread vp thread;
  thread

let create_process _t lh = Logical_host.new_process lh

let start_process t vp ~name body =
  let lh =
    match Hashtbl.find_opt t.lh_table (Vproc.pid vp).Ids.lh with
    | Some lh -> lh
    | None -> invalid_arg "Kernel.start_process: unknown logical host"
  in
  ignore (spawn_in t lh ~name vp body)

let spawn_process t lh ~name body =
  let vp = Logical_host.new_process lh in
  ignore (spawn_in t lh ~name vp body);
  vp

let destroy_logical_host t lh =
  let id = Logical_host.id lh in
  List.iter Vproc.kill (Logical_host.processes lh);
  Hashtbl.remove t.lh_table id;
  Hashtbl.remove t.fault_sources id;
  invalidate_binding t id;
  (* Wake local senders whose requests died with the host. *)
  List.iter
    (fun vp ->
      List.iter
        (fun (d : Delivery.t) ->
          if d.Delivery.origin = Delivery.Local then
            match Hashtbl.find_opt t.outstanding d.Delivery.txn with
            | Some os -> complete t os (Error No_response)
            | None -> ())
        (Mailbox.drain (Vproc.inbox vp)))
    (Logical_host.processes lh);
  Hashtbl.iter
    (fun _ os ->
      (* Requests addressed through the host's local-group ids live in
         the kernel server / program manager, which survive the destroy
         and will still reply — only sends to the host's own processes
         die with it. *)
      if
        os.os_dst.Ids.lh = id
        && os.os_dst.Ids.index >= Ids.first_user_index
        && os.os_local_delivered && not os.os_done
      then complete t os (Error No_response))
    (Hashtbl.copy t.outstanding);
  (* Sends originated by the dead host complete into the void. *)
  Hashtbl.iter
    (fun txn os ->
      if os.os_src.Ids.lh = id then begin
        Option.iter Engine.cancel os.os_timer;
        Hashtbl.remove t.outstanding txn
      end)
    (Hashtbl.copy t.outstanding);
  ev t (fun () -> Logical_host.Lh_destroyed { host = t.name; lh = id });
  trace t "destroyed %a" Ids.pp_lh id

let system_process t ~index ~name body =
  assert (index < Ids.first_user_index);
  let vp = Vproc.create (Ids.pid (Logical_host.id t.the_host_lh) index) in
  Hashtbl.replace t.sys_procs index vp;
  ignore (spawn_in t t.the_host_lh ~name vp body);
  vp

(* {2 Groups} *)

let join_group t ~group vp =
  let members =
    match Hashtbl.find_opt t.groups group with Some m -> m | None -> []
  in
  Hashtbl.replace t.groups group (vp :: members);
  match t.stn with
  | Some s -> Ethernet.subscribe s (multicast_group_id group)
  | None -> ()

let leave_group t ~group vp =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some members ->
      let members = List.filter (fun m -> m != vp) members in
      Hashtbl.replace t.groups group members;
      if members = [] then
        match t.stn with
        | Some s -> Ethernet.unsubscribe s (multicast_group_id group)
        | None -> ()

(* {2 Freeze / migrate} *)

let freeze_lh t lh =
  Logical_host.set_frozen lh true;
  Cpu.wait_clear t.kcpu ~owner:(Logical_host.id lh);
  List.iter Vproc.pause (Logical_host.processes lh);
  (* Emitted only after the CPU drained the host's in-flight slice (and
     its slice event), so the freeze-window monitor sees no guest
     progress after this point. *)
  ev t (fun () ->
      Logical_host.Lh_frozen { host = t.name; lh = Logical_host.id lh });
  trace t "froze %a" Ids.pp_lh (Logical_host.id lh)

let redeliver_deferred t lh =
  List.iter
    (fun (d : Delivery.t) ->
      match resolve_vproc t d.Delivery.dst with
      | Some vp -> Mailbox.send (Vproc.inbox vp) d
      | None -> ())
    (Logical_host.take_deferred lh)

let restart_osends t lh_id =
  Hashtbl.iter
    (fun _ os ->
      if os.os_src.Ids.lh = lh_id && not os.os_done then begin
        trace t "restarting send #%d %a->%a" os.os_txn Ids.pp_pid os.os_src
          Ids.pp_pid os.os_dst;
        osend_attempt t os
      end)
    (Hashtbl.copy t.outstanding)

let unfreeze_lh t lh =
  (* Emitted before any thawed process can resume. *)
  ev t (fun () ->
      Logical_host.Lh_unfrozen { host = t.name; lh = Logical_host.id lh });
  Logical_host.set_frozen lh false;
  List.iter Vproc.unpause (Logical_host.processes lh);
  Logical_host.thaw lh;
  redeliver_deferred t lh;
  restart_osends t (Logical_host.id lh);
  trace t "unfroze %a" Ids.pp_lh (Logical_host.id lh)

let kernel_state_copy_span _t lh =
  let objects =
    Logical_host.process_count lh + List.length (Logical_host.spaces lh)
  in
  Time.add (Time.of_ms 14.) (Time.mul (Time.of_ms 9.) objects)

let extract_lh ?page_source t lh =
  assert (Logical_host.frozen lh);
  let id = Logical_host.id lh in
  (* Whatever copy discipline moves the host next accounts for every
     page, so any copy-on-reference residency state from a previous
     migration is collapsed here; likewise we stop being a fault client
     of our own source. *)
  List.iter Address_space.make_all_resident (Logical_host.spaces lh);
  Hashtbl.remove t.fault_sources id;
  (* 1. Collect outstanding sends originated inside the migrating host:
        they are kernel state that moves with it. *)
  let moved = ref [] in
  Hashtbl.iter
    (fun txn os ->
      if os.os_src.Ids.lh = id then begin
        Option.iter Engine.cancel os.os_timer;
        os.os_timer <- None;
        os.os_local_delivered <- false;
        os.os_last_heard <- Engine.now t.eng;
        Hashtbl.remove t.outstanding txn;
        moved := os :: !moved
      end)
    (Hashtbl.copy t.outstanding);
  (* 2. The host stops being resident here. *)
  Hashtbl.remove t.lh_table id;
  invalidate_binding t id;
  (* 3. Discard queued (unreceived) requests: remote senders keep
        retransmitting and will rebind; local senders restart their send,
        which now takes the remote path (Section 3.1.3). *)
  let inbound = Logical_host.inbound lh in
  List.iter
    (fun vp ->
      List.iter
        (fun (d : Delivery.t) ->
          if not (is_group_pid d.Delivery.dst) then
            Hashtbl.remove inbound d.Delivery.txn;
          match d.Delivery.origin with
          | Delivery.Local -> (
              match Hashtbl.find_opt t.outstanding d.Delivery.txn with
              | Some os ->
                  os.os_local_delivered <- false;
                  os.os_last_heard <- Engine.now t.eng;
                  osend_attempt t os
              | None -> ())
          | Delivery.Remote _ -> ())
        (Mailbox.drain (Vproc.inbox vp)))
    (Logical_host.processes lh);
  (* 4. Local senders whose requests are in service inside the migrating
        host switch to the remote protocol; duplicate suppression at the
        destination turns their retransmissions into reply-pendings. *)
  Hashtbl.iter
    (fun _ os ->
      if os.os_dst.Ids.lh = id && os.os_local_delivered && not os.os_done then begin
        os.os_local_delivered <- false;
        os.os_last_heard <- Engine.now t.eng;
        osend_attempt t os
      end)
    (Hashtbl.copy t.outstanding);
  ev t (fun () ->
      Logical_host.Lh_extracted
        { host = t.name; lh = id; bytes = Logical_host.total_bytes lh });
  (if page_source <> None then begin
     Hashtbl.replace t.page_sources id ();
     trace t "retaining pages of %a for copy-on-reference" Ids.pp_lh id
   end);
  trace t "extracted %a" Ids.pp_lh id;
  { st_lh = lh; st_osends = !moved; st_page_source = page_source }

(* Re-arming expiry timer: fires at the recorded deadline; if traffic
   refreshed [r_expires] in the meantime, re-arm for the new deadline
   instead of expiring. The closure holds only the id, so a reservation
   consumed by install (or wiped by a crash) makes the timer a no-op. *)
let rec arm_reservation_timer t id =
  match Hashtbl.find_opt t.reservations id with
  | None -> ()
  | Some r ->
      Engine.post t.eng ~at:r.r_expires (fun () ->
             match Hashtbl.find_opt t.reservations id with
             | None -> ()
             | Some r ->
                 if Time.(r.r_expires <= Engine.now t.eng) then begin
                   Hashtbl.remove t.reservations id;
                   bump t "reservations_expired";
                   trace t "reservation %a expired, released %d bytes"
                     Ids.pp_lh id r.r_bytes
                 end
                 else arm_reservation_timer t id)

let reserve_lh t ~temp_lh ~bytes =
  if memory_free t >= bytes then begin
    let ttl = t.prm.Os_params.reservation_ttl in
    let live_ttl = Time.(ttl > Time.zero) in
    let expires =
      if live_ttl then Time.add (Engine.now t.eng) ttl else Time.zero
    in
    Hashtbl.replace t.reservations temp_lh
      { r_bytes = bytes; r_expires = expires };
    if live_ttl then arm_reservation_timer t temp_lh;
    true
  end
  else false

let cancel_reservation t ~temp_lh = Hashtbl.remove t.reservations temp_lh

let install_lh t state =
  let lh = state.st_lh in
  let id = Logical_host.id lh in
  Hashtbl.replace t.lh_table id lh;
  (* Residency beats a stale retained-pages marker: set when a
     copy-on-reference install failed and the source resurrects the old
     copy, or when a departed host migrates back home. *)
  Hashtbl.remove t.page_sources id;
  invalidate_binding t id;
  List.iter
    (fun os -> Hashtbl.replace t.outstanding os.os_txn os)
    state.st_osends;
  ev t (fun () ->
      Logical_host.Lh_installed
        { host = t.name; lh = id; bytes = Logical_host.total_bytes lh });
  trace t "installed %a" Ids.pp_lh id;
  lh

let announce_lh t lh =
  (* The eager rebind broadcast belongs to the query design; the
     forwarding ablation has no such mechanism. *)
  if
    lh_hosting_or_reserved t lh
    && t.prm.Os_params.rebind = Os_params.Broadcast_query
  then transmit_broadcast t (Packet.Here_is { lh; station = t.self })

(* {2 Content-addressed transfer} *)

(* Probe the local cache for every chunk a manifest names, in manifest
   order. A miss is inserted immediately (the bytes are about to arrive
   or be pulled), so duplicates *within* one manifest — every zero page
   after the first — already dedup. Emits the manifest/hit/miss event
   triple consecutively (the dedup monitor pairs on that) and returns
   the missing (chunks, bytes) the source must still ship. *)
let scan_manifest t ~lh ~label ~wire_bytes digests =
  let hit_chunks = ref 0 and hit_bytes = ref 0 and hit_sum = ref 0 in
  let miss_chunks = ref 0 and miss_bytes = ref 0 and miss_sum = ref 0 in
  let total_bytes = ref 0 and total_sum = ref 0 in
  Array.iter
    (fun (dg, b) ->
      total_bytes := !total_bytes + b;
      total_sum := !total_sum + dg;
      if Content_cache.probe t.cache ~digest:dg ~bytes:b then begin
        incr hit_chunks;
        hit_bytes := !hit_bytes + b;
        hit_sum := !hit_sum + dg
      end
      else begin
        incr miss_chunks;
        miss_bytes := !miss_bytes + b;
        miss_sum := !miss_sum + dg
      end)
    digests;
  bump_by t "xfer_chunks_hit" !hit_chunks;
  bump_by t "xfer_chunks_miss" !miss_chunks;
  bump_by t "xfer_bytes_deduped" !hit_bytes;
  ev t (fun () ->
      Xfer_manifest
        {
          host = t.name;
          lh;
          label;
          chunks = Array.length digests;
          bytes = !total_bytes;
          wire_bytes;
          digest_sum = !total_sum;
        });
  ev t (fun () ->
      Xfer_chunk_hit
        {
          host = t.name;
          lh;
          label;
          chunks = !hit_chunks;
          bytes = !hit_bytes;
          digest_sum = !hit_sum;
        });
  ev t (fun () ->
      Xfer_chunk_miss
        {
          host = t.name;
          lh;
          label;
          chunks = !miss_chunks;
          bytes = !miss_bytes;
          digest_sum = !miss_sum;
        });
  (!miss_chunks, !miss_bytes)

(* {2 Copy-on-reference page faulting} *)

let serves_pages_for t lh = Hashtbl.mem t.page_sources lh
let page_source_count t = Hashtbl.length t.page_sources
let fault_source t lh = Hashtbl.find_opt t.fault_sources lh

(* Runs in the faulting process' own context at a scheduling boundary
   (never while it holds the CPU): drain the first-touch queues of the
   host's spaces and pull the pages from the old host in one batched
   request. The requester blocks until the page data has crossed the
   wire — that round trip to the source is the copy-on-reference cost
   the paper's Section 3.2 argues against. *)
let service_page_faults t ~self ~lh:lh_id =
  match Hashtbl.find_opt t.fault_sources lh_id with
  | None -> ()
  | Some source -> (
      match Hashtbl.find_opt t.lh_table lh_id with
      | None -> ()
      | Some lh ->
          let pages, bytes =
            if Content_cache.enabled t.cache then begin
              (* Content-addressed fault-in: probe the local cache for
                 each faulted page's source-side digest — image chunks
                 announced by the file server (and anything shipped here
                 before) need no round trip to the old host. Only the
                 misses go in the pull request. The probe runs locally,
                 so the manifest costs nothing on the wire. *)
              let faulted =
                List.concat_map
                  (fun sp ->
                    List.map
                      (fun p ->
                        ( Address_space.source_page_digest sp p,
                          Address_space.page_bytes sp ))
                      (Address_space.take_pending_faults sp))
                  (Logical_host.spaces lh)
              in
              if faulted = [] then (0, 0)
              else
                scan_manifest t ~lh:lh_id ~label:"fault" ~wire_bytes:0
                  (Array.of_list faulted)
            end
            else
              List.fold_left
                (fun (p, b) sp ->
                  let n = List.length (Address_space.take_pending_faults sp) in
                  (p + n, b + (n * Address_space.page_bytes sp)))
                (0, 0) (Logical_host.spaces lh)
          in
          if pages > 0 then begin
            bump t "page_faults";
            match
              send t ~src:self ~dst:source
                (Message.make (Ks_fault_pages { lh = lh_id; pages; bytes }))
            with
            | Ok _ -> ()
            | Error No_response ->
                (* The source is gone and the unreferenced pages with it —
                   the fragility copy-on-reference accepts. Drop the
                   dependency so the program is not stuck retrying. *)
                Hashtbl.remove t.fault_sources lh_id;
                trace t "page source for %a lost" Ids.pp_lh lh_id
          end)

(* {2 Kernel server} *)

let modifies_lh body =
  match body with Ks_destroy_lh _ -> true | _ -> false

let ks_body t vp =
  let rec loop () =
    let d = receive t vp in
    (match Hashtbl.find_opt t.lh_table d.Delivery.dst.Ids.lh with
    | Some lh when Logical_host.frozen lh && modifies_lh d.Delivery.msg.Message.body
      ->
        (* Defer operations that modify a frozen logical host; they are
           forwarded to the new host's kernel server after migration
           (Section 3.1.3). *)
        Logical_host.defer_op lh d
    | _ -> (
        match d.Delivery.msg.Message.body with
        | Ks_ping ->
            bump t "ks_pings";
            reply t d (Message.make Ks_pong)
        | Ks_query_load ->
            reply t d
              (Message.make
                 (Ks_load
                    {
                      cpu_busy = Cpu.busy_fraction t.kcpu;
                      memory_free = memory_free t;
                      guests = guest_count t;
                    }))
        | Ks_install { state; deadline } ->
            let temp = d.Delivery.dst.Ids.lh in
            cancel_reservation t ~temp_lh:temp;
            let late =
              match deadline with
              | Some dl -> Time.(Engine.now t.eng > dl)
              | None -> false
            in
            if late then
              (* The source's freeze budget has already expired: refusing
                 here (rather than installing late) is what makes the
                 freeze-budget invariant airtight — a committed migration
                 always resumed within its declared budget. The source
                 takes the ordinary refusal path and unfreezes locally. *)
              reply t d (Message.make (Ks_refused "freeze deadline exceeded"))
            else if memory_free t >= Logical_host.total_bytes state.st_lh
            then begin
              let lh = install_lh t state in
              (match state.st_page_source with
              | Some source ->
                  (* Copy-on-reference: the memory image never came.
                     Every page starts absent; first touches queue faults
                     serviced from the old host's kernel server. *)
                  Hashtbl.replace t.fault_sources (Logical_host.id lh) source;
                  List.iter Address_space.evict_all (Logical_host.spaces lh)
              | None -> ());
              unfreeze_lh t lh;
              let resumed_at = Engine.now t.eng in
              announce_lh t (Logical_host.id lh);
              reply t d (Message.make (Ks_installed { resumed_at }))
            end
            else reply t d (Message.make (Ks_refused "insufficient memory"))
        | Ks_destroy_lh id -> (
            match find_lh t id with
            | Some lh ->
                destroy_logical_host t lh;
                reply t d (Message.make Ks_ok)
            | None -> reply t d (Message.make (Ks_refused "no such logical host")))
        | Ks_fault_pages { lh = flh; pages; bytes } ->
            if serves_pages_for t flh then begin
              bump t "page_fault_serves";
              ev t (fun () ->
                  Page_fault_service { host = t.name; lh = flh; pages; bytes });
              let to_station =
                match d.Delivery.origin with
                | Delivery.Remote s -> Some s
                | Delivery.Local -> None
              in
              bulk_transfer ?to_station t ~bytes;
              reply t d (Message.make Ks_ok)
            end
            else reply t d (Message.make (Ks_refused "no retained pages"))
        | Ks_xfer_manifest { lh = mlh; label; digests } ->
            (* Manifest-first copy, destination side: answer with what
               is still missing. The probe inserts misses, so the bytes
               about to arrive are counted as held from here on. *)
            let wire_bytes = Message.short_bytes + (8 * Array.length digests) in
            let missing, bytes =
              scan_manifest t ~lh:mlh ~label ~wire_bytes digests
            in
            reply t d (Message.make (Ks_xfer_need { missing; bytes }))
        | Ks_content_announce { image; first; count; chunk_bytes } ->
            (* Multicast fan-out: the named chunks just crossed the
               shared wire; count them as held. Group sends expect no
               reply. *)
            if Content_cache.enabled t.cache then begin
              for i = first to first + count - 1 do
                Content_cache.insert t.cache
                  ~digest:(Pagehash.image_chunk ~image ~index:i)
                  ~bytes:chunk_bytes
              done;
              bump_by t "img_announced_chunks" count
            end
        | _ -> reply t d (Message.make (Ks_refused "unknown operation"))));
    loop ()
  in
  loop ()

(* {2 Boot / shutdown} *)

let create ~engine:eng ~rng:krng ~tracer:trc ~params:prm ~net ~station:self
    ~host_name:name ~allocator:alloc ~memory_bytes:mem_bytes =
  let host_id = Ids.Lh_allocator.fresh alloc in
  let the_host_lh =
    Logical_host.create ~id:host_id ~priority:Cpu.Foreground ~home:name
  in
  let t =
    {
      eng;
      krng;
      trc;
      prm;
      net;
      stn = None;
      self;
      name;
      alloc;
      mem_bytes;
      kcpu = Cpu.create ~tracer:trc eng ~quantum:prm.Os_params.cpu_quantum;
      lh_table = Hashtbl.create 16;
      the_host_lh;
      sys_procs = Hashtbl.create 8;
      bindings = Hashtbl.create 32;
      outstanding = Hashtbl.create 32;
      group_outstanding = Hashtbl.create 8;
      groups = Hashtbl.create 8;
      reservations = Hashtbl.create 4;
      forwards = Hashtbl.create 4;
      page_sources = Hashtbl.create 4;
      fault_sources = Hashtbl.create 4;
      stats = Hashtbl.create 16;
      cache = Content_cache.create ~budget:prm.Os_params.content_cache_bytes;
    }
  in
  Hashtbl.replace t.lh_table host_id the_host_lh;
  t.stn <- Some (Ethernet.attach net self (fun frame -> handle_frame t frame));
  let ks =
    system_process t ~index:Ids.kernel_server_index ~name:(name ^ ":ks")
      (ks_body t)
  in
  (* Caching hosts listen for the file server's image-chunk multicasts. *)
  if Content_cache.enabled t.cache then
    join_group t ~group:Ids.content_group ks;
  t

let shutdown t =
  ev t (fun () -> Host_crashed { host = t.name });
  (match t.stn with
  | Some s ->
      Ethernet.detach s;
      t.stn <- None
  | None -> ());
  (* Kill what is *currently resident*: processes of hosted logical
     hosts and the system processes. Logical hosts that migrated away
     run elsewhere and must survive this machine's death. *)
  Hashtbl.iter
    (fun _ lh -> List.iter Vproc.kill (Logical_host.processes lh))
    t.lh_table;
  Hashtbl.iter (fun _ vp -> Vproc.kill vp) t.sys_procs;
  Hashtbl.reset t.lh_table;
  Hashtbl.iter (fun _ os -> Option.iter Engine.cancel os.os_timer) t.outstanding;
  Hashtbl.reset t.outstanding;
  (* Everything else the kernel keeps is RAM, lost with the crash:
     bindings, reply retention, reservations (so no spurious
     "reservations_expired" ticks from a dead destination), forwarding
     addresses (the Demos/MP ablation's Section 5 failure mode), group
     memberships. *)
  Hashtbl.reset t.bindings;
  Hashtbl.reset t.group_outstanding;
  Hashtbl.reset t.groups;
  Hashtbl.reset t.reservations;
  Hashtbl.reset t.forwards;
  (* Retained copy-on-reference pages were RAM too: a source crash
     strands every program still faulting from it. *)
  Hashtbl.reset t.page_sources;
  Hashtbl.reset t.fault_sources;
  (* The content cache is RAM with the rest. *)
  Content_cache.clear t.cache;
  Hashtbl.reset t.sys_procs;
  Hashtbl.reset (Logical_host.inbound t.the_host_lh);
  trace t "shut down"

let running t = t.stn <> None

let reboot t =
  if t.stn <> None then invalid_arg "Kernel.reboot: kernel is running";
  (* Cold boot on the same station: the host logical host keeps its id
     (so the well-known kernel-server / program-manager pids remain
     valid), but every logical host that lived here and all volatile
     kernel state are gone — correspondents must rebind via the paper's
     query protocol. The caller recreates the machine's services. *)
  Hashtbl.replace t.lh_table (Logical_host.id t.the_host_lh) t.the_host_lh;
  t.stn <-
    Some (Ethernet.attach t.net t.self (fun frame -> handle_frame t frame));
  let ks =
    system_process t ~index:Ids.kernel_server_index ~name:(t.name ^ ":ks")
      (ks_body t)
  in
  if Content_cache.enabled t.cache then
    join_group t ~group:Ids.content_group ks;
  bump t "reboots";
  ev t (fun () -> Host_rebooted { host = t.name });
  trace t "rebooted"
