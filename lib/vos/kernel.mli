(** The per-workstation V kernel.

    One instance runs on every simulated workstation, exactly as "a
    functionally identical copy of the kernel resides on each host"
    (Section 2.1). It provides address spaces grouped into logical hosts,
    processes, and network-transparent IPC, and hosts the kernel-server
    process that services remote kernel operations (load queries, state
    installation during migration, remote destroy).

    {2 IPC protocol}

    [Send] blocks the caller until a matching [Reply]. Remote sends are
    driven by a kernel-level retransmission machine — kernel-level so that
    a {e frozen} process' outstanding sends keep retransmitting during
    migration, which is what keeps repliers' cached replies alive
    (Section 3.1.3). Receiving kernels suppress duplicates through a
    per-logical-host transaction table, answer duplicates of in-service
    requests with reply-pending packets, and re-send retained replies when
    a duplicate reveals a lost reply.

    {2 Logical host binding}

    Process ids name (logical host, index); kernels map logical hosts to
    stations through a binding cache. A send that goes unanswered for a
    few retransmissions invalidates its cache entry and broadcasts
    [Where_is]; any kernel hosting the logical host answers, and caches
    are also refreshed from the source of every incoming packet
    (Section 3.1.4). This is the entire rebinding story — there are no
    forwarding addresses to leak, the property the paper holds over
    Demos/MP. *)

type t

(** {1 Typed trace events}

    [host] is the workstation {e emitting} the event, so monitors can
    attribute IPC activity to a specific copy of a logical host: after a
    migration commits, the no-residual-dependency monitor rejects any of
    these naming the old host and the migrated logical host.

    [Ipc_send] fires when a send transaction is opened (once per logical
    send, not per retransmission); [Ipc_recv] when a request is queued
    to its target process (local or remote origin); [Ipc_reply] when the
    reply is issued; [Ipc_forward] only in the Demos/MP forwarding
    ablation, when a departed host's mail is relayed off the forwarding
    address. Binding events fire on actual cache changes, not on the
    per-packet refreshes that re-confirm an existing entry. *)
type Tracer.event +=
  | Ipc_send of { host : string; txn : Packet.txn; src : Ids.pid; dst : Ids.pid }
  | Ipc_recv of { host : string; txn : Packet.txn; src : Ids.pid; dst : Ids.pid }
  | Ipc_reply of { host : string; txn : Packet.txn; src : Ids.pid; dst : Ids.pid }
  | Ipc_forward of {
      host : string;
      txn : Packet.txn;
      lh : Ids.lh_id;
      to_station : Addr.t;
    }
  | Binding_set of { host : string; lh : Ids.lh_id; station : Addr.t }
  | Binding_invalidated of { host : string; lh : Ids.lh_id }
  | Host_crashed of { host : string }
  | Host_rebooted of { host : string }
  | Page_fault_service of {
      host : string;
      lh : Ids.lh_id;
      pages : int;
      bytes : int;
    }
      (** Copy-on-reference residual traffic: the {e old} host [host]
          served [pages] pages it retained for departed logical host
          [lh]. Emitted with category ["migrate"], type ["page-fault"];
          the no-residual-dependency monitor attributes these to the
          banned (logical host, old host) pair. *)
  | Xfer_manifest of {
      host : string;
      lh : Ids.lh_id;
      label : string;
      chunks : int;
      bytes : int;
      wire_bytes : int;
      digest_sum : int;
    }
      (** Content-addressed transfer: [host] scanned a [chunks]-entry
          digest manifest covering [bytes] of content for logical host
          [lh] against its cache. [wire_bytes] is what the manifest
          itself cost on the wire (0 for local fault-path scans);
          [digest_sum] sums the 48-bit chunk digests. Category ["xfer"],
          type ["manifest"]; always immediately followed by one
          {!Xfer_chunk_hit} and one {!Xfer_chunk_miss} (possibly with
          zero counts) for the same scan — the dedup monitor checks the
          triple conserves chunks, bytes, and digest sums. *)
  | Xfer_chunk_hit of {
      host : string;
      lh : Ids.lh_id;
      label : string;
      chunks : int;
      bytes : int;
      digest_sum : int;
    }
      (** Chunks of the preceding manifest already held by [host]'s
          cache: [bytes] bytes that need not cross the wire. Category
          ["xfer"], type ["hit"]. *)
  | Xfer_chunk_miss of {
      host : string;
      lh : Ids.lh_id;
      label : string;
      chunks : int;
      bytes : int;
      digest_sum : int;
    }
      (** Chunks the source must still ship. Category ["xfer"], type
          ["miss"]. *)
  | Img_cache_hit of { host : string; image : string; chunks : int; bytes : int }
      (** A program creation on [host] found all of [image]'s [chunks]
          chunks cached: the 330 ms/100 KB file-server load is skipped
          (only missing chunks are pulled — [bytes] counts the cached
          ones). Category ["img"], type ["hit"]. *)
  | Img_cache_miss of { host : string; image : string; chunks : int; bytes : int }
      (** A program creation had to pull [chunks] missing chunks
          ([bytes] bytes) of [image] from the file server. Category
          ["img"], type ["miss"]. *)

type send_error =
  | No_response
      (** Retransmissions and queries went unanswered past the
          abandonment deadline: target destroyed, unreachable, or never
          existed. *)

val pp_send_error : Format.formatter -> send_error -> unit

(** {1 Construction} *)

val create :
  engine:Engine.t ->
  rng:Rng.t ->
  tracer:Tracer.t ->
  params:Os_params.t ->
  net:Packet.t Ethernet.t ->
  station:Addr.t ->
  host_name:string ->
  allocator:Ids.Lh_allocator.t ->
  memory_bytes:int ->
  t
(** Boot a workstation kernel: attaches to the network, creates the
    unmigratable host logical host, and starts the kernel-server process.
    [memory_bytes] is the workstation's RAM (2 MB on the paper's SUNs),
    bounding what programs and reservations it can accommodate. *)

val reset_txn_ids : unit -> unit
(** Reset this domain's IPC transaction counter. Called per cluster so
    replica runs see identical txn sequences whatever domain executes
    them. *)

val running : t -> bool
(** [true] between boot/{!reboot} and {!shutdown}. Fault-injection hooks
    use this to make churn idempotent: never crash a dead kernel or
    reboot a live one. *)

val shutdown : t -> unit
(** Crash the workstation: detach from the network, kill every resident
    process, and discard all volatile kernel state — binding cache,
    retained replies, reservations, forwarding addresses, group
    memberships. Used by fault injection — a migration destination dying
    mid-transfer must leave the source able to recover. *)

val reboot : t -> unit
(** Cold-boot a previously {!shutdown} kernel on the same station. The
    host logical host keeps its id (so well-known kernel-server and
    program-manager pids stay valid) but comes back empty: every guest
    it hosted is gone, and correspondents rebind via [Where_is]. The
    kernel-server process is restarted; the caller must recreate
    machine services (program manager, servers). Raises
    [Invalid_argument] if the kernel is still running. *)

(** {1 Accessors} *)

val engine : t -> Engine.t
val params : t -> Os_params.t
val tracer : t -> Tracer.t
val host_name : t -> string
val station : t -> Addr.t
val cpu : t -> Cpu.t
val rng : t -> Rng.t
val allocator : t -> Ids.Lh_allocator.t
val host_lh : t -> Logical_host.t
(** The logical host holding this workstation's system processes; it is
    bound to the hardware and never migrates. *)

val memory_bytes : t -> int
val memory_free : t -> int
(** RAM minus resident logical hosts and outstanding reservations. *)

val logical_hosts : t -> Logical_host.t list
val find_lh : t -> Ids.lh_id -> Logical_host.t option
val guest_count : t -> int
(** Resident logical hosts running at background (guest) priority. *)

(** {1 Logical hosts and processes} *)

val create_logical_host : t -> priority:Cpu.priority -> Logical_host.t
val destroy_logical_host : t -> Logical_host.t -> unit
(** Kill all processes and release the memory. Pending senders to the
    destroyed host eventually fail with [No_response]. *)

val spawn_process :
  t -> Logical_host.t -> name:string -> (Vproc.t -> unit) -> Vproc.t
(** Create a process and start its code immediately. *)

val create_process : t -> Logical_host.t -> Vproc.t
(** Create a process without code — the paper's creation order, where the
    new process exists "awaiting reply from its creator" before the
    requester initializes and starts it. Pair with {!start_process}. *)

val start_process :
  t -> Vproc.t -> name:string -> (Vproc.t -> unit) -> unit

val system_process :
  t -> index:int -> name:string -> (Vproc.t -> unit) -> Vproc.t
(** Register a well-known service (reserved index) in the host logical
    host — the program manager layer uses index
    {!Ids.program_manager_index}. *)

(** {1 Process groups} *)

val join_group : t -> group:Ids.pid -> Vproc.t -> unit
(** Add a local process to a (global) process group and subscribe the
    station to the group's multicast address. *)

val leave_group : t -> group:Ids.pid -> Vproc.t -> unit

(** {1 IPC operations} *)

val send :
  ?deadline:Time.t ->
  t ->
  src:Ids.pid ->
  dst:Ids.pid ->
  Message.t ->
  (Message.t, send_error) result
(** Blocking Send: delivers the request (locally or via the wire protocol)
    and returns the reply. Charges the kernel-operation costs of
    Section 4.1 — including the frozen-state test and, when [dst] is a
    local group id, the group-lookup indirection. [deadline] bounds the
    wait absolutely: if no reply arrived by that instant the send
    completes [Error No_response] without waiting out the retransmission
    machinery's own give-up timer — the primitive beneath the failure
    detector's adaptive probe timeouts. *)

type collector
(** Gathers replies to a group send. *)

val send_group :
  t -> src:Ids.pid -> group:Ids.pid -> Message.t -> collector
(** One Send multicast to a process group; unreliable, replies stream into
    the collector. The decentralized scheduler is built on this. *)

val collect_first :
  t -> collector -> timeout:Time.span -> (Ids.pid * Message.t) option
(** First reply, or [None] on timeout; closes the collector. Picking the
    first responder is the paper's whole host-selection policy. *)

val collect_first_where :
  t ->
  collector ->
  accept:(Ids.pid * Message.t -> bool) ->
  timeout:Time.span ->
  grace:Time.span ->
  (Ids.pid * Message.t) option
(** First reply satisfying [accept], or — if none arrives — the first
    rejected reply as a fallback, or [None] on timeout; closes the
    collector. Once a rejected reply is in hand the remaining wait is
    capped at [grace], so a deprioritized (e.g. merely Suspect) bidder
    never costs the caller the full timeout. *)

val collect_within :
  t -> collector -> window:Time.span -> (Ids.pid * Message.t) list
(** All replies arriving within the window; closes the collector. *)

val close_collector : t -> collector -> unit
(** Close a collector without waiting: fire-and-forget multicast. Any
    replies in flight are discarded on arrival. Used for one-way
    announcements such as [Ks_content_announce]. *)

val receive : t -> Vproc.t -> Delivery.t
(** Blocking Receive of the next queued request. *)

val reply : ?from:Ids.pid -> t -> Delivery.t -> Message.t -> unit
(** Reply to a received request. The reply is retained for the configured
    TTL to answer duplicate requests. [from] identifies the replying
    group member when answering a group send. *)

val bulk_transfer : ?to_station:Addr.t -> t -> bytes:int -> unit
(** Block the calling process while [bytes] move over the shared wire —
    the inter-host CopyTo/CopyFrom primitive beneath address-space copies
    and file transfers. Runs at the network's bulk rate (3 s/MB
    calibration) and contends with all other traffic; a [to_station] on a
    bridged segment makes the copy occupy both wires. *)

(** {1 Binding cache} *)

val lookup_binding : t -> Ids.lh_id -> Addr.t option
val set_binding : t -> Ids.lh_id -> Addr.t -> unit
val invalidate_binding : t -> Ids.lh_id -> unit
val announce_lh : t -> Ids.lh_id -> unit
(** Broadcast this kernel's binding for a logical host ([Here_is]) — the
    optional eager rebind of Section 3.1.4. A no-op in the
    {!Os_params.Forwarding} ablation, which has no such mechanism. *)

val set_forward : t -> Ids.lh_id -> Addr.t -> unit
(** Install a Demos/MP-style forwarding address for a departed logical
    host ({!Os_params.Forwarding} ablation only): requests arriving for
    it are relayed to the given station, imposing the residual load — and
    the reboot fragility — that Section 5 holds against that design. *)

(** {1 Migration support (local operations)} *)

type lh_state
(** A logical host's full kernel state in transit: the host itself plus
    its outstanding sends. *)

val freeze_lh : t -> Logical_host.t -> unit
(** Freeze: stop members acquiring the CPU, drain the member currently on
    it, and suspend every member process. Blocking. External interactions
    are deferred per Section 3.1.3 from this instant. *)

val unfreeze_lh : t -> Logical_host.t -> unit
(** Unfreeze a resident logical host: resume processes, re-deliver
    deferred kernel-server/program-manager operations, restart outstanding
    sends. *)

val kernel_state_copy_span : t -> Logical_host.t -> Time.span
(** Time to copy the logical host's kernel-server and program-manager
    state: 14 ms plus 9 ms per process and address space (Section 4.1). *)

val extract_lh : ?page_source:Ids.pid -> t -> Logical_host.t -> lh_state
(** Remove a frozen logical host from this kernel: scrub queued requests
    (remote senders will retransmit; local senders' sends restart through
    the remote path), collect its outstanding sends, and drop the binding.
    The inverse of {!install_lh}; re-installing locally is the migration
    failure path.

    [page_source] (copy-on-reference only) names this kernel's own
    kernel server: the memory image stays behind, this kernel keeps
    serving the departed host's page faults ({!serves_pages_for}), and
    the installing kernel evicts every page and faults them back from
    that pid on first touch. *)

val install_lh : t -> lh_state -> Logical_host.t
(** Adopt an extracted logical host (still frozen) and bind it here.
    Consumes a matching reservation if one exists. *)

val reserve_lh : t -> temp_lh:Ids.lh_id -> bytes:int -> bool
(** Destination-side step 2 of migration (Section 3.1.1): set aside
    memory and answer [Where_is] for the new copy's temporary id so the
    source can address this kernel's server through it. Returns [false]
    if memory is insufficient.

    The reservation carries a lease of {!Os_params.reservation_ttl}:
    every request addressed through the reserved id (each copy round's
    acknowledgement ping) refreshes it, and a reservation whose source
    goes silent — crashed mid-pre-copy, never to install — expires,
    releasing the memory and bumping the ["reservations_expired"]
    counter. *)

val cancel_reservation : t -> temp_lh:Ids.lh_id -> unit

val reservation_count : t -> int
(** Reservations currently held — zero on a quiescent kernel; a positive
    steady-state value is a leak. *)

val forward_count : t -> int
(** Forwarding addresses currently installed (Demos/MP ablation). *)

(** {1 Copy-on-reference page faulting}

    The Accent/Demos-style strategy the paper argues against: only
    kernel state moves at migration time; the source keeps the memory
    image and the destination pulls pages on first touch. The source
    dependency persists until every page has been referenced — and a
    source crash strands the program ({!shutdown} drops retained
    pages). *)

val serves_pages_for : t -> Ids.lh_id -> bool
(** Does this kernel retain (and serve) the pages of a departed logical
    host? *)

val page_source_count : t -> int
(** How many departed logical hosts this kernel still serves pages
    for — each one a live residual dependency. *)

val fault_source : t -> Ids.lh_id -> Ids.pid option
(** Destination side: the old host's kernel server a resident
    copy-on-reference logical host still faults its pages from, if any
    pages may remain there. *)

val service_page_faults : t -> self:Ids.pid -> lh:Ids.lh_id -> unit
(** Drain the first-touch fault queues of [lh]'s spaces and pull the
    faulted pages from the registered source in one batched
    [Ks_fault_pages] request, blocking the caller until the page data
    has crossed the wire. Must run in the faulting process' context at a
    scheduling boundary (it performs blocking IPC). No-op when [lh] has
    no fault source or nothing is queued; if the source no longer
    answers, the dependency is dropped so the program can continue. *)

(** {1 Kernel-server request vocabulary}

    Sent to [Ids.kernel_server_of lh] for any logical host resident on
    (or reserved at) the target kernel. *)

type Message.body +=
  | Ks_ping
  | Ks_pong
  | Ks_query_load
  | Ks_load of { cpu_busy : float; memory_free : int; guests : int }
  | Ks_install of { state : lh_state; deadline : Time.t option }
      (** Final migration step: install the state, unfreeze, announce the
          new binding, reply {!Ks_installed}. A [deadline] is the source's
          freeze budget expressed as an absolute instant: an install
          arriving after it is refused rather than installed late, so a
          committed migration provably resumed within its budget. *)
  | Ks_installed of { resumed_at : Time.t }
      (** Success reply to {!Ks_install}; [resumed_at] is the instant the
          new copy was unfrozen, closing the freeze-time measurement. *)
  | Ks_destroy_lh of Ids.lh_id
  | Ks_fault_pages of { lh : Ids.lh_id; pages : int; bytes : int }
      (** Copy-on-reference page pull: sent to the old host's kernel
          server, which transfers [bytes] back and replies [Ks_ok] —
          or [Ks_refused] if it retains no pages for [lh]. *)
  | Ks_xfer_manifest of {
      lh : Ids.lh_id;
      label : string;
      digests : (int * int) array;
    }
      (** Manifest-first bulk copy (content caching on): before a bulk
          transfer for [lh], the source names each chunk as a
          (digest, bytes) pair. The destination's kernel server probes
          its content cache, emits the {!Xfer_manifest} event triple,
          and replies {!Ks_xfer_need}; the source then ships only the
          missing bytes. Misses are inserted as they are scanned, so
          repeats within one manifest (every zero page after the first)
          already dedup. *)
  | Ks_xfer_need of { missing : int; bytes : int }
      (** Reply to {!Ks_xfer_manifest}: [missing] chunks totalling
          [bytes] bytes are not cached and must cross the wire. *)
  | Ks_content_announce of {
      image : string;
      first : int;
      count : int;
      chunk_bytes : int;
    }
      (** Multicast by the file server to {!Ids.content_group} after
          serving an image load: chunks [first, first+count) of [image]
          just crossed the shared wire, so every listening kernel
          inserts their digests — one host's cold load warms the whole
          cluster (no reply; group sends are best-effort). *)
  | Ks_ok
  | Ks_refused of string

(** {1 Content-addressed transfer} *)

val content_cache : t -> Content_cache.t
(** This host's content cache; disabled (budget 0) unless
    [Os_params.content_cache_bytes] says otherwise. *)

val content_caching : t -> bool
(** [Content_cache.enabled (content_cache t)]. *)

(** {1 Statistics} *)

val stat : t -> string -> int
(** Named counters: ["sends"], ["sends_failed"], ["retransmissions"],
    ["where_is"], ["reply_pending"], ["duplicates"], ["packets_rx"],
    ["replies_discarded_frozen"], ["ks_pings"],
    ["reservations_expired"], ["reboots"], ["page_faults"] (batched
    fault requests issued by a copy-on-reference destination),
    ["page_fault_serves"] (batches served by an old host). Content
    caching adds ["xfer_chunks_hit"] / ["xfer_chunks_miss"] /
    ["xfer_bytes_deduped"] (manifest scans at this host),
    ["xfer_bytes_shipped"] / ["xfer_bytes_saved"] /
    ["xfer_manifest_bytes"] (transfers this host sourced) and
    ["img_announced_chunks"]. Unknown names are 0. *)

val bump_by : t -> string -> int -> unit
(** Add [n] to a named counter (creating it at [n]) — the hook
    transfer layers use to account bytes-on-wire. [n = 0] is a no-op. *)
