(** Pluggable placement policies over the shared candidate spine.

    The paper's host selection is one multicast and the first answer —
    "performs well at minimal cost for reasonably small systems"
    (Section 2.1). A [Placement.t] keeps that bidding mechanic
    ({!Scheduler.Spine}) but makes the {e scheduling domain} a policy
    decision, the same way {!Migration.Strategy} made the copy
    discipline one: a policy is a record of [query]/[bid]/[select]/
    [on_result] hooks over the spine, resolved from the symbolic
    {!Config.placement} once per cluster and carried in {!Context.t}.

    Three built-in policies:

    - [flat] — the paper verbatim: one global multicast domain
      ({!Ids.program_manager_group}). Byte-identical traces to the
      pre-refactor scheduler.
    - [pods] — the cluster partitioned into pods of at most [pod_size]
      workstations, each with its own scheduling group
      ({!Ids.pod_group}); a cross-pod tier routes by gossiped load
      summaries (EWMA of queue depth and idle-host count, refreshed on a
      seeded cycle like {!Health} probes) and falls back to the global
      group so stale summaries cost latency, never liveness.
    - [predictive] — [pods] plus exponential-smoothing arrival
      prediction per pod: a pod whose current occupancy plus predicted
      arrivals would exceed its guest capacity before the next gossip
      refresh is skipped {e before} it saturates.

    The pod policies also maintain per-pod {e credit windows} — AIMD
    counters that {!Serve}-style admission can shrink when queue-wait
    crosses its SLO threshold ({!note_queue_pressure}) — and per-pod
    in-flight accounting fed by {!select_any}/{!release}. All state is
    per-instance (one per cluster), so parallel replicas stay
    deterministic. *)

type t

val of_config : Config.t -> t
(** Resolve [cfg.placement] into a runtime policy instance. One instance
    per cluster: the instance holds the pod map, gossip summaries and
    credit windows. *)

val flat : unit -> t
(** A fresh flat-multicast instance (the {!Context.t} default). *)

val make : ?max_guests:int -> Config.placement -> t
(** [of_config] without a full config; [max_guests] sizes pod guest
    capacity (credit-window ceiling and saturation tests). *)

val name : t -> string
(** ["flat"], ["pods"] or ["predictive"]. *)

val placement : t -> Config.placement

val pod_size : t -> int
(** Configured pod capacity; [0] under the flat policy. *)

(** {1 Topology}

    The cluster registers each program-manager host into its pod at
    creation time (and re-registers on reboot). The flat policy ignores
    registration. *)

val register_host : t -> host:string -> pod:int -> unit
val pod_of : t -> host:string -> int option
val pod_count : t -> int
val pod_group_of : t -> host:string -> Ids.pid option

(** {1 Selection}

    The policy-dispatching analogues of the deprecated
    {!Scheduler.select_any}/{!Scheduler.select_host}: the policy's
    [query] hook yields an ordered list of multicast tiers, and each
    tier is offered through the spine until one yields a first
    responder. Trace output: one [Sched_query] (and on silence one
    [Sched_timeout]) per tier tried. *)

val select_any :
  ?health:Health.t ->
  ?exclude:string list ->
  t ->
  Kernel.t ->
  Config.t ->
  self:Ids.pid ->
  bytes:int ->
  (Scheduler.selection, string) result

val select_host :
  ?health:Health.t ->
  t ->
  Kernel.t ->
  Config.t ->
  self:Ids.pid ->
  host:string ->
  (Scheduler.selection, string) result

val survey_groups : t -> Ids.pid list
(** The multicast groups a load-balancing survey should sweep: each
    non-empty pod's group under a sharded policy, the global
    program-manager group under the flat one. *)

(** {1 Feedback}

    Selection increments the destination pod's in-flight count;
    completion (or placement failure) must release it. *)

val release : t -> host:string -> unit
(** The program placed on [host] finished (or was torn down). *)

val note_result : t -> host:string -> ok:bool -> unit
(** Dispatch the policy's [on_result] hook. The built-in policies
    release the in-flight credit on failure and leave success to the
    caller's explicit {!release} (a served program holds its credit for
    its whole lifetime). *)

val note_pod_load : t -> pod:int -> queue:int -> idle:int -> unit
(** Fold one gossip observation — total guest programs and idle-host
    count seen in a pod survey — into the pod's EWMA summaries. *)

(** {1 Backpressure} *)

val admit : t -> bool
(** Whether any pod still has credit ([true] always under flat). Serve
    admission sheds when this is [false]. *)

val note_queue_pressure : t -> over:bool -> unit
(** AIMD credit adjustment: [over = true] (queue-wait EWMA past the SLO
    shed threshold) halves every pod's window (floor 1); [over = false]
    grows each window by 1 up to pod guest capacity. *)

val credit_windows : t -> (string * float) list

(** {1 Introspection} *)

val selections : t -> int
(** Committed placements through this instance — the coverage counter
    behind the fuzz report's placement dimension. *)

val timeouts : t -> int
(** Tier offers that closed without a usable bid. *)

val pod_stats : t -> (string * Json_min.t) list
(** Per-pod summary snapshot for metrics reports. *)
