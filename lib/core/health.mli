(** Suspicion-based failure detection over kernel IPC.

    A cluster-wide view of which workstations are reachable, maintained
    by one observer kernel probing every watched peer's kernel server on
    a fixed cadence. The probe timeout adapts to the observed round-trip
    time (EWMA — a phi-accrual detector simplified for deterministic
    virtual time), and the three-state view carries hysteresis:
    consecutive misses escalate [Alive -> Suspect -> Dead], and several
    consecutive hits are required to de-escalate, so a
    partition-then-heal does not flap the view.

    The view is advisory and strictly opt-in: nothing consults it unless
    a [?health] argument is threaded in ({!Scheduler}, {!Balancer},
    {!Migration}), so a cluster without a detector behaves byte-for-byte
    as before. *)

type state = Alive | Suspect | Dead

val state_name : state -> string
val pp_state : Format.formatter -> state -> unit

type config = {
  probe_interval : Time.span;  (** Cadence per peer (default 500 ms). *)
  rtt_alpha : float;  (** EWMA weight of the newest RTT sample. *)
  timeout_multiplier : float;  (** Probe timeout = multiplier × EWMA... *)
  timeout_margin : Time.span;  (** ... + margin, clamped to... *)
  min_timeout : Time.span;
  max_timeout : Time.span;  (** ... (also the cold-start timeout). *)
  suspect_after : int;  (** Consecutive misses before [Suspect]. *)
  dead_after : int;  (** Consecutive misses before [Dead]. *)
  recover_after : int;
      (** Consecutive hits before a [Suspect]/[Dead] peer returns to
          [Alive] — the anti-flap hysteresis. *)
}

val default_config : config

type t

type Tracer.event +=
  | Health_transition of {
      observer : string;
      peer : string;
      from_ : state;
      to_ : state;
    }  (** Emitted (category ["health"]) on every state change. *)

val start :
  ?config:config -> Kernel.t -> peers:(string * Ids.lh_id) list -> t
(** [start kernel ~peers] spawns one prober process per peer on
    [kernel] (conventionally the file server: fault plans only target
    workstations, so the observer itself never crashes). Each peer is
    [(host_name, host_lh_id)]; probes go to [Ids.kernel_server_of] that
    id. Probe start times are staggered deterministically across one
    interval. *)

val stop : t -> unit
(** Kill the probers. The last computed view remains readable. *)

val observer : t -> string

val state : t -> string -> state
(** Current view of a host. Unwatched hosts are [Alive]. *)

val is_alive : t -> string -> bool
val is_dead : t -> string -> bool
val dead_hosts : t -> string list
val suspect_hosts : t -> string list

val summary : t -> (string * state) list
(** Every watched peer with its current state, in watch order. *)

val transitions : t -> int
(** State changes observed so far. *)

val false_suspicions : t -> int
(** [Suspect -> Alive] recoveries: peers suspected but never dead. *)

val probes : t -> int
(** Total probes issued. *)

val rtt_ms : t -> string -> float option
(** EWMA round-trip time to a peer, if at least one probe succeeded. *)
