(** Program-manager wire vocabulary and migration outcome records.

    The request/reply pairs between workstations' program managers: host
    selection queries (Section 2.1), program creation, completion waits,
    and the destination-side steps of migration — reservation
    (Section 3.1.1) and program-manager state adoption (Section 3.1.3).
    Migration results are summarized in a {!migration_outcome}, the
    record every migration bench reads its numbers from. *)

(** {1 Migration outcomes} *)

type round = {
  r_bytes : int;  (** Bytes copied in this pre-copy round. *)
  r_span : Time.span;  (** How long the round took (program running). *)
}

type migration_outcome = {
  m_prog : string;
  m_from : string;
  m_dest : string;
  m_strategy : string;
  m_rounds : round list;  (** First element is the full initial copy. *)
  m_final_bytes : int;  (** Residue copied while frozen. *)
  m_freeze_start : Time.t;
  m_resumed_at : Time.t;  (** New copy unfrozen (destination clock). *)
  m_kernel_state : Time.span;  (** 14 ms + 9 ms/object component. *)
  m_total : Time.span;  (** Whole migration, step 1 through commit. *)
  m_faultin_bytes : int;
      (** VM-flush only: bytes expected to move a second time, server to
          new host, on demand (Section 3.2's double-transfer cost). *)
}

val freeze_span : migration_outcome -> Time.span
(** The headline metric: how long the program was actually stopped. *)

val precopied_bytes : migration_outcome -> int
(** Total bytes moved before freezing. *)

val pp_outcome : Format.formatter -> migration_outcome -> unit

(** {1 Migration strategies} *)

type strategy =
  | Precopy  (** The paper's contribution (Section 3.1.2). *)
  | Freeze_and_copy
      (** The "simplest approach" of Section 3.1: freeze first, then copy
          everything — the baseline pre-copy is measured against. *)
  | Copy_on_reference
      (** The Accent/Demos-style alternative the paper argues against:
          move only the kernel state, leave the memory image behind, and
          fault pages across from the old host on first touch. Minimal
          freeze window, but the program stays dependent on its source
          host for as long as unreferenced pages remain there. *)
  | Vm_flush of { page_server : Ids.pid }
      (** Section 3.2: flush dirty pages to a network page server
          (repeatedly, pre-copy style), freeze, flush the residue; the
          new host demand-faults pages back in. Dirty-then-referenced
          pages cross the wire twice. *)

val strategy_name : strategy -> string

val strategy_of_config : Config.migration_strategy -> strategy
(** Lift the configuration-level strategy choice (which cannot name
    per-cluster pids, so excludes [Vm_flush]) into the wire vocabulary. *)

(** {1 Program-manager messages} *)

type Message.body +=
  | Pm_query_candidates of { bytes : int; exclude : string list }
      (** Multicast to the PM group: who can take a program needing
          [bytes] of memory? Unwilling hosts stay silent; [exclude] lists
          hosts that must not answer — the querying host itself during
          migration, plus destinations that already failed when a retry
          re-runs selection. *)
  | Pm_query_host of { host : string }
      (** "[prog @ machine]": only the named host answers. *)
  | Pm_candidate of { host : string; free_memory : int; guests : int }
  | Pm_create_program of {
      prog : string;
      env : Env.t;
      priority : Cpu.priority;
      explicit_host : bool;
          (* "prog @ machine": the user picked this host deliberately,
             so guest admission control does not second-guess it *)
    }
      (** Create, load and start a program. Answered with {!Pm_created}
          after the image is loaded — the requester's patience is kept by
          reply-pending packets, exactly like any long V operation. *)
  | Pm_created of {
      root : Ids.pid;
      lh : Ids.lh_id;
      setup : Time.span;  (** Environment-creation time (E-exec split). *)
      load : Time.span;  (** Image-load time (E-exec split). *)
    }
  | Pm_create_failed of string
  | Pm_wait of { lh : Ids.lh_id }
      (** Block until the program exits; answered with
          {!Progtable.Pm_exited}. *)
  | Pm_no_such_program of Ids.lh_id
  | Pm_reserve of { temp_lh : Ids.lh_id; lh : Ids.lh_id; bytes : int }
      (** Migration step 2: set aside memory and the temporary
          logical-host id at the destination. *)
  | Pm_reserved
  | Pm_refused of string
  | Pm_cancel_reserve of { temp_lh : Ids.lh_id }
  | Pm_adopt of Progtable.program
      (** Hand over the program-manager state of a migrating program. *)
  | Pm_adopted
  | Pm_migrate of {
      lh : Ids.lh_id option;  (** [None]: all guest programs. *)
      dest : string option;  (** [None]: pick via the scheduler. *)
      force_destroy : bool;  (** The paper's [-n] flag. *)
      strategy : strategy;
    }
  | Pm_migrated of migration_outcome list
  | Pm_migrate_failed of string
  | Pm_suspend of { lh : Ids.lh_id }
      (** Freeze a program in place (Section 2's suspension facility —
          the same freeze machinery migration uses, minus the copy).
          Answered with {!Pm_ok}. *)
  | Pm_resume of { lh : Ids.lh_id }
  | Pm_destroy of { lh : Ids.lh_id }
      (** Terminate a program wherever it runs. *)
  | Pm_list_programs
  | Pm_programs of {
      host : string;
      programs : (string * Ids.lh_id * string) list;
      guests : Ids.lh_id list;  (* running guest programs, migratable *)
    }  (** (program, logical host, status) per entry. *)
  | Pm_ok
