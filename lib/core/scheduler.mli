(** Decentralized host selection.

    "When the user specifies [*], a query is sent requesting a response
    from those hosts with a reasonable amount of processor and memory
    resources available ... it simply selects the program manager that
    responds first since that is generally the least loaded host. This
    simple mechanism provides a decentralized implementation of
    scheduling that performs well at minimal cost for reasonably small
    systems." (Section 2.1.) There is no central queue and no global
    state: selection is one multicast and the first answer. *)

(** Typed trace events: one [Sched_query] per multicast offer request,
    one [Sched_bid] per volunteer heard (in response order), one
    [Sched_select] when a destination is committed to. [host] is the
    querying host; [Sched_query.bytes] is 0 for named-host queries. *)
type Tracer.event +=
  | Sched_query of { host : string; bytes : int }
  | Sched_bid of {
      host : string;
      bidder : string;
      free_memory : int;
      guests : int;
      responded_in : Time.span;
    }
  | Sched_select of { host : string; dest : string }

type selection = {
  s_pm : Ids.pid;  (** Program manager to send the creation request to. *)
  s_host : string;
  s_free_memory : int;
  s_guests : int;
  s_responded_in : Time.span;
      (** Query-to-answer latency — the paper's measured 23 ms. *)
}

val select_any :
  ?health:Health.t ->
  ?exclude:string list ->
  Kernel.t ->
  Config.t ->
  self:Ids.pid ->
  bytes:int ->
  (selection, string) result
(** "[@ *]": multicast to the program-manager group, take the first
    responder. [exclude] omits hosts (a migrating program must not pick
    its own workstation, and a retry must not re-pick a destination
    that just failed). Blocking; errors if nobody volunteers within the
    configured timeout.

    With a [health] view, hosts it marks [Dead] are excluded from the
    query, and a bid from a [Suspect] host is deprioritized: it is held
    as a fallback while selection briefly waits for an [Alive] bidder,
    instead of being trusted immediately or ignored for the full
    timeout. *)

val select_host :
  ?health:Health.t ->
  Kernel.t -> Config.t -> self:Ids.pid -> host:string ->
  (selection, string) result
(** "[@ machine]": only the named host may answer. With a [health] view
    that marks the host [Dead], fails immediately instead of waiting out
    the select timeout. *)

val candidates :
  ?exclude:string list ->
  Kernel.t ->
  Config.t ->
  self:Ids.pid ->
  bytes:int ->
  window:Time.span ->
  selection list
(** Every volunteer heard within the window, in response order — the
    load-survey building block ("facilities for querying ... all
    workstations in the system", Section 2). *)
