(** Decentralized host selection.

    "When the user specifies [*], a query is sent requesting a response
    from those hosts with a reasonable amount of processor and memory
    resources available ... it simply selects the program manager that
    responds first since that is generally the least loaded host. This
    simple mechanism provides a decentralized implementation of
    scheduling that performs well at minimal cost for reasonably small
    systems." (Section 2.1.) There is no central queue and no global
    state: selection is one multicast and the first answer.

    The mechanics — multicast an offer to a scheduling group, parse the
    bids, commit to one — live in {!Spine} and are shared by every
    {!Placement} policy; the policies differ only in which group(s) they
    query and in what order. The top-level [select_any]/[select_host]/
    [candidates] entry points are the pre-{!Placement} flat API, kept as
    deprecated shims over the spine. *)

(** Typed trace events: one [Sched_query] per multicast offer request,
    one [Sched_bid] per volunteer heard (in response order), one
    [Sched_select] when a destination is committed to, and one
    [Sched_timeout] when a query's window closes without a usable bid —
    distinguishing "no idle host volunteered" from silence caused by
    lost frames. [host] is the querying host; [Sched_query.bytes] is 0
    for named-host queries; [Sched_timeout.target] is ["*"] for
    group-wide offers, a pod label for pod tiers, or the host name for
    named-host queries. *)
type Tracer.event +=
  | Sched_query of { host : string; bytes : int }
  | Sched_bid of {
      host : string;
      bidder : string;
      free_memory : int;
      guests : int;
      responded_in : Time.span;
    }
  | Sched_select of { host : string; dest : string }
  | Sched_timeout of { host : string; target : string }

type selection = {
  s_pm : Ids.pid;  (** Program manager to send the creation request to. *)
  s_host : string;
  s_free_memory : int;
  s_guests : int;
  s_responded_in : Time.span;
      (** Query-to-answer latency — the paper's measured 23 ms. *)
}

(** The shared candidate spine: the mechanics every placement policy is
    built from. One call is one multicast offer to one scheduling group
    plus the first-responder collection over its bids. *)
module Spine : sig
  val select_in_group :
    ?health:Health.t ->
    ?accept:(host:string -> bool) ->
    ?exclude:string list ->
    ?label:string ->
    Kernel.t ->
    Config.t ->
    group:Ids.pid ->
    self:Ids.pid ->
    bytes:int ->
    (selection, string) result
  (** Multicast an offer to [group] and take the first acceptable
      responder. [exclude] omits hosts; [accept] lets a policy veto
      bidders (a vetoed bid is kept as a timeout-capped fallback, like a
      [Suspect] bid under [health]); [label] names the tier in the
      [Sched_timeout] event. With [group = Ids.program_manager_group],
      no [accept], and default [label], this is byte-identical to the
      pre-{!Placement} [select_any]. *)

  val select_host :
    ?health:Health.t ->
    Kernel.t ->
    Config.t ->
    self:Ids.pid ->
    host:string ->
    (selection, string) result
  (** "[@ machine]": only the named host may answer. With a [health]
      view that marks the host [Dead], fails immediately instead of
      waiting out the select timeout. *)

  val candidates :
    ?exclude:string list ->
    ?group:Ids.pid ->
    Kernel.t ->
    Config.t ->
    self:Ids.pid ->
    bytes:int ->
    window:Time.span ->
    selection list
  (** Every volunteer heard within the window, in response order — the
      load-survey building block ("facilities for querying ... all
      workstations in the system", Section 2). [group] defaults to the
      global program-manager group. *)
end

val select_any :
  ?health:Health.t ->
  ?exclude:string list ->
  Kernel.t ->
  Config.t ->
  self:Ids.pid ->
  bytes:int ->
  (selection, string) result
[@@deprecated
  "use Context-carried Placement.select_any (or Scheduler.Spine.select_in_group)"]
(** "[@ *]": multicast to the program-manager group, take the first
    responder. [exclude] omits hosts (a migrating program must not pick
    its own workstation, and a retry must not re-pick a destination
    that just failed). Blocking; errors if nobody volunteers within the
    configured timeout.

    With a [health] view, hosts it marks [Dead] are excluded from the
    query, and a bid from a [Suspect] host is deprioritized: it is held
    as a fallback while selection briefly waits for an [Alive] bidder,
    instead of being trusted immediately or ignored for the full
    timeout.

    Deprecated: callers holding a {!Context.t} should dispatch through
    its placement policy; this shim is the flat policy hard-wired. *)

val select_host :
  ?health:Health.t ->
  Kernel.t -> Config.t -> self:Ids.pid -> host:string ->
  (selection, string) result
[@@deprecated
  "use Context-carried Placement.select_host (or Scheduler.Spine.select_host)"]
(** "[@ machine]": only the named host may answer. With a [health] view
    that marks the host [Dead], fails immediately instead of waiting out
    the select timeout. *)

val candidates :
  ?exclude:string list ->
  Kernel.t ->
  Config.t ->
  self:Ids.pid ->
  bytes:int ->
  window:Time.span ->
  selection list
[@@deprecated "use Scheduler.Spine.candidates"]
(** Every volunteer heard within the window, in response order. *)
