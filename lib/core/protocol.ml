type round = { r_bytes : int; r_span : Time.span }

type migration_outcome = {
  m_prog : string;
  m_from : string;
  m_dest : string;
  m_strategy : string;
  m_rounds : round list;
  m_final_bytes : int;
  m_freeze_start : Time.t;
  m_resumed_at : Time.t;
  m_kernel_state : Time.span;
  m_total : Time.span;
  m_faultin_bytes : int;
}

let freeze_span o = Time.sub o.m_resumed_at o.m_freeze_start

let precopied_bytes o = List.fold_left (fun a r -> a + r.r_bytes) 0 o.m_rounds

let pp_outcome ppf o =
  Format.fprintf ppf
    "%s: %s -> %s [%s] rounds=%d precopied=%dKB final=%dKB freeze=%a total=%a"
    o.m_prog o.m_from o.m_dest o.m_strategy (List.length o.m_rounds)
    (precopied_bytes o / 1024)
    (o.m_final_bytes / 1024)
    Time.pp (freeze_span o) Time.pp o.m_total

type strategy =
  | Precopy
  | Freeze_and_copy
  | Copy_on_reference
  | Vm_flush of { page_server : Ids.pid }

let strategy_name = function
  | Precopy -> "precopy"
  | Freeze_and_copy -> "freeze-and-copy"
  | Copy_on_reference -> "copy-on-reference"
  | Vm_flush _ -> "vm-flush"

let strategy_of_config = function
  | Config.Pre_copy -> Precopy
  | Config.Freeze_and_copy -> Freeze_and_copy
  | Config.Copy_on_reference -> Copy_on_reference

type Message.body +=
  | Pm_query_candidates of { bytes : int; exclude : string list }
  | Pm_query_host of { host : string }
  | Pm_candidate of { host : string; free_memory : int; guests : int }
  | Pm_create_program of {
      prog : string;
      env : Env.t;
      priority : Cpu.priority;
      explicit_host : bool;
    }
  | Pm_created of {
      root : Ids.pid;
      lh : Ids.lh_id;
      setup : Time.span;
      load : Time.span;
    }
  | Pm_create_failed of string
  | Pm_wait of { lh : Ids.lh_id }
  | Pm_no_such_program of Ids.lh_id
  | Pm_reserve of { temp_lh : Ids.lh_id; lh : Ids.lh_id; bytes : int }
  | Pm_reserved
  | Pm_refused of string
  | Pm_cancel_reserve of { temp_lh : Ids.lh_id }
  | Pm_adopt of Progtable.program
  | Pm_adopted
  | Pm_migrate of {
      lh : Ids.lh_id option;
      dest : string option;
      force_destroy : bool;
      strategy : strategy;
    }
  | Pm_migrated of migration_outcome list
  | Pm_migrate_failed of string
  | Pm_suspend of { lh : Ids.lh_id }
  | Pm_resume of { lh : Ids.lh_id }
  | Pm_destroy of { lh : Ids.lh_id }
  | Pm_list_programs
  | Pm_programs of {
      host : string;
      programs : (string * Ids.lh_id * string) list;
      guests : Ids.lh_id list;  (* running guest programs, migratable *)
    }
  | Pm_ok
