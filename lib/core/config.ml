type migration_strategy = Pre_copy | Freeze_and_copy | Copy_on_reference

let migration_strategy_name = function
  | Pre_copy -> "precopy"
  | Freeze_and_copy -> "freeze-and-copy"
  | Copy_on_reference -> "copy-on-reference"

let migration_strategy_of_string = function
  | "precopy" | "pre-copy" -> Some Pre_copy
  | "freeze" | "freeze-and-copy" -> Some Freeze_and_copy
  | "cor" | "copy-on-reference" -> Some Copy_on_reference
  | _ -> None

type t = {
  os : Os_params.t;
  env_setup : Time.span;
  env_destroy : Time.span;
  candidacy_delay : Time.span;
  candidacy_jitter : Time.span;
  select_timeout : Time.span;
  max_guests : int;
  min_free_memory : int;
  busy_threshold : float;
  precopy_min_residue : int;
  precopy_improvement : float;
  precopy_max_rounds : int;
  migration_retries : int;
  kernel_state_base : Time.span;
  kernel_state_per_object : Time.span;
  strategy : migration_strategy;
}

let default =
  {
    os = Os_params.default;
    env_setup = Time.of_ms 25.;
    env_destroy = Time.of_ms 15.;
    candidacy_delay = Time.of_ms 21.5;
    candidacy_jitter = Time.of_ms 4.;
    select_timeout = Time.of_sec 2.;
    max_guests = 3;
    min_free_memory = 128 * 1024;
    busy_threshold = 0.5;
    precopy_min_residue = 8 * 1024;
    precopy_improvement = 0.7;
    precopy_max_rounds = 8;
    migration_retries = 0;
    kernel_state_base = Time.of_ms 14.;
    kernel_state_per_object = Time.of_ms 9.;
    strategy = Pre_copy;
  }

let sum_env_spans t = Time.add t.env_setup t.env_destroy
