type migration_strategy = Pre_copy | Freeze_and_copy | Copy_on_reference

let migration_strategy_name = function
  | Pre_copy -> "precopy"
  | Freeze_and_copy -> "freeze-and-copy"
  | Copy_on_reference -> "copy-on-reference"

let migration_strategy_of_string = function
  | "precopy" | "pre-copy" -> Some Pre_copy
  | "freeze" | "freeze-and-copy" -> Some Freeze_and_copy
  | "cor" | "copy-on-reference" -> Some Copy_on_reference
  | _ -> None

type placement =
  | Flat_multicast
  | Pod_sharded of { pod_size : int }
  | Load_predictive of { pod_size : int; alpha : float }

let placement_name = function
  | Flat_multicast -> "flat"
  | Pod_sharded _ -> "pods"
  | Load_predictive _ -> "predictive"

let placement_of_string = function
  | "flat" | "flat-multicast" -> Some Flat_multicast
  | "pods" | "pod-sharded" -> Some (Pod_sharded { pod_size = 32 })
  | "predictive" | "load-predictive" ->
      Some (Load_predictive { pod_size = 32; alpha = 0.3 })
  | _ -> None

let placement_pod_size = function
  | Flat_multicast -> 0
  | Pod_sharded { pod_size } | Load_predictive { pod_size; _ } ->
      max 1 pod_size

(* A per-strategy migration deadline budget (Quest-V-style predictable
   migration): [bg_transfer] bounds the running copy phase, [bg_freeze]
   bounds the freeze window. [None] (the default everywhere) means
   unbounded — the paper's behavior. *)
type budget = { bg_freeze : Time.span; bg_transfer : Time.span }

type t = {
  os : Os_params.t;
  env_setup : Time.span;
  env_destroy : Time.span;
  candidacy_delay : Time.span;
  candidacy_jitter : Time.span;
  select_timeout : Time.span;
  max_guests : int;
  min_free_memory : int;
  busy_threshold : float;
  precopy_min_residue : int;
  precopy_improvement : float;
  precopy_max_rounds : int;
  migration_retries : int;
  kernel_state_base : Time.span;
  kernel_state_per_object : Time.span;
  strategy : migration_strategy;
  budget_precopy : budget option;
  budget_freeze_copy : budget option;
  budget_cor : budget option;
  budget_flush : budget option;
  budget_reselects : int;
  placement : placement;
}

let default =
  {
    os = Os_params.default;
    env_setup = Time.of_ms 25.;
    env_destroy = Time.of_ms 15.;
    candidacy_delay = Time.of_ms 21.5;
    candidacy_jitter = Time.of_ms 4.;
    select_timeout = Time.of_sec 2.;
    max_guests = 3;
    min_free_memory = 128 * 1024;
    busy_threshold = 0.5;
    precopy_min_residue = 8 * 1024;
    precopy_improvement = 0.7;
    precopy_max_rounds = 8;
    migration_retries = 0;
    kernel_state_base = Time.of_ms 14.;
    kernel_state_per_object = Time.of_ms 9.;
    strategy = Pre_copy;
    budget_precopy = None;
    budget_freeze_copy = None;
    budget_cor = None;
    budget_flush = None;
    budget_reselects = 0;
    placement = Flat_multicast;
  }

(* A budget profile sized for the paper's calibration: the freeze bound
   comfortably covers kernel-state copy plus a small residue at the 3 s/MB
   bulk rate, and the transfer bound caps the whole running copy phase.
   Freeze-and-copy moves the entire image frozen, so its freeze budget is
   the transfer-scale one. *)
let with_default_budgets t =
  {
    t with
    budget_precopy =
      Some { bg_freeze = Time.of_ms 600.; bg_transfer = Time.of_sec 30. };
    budget_freeze_copy =
      Some { bg_freeze = Time.of_sec 30.; bg_transfer = Time.of_sec 30. };
    budget_cor =
      Some { bg_freeze = Time.of_ms 600.; bg_transfer = Time.of_sec 30. };
    budget_flush =
      Some { bg_freeze = Time.of_ms 600.; bg_transfer = Time.of_sec 30. };
    budget_reselects = max 1 t.budget_reselects;
  }

let sum_env_spans t = Time.add t.env_setup t.env_destroy
