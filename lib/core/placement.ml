(* Pluggable placement policies over the shared candidate spine
   (Scheduler.Spine). A policy decides which scheduling group(s) to
   offer work to and in what order; the spine does the actual
   multicast/bid/first-responder mechanics, so every policy inherits the
   paper's decentralized bidding within whatever domain it picks.

   [flat_multicast] is the paper's scheduler verbatim: one global
   multicast domain. [pod_sharded] partitions the cluster into pods of
   at most [pod_size] workstations, each its own multicast domain, and
   routes between pods by gossiped load summaries (EWMA of queue depth
   and idle-host count). [load_predictive] additionally smooths the
   observed placement arrival rate per pod and skips pods whose
   predicted occupancy would saturate them before their next gossip
   refresh. *)

type pod = {
  pd_index : int;
  pd_group : Ids.pid;
  pd_label : string;
  mutable pd_hosts : int;
  mutable pd_queue_ewma : float;  (* gossiped queue depth (guest programs) *)
  mutable pd_idle_ewma : float;  (* gossiped idle-host count *)
  mutable pd_inflight : int;  (* placements outstanding via this pod *)
  mutable pd_rate_ewma : float;  (* smoothed placements/s routed here *)
  mutable pd_last_select : Time.t option;
  mutable pd_window : float;  (* credit window (AIMD backpressure) *)
  mutable pd_gossips : int;
}

type tier = { t_group : Ids.pid; t_label : string }

type t = {
  p_placement : Config.placement;
  p_name : string;
  p_pod_size : int;
  p_max_guests : int;
  p_alpha : float;
  mutable p_pods : pod array;  (* empty under the flat policy *)
  p_pod_of : (string, int) Hashtbl.t;
  mutable p_selections : int;
  mutable p_timeouts : int;
  mutable p_policy : policy;
}

and policy = {
  pol_name : string;
  pol_query : t -> bytes:int -> tier list;
      (* Ordered multicast tiers to offer the program to. *)
  pol_bid : (t -> host:string -> bool) option;
      (* Optional bidder veto, folded into the spine's acceptance test.
         [None] keeps the spine on the exact pre-refactor collect path. *)
  pol_select : t -> now:Time.t -> Scheduler.selection -> unit;
      (* A destination was committed to. *)
  pol_on_result : t -> host:string -> ok:bool -> unit;
      (* The placed program finished ([ok]) or its placement failed. *)
}

let name t = t.p_name
let placement t = t.p_placement
let selections t = t.p_selections
let timeouts t = t.p_timeouts
let pod_count t = Array.length t.p_pods

let pod_of t ~host = Hashtbl.find_opt t.p_pod_of host

let pod_stats t =
  Array.to_list t.p_pods
  |> List.map (fun pd ->
         ( pd.pd_label,
           Json_min.Obj
             [
               ("hosts", Json_min.Num (float_of_int pd.pd_hosts));
               ("queue_ewma", Num pd.pd_queue_ewma);
               ("idle_ewma", Num pd.pd_idle_ewma);
               ("inflight", Num (float_of_int pd.pd_inflight));
               ("window", Num pd.pd_window);
               ("gossips", Num (float_of_int pd.pd_gossips));
             ] ))

(* --- runtime state updates ------------------------------------------- *)

let pod_capacity t pd = float_of_int (pd.pd_hosts * t.p_max_guests)

let ensure_pod t i =
  let n = Array.length t.p_pods in
  if i >= n then begin
    let fresh j =
      {
        pd_index = j;
        pd_group = Ids.pod_group j;
        pd_label = Printf.sprintf "pod-%d" j;
        pd_hosts = 0;
        pd_queue_ewma = 0.;
        pd_idle_ewma = 0.;
        pd_inflight = 0;
        pd_rate_ewma = 0.;
        pd_last_select = None;
        pd_window = 0.;
        pd_gossips = 0;
      }
    in
    t.p_pods <-
      Array.init (i + 1) (fun j -> if j < n then t.p_pods.(j) else fresh j)
  end;
  t.p_pods.(i)

let register_host t ~host ~pod =
  if t.p_pod_size > 0 then begin
    let pd = ensure_pod t pod in
    if not (Hashtbl.mem t.p_pod_of host) then begin
      pd.pd_hosts <- pd.pd_hosts + 1;
      (* An unheard-from pod starts optimistic: all hosts presumed idle,
         credit window wide open. Gossip corrects both. *)
      pd.pd_idle_ewma <- float_of_int pd.pd_hosts;
      pd.pd_window <- pod_capacity t pd
    end;
    Hashtbl.replace t.p_pod_of host pod
  end

let note_pod_load t ~pod ~queue ~idle =
  if pod >= 0 && pod < Array.length t.p_pods then begin
    let pd = t.p_pods.(pod) in
    let a = t.p_alpha in
    pd.pd_queue_ewma <-
      (a *. float_of_int queue) +. ((1. -. a) *. pd.pd_queue_ewma);
    pd.pd_idle_ewma <-
      (a *. float_of_int idle) +. ((1. -. a) *. pd.pd_idle_ewma);
    pd.pd_gossips <- pd.pd_gossips + 1
  end

let release t ~host =
  match pod_of t ~host with
  | Some i when i < Array.length t.p_pods ->
      let pd = t.p_pods.(i) in
      pd.pd_inflight <- Stdlib.max 0 (pd.pd_inflight - 1)
  | _ -> ()

let note_result t ~host ~ok = t.p_policy.pol_on_result t ~host ~ok

(* --- credit windows (backpressure) ----------------------------------- *)

let note_queue_pressure t ~over =
  Array.iter
    (fun pd ->
      let cap = Stdlib.max 1. (pod_capacity t pd) in
      if over then pd.pd_window <- Float.max 1. (pd.pd_window *. 0.5)
      else pd.pd_window <- Float.min cap (pd.pd_window +. 1.))
    t.p_pods

let has_credit pd = float_of_int pd.pd_inflight < pd.pd_window

let admit t =
  Array.length t.p_pods = 0 || Array.exists has_credit t.p_pods

let credit_windows t =
  Array.to_list t.p_pods |> List.map (fun pd -> (pd.pd_label, pd.pd_window))

(* --- the three built-in policies ------------------------------------- *)

let flat_tier = { t_group = Ids.program_manager_group; t_label = "*" }

let note_select_accounting t ~now (s : Scheduler.selection) =
  t.p_selections <- t.p_selections + 1;
  match pod_of t ~host:s.Scheduler.s_host with
  | Some i when i < Array.length t.p_pods ->
      let pd = t.p_pods.(i) in
      pd.pd_inflight <- pd.pd_inflight + 1;
      (match pd.pd_last_select with
      | Some last when Time.(now > last) ->
          let dt = Time.to_sec (Time.sub now last) in
          let inst = if dt > 0. then 1. /. dt else pd.pd_rate_ewma in
          let a = t.p_alpha in
          pd.pd_rate_ewma <- (a *. inst) +. ((1. -. a) *. pd.pd_rate_ewma)
      | _ -> ());
      pd.pd_last_select <- Some now
  | _ -> ()

let release_on_failure t ~host ~ok = if not ok then release t ~host

let flat_policy =
  {
    pol_name = "flat";
    pol_query = (fun _ ~bytes:_ -> [ flat_tier ]);
    pol_bid = None;
    pol_select = note_select_accounting;
    pol_on_result = release_on_failure;
  }

(* Pod routing score: lower is better. A pod with idle hosts and a short
   gossiped queue wins; outstanding placements we routed there since the
   last gossip count against it so a burst spreads instead of dogpiling
   the pod that looked emptiest one cycle ago. *)
let pod_score pd =
  (pd.pd_queue_ewma +. float_of_int pd.pd_inflight) /. (pd.pd_idle_ewma +. 1.)

(* How many pod tiers to try before falling back to the global group.
   Each extra tier costs at most one select timeout, so keep it small;
   the global fallback guarantees liveness under stale summaries. *)
let pod_fanout = 2

let ordered_pod_tiers t ~saturated =
  let pods =
    Array.to_list t.p_pods
    |> List.filter (fun pd -> pd.pd_hosts > 0 && not (saturated pd))
  in
  let scored = List.map (fun pd -> (pod_score pd, pd)) pods in
  let sorted =
    List.sort
      (fun (a, pa) (b, pb) ->
        let c = Float.compare a b in
        if c <> 0 then c else Int.compare pa.pd_index pb.pd_index)
      scored
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (_, pd) :: rest ->
        { t_group = pd.pd_group; t_label = pd.pd_label } :: take (n - 1) rest
  in
  take pod_fanout sorted @ [ flat_tier ]

let pod_policy =
  {
    pol_name = "pods";
    pol_query =
      (fun t ~bytes:_ ->
        ordered_pod_tiers t ~saturated:(fun pd -> not (has_credit pd)));
    pol_bid = None;
    pol_select = note_select_accounting;
    pol_on_result = release_on_failure;
  }

(* Predictive saturation test: occupancy now plus the arrivals the
   smoothed rate predicts before the next gossip refresh would exceed
   the pod's guest capacity. [lookahead] approximates the gossip cycle. *)
let predictive_lookahead = 1.0 (* seconds *)

let predicted_occupancy pd =
  pd.pd_queue_ewma +. float_of_int pd.pd_inflight
  +. (pd.pd_rate_ewma *. predictive_lookahead)

let predictive_policy =
  {
    pol_name = "predictive";
    pol_query =
      (fun t ~bytes:_ ->
        ordered_pod_tiers t ~saturated:(fun pd ->
            (not (has_credit pd))
            || predicted_occupancy pd >= pod_capacity t pd));
    pol_bid = None;
    pol_select = note_select_accounting;
    pol_on_result = release_on_failure;
  }

(* --- construction ---------------------------------------------------- *)

let make ?(max_guests = Config.default.Config.max_guests) placement =
  let pod_size = Config.placement_pod_size placement in
  let alpha =
    match placement with
    | Config.Load_predictive { alpha; _ } -> alpha
    | _ -> 0.3
  in
  let policy =
    match placement with
    | Config.Flat_multicast -> flat_policy
    | Config.Pod_sharded _ -> pod_policy
    | Config.Load_predictive _ -> predictive_policy
  in
  {
    p_placement = placement;
    p_name = policy.pol_name;
    p_pod_size = pod_size;
    p_max_guests = max_guests;
    p_alpha = alpha;
    p_pods = [||];
    p_pod_of = Hashtbl.create 64;
    p_selections = 0;
    p_timeouts = 0;
    p_policy = policy;
  }

let flat () = make Config.Flat_multicast
let of_config (cfg : Config.t) =
  make ~max_guests:cfg.Config.max_guests cfg.Config.placement

let pod_size t = t.p_pod_size
let pod_group_of t ~host =
  match pod_of t ~host with
  | Some i when i < Array.length t.p_pods -> Some t.p_pods.(i).pd_group
  | _ -> None

(* --- selection entry points ------------------------------------------ *)

let select_any ?health ?(exclude = []) t k (cfg : Config.t) ~self ~bytes =
  let now = Engine.now (Kernel.engine k) in
  let tiers = t.p_policy.pol_query t ~bytes in
  let accept =
    match t.p_policy.pol_bid with
    | None -> None
    | Some f -> Some (fun ~host -> f t ~host)
  in
  let rec go last_err = function
    | [] ->
        Option.value last_err ~default:(Error "no idle workstation volunteered")
    | tier :: rest -> (
        match
          Scheduler.Spine.select_in_group ?health ?accept ~exclude
            ~label:tier.t_label k cfg ~group:tier.t_group ~self ~bytes
        with
        | Ok s ->
            t.p_policy.pol_select t ~now s;
            Ok s
        | Error e ->
            t.p_timeouts <- t.p_timeouts + 1;
            go (Some (Error e)) rest)
  in
  go None tiers

let select_host ?health t k (cfg : Config.t) ~self ~host =
  let now = Engine.now (Kernel.engine k) in
  match Scheduler.Spine.select_host ?health k cfg ~self ~host with
  | Ok s ->
      t.p_policy.pol_select t ~now s;
      Ok s
  | Error e ->
      t.p_timeouts <- t.p_timeouts + 1;
      Error e

(* Survey groups for load-balancing sweeps: the balancer scopes its
   Pm_list_programs survey to one pod's group at a time under a sharded
   policy, or the global group under the flat one. *)
let survey_groups t =
  if Array.length t.p_pods = 0 then [ Ids.program_manager_group ]
  else
    Array.to_list t.p_pods
    |> List.filter (fun pd -> pd.pd_hosts > 0)
    |> List.map (fun pd -> pd.pd_group)
