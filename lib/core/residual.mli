(** Residual host dependencies (Section 3.3).

    A migrated program should not keep depending on its previous host:
    such dependencies load the old host and make the program fail if it
    reboots. V's defense is architectural — keep execution-environment
    state in the program's own address space or in global servers — and
    the paper notes "there is currently no mechanism for detecting or
    handling these dependencies". We provide the detector the paper
    lists as future work: inspect a program's environment bindings and
    report which workstations it still depends on. *)

type dependency = {
  d_what : string;
      (** Which binding, e.g. ["file-server"] — or ["page-source"] for a
          copy-on-reference old host still serving page faults. *)
  d_pid : Ids.pid;
  d_host : string;  (** Workstation currently serving it. *)
}

val dependencies : Directory.t -> Progtable.program -> dependency list
(** Every environment binding, resolved to its current host, plus the
    copy-on-reference page source when the program's pages still live on
    its old host. Bindings to services not currently resident anywhere
    are omitted. *)

val residual_hosts :
  ?ignore_display:bool -> Directory.t -> Progtable.program -> string list
(** Hosts other than the program's current workstation that it depends
    on. The display dependency is inherent (output belongs on the
    owner's screen) and usually excluded with [~ignore_display:true]. *)

val depends_on :
  ?ignore_display:bool -> Directory.t -> Progtable.program -> host:string -> bool
(** Does the program depend on the named workstation? The origin-failure
    experiment asks this about the original host after migration. *)
