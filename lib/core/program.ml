(* Per-process I/O counters, keyed by pid (module-private; exposed for
   tests via [io_operations]). *)
let io_counts : (Ids.pid, int) Hashtbl.t = Hashtbl.create 64

let io_operations (p : Progtable.program) =
  Option.value
    (Hashtbl.find_opt io_counts (Vproc.pid p.Progtable.p_root))
    ~default:0

let count_io self =
  Hashtbl.replace io_counts self
    (1 + Option.value (Hashtbl.find_opt io_counts self) ~default:0)

let run_spec ctx rng ~lh ~spec ~env ~model ~charge ~self =
  let lh_id = Logical_host.id lh in
  let io = spec.Programs.io in
  let gate = Logical_host.gate lh in
  let read_debt = ref 0. and write_debt = ref 0. in
  (* Every kernel entry re-passes the freeze gate and re-resolves the
     current kernel: issuing a call through a handle captured before a
     freeze would originate it from the old host after a migration — the
     reply then chases the process to its new host, finds no outstanding
     send there, and only a retransmission recovers it. Gating first makes
     the common path clean; the IPC machinery still absorbs the residual
     race of a freeze landing inside an already-entered call. *)
  let do_io () =
    while !read_debt >= 1. do
      read_debt := !read_debt -. 1.;
      count_io self;
      gate ();
      let k = Directory.current ctx lh_id in
      match
        File_server.Client.read k ~self ~server:env.Env.file_server
          ~path:(spec.Programs.prog_name ^ ".in")
          ~offset:0 ~length:io.Programs.read_bytes
      with
      | Ok _ -> ()
      | Error e -> failwith (spec.Programs.prog_name ^ ": read failed: " ^ e)
    done;
    while !write_debt >= 1. do
      write_debt := !write_debt -. 1.;
      count_io self;
      gate ();
      let k = Directory.current ctx lh_id in
      match
        File_server.Client.write k ~self ~server:env.Env.file_server
          ~path:(spec.Programs.prog_name ^ ".out")
          ~offset:0 ~length:io.Programs.write_bytes
      with
      | Ok _ -> ()
      | Error e -> failwith (spec.Programs.prog_name ^ ": write failed: " ^ e)
    done
  in
  let total = Time.of_sec spec.Programs.cpu_seconds in
  let rec run remaining =
    if Time.(remaining > Time.zero) then begin
      (* One chunk is one scheduler quantum; after a migration the next
         chunk lands on the new workstation's CPU. *)
      gate ();
      let k = Directory.current ctx lh_id in
      (* After a copy-on-reference migration, pages first-touched during
         the previous chunk are pulled from the old host here — a
         scheduling boundary, where blocking IPC is safe (the compute
         slice below holds the CPU). *)
      Kernel.service_page_faults k ~self ~lh:lh_id;
      let quantum = (Kernel.params k).Os_params.cpu_quantum in
      let chunk = Time.min quantum remaining in
      Cpu.compute_sliced ~owner:lh_id ~gate
        ~must_release:(fun () -> Logical_host.frozen lh)
        (Kernel.cpu k)
        ~priority:(Logical_host.priority lh)
        chunk
        ~on_slice:(fun served ->
          Dirty_model.on_cpu model rng served;
          charge served);
      let sec = Time.to_sec chunk in
      read_debt := !read_debt +. (io.Programs.reads_per_cpu_sec *. sec);
      write_debt := !write_debt +. (io.Programs.writes_per_cpu_sec *. sec);
      do_io ();
      run (Time.sub remaining chunk)
    end
  in
  run total;
  (* Terminal output goes through the display server co-resident with the
     originating workstation's frame buffer (Section 2.1). *)
  gate ();
  let k = Directory.current ctx lh_id in
  ignore
    (Display_server.Client.write k ~self ~server:env.Env.display
       (Printf.sprintf "%s: done (%s)" spec.Programs.prog_name
          (Time.to_string (Engine.now (Kernel.engine k)))))

let body ctx rng (p : Progtable.program) vp =
  run_spec ctx rng ~lh:p.Progtable.p_lh ~spec:p.Progtable.p_spec
    ~env:p.Progtable.p_env ~model:p.Progtable.p_model
    ~charge:(Progtable.charge_cpu p) ~self:(Vproc.pid vp)
