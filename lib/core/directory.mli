(** Locating the kernel a logical host currently runs on.

    Programs in V reach "their" kernel server and program manager through
    local group ids — [{my_lh, 1}] resolves to whichever host currently
    runs the logical host (Section 2.1). Simulated program bodies hold
    OCaml handles rather than send packets for every kernel call, so they
    need the same indirection in handle form: a directory maps a logical
    host id to the kernel currently hosting it. Program code must re-ask
    on every use; caching the kernel across a blocking call is exactly
    the bug transparency is meant to prevent. *)

type t

val of_kernels : unit -> t
(** An empty registry to which kernels are added as they boot. *)

val register : t -> Kernel.t -> unit

val kernels : t -> Kernel.t list
(** In registration order. *)

val locate : t -> Ids.lh_id -> Kernel.t option
(** The kernel currently hosting the logical host, if any. *)

val current : t -> Ids.lh_id -> Kernel.t
(** Like {!locate}.
    @raise Failure if the logical host is not resident anywhere — it is
    mid-migration or destroyed; simulated program bodies treat this as
    "retry after a beat". *)

val find_host : t -> string -> Kernel.t option
(** Look a kernel up by workstation name. *)
