type t = {
  sub_pid : Ids.pid;
  sub_prog : string;
  sub_vp : Vproc.t;
}

let pid t = t.sub_pid
let prog_name t = t.sub_prog

let running t =
  match Vproc.thread t.sub_vp with Some th -> Proc.alive th | None -> false

let join t =
  match Vproc.thread t.sub_vp with
  | Some th -> Proc.join th
  | None -> Proc.Normal

let spawn ctx rng ~(parent : Progtable.program) ~prog =
  let lh = parent.Progtable.p_lh in
  let lh_id = Logical_host.id lh in
  let k = Directory.current ctx lh_id in
  match Programs.find prog with
  | exception Not_found -> Error ("unknown program: " ^ prog)
  | spec -> (
      let env = parent.Progtable.p_env in
      (* The parent loads the child's image like any program load; the
         requesting identity is the parent's root process. *)
      match
        File_server.Client.load_image k
          ~self:(Vproc.pid parent.Progtable.p_root)
          ~server:env.Env.file_server ~name:prog
      with
      | Error e -> Error ("image load failed: " ^ e)
      | Ok img ->
          let space =
            Address_space.create ~code_bytes:img.File_server.code_bytes
              ~data_bytes:img.File_server.data_bytes
              ~active_bytes:img.File_server.active_bytes ()
          in
          Logical_host.add_space lh space;
          let model = Dirty_model.create spec.Programs.dirty space in
          let sub_rng = Rng.split rng in
          let vp =
            Kernel.spawn_process k lh ~name:(prog ^ "(sub)") (fun vp ->
                Program.run_spec ctx sub_rng ~lh ~spec ~env ~model
                  ~charge:(Progtable.charge_cpu parent)
                  ~self:(Vproc.pid vp))
          in
          Ok { sub_pid = Vproc.pid vp; sub_prog = prog; sub_vp = vp })
