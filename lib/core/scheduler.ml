type selection = {
  s_pm : Ids.pid;
  s_host : string;
  s_free_memory : int;
  s_guests : int;
  s_responded_in : Time.span;
}

(* Typed trace events: one [Sched_query] per multicast offer, one
   [Sched_bid] per volunteer heard, one [Sched_select] when a
   destination is committed to, one [Sched_timeout] when a query's
   window closes with no usable bid. [host] is always the querying
   host. *)
type Tracer.event +=
  | Sched_query of { host : string; bytes : int }
  | Sched_bid of {
      host : string;
      bidder : string;
      free_memory : int;
      guests : int;
      responded_in : Time.span;
    }
  | Sched_select of { host : string; dest : string }
  | Sched_timeout of { host : string; target : string }

let () =
  Tracer.register_view (function
    | Sched_query { host; bytes } ->
        Some
          {
            Tracer.v_cat = "sched";
            v_type = "query";
            v_fields = [ ("host", Tracer.Str host); ("bytes", Int bytes) ];
          }
    | Sched_bid { host; bidder; free_memory; guests; responded_in } ->
        Some
          {
            Tracer.v_cat = "sched";
            v_type = "bid";
            v_fields =
              [
                ("host", Tracer.Str host);
                ("bidder", Str bidder);
                ("free_memory", Int free_memory);
                ("guests", Int guests);
                ("responded_in", Span responded_in);
              ];
          }
    | Sched_select { host; dest } ->
        Some
          {
            Tracer.v_cat = "sched";
            v_type = "select";
            v_fields = [ ("host", Tracer.Str host); ("dest", Str dest) ];
          }
    | Sched_timeout { host; target } ->
        Some
          {
            Tracer.v_cat = "sched";
            v_type = "timeout";
            v_fields = [ ("host", Tracer.Str host); ("target", Str target) ];
          }
    | _ -> None)

let ev k mk =
  let trc = Kernel.tracer k in
  if Tracer.enabled trc then Tracer.emit trc (mk ())

let selection_of_reply ~asked_at k (pm, (m : Message.t)) =
  match m.Message.body with
  | Protocol.Pm_candidate { host; free_memory; guests } ->
      let responded_in = Time.sub (Engine.now (Kernel.engine k)) asked_at in
      ev k (fun () ->
          Sched_bid
            {
              host = Kernel.host_name k;
              bidder = host;
              free_memory;
              guests;
              responded_in;
            });
      Some
        {
          s_pm = pm;
          s_host = host;
          s_free_memory = free_memory;
          s_guests = guests;
          s_responded_in = responded_in;
        }
  | _ -> None

(* With a health view, known-dead hosts are excluded from the query
   outright and a merely-Suspect bidder is deprioritized: its bid is kept
   as a fallback while we wait (briefly) for an Alive one, instead of
   either trusting it blindly or eating the full select timeout. *)
let bid_host (_, (m : Message.t)) =
  match m.Message.body with
  | Protocol.Pm_candidate { host; _ } -> Some host
  | _ -> None

let grace_of (cfg : Config.t) = Time.scale cfg.Config.select_timeout 0.1

module Spine = struct
  let collect_best ?health ?accept k (cfg : Config.t) c =
    match (health, accept) with
    | None, None -> Kernel.collect_first k c ~timeout:cfg.Config.select_timeout
    | _ ->
        Kernel.collect_first_where k c
          ~accept:(fun reply ->
            match bid_host reply with
            | None -> false
            | Some host ->
                (match health with
                | None -> true
                | Some h -> Health.is_alive h host)
                &&
                (match accept with None -> true | Some f -> f ~host))
          ~timeout:cfg.Config.select_timeout ~grace:(grace_of cfg)

  let select_in_group ?health ?accept ?(exclude = []) ?(label = "*") k
      (cfg : Config.t) ~group ~self ~bytes =
    let eng = Kernel.engine k in
    let asked_at = Engine.now eng in
    let exclude =
      match health with
      | None -> exclude
      | Some h -> Health.dead_hosts h @ exclude
    in
    ev k (fun () -> Sched_query { host = Kernel.host_name k; bytes });
    let c =
      Kernel.send_group k ~src:self ~group
        (Message.make (Protocol.Pm_query_candidates { bytes; exclude }))
    in
    match collect_best ?health ?accept k cfg c with
    | None ->
        ev k (fun () ->
            Sched_timeout { host = Kernel.host_name k; target = label });
        Error "no idle workstation volunteered"
    | Some reply -> (
        match selection_of_reply ~asked_at k reply with
        | Some s ->
            ev k (fun () ->
                Sched_select { host = Kernel.host_name k; dest = s.s_host });
            Ok s
        | None -> Error "malformed candidate reply")

  let select_host ?health k (cfg : Config.t) ~self ~host =
    let eng = Kernel.engine k in
    let asked_at = Engine.now eng in
    match health with
    | Some h when Health.is_dead h host ->
        (* Fast-fail instead of multicasting at a corpse and eating the
           full select timeout. *)
        Error (Printf.sprintf "host %s is dead (health)" host)
    | _ -> (
        ev k (fun () -> Sched_query { host = Kernel.host_name k; bytes = 0 });
        let c =
          Kernel.send_group k ~src:self ~group:Ids.program_manager_group
            (Message.make (Protocol.Pm_query_host { host }))
        in
        match Kernel.collect_first k c ~timeout:cfg.Config.select_timeout with
        | None ->
            ev k (fun () ->
                Sched_timeout { host = Kernel.host_name k; target = host });
            Error (Printf.sprintf "host %s did not respond" host)
        | Some reply -> (
            match selection_of_reply ~asked_at k reply with
            | Some s ->
                ev k (fun () ->
                    Sched_select { host = Kernel.host_name k; dest = s.s_host });
                Ok s
            | None -> Error "malformed candidate reply"))

  let candidates ?(exclude = []) ?(group = Ids.program_manager_group) k
      (cfg : Config.t) ~self ~bytes ~window =
    ignore cfg;
    let asked_at = Engine.now (Kernel.engine k) in
    ev k (fun () -> Sched_query { host = Kernel.host_name k; bytes });
    let c =
      Kernel.send_group k ~src:self ~group
        (Message.make (Protocol.Pm_query_candidates { bytes; exclude }))
    in
    List.filter_map
      (selection_of_reply ~asked_at k)
      (Kernel.collect_within k c ~window)
end

let select_any ?health ?exclude k (cfg : Config.t) ~self ~bytes =
  Spine.select_in_group ?health ?exclude k cfg ~group:Ids.program_manager_group
    ~self ~bytes

let select_host = Spine.select_host

let candidates ?exclude k cfg ~self ~bytes ~window =
  Spine.candidates ?exclude k cfg ~self ~bytes ~window
