type selection = {
  s_pm : Ids.pid;
  s_host : string;
  s_free_memory : int;
  s_guests : int;
  s_responded_in : Time.span;
}

let selection_of_reply ~asked_at eng (pm, (m : Message.t)) =
  match m.Message.body with
  | Protocol.Pm_candidate { host; free_memory; guests } ->
      Some
        {
          s_pm = pm;
          s_host = host;
          s_free_memory = free_memory;
          s_guests = guests;
          s_responded_in = Time.sub (Engine.now eng) asked_at;
        }
  | _ -> None

let select_any ?(exclude = []) k (cfg : Config.t) ~self ~bytes =
  let eng = Kernel.engine k in
  let asked_at = Engine.now eng in
  let c =
    Kernel.send_group k ~src:self ~group:Ids.program_manager_group
      (Message.make (Protocol.Pm_query_candidates { bytes; exclude }))
  in
  match Kernel.collect_first k c ~timeout:cfg.Config.select_timeout with
  | None -> Error "no idle workstation volunteered"
  | Some reply -> (
      match selection_of_reply ~asked_at eng reply with
      | Some s -> Ok s
      | None -> Error "malformed candidate reply")

let select_host k (cfg : Config.t) ~self ~host =
  let eng = Kernel.engine k in
  let asked_at = Engine.now eng in
  let c =
    Kernel.send_group k ~src:self ~group:Ids.program_manager_group
      (Message.make (Protocol.Pm_query_host { host }))
  in
  match Kernel.collect_first k c ~timeout:cfg.Config.select_timeout with
  | None -> Error (Printf.sprintf "host %s did not respond" host)
  | Some reply -> (
      match selection_of_reply ~asked_at eng reply with
      | Some s -> Ok s
      | None -> Error "malformed candidate reply")

let candidates ?(exclude = []) k (cfg : Config.t) ~self ~bytes ~window =
  ignore cfg;
  let eng = Kernel.engine k in
  let asked_at = Engine.now eng in
  let c =
    Kernel.send_group k ~src:self ~group:Ids.program_manager_group
      (Message.make (Protocol.Pm_query_candidates { bytes; exclude }))
  in
  List.filter_map
    (selection_of_reply ~asked_at eng)
    (Kernel.collect_within k c ~window)
