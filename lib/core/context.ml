type t = {
  kernel : Kernel.t;
  cfg : Config.t;
  self : Ids.pid;
  env : Env.t;
  health : Health.t option;
}

let make ?health ~kernel ~cfg ~self ~env () =
  { kernel; cfg; self; env; health }

let with_env t env = { t with env }
let kernel t = t.kernel
let cfg t = t.cfg
let self t = t.self
let env t = t.env
let health t = t.health
let engine t = Kernel.engine t.kernel
