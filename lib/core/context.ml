type t = {
  kernel : Kernel.t;
  cfg : Config.t;
  self : Ids.pid;
  env : Env.t;
  health : Health.t option;
  placement : Placement.t;
}

let make ?health ?placement ~kernel ~cfg ~self ~env () =
  let placement =
    match placement with Some p -> p | None -> Placement.of_config cfg
  in
  { kernel; cfg; self; env; health; placement }

let with_env t env = { t with env }
let kernel t = t.kernel
let cfg t = t.cfg
let self t = t.self
let env t = t.env
let health t = t.health
let placement t = t.placement
let engine t = Kernel.engine t.kernel
