type error =
  | No_host of string
  | Refused of string
  | Transfer_failed of string
  | Budget_exceeded of string

let pp_error ppf = function
  | No_host m -> Format.fprintf ppf "no host: %s" m
  | Refused m -> Format.fprintf ppf "refused: %s" m
  | Transfer_failed m -> Format.fprintf ppf "transfer failed: %s" m
  | Budget_exceeded m -> Format.fprintf ppf "budget exceeded: %s" m

(* Typed phase-transition events. Rounds are numbered from 1 (the
   initial full copy); per-round events are emitted as each round's
   acknowledgement lands, so monitors see them interleaved with the
   guest's own activity. The convergence monitor asserts the emitted
   [bytes] sequence is non-increasing. *)
type Tracer.event +=
  | Mig_start of {
      lh : Ids.lh_id;
      prog : string;
      from_host : string;
      strategy : string;
    }
  | Mig_budget of { lh : Ids.lh_id; freeze : Time.span; transfer : Time.span }
  | Mig_dest of { lh : Ids.lh_id; dest : string }
  | Mig_round of { lh : Ids.lh_id; round : int; bytes : int; span : Time.span }
  | Mig_frozen_residue of { lh : Ids.lh_id; bytes : int }
  | Mig_committed of {
      lh : Ids.lh_id;
      from_host : string;
      dest : string;
      freeze : Time.span;
    }
  | Mig_aborted of { lh : Ids.lh_id; reason : string }

let () =
  Tracer.register_view (function
    | Mig_start { lh; prog; from_host; strategy } ->
        Some
          {
            Tracer.v_cat = "migrate";
            v_type = "start";
            v_fields =
              [
                ("lh", Tracer.Int lh);
                ("prog", Str prog);
                ("from", Str from_host);
                ("strategy", Str strategy);
              ];
          }
    | Mig_budget { lh; freeze; transfer } ->
        Some
          {
            Tracer.v_cat = "migrate";
            v_type = "budget";
            v_fields =
              [
                ("lh", Tracer.Int lh);
                ("freeze", Span freeze);
                ("transfer", Span transfer);
              ];
          }
    | Mig_dest { lh; dest } ->
        Some
          {
            Tracer.v_cat = "migrate";
            v_type = "dest";
            v_fields = [ ("lh", Tracer.Int lh); ("dest", Str dest) ];
          }
    | Mig_round { lh; round; bytes; span } ->
        Some
          {
            Tracer.v_cat = "migrate";
            v_type = "round";
            v_fields =
              [
                ("lh", Tracer.Int lh);
                ("round", Int round);
                ("bytes", Int bytes);
                ("span", Span span);
              ];
          }
    | Mig_frozen_residue { lh; bytes } ->
        Some
          {
            Tracer.v_cat = "migrate";
            v_type = "frozen_residue";
            v_fields = [ ("lh", Tracer.Int lh); ("bytes", Int bytes) ];
          }
    | Mig_committed { lh; from_host; dest; freeze } ->
        Some
          {
            Tracer.v_cat = "migrate";
            v_type = "committed";
            v_fields =
              [
                ("lh", Tracer.Int lh);
                ("from", Str from_host);
                ("dest", Str dest);
                ("freeze", Span freeze);
              ];
          }
    | Mig_aborted { lh; reason } ->
        Some
          {
            Tracer.v_cat = "migrate";
            v_type = "aborted";
            v_fields = [ ("lh", Tracer.Int lh); ("reason", Str reason) ];
          }
    | _ -> None)

let ev kernel mk =
  let trc = Kernel.tracer kernel in
  if Tracer.enabled trc then Tracer.emit trc (mk ())

let kernel_state_span (cfg : Config.t) lh =
  let objects =
    Logical_host.process_count lh + List.length (Logical_host.spaces lh)
  in
  Time.add cfg.Config.kernel_state_base
    (Time.mul cfg.Config.kernel_state_per_object objects)

(* Budgeted copies are cut into chunks so the deadline is checked while
   the bytes move, not only after; unbudgeted copies keep the original
   single-transfer path (and its exact timing). *)
let chunk_bytes = 256 * 1024

let bounded_transfer kernel ~deadline ~temp_lh ~bytes =
  let to_station () = Kernel.lookup_binding kernel temp_lh in
  match deadline with
  | None ->
      Kernel.bulk_transfer ?to_station:(to_station ()) kernel ~bytes;
      Ok ()
  | Some dl ->
      let eng = Kernel.engine kernel in
      let rec chunks remaining =
        if remaining <= 0 then Ok ()
        else if Time.(Engine.now eng > dl) then
          Error (Budget_exceeded "budget exhausted mid-copy")
        else begin
          Kernel.bulk_transfer ?to_station:(to_station ()) kernel
            ~bytes:(min chunk_bytes remaining);
          chunks (remaining - chunk_bytes)
        end
      in
      chunks bytes

(* {2 Content-addressed manifests}

   With content caching on (Os_params.content_cache_bytes > 0), every
   copy step names its chunks first — a (digest, bytes) manifest built
   from the pages it is about to move — and ships only what the
   destination's cache is missing (DESIGN.md §4k). Manifests are built
   per transfer: full image, dirty residue of a pre-copy round, or the
   frozen residue. *)

let dirty_manifest lh =
  let spaces = Logical_host.spaces lh in
  let n =
    List.fold_left (fun a sp -> a + Address_space.dirty_count sp) 0 spaces
  in
  let m = Array.make n (0, 0) in
  let i = ref 0 in
  List.iter
    (fun sp ->
      let pb = Address_space.page_bytes sp in
      Address_space.iter_dirty sp (fun p ->
          m.(!i) <- (Address_space.page_digest sp p, pb);
          incr i))
    spaces;
  m

let full_manifest lh =
  let spaces = Logical_host.spaces lh in
  let n = List.fold_left (fun a sp -> a + Address_space.pages sp) 0 spaces in
  let m = Array.make n (0, 0) in
  let i = ref 0 in
  List.iter
    (fun sp ->
      let pb = Address_space.page_bytes sp in
      for p = 0 to Address_space.pages sp - 1 do
        m.(!i) <- (Address_space.page_digest sp p, pb);
        incr i
      done)
    spaces;
  m

(* 8 wire bytes per manifest entry (a 48-bit digest plus framing). The
   manifest rides the request message up to the 1 KB segment limit;
   anything beyond that is charged as bulk data ahead of the send. *)
let manifest_entry_bytes = 8

(* Exchange a manifest with the destination's kernel server and return
   how many bytes it still needs. The source also remembers every chunk
   it offered — it holds that content, so a later migrate-back (or any
   transfer of shared content toward this host) can skip the bytes. *)
let manifest_exchange kernel ~deadline ~self ~temp_lh ~lh_id ~label m =
  let cache = Kernel.content_cache kernel in
  let total = ref 0 in
  Array.iter
    (fun (dg, b) ->
      total := !total + b;
      Content_cache.insert cache ~digest:dg ~bytes:b)
    m;
  let wire = manifest_entry_bytes * Array.length m in
  let msg_bytes = min Message.max_bytes (Message.short_bytes + wire) in
  let overflow = wire - (msg_bytes - Message.short_bytes) in
  Kernel.bump_by kernel "xfer_manifest_bytes" (Message.short_bytes + wire);
  match
    if overflow > 0 then
      bounded_transfer kernel ~deadline ~temp_lh ~bytes:overflow
    else Ok ()
  with
  | Error e -> Error e
  | Ok () -> (
      match
        Kernel.send ?deadline kernel ~src:self
          ~dst:(Ids.kernel_server_of temp_lh)
          (Message.make ~bytes:msg_bytes
             (Kernel.Ks_xfer_manifest { lh = lh_id; label; digests = m }))
      with
      | Ok { Message.body = Kernel.Ks_xfer_need { missing = _; bytes }; _ } ->
          Kernel.bump_by kernel "xfer_bytes_shipped" bytes;
          Kernel.bump_by kernel "xfer_bytes_saved" (!total - bytes);
          Ok bytes
      | Ok _ -> Error (Transfer_failed "unexpected manifest reply")
      | Error e ->
          Error (Transfer_failed (Format.asprintf "%a" Kernel.pp_send_error e)))

(* One acknowledged copy step: move the bytes on the wire, then confirm
   the destination is still alive with a kernel-server ping through the
   temporary logical-host id. The ping's failure is how we detect a dead
   destination (Section 3.1.3's "copy operation fails due to lack of
   acknowledgement"). With a manifest, only the chunks the destination
   reports missing cross the wire. *)
let acked_copy ?manifest kernel ~deadline ~self ~temp_lh ~bytes =
  let need =
    match manifest with
    | Some (label, lh_id, m) when Array.length m > 0 ->
        manifest_exchange kernel ~deadline ~self ~temp_lh ~lh_id ~label m
    | Some _ | None -> Ok bytes
  in
  match need with
  | Error e -> Error e
  | Ok need -> (
      match bounded_transfer kernel ~deadline ~temp_lh ~bytes:need with
      | Error e -> Error e
      | Ok () -> (
          match
            Kernel.send kernel ~src:self
              ~dst:(Ids.kernel_server_of temp_lh)
              (Message.make Kernel.Ks_ping)
          with
          | Ok { Message.body = Kernel.Ks_pong; _ } -> Ok ()
          | Ok _ -> Error (Transfer_failed "unexpected ping reply")
          | Error e ->
              Error
                (Transfer_failed (Format.asprintf "%a" Kernel.pp_send_error e))))

(* Observed copy rate, µs per byte, from the most recent round — the
   basis for the predictive budget checks. *)
let rate_of_rounds rounds =
  match List.rev rounds with
  | { Protocol.r_bytes; r_span } :: _ when r_bytes > 0 ->
      Some (float_of_int (Time.to_us r_span) /. float_of_int r_bytes)
  | _ -> None

let estimated_span ~rate bytes =
  match rate with
  | Some us_per_byte ->
      Time.of_us (int_of_float (ceil (us_per_byte *. float_of_int bytes)))
  | None -> Time.zero

(* Pre-copy rounds after the initial full copy. [last_residue] is what
   the previous round had to copy; stop when the residue is small, stops
   shrinking, or the round budget is exhausted (Section 3.1.2). Under a
   transfer deadline, a round predicted (from the previous round's
   observed rate) to blow it aborts the copy phase up front. *)
let rec precopy_rounds kernel (cfg : Config.t) ~deadline ~self ~temp_lh ~lh ~k
    ~last_residue acc =
  let eng = Kernel.engine kernel in
  let residue = Logical_host.dirty_bytes lh in
  let stop =
    residue <= cfg.Config.precopy_min_residue
    || k >= cfg.Config.precopy_max_rounds
    || float_of_int residue
       >= cfg.Config.precopy_improvement *. float_of_int last_residue
  in
  if stop then Ok (List.rev acc)
  else
    let doomed =
      match deadline with
      | None -> false
      | Some dl ->
          let est = estimated_span ~rate:(rate_of_rounds acc) residue in
          Time.(Time.add (Engine.now eng) est > dl)
    in
    if doomed then
      Error (Budget_exceeded "next pre-copy round would blow the transfer budget")
    else begin
      let t0 = Engine.now eng in
      (* The manifest must snapshot the dirty pages before the round
         clears their bits. *)
      let manifest =
        if Kernel.content_caching kernel then
          Some ("round", Logical_host.id lh, dirty_manifest lh)
        else None
      in
      ignore (Logical_host.clear_dirty lh);
      match acked_copy ?manifest kernel ~deadline ~self ~temp_lh ~bytes:residue with
      | Error e -> Error e
      | Ok () ->
          let round =
            { Protocol.r_bytes = residue; r_span = Time.sub (Engine.now eng) t0 }
          in
          ev kernel (fun () ->
              Mig_round
                {
                  lh = Logical_host.id lh;
                  round = k + 1;
                  bytes = residue;
                  span = round.Protocol.r_span;
                });
          precopy_rounds kernel cfg ~deadline ~self ~temp_lh ~lh ~k:(k + 1)
            ~last_residue:residue (round :: acc)
    end

(* The pluggable part of the five-step protocol. Every strategy shares
   host selection, reservation, freeze, kernel-state copy, extract /
   install and rebind; a strategy decides only (a) what moves while the
   program still runs, (b) what must move inside the freeze window, (c)
   whether the source keeps the memory image and serves page faults
   after commit, and (d) how many bytes are expected to cross the wire
   again after the program resumes. *)
module Strategy = struct
  type nonrec t = {
    s_protocol : Protocol.strategy;
    s_copy_phase :
      Kernel.t ->
      Config.t ->
      deadline:Time.t option ->
      self:Ids.pid ->
      temp_lh:Ids.lh_id ->
      lh:Logical_host.t ->
      (Protocol.round list, error) result;
        (* Step 3, program still running; [deadline] is the absolute
           transfer-budget bound. *)
    s_frozen_residue : Logical_host.t -> int;
        (* Step 4: bytes that must cross the wire while frozen.
           Destructive (clears dirty state) — call only once, frozen. *)
    s_frozen_manifest : Logical_host.t -> (int * int) array;
        (* Content manifest of exactly the pages [s_frozen_residue]
           will move. Non-destructive; must be called first (it reads
           the dirty bits the residue call clears). Only consulted when
           content caching is on. *)
    s_residue_estimate : Logical_host.t -> int;
        (* Non-destructive preview of [s_frozen_residue], for the
           pre-freeze budget gate. *)
    s_page_source : Kernel.t -> Ids.pid option;
        (* Step 5: pid the destination faults pages from, if the memory
           image stays behind (copy-on-reference). *)
    s_faultin : Progtable.program -> lh:Logical_host.t -> final_bytes:int -> int;
        (* Bytes expected to move again after commit. *)
  }

  let protocol t = t.s_protocol
  let name t = Protocol.strategy_name t.s_protocol

  (* Initial copy of the complete address spaces — code and initialized
     data move while the program keeps running — then dirty-residue
     rounds until they stop paying off (Section 3.1.2). *)
  let full_copy_then_rounds kernel cfg ~deadline ~self ~temp_lh ~lh =
    let eng = Kernel.engine kernel in
    let total = Logical_host.total_bytes lh in
    let t0 = Engine.now eng in
    let manifest =
      if Kernel.content_caching kernel then
        Some ("full", Logical_host.id lh, full_manifest lh)
      else None
    in
    ignore (Logical_host.clear_dirty lh);
    match acked_copy ?manifest kernel ~deadline ~self ~temp_lh ~bytes:total with
    | Error e -> Error e
    | Ok () ->
        let first =
          { Protocol.r_bytes = total; r_span = Time.sub (Engine.now eng) t0 }
        in
        ev kernel (fun () ->
            Mig_round
              {
                lh = Logical_host.id lh;
                round = 1;
                bytes = total;
                span = first.Protocol.r_span;
              });
        precopy_rounds kernel cfg ~deadline ~self ~temp_lh ~lh ~k:1
          ~last_residue:total [ first ]

  let no_copy_phase _kernel _cfg ~deadline:_ ~self:_ ~temp_lh:_ ~lh:_ = Ok []
  let no_page_source _kernel = None
  let no_faultin _program ~lh:_ ~final_bytes:_ = 0

  let pre_copy =
    {
      s_protocol = Protocol.Precopy;
      s_copy_phase = full_copy_then_rounds;
      s_frozen_residue = (fun lh -> Logical_host.clear_dirty lh);
      s_frozen_manifest = dirty_manifest;
      s_residue_estimate = Logical_host.dirty_bytes;
      s_page_source = no_page_source;
      s_faultin = no_faultin;
    }

  (* The "simplest approach" of Section 3.1: no copying while running,
     so the whole image crosses the wire inside the freeze window. *)
  let freeze_and_copy =
    {
      s_protocol = Protocol.Freeze_and_copy;
      s_copy_phase = no_copy_phase;
      s_frozen_residue = Logical_host.total_bytes;
      s_frozen_manifest = full_manifest;
      s_residue_estimate = Logical_host.total_bytes;
      s_page_source = no_page_source;
      s_faultin = no_faultin;
    }

  (* Accent/Demos-style: only kernel state moves at migration time. The
     freeze window is minimal, but the source keeps the memory image —
     its kernel server answers the new copy's page faults until every
     page has been referenced, the residual dependency of Section 3.2. *)
  let copy_on_reference =
    {
      s_protocol = Protocol.Copy_on_reference;
      s_copy_phase = no_copy_phase;
      s_frozen_residue = (fun _ -> 0);
      s_frozen_manifest = (fun _ -> [||]);
      s_residue_estimate = (fun _ -> 0);
      s_page_source =
        (fun kernel ->
          Some (Ids.kernel_server_of (Logical_host.id (Kernel.host_lh kernel))));
      s_faultin = (fun _program ~lh ~final_bytes:_ -> Logical_host.total_bytes lh);
    }

  (* VM-flush (Section 3.2): wire timing of the copy phase is identical
     to pre-copy — the bytes flow to the page server instead of the new
     host — and dirty-then-referenced pages cross the wire twice: the
     rewritten hot set plus the frozen residue fault back in later. *)
  let vm_flush ~page_server =
    {
      s_protocol = Protocol.Vm_flush { page_server };
      s_copy_phase = full_copy_then_rounds;
      s_frozen_residue = (fun lh -> Logical_host.clear_dirty lh);
      s_frozen_manifest = dirty_manifest;
      s_residue_estimate = Logical_host.dirty_bytes;
      s_page_source = no_page_source;
      s_faultin =
        (fun program ~lh:_ ~final_bytes ->
          let hot =
            int_of_float
              (1024.
              *. (Dirty_model.params program.Progtable.p_model)
                   .Dirty_model.hot_kb)
          in
          hot + final_bytes);
    }

  let of_protocol = function
    | Protocol.Precopy -> pre_copy
    | Protocol.Freeze_and_copy -> freeze_and_copy
    | Protocol.Copy_on_reference -> copy_on_reference
    | Protocol.Vm_flush { page_server } -> vm_flush ~page_server
end

let cancel_reservation_best_effort kernel ~self ~pm ~temp_lh =
  ignore
    (Kernel.send kernel ~src:self ~dst:pm
       (Message.make (Protocol.Pm_cancel_reserve { temp_lh })))

(* The per-strategy deadline budget, if the configuration declares one. *)
let budget_for (cfg : Config.t) = function
  | Protocol.Precopy -> cfg.Config.budget_precopy
  | Protocol.Freeze_and_copy -> cfg.Config.budget_freeze_copy
  | Protocol.Copy_on_reference -> cfg.Config.budget_cor
  | Protocol.Vm_flush _ -> cfg.Config.budget_flush

(* Covers the install request's IPC cost (and a successful ack's return
   trip) in the pre-freeze estimate. *)
let install_margin = Time.of_ms 20.

(* How long past the freeze deadline the source waits for the install
   acknowledgement. The destination refuses installs arriving after the
   deadline itself, so this slack only gives an in-time ack the wire
   time to come home before the source assumes failure. *)
let ack_slack = Time.of_ms 50.

(* One pass of the five-step protocol. Besides the outcome, report which
   destination was tried (None if failure struck before selection), so a
   retry can exclude it when re-running host selection. *)
let attempt ?health ~kernel ~cfg ~table ~self ~program ?dest ~exclude ~strategy
    () =
  let strat = Strategy.of_protocol strategy in
  let eng = Kernel.engine kernel in
  let trace fmt =
    Tracer.recordf (Kernel.tracer kernel) ~category:"migrate" fmt
  in
  let lh = program.Progtable.p_lh in
  let lh_id = Logical_host.id lh in
  let my_host = Kernel.host_name kernel in
  let t_start = Engine.now eng in
  let budget = budget_for cfg strategy in
  program.Progtable.p_status <- Progtable.Migrating;
  ev kernel (fun () ->
      Mig_start
        {
          lh = lh_id;
          prog = program.Progtable.p_spec.Programs.prog_name;
          from_host = my_host;
          strategy = Protocol.strategy_name strategy;
        });
  (match budget with
  | Some b ->
      ev kernel (fun () ->
          Mig_budget
            {
              lh = lh_id;
              freeze = b.Config.bg_freeze;
              transfer = b.Config.bg_transfer;
            })
  | None -> ());
  let finish_with result =
    (match result with
    | Ok o ->
        ev kernel (fun () ->
            Mig_committed
              {
                lh = lh_id;
                from_host = my_host;
                dest = o.Protocol.m_dest;
                freeze = Time.sub o.Protocol.m_resumed_at o.Protocol.m_freeze_start;
              })
    | Error (e, _) ->
        ev kernel (fun () ->
            Mig_aborted { lh = lh_id; reason = Format.asprintf "%a" pp_error e }));
    (match program.Progtable.p_status with
    | Progtable.Migrating -> program.Progtable.p_status <- Progtable.Running
    | _ -> ());
    result
  in
  (* Step 1: locate a willing destination. *)
  let dest =
    match dest with
    | Some d -> Ok d
    | None ->
        Result.map_error
          (fun m -> No_host m)
          (Scheduler.Spine.select_in_group ?health
             ~exclude:(my_host :: exclude) kernel cfg
             ~group:Ids.program_manager_group ~self
             ~bytes:(Logical_host.total_bytes lh))
  in
  match dest with
  | Error e -> finish_with (Error (e, None))
  | Ok dest -> (
      ev kernel (fun () ->
          Mig_dest { lh = lh_id; dest = dest.Scheduler.s_host });
      trace "step 1: %s (%a) will take %a" dest.Scheduler.s_host Ids.pp_pid
        dest.Scheduler.s_pm Ids.pp_lh lh_id;
      (* Step 2: initialize the new host under a temporary id. *)
      let temp_lh = Ids.Lh_allocator.fresh (Kernel.allocator kernel) in
      let reserve =
        Kernel.send kernel ~src:self ~dst:dest.Scheduler.s_pm
          (Message.make
             (Protocol.Pm_reserve
                { temp_lh; lh = lh_id; bytes = Logical_host.total_bytes lh }))
      in
      match reserve with
      | Ok { Message.body = Protocol.Pm_reserved; _ } -> (
          (* The reservation reply taught the binding cache where the
             destination is; bind the temporary id there too so transfer
             steps skip the Where_is round. *)
          (match Kernel.lookup_binding kernel dest.Scheduler.s_pm.Ids.lh with
          | Some st -> Kernel.set_binding kernel temp_lh st
          | None -> ());
          (* Step 3: the strategy's copy phase, program still running,
             bounded by the transfer budget when one is declared. *)
          let transfer_deadline =
            Option.map
              (fun b -> Time.add (Engine.now eng) b.Config.bg_transfer)
              budget
          in
          match
            strat.Strategy.s_copy_phase kernel cfg ~deadline:transfer_deadline
              ~self ~temp_lh ~lh
          with
          | Error e ->
              (* Nothing was frozen yet; just drop the reservation. *)
              cancel_reservation_best_effort kernel ~self
                ~pm:dest.Scheduler.s_pm ~temp_lh;
              finish_with (Error (e, Some dest.Scheduler.s_host))
          | Ok rounds -> (
              List.iteri
                (fun i r ->
                  trace "step 3: pre-copy round %d moved %d KB in %s" (i + 1)
                    (r.Protocol.r_bytes / 1024)
                    (Time.to_string r.Protocol.r_span))
                rounds;
              let ks_span = kernel_state_span cfg lh in
              (* Pre-freeze gate: if the residue the freeze window must
                 move is already predicted (at the observed copy rate) to
                 blow the freeze budget, abort before freezing at all. *)
              let frozen_doomed =
                match budget with
                | None -> false
                | Some b ->
                    let wire_est =
                      estimated_span ~rate:(rate_of_rounds rounds)
                        (strat.Strategy.s_residue_estimate lh)
                    in
                    Time.(
                      Time.add (Time.add wire_est ks_span) install_margin
                      > b.Config.bg_freeze)
              in
              if frozen_doomed then begin
                cancel_reservation_best_effort kernel ~self
                  ~pm:dest.Scheduler.s_pm ~temp_lh;
                finish_with
                  (Error
                     ( Budget_exceeded
                         "estimated freeze window exceeds the budget",
                       Some dest.Scheduler.s_host ))
              end
              else begin
              (* Step 4: freeze and complete the copy. *)
              let freeze_start = Engine.now eng in
              Kernel.freeze_lh kernel lh;
              let freeze_deadline =
                Option.map
                  (fun b -> Time.add freeze_start b.Config.bg_freeze)
                  budget
              in
              (* Manifest before residue: the residue call clears the
                 dirty bits the manifest reads. *)
              let final_manifest =
                if Kernel.content_caching kernel then
                  Some (strat.Strategy.s_frozen_manifest lh)
                else None
              in
              let final_bytes = strat.Strategy.s_frozen_residue lh in
              ev kernel (fun () ->
                  Mig_frozen_residue { lh = lh_id; bytes = final_bytes });
              trace "step 4: frozen; copying %d KB residue + kernel state"
                (final_bytes / 1024);
              let abort_frozen reason =
                (* Still resident, just frozen: thaw and give the memory
                   back to the destination's reservation machinery. *)
                Kernel.unfreeze_lh kernel lh;
                cancel_reservation_best_effort kernel ~self
                  ~pm:dest.Scheduler.s_pm ~temp_lh;
                finish_with
                  (Error (Budget_exceeded reason, Some dest.Scheduler.s_host))
              in
              match
                match final_manifest with
                | Some m when Array.length m > 0 -> (
                    match
                      manifest_exchange kernel ~deadline:freeze_deadline ~self
                        ~temp_lh ~lh_id ~label:"residue" m
                    with
                    | Error e -> Error e
                    | Ok need ->
                        bounded_transfer kernel ~deadline:freeze_deadline
                          ~temp_lh ~bytes:need)
                | Some _ | None ->
                    bounded_transfer kernel ~deadline:freeze_deadline ~temp_lh
                      ~bytes:final_bytes
              with
              | Error _ -> abort_frozen "freeze budget exhausted mid-residue"
              | Ok () -> (
              Proc.sleep eng ks_span;
              match freeze_deadline with
              | Some dl when Time.(Engine.now eng > dl) ->
                  abort_frozen "freeze budget exhausted copying kernel state"
              | Some _ | None -> (
              (* Step 5: transfer control — extract here, install there —
                 and rebind. The destination refuses installs arriving
                 after the freeze deadline, so a committed migration is
                 guaranteed to have resumed within budget. *)
              let state =
                Kernel.extract_lh
                  ?page_source:(strat.Strategy.s_page_source kernel)
                  kernel lh
              in
              let install =
                Kernel.send
                  ?deadline:
                    (Option.map (fun dl -> Time.add dl ack_slack) freeze_deadline)
                  kernel ~src:self
                  ~dst:(Ids.kernel_server_of temp_lh)
                  (Message.make
                     (Kernel.Ks_install { state; deadline = freeze_deadline }))
              in
              match install with
              | Ok { Message.body = Kernel.Ks_installed { resumed_at }; _ } ->
                  trace
                    "step 5: new copy unfrozen on %s at %s; freeze lasted %s"
                    dest.Scheduler.s_host
                    (Time.to_string resumed_at)
                    (Time.to_string (Time.sub resumed_at freeze_start));
                  (* Demos/MP ablation: rebinding happens by leaving a
                     forwarding address on this (old) host instead of the
                     paper's stateless broadcast query. *)
                  (match (Kernel.params kernel).Os_params.rebind with
                  | Os_params.Forwarding -> (
                      match Kernel.lookup_binding kernel temp_lh with
                      | Some station -> Kernel.set_forward kernel lh_id station
                      | None -> ())
                  | Os_params.Broadcast_query -> ());
                  (* Program-manager state follows the program. *)
                  Progtable.remove table program;
                  (match
                     Kernel.send kernel ~src:self ~dst:dest.Scheduler.s_pm
                       (Message.make (Protocol.Pm_adopt program))
                   with
                  | Ok _ -> ()
                  | Error _ ->
                      Tracer.record (Kernel.tracer kernel) ~category:"migrate"
                        "program-manager adoption failed; program runs unmanaged");
                  finish_with
                    (Ok
                       {
                         Protocol.m_prog =
                           program.Progtable.p_spec.Programs.prog_name;
                         m_from = my_host;
                         m_dest = dest.Scheduler.s_host;
                         m_strategy = Protocol.strategy_name strategy;
                         m_rounds = rounds;
                         m_final_bytes = final_bytes;
                         m_freeze_start = freeze_start;
                         m_resumed_at = resumed_at;
                         m_kernel_state = ks_span;
                         m_total = Time.sub (Engine.now eng) t_start;
                         m_faultin_bytes =
                           strat.Strategy.s_faultin program ~lh ~final_bytes;
                       })
              | Ok { Message.body = Kernel.Ks_refused m; _ } ->
                  (* Destination reneged: resurrect the old copy. *)
                  ignore (Kernel.install_lh kernel state);
                  Kernel.unfreeze_lh kernel lh;
                  finish_with (Error (Refused m, Some dest.Scheduler.s_host))
              | Ok _ | Error _ ->
                  (* Destination unreachable: "we assume that the new
                     host failed and that the logical host has not been
                     transferred" — unfreeze the old copy. *)
                  ignore (Kernel.install_lh kernel state);
                  Kernel.unfreeze_lh kernel lh;
                  finish_with
                    (Error
                       ( Transfer_failed "no acknowledgement of install",
                         Some dest.Scheduler.s_host ))))
              end))
      | Ok { Message.body = Protocol.Pm_refused m; _ } ->
          finish_with (Error (Refused m, Some dest.Scheduler.s_host))
      | Ok _ ->
          finish_with
            (Error
               (Refused "malformed reservation reply", Some dest.Scheduler.s_host))
      | Error e ->
          finish_with
            (Error
               ( Transfer_failed (Format.asprintf "%a" Kernel.pp_send_error e),
                 Some dest.Scheduler.s_host )))

let migrate ?health ~kernel ~cfg ~rng ~table ~self ~program ?dest ~strategy () =
  ignore rng;
  if program.Progtable.p_status <> Progtable.Running then
    (* A suspended program stays where its owner parked it: migration
       would unfreeze it at the destination. Mid-migration and finished
       programs are equally off the table. *)
    Error (Refused "program is not running")
  else
  (* Retries re-run selection — excluding every destination that already
     failed, so a crashed (but still advertised) host is never picked
     twice — and only apply when the destination is ours to choose; the
     paper's implementation uses zero retries. Budget aborts reselect on
     their own counter ([budget_reselects]): the copy was too slow for
     this destination, so try a fresh one rather than stretch the
     window. *)
  let rec loop n m failed =
    let exclude_tried tried = match tried with Some h -> h :: failed | None -> failed in
    match
      attempt ?health ~kernel ~cfg ~table ~self ~program ?dest ~exclude:failed
        ~strategy ()
    with
    | Error ((Transfer_failed _ as e), tried) ->
        if dest = None && n < cfg.Config.migration_retries then begin
          Tracer.recordf (Kernel.tracer kernel) ~category:"migrate"
            "retry %d/%d%s" (n + 1) cfg.Config.migration_retries
            (match tried with
            | Some h -> Printf.sprintf " (excluding %s)" h
            | None -> "");
          loop (n + 1) m (exclude_tried tried)
        end
        else Error e
    | Error ((Budget_exceeded _ as e), tried) ->
        if dest = None && m < cfg.Config.budget_reselects then begin
          Tracer.recordf (Kernel.tracer kernel) ~category:"migrate"
            "budget reselect %d/%d%s" (m + 1) cfg.Config.budget_reselects
            (match tried with
            | Some h -> Printf.sprintf " (excluding %s)" h
            | None -> "");
          loop n (m + 1) (exclude_tried tried)
        end
        else Error e
    | Error (e, _) -> Error e
    | Ok r -> Ok r
  in
  loop 0 0 []
