type t = {
  daemon : Proc.t;
  mutable survey_count : int;
  mutable rebalance_count : int;
  mutable skip_count : int;
}

let surveys t = t.survey_count
let rebalances t = t.rebalance_count
let skips t = t.skip_count
let stop t = Proc.kill t.daemon

(* One survey: every program manager's migratable-guest list, with the
   manager's own (stable) pid from the reply. *)
let survey ?(group = Ids.program_manager_group) k ~self =
  let c =
    Kernel.send_group k ~src:self ~group
      (Message.make Protocol.Pm_list_programs)
  in
  List.filter_map
    (fun (pm, (m : Message.t)) ->
      match m.Message.body with
      | Protocol.Pm_programs { host; guests; _ } -> Some (pm, host, guests)
      | _ -> None)
    (Kernel.collect_within k c ~window:(Time.of_ms 200.))
  |> List.sort (fun (_, a, _) (_, b, _) -> String.compare a b)

(* With a health view the survey is consulted through it: replies from
   hosts the detector does not trust are dropped, so a Suspect host is
   neither chosen as the migration source (its manager may be about to
   die and the request would eat a full send timeout) nor counted as the
   idle floor. *)
let trusted health (_, host, _) =
  match health with None -> true | Some h -> Health.is_alive h host

(* Before surveying at all: if the detector can already see that fewer
   than two watched peers are alive, a survey cannot yield a rebalance —
   skip the multicast and its collection window entirely. *)
let worth_surveying health =
  match health with
  | None -> true
  | Some h ->
      let watched = Health.summary h in
      watched = []
      || List.length (List.filter (fun (_, s) -> s = Health.Alive) watched) >= 2

let rebalance_once ?health ?group t k ~self ~imbalance ~strategy ~on_outcome =
  match List.filter (trusted health) (survey ?group k ~self) with
  | [] | [ _ ] -> ()
  | loads ->
      let by_load =
        List.sort
          (fun (_, _, a) (_, _, b) -> Int.compare (List.length a) (List.length b))
          loads
      in
      let _, _, least = List.hd by_load in
      let floor = List.length least in
      (* Busiest first. A surveyed host can crash between answering the
         survey and receiving the migrate request — the send then gives
         up with no-response. Skip it and try the next-busiest candidate
         rather than abandoning the cycle (and never let a dead host
         wedge the daemon). The list is sorted, so the first candidate
         below the imbalance threshold ends the scan. *)
      let rec try_candidates = function
        | [] -> ()
        | (busy_pm, busy_host, busiest) :: rest -> (
            match busiest with
            | victim :: _ when List.length busiest - floor >= imbalance -> (
                Tracer.recordf (Kernel.tracer k) ~category:"balance"
                  "moving one guest off %s (%d vs %d guests)" busy_host
                  (List.length busiest) floor;
                match
                  Kernel.send k ~src:self ~dst:busy_pm
                    (Message.make
                       (Protocol.Pm_migrate
                          {
                            lh = Some victim;
                            dest = None;
                            force_destroy = false;
                            strategy;
                          }))
                with
                | Ok { Message.body = Protocol.Pm_migrated (_ :: _ as os); _ }
                  ->
                    t.rebalance_count <- t.rebalance_count + 1;
                    List.iter on_outcome os
                | Ok _ | Error _ ->
                    t.skip_count <- t.skip_count + 1;
                    Tracer.recordf (Kernel.tracer k) ~category:"balance"
                      "%s unreachable or refused; trying next busiest"
                      busy_host;
                    try_candidates rest)
            | _ -> ())
      in
      try_candidates (List.rev by_load)

let start ?health ?placement ?(interval = Time.of_sec 5.) ?(imbalance = 2)
    ?(strategy = Protocol.Precopy)
    ?(on_outcome = fun (_ : Protocol.migration_outcome) -> ()) k =
  let eng = Kernel.engine k in
  let lh = Kernel.create_logical_host k ~priority:Cpu.Foreground in
  let self = Vproc.pid (Kernel.create_process k lh) in
  (* Under a pod-sharded placement each cycle sweeps one pod's group,
     round-robin, so a sweep never multicasts beyond one scheduling
     domain; guests therefore also stay within their pod. The flat
     policy (and no policy) sweeps the single global group. *)
  let cycle = ref 0 in
  let group_for_cycle () =
    match placement with
    | None -> None
    | Some p -> (
        match Placement.survey_groups p with
        | [] -> None
        | gs ->
            let g = List.nth gs (!cycle mod List.length gs) in
            incr cycle;
            Some g)
  in
  let t_cell = ref None in
  let daemon =
    Proc.spawn eng ~name:"balancer" (fun () ->
        let rec loop () =
          Proc.sleep eng interval;
          (match !t_cell with
          | Some t when not (worth_surveying health) ->
              t.skip_count <- t.skip_count + 1;
              Tracer.recordf (Kernel.tracer k) ~category:"balance"
                "fewer than two peers alive; skipping survey"
          | Some t -> (
              t.survey_count <- t.survey_count + 1;
              let group = group_for_cycle () in
              (* A cycle must never take the daemon down: whatever a
                 mid-cycle crash does to the survey or the migrate
                 conversation, absorb it and try again next interval. *)
              try
                rebalance_once ?health ?group t k ~self ~imbalance ~strategy
                  ~on_outcome
              with exn ->
                t.skip_count <- t.skip_count + 1;
                Tracer.recordf (Kernel.tracer k) ~category:"balance"
                  "cycle aborted (%s); continuing" (Printexc.to_string exn))
          | None -> ());
          loop ()
        in
        loop ())
  in
  let t = { daemon; survey_count = 0; rebalance_count = 0; skip_count = 0 } in
  t_cell := Some t;
  t
