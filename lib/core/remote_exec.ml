type target = Local | Named of string | Any

type timings = {
  t_select : Time.span option;
  t_setup : Time.span;
  t_load : Time.span;
  t_total : Time.span;
}

type handle = {
  h_pm : Ids.pid;
  h_host : string;
  h_lh : Ids.lh_id;
  h_root : Ids.pid;
  h_timings : timings;
}

let image_bytes prog =
  match Programs.find prog with
  | spec ->
      spec.Programs.image.File_server.code_bytes
      + spec.Programs.image.File_server.data_bytes
      + spec.Programs.image.File_server.active_bytes
  | exception Not_found -> 0

let rec exec ?(attempts = 5) (ctx : Context.t) ~prog ~target =
  let k = ctx.Context.kernel in
  let cfg = ctx.Context.cfg in
  let self = ctx.Context.self in
  let env = ctx.Context.env in
  let eng = Kernel.engine k in
  let t0 = Engine.now eng in
  let selection =
    match target with
    | Local ->
        Ok
          ( Ids.program_manager_of (Logical_host.id (Kernel.host_lh k)),
            Kernel.host_name k,
            None,
            Cpu.Foreground )
    | Named host ->
        Result.map
          (fun s ->
            ( s.Scheduler.s_pm,
              s.Scheduler.s_host,
              Some s.Scheduler.s_responded_in,
              Cpu.Background ))
          (Placement.select_host ?health:ctx.Context.health
             ctx.Context.placement k cfg ~self ~host)
    | Any ->
        Result.map
          (fun s ->
            ( s.Scheduler.s_pm,
              s.Scheduler.s_host,
              Some s.Scheduler.s_responded_in,
              Cpu.Background ))
          (Placement.select_any ?health:ctx.Context.health
             ctx.Context.placement k cfg ~self ~bytes:(image_bytes prog))
  in
  match selection with
  | Error e -> Error e
  | Ok (pm, host, t_select, priority) -> (
      let explicit_host = target <> Any in
      (* A selection that does not stick must give its pod in-flight
         credit back; the policy's on_result hook owns that. *)
      let placement_failed () =
        if target <> Local then
          Placement.note_result ctx.Context.placement ~host ~ok:false
      in
      match
        Kernel.send k ~src:self ~dst:pm
          (Message.make
             (Protocol.Pm_create_program { prog; env; priority; explicit_host }))
      with
      | Ok { Message.body = Protocol.Pm_created { root; lh; setup; load }; _ }
        ->
          (* Seed the binding cache for the new logical host from the
             manager's station — the requester plainly knows where it
             just created the program. (In the Demos/MP forwarding
             ablation this initial binding is the only way to reach it.) *)
          (match Kernel.lookup_binding k pm.Ids.lh with
          | Some station -> Kernel.set_binding k lh station
          | None -> ());
          Ok
            {
              h_pm = pm;
              h_host = host;
              h_lh = lh;
              h_root = root;
              h_timings =
                {
                  t_select;
                  t_setup = setup;
                  t_load = load;
                  t_total = Time.sub (Engine.now eng) t0;
                };
            }
      | Ok { Message.body = Protocol.Pm_create_failed m; _ } ->
          placement_failed ();
          (* A volunteer may have filled up since it answered the query
             (selection races under bursts of "@ *"); pick again. *)
          if String.equal m "not willing" && target = Any && attempts > 1 then begin
            Proc.sleep eng (Time.of_ms 50.);
            exec ~attempts:(attempts - 1) ctx ~prog ~target
          end
          else Error m
      | Ok _ ->
          placement_failed ();
          Error "malformed creation reply"
      | Error e ->
          placement_failed ();
          Error (Format.asprintf "%a" Kernel.pp_send_error e))

let wait (ctx : Context.t) handle =
  let k = ctx.Context.kernel in
  (* Address the program manager through the program's logical-host id:
     this resolves to whichever workstation the program lives on now, so
     waiting is oblivious to migrations (Section 2.1's local groups). *)
  let pm = Ids.program_manager_of handle.h_lh in
  match
    Kernel.send k ~src:ctx.Context.self ~dst:pm
      (Message.make (Protocol.Pm_wait { lh = handle.h_lh }))
  with
  | Ok { Message.body = Progtable.Pm_exited { wall; cpu; ok }; _ } ->
      if ok then Ok (wall, cpu) else Error "program failed"
  | Ok { Message.body = Protocol.Pm_no_such_program _; _ } ->
      Error "no such program"
  | Ok _ -> Error "malformed wait reply"
  | Error e -> Error (Format.asprintf "%a" Kernel.pp_send_error e)

let manage (ctx : Context.t) handle body =
  match
    Kernel.send ctx.Context.kernel ~src:ctx.Context.self
      ~dst:(Ids.program_manager_of handle.h_lh)
      (Message.make body)
  with
  | Ok { Message.body = Protocol.Pm_ok; _ } -> Ok ()
  | Ok { Message.body = Protocol.Pm_refused m; _ } -> Error m
  | Ok { Message.body = Protocol.Pm_no_such_program _; _ } ->
      Error "no such program"
  | Ok _ -> Error "malformed reply"
  | Error e -> Error (Format.asprintf "%a" Kernel.pp_send_error e)

let suspend ctx handle =
  manage ctx handle (Protocol.Pm_suspend { lh = handle.h_lh })

let resume ctx handle =
  manage ctx handle (Protocol.Pm_resume { lh = handle.h_lh })

let destroy ctx handle =
  manage ctx handle (Protocol.Pm_destroy { lh = handle.h_lh })

(* Wait errors that mean the program's host died under it (as opposed to
   the program itself failing): the send machine gave up reaching any
   manager through the program's logical-host id, or a rebooted manager
   answered but has never heard of the program. *)
let host_failure_error = function
  | "no-response" | "no such program" -> true
  | _ -> false

let rec exec_and_wait ?(on_host_failure = `Fail) (ctx : Context.t) ~prog
    ~target =
  match exec ctx ~prog ~target with
  | Error e -> Error e
  | Ok handle -> (
      match wait ctx handle with
      | Ok (wall, cpu) ->
          Placement.release ctx.Context.placement ~host:handle.h_host;
          Ok (handle, wall, cpu)
      | Error e -> (
          Placement.release ctx.Context.placement ~host:handle.h_host;
          match on_host_failure with
          | `Reexec attempts when host_failure_error e && attempts > 0 ->
              (* At-least-once semantics: the program is re-run from
                 scratch somewhere else. Callers opting in must tolerate
                 re-execution of side effects. *)
              Tracer.recordf
                (Kernel.tracer ctx.Context.kernel)
                ~category:"exec"
                "%s lost on %s (%s); re-executing (%d attempts left)" prog
                handle.h_host e (attempts - 1);
              exec_and_wait
                ~on_host_failure:(`Reexec (attempts - 1))
                ctx ~prog ~target
          | `Reexec _ | `Fail -> Error e))
