(** The standard program body.

    Runs a {!Programs.spec} as a simulated process: consume CPU in
    scheduler-quantum chunks (dirtying pages through the program's
    {!Dirty_model} in proportion to CPU actually granted), issue the
    spec's file-server I/O, and announce completion on the originating
    display. The body re-resolves its current kernel through the
    {!Directory} at every chunk, which is what makes it oblivious to
    migration — the only "special provision" it ever takes is the one V
    imposes on all programs: talk to the world through IPC. *)

val body :
  Directory.t -> Rng.t -> Progtable.program -> Vproc.t -> unit
(** Run to completion (or die with the logical host). Must execute as the
    program's root process. *)

val run_spec :
  Directory.t ->
  Rng.t ->
  lh:Logical_host.t ->
  spec:Programs.spec ->
  env:Env.t ->
  model:Dirty_model.t ->
  charge:(Time.span -> unit) ->
  self:Ids.pid ->
  unit
(** The body's engine, reusable by sub-programs running in the same
    logical host: [charge] accounts scheduled CPU (to the program record,
    or to the parent's for a sub-program). *)

val io_operations : Progtable.program -> int
(** File-server operations the program (root process) has performed. *)
