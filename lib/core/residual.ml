type dependency = { d_what : string; d_pid : Ids.pid; d_host : string }

let bindings (p : Progtable.program) =
  let env = p.Progtable.p_env in
  let cache =
    List.map (fun (n, pid) -> ("name-cache:" ^ n, pid)) env.Env.name_cache
  in
  let base =
    [
      ("file-server", env.Env.file_server); ("display", env.Env.display);
    ]
  in
  let ns =
    match env.Env.name_server with
    | Some pid -> [ ("name-server", pid) ]
    | None -> []
  in
  base @ ns @ cache

let dependencies ctx p =
  let bound =
    List.filter_map
      (fun (what, pid) ->
        match Directory.locate ctx pid.Ids.lh with
        | Some k ->
            Some { d_what = what; d_pid = pid; d_host = Kernel.host_name k }
        | None -> None)
      (bindings p)
  in
  (* Copy-on-reference leaves a dependency no environment binding shows:
     the old host's kernel server still holds unreferenced pages. *)
  let lh_id = Logical_host.id p.Progtable.p_lh in
  let page_source =
    match Directory.locate ctx lh_id with
    | None -> []
    | Some here -> (
        match Kernel.fault_source here lh_id with
        | None -> []
        | Some pid -> (
            match Directory.locate ctx pid.Ids.lh with
            | Some src ->
                [ { d_what = "page-source"; d_pid = pid; d_host = Kernel.host_name src } ]
            | None -> []))
  in
  bound @ page_source

let current_host ctx (p : Progtable.program) =
  match Directory.locate ctx (Logical_host.id p.Progtable.p_lh) with
  | Some k -> Some (Kernel.host_name k)
  | None -> None

let residual_hosts ?(ignore_display = false) ctx p =
  let here = current_host ctx p in
  dependencies ctx p
  |> List.filter (fun d ->
         (not (ignore_display && String.equal d.d_what "display"))
         && here <> Some d.d_host)
  |> List.map (fun d -> d.d_host)
  |> List.sort_uniq String.compare

let depends_on ?ignore_display ctx p ~host =
  List.mem host (residual_hosts ?ignore_display ctx p)
