(** The per-workstation program manager.

    "There is a program manager on each workstation that provides program
    management for programs executing on that workstation" (Section 2.1).
    It is an ordinary process at the well-known local index
    {!Ids.program_manager_index}, a member of the global program-manager
    group, and it implements both sides of every protocol in this
    library: candidate queries, program creation (environment setup,
    image load from the file server, start), completion waits,
    migration-destination reservations and adoptions, and the
    [migrateprog] entry point that spawns a migration manager. *)

type t

val create :
  ?accepting:bool ->
  Kernel.t ->
  cfg:Config.t ->
  directory:Directory.t ->
  rng:Rng.t ->
  t
(** Start the program manager on a workstation. [accepting] (default
    true) is the owner's policy switch: whether this workstation
    volunteers for guest work. *)

val pid : t -> Ids.pid
(** The manager's process id — also reachable location-independently as
    [Ids.program_manager_of lh] for any logical host resident here. *)

val join_pod : t -> pod:int -> unit
(** Join this manager to {!Ids.pod_group}[ pod] — its scheduling domain
    under a pod-sharded {!Config.placement}. Called by the cluster at
    creation (and again after a reboot recreates the manager); a manager
    answers candidate queries identically on both its groups. *)

val pod : t -> int option
(** The pod joined via {!join_pod}, if any. *)

val kernel : t -> Kernel.t
val table : t -> Progtable.t
val programs : t -> Progtable.program list
val guest_programs : t -> Progtable.program list

val accepting : t -> bool
val set_accepting : t -> bool -> unit
(** Flip the volunteering policy — wired to owner activity in the
    cluster layer: an owner at the keyboard stops new guests arriving
    (reclaiming residents is [migrateprog], not this switch). *)

val health : t -> Health.t option
val set_health : t -> Health.t option -> unit
(** Attach (or detach) the cluster failure-detector view. When present,
    the migration manager spawned by [migrateprog] threads it through
    destination selection and the migration budget/retry loop. *)

val creations : t -> int
(** Programs this manager has created (usage statistics). *)

val refusals : t -> int
(** Candidate queries declined. *)
