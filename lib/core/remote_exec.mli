(** Remote program execution — the "[prog args @ machine]" facility.

    The client side of Section 2: select a host (explicitly named, or
    "[*]" for any idle workstation), ask its program manager to create
    and start the program, and optionally wait for completion. Local
    execution goes through the same path minus selection, at foreground
    priority; remote programs run as background guests. The timing
    breakdown the paper reports (selection / environment setup / image
    load, Section 4.1) is returned with every execution. *)

type target =
  | Local  (** Run on the invoking workstation. *)
  | Named of string  (** "[@ machine]". *)
  | Any  (** "[@ *]": first idle volunteer. *)

type timings = {
  t_select : Time.span option;
      (** Host-selection latency ([None] for local execution); the
          paper's 23 ms. *)
  t_setup : Time.span;  (** Environment creation; part of the 40 ms. *)
  t_load : Time.span;  (** Image load; 330 ms per 100 KB. *)
  t_total : Time.span;  (** Invocation to program running. *)
}

type handle = {
  h_pm : Ids.pid;  (** Program manager responsible (at creation time). *)
  h_host : string;
  h_lh : Ids.lh_id;
  h_root : Ids.pid;
  h_timings : timings;
}

val exec :
  ?attempts:int ->
  Context.t ->
  prog:string ->
  target:target ->
  (handle, string) result
(** Start a program; returns once it is running. Blocking; call from a
    simulated process (the context's [self]). With [target = Any], a
    volunteer that filled up between answering the query and receiving
    the creation request causes re-selection, up to [attempts] (default
    5) tries. *)

val wait : Context.t -> handle -> (Time.span * Time.span, string) result
(** Block until the program exits; returns (wall time, CPU time). Works
    across migrations: if the program moved, the manager named in the
    handle no longer knows it and the wait is retried against the
    program's current host via the binding machinery. *)

val host_failure_error : string -> bool
(** Whether a {!wait} error means the program's {e host} died under it
    (unreachable manager, or a rebooted manager that never heard of the
    program) — the errors re-execution can recover from — as opposed to
    the program itself failing. *)

val exec_and_wait :
  ?on_host_failure:[ `Fail | `Reexec of int ] ->
  Context.t ->
  prog:string ->
  target:target ->
  (handle * Time.span * Time.span, string) result
(** [exec] then [wait]. [on_host_failure] decides what happens when the
    wait fails because the program's host died under it (the send gave
    up, or a rebooted manager no longer knows the program): [`Fail] (the
    default) surfaces the error; [`Reexec n] re-runs the program from
    scratch — re-selecting a host when [target = Any] — up to [n] more
    times. Re-execution gives at-least-once semantics: a program that
    ran partially before the crash runs again, so opt in only for
    idempotent work. Errors that indicate the program itself failed are
    never retried. *)

(** {1 Program management}

    "Facilities for terminating, suspending and debugging programs work
    independent of whether the program is executing locally or remotely"
    (Section 2): all three address the program manager through the
    program's logical-host id, which resolves to its current host. *)

val suspend : Context.t -> handle -> (unit, string) result
(** Freeze the program in place (the migration freeze, minus the copy). *)

val resume : Context.t -> handle -> (unit, string) result

val destroy : Context.t -> handle -> (unit, string) result
(** Terminate the program wherever it currently runs. Completion waiters
    are answered with a failure. *)
