(** Preemptive load balancing.

    The paper stops short of this: "we have not used the preemption
    facility to balance the load across multiple workstations ...
    increasing use of distributed execution ... may provide motivation to
    address this issue" (Section 6). This module is that future-work
    item, built entirely from the facilities the paper does provide: the
    program-manager group query for loads and [migrateprog] for the move.

    The balancer is a daemon on one workstation. Each cycle it surveys
    every program manager, and if the busiest workstation runs at least
    [imbalance] more guests than the idlest volunteer, it asks the busy
    host's manager to migrate one guest (destination chosen by the normal
    decentralized selection). One move per cycle keeps it stable.

    Crash resilience: a surveyed host can crash between answering the
    survey and receiving the migrate request. The daemon skips it, tries
    the next-busiest candidate, and counts the skip — a dead host never
    wedges the cycle loop. *)

type t

val start :
  ?health:Health.t ->
  ?placement:Placement.t ->
  ?interval:Time.span ->
  ?imbalance:int ->
  ?strategy:Protocol.strategy ->
  ?on_outcome:(Protocol.migration_outcome -> unit) ->
  Kernel.t ->
  t
(** Start the daemon on the given workstation. [interval] defaults to
    5 s, [imbalance] to 2 guests, [strategy] (the copy discipline every
    triggered migration uses) to [Protocol.Precopy]. [on_outcome] is
    invoked once per completed rebalancing migration with the full
    migration outcome — service layers use it for freeze-time
    accounting.

    With a [placement] policy the survey is scoped to the policy's
    {!Placement.survey_groups}, one group per cycle round-robin — under
    pod sharding a sweep never multicasts beyond one pod, and triggered
    moves stay pod-local. Without one (or under the flat policy) each
    cycle sweeps the single global program-manager group.

    With a [health] view the daemon consults it before surveying: if
    fewer than two watched peers are alive the whole cycle is skipped
    (no multicast, no collection window), and survey replies from hosts
    the detector distrusts are dropped so a [Suspect] host is never
    chosen as a migration source. *)

val stop : t -> unit

val surveys : t -> int
(** Cycles completed. *)

val rebalances : t -> int
(** Migrations triggered. *)

val skips : t -> int
(** Candidates skipped mid-cycle — unreachable (crashed) or refusing
    busy hosts the daemon stepped past. *)
