type t = { mutable all : Kernel.t list (* reverse registration order *) }

let of_kernels () = { all = [] }

let register t k = t.all <- k :: t.all

let kernels t = List.rev t.all

let locate t lh_id =
  List.find_opt (fun k -> Kernel.find_lh k lh_id <> None) (kernels t)

let current t lh_id =
  match locate t lh_id with
  | Some k -> k
  | None ->
      failwith
        (Printf.sprintf "Directory.current: lh-%d not resident anywhere" lh_id)

let find_host t name =
  List.find_opt (fun k -> String.equal (Kernel.host_name k) name) (kernels t)
