(** Sub-programs within a logical host.

    "A program may create sub-programs, all of which typically execute
    within a single logical host. Migration of a program is actually
    migration of the logical host containing the program. Thus,
    typically, all sub-programs of a program are migrated when the
    program is migrated." (Section 3.)

    A sub-program is a further program image loaded into the {e same}
    logical host: its own address space (so the kernel-state copy grows
    by 9 ms, Section 4.1), its own process and dirty model, sharing the
    parent's environment and fate. The exception the paper notes — a
    sub-program executed remotely from its parent — is just
    {!Remote_exec.exec} from the parent's code. *)

type t

val spawn :
  Directory.t ->
  Rng.t ->
  parent:Progtable.program ->
  prog:string ->
  (t, string) result
(** Load and start [prog] as a sub-program of [parent], from within one
    of the parent logical host's processes. Charges the image load
    against the parent's file server, like any program load. *)

val pid : t -> Ids.pid
val prog_name : t -> string

val join : t -> Proc.exit
(** Block until the sub-program's process terminates. The usual parent
    pattern is fork several stages, then join them. *)

val running : t -> bool
