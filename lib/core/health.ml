(* Suspicion-based failure detection over kernel IPC.

   One observer kernel (typically the file server, which fault plans
   never crash) runs a prober process per watched workstation. Each
   prober pings the peer's kernel server on a fixed cadence with an
   adaptive timeout — a simplified phi-accrual detector for virtual
   time: instead of integrating a latency distribution, the timeout is a
   multiple of the EWMA round-trip time, and the "suspicion level" is
   the count of consecutive missed probes measured against that adaptive
   bound. Crossing [suspect_after] misses makes the peer Suspect,
   [dead_after] makes it Dead, and [recover_after] consecutive hits are
   required to return to Alive — the hysteresis that keeps a
   partition-then-heal from flapping the view. *)

type state = Alive | Suspect | Dead

let state_name = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"

let pp_state ppf s = Format.pp_print_string ppf (state_name s)

type config = {
  probe_interval : Time.span;
  rtt_alpha : float;
  timeout_multiplier : float;
  timeout_margin : Time.span;
  min_timeout : Time.span;
  max_timeout : Time.span;
  suspect_after : int;
  dead_after : int;
  recover_after : int;
}

let default_config =
  {
    probe_interval = Time.of_ms 500.;
    rtt_alpha = 0.25;
    timeout_multiplier = 4.0;
    timeout_margin = Time.of_ms 5.;
    min_timeout = Time.of_ms 10.;
    max_timeout = Time.of_sec 1.;
    suspect_after = 2;
    dead_after = 4;
    recover_after = 2;
  }

type peer = {
  p_host : string;
  p_lh : Ids.lh_id;
  mutable p_state : state;
  mutable p_rtt_ewma_us : float;  (* 0. until the first sample *)
  mutable p_misses : int;
  mutable p_hits : int;
  mutable p_probes : int;
}

type t = {
  h_kernel : Kernel.t;
  h_cfg : config;
  h_peers : (string, peer) Hashtbl.t;
  h_order : peer array;
  mutable h_procs : Vproc.t list;
  mutable h_transitions : int;
  mutable h_false_suspicions : int;
  mutable h_stopped : bool;
}

type Tracer.event +=
  | Health_transition of {
      observer : string;
      peer : string;
      from_ : state;
      to_ : state;
    }

let () =
  Tracer.register_view (function
    | Health_transition { observer; peer; from_; to_ } ->
        Some
          {
            Tracer.v_cat = "health";
            v_type = "transition";
            v_fields =
              [
                ("observer", Tracer.Str observer);
                ("peer", Str peer);
                ("from", Str (state_name from_));
                ("to", Str (state_name to_));
              ];
          }
    | _ -> None)

let ev t mk =
  let trc = Kernel.tracer t.h_kernel in
  if Tracer.enabled trc then Tracer.emit trc (mk ())

let observer t = Kernel.host_name t.h_kernel

let timeout_for cfg p =
  if p.p_rtt_ewma_us <= 0. then cfg.max_timeout
  else
    let adaptive =
      Time.add
        (Time.scale (Time.of_us (int_of_float p.p_rtt_ewma_us))
           cfg.timeout_multiplier)
        cfg.timeout_margin
    in
    Time.min cfg.max_timeout (Time.max cfg.min_timeout adaptive)

let set_state t p to_ =
  if p.p_state <> to_ then begin
    let from_ = p.p_state in
    p.p_state <- to_;
    t.h_transitions <- t.h_transitions + 1;
    if from_ = Suspect && to_ = Alive then
      (* The peer was never dead: the suspicion was a false positive. *)
      t.h_false_suspicions <- t.h_false_suspicions + 1;
    ev t (fun () ->
        Health_transition { observer = observer t; peer = p.p_host; from_; to_ })
  end

let note_hit t p rtt_us =
  p.p_misses <- 0;
  p.p_hits <- p.p_hits + 1;
  let a = t.h_cfg.rtt_alpha in
  p.p_rtt_ewma_us <-
    (if p.p_rtt_ewma_us <= 0. then float_of_int rtt_us
     else (a *. float_of_int rtt_us) +. ((1. -. a) *. p.p_rtt_ewma_us));
  match p.p_state with
  | Alive -> ()
  | Suspect | Dead ->
      if p.p_hits >= t.h_cfg.recover_after then set_state t p Alive

let note_miss t p =
  p.p_hits <- 0;
  p.p_misses <- p.p_misses + 1;
  if p.p_misses >= t.h_cfg.dead_after then set_state t p Dead
  else if p.p_misses >= t.h_cfg.suspect_after && p.p_state = Alive then
    set_state t p Suspect

let prober t i vp =
  let k = t.h_kernel in
  let eng = Kernel.engine k in
  let p = t.h_order.(i) in
  let self = Vproc.pid vp in
  (* Deterministic stagger spreads the probes over one interval so they
     never synchronize (no randomness: replica determinism). *)
  let n = max 1 (Array.length t.h_order) in
  Proc.sleep eng
    (Time.scale t.h_cfg.probe_interval (float_of_int i /. float_of_int n));
  let rec loop () =
    if not t.h_stopped then begin
      let t0 = Engine.now eng in
      let deadline = Time.add t0 (timeout_for t.h_cfg p) in
      p.p_probes <- p.p_probes + 1;
      (match
         Kernel.send ~deadline k ~src:self
           ~dst:(Ids.kernel_server_of p.p_lh)
           (Message.make Kernel.Ks_ping)
       with
      | Ok { Message.body = Kernel.Ks_pong; _ } ->
          note_hit t p (Time.to_us (Time.sub (Engine.now eng) t0))
      | Ok _ | Error _ -> note_miss t p);
      (* Cadence is anchored to the probe's start so a slow or timed-out
         probe does not stretch the interval. *)
      let wait = Time.sub (Time.add t0 t.h_cfg.probe_interval) (Engine.now eng) in
      if Time.(wait > Time.zero) then Proc.sleep eng wait;
      loop ()
    end
  in
  loop ()

let start ?(config = default_config) kernel ~peers =
  let mk (host, lh) =
    {
      p_host = host;
      p_lh = lh;
      p_state = Alive;
      p_rtt_ewma_us = 0.;
      p_misses = 0;
      p_hits = 0;
      p_probes = 0;
    }
  in
  let order = Array.of_list (List.map mk peers) in
  let t =
    {
      h_kernel = kernel;
      h_cfg = config;
      h_peers = Hashtbl.create (Array.length order);
      h_order = order;
      h_procs = [];
      h_transitions = 0;
      h_false_suspicions = 0;
      h_stopped = false;
    }
  in
  Array.iter (fun p -> Hashtbl.replace t.h_peers p.p_host p) order;
  let lh = Kernel.host_lh kernel in
  Array.iteri
    (fun i p ->
      let vp =
        Kernel.spawn_process kernel lh
          ~name:(Printf.sprintf "health:%s" p.p_host)
          (fun vp -> prober t i vp)
      in
      t.h_procs <- vp :: t.h_procs)
    order;
  t

let stop t =
  if not t.h_stopped then begin
    t.h_stopped <- true;
    List.iter Vproc.kill t.h_procs;
    t.h_procs <- []
  end

let state t host =
  match Hashtbl.find_opt t.h_peers host with
  | Some p -> p.p_state
  | None -> Alive (* unknown hosts (e.g. the file server) are not watched *)

let is_alive t host = state t host = Alive
let is_dead t host = state t host = Dead

let hosts_in t s =
  Array.to_list t.h_order
  |> List.filter_map (fun p -> if p.p_state = s then Some p.p_host else None)

let dead_hosts t = hosts_in t Dead
let suspect_hosts t = hosts_in t Suspect

let summary t =
  Array.to_list t.h_order |> List.map (fun p -> (p.p_host, p.p_state))

let transitions t = t.h_transitions
let false_suspicions t = t.h_false_suspicions
let probes t = Array.fold_left (fun acc p -> acc + p.p_probes) 0 t.h_order

let rtt_ms t host =
  match Hashtbl.find_opt t.h_peers host with
  | Some p when p.p_rtt_ewma_us > 0. -> Some (p.p_rtt_ewma_us /. 1000.)
  | Some _ | None -> None
