(** Logical-host migration (Section 3).

    The five-step protocol of Section 3.1, verbatim:

    + locate a willing destination (same mechanism as remote execution);
    + initialize the new host — a reservation under a {e temporary}
      logical-host id, so the new copy is addressable while both exist;
    + {e pre-copy} the address-space state while the program runs:
      one full copy, then repeated copies of the pages dirtied during the
      previous round, until the residue is small or stops shrinking;
    + freeze the logical host and complete the copy: the dirty residue,
      then the kernel-server and program-manager state
      (14 ms + 9 ms/object);
    + unfreeze the new copy, delete the old one, and let reference
      rebinding happen through the binding-cache machinery (plus an eager
      broadcast announcement).

    Failure of the destination mid-transfer is detected by the acked
    transfer steps; the logical host is then re-installed and unfrozen
    locally, and the attempt abandoned or retried per
    {!Config.migration_retries} (the paper gives up after one attempt).
    A retry re-runs host selection with every already-failed destination
    excluded, so a crashed host that is still being advertised by stale
    bindings cannot be picked twice.

    The copy discipline is pluggable ({!Strategy}): every strategy
    shares steps 1, 2, 4's freeze + kernel-state copy, and step 5's
    extract/install/rebind, and differs only in what moves while the
    program runs, what must move while it is frozen, and what is left
    owing afterwards. [Pre_copy] is the paper's contribution;
    [Freeze_and_copy] is the naive scheme it argues against (freeze for
    the entire copy); [Copy_on_reference] is the Accent/Demos-style
    scheme that moves only kernel state and faults pages from the source
    on first touch (deliberately creating the residual dependencies the
    paper rejects); and [Vm_flush] is the Section 3.2 variant that
    flushes dirty pages to a network page server and lets the new host
    demand-fault them in. *)

type error =
  | No_host of string  (** Nobody volunteered. *)
  | Refused of string  (** Destination declined the reservation/install. *)
  | Transfer_failed of string  (** Destination died mid-migration. *)
  | Budget_exceeded of string
      (** The configured {!Config.budget} would be (or was) blown:
          aborted rather than stretch the copy phase or freeze window. *)

val pp_error : Format.formatter -> error -> unit

(** Typed phase-transition events, one per protocol step. Rounds number
    from 1 (the initial full copy) and are emitted as each round's
    acknowledgement lands; the emitted [bytes] sequence is non-increasing
    (the paper's convergence claim, checked online by v_check).
    [Mig_committed] carries the actual freeze window; every failure path
    emits [Mig_aborted] instead. *)
type Tracer.event +=
  | Mig_start of {
      lh : Ids.lh_id;
      prog : string;
      from_host : string;
      strategy : string;
    }
  | Mig_budget of { lh : Ids.lh_id; freeze : Time.span; transfer : Time.span }
      (** Declared right after [Mig_start] when a budget applies; the
          freeze-budget monitor holds [Mig_committed.freeze] to it. *)
  | Mig_dest of { lh : Ids.lh_id; dest : string }
  | Mig_round of { lh : Ids.lh_id; round : int; bytes : int; span : Time.span }
  | Mig_frozen_residue of { lh : Ids.lh_id; bytes : int }
  | Mig_committed of {
      lh : Ids.lh_id;
      from_host : string;
      dest : string;
      freeze : Time.span;
    }
  | Mig_aborted of { lh : Ids.lh_id; reason : string }

(** The pluggable copy discipline. A strategy bundles the four decisions
    that distinguish the paper's pre-copy from its alternatives; all of
    the surrounding five-step protocol is shared. *)
module Strategy : sig
  type t

  val pre_copy : t
  (** Full copy plus dirty-residue rounds while running; only the last
      residue moves frozen (Section 3.1.2). *)

  val freeze_and_copy : t
  (** Nothing moves while running; the whole image moves frozen — the
      maximal freeze window. *)

  val copy_on_reference : t
  (** Only kernel state moves; the source retains the memory image and
      serves page faults after commit ({!Kernel.service_page_faults}) —
      minimal freeze window, residual source dependency. *)

  val vm_flush : page_server:Ids.pid -> t
  (** Pre-copy wire timing toward a page server; dirty-then-referenced
      pages cross the wire twice (Section 3.2). *)

  val of_protocol : Protocol.strategy -> t
  (** The strategy named by a [Pm_migrate] request. *)

  val protocol : t -> Protocol.strategy
  val name : t -> string
end

val migrate :
  ?health:Health.t ->
  kernel:Kernel.t ->
  cfg:Config.t ->
  rng:Rng.t ->
  table:Progtable.t ->
  self:Ids.pid ->
  program:Progtable.program ->
  ?dest:Scheduler.selection ->
  strategy:Protocol.strategy ->
  unit ->
  (Protocol.migration_outcome, error) result
(** Run the full protocol from the program's current host. Must be
    called from a simulated process on that host (the program manager
    spawns a migration manager per request). On success the program runs
    at the destination, its program-manager record has moved, and the
    source retains nothing — no forwarding state. On failure the program
    is running on the source exactly as before.

    [health] feeds destination selection ({!Scheduler.select_any}).

    When {!Config} declares a budget for the strategy, the copy phase
    checks the transfer bound at every chunk (budgeted transfers move in
    256 KB chunks) and predicts each pre-copy round's cost from the
    observed rate; the freeze window is gated before freezing (estimated
    residue + kernel-state time must fit), checked mid-residue, and
    enforced at the destination — an install arriving after the freeze
    deadline is refused, so [Mig_committed.freeze <= bg_freeze] is a
    hard invariant. Budget aborts reselect a destination up to
    [budget_reselects] times. *)

val kernel_state_span : Config.t -> Logical_host.t -> Time.span
(** The Section 4.1 formula: base + per-object x (processes + spaces). *)
