(** The execution context a client carries into the remote-execution API.

    Every client-side operation in V needs the same four things: the
    kernel handle of the workstation it runs on, the cluster
    configuration, its own process id (the reply address for kernel
    sends), and the execution environment that travels with created
    programs (Section 2.2's per-program environment: file server,
    display, name cache, arguments). Threading them as four positional
    and labelled arguments through every call — the historical
    [Kernel.t -> Config.t -> self:… -> env:…] soup — made each new
    entry point grow the same tuple. A {!t} packages them once; APIs
    such as {!Remote_exec} and [Serve] take the context and nothing
    else.

    A context is cheap and immutable: derive variants with {!with_env}
    (e.g. a private file server) rather than mutating. *)

type t = {
  kernel : Kernel.t;  (** The workstation this client runs on. *)
  cfg : Config.t;
  self : Ids.pid;  (** The client process — reply address for sends. *)
  env : Env.t;  (** Environment handed to programs it creates. *)
  health : Health.t option;
      (** Cluster failure-detector view, when one is running. *)
  placement : Placement.t;
      (** The placement policy instance host selection dispatches
          through. Shared cluster-wide (it holds the pod summaries and
          credit windows), like [health]. *)
}

val make :
  ?health:Health.t ->
  ?placement:Placement.t ->
  kernel:Kernel.t ->
  cfg:Config.t ->
  self:Ids.pid ->
  env:Env.t ->
  unit ->
  t
(** [placement] defaults to a fresh instance resolved from
    [cfg.placement] — correct for one-off contexts; clusters pass their
    shared instance so every client sees the same summaries. *)

val with_env : t -> Env.t -> t
(** Same client, different program environment. *)

val kernel : t -> Kernel.t

val cfg : t -> Config.t

val self : t -> Ids.pid

val env : t -> Env.t

val health : t -> Health.t option
(** The failure-detector view, if the cluster runs one. Selection and
    migration paths thread it through so known-dead hosts are skipped
    instead of timed out against. *)

val placement : t -> Placement.t
(** The placement policy host selection dispatches through. *)

val engine : t -> Engine.t
(** [Kernel.engine (kernel t)] — the simulation clock this client is
    driven by. *)
