(** Calibration constants for the remote-execution and migration layers.

    Everything the paper measures that is not already a kernel
    ({!Os_params}) or network ({!Ethernet}, {!Transfer}) constant lives
    here, with its provenance. Changing a value rescales the benches'
    absolute numbers but not their shape. *)

type migration_strategy = Pre_copy | Freeze_and_copy | Copy_on_reference
(** Which copy discipline migrations use by default. The wire-level
    {!Protocol.strategy} carried in [Pm_migrate] can still override this
    per request (and can name [Vm_flush], which needs a concrete page
    server and so has no configuration-level spelling). *)

val migration_strategy_name : migration_strategy -> string

val migration_strategy_of_string : string -> migration_strategy option
(** Accepts the canonical names plus the short CLI spellings
    ["precopy"], ["freeze"] and ["cor"]. *)

(** Which placement policy host selection uses ({!Placement}). The
    symbolic constructor names a policy family; {!Placement.of_config}
    resolves it into a runtime policy instance per cluster.
    [Flat_multicast] is the paper's single-group first-responder bidding.
    [Pod_sharded] partitions the cluster into pods of at most [pod_size]
    workstations, each a multicast scheduling domain of its own, with a
    cross-pod tier routed by gossiped load summaries. [Load_predictive]
    adds exponential-smoothing arrival prediction (smoothing factor
    [alpha]) so the cross-pod tier picks a pod before it saturates. *)
type placement =
  | Flat_multicast
  | Pod_sharded of { pod_size : int }
  | Load_predictive of { pod_size : int; alpha : float }

val placement_name : placement -> string
(** ["flat"], ["pods"] or ["predictive"] — the CLI spellings. *)

val placement_of_string : string -> placement option
(** Accepts the CLI spellings plus the long names ["flat-multicast"],
    ["pod-sharded"] and ["load-predictive"]. Pod-based policies default
    to 32-workstation pods (the paper's "reasonably small systems"
    ceiling for one multicast domain). *)

val placement_pod_size : placement -> int
(** Pod capacity, or [0] for the flat policy (one global domain). *)

type budget = { bg_freeze : Time.span; bg_transfer : Time.span }
(** A migration deadline budget, à la Quest-V's predictable migration:
    [bg_transfer] bounds the running copy phase (step 3), [bg_freeze]
    bounds the freeze window (steps 4–5, freeze to resume). A migration
    that would blow its budget aborts — and, when
    {!field-budget_reselects} allows, reselects a destination — instead
    of stretching the window. *)

type t = {
  os : Os_params.t;  (** Kernel timing (Section 4.1 overheads). *)
  env_setup : Time.span;
      (** Program-manager work to create and initialize a program
          environment. Together with [env_destroy] this is the paper's
          "setting up and later destroying a new execution environment on
          a specific remote host is 40 milliseconds". *)
  env_destroy : Time.span;
  candidacy_delay : Time.span;
      (** A program manager's processing before answering a candidate
          query; with IPC and jitter this reproduces the measured 23 ms
          to first response (Section 4.1). *)
  candidacy_jitter : Time.span;  (** Uniform extra [0, jitter]. *)
  select_timeout : Time.span;
      (** How long host selection waits for any response before deciding
          no host is available. *)
  max_guests : int;
      (** A workstation stops volunteering beyond this many guest
          programs. *)
  min_free_memory : int;
      (** Candidacy requires at least this much free RAM beyond the
          program's own needs. *)
  busy_threshold : float;
      (** Candidacy requires recent CPU utilization below this. *)
  precopy_min_residue : int;
      (** Stop pre-copying when the dirty residue is at most this many
          bytes ("until the number of modified pages is relatively
          small", Section 3.1.2). *)
  precopy_improvement : float;
      (** ... "or until no significant reduction in the number of
          modified pages is achieved": stop when a round shrinks the
          residue by less than this factor. *)
  precopy_max_rounds : int;  (** Hard cap on copy rounds. *)
  migration_retries : int;
      (** Attempts after a failed transfer. The paper's implementation
          "simply gives up if the first attempt fails": 0. *)
  kernel_state_base : Time.span;  (** 14 ms (Section 4.1). *)
  kernel_state_per_object : Time.span;
      (** + 9 ms per process and address space (Section 4.1). *)
  strategy : migration_strategy;
      (** Default strategy for migrations that do not name one
          explicitly (balancer-initiated moves, [Serve] sessions). *)
  budget_precopy : budget option;  (** Budget for pre-copy migrations. *)
  budget_freeze_copy : budget option;
  budget_cor : budget option;  (** ... copy-on-reference. *)
  budget_flush : budget option;  (** ... VM-flush. *)
  budget_reselects : int;
      (** How many times a budget-aborted migration may reselect a fresh
          destination (excluding the one that blew the budget) before
          giving up. Only applies when the caller did not pin the
          destination. Default 0, like {!field-migration_retries}. *)
  placement : placement;
      (** Placement policy family for host selection. Default
          [Flat_multicast] — byte-identical to the paper's scheduler. *)
}

val default : t
(** Every budget is [None] (unbounded) and [budget_reselects] is 0:
    byte-identical behavior to the paper's unbudgeted protocol. *)

val with_default_budgets : t -> t
(** Enable a budget profile sized for the paper's calibration constants
    (600 ms freeze bound for the small-residue strategies, transfer-scale
    bounds elsewhere) and at least one budget reselect. *)

val sum_env_spans : t -> Time.span
(** [env_setup + env_destroy] — the paper's 40 ms check. *)
