type t = {
  pm_kernel : Kernel.t;
  cfg : Config.t;
  directory : Directory.t;
  rng : Rng.t;
  tbl : Progtable.t;
  mutable pm_pid : Ids.pid;
  mutable is_accepting : bool;
  mutable created : int;
  mutable refused : int;
  mutable pm_health : Health.t option;
  mutable pm_vp : Vproc.t option;
  mutable pm_pod : int option;
}

let pid t = t.pm_pid
let kernel t = t.pm_kernel
let table t = t.tbl
let programs t = Progtable.programs t.tbl

let guest_programs t =
  List.filter
    (fun p -> Logical_host.priority p.Progtable.p_lh = Cpu.Background)
    (programs t)

let accepting t = t.is_accepting
let set_accepting t b = t.is_accepting <- b
let health t = t.pm_health
let set_health t h = t.pm_health <- h
let creations t = t.created
let refusals t = t.refused

let eng t = Kernel.engine t.pm_kernel

let trace t fmt =
  Tracer.recordf (Kernel.tracer t.pm_kernel) ~category:"pm" ("%s: " ^^ fmt)
    (Kernel.host_name t.pm_kernel)

(* Willingness policy for guest work: volunteering requires the owner's
   consent, spare memory beyond the program's needs, a bounded guest
   population, and an idle-enough processor (Section 2.1: hosts "with a
   reasonable amount of processor and memory resources available"). *)
let willing t ~bytes =
  t.is_accepting
  && Kernel.guest_count t.pm_kernel < t.cfg.Config.max_guests
  && Kernel.memory_free t.pm_kernel >= bytes + t.cfg.Config.min_free_memory
  && Cpu.queue_length (Kernel.cpu t.pm_kernel) <= 1

let answer_candidate t d =
  trace t "volunteering to query from %a" Ids.pp_pid d.Delivery.src;
  (* The measured 23 ms host-selection latency is dominated by this
     processing delay at the responding manager. *)
  let jitter =
    Rng.uniform_span t.rng Time.zero t.cfg.Config.candidacy_jitter
  in
  Proc.sleep (eng t) (Time.add t.cfg.Config.candidacy_delay jitter);
  Kernel.reply ~from:t.pm_pid t.pm_kernel d
    (Message.make
       (Protocol.Pm_candidate
          {
            host = Kernel.host_name t.pm_kernel;
            free_memory = Kernel.memory_free t.pm_kernel;
            guests = Kernel.guest_count t.pm_kernel;
          }))

(* Cleanup when a program's root process terminates: tear down the
   environment and answer completion waiters. Runs as its own process
   because exit hooks cannot block. *)
let reap t program =
  ignore
    (Proc.spawn (eng t) ~name:"reaper" (fun () ->
         let home = program.Progtable.p_home in
         let k = Progtable.kernel home in
         let failed =
           match Vproc.thread program.Progtable.p_root with
           | Some thread -> Proc.status thread <> Some Proc.Normal
           | None -> true
         in
         Proc.sleep (Kernel.engine k) t.cfg.Config.env_destroy;
         (match Kernel.find_lh k (Logical_host.id program.Progtable.p_lh) with
         | Some lh -> Kernel.destroy_logical_host k lh
         | None -> ());
         Progtable.remove home program;
         Progtable.finish program ~cpu_used:program.Progtable.p_cpu_used ~failed))

let handle_create t d ~prog ~env ~priority ~explicit_host =
  let k = t.pm_kernel in
  let fail m = Kernel.reply k d (Message.make (Protocol.Pm_create_failed m)) in
  match Programs.find prog with
  | exception Not_found -> fail ("unknown program: " ^ prog)
  | spec -> (
      let image_bytes =
        spec.Programs.image.File_server.code_bytes
        + spec.Programs.image.File_server.data_bytes
        + spec.Programs.image.File_server.active_bytes
      in
      if Kernel.memory_free k < image_bytes then fail "insufficient memory"
      else if
        priority = Cpu.Background && (not explicit_host)
        && not (willing t ~bytes:image_bytes)
      then
        (* Admission control at creation, not just candidacy: between
           volunteering and the creation request arriving, other guests
           may have claimed this workstation (many "@ *" selections race
           for the same first responder). The requester re-selects. *)
        fail "not willing"
      else begin
        let t0 = Engine.now (eng t) in
        (* Set up the execution environment (address space, initial
           process, argument/environment initialization). *)
        Proc.sleep (eng t) t.cfg.Config.env_setup;
        let lh = Kernel.create_logical_host k ~priority in
        let setup = Time.sub (Engine.now (eng t)) t0 in
        let t1 = Engine.now (eng t) in
        (* Load the image from the (network) file server. With content
           caching on, probe the local cache for each chunk first (the
           spec names the image and its sizes, so chunk digests are
           computable before any bytes move) and request only the
           missing ones — a pod relaunching a program the file server
           already announced pays one IPC round trip, not 330 ms/100 KB. *)
        let loaded =
          if Kernel.content_caching k then begin
            let cache = Kernel.content_cache k in
            let chunks = File_server.image_chunks spec.Programs.image in
            let cb = File_server.chunk_bytes in
            let missing = ref 0 in
            for i = 0 to chunks - 1 do
              if
                not
                  (Content_cache.probe cache
                     ~digest:(Pagehash.image_chunk ~image:prog ~index:i)
                     ~bytes:cb)
              then incr missing
            done;
            let miss_bytes = !missing * cb in
            let hit = chunks - !missing in
            Kernel.bump_by k "img_chunks_hit" hit;
            Kernel.bump_by k "img_chunks_miss" !missing;
            (if Tracer.enabled (Kernel.tracer k) then
               Tracer.emit (Kernel.tracer k)
                 (if !missing = 0 then
                    Kernel.Img_cache_hit
                      {
                        host = Kernel.host_name k;
                        image = prog;
                        chunks;
                        bytes = hit * cb;
                      }
                  else
                    Kernel.Img_cache_miss
                      {
                        host = Kernel.host_name k;
                        image = prog;
                        chunks = !missing;
                        bytes = miss_bytes;
                      }));
            File_server.Client.load_delta k ~self:t.pm_pid
              ~server:env.Env.file_server ~name:prog ~missing:!missing
              ~bytes:miss_bytes
          end
          else
            File_server.Client.load_image k ~self:t.pm_pid
              ~server:env.Env.file_server ~name:prog
        in
        match loaded with
        | Error m ->
            Kernel.destroy_logical_host k lh;
            fail ("image load failed: " ^ m)
        | Ok img ->
            let load = Time.sub (Engine.now (eng t)) t1 in
            let space =
              Address_space.create ~image:prog
                ~code_bytes:img.File_server.code_bytes
                ~data_bytes:img.File_server.data_bytes
                ~active_bytes:img.File_server.active_bytes ()
            in
            Logical_host.add_space lh space;
            let model = Dirty_model.create spec.Programs.dirty space in
            let root = Kernel.create_process k lh in
            let program =
              Progtable.add t.tbl ~lh ~spec ~env ~root ~space ~model
                ~origin:env.Env.origin_host
            in
            let body_rng = Rng.split t.rng in
            Kernel.start_process k root ~name:prog (fun vp ->
                Program.body t.directory body_rng program vp);
            (match Vproc.thread root with
            | Some thread -> Proc.on_exit thread (fun _ -> reap t program)
            | None -> ());
            t.created <- t.created + 1;
            trace t "created %s in %a" prog Ids.pp_lh (Logical_host.id lh);
            Kernel.reply k d
              (Message.make
                 (Protocol.Pm_created
                    { root = Vproc.pid root; lh = Logical_host.id lh; setup; load }))
      end)

let handle_wait t d ~lh =
  let k = t.pm_kernel in
  match Progtable.find t.tbl lh with
  | None -> Kernel.reply k d (Message.make (Protocol.Pm_no_such_program lh))
  | Some p -> (
      match p.Progtable.p_status with
      | Progtable.Done { at; cpu_used; failed } ->
          Kernel.reply k d
            (Message.make
               (Progtable.Pm_exited
                  {
                    wall = Time.sub at p.Progtable.p_started;
                    cpu = cpu_used;
                    ok = not failed;
                  }))
      | Progtable.Running | Progtable.Migrating | Progtable.Suspended ->
          Progtable.add_waiter p d)

let status_string = function
  | Progtable.Running -> "running"
  | Progtable.Migrating -> "migrating"
  | Progtable.Suspended -> "suspended"
  | Progtable.Done _ -> "done"

(* Suspension is the freeze machinery without a copy: the same facility
   works for local and remote programs because it is addressed like
   everything else (Section 2: "facilities for terminating, suspending
   and debugging programs work independent of whether the program is
   executing locally or remotely"). *)
let handle_suspend t d ~lh =
  let k = t.pm_kernel in
  match (Progtable.find t.tbl lh, Kernel.find_lh k lh) with
  | Some p, Some lhost when p.Progtable.p_status = Progtable.Running ->
      Kernel.freeze_lh k lhost;
      p.Progtable.p_status <- Progtable.Suspended;
      Kernel.reply k d (Message.make Protocol.Pm_ok)
  | Some _, _ -> Kernel.reply k d (Message.make (Protocol.Pm_refused "not running"))
  | None, _ -> Kernel.reply k d (Message.make (Protocol.Pm_no_such_program lh))

let handle_resume t d ~lh =
  let k = t.pm_kernel in
  match (Progtable.find t.tbl lh, Kernel.find_lh k lh) with
  | Some p, Some lhost when p.Progtable.p_status = Progtable.Suspended ->
      p.Progtable.p_status <- Progtable.Running;
      Kernel.unfreeze_lh k lhost;
      Kernel.reply k d (Message.make Protocol.Pm_ok)
  | Some _, _ -> Kernel.reply k d (Message.make (Protocol.Pm_refused "not suspended"))
  | None, _ -> Kernel.reply k d (Message.make (Protocol.Pm_no_such_program lh))

let handle_destroy t d ~lh =
  let k = t.pm_kernel in
  match Progtable.find t.tbl lh with
  | None -> Kernel.reply k d (Message.make (Protocol.Pm_no_such_program lh))
  | Some _ ->
      (match Kernel.find_lh k lh with
      | Some lhost ->
          (* Killing the root process triggers the normal reaper, which
             destroys the environment and answers waiters. *)
          List.iter Vproc.kill (Logical_host.processes lhost)
      | None -> ());
      Kernel.reply k d (Message.make Protocol.Pm_ok)

(* migrateprog: remove one program (or every guest) from this
   workstation. Runs as a spawned migration manager so the program
   manager keeps servicing requests during the transfer. *)
let handle_migrate t d ~lh ~dest ~force_destroy ~strategy =
  let k = t.pm_kernel in
  ignore
    (Proc.spawn (eng t) ~name:"migration-manager" (fun () ->
         let targets =
           match lh with
           | Some id -> (
               match Progtable.find t.tbl id with Some p -> [ p ] | None -> [])
           | None -> guest_programs t
         in
         if targets = [] then
           Kernel.reply k d
             (Message.make (Protocol.Pm_migrate_failed "no such program"))
         else begin
           let dest_sel =
             match dest with
             | None -> None
             | Some host -> (
                 match
                   Scheduler.Spine.select_host ?health:t.pm_health k t.cfg
                     ~self:t.pm_pid ~host
                 with
                 | Ok s -> Some s
                 | Error _ -> None)
           in
           let outcomes, failures =
             List.fold_left
               (fun (oks, errs) p ->
                 match
                   Migration.migrate ?health:t.pm_health ~kernel:k ~cfg:t.cfg
                     ~rng:t.rng ~table:t.tbl ~self:t.pm_pid ~program:p
                     ?dest:dest_sel ~strategy ()
                 with
                 | Ok o -> (o :: oks, errs)
                 | Error e ->
                     if force_destroy then begin
                       (* The paper's -n flag: no host found, remove the
                          program by destroying it. *)
                       (match
                          Kernel.find_lh k (Logical_host.id p.Progtable.p_lh)
                        with
                       | Some lh -> Kernel.destroy_logical_host k lh
                       | None -> ());
                       (oks, errs)
                     end
                     else (oks, Format.asprintf "%a" Migration.pp_error e :: errs))
               ([], []) targets
           in
           match failures with
           | [] ->
               Kernel.reply k d
                 (Message.make (Protocol.Pm_migrated (List.rev outcomes)))
           | f :: _ ->
               Kernel.reply k d (Message.make (Protocol.Pm_migrate_failed f))
         end))

let serve t d =
  let k = t.pm_kernel in
  match (d : Delivery.t).Delivery.msg.Message.body with
  | Protocol.Pm_query_candidates { bytes; exclude } ->
      let excluded = List.mem (Kernel.host_name k) exclude in
      if (not excluded) && willing t ~bytes then answer_candidate t d
      else t.refused <- t.refused + 1
  | Protocol.Pm_query_host { host } ->
      if String.equal host (Kernel.host_name k) then answer_candidate t d
  | Protocol.Pm_create_program { prog; env; priority; explicit_host } ->
      handle_create t d ~prog ~env ~priority ~explicit_host
  | Protocol.Pm_wait { lh } -> handle_wait t d ~lh
  | Protocol.Pm_suspend { lh } -> handle_suspend t d ~lh
  | Protocol.Pm_resume { lh } -> handle_resume t d ~lh
  | Protocol.Pm_destroy { lh } -> handle_destroy t d ~lh
  | Protocol.Pm_reserve { temp_lh; lh = _; bytes } ->
      if willing t ~bytes && Kernel.reserve_lh k ~temp_lh ~bytes then
        Kernel.reply k d (Message.make Protocol.Pm_reserved)
      else begin
        t.refused <- t.refused + 1;
        Kernel.reply k d (Message.make (Protocol.Pm_refused "not willing"))
      end
  | Protocol.Pm_cancel_reserve { temp_lh } ->
      Kernel.cancel_reservation k ~temp_lh;
      Kernel.reply k d (Message.make Protocol.Pm_ok)
  | Protocol.Pm_adopt program ->
      Progtable.adopt t.tbl program;
      trace t "adopted %s" program.Progtable.p_spec.Programs.prog_name;
      Kernel.reply k d (Message.make Protocol.Pm_adopted)
  | Protocol.Pm_migrate { lh; dest; force_destroy; strategy } ->
      handle_migrate t d ~lh ~dest ~force_destroy ~strategy
  | Protocol.Pm_list_programs ->
      let listing =
        List.map
          (fun p ->
            ( p.Progtable.p_spec.Programs.prog_name,
              Logical_host.id p.Progtable.p_lh,
              status_string p.Progtable.p_status ))
          (programs t)
      in
      Kernel.reply ~from:t.pm_pid k d
        (Message.make
           (Protocol.Pm_programs
              {
                host = Kernel.host_name k;
                programs = listing;
                guests =
                  List.filter_map
                    (fun p ->
                      if p.Progtable.p_status = Progtable.Running then
                        Some (Logical_host.id p.Progtable.p_lh)
                      else None)
                    (guest_programs t);
              }))
  | _ -> Kernel.reply k d (Message.make (Protocol.Pm_refused "unknown request"))

let create ?(accepting = true) k ~cfg ~directory ~rng =
  let t =
    {
      pm_kernel = k;
      cfg;
      directory;
      rng;
      tbl = Progtable.create k;
      pm_pid = Ids.pid 0 0;
      is_accepting = accepting;
      created = 0;
      refused = 0;
      pm_health = None;
      pm_vp = None;
      pm_pod = None;
    }
  in
  let vp =
    Kernel.system_process k ~index:Ids.program_manager_index
      ~name:(Kernel.host_name k ^ ":pm")
      (fun vp ->
        let rec loop () =
          serve t (Kernel.receive k vp);
          loop ()
        in
        loop ())
  in
  t.pm_pid <- Vproc.pid vp;
  t.pm_vp <- Some vp;
  Kernel.join_group k ~group:Ids.program_manager_group vp;
  t

let join_pod t ~pod =
  match t.pm_vp with
  | None -> ()
  | Some vp ->
      t.pm_pod <- Some pod;
      Kernel.join_group t.pm_kernel ~group:(Ids.pod_group pod) vp

let pod t = t.pm_pod
