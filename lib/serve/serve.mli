(** Sustained-traffic service layer.

    The paper's facilities are exercised one command at a time; this
    module runs the cluster as a long-lived service: an open-loop
    arrival process submits programs continuously, an admission
    controller bounds how many run at once (queueing the overflow in a
    bounded waiting room), the {!Balancer} rebalances placements with
    pre-copy migration, and every request is accounted against
    service-level objectives — submit-to-running and submit-to-complete
    latency percentiles, throughput, migration rate, and freeze-time
    distribution.

    Under overload or failure the session degrades gracefully rather
    than queueing without bound: a {e brownout} mode sheds new
    submissions at the door while the estimated queue wait exceeds a
    configured multiple of the SLO target, and a cluster-wide re-exec
    budget caps the re-execution storm a correlated crash can trigger.
    Accounting is crash-safe: a submitting shell killed at any stage of
    its request (queued, holding a slot, awaiting completion) is settled
    by an exit hook, so [submitted = rejected + shed + refused +
    completed + failed] holds on every seed with any fault plan.

    All accounting is in virtual time, so a session is deterministic
    per cluster seed: replicas fanned over domains merge byte-identical
    (see [vsim serve -j]). *)

module Session : sig
  (** How requests arrive. *)
  type arrivals =
    | Poisson of float  (** Open-loop Poisson stream, arrivals/second. *)
    | Modulated of { rate : float; modulation : Arrivals.modulation }
        (** Open-loop non-homogeneous Poisson: base [rate] reshaped over
            virtual time (diurnal sinusoid, flash-crowd spike, ...). *)
    | Trace of Time.t list  (** Explicit submission instants. *)

  (** Worker-pool autoscaling: a periodic controller retargets the
      admission cap (initially [max_in_flight]) at
      [predicted_rate x observed_service_time / headroom] — Little's law
      with utilization headroom — moving only when the target leaves a
      hysteresis band around the current cap so the pool does not flap.
      The predicted rate is an exponential smoothing of observed
      arrivals; the service time an exponential smoothing of
      running-to-complete spans. *)
  type autoscale = {
    au_interval : Time.span;  (** Controller cadence. *)
    au_min : int;  (** Cap floor. *)
    au_max : int;  (** Cap ceiling. *)
    au_headroom : float;  (** Target utilization, e.g. 0.8. *)
    au_band : float;
        (** Hysteresis: retarget only when |target - cap| exceeds this
            fraction of the current cap. *)
    au_alpha : float;  (** Smoothing factor for rate and service time. *)
  }

  val default_autoscale : autoscale
  (** 2 s cadence, cap in [4, 4096], 0.8 headroom, 0.2 band, 0.3
      smoothing. *)

  type params = {
    arrivals : arrivals;
    duration : Time.span;  (** Arrival horizon (virtual). *)
    progs : string list;  (** Round-robin program mix. *)
    max_in_flight : int;  (** Admission: concurrent dispatched requests. *)
    queue_limit : int;  (** Waiting-room bound; beyond it, reject. *)
    balancer_interval : Time.span option;
        (** Rebalancing cycle period; [None] disables the balancer. *)
    strategy : Protocol.strategy option;
        (** Copy discipline for balancer-triggered migrations; [None]
            falls back to the cluster's {!Config.t.strategy}. *)
    snapshot_every : Time.span option;
        (** Periodic metric snapshots; [None] disables them. *)
    reexec_attempts : int;
        (** Re-executions allowed when a request's host dies under it. *)
    reexec_budget : int option;
        (** Cluster-wide cap on total re-executions across the whole
            session ([None] = unlimited): a correlated crash orphans
            many requests at once, and without a shared budget each
            would independently re-execute onto the survivors. *)
    slo_target_ms : float;
        (** The queue-wait service-level objective (default 1 s). Only
            consulted when [slo_shed_multiple] is set. *)
    slo_shed_multiple : float option;
        (** Brownout threshold: shed new submissions while the
            estimated queue wait exceeds this multiple of
            [slo_target_ms]. [None] (default) disables shedding —
            behavior is then identical to a session without brownout. *)
    drain_grace : Time.span;
        (** How long past [duration] {!drain} lets stragglers finish. *)
    autoscale : autoscale option;
        (** [None] (default) pins the admission cap at [max_in_flight];
            [Some] starts the autoscaling controller. *)
  }

  val default_params : params
  (** 2 req/s Poisson for 120 s over the five usage-mix programs,
      [max_in_flight] 24, [queue_limit] 64, balancer every 5 s,
      snapshots every 10 s, one re-execution (unlimited pool), no
      brownout, 60 s grace. *)

  type t
  type request

  val create : ?params:params -> Cluster.t -> t
  (** Open a session on the cluster: installs the arrival process (each
      arrival submits from a round-robin workstation's shell) and starts
      the balancer. If [Cluster.enable_health] was called first, the
      balancer and every request's selection consult the failure
      detector. The simulation does not advance until {!drain}. *)

  val cluster : t -> Cluster.t

  val submit : t -> Context.t -> prog:string -> (request, string) result
  (** Submit one request from a client process. In brownout, fails
      immediately (shed). Otherwise blocks (in virtual time) in the
      admission queue while the in-flight cap is reached, then
      dispatches via {!Remote_exec.exec}. [Error] means the submission
      was shed, the waiting room was full (rejected), or every
      volunteer refused. Returns with the program {e running}. *)

  val await : t -> Context.t -> request -> (Time.span, string) result
  (** Wait for a submitted request; returns its submit-to-complete
      span. If the program's host dies under it, re-executes up to
      [reexec_attempts] times (spending the shared [reexec_budget])
      before giving up. Releasing the admission slot happens here (or
      on {!submit} failure). *)

  val drain : t -> unit
  (** Drive the simulation through the arrival horizon plus
      [drain_grace], letting in-flight requests finish. *)

  (** Aggregated service metrics; all spans in milliseconds. *)
  type metrics = {
    m_submitted : int;
    m_rejected : int;  (** Turned away at the full waiting room. *)
    m_shed : int;  (** Turned away by brownout load-shedding. *)
    m_refused : int;  (** Dispatched but no volunteer accepted. *)
    m_completed : int;
    m_failed : int;  (** Started but never finished (faults). *)
    m_outstanding : int;
        (** Requests still legitimately in flight (queued or running,
            owner alive) when the metrics were read — stragglers the
            drain grace cut off, not leaks. *)
    m_stuck : int;
        (** Submissions in no terminal state and owned by nobody —
            always 0; nonzero means a request leaked. *)
    m_reexecs : int;
    m_throughput_per_sec : float;  (** Completions per virtual second. *)
    m_queue_wait_ms : Stats.Summary.t;
    m_submit_to_running_ms : Stats.Summary.t;
    m_submit_to_complete_ms : Stats.Summary.t;
    m_brownout_spans : int;  (** Distinct brownout episodes entered. *)
    m_brownout_ms : float;  (** Total virtual time spent in brownout. *)
    m_migrations : int;
    m_freeze_ms : Stats.Summary.t;
    m_balancer_surveys : int;
    m_balancer_skips : int;
    m_mean_in_flight : float;
    m_mean_queued : float;
    m_cap_final : int;  (** Admission cap when metrics were read. *)
    m_cap_min : int;  (** Lowest cap the autoscaler reached. *)
    m_cap_max : int;  (** Highest cap the autoscaler reached. *)
    m_scale_events : int;  (** Cap retargets outside the band. *)
    m_service_ewma_ms : float;  (** Smoothed running-to-complete span. *)
    m_rate_ewma_per_sec : float;  (** Smoothed arrival rate. *)
    m_credit_sheds : int;
        (** Submissions shed because every pod's credit window was
            exhausted (placement backpressure, distinct from brownout
            sheds though counted inside [m_shed] too). *)
    m_placement_policy : string;
    m_placement_selections : int;
    m_placement_timeouts : int;
  }

  val metrics : t -> metrics

  val metrics_to_json : t -> Json_min.t
  (** The session's full report (schema ["vsim-serve/1"]): the
      {!metrics} scalars, p50/p95/p99 latency objects, a freeze-time
      histogram, brownout, health-detector, autoscale and placement
      sections, and the periodic snapshots. Deterministic per seed —
      contains no wall-clock quantities. *)
end
