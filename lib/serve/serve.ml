module Session = struct
  type arrivals =
    | Poisson of float
    | Modulated of { rate : float; modulation : Arrivals.modulation }
    | Trace of Time.t list

  type autoscale = {
    au_interval : Time.span;
    au_min : int;
    au_max : int;
    au_headroom : float;
    au_band : float;
    au_alpha : float;
  }

  let default_autoscale =
    {
      au_interval = Time.of_sec 2.;
      au_min = 4;
      au_max = 4096;
      au_headroom = 0.8;
      au_band = 0.2;
      au_alpha = 0.3;
    }

  type params = {
    arrivals : arrivals;
    duration : Time.span;
    progs : string list;
    max_in_flight : int;
    queue_limit : int;
    balancer_interval : Time.span option;
    strategy : Protocol.strategy option;
    snapshot_every : Time.span option;
    reexec_attempts : int;
    reexec_budget : int option;
    slo_target_ms : float;
    slo_shed_multiple : float option;
    drain_grace : Time.span;
    autoscale : autoscale option;
  }

  let default_params =
    {
      arrivals = Poisson 2.;
      duration = Time.of_sec 120.;
      progs = [ "cc68"; "preprocessor"; "assembler"; "make"; "optimizer" ];
      max_in_flight = 24;
      queue_limit = 64;
      balancer_interval = Some (Time.of_sec 5.);
      strategy = None;
      snapshot_every = Some (Time.of_sec 10.);
      reexec_attempts = 1;
      reexec_budget = None;
      slo_target_ms = 1000.;
      slo_shed_multiple = None;
      drain_grace = Time.of_sec 60.;
      autoscale = None;
    }

  (* Where one submission stands in its lifecycle. A crash can kill the
     submitting shell at any instant; the exit hook reads this cell to
     settle the books for whatever stage the request died in, and the
     normal path marks [Done] before any counter so the hook then does
     nothing. [Slot] means the request owns an admission slot the hook
     must hand back. *)
  type cell = Fresh | Counted | Queued | Slot | Done

  type request = {
    rq_prog : string;
    rq_submitted : Time.t;
    rq_cell : cell ref;
    mutable rq_handle : Remote_exec.handle;
    mutable rq_running : Time.t;  (** Last (re-)execution start. *)
  }

  type t = {
    s_cluster : Cluster.t;
    s_params : params;
    (* Admission: a fixed number of slots; the waiting room is a FIFO of
       gates, each blocking one submitting process. [release] hands the
       freed slot to the first waiter that is still alive, so
       [s_in_flight] stays at the cap while anyone waits. *)
    mutable s_in_flight : int;
    s_waiting : (unit Ivar.t * Time.t * cell ref) Queue.t;
    in_flight_gauge : Stats.Gauge.t;
    queued_gauge : Stats.Gauge.t;
    (* Request accounting. [outstanding] is the number of requests
       counted as submitted but not yet settled into a terminal state;
       every such cell is owned by a live process (dead owners are
       settled by their exit hook), so at any instant it equals the
       requests legitimately still in flight. *)
    mutable outstanding : int;
    mutable submitted : int;
    mutable rejected : int;
    mutable shed : int;
    mutable refused : int;
    mutable completed : int;
    mutable failed : int;
    mutable reexecs : int;
    mutable reexec_pool : int;  (** Cluster-wide re-executions left. *)
    queue_wait_ms : Stats.Summary.t;
    submit_to_running_ms : Stats.Summary.t;
    submit_to_complete_ms : Stats.Summary.t;
    (* Brownout: overload-graceful shedding at submit. *)
    mutable qw_ewma_ms : float;
    mutable in_brownout : bool;
    mutable brownout_entered : Time.t;
    mutable brownout_spans : int;
    mutable brownout_ms : float;
    (* Rebalancing. *)
    mutable migrations : int;
    freeze_ms : Stats.Summary.t;
    mutable s_balancer : Balancer.t option;
    mutable snapshots : Json_min.t list;  (** Reverse order. *)
    (* Autoscaling: the admission cap is mutable; with [autoscale] set a
       periodic controller retargets it from the smoothed arrival rate
       and observed service time (Little's law), inside hysteresis
       bands. Without it the cap stays at [max_in_flight]. *)
    mutable s_cap : int;
    mutable as_rate_ewma : float;  (** Smoothed arrivals/s. *)
    mutable as_service_ewma_ms : float;  (** Smoothed running-to-done. *)
    mutable as_last_submitted : int;
    mutable scale_events : int;
    mutable cap_min_seen : int;
    mutable cap_max_seen : int;
    (* Placement credit backpressure. *)
    mutable credit_sheds : int;
    mutable credits_last_adjust : Time.t;
  }

  let cluster t = t.s_cluster
  let now t = Engine.now (Cluster.engine t.s_cluster)

  (* {1 Admission} *)

  let set_queued_gauge t =
    Stats.Gauge.set t.queued_gauge (float_of_int (Queue.length t.s_waiting))

  (* Waiters killed in the queue stay enqueued (marked [Done] by the
     exit hook); drop any dead prefix so the fast-path emptiness check
     and the slot hand-over only ever see live waiters. *)
  let purge_dead t =
    let rec go () =
      match Queue.peek_opt t.s_waiting with
      | Some (_, _, cell) when !cell = Done ->
          ignore (Queue.pop t.s_waiting);
          go ()
      | _ -> ()
    in
    go ();
    set_queued_gauge t

  let acquire t cell =
    purge_dead t;
    if t.s_in_flight < t.s_cap && Queue.is_empty t.s_waiting then begin
      t.s_in_flight <- t.s_in_flight + 1;
      cell := Slot;
      Stats.Gauge.set t.in_flight_gauge (float_of_int t.s_in_flight);
      Ok ()
    end
    else if Queue.length t.s_waiting >= t.s_params.queue_limit then
      Error "admission queue full"
    else begin
      let gate = Ivar.create () in
      cell := Queued;
      Queue.add (gate, now t, cell) t.s_waiting;
      set_queued_gauge t;
      (* Blocks this simulated process until a slot is handed over;
         [release] marks the cell [Slot] before filling the gate, so
         the slot is owned (and recoverable by the exit hook) even if
         this process is killed before it resumes. *)
      Ivar.read gate;
      Ok ()
    end

  let rec release t =
    if t.s_in_flight > t.s_cap then begin
      (* The autoscaler shrank the cap below the live pool: retire the
         freed slot instead of handing it to a waiter; the pool drains
         to the new cap one completion at a time. *)
      t.s_in_flight <- t.s_in_flight - 1;
      Stats.Gauge.set t.in_flight_gauge (float_of_int t.s_in_flight)
    end
    else
      match Queue.take_opt t.s_waiting with
    | Some (_, _, cell) when !cell = Done ->
        (* A waiter killed in the queue never held the slot; step past
           it and keep looking for a live inheritor. *)
        release t
    | Some (gate, _, cell) ->
        (* Slot transfer: the head of the queue inherits it, so the
           in-flight count is unchanged. Ownership moves before the
           gate opens — see [acquire]. *)
        cell := Slot;
        set_queued_gauge t;
        Ivar.fill gate ()
    | None ->
        set_queued_gauge t;
        t.s_in_flight <- t.s_in_flight - 1;
        Stats.Gauge.set t.in_flight_gauge (float_of_int t.s_in_flight)

  (* After a cap grow, hand slots to queued waiters immediately instead
     of waiting for the next completion. *)
  let rec promote_waiters t =
    if t.s_in_flight < t.s_cap then
      match Queue.take_opt t.s_waiting with
      | Some (_, _, cell) when !cell = Done -> promote_waiters t
      | Some (gate, _, cell) ->
          t.s_in_flight <- t.s_in_flight + 1;
          Stats.Gauge.set t.in_flight_gauge (float_of_int t.s_in_flight);
          cell := Slot;
          set_queued_gauge t;
          Ivar.fill gate ();
          promote_waiters t
      | None -> set_queued_gauge t

  (* Move a request to [Done], retiring it from the outstanding count
     exactly once. *)
  let settle t cell =
    (match !cell with
    | Counted | Queued | Slot -> t.outstanding <- t.outstanding - 1
    | Fresh | Done -> ());
    cell := Done

  (* The exit hook for a submitting shell: settle whatever stage the
     request died in. [Fresh] died before being counted as submitted,
     so it owes nothing; [Counted]/[Queued] were submitted but held no
     slot; [Slot] must also return the slot or admission wedges. *)
  let orphan t cell =
    match !cell with
    | Done | Fresh -> cell := Done
    | Counted | Queued ->
        settle t cell;
        t.failed <- t.failed + 1
    | Slot ->
        settle t cell;
        t.failed <- t.failed + 1;
        release t

  (* {1 Brownout}

     When the estimated queue wait exceeds [slo_shed_multiple] times the
     SLO target, new submissions are shed at the door instead of joining
     a queue they cannot clear in time — partial service beats uniform
     lateness. The estimate is the max of an EWMA of observed queue
     waits and the age of the oldest live waiter (the EWMA alone only
     reflects requests that already got through; the head's age sees a
     stall the moment it happens). Hysteresis: exit only once the
     estimate falls below half the shed threshold. *)

  let head_age_ms t =
    Queue.fold
      (fun acc (_, at, cell) ->
        match acc with
        | Some _ -> acc
        | None ->
            if !cell = Done then None
            else Some (Time.to_ms (Time.sub (now t) at)))
      None t.s_waiting

  let note_queue_wait t ms =
    Stats.Summary.record t.queue_wait_ms ms;
    t.qw_ewma_ms <- (0.2 *. ms) +. (0.8 *. t.qw_ewma_ms);
    (* Per-pod credit windows follow the same overload signal as the
       brownout: when the queue-wait EWMA crosses the shed threshold the
       windows halve (multiplicative decrease), otherwise they reopen a
       credit at a time. Rate-limited so one burst of observations is
       one adjustment, not a collapse. *)
    match t.s_params.slo_shed_multiple with
    | None -> ()
    | Some mult ->
        let at = now t in
        if Time.(Time.sub at t.credits_last_adjust >= Time.of_ms 250.) then begin
          t.credits_last_adjust <- at;
          Placement.note_queue_pressure
            (Cluster.placement t.s_cluster)
            ~over:(t.qw_ewma_ms > mult *. t.s_params.slo_target_ms)
        end

  let sheds_now t =
    match t.s_params.slo_shed_multiple with
    | None -> false
    | Some mult ->
        let threshold = mult *. t.s_params.slo_target_ms in
        let est =
          match head_age_ms t with
          | Some age -> Float.max t.qw_ewma_ms age
          | None ->
              (* No live waiter. If a slot is free, a request arriving
                 now would start immediately — fold that zero-wait
                 observation into the EWMA, otherwise a brownout that
                 shed every arrival (so no queue waits were recorded)
                 could never observe the backlog clearing and would
                 latch on forever. *)
              if t.s_in_flight < t.s_cap then
                t.qw_ewma_ms <- 0.8 *. t.qw_ewma_ms;
              t.qw_ewma_ms
        in
        if t.in_brownout then begin
          if est < 0.5 *. threshold then begin
            t.in_brownout <- false;
            t.brownout_ms <-
              t.brownout_ms
              +. Time.to_ms (Time.sub (now t) t.brownout_entered)
          end
        end
        else if est > threshold then begin
          t.in_brownout <- true;
          t.brownout_entered <- now t;
          t.brownout_spans <- t.brownout_spans + 1
        end;
        t.in_brownout

  (* {1 The request path} *)

  let submit_cell cell t ctx ~prog =
    let submitted_at = now t in
    t.submitted <- t.submitted + 1;
    t.outstanding <- t.outstanding + 1;
    cell := Counted;
    if sheds_now t then begin
      t.shed <- t.shed + 1;
      settle t cell;
      Error "brownout: shedding load"
    end
    else if not (Placement.admit (Cluster.placement t.s_cluster)) then begin
      (* Every pod's credit window is exhausted: real backpressure at
         the door, before the FIFO — the queue cannot clear in time if
         no pod will take the work. *)
      t.shed <- t.shed + 1;
      t.credit_sheds <- t.credit_sheds + 1;
      settle t cell;
      Error "backpressure: no pod credit"
    end
    else
      match acquire t cell with
      | Error e ->
          t.rejected <- t.rejected + 1;
          settle t cell;
          Error e
      | Ok () -> (
          note_queue_wait t (Time.to_ms (Time.sub (now t) submitted_at));
          match Remote_exec.exec ctx ~prog ~target:Remote_exec.Any with
          | Error e ->
              t.refused <- t.refused + 1;
              settle t cell;
              release t;
              Error e
          | Ok h ->
              Stats.Summary.record t.submit_to_running_ms
                (Time.to_ms (Time.sub (now t) submitted_at));
              Ok
                {
                  rq_prog = prog;
                  rq_submitted = submitted_at;
                  rq_cell = cell;
                  rq_handle = h;
                  rq_running = now t;
                })

  let submit t ctx ~prog = submit_cell (ref Fresh) t ctx ~prog

  (* A re-execution spends from the cluster-wide pool as well as the
     request's own allowance: when many hosts die at once (a rack
     crash), the pool caps the total re-exec storm instead of letting
     every orphaned request multiply the load on the survivors. *)
  let rec wait_with_reexec t ctx rq attempts =
    match Remote_exec.wait ctx rq.rq_handle with
    | Ok _ -> Ok ()
    | Error e
      when Remote_exec.host_failure_error e && attempts > 0
           && t.reexec_pool > 0 -> (
        t.reexecs <- t.reexecs + 1;
        t.reexec_pool <- t.reexec_pool - 1;
        (* The lost host's pod credit comes back before re-placing. *)
        Placement.release
          (Cluster.placement t.s_cluster)
          ~host:rq.rq_handle.Remote_exec.h_host;
        match Remote_exec.exec ctx ~prog:rq.rq_prog ~target:Remote_exec.Any with
        | Error e' -> Error e'
        | Ok h ->
            rq.rq_handle <- h;
            rq.rq_running <- now t;
            wait_with_reexec t ctx rq (attempts - 1))
    | Error e -> Error e

  let await t ctx rq =
    let result = wait_with_reexec t ctx rq t.s_params.reexec_attempts in
    settle t rq.rq_cell;
    Placement.release
      (Cluster.placement t.s_cluster)
      ~host:rq.rq_handle.Remote_exec.h_host;
    let span = Time.sub (now t) rq.rq_submitted in
    let outcome =
      match result with
      | Ok () ->
          t.completed <- t.completed + 1;
          Stats.Summary.record t.submit_to_complete_ms (Time.to_ms span);
          let service_ms = Time.to_ms (Time.sub (now t) rq.rq_running) in
          let a =
            match t.s_params.autoscale with
            | Some au -> au.au_alpha
            | None -> 0.3
          in
          t.as_service_ewma_ms <-
            (if t.as_service_ewma_ms = 0. then service_ms
             else (a *. service_ms) +. ((1. -. a) *. t.as_service_ewma_ms));
          Ok span
      | Error e ->
          t.failed <- t.failed + 1;
          Error e
    in
    release t;
    outcome

  (* {1 Periodic snapshots} *)

  let take_snapshot t =
    let p pct =
      let s = t.submit_to_running_ms in
      if Stats.Summary.count s = 0 then 0. else Stats.Summary.percentile s pct
    in
    t.snapshots <-
      Json_min.Obj
        [
          ("t_s", Json_min.Num (Time.to_sec (now t)));
          ("submitted", Json_min.Num (float_of_int t.submitted));
          ("completed", Json_min.Num (float_of_int t.completed));
          ("shed", Json_min.Num (float_of_int t.shed));
          ("in_flight", Json_min.Num (float_of_int t.s_in_flight));
          ("cap", Json_min.Num (float_of_int t.s_cap));
          ("queued", Json_min.Num (float_of_int (Queue.length t.s_waiting)));
          ("brownout", Json_min.Bool t.in_brownout);
          ("p95_submit_to_running_ms", Json_min.Num (p 95.));
        ]
      :: t.snapshots

  (* {1 Session construction} *)

  let install_arrivals t =
    let cl = t.s_cluster in
    let eng = Cluster.engine cl in
    let n_ws = Cluster.size cl in
    let progs = Array.of_list t.s_params.progs in
    let launch i =
      let ws = i mod n_ws in
      let prog = progs.(i mod Array.length progs) in
      let cell = ref Fresh in
      let rq_ref = ref None in
      let vp =
        Cluster.shell cl ~ws ~name:(Printf.sprintf "serve-%d" i) (fun ctx ->
            match submit_cell cell t ctx ~prog with
            | Error _ -> ()
            | Ok rq ->
                rq_ref := Some rq;
                ignore (await t ctx rq))
      in
      (* The submitting host can crash at any point of the request's
         life; the exit hook settles the accounting for whatever stage
         it died in, so submitted = rejected + shed + refused +
         completed + failed holds on every seed. A request that had
         already been placed also hands its pod credit back. *)
      let orphan_with_credit () =
        let had_slot = !cell = Slot in
        orphan t cell;
        match !rq_ref with
        | Some rq when had_slot ->
            Placement.release
              (Cluster.placement cl)
              ~host:rq.rq_handle.Remote_exec.h_host
        | _ -> ()
      in
      match Vproc.thread vp with
      | Some thread -> Proc.on_exit thread (fun _ -> orphan_with_credit ())
      | None -> orphan_with_credit ()
    in
    match t.s_params.arrivals with
    | Poisson rate_per_sec ->
        Arrivals.poisson_stream eng (Cluster.rng cl) ~rate_per_sec
          ~until:t.s_params.duration launch
    | Modulated { rate; modulation } ->
        Arrivals.modulated_stream eng (Cluster.rng cl) ~rate_per_sec:rate
          ~modulation ~until:t.s_params.duration launch
    | Trace instants ->
        List.iteri
          (fun i at ->
            if Time.(at <= t.s_params.duration) then
              Engine.post eng ~at (fun () -> launch i))
          instants

  let install_snapshots t =
    match t.s_params.snapshot_every with
    | None -> ()
    | Some every ->
        let eng = Cluster.engine t.s_cluster in
        let n = Time.to_us t.s_params.duration / Stdlib.max 1 (Time.to_us every) in
        for k = 1 to n do
          Engine.post eng
            ~at:(Time.of_us (k * Time.to_us every))
            (fun () -> take_snapshot t)
        done

  (* The autoscaler: every interval, retarget the admission cap at
     predicted_rate x service_time / headroom (Little's law with
     headroom), moving only when the target leaves the hysteresis band
     around the current cap. *)
  let autoscale_tick t au =
    let arrived = t.submitted - t.as_last_submitted in
    t.as_last_submitted <- t.submitted;
    let dt = Time.to_sec au.au_interval in
    let inst = if dt > 0. then float_of_int arrived /. dt else 0. in
    t.as_rate_ewma <-
      (au.au_alpha *. inst) +. ((1. -. au.au_alpha) *. t.as_rate_ewma);
    let service_s = t.as_service_ewma_ms /. 1000. in
    if service_s > 0. then begin
      let target =
        int_of_float
          (Float.ceil (t.as_rate_ewma *. service_s /. au.au_headroom))
      in
      let target = Stdlib.max au.au_min (Stdlib.min au.au_max target) in
      let band =
        int_of_float (au.au_band *. float_of_int (Stdlib.max 1 t.s_cap))
      in
      if Stdlib.abs (target - t.s_cap) > band then begin
        t.s_cap <- target;
        t.scale_events <- t.scale_events + 1;
        t.cap_min_seen <- Stdlib.min t.cap_min_seen t.s_cap;
        t.cap_max_seen <- Stdlib.max t.cap_max_seen t.s_cap;
        promote_waiters t
      end
    end

  let install_autoscale t =
    match t.s_params.autoscale with
    | None -> ()
    | Some au ->
        let eng = Cluster.engine t.s_cluster in
        let n =
          Time.to_us t.s_params.duration
          / Stdlib.max 1 (Time.to_us au.au_interval)
        in
        for k = 1 to n do
          Engine.post eng
            ~at:(Time.of_us (k * Time.to_us au.au_interval))
            (fun () -> autoscale_tick t au)
        done

  let create ?(params = default_params) cl =
    if params.progs = [] then invalid_arg "Serve.Session.create: empty progs";
    let eng = Cluster.engine cl in
    let t =
      {
        s_cluster = cl;
        s_params = params;
        s_in_flight = 0;
        s_waiting = Queue.create ();
        in_flight_gauge = Stats.Gauge.create eng ~initial:0.;
        queued_gauge = Stats.Gauge.create eng ~initial:0.;
        outstanding = 0;
        submitted = 0;
        rejected = 0;
        shed = 0;
        refused = 0;
        completed = 0;
        failed = 0;
        reexecs = 0;
        reexec_pool =
          (match params.reexec_budget with Some b -> b | None -> max_int);
        queue_wait_ms = Stats.Summary.create ();
        submit_to_running_ms = Stats.Summary.create ();
        submit_to_complete_ms = Stats.Summary.create ();
        qw_ewma_ms = 0.;
        in_brownout = false;
        brownout_entered = Time.zero;
        brownout_spans = 0;
        brownout_ms = 0.;
        migrations = 0;
        freeze_ms = Stats.Summary.create ();
        s_balancer = None;
        snapshots = [];
        s_cap = params.max_in_flight;
        as_rate_ewma = 0.;
        as_service_ewma_ms = 0.;
        as_last_submitted = 0;
        scale_events = 0;
        cap_min_seen = params.max_in_flight;
        cap_max_seen = params.max_in_flight;
        credit_sheds = 0;
        credits_last_adjust = Time.zero;
      }
    in
    (match params.balancer_interval with
    | None -> ()
    | Some interval ->
        let strategy =
          match params.strategy with
          | Some s -> s
          | None ->
              Protocol.strategy_of_config (Cluster.cfg cl).Config.strategy
        in
        t.s_balancer <-
          Some
            (Balancer.start
               ?health:(Cluster.health cl)
               ~placement:(Cluster.placement cl) ~interval ~strategy
               ~on_outcome:(fun o ->
                 t.migrations <- t.migrations + 1;
                 Stats.Summary.record t.freeze_ms
                   (Time.to_ms (Protocol.freeze_span o)))
               (Cluster.workstation cl 0).Cluster.ws_kernel));
    install_arrivals t;
    install_snapshots t;
    install_autoscale t;
    t

  let drain t =
    Cluster.run t.s_cluster
      ~until:(Time.add t.s_params.duration t.s_params.drain_grace)

  (* {1 Metrics} *)

  type metrics = {
    m_submitted : int;
    m_rejected : int;
    m_shed : int;
    m_refused : int;
    m_completed : int;
    m_failed : int;
    m_outstanding : int;
    m_stuck : int;
    m_reexecs : int;
    m_throughput_per_sec : float;
    m_queue_wait_ms : Stats.Summary.t;
    m_submit_to_running_ms : Stats.Summary.t;
    m_submit_to_complete_ms : Stats.Summary.t;
    m_brownout_spans : int;
    m_brownout_ms : float;
    m_migrations : int;
    m_freeze_ms : Stats.Summary.t;
    m_balancer_surveys : int;
    m_balancer_skips : int;
    m_mean_in_flight : float;
    m_mean_queued : float;
    m_cap_final : int;
    m_cap_min : int;
    m_cap_max : int;
    m_scale_events : int;
    m_service_ewma_ms : float;
    m_rate_ewma_per_sec : float;
    m_credit_sheds : int;
    m_placement_policy : string;
    m_placement_selections : int;
    m_placement_timeouts : int;
  }

  let metrics t =
    let horizon_s = Time.to_sec t.s_params.duration in
    {
      m_submitted = t.submitted;
      m_rejected = t.rejected;
      m_shed = t.shed;
      m_refused = t.refused;
      m_completed = t.completed;
      m_failed = t.failed;
      m_outstanding = t.outstanding;
      m_stuck =
        t.submitted - t.rejected - t.shed - t.refused - t.completed - t.failed
        - t.outstanding;
      m_reexecs = t.reexecs;
      m_throughput_per_sec =
        (if horizon_s > 0. then float_of_int t.completed /. horizon_s else 0.);
      m_queue_wait_ms = t.queue_wait_ms;
      m_submit_to_running_ms = t.submit_to_running_ms;
      m_submit_to_complete_ms = t.submit_to_complete_ms;
      m_brownout_spans = t.brownout_spans;
      m_brownout_ms =
        (t.brownout_ms
        +.
        if t.in_brownout then
          Time.to_ms (Time.sub (now t) t.brownout_entered)
        else 0.);
      m_migrations = t.migrations;
      m_freeze_ms = t.freeze_ms;
      m_balancer_surveys =
        (match t.s_balancer with Some b -> Balancer.surveys b | None -> 0);
      m_balancer_skips =
        (match t.s_balancer with Some b -> Balancer.skips b | None -> 0);
      m_mean_in_flight = Stats.Gauge.time_average t.in_flight_gauge;
      m_mean_queued = Stats.Gauge.time_average t.queued_gauge;
      m_cap_final = t.s_cap;
      m_cap_min = t.cap_min_seen;
      m_cap_max = t.cap_max_seen;
      m_scale_events = t.scale_events;
      m_service_ewma_ms = t.as_service_ewma_ms;
      m_rate_ewma_per_sec = t.as_rate_ewma;
      m_credit_sheds = t.credit_sheds;
      m_placement_policy = Placement.name (Cluster.placement t.s_cluster);
      m_placement_selections =
        Placement.selections (Cluster.placement t.s_cluster);
      m_placement_timeouts = Placement.timeouts (Cluster.placement t.s_cluster);
    }

  let summary_json s =
    let n = Stats.Summary.count s in
    let g v = if n = 0 || Float.is_nan v then 0. else v in
    Json_min.Obj
      [
        ("count", Json_min.Num (float_of_int n));
        ("mean", Json_min.Num (g (Stats.Summary.mean s)));
        ("p50", Json_min.Num (g (Stats.Summary.percentile s 50.)));
        ("p95", Json_min.Num (g (Stats.Summary.percentile s 95.)));
        ("p99", Json_min.Num (g (Stats.Summary.percentile s 99.)));
        ("max", Json_min.Num (g (Stats.Summary.max s)));
      ]

  (* Fixed-edge freeze-time histogram: the paper's headline is that
     freezes stay sub-second, so buckets resolve the sub-second range. *)
  let freeze_histogram s =
    let edges = [| 50.; 100.; 200.; 500. |] in
    let counts = Array.make (Array.length edges + 1) 0 in
    List.iter
      (fun v ->
        let rec slot i =
          if i >= Array.length edges then Array.length edges
          else if v < edges.(i) then i
          else slot (i + 1)
        in
        let i = slot 0 in
        counts.(i) <- counts.(i) + 1)
      (Stats.Summary.samples s);
    let label i =
      if i = 0 then Printf.sprintf "<%.0fms" edges.(0)
      else if i = Array.length edges then
        Printf.sprintf ">=%.0fms" edges.(Array.length edges - 1)
      else Printf.sprintf "%.0f-%.0fms" edges.(i - 1) edges.(i)
    in
    Json_min.Arr
      (List.init (Array.length counts) (fun i ->
           Json_min.Obj
             [
               ("bucket", Json_min.Str (label i));
               ("count", Json_min.Num (float_of_int counts.(i)));
             ]))

  let health_json t =
    match Cluster.health t.s_cluster with
    | None -> Json_min.Obj [ ("enabled", Json_min.Bool false) ]
    | Some h ->
        Json_min.Obj
          [
            ("enabled", Json_min.Bool true);
            ("observer", Json_min.Str (Health.observer h));
            ("probes", Json_min.Num (float_of_int (Health.probes h)));
            ( "transitions",
              Json_min.Num (float_of_int (Health.transitions h)) );
            ( "false_suspicions",
              Json_min.Num (float_of_int (Health.false_suspicions h)) );
            ( "dead",
              Json_min.Arr
                (List.map (fun n -> Json_min.Str n) (Health.dead_hosts h)) );
            ( "suspect",
              Json_min.Arr
                (List.map (fun n -> Json_min.Str n) (Health.suspect_hosts h))
            );
          ]

  let metrics_to_json t =
    let m = metrics t in
    let num i = Json_min.Num (float_of_int i) in
    let horizon_s = Time.to_sec t.s_params.duration in
    Json_min.Obj
      [
        ("schema", Json_min.Str "vsim-serve/1");
        ("workstations", num (Cluster.size t.s_cluster));
        ("duration_s", Json_min.Num horizon_s);
        ( "arrivals",
          Json_min.Str
            (match t.s_params.arrivals with
            | Poisson r -> Printf.sprintf "poisson:%g/s" r
            | Modulated { rate; modulation } ->
                Printf.sprintf "modulated:%g/s:%s" rate
                  (Arrivals.modulation_to_string modulation)
            | Trace ts -> Printf.sprintf "trace:%d" (List.length ts)) );
        ("submitted", num m.m_submitted);
        ("rejected", num m.m_rejected);
        ("shed", num m.m_shed);
        ("refused", num m.m_refused);
        ("completed", num m.m_completed);
        ("failed", num m.m_failed);
        ("outstanding", num m.m_outstanding);
        ("stuck", num m.m_stuck);
        ("reexecs", num m.m_reexecs);
        ("throughput_per_sec", Json_min.Num m.m_throughput_per_sec);
        ( "latency_ms",
          Json_min.Obj
            [
              ("queue_wait", summary_json m.m_queue_wait_ms);
              ("submit_to_running", summary_json m.m_submit_to_running_ms);
              ("submit_to_complete", summary_json m.m_submit_to_complete_ms);
            ] );
        ( "brownout",
          Json_min.Obj
            [
              ("spans", num m.m_brownout_spans);
              ("total_ms", Json_min.Num m.m_brownout_ms);
            ] );
        ( "migration",
          Json_min.Obj
            [
              ("count", num m.m_migrations);
              ( "per_sec",
                Json_min.Num
                  (if horizon_s > 0. then
                     float_of_int m.m_migrations /. horizon_s
                   else 0.) );
              ("freeze_ms", summary_json m.m_freeze_ms);
              ("freeze_histogram", freeze_histogram m.m_freeze_ms);
              ("balancer_surveys", num m.m_balancer_surveys);
              ("balancer_skips", num m.m_balancer_skips);
            ] );
        ("health", health_json t);
        ( "autoscale",
          Json_min.Obj
            [
              ("enabled", Json_min.Bool (t.s_params.autoscale <> None));
              ("cap_final", num m.m_cap_final);
              ("cap_min", num m.m_cap_min);
              ("cap_max", num m.m_cap_max);
              ("scale_events", num m.m_scale_events);
              ("rate_ewma_per_sec", Json_min.Num m.m_rate_ewma_per_sec);
              ("service_ewma_ms", Json_min.Num m.m_service_ewma_ms);
            ] );
        ( "placement",
          Json_min.Obj
            [
              ("policy", Json_min.Str m.m_placement_policy);
              ("selections", num m.m_placement_selections);
              ("timeouts", num m.m_placement_timeouts);
              ("credit_sheds", num m.m_credit_sheds);
              ( "pods",
                Json_min.Obj
                  (Placement.pod_stats (Cluster.placement t.s_cluster)) );
            ] );
        ("mean_in_flight", Json_min.Num m.m_mean_in_flight);
        ("mean_queued", Json_min.Num m.m_mean_queued);
        ("snapshots", Json_min.Arr (List.rev t.snapshots));
      ]
end
