module Session = struct
  type arrivals = Poisson of float | Trace of Time.t list

  type params = {
    arrivals : arrivals;
    duration : Time.span;
    progs : string list;
    max_in_flight : int;
    queue_limit : int;
    balancer_interval : Time.span option;
    strategy : Protocol.strategy option;
    snapshot_every : Time.span option;
    reexec_attempts : int;
    drain_grace : Time.span;
  }

  let default_params =
    {
      arrivals = Poisson 2.;
      duration = Time.of_sec 120.;
      progs = [ "cc68"; "preprocessor"; "assembler"; "make"; "optimizer" ];
      max_in_flight = 24;
      queue_limit = 64;
      balancer_interval = Some (Time.of_sec 5.);
      strategy = None;
      snapshot_every = Some (Time.of_sec 10.);
      reexec_attempts = 1;
      drain_grace = Time.of_sec 60.;
    }

  type request = {
    rq_prog : string;
    rq_submitted : Time.t;
    mutable rq_handle : Remote_exec.handle;
  }

  type t = {
    s_cluster : Cluster.t;
    s_params : params;
    (* Admission: a fixed number of slots; the waiting room is a FIFO of
       gates, each blocking one submitting process. [release] hands the
       freed slot to the queue head, so [s_in_flight] stays at the cap
       while anyone waits. *)
    mutable s_in_flight : int;
    s_waiting : unit Ivar.t Queue.t;
    in_flight_gauge : Stats.Gauge.t;
    queued_gauge : Stats.Gauge.t;
    (* Request accounting. *)
    mutable submitted : int;
    mutable rejected : int;
    mutable refused : int;
    mutable completed : int;
    mutable failed : int;
    mutable reexecs : int;
    queue_wait_ms : Stats.Summary.t;
    submit_to_running_ms : Stats.Summary.t;
    submit_to_complete_ms : Stats.Summary.t;
    (* Rebalancing. *)
    mutable migrations : int;
    freeze_ms : Stats.Summary.t;
    mutable s_balancer : Balancer.t option;
    mutable snapshots : Json_min.t list;  (** Reverse order. *)
  }

  let cluster t = t.s_cluster
  let now t = Engine.now (Cluster.engine t.s_cluster)

  (* {1 Admission} *)

  let acquire t =
    if t.s_in_flight < t.s_params.max_in_flight && Queue.is_empty t.s_waiting
    then begin
      t.s_in_flight <- t.s_in_flight + 1;
      Stats.Gauge.set t.in_flight_gauge (float_of_int t.s_in_flight);
      Ok ()
    end
    else if Queue.length t.s_waiting >= t.s_params.queue_limit then
      Error "admission queue full"
    else begin
      let gate = Ivar.create () in
      Queue.add gate t.s_waiting;
      Stats.Gauge.set t.queued_gauge (float_of_int (Queue.length t.s_waiting));
      (* Blocks this simulated process until a slot is handed over. *)
      Ivar.read gate;
      Ok ()
    end

  let release t =
    match Queue.take_opt t.s_waiting with
    | Some gate ->
        (* Slot transfer: the head of the queue inherits it, so the
           in-flight count is unchanged. *)
        Stats.Gauge.set t.queued_gauge (float_of_int (Queue.length t.s_waiting));
        Ivar.fill gate ()
    | None ->
        t.s_in_flight <- t.s_in_flight - 1;
        Stats.Gauge.set t.in_flight_gauge (float_of_int t.s_in_flight)

  (* {1 The request path} *)

  let submit t ctx ~prog =
    let submitted_at = now t in
    t.submitted <- t.submitted + 1;
    match acquire t with
    | Error e ->
        t.rejected <- t.rejected + 1;
        Error e
    | Ok () -> (
        Stats.Summary.record t.queue_wait_ms
          (Time.to_ms (Time.sub (now t) submitted_at));
        match Remote_exec.exec ctx ~prog ~target:Remote_exec.Any with
        | Error e ->
            t.refused <- t.refused + 1;
            release t;
            Error e
        | Ok h ->
            Stats.Summary.record t.submit_to_running_ms
              (Time.to_ms (Time.sub (now t) submitted_at));
            Ok { rq_prog = prog; rq_submitted = submitted_at; rq_handle = h })

  let rec wait_with_reexec t ctx rq attempts =
    match Remote_exec.wait ctx rq.rq_handle with
    | Ok _ -> Ok ()
    | Error e when Remote_exec.host_failure_error e && attempts > 0 -> (
        t.reexecs <- t.reexecs + 1;
        match Remote_exec.exec ctx ~prog:rq.rq_prog ~target:Remote_exec.Any with
        | Error e' -> Error e'
        | Ok h ->
            rq.rq_handle <- h;
            wait_with_reexec t ctx rq (attempts - 1))
    | Error e -> Error e

  let await t ctx rq =
    let result = wait_with_reexec t ctx rq t.s_params.reexec_attempts in
    release t;
    let span = Time.sub (now t) rq.rq_submitted in
    match result with
    | Ok () ->
        t.completed <- t.completed + 1;
        Stats.Summary.record t.submit_to_complete_ms (Time.to_ms span);
        Ok span
    | Error e ->
        t.failed <- t.failed + 1;
        Error e

  (* {1 Periodic snapshots} *)

  let take_snapshot t =
    let p pct =
      let s = t.submit_to_running_ms in
      if Stats.Summary.count s = 0 then 0. else Stats.Summary.percentile s pct
    in
    t.snapshots <-
      Json_min.Obj
        [
          ("t_s", Json_min.Num (Time.to_sec (now t)));
          ("submitted", Json_min.Num (float_of_int t.submitted));
          ("completed", Json_min.Num (float_of_int t.completed));
          ("in_flight", Json_min.Num (float_of_int t.s_in_flight));
          ("queued", Json_min.Num (float_of_int (Queue.length t.s_waiting)));
          ("p95_submit_to_running_ms", Json_min.Num (p 95.));
        ]
      :: t.snapshots

  (* {1 Session construction} *)

  let install_arrivals t =
    let cl = t.s_cluster in
    let eng = Cluster.engine cl in
    let n_ws = Cluster.size cl in
    let progs = Array.of_list t.s_params.progs in
    let launch i =
      let ws = i mod n_ws in
      let prog = progs.(i mod Array.length progs) in
      ignore
        (Cluster.shell cl ~ws ~name:(Printf.sprintf "serve-%d" i) (fun ctx ->
             match submit t ctx ~prog with
             | Error _ -> ()
             | Ok rq -> ignore (await t ctx rq)))
    in
    match t.s_params.arrivals with
    | Poisson rate_per_sec ->
        Arrivals.poisson_stream eng (Cluster.rng cl) ~rate_per_sec
          ~until:t.s_params.duration launch
    | Trace instants ->
        List.iteri
          (fun i at ->
            if Time.(at <= t.s_params.duration) then
              ignore (Engine.schedule eng ~at (fun () -> launch i)))
          instants

  let install_snapshots t =
    match t.s_params.snapshot_every with
    | None -> ()
    | Some every ->
        let eng = Cluster.engine t.s_cluster in
        let n = Time.to_us t.s_params.duration / Stdlib.max 1 (Time.to_us every) in
        for k = 1 to n do
          ignore
            (Engine.schedule eng
               ~at:(Time.of_us (k * Time.to_us every))
               (fun () -> take_snapshot t))
        done

  let create ?(params = default_params) cl =
    if params.progs = [] then invalid_arg "Serve.Session.create: empty progs";
    let eng = Cluster.engine cl in
    let t =
      {
        s_cluster = cl;
        s_params = params;
        s_in_flight = 0;
        s_waiting = Queue.create ();
        in_flight_gauge = Stats.Gauge.create eng ~initial:0.;
        queued_gauge = Stats.Gauge.create eng ~initial:0.;
        submitted = 0;
        rejected = 0;
        refused = 0;
        completed = 0;
        failed = 0;
        reexecs = 0;
        queue_wait_ms = Stats.Summary.create ();
        submit_to_running_ms = Stats.Summary.create ();
        submit_to_complete_ms = Stats.Summary.create ();
        migrations = 0;
        freeze_ms = Stats.Summary.create ();
        s_balancer = None;
        snapshots = [];
      }
    in
    (match params.balancer_interval with
    | None -> ()
    | Some interval ->
        let strategy =
          match params.strategy with
          | Some s -> s
          | None ->
              Protocol.strategy_of_config (Cluster.cfg cl).Config.strategy
        in
        t.s_balancer <-
          Some
            (Balancer.start ~interval ~strategy
               ~on_outcome:(fun o ->
                 t.migrations <- t.migrations + 1;
                 Stats.Summary.record t.freeze_ms
                   (Time.to_ms (Protocol.freeze_span o)))
               (Cluster.workstation cl 0).Cluster.ws_kernel));
    install_arrivals t;
    install_snapshots t;
    t

  let drain t =
    Cluster.run t.s_cluster
      ~until:(Time.add t.s_params.duration t.s_params.drain_grace)

  (* {1 Metrics} *)

  type metrics = {
    m_submitted : int;
    m_rejected : int;
    m_refused : int;
    m_completed : int;
    m_failed : int;
    m_reexecs : int;
    m_throughput_per_sec : float;
    m_queue_wait_ms : Stats.Summary.t;
    m_submit_to_running_ms : Stats.Summary.t;
    m_submit_to_complete_ms : Stats.Summary.t;
    m_migrations : int;
    m_freeze_ms : Stats.Summary.t;
    m_balancer_surveys : int;
    m_balancer_skips : int;
    m_mean_in_flight : float;
    m_mean_queued : float;
  }

  let metrics t =
    let horizon_s = Time.to_sec t.s_params.duration in
    {
      m_submitted = t.submitted;
      m_rejected = t.rejected;
      m_refused = t.refused;
      m_completed = t.completed;
      m_failed = t.failed;
      m_reexecs = t.reexecs;
      m_throughput_per_sec =
        (if horizon_s > 0. then float_of_int t.completed /. horizon_s else 0.);
      m_queue_wait_ms = t.queue_wait_ms;
      m_submit_to_running_ms = t.submit_to_running_ms;
      m_submit_to_complete_ms = t.submit_to_complete_ms;
      m_migrations = t.migrations;
      m_freeze_ms = t.freeze_ms;
      m_balancer_surveys =
        (match t.s_balancer with Some b -> Balancer.surveys b | None -> 0);
      m_balancer_skips =
        (match t.s_balancer with Some b -> Balancer.skips b | None -> 0);
      m_mean_in_flight = Stats.Gauge.time_average t.in_flight_gauge;
      m_mean_queued = Stats.Gauge.time_average t.queued_gauge;
    }

  let summary_json s =
    let n = Stats.Summary.count s in
    let g v = if n = 0 || Float.is_nan v then 0. else v in
    Json_min.Obj
      [
        ("count", Json_min.Num (float_of_int n));
        ("mean", Json_min.Num (g (Stats.Summary.mean s)));
        ("p50", Json_min.Num (g (Stats.Summary.percentile s 50.)));
        ("p95", Json_min.Num (g (Stats.Summary.percentile s 95.)));
        ("p99", Json_min.Num (g (Stats.Summary.percentile s 99.)));
        ("max", Json_min.Num (g (Stats.Summary.max s)));
      ]

  (* Fixed-edge freeze-time histogram: the paper's headline is that
     freezes stay sub-second, so buckets resolve the sub-second range. *)
  let freeze_histogram s =
    let edges = [| 50.; 100.; 200.; 500. |] in
    let counts = Array.make (Array.length edges + 1) 0 in
    List.iter
      (fun v ->
        let rec slot i =
          if i >= Array.length edges then Array.length edges
          else if v < edges.(i) then i
          else slot (i + 1)
        in
        let i = slot 0 in
        counts.(i) <- counts.(i) + 1)
      (Stats.Summary.samples s);
    let label i =
      if i = 0 then Printf.sprintf "<%.0fms" edges.(0)
      else if i = Array.length edges then
        Printf.sprintf ">=%.0fms" edges.(Array.length edges - 1)
      else Printf.sprintf "%.0f-%.0fms" edges.(i - 1) edges.(i)
    in
    Json_min.Arr
      (List.init (Array.length counts) (fun i ->
           Json_min.Obj
             [
               ("bucket", Json_min.Str (label i));
               ("count", Json_min.Num (float_of_int counts.(i)));
             ]))

  let metrics_to_json t =
    let m = metrics t in
    let num i = Json_min.Num (float_of_int i) in
    let horizon_s = Time.to_sec t.s_params.duration in
    Json_min.Obj
      [
        ("schema", Json_min.Str "vsim-serve/1");
        ("workstations", num (Cluster.size t.s_cluster));
        ("duration_s", Json_min.Num horizon_s);
        ( "arrivals",
          Json_min.Str
            (match t.s_params.arrivals with
            | Poisson r -> Printf.sprintf "poisson:%g/s" r
            | Trace ts -> Printf.sprintf "trace:%d" (List.length ts)) );
        ("submitted", num m.m_submitted);
        ("rejected", num m.m_rejected);
        ("refused", num m.m_refused);
        ("completed", num m.m_completed);
        ("failed", num m.m_failed);
        ("reexecs", num m.m_reexecs);
        ("throughput_per_sec", Json_min.Num m.m_throughput_per_sec);
        ( "latency_ms",
          Json_min.Obj
            [
              ("queue_wait", summary_json m.m_queue_wait_ms);
              ("submit_to_running", summary_json m.m_submit_to_running_ms);
              ("submit_to_complete", summary_json m.m_submit_to_complete_ms);
            ] );
        ( "migration",
          Json_min.Obj
            [
              ("count", num m.m_migrations);
              ( "per_sec",
                Json_min.Num
                  (if horizon_s > 0. then
                     float_of_int m.m_migrations /. horizon_s
                   else 0.) );
              ("freeze_ms", summary_json m.m_freeze_ms);
              ("freeze_histogram", freeze_histogram m.m_freeze_ms);
              ("balancer_surveys", num m.m_balancer_surveys);
              ("balancer_skips", num m.m_balancer_skips);
            ] );
        ("mean_in_flight", Json_min.Num m.m_mean_in_flight);
        ("mean_queued", Json_min.Num m.m_mean_queued);
        ("snapshots", Json_min.Arr (List.rev t.snapshots));
      ]
end
