(** Network file server.

    The paper's workstations are diskless: program images and files live
    on network file servers, which is why "the cost of program loading is
    independent of whether a program is executed locally or remotely"
    (Section 4.1) and why migrated programs usually carry no residual file
    dependencies (Section 3.3). The server runs as an ordinary V process;
    clients reach it with plain IPC plus bulk transfers for data, so file
    traffic contends for the wire like everything else.

    Program loading is calibrated to the paper's 330 ms per 100 KB: the
    bulk network path provides 300 ms/100 KB and the server's simulated
    disk adds the rest. *)

type image = {
  code_bytes : int;
  data_bytes : int;  (** Initialized data. *)
  active_bytes : int;  (** Heap/stack/BSS the program will dirty. *)
}
(** A stored program binary: what the program manager needs to size the
    new address space. *)

val image_file_bytes : image -> int
(** Bytes read to load the image (code + initialized data). *)

val chunk_bytes : int
(** Image chunking granularity for content-addressed loads: 1024, the V
    page size, so chunk digests ([Pagehash.image_chunk]) line up with
    the page digests of address spaces created from the image. *)

val image_chunks : image -> int
(** Number of chunks in the stored image file. *)

type t

val create : ?disk_us_per_kb:int -> Kernel.t -> name:string -> t
(** Start a file server process on the given workstation's kernel and
    register [name] with it. [disk_us_per_kb] defaults to 300 — the extra
    0.3 ms/KB that tops network loading up to the paper's rate. *)

val pid : t -> Ids.pid
(** Address clients send requests to. *)

val host : t -> Kernel.t

val add_image : t -> name:string -> image -> unit
(** Publish a program binary. *)

val add_file : t -> path:string -> bytes:int -> unit
(** Create a plain file of the given size. *)

val file_size : t -> path:string -> int option
val request_count : t -> int

(** {1 Protocol} *)

type Message.body +=
  | Fs_stat of { path : string }
  | Fs_attr of { bytes : int }
  | Fs_read of { path : string; offset : int; length : int }
  | Fs_data of { bytes : int }
      (** Reply to a read; payload bytes are additionally bulk-transferred
          when they exceed a message segment. *)
  | Fs_write of { path : string; offset : int; length : int }
  | Fs_load_image of { name : string }
  | Fs_load_delta of { name : string; missing : int; bytes : int }
      (** Content-aware load (content caching on): the requester already
          holds every chunk it did not ask for, so the server reads and
          ships only [missing] chunks ([bytes] bytes) before replying
          {!Fs_image} — one IPC round trip, no disk, no bulk transfer
          when the image is fully cached. Serving a delta (or full load)
          that shipped bytes is followed by a [Ks_content_announce]
          multicast to {!Ids.content_group}. *)
  | Fs_image of image
      (** Reply to a load; the image bytes have been bulk-transferred to
          the requesting host by the time it arrives. *)
  | Fs_ok
  | Fs_error of string

(** {1 Client helpers}

    Thin wrappers for programs: each performs the request from the
    calling process' kernel and unpacks the reply. *)

module Client : sig
  val stat :
    Kernel.t -> self:Ids.pid -> server:Ids.pid -> path:string ->
    (int, string) result

  val read :
    Kernel.t -> self:Ids.pid -> server:Ids.pid -> path:string ->
    offset:int -> length:int -> (int, string) result
  (** Returns the byte count actually read. *)

  val write :
    Kernel.t -> self:Ids.pid -> server:Ids.pid -> path:string ->
    offset:int -> length:int -> (unit, string) result
  (** Extends the file as needed. *)

  val load_image :
    Kernel.t -> self:Ids.pid -> server:Ids.pid -> name:string ->
    (image, string) result

  val load_delta :
    Kernel.t -> self:Ids.pid -> server:Ids.pid -> name:string ->
    missing:int -> bytes:int -> (image, string) result
  (** [Fs_load_delta] as computed by the caller's own cache probe. *)
end
