type image = { code_bytes : int; data_bytes : int; active_bytes : int }

let image_file_bytes img = img.code_bytes + img.data_bytes

(* Images are chunked at the V page size, so chunk digests line up with
   the page digests of address spaces created from the image. *)
let chunk_bytes = 1024
let image_chunks img = (image_file_bytes img + chunk_bytes - 1) / chunk_bytes

type Message.body +=
  | Fs_stat of { path : string }
  | Fs_attr of { bytes : int }
  | Fs_read of { path : string; offset : int; length : int }
  | Fs_data of { bytes : int }
  | Fs_write of { path : string; offset : int; length : int }
  | Fs_load_image of { name : string }
  | Fs_load_delta of { name : string; missing : int; bytes : int }
  | Fs_image of image
  | Fs_ok
  | Fs_error of string

type t = {
  kernel : Kernel.t;
  mutable server_pid : Ids.pid;
  files : (string, int) Hashtbl.t; (* path -> size *)
  images : (string, image) Hashtbl.t;
  disk_us_per_kb : int;
  mutable requests : int;
}

let pid t = t.server_pid
let host t = t.kernel
let add_image t ~name img = Hashtbl.replace t.images name img
let add_file t ~path ~bytes = Hashtbl.replace t.files path bytes
let file_size t ~path = Hashtbl.find_opt t.files path
let request_count t = t.requests

(* Simulated disk time for [bytes] of media traffic. *)
let disk_delay t bytes =
  let kb = (bytes + 1023) / 1024 in
  Proc.sleep (Kernel.engine t.kernel) (Time.of_us (kb * t.disk_us_per_kb))

(* Data beyond a message segment moves as a bulk transfer on the wire,
   toward the requester's station (which may sit across a bridge). *)
let ship t (d : Delivery.t) bytes =
  if bytes > 1024 then
    let to_station =
      match d.Delivery.origin with
      | Delivery.Remote station -> Some station
      | Delivery.Local -> None
    in
    Kernel.bulk_transfer ?to_station t.kernel ~bytes

(* Multicast the image's chunk digests to every caching host: the
   chunks just crossed the shared wire, so the whole cluster may count
   them as held — a pod launching the same program pays the 330 ms/
   100 KB load once (DESIGN.md §4k). No-op with caching off. *)
let announce_image t name img =
  let k = t.kernel in
  if Kernel.content_caching k then
    Kernel.close_collector k
      (Kernel.send_group k ~src:t.server_pid ~group:Ids.content_group
         (Message.make
            (Kernel.Ks_content_announce
               { image = name; first = 0; count = image_chunks img; chunk_bytes })))

let serve t (d : Delivery.t) =
  t.requests <- t.requests + 1;
  let k = t.kernel in
  match d.Delivery.msg.Message.body with
  | Fs_stat { path } -> (
      match Hashtbl.find_opt t.files path with
      | Some bytes -> Kernel.reply k d (Message.make (Fs_attr { bytes }))
      | None -> Kernel.reply k d (Message.make (Fs_error "no such file")))
  | Fs_read { path; offset; length } -> (
      match Hashtbl.find_opt t.files path with
      | None -> Kernel.reply k d (Message.make (Fs_error "no such file"))
      | Some size ->
          let n = Stdlib.max 0 (Stdlib.min length (size - offset)) in
          disk_delay t n;
          ship t d n;
          Kernel.reply k d
            (Message.make ~bytes:(Message.short_bytes + Stdlib.min n 1024)
               (Fs_data { bytes = n })))
  | Fs_write { path; offset; length } ->
      let size = Option.value (Hashtbl.find_opt t.files path) ~default:0 in
      disk_delay t length;
      Hashtbl.replace t.files path (Stdlib.max size (offset + length));
      Kernel.reply k d (Message.make Fs_ok)
  | Fs_load_image { name } -> (
      match Hashtbl.find_opt t.images name with
      | None -> Kernel.reply k d (Message.make (Fs_error "no such image"))
      | Some img ->
          let bytes = image_file_bytes img in
          Tracer.recordf (Kernel.tracer k) ~category:"fs"
            "loading image %s (%d KB) for %a" name (bytes / 1024) Ids.pp_pid
            d.Delivery.src;
          disk_delay t bytes;
          ship t d bytes;
          Kernel.reply k d (Message.make (Fs_image img));
          if bytes > 0 then announce_image t name img)
  | Fs_load_delta { name; missing; bytes } -> (
      (* Content-aware load: the requester already holds every chunk it
         did not ask for, so only [missing] chunks ([bytes] bytes) are
         read and shipped. A fully cached image costs one IPC round
         trip — no disk, no bulk transfer. *)
      match Hashtbl.find_opt t.images name with
      | None -> Kernel.reply k d (Message.make (Fs_error "no such image"))
      | Some img ->
          Tracer.recordf (Kernel.tracer k) ~category:"fs"
            "loading %d/%d chunks of image %s (%d KB) for %a" missing
            (image_chunks img) name (bytes / 1024) Ids.pp_pid d.Delivery.src;
          disk_delay t bytes;
          ship t d bytes;
          Kernel.reply k d (Message.make (Fs_image img));
          if bytes > 0 then announce_image t name img)
  | _ -> Kernel.reply k d (Message.make (Fs_error "unknown request"))

let create ?(disk_us_per_kb = 300) kernel ~name =
  let lh = Kernel.create_logical_host kernel ~priority:Cpu.Foreground in
  let t =
    {
      kernel;
      server_pid = Ids.pid 0 0; (* patched below *)
      files = Hashtbl.create 64;
      images = Hashtbl.create 16;
      disk_us_per_kb;
      requests = 0;
    }
  in
  let vp =
    Kernel.spawn_process kernel lh ~name (fun vp ->
        let rec loop () =
          serve t (Kernel.receive kernel vp);
          loop ()
        in
        loop ())
  in
  t.server_pid <- Vproc.pid vp;
  t

module Client = struct
  let unpack_error what = function
    | Fs_error e -> Error e
    | _ -> Error (what ^ ": unexpected reply")

  let call k ~self ~server body =
    match Kernel.send k ~src:self ~dst:server (Message.make body) with
    | Ok m -> Ok m.Message.body
    | Error e -> Error (Format.asprintf "%a" Kernel.pp_send_error e)

  let stat k ~self ~server ~path =
    match call k ~self ~server (Fs_stat { path }) with
    | Ok (Fs_attr { bytes }) -> Ok bytes
    | Ok other -> unpack_error "stat" other
    | Error e -> Error e

  let read k ~self ~server ~path ~offset ~length =
    match call k ~self ~server (Fs_read { path; offset; length }) with
    | Ok (Fs_data { bytes }) -> Ok bytes
    | Ok other -> unpack_error "read" other
    | Error e -> Error e

  let write k ~self ~server ~path ~offset ~length =
    match call k ~self ~server (Fs_write { path; offset; length }) with
    | Ok Fs_ok -> Ok ()
    | Ok other -> unpack_error "write" other
    | Error e -> Error e

  let load_image k ~self ~server ~name =
    match call k ~self ~server (Fs_load_image { name }) with
    | Ok (Fs_image img) -> Ok img
    | Ok other -> unpack_error "load_image" other
    | Error e -> Error e

  let load_delta k ~self ~server ~name ~missing ~bytes =
    match call k ~self ~server (Fs_load_delta { name; missing; bytes }) with
    | Ok (Fs_image img) -> Ok img
    | Ok other -> unpack_error "load_delta" other
    | Error e -> Error e
end
