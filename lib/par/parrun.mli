(** Parallel execution of independent replica jobs on OCaml 5 domains.

    Every evaluation sweep in this repo is share-nothing per replica: a
    job builds its own deterministic cluster (engine, network, RNG) and
    returns a value, so N jobs fan out across cores with no coordination
    beyond a work queue. Results are merged in {e job-index order}, and
    all cross-domain simulator state is domain-local (see
    [Proc.reset_ids]), so [jobs:1] and [jobs:8] produce byte-identical
    merged results.

    No external dependencies: a fixed-size pool of plain [Domain]s over
    per-worker work-stealing deques (owner pops the front, idle workers
    steal the tail), seeded longest-expected-job-first when a [~cost]
    estimate is supplied so fault-heavy outliers start early instead of
    stranding a domain at the end of a sweep. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when
    [?jobs] is omitted. *)

val run : ?jobs:int -> ?cost:(int -> float) -> (unit -> 'a) list -> 'a list
(** [run ~jobs thunks] executes every thunk, at most [jobs] at a time
    (each on its own domain; the calling domain participates), and
    returns the results in the same order as [thunks].

    [?cost] gives the expected relative cost of the job at a given
    index. It only influences {e scheduling} (expensive jobs are seeded
    first across the workers' deques); results are merged in index order
    regardless, so the output is byte-identical with or without it and
    for any [jobs].

    Exception policy: every job runs to completion regardless of other
    jobs' failures; afterwards, if any job raised, the exception of the
    {e lowest-index} failing job is re-raised (with its backtrace) — so
    which exception escapes does not depend on [jobs]. [jobs <= 1], an
    empty list, and a single thunk all run inline on the calling
    domain. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [run ~jobs (List.map (fun x () -> f x) xs)]. *)
