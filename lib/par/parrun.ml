let default_jobs () = Domain.recommended_domain_count ()

type 'a outcome =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

let run_thunk thunk =
  match thunk () with
  | v -> Done v
  | exception e -> Raised (e, Printexc.get_raw_backtrace ())

(* Merge in index order; re-raise the lowest-index failure so the
   escaping exception is independent of the worker count. *)
let collect results =
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ | Pending -> ())
    results;
  Array.to_list
    (Array.map
       (function
         | Done v -> v
         | Pending | Raised _ -> assert false)
       results)

(* {2 Work-stealing deques}

   One deque of job indices per worker. The owner pops from the front of
   its own deque; an idle worker steals from the {e tail} of a victim's,
   so owner and thief contend on opposite ends. Jobs are heavyweight
   (whole cluster simulations, milliseconds to minutes each), so a
   mutex per deque — rather than a lock-free Chase-Lev — is noise; what
   matters is that no domain sits idle while another still has a queue.

   Seeding is longest-expected-job-first when the caller supplies a
   [~cost] estimate: indices are sorted by descending cost and dealt
   round-robin, so the expensive jobs start first and end-of-sweep
   stragglers are short. Without [~cost], indices are dealt in submitted
   order, and stealing alone levels the load.

   None of this affects results: outcomes land in [results.(i)] by job
   index and [collect] merges in index order, so the merged output is
   byte-identical for any worker count or steal interleaving. *)

type deque = {
  mu : Mutex.t;
  mutable items : int array; (* circular buffer of job indices *)
  mutable head : int; (* next owner pop *)
  mutable len : int;
}

let deque_of_list idxs =
  let items = Array.of_list idxs in
  { mu = Mutex.create (); items; head = 0; len = Array.length items }

(* Owner and thief take from opposite ends so a stolen job is the one
   the owner would have reached last. *)
let take_front d =
  Mutex.lock d.mu;
  let r =
    if d.len = 0 then -1
    else begin
      let i = d.items.(d.head mod Array.length d.items) in
      d.head <- d.head + 1;
      d.len <- d.len - 1;
      i
    end
  in
  Mutex.unlock d.mu;
  r

let steal_back d =
  Mutex.lock d.mu;
  let r =
    if d.len = 0 then -1
    else begin
      d.len <- d.len - 1;
      d.items.((d.head + d.len) mod Array.length d.items)
    end
  in
  Mutex.unlock d.mu;
  r

let run ?jobs ?cost thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let pool =
    Stdlib.max 1 (match jobs with Some j -> j | None -> default_jobs ())
  in
  let workers = Stdlib.min pool n in
  if n = 0 then []
  else if workers <= 1 then collect (Array.map run_thunk thunks)
  else begin
    let results = Array.make n Pending in
    (* Seed order: longest expected job first when a cost estimate is
       available, else submitted order. The sort is stable, so equal
       costs keep index order. *)
    let order = Array.init n (fun i -> i) in
    (match cost with
    | None -> ()
    | Some c ->
        let weights = Array.map c order in
        let keyed = Array.map (fun i -> (i, weights.(i))) order in
        Array.stable_sort (fun (_, a) (_, b) -> Float.compare b a) keyed;
        Array.iteri (fun k (i, _) -> order.(k) <- i) keyed);
    let per_worker = Array.make workers [] in
    Array.iteri
      (fun k i -> per_worker.(k mod workers) <- i :: per_worker.(k mod workers))
      order;
    let deques =
      Array.map (fun idxs -> deque_of_list (List.rev idxs)) per_worker
    in
    let worker w =
      let rec next_job () =
        let own = take_front deques.(w) in
        if own >= 0 then own else steal (w + 1) workers
      and steal v tries =
        if tries = 0 then -1
        else
          let got = steal_back deques.(v mod workers) in
          if got >= 0 then got else steal (v + 1) (tries - 1)
      in
      let rec loop () =
        let i = next_job () in
        if i >= 0 then begin
          results.(i) <- run_thunk thunks.(i);
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    (* The calling domain is the pool's worker 0. *)
    worker 0;
    Array.iter Domain.join spawned;
    (* [Domain.join] establishes happens-before for every [results]
       write made by the spawned domains. *)
    collect results
  end

let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)
