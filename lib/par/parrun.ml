let default_jobs () = Domain.recommended_domain_count ()

type 'a outcome =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

let run_thunk thunk =
  match thunk () with
  | v -> Done v
  | exception e -> Raised (e, Printexc.get_raw_backtrace ())

(* Merge in index order; re-raise the lowest-index failure so the
   escaping exception is independent of the worker count. *)
let collect results =
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ | Pending -> ())
    results;
  Array.to_list
    (Array.map
       (function
         | Done v -> v
         | Pending | Raised _ -> assert false)
       results)

let run ?jobs thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let pool =
    Stdlib.max 1 (match jobs with Some j -> j | None -> default_jobs ())
  in
  let workers = Stdlib.min pool n in
  if n = 0 then []
  else if workers <= 1 then collect (Array.map run_thunk thunks)
  else begin
    let results = Array.make n Pending in
    (* Work queue: a shared next-index cursor. Jobs are heavyweight
       (whole cluster simulations), so one mutex acquisition per job is
       noise; claiming indices in order also means [-j 1] runs jobs in
       exactly the submitted order. *)
    let mu = Mutex.create () in
    let next = ref 0 in
    let take () =
      Mutex.lock mu;
      let i = !next in
      if i < n then incr next;
      Mutex.unlock mu;
      if i < n then Some i else None
    in
    let rec worker () =
      match take () with
      | None -> ()
      | Some i ->
          results.(i) <- run_thunk thunks.(i);
          worker ()
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the pool's last worker. *)
    worker ();
    Array.iter Domain.join spawned;
    (* [Domain.join] establishes happens-before for every [results]
       write made by the spawned domains. *)
    collect results
  end

let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)
