(** Measurement collection.

    Small, allocation-light accumulators used by the cluster metrics layer
    and the benchmark harness: counters, sample summaries with percentiles,
    and time-weighted gauges (for utilization-style metrics where the value
    of a quantity must be integrated over virtual time). *)

(** Monotonic event counters. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** Scalar sample sets: mean/stddev/min/max and exact percentiles.
    Stores all samples; experiments record at most a few thousand. *)
module Summary : sig
  type t

  val create : unit -> t
  val record : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0,100\]]; nearest-rank on the sorted
      samples. Total on its edge cases: empty returns [nan] (like the
      other accessors), a single sample is every percentile of itself,
      and [p] outside [\[0,100\]] clamps to {!min}/{!max}. *)

  val samples : t -> float list
  (** All recorded samples in recording order. *)
end

(** Piecewise-constant signals integrated over virtual time, e.g. number
    of busy workstations. *)
module Gauge : sig
  type t

  val create : Engine.t -> initial:float -> t

  val set : t -> float -> unit
  (** Record a new level starting at the current virtual instant. *)

  val value : t -> float
  (** Current level. *)

  val time_average : t -> float
  (** Level averaged over virtual time from creation to now. *)
end
